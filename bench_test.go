package twopage_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/allassoc"
	"twopage/internal/core"
	"twopage/internal/experiments"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// benchScale keeps each harness iteration around a second; the shapes
// reported in EXPERIMENTS.md come from `cmd/paper` at scale 1.0.
const benchScale = 0.02

// benchExperiment regenerates one paper artifact per iteration. Each
// iteration gets a fresh Runner (and engine), so the memo cache never
// carries results between iterations.
func benchExperiment(b *testing.B, id string, workloads []string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(
			experiments.WithScale(benchScale),
			experiments.WithOut(io.Discard),
			experiments.WithWorkloads(workloads...),
		)
		if err := r.Run(context.Background(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineAt runs the CPI-heavy experiment block through one shared
// engine at the given parallelism — the workload mix of `paper
// fig5.1 fig5.2 table5.1 deltamp indexing -scale 0.05 -j n`. Comparing
// the two sub-benchmarks shows the pool's speedup; on a >= 4-core
// machine the parallel variant approaches a linear multiple of the
// sequential one (the passes are independent simulations).
func benchEngineAt(b *testing.B, parallelism int) {
	b.Helper()
	ids := []string{"fig5.1", "fig5.2", "table5.1", "deltamp", "indexing"}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(
			experiments.WithScale(0.05),
			experiments.WithOut(io.Discard),
			experiments.WithParallelism(parallelism),
		)
		if err := r.RunAll(context.Background(), ids...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSequential(b *testing.B) { benchEngineAt(b, 1) }
func BenchmarkEngineParallel(b *testing.B)   { benchEngineAt(b, runtime.NumCPU()) }

// One benchmark per paper table/figure (all twelve programs each).

func BenchmarkTable31(b *testing.B)  { benchExperiment(b, "table3.1", nil) }
func BenchmarkFig41(b *testing.B)    { benchExperiment(b, "fig4.1", nil) }
func BenchmarkFig42(b *testing.B)    { benchExperiment(b, "fig4.2", nil) }
func BenchmarkFig51(b *testing.B)    { benchExperiment(b, "fig5.1", nil) }
func BenchmarkFig52(b *testing.B)    { benchExperiment(b, "fig5.2", nil) }
func BenchmarkTable51(b *testing.B)  { benchExperiment(b, "table5.1", nil) }
func BenchmarkDeltaMP(b *testing.B)  { benchExperiment(b, "deltamp", nil) }
func BenchmarkIndexing(b *testing.B) { benchExperiment(b, "indexing", nil) }

func BenchmarkSensitivityT(b *testing.B) {
	benchExperiment(b, "sensitivity", []string{"li", "matrix300"})
}

// Extension benches (multiprogramming, miss-handler organizations,
// memory pressure, TLB size sweep).

func BenchmarkMultiprog(b *testing.B) { benchExperiment(b, "multiprog", nil) }
func BenchmarkMissHandling(b *testing.B) {
	benchExperiment(b, "misshandling", []string{"worm", "matrix300"})
}
func BenchmarkPressure(b *testing.B) { benchExperiment(b, "pressure", []string{"li", "matrix300"}) }
func BenchmarkCacheTLB(b *testing.B) { benchExperiment(b, "cachetlb", []string{"li", "matrix300"}) }
func BenchmarkConflict(b *testing.B) { benchExperiment(b, "conflict", []string{"tomcatv", "worm"}) }
func BenchmarkTLBSweep(b *testing.B) { benchExperiment(b, "tlbsweep", nil) }
func BenchmarkPolicies(b *testing.B) { benchExperiment(b, "policies", []string{"li", "worm"}) }
func BenchmarkDesignSpace(b *testing.B) {
	benchExperiment(b, "designspace", []string{"li"})
}
func BenchmarkPhases(b *testing.B)    { benchExperiment(b, "phases", nil) }
func BenchmarkSharedMem(b *testing.B) { benchExperiment(b, "sharedmem", nil) }
func BenchmarkDiskIO(b *testing.B)    { benchExperiment(b, "diskio", []string{"li", "matrix300"}) }
func BenchmarkProtect(b *testing.B)   { benchExperiment(b, "protect", []string{"li"}) }
func BenchmarkAccessCost(b *testing.B) {
	benchExperiment(b, "accesscost", []string{"matrix300", "tomcatv"})
}

// Ablation benches use the representative four-program subset.

func BenchmarkThresholdSweep(b *testing.B)   { benchExperiment(b, "threshold", nil) }
func BenchmarkCombos(b *testing.B)           { benchExperiment(b, "combos", nil) }
func BenchmarkSplitVsUnified(b *testing.B)   { benchExperiment(b, "split", nil) }
func BenchmarkReplacementSweep(b *testing.B) { benchExperiment(b, "replacement", nil) }

// Micro-benchmarks of the simulation engine itself.

// BenchmarkSimulatorTwoSize measures end-to-end references/second of
// the full pipeline: generation → dynamic policy → TLB access.
func BenchmarkSimulatorTwoSize(b *testing.B) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(1 << 17))
	sim := core.NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(16)})
	res, err := sim.Run(context.Background(), workload.MustNew("matrix300", uint64(b.N)+1))
	if err != nil {
		b.Fatal(err)
	}
	if res.Refs == 0 {
		b.Fatal("no refs simulated")
	}
}

// BenchmarkSimulatorSingle4K is the single-page-size baseline pipeline.
func BenchmarkSimulatorSingle4K(b *testing.B) {
	sim := core.NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{tlb.NewFullyAssoc(16)})
	if _, err := sim.Run(context.Background(), workload.MustNew("matrix300", uint64(b.N)+1)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllAssocSweep measures the tycho-style sweep covering 24 TLB
// configurations in one pass.
func BenchmarkAllAssocSweep(b *testing.B) {
	sw, err := allassoc.NewSweep([]int{4, 8, 16}, addr.Shift4K, 8)
	if err != nil {
		b.Fatal(err)
	}
	src := workload.MustNew("li", uint64(b.N)+1)
	buf := make([]trace.Ref, 8192)
	b.ResetTimer()
	n := 0
	for n < b.N {
		m, rerr := src.Read(buf)
		for _, r := range buf[:m] {
			sw.Access(r.Addr)
		}
		n += m
		if rerr != nil {
			break
		}
	}
}

// BenchmarkTraceCodec measures binary trace encode+decode throughput.
func BenchmarkTraceCodec(b *testing.B) {
	src := workload.MustNew("eqntott", uint64(b.N)+1)
	var pipe nopBuffer
	w := trace.NewWriter(&pipe)
	if _, err := trace.Drain(src, func(batch []trace.Ref) {
		if err := w.Write(batch); err != nil {
			b.Fatal(err)
		}
	}); err != nil {
		b.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(pipe.n) / int64(b.N+1))
}

type nopBuffer struct{ n uint64 }

func (nb *nopBuffer) Write(p []byte) (int, error) {
	nb.n += uint64(len(p))
	return len(p), nil
}
