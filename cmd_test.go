package twopage_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one command into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runBin(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// End-to-end CLI coverage: every binary builds and performs a small,
// real scenario through its flag surface.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	t.Run("paper", func(t *testing.T) {
		bin := buildCmd(t, dir, "paper")
		out := runBin(t, bin, "-list")
		for _, want := range []string{"table3.1", "fig5.1", "tlbsweep"} {
			if !strings.Contains(out, want) {
				t.Errorf("-list missing %q", want)
			}
		}
		out = runBin(t, bin, "-scale", "0.01", "-workloads", "li", "table3.1")
		if !strings.Contains(out, "li") || !strings.Contains(out, "RPI") {
			t.Errorf("table3.1 output malformed:\n%s", out)
		}
		out = runBin(t, bin, "-scale", "0.01", "-workloads", "li", "-csv", "fig4.2")
		if !strings.HasPrefix(out, "Program,") {
			t.Errorf("csv output malformed:\n%s", out)
		}
		out = runBin(t, bin, "-scale", "0.01", "-workloads", "li", "-chart", "fig5.1")
		if !strings.Contains(out, "#") || !strings.Contains(out, "scale, max") {
			t.Errorf("chart output malformed:\n%s", out)
		}
	})

	t.Run("tracegen-tlbsim-wsssim-traceinfo", func(t *testing.T) {
		gen := buildCmd(t, dir, "tracegen")
		sim := buildCmd(t, dir, "tlbsim")
		wss := buildCmd(t, dir, "wsssim")
		info := buildCmd(t, dir, "traceinfo")

		trc := filepath.Join(dir, "li.trc")
		out := runBin(t, gen, "-workload", "li", "-refs", "50000", "-o", trc)
		if !strings.Contains(out, "wrote 50000 references") {
			t.Errorf("tracegen output: %s", out)
		}
		if _, err := os.Stat(trc); err != nil {
			t.Fatal(err)
		}
		out = runBin(t, sim, "-trace", trc, "-entries", "16", "-T", "6000")
		if !strings.Contains(out, "CPI_TLB") || !strings.Contains(out, "refs:        50000") {
			t.Errorf("tlbsim output:\n%s", out)
		}
		out = runBin(t, sim, "-workload", "li", "-refs", "50000", "-two", "-wss")
		if !strings.Contains(out, "promotions:") || !strings.Contains(out, "avg WSS") {
			t.Errorf("tlbsim -two output:\n%s", out)
		}
		out = runBin(t, wss, "-workload", "li", "-refs", "50000")
		if !strings.Contains(out, "4KB/32KB") || !strings.Contains(out, "normalized") {
			t.Errorf("wsssim output:\n%s", out)
		}
		out = runBin(t, info, "-trace", trc)
		if !strings.Contains(out, "chunk density") {
			t.Errorf("traceinfo output:\n%s", out)
		}

		// Custom spec pipeline.
		spec := filepath.Join(dir, "w.spec")
		if err := os.WriteFile(spec, []byte("uniform base=1M size=64K weight=1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out = runBin(t, sim, "-spec", spec, "-refs", "30000")
		if !strings.Contains(out, "refs:        30000") {
			t.Errorf("tlbsim -spec output:\n%s", out)
		}
	})

	t.Run("vmsim", func(t *testing.T) {
		bin := buildCmd(t, dir, "vmsim")
		out := runBin(t, bin, "-workload", "matrix300", "-refs", "100000", "-mem", "1M", "-two")
		for _, want := range []string{"TLB:", "walks:", "promotion:", "cycles/access"} {
			if !strings.Contains(out, want) {
				t.Errorf("vmsim output missing %q:\n%s", want, out)
			}
		}
	})
}
