package twopage_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles one command into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runBin(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// runBinErr runs a binary expecting a non-zero exit, returning the exit
// code and combined output.
func runBinErr(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: succeeded, want non-zero exit\n%s", filepath.Base(bin), args, out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%s %v: %v (not an exit error)\n%s", filepath.Base(bin), args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// End-to-end CLI coverage: every binary builds and performs a small,
// real scenario through its flag surface.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	t.Run("paper", func(t *testing.T) {
		bin := buildCmd(t, dir, "paper")
		out := runBin(t, bin, "-list")
		for _, want := range []string{"table3.1", "fig5.1", "tlbsweep"} {
			if !strings.Contains(out, want) {
				t.Errorf("-list missing %q", want)
			}
		}
		out = runBin(t, bin, "-scale", "0.01", "-workloads", "li", "table3.1")
		if !strings.Contains(out, "li") || !strings.Contains(out, "RPI") {
			t.Errorf("table3.1 output malformed:\n%s", out)
		}
		out = runBin(t, bin, "-scale", "0.01", "-workloads", "li", "-csv", "fig4.2")
		if !strings.HasPrefix(out, "Program,") {
			t.Errorf("csv output malformed:\n%s", out)
		}
		out = runBin(t, bin, "-scale", "0.01", "-workloads", "li", "-chart", "fig5.1")
		if !strings.Contains(out, "#") || !strings.Contains(out, "scale, max") {
			t.Errorf("chart output malformed:\n%s", out)
		}
	})

	t.Run("tracegen-tlbsim-wsssim-traceinfo", func(t *testing.T) {
		gen := buildCmd(t, dir, "tracegen")
		sim := buildCmd(t, dir, "tlbsim")
		wss := buildCmd(t, dir, "wsssim")
		info := buildCmd(t, dir, "traceinfo")

		trc := filepath.Join(dir, "li.trc")
		out := runBin(t, gen, "-workload", "li", "-refs", "50000", "-o", trc)
		if !strings.Contains(out, "wrote 50000 references") {
			t.Errorf("tracegen output: %s", out)
		}
		if _, err := os.Stat(trc); err != nil {
			t.Fatal(err)
		}
		out = runBin(t, sim, "-trace", trc, "-entries", "16", "-T", "6000")
		if !strings.Contains(out, "CPI_TLB") || !strings.Contains(out, "refs:        50000") {
			t.Errorf("tlbsim output:\n%s", out)
		}
		out = runBin(t, sim, "-workload", "li", "-refs", "50000", "-two", "-wss")
		if !strings.Contains(out, "promotions:") || !strings.Contains(out, "avg WSS") {
			t.Errorf("tlbsim -two output:\n%s", out)
		}
		out = runBin(t, wss, "-workload", "li", "-refs", "50000")
		if !strings.Contains(out, "4KB/32KB") || !strings.Contains(out, "normalized") {
			t.Errorf("wsssim output:\n%s", out)
		}
		out = runBin(t, info, "-trace", trc)
		if !strings.Contains(out, "chunk density") {
			t.Errorf("traceinfo output:\n%s", out)
		}

		// Custom spec pipeline.
		spec := filepath.Join(dir, "w.spec")
		if err := os.WriteFile(spec, []byte("uniform base=1M size=64K weight=1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out = runBin(t, sim, "-spec", spec, "-refs", "30000")
		if !strings.Contains(out, "refs:        30000") {
			t.Errorf("tlbsim -spec output:\n%s", out)
		}
	})

	t.Run("tlbsim-walk", func(t *testing.T) {
		bin := buildCmd(t, dir, "tlbsim")
		out := runBin(t, bin, "-workload", "li", "-refs", "50000", "-two", "-walk")
		for _, want := range []string{"emergent penalty", "walk model:", "PWC:", "mem cache:"} {
			if !strings.Contains(out, want) {
				t.Errorf("tlbsim -walk output missing %q:\n%s", want, out)
			}
		}
		// -walk without a multi-size policy is a usage error.
		if code, out := runBinErr(t, bin, "-workload", "li", "-refs", "50000", "-walk"); code != 1 || !strings.Contains(out, "-walk needs a multi-size policy") {
			t.Errorf("single-size -walk: exit %d, output:\n%s", code, out)
		}
	})

	// -warmup without -shards > 1 used to be silently ignored: the user
	// believed they measured warm state but got the cold serial pass.
	// All three cmds must reject the combination with exit 2 and name
	// the flag.
	t.Run("warmup-needs-shards", func(t *testing.T) {
		cases := []struct {
			name string
			args []string
		}{
			{"tlbsim", []string{"-workload", "li", "-refs", "50000", "-warmup", "1000"}},
			{"paper", []string{"-scale", "0.01", "-workloads", "li", "-warmup", "1000", "table3.1"}},
			{"wsssim", []string{"-workload", "li", "-refs", "50000", "-warmup", "1000"}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				bin := buildCmd(t, dir, tc.name)
				code, out := runBinErr(t, bin, tc.args...)
				if code != 2 {
					t.Errorf("exit = %d, want 2\n%s", code, out)
				}
				if !strings.Contains(out, "-warmup") {
					t.Errorf("error does not name the -warmup flag:\n%s", out)
				}
			})
		}
	})

	// Minimal decode of a -stats run report: just the fields these
	// smoke tests assert on.
	type report struct {
		Schema string `json:"schema"`
		Tool   string `json:"tool"`
		Totals struct {
			Passes uint64 `json:"passes"`
			Refs   uint64 `json:"refs"`
		} `json:"totals"`
		Passes []struct {
			Key string `json:"key"`
		} `json:"passes"`
	}
	readReport := func(t *testing.T, path string) report {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var r report
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatalf("%s: invalid report JSON: %v\n%s", path, err, b)
		}
		if r.Schema != "twopage.run-report/v1" {
			t.Errorf("%s: schema = %q", path, r.Schema)
		}
		return r
	}

	t.Run("tlbsim-stats", func(t *testing.T) {
		bin := buildCmd(t, dir, "tlbsim")
		rep := filepath.Join(dir, "tlbsim-report.json")
		runBin(t, bin, "-workload", "li", "-refs", "50000", "-stats", rep)
		r := readReport(t, rep)
		if r.Tool != "tlbsim" {
			t.Errorf("tool = %q", r.Tool)
		}
		if r.Totals.Refs != 50000 {
			t.Errorf("totals.refs = %d, want 50000", r.Totals.Refs)
		}
		if len(r.Passes) != 1 {
			t.Errorf("passes = %d entries, want 1", len(r.Passes))
		}
	})

	t.Run("wsssim-stats", func(t *testing.T) {
		bin := buildCmd(t, dir, "wsssim")
		rep := filepath.Join(dir, "wsssim-report.json")
		runBin(t, bin, "-workload", "li", "-refs", "50000", "-stats", rep)
		r := readReport(t, rep)
		if r.Tool != "wsssim" {
			t.Errorf("tool = %q", r.Tool)
		}
		// One static pass plus the two-size pass.
		if r.Totals.Passes != 2 || len(r.Passes) != 2 {
			t.Errorf("passes = %d (totals %d), want 2", len(r.Passes), r.Totals.Passes)
		}
		if r.Totals.Refs != 100000 {
			t.Errorf("totals.refs = %d, want 100000 (two 50000-ref passes)", r.Totals.Refs)
		}
	})

	// SIGINT must produce a one-line notice and conventional exit 130,
	// not a raw "context canceled" error with exit 1.
	t.Run("paper-sigint", func(t *testing.T) {
		bin := buildCmd(t, dir, "paper")
		cmd := exec.Command(bin, "-scale", "1", "-j", "2", "all")
		var out strings.Builder
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Give the run time to get into the simulation loop, then
		// interrupt it; a watchdog kill bounds a hung process.
		time.Sleep(700 * time.Millisecond)
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Fatal("paper did not exit within 30s of SIGINT")
		}
		if code := cmd.ProcessState.ExitCode(); code != 130 {
			t.Errorf("exit after SIGINT = %d, want 130\n%s", code, out.String())
		}
		if !strings.Contains(out.String(), "paper: interrupted") {
			t.Errorf("missing interrupted notice:\n%s", out.String())
		}
		if strings.Contains(out.String(), "context canceled") {
			t.Errorf("raw context error leaked to user:\n%s", out.String())
		}
	})

	t.Run("vmsim", func(t *testing.T) {
		bin := buildCmd(t, dir, "vmsim")
		out := runBin(t, bin, "-workload", "matrix300", "-refs", "100000", "-mem", "1M", "-two")
		for _, want := range []string{"TLB:", "walks:", "promotion:", "cycles/access"} {
			if !strings.Contains(out, want) {
				t.Errorf("vmsim output missing %q:\n%s", want, out)
			}
		}
	})
}
