// Command traceinfo characterizes a reference stream — a synthetic
// workload or a trace file — in the paper's analytical terms: footprint
// at both page sizes, chunk density (predicting the promotion policy's
// behaviour), stride distribution and sequentiality.
//
// Examples:
//
//	traceinfo -workload worm
//	traceinfo -workload matrix300 -refs 2000000
//	traceinfo -trace m300.trc
//	traceinfo -all            # one-line summary for all 12 programs
package main

import (
	"flag"
	"fmt"
	"os"

	"twopage/internal/addr"
	"twopage/internal/trace"
	"twopage/internal/tracestat"
	"twopage/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "", "synthetic workload name")
		refs   = flag.Uint64("refs", 0, "trace length (0 = workload default)")
		traceF = flag.String("trace", "", "trace file instead of a workload")
		format = flag.String("format", "auto", "trace file format: auto, v2, binary, or text")
		all    = flag.Bool("all", false, "summarize all twelve programs (one line each)")
	)
	flag.Parse()

	if *all {
		fmt.Printf("%-10s %-9s %-10s %-12s %-12s %s\n",
			"program", "refs(M)", "footprint", "blocks/chunk", "promotable", "sequential")
		for _, s := range workload.All() {
			n := *refs
			if n == 0 {
				n = s.DefaultRefs / 4 // quarter-length is plenty for footprints
			}
			rep, err := tracestat.Analyze(s.New(n))
			if err != nil {
				fatal("%v", err)
			}
			fmt.Printf("%-10s %-9.1f %-10s %-12.2f %-12s %s\n",
				s.Name, float64(n)/1e6,
				fmt.Sprintf("%.2fMB", float64(rep.FootprintBytes)/(1<<20)),
				rep.MeanDensity(),
				fmt.Sprintf("%.0f%%", 100*rep.PromotableFraction(addr.BlocksPerChunk/2)),
				fmt.Sprintf("%.0f%%", 100*rep.SeqFraction()))
		}
		return
	}

	var src trace.Reader
	switch {
	case *traceF != "":
		r, closer, err := trace.OpenPath(*traceF, *format)
		if err != nil {
			fatal("%v", err)
		}
		defer closer.Close()
		src = r
		if mr, ok := r.(*trace.MapReader); ok {
			f := mr.File()
			fmt.Printf("v2 trace:        %d blocks, %d refs, %d bytes (%.3f bytes/ref)\n",
				f.Blocks(), f.Refs(), f.Size(), f.BytesPerRef())
		}
	case *wl != "":
		spec, err := workload.Get(*wl)
		if err != nil {
			fatal("%v", err)
		}
		n := *refs
		if n == 0 {
			n = spec.DefaultRefs
		}
		src = spec.New(n)
	default:
		fatal("need -workload, -trace, or -all")
	}

	rep, err := tracestat.Analyze(src)
	if err != nil {
		fatal("%v", err)
	}
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
