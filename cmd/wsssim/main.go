// Command wsssim computes average working-set sizes (the paper's
// Section 4 metric) over a synthetic workload or trace file, for any set
// of single page sizes and optionally the dynamic 4KB/32KB scheme.
//
// Examples:
//
//	wsssim -workload li                         # 4K..64K + two-page
//	wsssim -workload tomcatv -T 2000000 -sizes 4096,32768
//	wsssim -trace foo.trc -format text
//	wsssim -workload li -stats -                # JSON run report on stderr
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/obs"
	"twopage/internal/policy"
	"twopage/internal/profiling"
	"twopage/internal/trace"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a single os.Exit, so the deferred
// profile flush runs on every exit path (the old fatal() helper called
// os.Exit directly and truncated -cpuprofile output on errors).
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("wsssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl      = fs.String("workload", "", "synthetic workload name")
		refs    = fs.Uint64("refs", 0, "trace length (0 = workload default)")
		traceF  = fs.String("trace", "", "trace file instead of a workload")
		format  = fs.String("format", "auto", "trace file format: auto, v2, binary, or text")
		window  = fs.Uint64("T", 0, "working-set window in references (0 = refs/8)")
		sizes   = fs.String("sizes", "4096,8192,16384,32768,65536", "comma-separated page sizes in bytes")
		two     = fs.Bool("two", true, "also compute the dynamic 4KB/32KB scheme")
		shards  = fs.Int("shards", 1, "compute the static pass over this many v2-trace sections in parallel; the merge is exact, so any value gives the serial result (needs -trace)")
		warmup  = fs.Uint64("warmup", 0, "accepted for interface symmetry with tlbsim/paper; the static merge is exact, so wsssim never needs (and rejects) a warm-up")
		statsF  = fs.String("stats", "", "write a JSON run report to this file (\"-\" = stderr)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *warmup > 0 {
		// The Slutz–Traiger accumulation decomposes exactly across shard
		// boundaries, so there is no cold-start error for a warm-up to
		// amortize; reject rather than silently ignore the flag.
		fmt.Fprintln(stderr, "wsssim: -warmup is not applicable (the sharded static merge is exact; no warm-up phase exists)")
		return 2
	}

	var pageSizes []addr.PageSize
	for _, f := range strings.Split(*sizes, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil || !addr.PageSize(v).Valid() {
			fmt.Fprintf(stderr, "wsssim: bad page size %q\n", f)
			return 1
		}
		pageSizes = append(pageSizes, addr.PageSize(v))
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	// open returns a fresh reader over the configured source; the
	// two-page scheme is a second pass, so it is called up to twice.
	// v2 files are mmap'd once and reread via a new cursor for free.
	var mapped *trace.File
	var srcName string
	open := func() (trace.Reader, error) {
		switch {
		case *traceF != "":
			srcName = *traceF
			if mapped != nil {
				return mapped.Reader(), nil
			}
			r, closer, err := trace.OpenPath(*traceF, *format)
			if err != nil {
				return nil, err
			}
			if mr, ok := r.(*trace.MapReader); ok {
				mapped = mr.File()
			}
			_ = closer // released at process exit
			return r, nil
		case *wl != "":
			spec, err := workload.Get(*wl)
			if err != nil {
				return nil, err
			}
			srcName = *wl
			n := *refs
			if n == 0 {
				n = spec.DefaultRefs
			}
			return spec.New(n), nil
		default:
			return nil, errors.New("need -workload or -trace")
		}
	}

	first, err := open()
	if err != nil {
		fmt.Fprintf(stderr, "wsssim: %v\n", err)
		return 1
	}
	n := *refs
	if n == 0 {
		if *wl != "" {
			if spec, err := workload.Get(*wl); err == nil {
				n = spec.DefaultRefs
			}
		} else if mapped != nil {
			n = mapped.Refs()
		}
	}
	T := *window
	if T == 0 {
		if n == 0 {
			T = 1 << 20
		} else {
			T = n / 8
		}
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "wsssim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "wsssim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	// Counters for the -stats report: references observed per pass via a
	// Tee (the static pass may be shorter than requested when a trace
	// file runs out), decode work harvested from the readers at the end.
	var totals obs.Counters
	var passes []obs.Pass
	start := time.Now()

	var results []wss.Result
	var c obs.Counters
	if *shards > 1 {
		if mapped == nil {
			fmt.Fprintln(stderr, "wsssim: -shards needs a v2 -trace file (sections require random access)")
			return 1
		}
		results, c, err = staticSharded(ctx, mapped, *shards, T, pageSizes)
	} else {
		var staticRefs uint64
		staticSrc := trace.NewTee(first, func(batch []trace.Ref) { staticRefs += uint64(len(batch)) })
		results, err = core.MeasureStaticWSS(ctx, staticSrc, T, pageSizes...)
		if err == nil {
			c = core.DecodeCounters(staticSrc)
			c.Refs = staticRefs
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			fmt.Fprintln(stderr, "wsssim: interrupted")
			return 130
		}
		fmt.Fprintf(stderr, "wsssim: %v\n", err)
		return 1
	}
	c.Passes = 1
	c.WSSPages = results[0].Pages
	passes = append(passes, obs.Pass{Key: fmt.Sprintf("wss-static w=%s T=%d", srcName, T), Counters: c})
	totals.Add(c)

	base := results[0]
	fmt.Fprintf(stdout, "T = %d references\n", T)
	fmt.Fprintf(stdout, "%-10s %-12s %s\n", "scheme", "avg WSS", "normalized (vs first)")
	for _, r := range results {
		fmt.Fprintf(stdout, "%-10s %-12s %.3f\n", r.Scheme, wss.FormatBytes(r.AvgBytes),
			metrics.WSNormalized(r.AvgBytes, base.AvgBytes))
	}
	if *two {
		second, err := open()
		if err != nil {
			fmt.Fprintf(stderr, "wsssim: %v\n", err)
			return 1
		}
		var twoRefs uint64
		twoSrc := trace.NewTee(second, func(batch []trace.Ref) { twoRefs += uint64(len(batch)) })
		res, stats, err := core.MeasureTwoSizeWSS(ctx, twoSrc, policy.DefaultTwoSizeConfig(int(T)))
		if err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				fmt.Fprintln(stderr, "wsssim: interrupted")
				return 130
			}
			fmt.Fprintf(stderr, "wsssim: %v\n", err)
			return 1
		}
		c := core.DecodeCounters(twoSrc)
		c.Passes = 1
		c.Refs = twoRefs
		c.Promotions = stats.Promotions
		c.Demotions = stats.Demotions
		passes = append(passes, obs.Pass{Key: fmt.Sprintf("wss-two w=%s T=%d", srcName, T), Counters: c})
		totals.Add(c)
		fmt.Fprintf(stdout, "%-10s %-12s %.3f   (promotions %d, demotions %d)\n",
			res.Scheme, wss.FormatBytes(res.AvgBytes),
			metrics.WSNormalized(res.AvgBytes, base.AvgBytes),
			stats.Promotions, stats.Demotions)
	}

	if *statsF != "" {
		rep := obs.New("wsssim")
		rep.Workloads = []string{srcName}
		rep.WallMS = time.Since(start).Milliseconds()
		rep.Totals = totals
		rep.Passes = passes
		if err := rep.Write(*statsF, stderr); err != nil {
			fmt.Fprintf(stderr, "wsssim: %v\n", err)
			return 1
		}
	}
	return 0
}

// staticSharded computes the static working-set pass over n disjoint
// sections of a v2 trace in parallel. The Slutz–Traiger accumulation
// decomposes exactly across a partition of the stream (wss.MergeStatic),
// so the result is byte-identical to the serial pass for any n.
func staticSharded(ctx context.Context, f *trace.File, n int, T uint64, sizes []addr.PageSize) ([]wss.Result, obs.Counters, error) {
	if b := f.Blocks(); n > b {
		n = b
	}
	if n < 1 {
		n = 1
	}
	shifts := make([]uint, len(sizes))
	for i, s := range sizes {
		shifts[i] = s.Shift()
	}
	type part struct {
		calc *wss.StaticShard
		dec  trace.DecodeStats
	}
	eng := engine.New(n)
	parts, err := engine.MapSections(eng, ctx, f, n, "wss-static", func(ctx context.Context, r *trace.MapReader, section int) (part, error) {
		calc := wss.NewStaticShard(T, f.SectionStart(section, n), shifts...)
		if _, err := trace.DrainContext(ctx, r, func(batch []trace.Ref) {
			for _, ref := range batch {
				calc.Step(ref.Addr)
			}
		}); err != nil {
			return part{}, err
		}
		return part{calc: calc, dec: r.DecodeStats()}, nil
	}).Wait(ctx)
	if err != nil {
		return nil, obs.Counters{}, err
	}
	calcs := make([]*wss.StaticShard, len(parts))
	var c obs.Counters
	for i, p := range parts {
		calcs[i] = p.calc
		c.Refs += p.calc.Steps()
		c.DecodedRefs += p.dec.Refs
		c.DecodedBlocks += p.dec.Blocks
		c.DecodedBytes += p.dec.Bytes
	}
	return wss.MergeStatic(calcs), c, nil
}
