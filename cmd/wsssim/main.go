// Command wsssim computes average working-set sizes (the paper's
// Section 4 metric) over a synthetic workload or trace file, for any set
// of single page sizes and optionally the dynamic 4KB/32KB scheme.
//
// Examples:
//
//	wsssim -workload li                         # 4K..64K + two-page
//	wsssim -workload tomcatv -T 2000000 -sizes 4096,32768
//	wsssim -trace foo.trc -format text
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/profiling"
	"twopage/internal/trace"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

func main() {
	var (
		wl     = flag.String("workload", "", "synthetic workload name")
		refs   = flag.Uint64("refs", 0, "trace length (0 = workload default)")
		traceF  = flag.String("trace", "", "trace file instead of a workload")
		format  = flag.String("format", "auto", "trace file format: auto, v2, binary, or text")
		window  = flag.Uint64("T", 0, "working-set window in references (0 = refs/8)")
		sizes   = flag.String("sizes", "4096,8192,16384,32768,65536", "comma-separated page sizes in bytes")
		two     = flag.Bool("two", true, "also compute the dynamic 4KB/32KB scheme")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var pageSizes []addr.PageSize
	for _, f := range strings.Split(*sizes, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil || !addr.PageSize(v).Valid() {
			fatal("bad page size %q", f)
		}
		pageSizes = append(pageSizes, addr.PageSize(v))
	}

	// open returns a fresh reader over the configured source; the
	// two-page scheme is a second pass, so it is called up to twice.
	// v2 files are mmap'd once and reread via a new cursor for free.
	var mapped *trace.File
	open := func() trace.Reader {
		switch {
		case *traceF != "":
			if mapped != nil {
				return mapped.Reader()
			}
			r, closer, err := trace.OpenPath(*traceF, *format)
			if err != nil {
				fatal("%v", err)
			}
			if mr, ok := r.(*trace.MapReader); ok {
				mapped = mr.File()
			}
			_ = closer // released at process exit
			return r
		case *wl != "":
			spec, err := workload.Get(*wl)
			if err != nil {
				fatal("%v", err)
			}
			n := *refs
			if n == 0 {
				n = spec.DefaultRefs
			}
			return spec.New(n)
		default:
			fatal("need -workload or -trace")
			return nil
		}
	}

	first := open()
	n := *refs
	if n == 0 {
		if *wl != "" {
			if spec, err := workload.Get(*wl); err == nil {
				n = spec.DefaultRefs
			}
		} else if mapped != nil {
			n = mapped.Refs()
		}
	}
	T := *window
	if T == 0 {
		if n == 0 {
			T = 1 << 20
		} else {
			T = n / 8
		}
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal("%v", err)
		}
	}()

	results, err := core.MeasureStaticWSS(context.Background(), first, T, pageSizes...)
	if err != nil {
		fatal("%v", err)
	}
	base := results[0]
	fmt.Printf("T = %d references\n", T)
	fmt.Printf("%-10s %-12s %s\n", "scheme", "avg WSS", "normalized (vs first)")
	for _, r := range results {
		fmt.Printf("%-10s %-12s %.3f\n", r.Scheme, wss.FormatBytes(r.AvgBytes),
			metrics.WSNormalized(r.AvgBytes, base.AvgBytes))
	}
	if *two {
		res, stats, err := core.MeasureTwoSizeWSS(context.Background(), open(), policy.DefaultTwoSizeConfig(int(T)))
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%-10s %-12s %.3f   (promotions %d, demotions %d)\n",
			res.Scheme, wss.FormatBytes(res.AvgBytes),
			metrics.WSNormalized(res.AvgBytes, base.AvgBytes),
			stats.Promotions, stats.Demotions)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wsssim: "+format+"\n", args...)
	os.Exit(1)
}
