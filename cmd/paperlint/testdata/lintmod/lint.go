// Package lintmod seeds exactly one violation per analyzer the golden
// test pins: a deprecated cross-package use, a Merge dropping a
// counter, a Key omitting a knob, an allocation reached from a hot
// function through a callee, and one stale suppression directive. The
// committed lint_golden.json is the byte-exact -json rendering.
package lintmod

import (
	"fmt"

	"lintmod/old"
)

// Shift re-exports the legacy knob (deprcheck).
const Shift = old.LegacyShift

// Stats drops Hits from its merge (mergecheck).
type Stats struct {
	Refs uint64
	Hits uint64
}

func (s *Stats) Merge(o Stats) {
	s.Refs += o.Refs
}

// Config omits Ways from its key (keycheck).
type Config struct {
	Entries int
	Ways    int
}

func (c Config) Key() (string, error) {
	return fmt.Sprintf("cfg:%d", c.Entries), nil
}

func alloc() []int { return make([]int, 4) }

//paperlint:hot
func hot() []int {
	return alloc() // interprocedural hotalloc, reported here
}

var x = 1 //paperlint:ignore powtwo suppresses nothing: staleignore reports it
