// Package old carries the deprecated shim the fixture's root package
// reaches for.
package old

// LegacyShift is the old page-shift knob.
//
// Deprecated: use Shifts.
const LegacyShift = 12
