package main

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twopage/internal/analysis"
	"twopage/internal/analysis/load"
)

// TestJSONStable pins the machine-readable output format: field names,
// order, indentation and the empty-array form are an interface for CI
// tooling and must not drift.
func TestJSONStable(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/a/a.go", Line: 3, Column: 7},
			Analyzer: "determinism",
			Message:  `range over map m: iteration order is randomized`,
		},
		{
			Pos:      token.Position{Filename: "internal/b/b.go", Line: 11, Column: 2},
			Analyzer: "hotalloc",
			Message:  "hot Read: make allocates",
		},
	}
	var buf bytes.Buffer
	if err := Render(&buf, diags, true); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "internal/a/a.go",
    "line": 3,
    "col": 7,
    "analyzer": "determinism",
    "message": "range over map m: iteration order is randomized"
  },
  {
    "file": "internal/b/b.go",
    "line": 11,
    "col": 2,
    "analyzer": "hotalloc",
    "message": "hot Read: make allocates"
  }
]
`
	if got := buf.String(); got != want {
		t.Errorf("JSON output drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}

	buf.Reset()
	if err := Render(&buf, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty JSON output = %q, want %q", got, "[]\n")
	}
}

// TestSeededViolation builds a throwaway module containing one hotalloc
// violation and checks the driver end to end: exit code 1 and a
// diagnostic naming the analyzer, both in text and JSON mode.
func TestSeededViolation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module seeded\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "seed.go"), `package seeded

//paperlint:hot
func hot(xs []int) []int {
	return append(xs, 1)
}
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "seed.go:5:9: hotalloc:") {
		t.Errorf("text output missing positioned diagnostic:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("run -json = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"analyzer": "hotalloc"`) {
		t.Errorf("JSON output missing analyzer field:\n%s", out.String())
	}
}

// TestSuppressedSeedIsClean is the suppression counterpart: the same
// violation under a justified ignore exits 0.
func TestSuppressedSeedIsClean(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module seeded\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "seed.go"), `package seeded

//paperlint:hot
func hot(xs []int) []int {
	return append(xs, 1) //paperlint:ignore hotalloc caller preallocates; never grows in practice
}
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

// update rewrites lint_golden.json from the current run instead of
// comparing against it: go test ./cmd/paperlint -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata/lint_golden.json")

// TestGoldenJSON pins the full -json output — file order, positions,
// analyzer names, message wording — over a fixture module seeding one
// violation per analyzer (including the interprocedural hotalloc path
// and a stale suppression). Any drift in diagnostic rendering or
// ordering is a diff against a committed artifact, not a silent change.
func TestGoldenJSON(t *testing.T) {
	dir := filepath.Join("testdata", "lintmod")
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1; stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	golden := filepath.Join("testdata", "lint_golden.json")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, out.String(), want)
	}
}

// TestShippedTreeClean is the gate the Makefile relies on: the
// repository's own tree must carry zero unsuppressed diagnostics.
func TestShippedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	res, err := load.Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Lint(res)
	Relativize(diags, filepath.Join("..", ".."))
	for _, d := range diags {
		t.Errorf("shipped tree: %s", d.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
