// Command paperlint runs the repository's invariant analyzers (package
// twopage/internal/analysis) over the module and reports violations in
// vet style, one file:line:col line per finding, or as a JSON array
// with -json. It exits 1 when any diagnostic survives suppression and
// 2 on internal failure, so `make verify` and CI can gate on it.
//
// Scope follows the invariants, not the directory tree:
//
//   - determinism runs on the packages reachable from the experiment
//     and table-rendering roots (internal/experiments,
//     internal/tableio), because only code feeding rendered output can
//     break byte-identical tables;
//   - ctxcheck runs on the simulation drivers (internal/core,
//     internal/mmu, internal/engine) that own reference-drain loops;
//   - errfmt runs on the I/O boundary (internal/trace,
//     internal/workload);
//   - hotalloc and powtwo run everywhere: hot annotations and
//     power-of-two construction sites may appear in any package;
//   - mergecheck, keycheck and deprcheck run everywhere: merge-shaped
//     stats methods, memo-key builders and deprecated identifiers are
//     matched structurally, not by directory;
//   - staleignore findings (suppression directives that suppressed
//     nothing across the whole run) are appended at the end.
//
// Interprocedural facts — the static call graph, field-use sets and
// the deprecation index — are built once over every loaded package, so
// an allocation two calls below a //paperlint:hot function, or a
// counter handled only by a helper the Merge method calls, is resolved
// across package boundaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"twopage/internal/analysis"
	"twopage/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dir := fs.String("dir", ".", "module directory to analyze")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: paperlint [-json] [-dir module] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	res, err := load.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "paperlint: %v\n", err)
		return 2
	}
	diags := Lint(res)
	Relativize(diags, *dir)
	if err := Render(stdout, diags, *jsonOut); err != nil {
		fmt.Fprintf(stderr, "paperlint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// determinismRoots are the packages whose output must be byte-identical
// run to run; determinism covers them and everything they (transitively)
// import within the module.
var determinismRoots = []string{
	"twopage/internal/experiments",
	"twopage/internal/tableio",
}

// ctxScope holds the simulation-driver packages bound by the
// cancellation contract.
var ctxScope = map[string]bool{
	"twopage/internal/core":   true,
	"twopage/internal/mmu":    true,
	"twopage/internal/engine": true,
}

// errScope holds the I/O boundary packages bound by the error-handling
// conventions.
var errScope = map[string]bool{
	"twopage/internal/trace":    true,
	"twopage/internal/workload": true,
}

// Lint applies the scoped analyzer suite to every loaded package and
// returns the surviving diagnostics in stable order. Whole-program
// facts (call graph, field uses, deprecation index) and the
// suppression table are built once over every loaded package, so the
// interprocedural analyzers see across package boundaries and
// //paperlint:ignore usage is tracked run-wide; directives that
// suppressed nothing anywhere are appended as staleignore findings.
func Lint(res *load.Result) []analysis.Diagnostic {
	var (
		det   = analysis.Determinism()
		hot   = analysis.HotAlloc()
		pow   = analysis.PowTwo(analysis.DefaultPowTwoConfig())
		ctx   = analysis.CtxCheck()
		errf  = analysis.ErrFmt()
		merge = analysis.MergeCheck()
		key   = analysis.KeyCheck()
		depr  = analysis.DeprCheck()
	)
	prog := analysis.NewProgram(res.Fset, res.Info)
	supp := analysis.NewSuppressions(res.Fset)
	for _, p := range res.Pkgs {
		prog.AddPackage(p.Types, p.Files)
		supp.AddFiles(p.Files...)
	}
	detScope := determinismScope(res.Pkgs)
	var out []analysis.Diagnostic
	for _, p := range res.Pkgs {
		suite := []*analysis.Analyzer{hot, pow, merge, key, depr}
		if detScope[p.ImportPath] {
			suite = append(suite, det)
		}
		if ctxScope[p.ImportPath] {
			suite = append(suite, ctx)
		}
		if errScope[p.ImportPath] {
			suite = append(suite, errf)
		}
		ds, err := analysis.RunPkg(prog, supp, p.Types, p.Files, suite)
		if err != nil {
			// Analyzer-internal errors are programming bugs; surface them
			// as diagnostics so the run still fails loudly.
			out = append(out, analysis.Diagnostic{
				Analyzer: "paperlint",
				Message:  err.Error(),
			})
			continue
		}
		out = append(out, ds...)
	}
	out = append(out, supp.Stale()...)
	analysis.Sort(out)
	return out
}

// determinismScope returns the module packages reachable from the
// determinism roots, roots included.
func determinismScope(pkgs []*load.Package) map[string]bool {
	inModule := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		inModule[p.ImportPath] = true
	}
	roots := map[string]bool{}
	for _, r := range determinismRoots {
		roots[r] = true
	}
	scope := map[string]bool{}
	for _, p := range pkgs {
		if !roots[p.ImportPath] {
			continue
		}
		scope[p.ImportPath] = true
		for d := range p.Deps {
			if inModule[d] {
				scope[d] = true
			}
		}
	}
	return scope
}

// Relativize rewrites diagnostic file paths relative to dir for
// readable, location-independent output.
func Relativize(diags []analysis.Diagnostic, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// jsonDiag is the stable machine-readable serialization of one
// diagnostic; field names and order are part of the tool's interface.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Render writes diagnostics as vet-style lines, or as an indented JSON
// array when jsonOut is set (an empty run renders as []).
func Render(w io.Writer, diags []analysis.Diagnostic, jsonOut bool) error {
	if !jsonOut {
		for _, d := range diags {
			if _, err := fmt.Fprintln(w, d.String()); err != nil {
				return err
			}
		}
		return nil
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
