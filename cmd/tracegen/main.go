// Command tracegen writes a synthetic workload's reference stream to a
// trace file, so external tools (or the -trace flags of paper, tlbsim,
// and wsssim) can replay identical traces. Format v2 is the
// block-structured columnar encoding that trace.MapReader decodes
// zero-copy from an mmap; "binary" is the v1 streaming format and
// "text" a one-line-per-ref form for interop.
//
// Example:
//
//	tracegen -workload matrix300 -refs 1000000 -o m300.trc
//	tracegen -workload li -format v2 -o li.trc
//	tracegen -workload li -format text -o li.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"twopage/internal/trace"
	"twopage/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "", "synthetic workload name")
		specF  = flag.String("spec", "", "custom workload spec file (see workload.Parse)")
		refs   = flag.Uint64("refs", 0, "trace length (0 = workload default)")
		out    = flag.String("o", "", "output file (default <workload>.trc)")
		format = flag.String("format", "binary", "v2, binary, or text")
	)
	flag.Parse()

	var src trace.Reader
	var n uint64
	name := ""
	switch {
	case *specF != "":
		text, err := os.ReadFile(*specF)
		if err != nil {
			fatal("%v", err)
		}
		n = *refs
		if n == 0 {
			n = 4_000_000
		}
		src, err = workload.Parse(*specF, n, string(text))
		if err != nil {
			fatal("%v", err)
		}
		name = "custom"
	case *wl != "":
		spec, err := workload.Get(*wl)
		if err != nil {
			fatal("%v", err)
		}
		n = *refs
		if n == 0 {
			n = spec.DefaultRefs
		}
		src = spec.New(n)
		name = spec.Name
	default:
		fatal("need -workload or -spec (workloads: %v)", workload.Names())
	}
	path := *out
	if path == "" {
		path = name + ".trc"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var written uint64
	var writeErr error
	switch *format {
	case "v2":
		w := trace.NewV2Writer(f)
		written, err = trace.Drain(src, func(batch []trace.Ref) {
			if werr := w.Write(batch); werr != nil && writeErr == nil {
				writeErr = werr
			}
		})
		if writeErr == nil {
			writeErr = w.Flush()
		}
	case "binary":
		w := trace.NewWriter(f)
		written, err = trace.Drain(src, func(batch []trace.Ref) {
			if werr := w.Write(batch); werr != nil && writeErr == nil {
				writeErr = werr
			}
		})
		if writeErr == nil {
			writeErr = w.Flush()
		}
	case "text":
		w := trace.NewTextWriter(f)
		written, err = trace.Drain(src, func(batch []trace.Ref) {
			if werr := w.Write(batch); werr != nil && writeErr == nil {
				writeErr = werr
			}
		})
		if writeErr == nil {
			writeErr = w.Flush()
		}
	default:
		fatal("unknown format %q", *format)
	}
	if err == nil {
		err = writeErr
	}
	if err != nil {
		fatal("writing %s: %v", path, err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d references to %s (%d bytes, %.2f bytes/ref)\n",
		written, path, st.Size(), float64(st.Size())/float64(written))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
