package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"twopage/internal/experiments"
	"twopage/internal/obs"
	"twopage/internal/plot"
)

var update = flag.Bool("update", false, "rewrite the run-report golden file")

// Every chartSpec entry must reference an existing experiment and
// columns that exist in its table; the chart must build and carry
// numeric data. Guards against column drift when experiments evolve.
func TestChartSpecsMatchTables(t *testing.T) {
	for id, spec := range chartSpec {
		e, err := experiments.Get(id)
		if err != nil {
			t.Errorf("chartSpec references unknown experiment %q", id)
			continue
		}
		tbl, err := e.Run(context.Background(),
			experiments.NewOptions(experiments.WithScale(0.01), experiments.WithWorkloads("li")))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		heads := tbl.Headers()
		for _, c := range append(append([]int{}, spec.cat...), spec.val...) {
			if c < 0 || c >= len(heads) {
				t.Errorf("%s: column %d out of range (%d headers)", id, c, len(heads))
			}
		}
		chart, err := plot.FromTable(tbl, e.Title, spec.cat, spec.val)
		if err != nil {
			t.Errorf("%s: chart build failed: %v", id, err)
			continue
		}
		// The value columns must actually be numeric in at least one row.
		numeric := false
		for r := 0; r < tbl.Rows() && !numeric; r++ {
			for _, vc := range spec.val {
				if _, err := strconv.ParseFloat(strings.TrimSpace(tbl.Cell(r, vc)), 64); err == nil {
					numeric = true
					break
				}
			}
		}
		if !numeric {
			t.Errorf("%s: no numeric values in declared chart columns", id)
		}
		var sb strings.Builder
		if _, err := chart.WriteTo(&sb); err != nil {
			t.Errorf("%s: chart render failed: %v", id, err)
		}
	}
}

// runPaper drives the whole command in-process and returns its exit
// code plus captured stdout/stderr.
func runPaper(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// maskReport drops the only run-dependent lines of a report — wall
// times and the parallelism level — leaving the deterministic counter
// sections intact.
var runDependent = regexp.MustCompile(`"(wall_ms|parallelism)":`)

func maskReport(s string) string {
	lines := strings.Split(s, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if runDependent.MatchString(l) {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// TestRunReportGolden pins the -stats JSON schema: the masked report
// for a fixed scale/workload/experiment must match the blessed golden
// byte-for-byte. Run with -update after an intentional schema change.
func TestRunReportGolden(t *testing.T) {
	rep := filepath.Join(t.TempDir(), "report.json")
	code, stdout, stderr := runPaper(t,
		"-scale", "0.01", "-workloads", "li", "-j", "1", "-stats", rep, "table3.1")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "RPI") {
		t.Errorf("table output missing from stdout:\n%s", stdout)
	}
	raw, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded obs.Report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Schema != obs.Schema {
		t.Errorf("schema = %q, want %q", decoded.Schema, obs.Schema)
	}
	got := maskReport(string(raw))
	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/paper -run TestRunReportGolden -update` to bless)", err)
	}
	if got != string(want) {
		t.Errorf("masked report drifted from golden:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunReportParallelismInvariant asserts the tentpole guarantee: the
// counter sections of the report are byte-identical across -j values.
func TestRunReportParallelismInvariant(t *testing.T) {
	dir := t.TempDir()
	reports := make([]string, 2)
	for i, j := range []string{"1", "8"} {
		rep := filepath.Join(dir, "report-j"+j+".json")
		code, _, stderr := runPaper(t,
			"-scale", "0.01", "-workloads", "li,worm", "-j", j, "-stats", rep,
			"table3.1", "fig4.2", "tlbsweep")
		if code != 0 {
			t.Fatalf("-j %s: exit %d, stderr:\n%s", j, code, stderr)
		}
		raw, err := os.ReadFile(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = maskReport(string(raw))
	}
	if reports[0] != reports[1] {
		t.Errorf("masked reports differ between -j 1 and -j 8:\n-j 1:\n%s\n-j 8:\n%s",
			reports[0], reports[1])
	}
}

// TestFailingExperimentKeepsProfileAndOutput is the regression test for
// the os.Exit-mid-main bug: a failing experiment must still flush a
// valid CPU profile, print the successful tables, and exit 1.
func TestFailingExperimentKeepsProfileAndOutput(t *testing.T) {
	prof := filepath.Join(t.TempDir(), "cpu.prof")
	code, stdout, stderr := runPaper(t,
		"-scale", "0.01", "-workloads", "li", "-cpuprofile", prof,
		"table3.1", "nosuchexp")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "RPI") {
		t.Errorf("successful table missing from stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, `unknown experiment "nosuchexp"`) {
		t.Errorf("stderr does not name the failed experiment:\n%s", stderr)
	}
	if !strings.Contains(stderr, "1 of 2 experiments failed") {
		t.Errorf("stderr missing failure summary:\n%s", stderr)
	}
	b, err := os.ReadFile(prof)
	if err != nil {
		t.Fatalf("CPU profile not written: %v", err)
	}
	// A flushed pprof profile is gzip-compressed protobuf; a truncated
	// one (the old bug) is empty.
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Errorf("CPU profile invalid: %d bytes, magic %x", len(b), b[:min(2, len(b))])
	}
}

// A failing experiment must also leave the -stats report intact, with
// the failure recorded per experiment.
func TestFailingExperimentStillWritesReport(t *testing.T) {
	rep := filepath.Join(t.TempDir(), "report.json")
	code, _, _ := runPaper(t,
		"-scale", "0.01", "-workloads", "li", "-stats", rep, "table3.1", "nosuchexp")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	raw, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("report not written on failure: %v", err)
	}
	var decoded obs.Report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if len(decoded.Experiments) != 2 {
		t.Fatalf("experiments = %d entries, want 2", len(decoded.Experiments))
	}
	if decoded.Experiments[0].Error != "" {
		t.Errorf("table3.1 recorded error %q, want none", decoded.Experiments[0].Error)
	}
	if !strings.Contains(decoded.Experiments[1].Error, "nosuchexp") {
		t.Errorf("nosuchexp error not recorded: %+v", decoded.Experiments[1])
	}
	if decoded.Totals.Refs == 0 {
		t.Error("partial counters missing from failed-run report")
	}
}

func TestSplitWorkloads(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []string
		wantErr string
	}{
		{"", nil, ""},
		{"li", []string{"li"}, ""},
		{" li , worm ", []string{"li", "worm"}, ""},
		{"li,,worm", []string{"li", "worm"}, ""},
		{" , ,", nil, ""},
		{"li,bogus,worm", nil, `"bogus"`},
	} {
		got, err := splitWorkloads(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("splitWorkloads(%q) err = %v, want mention of %s", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("splitWorkloads(%q): %v", tc.in, err)
			continue
		}
		if strings.Join(got, "|") != strings.Join(tc.want, "|") {
			t.Errorf("splitWorkloads(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// Bad -workloads tokens must fail fast with exit 1, before any
// experiment runs.
func TestBadWorkloadFlagFailsFast(t *testing.T) {
	code, stdout, stderr := runPaper(t, "-scale", "0.01", "-workloads", "li,,bogus", "table3.1")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty on flag error:\n%s", stdout)
	}
	if !strings.Contains(stderr, `-workloads`) || !strings.Contains(stderr, `"bogus"`) {
		t.Errorf("error does not name flag and token:\n%s", stderr)
	}
}
