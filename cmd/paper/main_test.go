package main

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"twopage/internal/experiments"
	"twopage/internal/plot"
)

// Every chartSpec entry must reference an existing experiment and
// columns that exist in its table; the chart must build and carry
// numeric data. Guards against column drift when experiments evolve.
func TestChartSpecsMatchTables(t *testing.T) {
	for id, spec := range chartSpec {
		e, err := experiments.Get(id)
		if err != nil {
			t.Errorf("chartSpec references unknown experiment %q", id)
			continue
		}
		tbl, err := e.Run(context.Background(),
			experiments.NewOptions(experiments.WithScale(0.01), experiments.WithWorkloads("li")))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		heads := tbl.Headers()
		for _, c := range append(append([]int{}, spec.cat...), spec.val...) {
			if c < 0 || c >= len(heads) {
				t.Errorf("%s: column %d out of range (%d headers)", id, c, len(heads))
			}
		}
		chart, err := plot.FromTable(tbl, e.Title, spec.cat, spec.val)
		if err != nil {
			t.Errorf("%s: chart build failed: %v", id, err)
			continue
		}
		// The value columns must actually be numeric in at least one row.
		numeric := false
		for r := 0; r < tbl.Rows() && !numeric; r++ {
			for _, vc := range spec.val {
				if _, err := strconv.ParseFloat(strings.TrimSpace(tbl.Cell(r, vc)), 64); err == nil {
					numeric = true
					break
				}
			}
		}
		if !numeric {
			t.Errorf("%s: no numeric values in declared chart columns", id)
		}
		var sb strings.Builder
		if _, err := chart.WriteTo(&sb); err != nil {
			t.Errorf("%s: chart render failed: %v", id, err)
		}
	}
}
