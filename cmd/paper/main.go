// Command paper regenerates the tables and figures of "Tradeoffs in
// Supporting Two Page Sizes" (Talluri, Kong, Hill, Patterson; ISCA 1992)
// from the synthetic workload models in this repository.
//
// Usage:
//
//	paper [-scale f] [-csv] [-workloads a,b,c] [experiment ...]
//	paper -list
//
// With no experiment arguments (or "all"), every experiment runs in
// order. Scale 1.0 (default) runs the full-length traces; smaller scales
// shrink traces and windows proportionally for quick looks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"twopage/internal/experiments"
	"twopage/internal/plot"
)

// chartSpec maps chartable experiments to the table columns forming
// categories and value series; Log marks the paper's log-axis figures.
var chartSpec = map[string]struct {
	cat, val []int
	log      bool
}{
	"fig4.1":   {[]int{0}, []int{1, 2, 3, 4}, true},
	"fig4.2":   {[]int{0}, []int{1, 2, 3, 4}, true},
	"fig5.1":   {[]int{0}, []int{1, 2, 3, 4}, false},
	"fig5.2":   {[]int{0, 1}, []int{2, 3, 4, 5}, false},
	"table5.1": {[]int{0, 1}, []int{2, 3, 4, 5}, false},
	"conflict": {[]int{0}, []int{1, 2, 3, 4}, false},
	"combos":   {[]int{0}, []int{1, 2, 3}, false},
	"tlbsweep": {[]int{0, 1}, []int{2, 3, 4, 5, 6}, true},
}

func main() {
	scale := flag.Float64("scale", 1.0, "trace-length multiplier (1.0 = full size)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "render figures as ASCII bar charts where applicable")
	list := flag.Bool("list", false, "list available experiments and exit")
	workloads := flag.String("workloads", "", "comma-separated program subset (default: experiment's own)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [experiment ...|all]\n\nFlags:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nExperiments (run `%s -list` for details):\n", os.Args[0])
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n%13s%s\n", e.ID, e.Title, "", e.About)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	opt := experiments.Options{Scale: *scale, CSV: *csv, Out: os.Stdout}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}

	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := runOne(id, opt, *chart); err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [%s in %.1fs at scale %g]\n", id, time.Since(start).Seconds(), *scale)
	}
}

// runOne executes an experiment and renders it as a table, CSV, or —
// when requested and applicable — an ASCII chart.
func runOne(id string, opt experiments.Options, chart bool) error {
	spec, chartable := chartSpec[id]
	if !chart || !chartable {
		return experiments.Run(id, opt)
	}
	e, err := experiments.Get(id)
	if err != nil {
		return err
	}
	tbl, err := e.Run(opt)
	if err != nil {
		return err
	}
	c, err := plot.FromTable(tbl, e.Title, spec.cat, spec.val)
	if err != nil {
		return err
	}
	c.Log = spec.log
	_, err = c.WriteTo(os.Stdout)
	return err
}
