// Command paper regenerates the tables and figures of "Tradeoffs in
// Supporting Two Page Sizes" (Talluri, Kong, Hill, Patterson; ISCA 1992)
// from the synthetic workload models in this repository.
//
// Usage:
//
//	paper [-scale f] [-j n] [-csv|-json] [-workloads a,b,c] [experiment ...]
//	paper -trace li.trc tlbsweep      # run experiments over a trace file
//	paper -stats report.json all      # also write a JSON run report
//	paper -list
//
// With no experiment arguments (or "all"), every experiment runs in
// order. Scale 1.0 (default) runs the full-length traces; smaller scales
// shrink traces and windows proportionally for quick looks.
//
// Beyond the paper's own two-size tables, the ladder3 and nindex
// experiments extend the evaluation to deeper page-size hierarchies
// (4KB/32KB/256KB): the Section 3.4 policy generalized to an N-level
// promotion ladder, and Section 2.2's indexing dilemma with three
// coexisting sizes.
//
// Experiments execute concurrently over one shared engine: -j bounds
// the simulation worker pool, identical passes are simulated once, and
// tables are printed in request order — stdout is byte-identical for
// any -j. Timing and -progress reports go to stderr, as does the
// -stats run report when its destination is "-" (the report's counter
// sections are themselves identical for any -j; see internal/obs).
//
// A failed experiment does not abort the run: every successful table is
// still printed, every failure is reported on stderr, and the process
// exits 1 once at the end. SIGINT stops the simulation between batches
// and exits 130 with a one-line notice.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"twopage/internal/engine"
	"twopage/internal/experiments"
	"twopage/internal/obs"
	"twopage/internal/plot"
	"twopage/internal/profiling"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// chartSpec maps chartable experiments to the table columns forming
// categories and value series; Log marks the paper's log-axis figures.
var chartSpec = map[string]struct {
	cat, val []int
	log      bool
}{
	"fig4.1":   {[]int{0}, []int{1, 2, 3, 4}, true},
	"fig4.2":   {[]int{0}, []int{1, 2, 3, 4}, true},
	"fig5.1":   {[]int{0}, []int{1, 2, 3, 4}, false},
	"fig5.2":   {[]int{0, 1}, []int{2, 3, 4, 5}, false},
	"table5.1": {[]int{0, 1}, []int{2, 3, 4, 5}, false},
	"conflict": {[]int{0}, []int{1, 2, 3, 4}, false},
	"combos":   {[]int{0}, []int{1, 2, 3}, false},
	"tlbsweep": {[]int{0, 1}, []int{2, 3, 4, 5, 6}, true},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a single os.Exit: every error path
// returns through it, so deferred cleanups — the profile flush above
// all — always execute. (The old structure called os.Exit(1) from the
// middle of main, silently truncating -cpuprofile output whenever any
// experiment failed.)
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "trace-length multiplier (1.0 = full size)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := fs.Bool("json", false, "emit JSON documents instead of aligned tables")
	chart := fs.Bool("chart", false, "render figures as ASCII bar charts where applicable")
	list := fs.Bool("list", false, "list available experiments and exit")
	workloads := fs.String("workloads", "", "comma-separated program subset (default: experiment's own)")
	traceF := fs.String("trace", "", "run experiments over a trace file instead of the modelled programs")
	parallelism := fs.Int("j", runtime.NumCPU(), "max concurrent simulation passes")
	shards := fs.Int("shards", 1, "split each trace-file pass into this many sections simulated in parallel and merged (1 = exact serial pass; only affects -trace workloads)")
	warmup := fs.Uint64("warmup", 0, "per-shard warm-up references replayed before measuring (0 = auto from the policy window; needs -shards > 1)")
	walkPWC := fs.Int("walkpwc", 0, "walkcpi family: page-walk-cache entries per level (0 = default, negative = disable)")
	walkMem := fs.Int("walkmem", 0, "walkcpi family: memory-side cache bytes for walk loads (0 = default, negative = disable)")
	progress := fs.Bool("progress", false, "report each completed simulation pass on stderr")
	statsF := fs.String("stats", "", "write a JSON run report to this file (\"-\" = stderr)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: paper [flags] [experiment ...|all]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nExperiments (run `paper -list` for details):\n")
		for _, e := range experiments.All() {
			fmt.Fprintf(stderr, "  %s\n", e.ID)
		}
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *warmup > 0 && *shards <= 1 {
		// The serial pass has no warm-up phase; silently ignoring the
		// flag would report cold-state metrics as if they were warm.
		fmt.Fprintln(stderr, "paper: -warmup requires -shards > 1 (the serial pass replays no warm-up)")
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-12s %s\n%13s%s\n", e.ID, e.Title, "", e.About)
		}
		return 0
	}

	ids := fs.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "paper: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "paper: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *traceF != "" {
		name, err := registerTrace(*traceF)
		if err != nil {
			fmt.Fprintf(stderr, "paper: %v\n", err)
			return 1
		}
		// A trace file stands in for the whole program set unless the
		// user picked an explicit subset.
		if *workloads == "" {
			*workloads = name
		}
	}

	names, err := splitWorkloads(*workloads)
	if err != nil {
		fmt.Fprintf(stderr, "paper: %v\n", err)
		return 1
	}

	eopts := []experiments.Opt{
		experiments.WithScale(*scale),
		experiments.WithCSV(*csv),
		experiments.WithJSON(*jsonOut),
		experiments.WithParallelism(*parallelism),
		experiments.WithShards(*shards, *warmup),
		experiments.WithWalkParams(*walkPWC, *walkMem),
	}
	if len(names) > 0 {
		eopts = append(eopts, experiments.WithWorkloads(names...))
	}
	var col *obs.Collector
	if *statsF != "" {
		col = obs.NewCollector()
		eopts = append(eopts, experiments.WithCollector(col))
	}
	if *progress {
		eopts = append(eopts, experiments.WithProgress(func(ev engine.Event) {
			tag := ""
			if ev.CacheHit {
				tag = " (cached)"
			}
			fmt.Fprintf(stderr, "  [%d/%d] %s%s\n", ev.Done, ev.Submitted, ev.Key, tag)
		}))
	}
	opts := experiments.NewOptions(eopts...)

	// Every experiment renders into its own buffer on its own
	// goroutine; the shared engine bounds the simulation work and
	// deduplicates passes across experiments. Buffers are flushed in
	// request order so stdout does not depend on -j.
	type outcome struct {
		buf bytes.Buffer
		dur time.Duration
		err error
	}
	start := time.Now()
	outs := make([]outcome, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			t0 := time.Now()
			outs[i].err = runOne(ctx, id, opts, *chart, &outs[i].buf)
			outs[i].dur = time.Since(t0)
		}(i, id)
	}
	wg.Wait()
	interrupted := ctx.Err() != nil

	// Flush every successful table in request order and report every
	// failure; one bad experiment must not swallow the others' results.
	failed, printed := 0, 0
	for i, id := range ids {
		if outs[i].err != nil {
			if interrupted && errors.Is(outs[i].err, context.Canceled) {
				continue // the single "interrupted" notice below covers these
			}
			failed++
			fmt.Fprintf(stderr, "paper: %v\n", outs[i].err)
			continue
		}
		if printed > 0 {
			fmt.Fprintln(stdout)
		}
		if _, err := outs[i].buf.WriteTo(stdout); err != nil {
			fmt.Fprintf(stderr, "paper: %v\n", err)
			return 1
		}
		printed++
		fmt.Fprintf(stderr, "  [%s in %.1fs at scale %g]\n", id, outs[i].dur.Seconds(), *scale)
	}

	// The run report is written even for failed or interrupted runs:
	// partial counters are exactly what a post-mortem needs.
	if *statsF != "" {
		rep := obs.New("paper")
		rep.Scale = *scale
		rep.Workloads = names
		rep.Parallelism = *parallelism
		rep.WallMS = time.Since(start).Milliseconds()
		st := opts.Engine.Stats()
		rep.Engine = &obs.EngineStats{Submitted: st.Submitted, Done: st.Done, CacheHits: st.CacheHits}
		rep.Totals = col.Totals()
		rep.Passes = col.Passes()
		for i, id := range ids {
			es := obs.ExperimentStatus{ID: id, WallMS: outs[i].dur.Milliseconds()}
			if outs[i].err != nil {
				es.Error = outs[i].err.Error()
			}
			rep.Experiments = append(rep.Experiments, es)
		}
		if err := rep.Write(*statsF, stderr); err != nil {
			fmt.Fprintf(stderr, "paper: %v\n", err)
			if failed == 0 && !interrupted {
				return 1
			}
		}
	}

	switch {
	case interrupted:
		fmt.Fprintln(stderr, "paper: interrupted")
		return 130
	case failed > 0:
		fmt.Fprintf(stderr, "paper: %d of %d experiments failed\n", failed, len(ids))
		return 1
	}
	return 0
}

// splitWorkloads parses the -workloads flag: entries are comma-separated
// with surrounding whitespace trimmed and empty entries dropped, so
// "a, b" and "a,,b" both mean {a, b}. Each name is validated against the
// workload registry up front, naming the offending token instead of
// failing later inside an arbitrary experiment.
func splitWorkloads(s string) ([]string, error) {
	var names []string
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		if _, err := workload.Get(name); err != nil {
			return nil, fmt.Errorf("-workloads: %w", err)
		}
		names = append(names, name)
	}
	return names, nil
}

// registerTrace makes a trace file available as a workload named
// trace:<basename>. v2 files are memory-mapped and shared across all
// concurrent passes; v1 and text traces are decoded once into memory
// and replayed from the slice.
func registerTrace(path string) (string, error) {
	name := "trace:" + strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if f, err := trace.OpenFile(path); err == nil {
		return name, workload.RegisterFile(name, f)
	} else if !errors.Is(err, trace.ErrNotV2) {
		return "", err
	}
	r, closer, err := trace.OpenPath(path, "auto")
	if err != nil {
		return "", err
	}
	defer closer.Close()
	var refs []trace.Ref
	if _, err := trace.Drain(r, func(batch []trace.Ref) {
		refs = append(refs, batch...)
	}); err != nil {
		return "", fmt.Errorf("reading %s: %w", path, err)
	}
	desc := fmt.Sprintf("trace file %s (%d refs, in-memory replay)", path, len(refs))
	return name, workload.RegisterSource(name, desc, uint64(len(refs)), false,
		func(uint64) trace.Reader { return trace.NewSliceReader(refs) })
}

// runOne executes an experiment and renders it into w as a table, CSV,
// JSON, or — when requested and applicable — an ASCII chart.
func runOne(ctx context.Context, id string, opts *experiments.Options, chart bool, w io.Writer) error {
	e, err := experiments.Get(id)
	if err != nil {
		return err
	}
	tbl, err := e.Run(ctx, opts)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	if spec, chartable := chartSpec[id]; chart && chartable {
		c, err := plot.FromTable(tbl, e.Title, spec.cat, spec.val)
		if err != nil {
			return err
		}
		c.Log = spec.log
		_, err = c.WriteTo(w)
		return err
	}
	switch {
	case opts.JSON:
		return tbl.JSON(w)
	case opts.CSV:
		return tbl.CSV(w)
	default:
		_, err = tbl.WriteTo(w)
		return err
	}
}
