// Command paper regenerates the tables and figures of "Tradeoffs in
// Supporting Two Page Sizes" (Talluri, Kong, Hill, Patterson; ISCA 1992)
// from the synthetic workload models in this repository.
//
// Usage:
//
//	paper [-scale f] [-j n] [-csv|-json] [-workloads a,b,c] [experiment ...]
//	paper -trace li.trc tlbsweep      # run experiments over a trace file
//	paper -list
//
// With no experiment arguments (or "all"), every experiment runs in
// order. Scale 1.0 (default) runs the full-length traces; smaller scales
// shrink traces and windows proportionally for quick looks.
//
// Experiments execute concurrently over one shared engine: -j bounds
// the simulation worker pool, identical passes are simulated once, and
// tables are printed in request order — stdout is byte-identical for
// any -j. Timing and -progress reports go to stderr.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"twopage/internal/engine"
	"twopage/internal/experiments"
	"twopage/internal/plot"
	"twopage/internal/profiling"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// chartSpec maps chartable experiments to the table columns forming
// categories and value series; Log marks the paper's log-axis figures.
var chartSpec = map[string]struct {
	cat, val []int
	log      bool
}{
	"fig4.1":   {[]int{0}, []int{1, 2, 3, 4}, true},
	"fig4.2":   {[]int{0}, []int{1, 2, 3, 4}, true},
	"fig5.1":   {[]int{0}, []int{1, 2, 3, 4}, false},
	"fig5.2":   {[]int{0, 1}, []int{2, 3, 4, 5}, false},
	"table5.1": {[]int{0, 1}, []int{2, 3, 4, 5}, false},
	"conflict": {[]int{0}, []int{1, 2, 3, 4}, false},
	"combos":   {[]int{0}, []int{1, 2, 3}, false},
	"tlbsweep": {[]int{0, 1}, []int{2, 3, 4, 5, 6}, true},
}

func main() {
	scale := flag.Float64("scale", 1.0, "trace-length multiplier (1.0 = full size)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON documents instead of aligned tables")
	chart := flag.Bool("chart", false, "render figures as ASCII bar charts where applicable")
	list := flag.Bool("list", false, "list available experiments and exit")
	workloads := flag.String("workloads", "", "comma-separated program subset (default: experiment's own)")
	traceF := flag.String("trace", "", "run experiments over a trace file instead of the modelled programs")
	parallelism := flag.Int("j", runtime.NumCPU(), "max concurrent simulation passes")
	progress := flag.Bool("progress", false, "report each completed simulation pass on stderr")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [experiment ...|all]\n\nFlags:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nExperiments (run `%s -list` for details):\n", os.Args[0])
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n%13s%s\n", e.ID, e.Title, "", e.About)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paper: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", err)
		}
	}()

	if *traceF != "" {
		name, err := registerTrace(*traceF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", err)
			os.Exit(1)
		}
		// A trace file stands in for the whole program set unless the
		// user picked an explicit subset.
		if *workloads == "" {
			*workloads = name
		}
	}

	eopts := []experiments.Opt{
		experiments.WithScale(*scale),
		experiments.WithCSV(*csv),
		experiments.WithJSON(*jsonOut),
		experiments.WithParallelism(*parallelism),
	}
	if *workloads != "" {
		eopts = append(eopts, experiments.WithWorkloads(strings.Split(*workloads, ",")...))
	}
	if *progress {
		eopts = append(eopts, experiments.WithProgress(func(ev engine.Event) {
			tag := ""
			if ev.CacheHit {
				tag = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s%s\n", ev.Done, ev.Submitted, ev.Key, tag)
		}))
	}
	opts := experiments.NewOptions(eopts...)

	// Every experiment renders into its own buffer on its own
	// goroutine; the shared engine bounds the simulation work and
	// deduplicates passes across experiments. Buffers are flushed in
	// request order so stdout does not depend on -j.
	type outcome struct {
		buf bytes.Buffer
		dur time.Duration
		err error
	}
	outs := make([]outcome, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			start := time.Now()
			outs[i].err = runOne(ctx, id, opts, *chart, &outs[i].buf)
			outs[i].dur = time.Since(start)
		}(i, id)
	}
	wg.Wait()

	for i, id := range ids {
		if outs[i].err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", outs[i].err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if _, err := outs[i].buf.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  [%s in %.1fs at scale %g]\n", id, outs[i].dur.Seconds(), *scale)
	}
}

// registerTrace makes a trace file available as a workload named
// trace:<basename>. v2 files are memory-mapped and shared across all
// concurrent passes; v1 and text traces are decoded once into memory
// and replayed from the slice.
func registerTrace(path string) (string, error) {
	name := "trace:" + strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if f, err := trace.OpenFile(path); err == nil {
		return name, workload.RegisterFile(name, f)
	} else if !errors.Is(err, trace.ErrNotV2) {
		return "", err
	}
	r, closer, err := trace.OpenPath(path, "auto")
	if err != nil {
		return "", err
	}
	defer closer.Close()
	var refs []trace.Ref
	if _, err := trace.Drain(r, func(batch []trace.Ref) {
		refs = append(refs, batch...)
	}); err != nil {
		return "", fmt.Errorf("reading %s: %w", path, err)
	}
	desc := fmt.Sprintf("trace file %s (%d refs, in-memory replay)", path, len(refs))
	return name, workload.RegisterSource(name, desc, uint64(len(refs)), false,
		func(uint64) trace.Reader { return trace.NewSliceReader(refs) })
}

// runOne executes an experiment and renders it into w as a table, CSV,
// JSON, or — when requested and applicable — an ASCII chart.
func runOne(ctx context.Context, id string, opts *experiments.Options, chart bool, w io.Writer) error {
	e, err := experiments.Get(id)
	if err != nil {
		return err
	}
	tbl, err := e.Run(ctx, opts)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	if spec, chartable := chartSpec[id]; chart && chartable {
		c, err := plot.FromTable(tbl, e.Title, spec.cat, spec.val)
		if err != nil {
			return err
		}
		c.Log = spec.log
		_, err = c.WriteTo(w)
		return err
	}
	switch {
	case opts.JSON:
		return tbl.JSON(w)
	case opts.CSV:
		return tbl.CSV(w)
	default:
		_, err = tbl.WriteTo(w)
		return err
	}
}
