// Command tlbsim runs a single TLB simulation over a synthetic workload
// or a trace file and prints the paper's metrics.
//
// Examples:
//
//	tlbsim -workload matrix300 -entries 16                 # fully associative
//	tlbsim -workload tomcatv -entries 32 -ways 2 -index large
//	tlbsim -workload li -two -T 500000 -entries 16 -ways 2 -index exact
//	tlbsim -workload li -two -walk                         # modeled page walks
//	tlbsim -workload li -two -walk -walkpwc -1 -walkmem -1 # walk, caches off
//	tlbsim -workload li -sizes 4096,32768,262144 -ladder   # three-size ladder
//	tlbsim -workload li -sizes 4096,32768,262144 -ladder -index class1
//	tlbsim -trace foo.trc -pagesize 8192        # format sniffed (v2/binary/text)
//	tlbsim -workload li -stats -                # JSON run report on stderr
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/obs"
	"twopage/internal/policy"
	"twopage/internal/profiling"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/walk"
	"twopage/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a single os.Exit, so the deferred
// profile flush runs on every exit path (the old fatal() helper called
// os.Exit directly and truncated -cpuprofile output on errors).
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("tlbsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl       = fs.String("workload", "", "synthetic workload name (see -listworkloads)")
		specF    = fs.String("spec", "", "custom workload spec file (see workload.Parse)")
		refs     = fs.Uint64("refs", 0, "trace length (0 = workload default)")
		traceF   = fs.String("trace", "", "trace file to simulate instead of a workload")
		format   = fs.String("format", "auto", "trace file format: auto, v2, binary, or text")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		statsF   = fs.String("stats", "", "write a JSON run report to this file (\"-\" = stderr)")
		entries  = fs.Int("entries", 16, "TLB entries")
		ways     = fs.Int("ways", 0, "associativity (0 = fully associative)")
		index    = fs.String("index", "exact", "set index scheme: small, large, exact, or classK (K = size class)")
		pageSize = fs.Uint64("pagesize", 4096, "single page size in bytes")
		two      = fs.Bool("two", false, "use the dynamic 4KB/32KB policy instead of a single size")
		sizes    = fs.String("sizes", "", "comma-separated page-size hierarchy in bytes, e.g. 4096,32768,262144")
		ladder   = fs.Bool("ladder", false, "use the N-level promotion ladder over the -sizes hierarchy")
		window   = fs.Int("T", 0, "two-page policy window in refs (0 = refs/8)")
		thresh   = fs.Int("threshold", 4, "two-page promotion threshold (blocks of 8)")
		wss      = fs.Bool("wss", false, "also report the two-page working-set size")
		pt       = fs.Bool("pt", false, "model a software page table: charge modelled walk cycles on first-TLB misses (needs -two or -ladder)")
		walkF    = fs.Bool("walk", false, "model multi-level page walks with MMU walk caches: CPI_TLB becomes emergent instead of MPI x penalty (needs -two or -ladder; implies -pt)")
		walkPWC  = fs.Int("walkpwc", 0, "page-walk-cache entries per level (0 = default, negative = disable; needs -walk)")
		walkMem  = fs.Int("walkmem", 0, "memory-side cache bytes for walk loads (0 = default, negative = disable; needs -walk)")
		shards   = fs.Int("shards", 1, "split a v2 trace into this many sections simulated in parallel and merged (1 = exact serial pass; needs -trace)")
		warmup   = fs.Uint64("warmup", 0, "per-shard warm-up references replayed before measuring (0 = auto from the policy window; needs -shards > 1)")
		list     = fs.Bool("listworkloads", false, "list synthetic workloads and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *warmup > 0 && *shards <= 1 {
		// The serial pass has no warm-up phase; silently ignoring the
		// flag would report cold-state metrics as if they were warm.
		fmt.Fprintln(stderr, "tlbsim: -warmup requires -shards > 1 (the serial pass replays no warm-up)")
		return 2
	}

	if *list {
		for _, s := range workload.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", s.Name, s.Description)
		}
		return 0
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var classes addr.SizeClasses
	if *sizes != "" {
		var ps []addr.PageSize
		for _, part := range strings.Split(*sizes, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(stderr, "tlbsim: bad -sizes entry %q: %v\n", part, err)
				return 1
			}
			ps = append(ps, addr.PageSize(v))
		}
		var err error
		if classes, err = addr.NewSizeClasses(ps...); err != nil {
			fmt.Fprintf(stderr, "tlbsim: %v\n", err)
			return 1
		}
	}

	ix, ok := map[string]tlb.IndexScheme{
		"small": tlb.IndexSmall, "large": tlb.IndexLarge, "exact": tlb.IndexExact,
	}[*index]
	if !ok {
		k, err := strconv.Atoi(strings.TrimPrefix(*index, "class"))
		if !strings.HasPrefix(*index, "class") || err != nil ||
			k < 0 || k >= addr.MaxSizeClasses {
			fmt.Fprintf(stderr, "tlbsim: unknown index scheme %q\n", *index)
			return 1
		}
		ix = tlb.IndexByClass(k)
	}
	w := *ways
	if w == 0 {
		w = *entries
	}
	tlbCfg := tlb.Config{Entries: *entries, Ways: w, Index: ix}
	if classes.N() > 0 {
		tlbCfg.Shifts = classes.Shifts()
	}
	if _, err := tlb.New(tlbCfg); err != nil {
		fmt.Fprintf(stderr, "tlbsim: %v\n", err)
		return 1
	}

	var src trace.Reader
	var srcName string
	var nRefs uint64
	switch {
	case *traceF != "":
		r, closer, err := trace.OpenPath(*traceF, *format)
		if err != nil {
			fmt.Fprintf(stderr, "tlbsim: %v\n", err)
			return 1
		}
		defer closer.Close()
		src, srcName = r, *traceF
		nRefs = 1 << 22 // only used to derive a default window
		if mr, ok := r.(*trace.MapReader); ok {
			nRefs = mr.File().Refs()
		}
	case *specF != "":
		text, err := os.ReadFile(*specF)
		if err != nil {
			fmt.Fprintf(stderr, "tlbsim: %v\n", err)
			return 1
		}
		nRefs = *refs
		if nRefs == 0 {
			nRefs = 4_000_000
		}
		src, err = workload.Parse(*specF, nRefs, string(text))
		if err != nil {
			fmt.Fprintf(stderr, "tlbsim: %v\n", err)
			return 1
		}
		srcName = *specF
	case *wl != "":
		spec, err := workload.Get(*wl)
		if err != nil {
			fmt.Fprintf(stderr, "tlbsim: %v\n", err)
			return 1
		}
		nRefs = *refs
		if nRefs == 0 {
			nRefs = spec.DefaultRefs
		}
		src, srcName = spec.New(nRefs), *wl
	default:
		fmt.Fprintln(stderr, "tlbsim: need -workload, -spec, or -trace (try -listworkloads)")
		return 1
	}

	// newPolicy builds a fresh policy per simulator: sharded runs give
	// every section its own instance, so construction must be repeatable.
	var newPolicy func() policy.Assigner
	polT := 0 // policy window, for the auto warm-up length
	switch {
	case *ladder:
		if classes.N() < 2 {
			fmt.Fprintln(stderr, "tlbsim: -ladder needs -sizes with at least two page sizes")
			return 1
		}
		if classes.Shift(0) != addr.BlockShift || classes.TopShift() > 24 {
			fmt.Fprintf(stderr, "tlbsim: -ladder needs a 4096-byte base class and a top size of at most %d bytes\n", 1<<24)
			return 1
		}
		if *wss {
			fmt.Fprintln(stderr, "tlbsim: -wss supports only the two-size policy")
			return 1
		}
		polT = *window
		if polT == 0 {
			polT = int(nRefs / 8)
		}
		cfg := policy.DefaultLadderConfig(polT, classes)
		newPolicy = func() policy.Assigner { return policy.NewLadder(cfg) }
	case *two:
		polT = *window
		if polT == 0 {
			polT = int(nRefs / 8)
		}
		cfg := policy.TwoSizeConfig{T: polT, Threshold: *thresh, Demote: true, LargeShift: addr.Shift32K}
		newPolicy = func() policy.Assigner { return policy.NewTwoSize(cfg) }
	default:
		if *wss {
			fmt.Fprintln(stderr, "tlbsim: -wss requires -two (use wsssim for single sizes)")
			return 1
		}
		newPolicy = func() policy.Assigner {
			return policy.NewSingle(addr.MustPow2(addr.PageSize(*pageSize)))
		}
	}
	if *pt && !*two && !*ladder {
		fmt.Fprintln(stderr, "tlbsim: -pt needs a multi-size policy (-two or -ladder)")
		return 1
	}
	if *walkF && !*two && !*ladder {
		fmt.Fprintln(stderr, "tlbsim: -walk needs a multi-size policy (-two or -ladder)")
		return 1
	}
	wcfg := walk.Config{
		// Classes stay zero: core derives them from the policy.
		PWCEntries: walk.DefaultPWCEntries,
		MemBytes:   walk.DefaultMemBytes,
		MemWays:    walk.DefaultMemWays,
		HitCycles:  walk.DefaultHitCycles,
		MissCycles: walk.DefaultMissCycles,
	}
	if *walkPWC < 0 {
		wcfg.PWCEntries = 0
	} else if *walkPWC > 0 {
		wcfg.PWCEntries = *walkPWC
	}
	if *walkMem < 0 {
		wcfg.MemBytes = 0
	} else if *walkMem > 0 {
		wcfg.MemBytes = *walkMem
	}

	build := func() (*core.Simulator, error) {
		t, err := tlb.New(tlbCfg)
		if err != nil {
			return nil, err
		}
		pol := newPolicy()
		var opts []core.Option
		if *wss && *two {
			opts = append(opts, core.WithWSS())
		}
		if *pt {
			opts = append(opts, core.WithPageTable())
		}
		if *walkF {
			if err := core.CheckWalkModel(pol, wcfg); err != nil {
				return nil, err
			}
			opts = append(opts, core.WithWalkModel(wcfg))
		}
		return core.NewSimulator(pol, []tlb.TLB{t}, opts...), nil
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "tlbsim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "tlbsim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	start := time.Now()
	var res *core.Result
	if *shards > 1 {
		mr, ok := src.(*trace.MapReader)
		if !ok {
			fmt.Fprintln(stderr, "tlbsim: -shards needs a v2 -trace file (sections require random access)")
			return 1
		}
		plan := engine.ShardPlan{Shards: *shards, Warmup: *warmup}
		if plan.Warmup == 0 {
			plan.Warmup = engine.AutoWarmup(polT)
		}
		eng := engine.New(*shards)
		res, err = engine.RunSharded(eng, ctx, mr.File(), *refs, plan, "tlbsim", build)
	} else {
		var sim *core.Simulator
		if sim, err = build(); err == nil {
			res, err = sim.Run(ctx, src)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			fmt.Fprintln(stderr, "tlbsim: interrupted")
			return 130
		}
		fmt.Fprintf(stderr, "tlbsim: %v\n", err)
		return 1
	}

	tr := res.TLBs[0]
	fmt.Fprintf(stdout, "policy:      %s\n", res.Policy)
	fmt.Fprintf(stdout, "tlb:         %s\n", tr.Name)
	fmt.Fprintf(stdout, "refs:        %d (instrs %d, RPI %.3f)\n", res.Refs, res.Instrs, res.RPI)
	fmt.Fprintf(stdout, "misses:      %d (small %d, large %d)\n",
		tr.Stats.Misses(), tr.Stats.MissesByClass[0], tr.Stats.Misses()-tr.Stats.MissesByClass[0])
	if tr.Stats.Classes > 2 {
		for k := 0; k < tr.Stats.Classes; k++ {
			fmt.Fprintf(stdout, "  class %d (%s): hits %d, misses %d\n",
				k, classes.Size(k), tr.Stats.HitsByClass[k], tr.Stats.MissesByClass[k])
		}
	}
	fmt.Fprintf(stdout, "miss ratio:  %.6f\n", tr.MissRatio)
	fmt.Fprintf(stdout, "MPI:         %.6f\n", tr.MPI)
	if res.Walk != nil {
		fmt.Fprintf(stdout, "CPI_TLB:     %.4f  (emergent penalty %.1f cycles/walk)\n", tr.CPITLB, tr.MissPenalty)
	} else {
		fmt.Fprintf(stdout, "CPI_TLB:     %.4f  (penalty %.0f cycles)\n", tr.CPITLB, tr.MissPenalty)
	}
	fmt.Fprintf(stdout, "reprobes:    %d (sequential exact-index cost model)\n", tr.Stats.Reprobes())
	if res.PageTable != nil {
		fmt.Fprintf(stdout, "pt walks:    %d (faults %d, %.0f walk cycles)\n",
			res.PageTable.Lookups, res.PageTable.Misses, res.PTWalkCycles)
	}
	if ws := res.Walk; ws != nil {
		fmt.Fprintf(stdout, "walk model:  %d walks, %d loads, %.1f cycles/walk\n",
			ws.Walks, ws.Loads(), ws.CyclesPerWalk())
		fmt.Fprintf(stdout, "  PWC:       %d hits / %d misses (%.0f%% hit), %d flushes\n",
			ws.PWCHits(), ws.PWCMisses(), 100*ws.PWCHitRatio(), ws.PWCFlushes)
		fmt.Fprintf(stdout, "  mem cache: %d hits / %d misses (%.0f%% hit)\n",
			ws.MemHits, ws.MemMisses, 100*ws.MemHitRatio())
	}
	if res.PolicyStats != nil {
		ps := res.PolicyStats
		fmt.Fprintf(stdout, "promotions:  %d (demotions %d, large chunks now %d)\n",
			ps.Promotions, ps.Demotions, ps.LargeChunks)
		fmt.Fprintf(stdout, "large refs:  %.1f%%\n", 100*float64(ps.LargeRefs)/float64(ps.Refs))
	}
	if ls := res.LadderStats; ls != nil {
		for k := 1; k < classes.N(); k++ {
			fmt.Fprintf(stdout, "class %d (%s): refs %.1f%%, promotions %d, demotions %d, mapped now %d\n",
				k, classes.Size(k),
				100*float64(ls.RefsByClass[k])/float64(ls.Refs),
				ls.Promotions[k], ls.Demotions[k], ls.Mapped[k])
		}
	}
	if res.WSS != nil {
		fmt.Fprintf(stdout, "avg WSS:     %.0f bytes (%s scheme)\n", res.WSS.AvgBytes, res.WSS.Scheme)
	}

	if *statsF != "" {
		rep := obs.New("tlbsim")
		rep.Workloads = []string{srcName}
		rep.WallMS = time.Since(start).Milliseconds()
		rep.Totals = res.Counters
		rep.Passes = []obs.Pass{{Key: fmt.Sprintf("w=%s refs=%d", srcName, res.Refs), Counters: res.Counters}}
		if err := rep.Write(*statsF, stderr); err != nil {
			fmt.Fprintf(stderr, "tlbsim: %v\n", err)
			return 1
		}
	}
	return 0
}
