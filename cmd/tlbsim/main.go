// Command tlbsim runs a single TLB simulation over a synthetic workload
// or a trace file and prints the paper's metrics.
//
// Examples:
//
//	tlbsim -workload matrix300 -entries 16                 # fully associative
//	tlbsim -workload tomcatv -entries 32 -ways 2 -index large
//	tlbsim -workload li -two -T 500000 -entries 16 -ways 2 -index exact
//	tlbsim -trace foo.trc -pagesize 8192        # format sniffed (v2/binary/text)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/profiling"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "", "synthetic workload name (see -listworkloads)")
		specF    = flag.String("spec", "", "custom workload spec file (see workload.Parse)")
		refs     = flag.Uint64("refs", 0, "trace length (0 = workload default)")
		traceF   = flag.String("trace", "", "trace file to simulate instead of a workload")
		format   = flag.String("format", "auto", "trace file format: auto, v2, binary, or text")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		entries  = flag.Int("entries", 16, "TLB entries")
		ways     = flag.Int("ways", 0, "associativity (0 = fully associative)")
		index    = flag.String("index", "exact", "set index scheme: small, large, exact")
		pageSize = flag.Uint64("pagesize", 4096, "single page size in bytes")
		two      = flag.Bool("two", false, "use the dynamic 4KB/32KB policy instead of a single size")
		window   = flag.Int("T", 0, "two-page policy window in refs (0 = refs/8)")
		thresh   = flag.Int("threshold", 4, "two-page promotion threshold (blocks of 8)")
		wss      = flag.Bool("wss", false, "also report the two-page working-set size")
		list     = flag.Bool("listworkloads", false, "list synthetic workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-10s %s\n", s.Name, s.Description)
		}
		return
	}

	ix, ok := map[string]tlb.IndexScheme{
		"small": tlb.IndexSmall, "large": tlb.IndexLarge, "exact": tlb.IndexExact,
	}[*index]
	if !ok {
		fatal("unknown index scheme %q", *index)
	}
	w := *ways
	if w == 0 {
		w = *entries
	}
	t, err := tlb.New(tlb.Config{Entries: *entries, Ways: w, Index: ix})
	if err != nil {
		fatal("%v", err)
	}

	var src trace.Reader
	var nRefs uint64
	switch {
	case *traceF != "":
		r, closer, err := trace.OpenPath(*traceF, *format)
		if err != nil {
			fatal("%v", err)
		}
		defer closer.Close()
		src = r
		nRefs = 1 << 22 // only used to derive a default window
		if mr, ok := r.(*trace.MapReader); ok {
			nRefs = mr.File().Refs()
		}
	case *specF != "":
		text, err := os.ReadFile(*specF)
		if err != nil {
			fatal("%v", err)
		}
		nRefs = *refs
		if nRefs == 0 {
			nRefs = 4_000_000
		}
		src, err = workload.Parse(*specF, nRefs, string(text))
		if err != nil {
			fatal("%v", err)
		}
	case *wl != "":
		spec, err := workload.Get(*wl)
		if err != nil {
			fatal("%v", err)
		}
		nRefs = *refs
		if nRefs == 0 {
			nRefs = spec.DefaultRefs
		}
		src = spec.New(nRefs)
	default:
		fatal("need -workload, -spec, or -trace (try -listworkloads)")
	}

	var pol policy.Assigner
	var opts []core.Option
	if *two {
		T := *window
		if T == 0 {
			T = int(nRefs / 8)
		}
		cfg := policy.TwoSizeConfig{T: T, Threshold: *thresh, Demote: true, LargeShift: addr.Shift32K}
		tp := policy.NewTwoSize(cfg)
		pol = tp
		if *wss {
			opts = append(opts, core.WithWSS())
		}
	} else {
		if *wss {
			fatal("-wss requires -two (use wsssim for single sizes)")
		}
		pol = policy.NewSingle(addr.MustPow2(addr.PageSize(*pageSize)))
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal("%v", err)
	}
	sim := core.NewSimulator(pol, []tlb.TLB{t}, opts...)
	res, err := sim.Run(context.Background(), src)
	if perr := stopProf(); perr != nil {
		fatal("%v", perr)
	}
	if err != nil {
		fatal("%v", err)
	}

	tr := res.TLBs[0]
	fmt.Printf("policy:      %s\n", res.Policy)
	fmt.Printf("tlb:         %s\n", tr.Name)
	fmt.Printf("refs:        %d (instrs %d, RPI %.3f)\n", res.Refs, res.Instrs, res.RPI)
	fmt.Printf("misses:      %d (small %d, large %d)\n",
		tr.Stats.Misses(), tr.Stats.SmallMisses, tr.Stats.LargeMisses)
	fmt.Printf("miss ratio:  %.6f\n", tr.MissRatio)
	fmt.Printf("MPI:         %.6f\n", tr.MPI)
	fmt.Printf("CPI_TLB:     %.4f  (penalty %.0f cycles)\n", tr.CPITLB, tr.MissPenalty)
	fmt.Printf("reprobes:    %d (sequential exact-index cost model)\n", tr.Stats.Reprobes())
	if res.PolicyStats != nil {
		ps := res.PolicyStats
		fmt.Printf("promotions:  %d (demotions %d, large chunks now %d)\n",
			ps.Promotions, ps.Demotions, ps.LargeChunks)
		fmt.Printf("large refs:  %.1f%%\n", 100*float64(ps.LargeRefs)/float64(ps.Refs))
	}
	if res.WSS != nil {
		fmt.Printf("avg WSS:     %.0f bytes (%s scheme)\n", res.WSS.AvgBytes, res.WSS.Scheme)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tlbsim: "+format+"\n", args...)
	os.Exit(1)
}
