// Command vmsim runs the end-to-end virtual-memory simulator: TLB +
// two-size page table + buddy allocator + clock replacement, with full
// cycle accounting. It answers "what does the whole translation path
// cost", where tlbsim answers only the TLB question.
//
// Examples:
//
//	vmsim -workload matrix300 -mem 4M -two
//	vmsim -workload li -mem 512K -entries 32 -ways 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/disk"
	"twopage/internal/mmu"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

func parseSize(s string) (addr.PageSize, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return addr.PageSize(v * mult), nil
}

func main() {
	var (
		wl      = flag.String("workload", "", "synthetic workload name")
		refs    = flag.Uint64("refs", 0, "trace length (0 = workload default)")
		mem     = flag.String("mem", "16M", "physical memory size, e.g. 512K, 4M")
		entries = flag.Int("entries", 16, "TLB entries")
		ways    = flag.Int("ways", 0, "associativity (0 = fully associative)")
		two     = flag.Bool("two", false, "dynamic 4KB/32KB policy instead of 4KB")
		window  = flag.Int("T", 0, "policy window (0 = refs/8)")
		fault   = flag.Float64("faultcycles", 0, "cycles per page fault (0 = default 500)")
		useDisk = flag.Bool("disk", false, "price faults with the 1992 positional disk model instead of -faultcycles")
	)
	flag.Parse()

	if *wl == "" {
		fatal("need -workload (one of: %v)", workload.Names())
	}
	spec, err := workload.Get(*wl)
	if err != nil {
		fatal("%v", err)
	}
	n := *refs
	if n == 0 {
		n = spec.DefaultRefs
	}
	size, err := parseSize(*mem)
	if err != nil {
		fatal("%v", err)
	}
	w := *ways
	if w == 0 {
		w = *entries
	}
	hw, err := tlb.New(tlb.Config{Entries: *entries, Ways: w, Index: tlb.IndexExact})
	if err != nil {
		fatal("%v", err)
	}
	var pol policy.Assigner
	if *two {
		T := *window
		if T == 0 {
			T = int(n / 8)
		}
		pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
	} else {
		pol = policy.NewSingle(addr.Size4K)
	}
	cfg := mmu.Config{TLB: hw, Policy: pol, Memory: size, FaultCycles: *fault}
	if *useDisk {
		dm := disk.Default()
		cfg.Disk = &dm
	}
	m, err := mmu.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	st, err := m.Run(context.Background(), spec.New(n))
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("workload:     %s (%d refs), policy %s, %s, memory %s\n",
		spec.Name, st.Accesses, pol.Name(), hw.Name(), size)
	fmt.Printf("TLB:          %d hits, %d misses (%.4f%% miss)\n",
		st.TLBHits, st.TLBMisses, 100*float64(st.TLBMisses)/float64(st.Accesses))
	fmt.Printf("walks:        %d (%d refills, %d faults)\n", st.Walks, st.WalkHits, st.Faults)
	fmt.Printf("replacement:  %d evictions (%d large)\n", st.Evictions, st.EvictionsByClass[1])
	fmt.Printf("promotion:    %d promotions, %d demotions, %.1f KB copied\n",
		st.Promotions, st.Demotions, float64(st.CopiedBytes)/1024)
	ms := m.Memory().Stats()
	fmt.Printf("memory:       %d/%d frames free, %d large allocs, %d fragmentation-blocked\n",
		m.Memory().FreeFrames(), m.Memory().TotalFrames(), ms.LargeAllocs, ms.FailedLargeFragmented)
	if st.IO.PageIns > 0 {
		fmt.Printf("disk I/O:     %d page-ins, %.2f MB, %.0f ms\n",
			st.IO.PageIns, float64(st.IO.BytesIn)/(1<<20),
			st.IO.IOCycles/(disk.Default().CPUMHz*1e3))
	}
	fmt.Printf("translation:  %.3f cycles/access (%.0f total)\n", st.CyclesPerAccess(), st.Cycles)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vmsim: "+format+"\n", args...)
	os.Exit(1)
}
