package twopage_test

import (
	"context"
	"reflect"
	"testing"

	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/walk"
)

// flatEquivalentWalk is the degenerate walk model that must reproduce
// the paper's flat handler costs exactly: no PWCs, no memory-side cache,
// and every PTE load charged the 4-cycle per-level increment, so a
// full walk costs base(17) + 2x4 = 25 cycles and a large-resolved walk
// 17 + 1x4 = 21 — the same charges NTable.Lookup makes in flat mode.
var flatEquivalentWalk = walk.Config{HitCycles: 4, MissCycles: 4}

// The end-to-end flat-equivalence differential: the same trace driven
// through the flat page-table shadow and through the modeled walk in its
// degenerate configuration must agree on total walk cycles exactly, walk
// for walk, and the walk model must not perturb the TLB simulation at
// all — it only observes misses.
func TestWalkFlatEquivalenceDifferential(t *testing.T) {
	f := writeRandomV2(t, 120_000, 512, 41)
	ctx := context.Background()
	run := func(opt core.Option) *core.Result {
		t.Helper()
		tl, err := tlb.New(tlb.Config{Entries: 32, Ways: 2, Index: tlb.IndexExact})
		if err != nil {
			t.Fatal(err)
		}
		sim := core.NewSimulator(policy.NewTwoSize(policy.DefaultTwoSizeConfig(20_000)),
			[]tlb.TLB{tl}, opt)
		res, err := sim.Run(ctx, f.Reader())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run(core.WithPageTable())
	modeled := run(core.WithWalkModel(flatEquivalentWalk))
	if modeled.Walk == nil {
		t.Fatal("walk-model run produced no walk stats")
	}
	if got, want := modeled.Walk.Cycles, uint64(flat.PTWalkCycles); got != want {
		t.Errorf("degenerate walk cycles = %d, want the flat shadow's %d", got, want)
	}
	if modeled.PageTable == nil {
		t.Fatal("walk-model run did not attach the page-table shadow")
	}
	if got, want := modeled.Walk.Walks, flat.PageTable.Lookups; got != want {
		t.Errorf("walk count = %d, want %d flat shadow lookups", got, want)
	}
	// Two loads per full walk, one per large-resolved walk; with no
	// caches every load is a miss and none hits.
	if modeled.Walk.PWCHits() != 0 || modeled.Walk.MemHits != 0 {
		t.Errorf("degenerate config recorded cache hits: pwc %d, mem %d",
			modeled.Walk.PWCHits(), modeled.Walk.MemHits)
	}
	if !reflect.DeepEqual(modeled.TLBs[0].Stats, flat.TLBs[0].Stats) {
		t.Errorf("walk model perturbed TLB behavior:\n walk %+v\n flat %+v",
			modeled.TLBs[0].Stats, flat.TLBs[0].Stats)
	}
	if modeled.Refs != flat.Refs || modeled.Instrs != flat.Instrs {
		t.Errorf("stream accounting differs: %d/%d vs %d/%d",
			modeled.Refs, modeled.Instrs, flat.Refs, flat.Instrs)
	}
}

// With the warm-up stretched to the whole trace, every shard replays the
// exact reference prefix the serial run saw, so each section's counter
// delta — including every walk counter, PWC state and all — is the
// serial section contribution and the merge must equal the serial result
// identically. This pins the warm-snapshot Sub and the shard Merge of
// walk.Stats as exact inverses.
func TestWalkShardedFullWarmupExact(t *testing.T) {
	f := writeRandomV2(t, 60_000, 256, 43)
	ctx := context.Background()
	wcfg := walk.Config{
		PWCEntries: walk.DefaultPWCEntries,
		MemBytes:   walk.DefaultMemBytes,
		HitCycles:  walk.DefaultHitCycles,
		MissCycles: walk.DefaultMissCycles,
	}
	build := func() (*core.Simulator, error) {
		tl, err := tlb.New(tlb.Config{Entries: 32, Ways: 2, Index: tlb.IndexExact})
		if err != nil {
			return nil, err
		}
		return core.NewSimulator(policy.NewTwoSize(policy.DefaultTwoSizeConfig(10_000)),
			[]tlb.TLB{tl}, core.WithWalkModel(wcfg)), nil
	}
	serialSim, err := build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := serialSim.Run(ctx, f.Reader())
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(4)
	got, err := engine.RunSharded(e, ctx, f, 0,
		engine.ShardPlan{Shards: 8, Warmup: f.Refs()}, "walk-fullwarm", build)
	if err != nil {
		t.Fatal(err)
	}
	if got.Walk == nil || want.Walk == nil {
		t.Fatalf("missing walk stats: sharded %v, serial %v", got.Walk, want.Walk)
	}
	if !reflect.DeepEqual(*got.Walk, *want.Walk) {
		t.Errorf("full-warmup sharded walk counters differ from serial:\n got %+v\nwant %+v",
			*got.Walk, *want.Walk)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("full-warmup sharded result differs from serial:\n got %+v\nwant %+v", got, want)
	}
}

// The walk counters are pure flow counts, so for any shard count the
// merged totals must be internally consistent even where the values
// themselves are approximate: loads split exactly into PWC-start
// classes, memory hits and misses partition the loads, and cycles are
// reproducible run to run.
func TestWalkShardedCountersConsistent(t *testing.T) {
	f := writeRandomV2(t, 100_000, 512, 47)
	ctx := context.Background()
	wcfg := walk.Config{
		PWCEntries: walk.DefaultPWCEntries,
		MemBytes:   walk.DefaultMemBytes,
		HitCycles:  walk.DefaultHitCycles,
		MissCycles: walk.DefaultMissCycles,
	}
	build := func() (*core.Simulator, error) {
		tl, err := tlb.New(tlb.Config{Entries: 32, Ways: 2, Index: tlb.IndexExact})
		if err != nil {
			return nil, err
		}
		return core.NewSimulator(policy.NewTwoSize(policy.DefaultTwoSizeConfig(15_000)),
			[]tlb.TLB{tl}, core.WithWalkModel(wcfg)), nil
	}
	for _, shards := range []int{1, 2, 8} {
		run := func() *walk.Stats {
			e := engine.New(4)
			res, err := engine.RunSharded(e, ctx, f, 0,
				engine.ShardPlan{Shards: shards, Warmup: 10_000}, "walk-consistency", build)
			if err != nil {
				t.Fatal(err)
			}
			if res.Walk == nil {
				t.Fatalf("shards=%d: no walk stats", shards)
			}
			return res.Walk
		}
		ws := run()
		if got, want := ws.MemHits+ws.MemMisses, ws.Loads(); got != want {
			t.Errorf("shards=%d: mem hits+misses = %d, want %d loads", shards, got, want)
		}
		if ws.Walks == 0 || ws.Loads() == 0 || ws.Cycles == 0 {
			t.Errorf("shards=%d: degenerate walk stats %+v", shards, *ws)
		}
		if again := run(); !reflect.DeepEqual(*again, *ws) {
			t.Errorf("shards=%d: walk counters not reproducible:\n 1st %+v\n 2nd %+v", shards, *ws, *again)
		}
	}
}
