package twopage_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/experiments"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/walk"
	"twopage/internal/workload"
)

// randomRefs produces a deterministic pseudo-random reference stream
// mixing a hot dense region, a medium working set, a sequential sweep,
// and cold scattered chunks — enough locality structure that the
// dynamic policies actually promote and demote, so shard boundaries cut
// through non-trivial simulator state.
func randomRefs(n int, seed uint64) []trace.Ref {
	s := seed ^ 0x9E3779B97F4A7C15
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	refs := make([]trace.Ref, n)
	for i := range refs {
		var va addr.VA
		switch next() % 4 {
		case 0:
			va = addr.VA(0x10000 + next()%(1<<15))
		case 1:
			va = addr.VA(0x400000 + next()%(1<<19))
		case 2:
			va = addr.VA(0x800000 + uint64(i)*64)
		default:
			va = addr.VA(0x2000_0000 + (next()%(1<<10))<<addr.ChunkShift)
		}
		kind := trace.Instr
		switch next() % 4 {
		case 0:
			kind = trace.Load
		case 1:
			kind = trace.Store
		}
		refs[i] = trace.Ref{Addr: va, Kind: kind}
	}
	return refs
}

// writeRandomV2 writes a randomized stream into a v2 trace file and
// memory-maps it back. Small blocks (blockRefs) give the shard planner
// many cut points.
func writeRandomV2(t *testing.T, n, blockRefs int, seed uint64) *trace.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), fmt.Sprintf("rand-%d-%d.trc", n, seed))
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewV2WriterBlock(out, blockRefs)
	if err := w.Write(randomRefs(n, seed)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// shardScenario is one (policy, TLB) combination the battery drives
// through the sharded and serial paths.
type shardScenario struct {
	name  string
	build func() (*core.Simulator, error)
}

// shardScenarios covers the paper's policy spectrum — single-size,
// dynamic two-size, three-level ladder, NAPOT — against the three set
// index schemes, so shard boundaries are exercised against every kind
// of history the simulator keeps.
func shardScenarios(t *testing.T, T int) []shardScenario {
	t.Helper()
	classes3, err := addr.NewSizeClasses(addr.Size4K, addr.Size32K, addr.PageSize(1<<18))
	if err != nil {
		t.Fatal(err)
	}
	mkTLB := func(ix tlb.IndexScheme, shifts []uint) func() (tlb.TLB, error) {
		return func() (tlb.TLB, error) {
			return tlb.New(tlb.Config{Entries: 32, Ways: 2, Index: ix, Shifts: shifts})
		}
	}
	sim := func(pol func() policy.Assigner, newTLB func() (tlb.TLB, error), opts ...core.Option) func() (*core.Simulator, error) {
		return func() (*core.Simulator, error) {
			tl, err := newTLB()
			if err != nil {
				return nil, err
			}
			return core.NewSimulator(pol(), []tlb.TLB{tl}, opts...), nil
		}
	}
	twoCfg := policy.DefaultTwoSizeConfig(T)
	ladderCfg := policy.DefaultLadderConfig(T, classes3)
	napotCfg := policy.NapotConfig{Classes: classes3}
	return []shardScenario{
		{"single4k/exact", sim(
			func() policy.Assigner { return policy.NewSingle(addr.Size4K) },
			mkTLB(tlb.IndexExact, nil))},
		{"two/small", sim(
			func() policy.Assigner { return policy.NewTwoSize(twoCfg) },
			mkTLB(tlb.IndexSmall, nil))},
		{"two/large", sim(
			func() policy.Assigner { return policy.NewTwoSize(twoCfg) },
			mkTLB(tlb.IndexLarge, nil))},
		{"two/exact", sim(
			func() policy.Assigner { return policy.NewTwoSize(twoCfg) },
			mkTLB(tlb.IndexExact, nil))},
		{"two/exact/wss", sim(
			func() policy.Assigner { return policy.NewTwoSize(twoCfg) },
			mkTLB(tlb.IndexExact, nil), core.WithWSS())},
		{"two/exact/walk", sim(
			func() policy.Assigner { return policy.NewTwoSize(twoCfg) },
			mkTLB(tlb.IndexExact, nil), core.WithWalkModel(walk.Config{
				PWCEntries: walk.DefaultPWCEntries,
				MemBytes:   walk.DefaultMemBytes,
				HitCycles:  walk.DefaultHitCycles,
				MissCycles: walk.DefaultMissCycles,
			}))},
		{"ladder3/exact", sim(
			func() policy.Assigner { return policy.NewLadder(ladderCfg) },
			mkTLB(tlb.IndexExact, classes3.Shifts()))},
		{"ladder3/pt", sim(
			func() policy.Assigner { return policy.NewLadder(ladderCfg) },
			mkTLB(tlb.IndexExact, classes3.Shifts()), core.WithPageTable())},
		{"napot3/exact", sim(
			func() policy.Assigner { return policy.NewNapot(napotCfg) },
			mkTLB(tlb.IndexExact, classes3.Shifts()))},
	}
}

// A one-shard plan must return the serial result verbatim — every
// counter, every derived float, bit for bit. This is the battery's
// anchor: sharding is strictly opt-in degradation, and the default
// plan cannot perturb the golden-pinned serial numbers.
func TestShardedOneShardByteIdenticalToSerial(t *testing.T) {
	f := writeRandomV2(t, 60_000, 512, 7)
	ctx := context.Background()
	for _, sc := range shardScenarios(t, 10_000) {
		serialSim, err := sc.build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := serialSim.Run(ctx, f.Reader())
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(2)
		got, err := engine.RunSharded(e, ctx, f, 0, engine.ShardPlan{Shards: 1}, sc.name, sc.build)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: one-shard result differs from serial:\n got %+v\nwant %+v", sc.name, got, want)
		}
	}
}

// For a fixed shard count, the merged result must not depend on how
// many workers executed the sections — the shard analogue of the j1-
// vs-j8 experiment pins. Merge order is section order, not completion
// order.
func TestShardMergeDeterministicAcrossParallelism(t *testing.T) {
	f := writeRandomV2(t, 80_000, 256, 11)
	ctx := context.Background()
	for _, shards := range []int{2, 3, 8} {
		for _, sc := range shardScenarios(t, 10_000) {
			run := func(parallelism int) *core.Result {
				e := engine.New(parallelism)
				res, err := engine.RunSharded(e, ctx, f, 0,
					engine.ShardPlan{Shards: shards, Warmup: 20_000}, sc.name, sc.build)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq, par := run(1), run(8)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s shards=%d: merged result differs between 1 and 8 workers:\n 1: %+v\n 8: %+v",
					sc.name, shards, seq, par)
			}
		}
	}
}

// Counters that depend only on the reference stream — not on simulator
// history — must be exactly shard-count invariant: references,
// instruction mix, TLB accesses, decoded blocks and bytes. These are
// the fields the merge reconstructs by pure summation, so any drift
// here is a merge bug, not an accuracy tradeoff.
func TestShardCountExactInvariants(t *testing.T) {
	f := writeRandomV2(t, 100_000, 512, 13)
	ctx := context.Background()
	for _, sc := range shardScenarios(t, 10_000) {
		var base *core.Result
		for _, shards := range []int{1, 2, 3, 8} {
			e := engine.New(4)
			res, err := engine.RunSharded(e, ctx, f, 0,
				engine.ShardPlan{Shards: shards, Warmup: 10_000}, sc.name, sc.build)
			if err != nil {
				t.Fatal(err)
			}
			if shards == 1 {
				base = res
				continue
			}
			if res.Refs != base.Refs || res.Instrs != base.Instrs {
				t.Errorf("%s shards=%d: refs/instrs %d/%d, want %d/%d",
					sc.name, shards, res.Refs, res.Instrs, base.Refs, base.Instrs)
			}
			if res.RPI != base.RPI {
				t.Errorf("%s shards=%d: RPI %v, want %v", sc.name, shards, res.RPI, base.RPI)
			}
			if got, want := res.TLBs[0].Stats.Accesses, base.TLBs[0].Stats.Accesses; got != want {
				t.Errorf("%s shards=%d: TLB accesses %d, want %d", sc.name, shards, got, want)
			}
			if res.Counters.DecodedRefs != base.Counters.DecodedRefs ||
				res.Counters.DecodedBlocks != base.Counters.DecodedBlocks ||
				res.Counters.DecodedBytes != base.Counters.DecodedBytes {
				t.Errorf("%s shards=%d: decode counters %d/%d/%d, want %d/%d/%d",
					sc.name, shards,
					res.Counters.DecodedRefs, res.Counters.DecodedBlocks, res.Counters.DecodedBytes,
					base.Counters.DecodedRefs, base.Counters.DecodedBlocks, base.Counters.DecodedBytes)
			}
		}
	}
}

// The static working-set merge is exact, so the engine's sharded
// static-WSS path must agree with the serial calculator bit for bit at
// every shard count — including the float averages.
func TestShardedStaticWSSExact(t *testing.T) {
	f := writeRandomV2(t, 90_000, 256, 17)
	const T = 12_000
	ctx := context.Background()

	sizes := make([]addr.PageSize, len(engine.StaticShifts))
	for i, sh := range engine.StaticShifts {
		sizes[i] = addr.PageSize(1) << sh
	}
	want, err := core.MeasureStaticWSS(ctx, f.Reader(), T, sizes...)
	if err != nil {
		t.Fatal(err)
	}

	const name = "trace:shard-wss"
	if err := workload.RegisterFile(name, f); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workload.Unregister(name) })

	for _, shards := range []int{1, 2, 3, 8} {
		e := engine.New(4, engine.WithSharding(engine.ShardPlan{Shards: shards}))
		got, err := e.StaticWSS(ctx, engine.StaticWSSUnit{Workload: name, Refs: f.Refs(), T: T}).Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d results, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("shards=%d shift=%d: got %+v, want %+v", shards, engine.StaticShifts[i], got[i], want[i])
			}
		}
	}
}

// Sharded experiment rendering stays deterministic across engine
// parallelism: the full registry over a file-backed workload with a
// 3-shard plan renders byte-identically at -j 1 and -j 8, pinning the
// keyedOffPool coordinator and the per-shard counter merge under stable
// obs keys.
func TestShardedExperimentsDeterministicAcrossParallelism(t *testing.T) {
	f := writeV2Workload(t, "li", 80_000, 4096)
	const name = "trace:li-shardtest"
	if err := workload.RegisterFile(name, f); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workload.Unregister(name) })

	render := func(parallelism int) string {
		var sb bytes.Buffer
		r := experiments.NewRunner(
			experiments.WithScale(0.01),
			experiments.WithWorkloads(name),
			experiments.WithOut(&sb),
			experiments.WithParallelism(parallelism),
			experiments.WithShards(3, 8_000),
		)
		ids := make([]string, 0, len(experiments.All()))
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		if err := r.RunAll(context.Background(), ids...); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return maskTimings.ReplaceAllString(sb.String(), "T")
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("sharded experiment output differs between -j 1 and -j 8:\n-- j1 --\n%s\n-- j8 --\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("no output produced")
	}
}

// relErr is |got-want| / want, with the convention that matching zeros
// are exact and a disagreement about zero is maximal.
func relErr(got, want uint64) float64 {
	if got == want {
		return 0
	}
	if want == 0 {
		return 1
	}
	d := float64(got) - float64(want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

// The differential accuracy pin (the documented error bound from
// DESIGN.md §10): over 200k-step randomized streams, an 8-shard run
// with the automatic warm-up stays within 2% of the serial oracle on
// miss counts and within 15% on transition counts, across index schemes
// and the ladder/NAPOT policies. Exact-by-construction fields are
// asserted equal outright. The transition bound is looser because
// promotions are rare events (tens, not thousands) — one boundary
// re-promotion moves the relative error by percents.
func TestShardedAccuracyDifferential(t *testing.T) {
	ctx := context.Background()
	const (
		missBound  = 0.02
		transBound = 0.15
	)
	for _, seed := range []uint64{3, 29} {
		f := writeRandomV2(t, 200_000, 512, seed)
		for _, sc := range shardScenarios(t, 30_000) {
			serialSim, err := sc.build()
			if err != nil {
				t.Fatal(err)
			}
			want, err := serialSim.Run(ctx, f.Reader())
			if err != nil {
				t.Fatal(err)
			}
			e := engine.New(4)
			plan := engine.ShardPlan{Shards: 8, Warmup: engine.AutoWarmup(30_000)}
			got, err := engine.RunSharded(e, ctx, f, 0, plan, sc.name, sc.build)
			if err != nil {
				t.Fatal(err)
			}

			if got.Refs != want.Refs || got.Instrs != want.Instrs {
				t.Errorf("%s seed=%d: refs/instrs %d/%d, want %d/%d",
					sc.name, seed, got.Refs, got.Instrs, want.Refs, want.Instrs)
			}
			me := relErr(got.TLBs[0].Stats.Misses(), want.TLBs[0].Stats.Misses())
			t.Logf("%s seed=%d: misses %d vs %d (err %.4f)",
				sc.name, seed, got.TLBs[0].Stats.Misses(), want.TLBs[0].Stats.Misses(), me)
			if me > missBound {
				t.Errorf("%s seed=%d: miss-count error %.4f exceeds bound %.2f", sc.name, seed, me, missBound)
			}
			checkTrans := func(label string, g, w uint64) {
				if e := relErr(g, w); e > transBound {
					t.Errorf("%s seed=%d: %s error %.4f (%d vs %d) exceeds bound %.2f",
						sc.name, seed, label, e, g, w, transBound)
				}
			}
			if want.PolicyStats != nil {
				checkTrans("promotions", got.PolicyStats.Promotions, want.PolicyStats.Promotions)
				checkTrans("demotions", got.PolicyStats.Demotions, want.PolicyStats.Demotions)
			}
			if want.LadderStats != nil {
				for k := 1; k < addr.MaxSizeClasses; k++ {
					checkTrans(fmt.Sprintf("promotions[%d]", k),
						got.LadderStats.Promotions[k], want.LadderStats.Promotions[k])
				}
			}
			if want.WSS != nil {
				ge, we := got.WSS.AvgBytes, want.WSS.AvgBytes
				d := ge - we
				if d < 0 {
					d = -d
				}
				if we > 0 && d/we > missBound {
					t.Errorf("%s seed=%d: WSS error %.4f (%.0f vs %.0f) exceeds bound %.2f",
						sc.name, seed, d/we, ge, we, missBound)
				}
			}
			if want.PageTable != nil {
				checkTrans("pt walks", got.PageTable.Lookups, want.PageTable.Lookups)
			}
		}
	}
}

// Warm-up earns its cost: with no warm-up at all, shard-boundary cold
// misses must show up (the sharded count exceeds serial), and the
// warmed run must be at least as accurate. Guards against the warm-up
// plumbing silently becoming a no-op — the accuracy test above would
// still pass if the trace were so uniform that cold state didn't
// matter.
func TestShardWarmupReducesBoundaryError(t *testing.T) {
	ctx := context.Background()
	f := writeRandomV2(t, 200_000, 512, 5)
	build := func() (*core.Simulator, error) {
		tl, err := tlb.New(tlb.Config{Entries: 32, Ways: 2, Index: tlb.IndexExact})
		if err != nil {
			return nil, err
		}
		return core.NewSimulator(policy.NewTwoSize(policy.DefaultTwoSizeConfig(30_000)), []tlb.TLB{tl}), nil
	}
	serialSim, err := build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := serialSim.Run(ctx, f.Reader())
	if err != nil {
		t.Fatal(err)
	}
	run := func(warm uint64) uint64 {
		e := engine.New(4)
		res, err := engine.RunSharded(e, ctx, f, 0,
			engine.ShardPlan{Shards: 8, Warmup: warm}, "warmcheck", build)
		if err != nil {
			t.Fatal(err)
		}
		return res.TLBs[0].Stats.Misses()
	}
	// Warmup 1 rather than 0: a zero Warmup in the plan means "auto".
	cold := run(1)
	warm := run(engine.AutoWarmup(30_000))
	serial := want.TLBs[0].Stats.Misses()
	t.Logf("misses: serial %d, cold shards %d, warmed shards %d", serial, cold, warm)
	if cold <= serial {
		t.Errorf("cold sharding did not add boundary misses (cold %d <= serial %d); warm-up has nothing to fix", cold, serial)
	}
	if ce, we := relErr(cold, serial), relErr(warm, serial); we > ce {
		t.Errorf("warm-up increased miss error: cold %.4f, warmed %.4f", ce, we)
	}
}

// A WSS merge sanity pin at the Result level: sample counts must sum
// across shards, so a dropped or double-counted shard shows up even
// when the averages happen to agree.
func TestShardedWSSSampleAccounting(t *testing.T) {
	ctx := context.Background()
	f := writeRandomV2(t, 50_000, 256, 23)
	build := func() (*core.Simulator, error) {
		tl, err := tlb.New(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact})
		if err != nil {
			return nil, err
		}
		return core.NewSimulator(policy.NewTwoSize(policy.DefaultTwoSizeConfig(8_000)),
			[]tlb.TLB{tl}, core.WithWSS()), nil
	}
	for _, shards := range []int{2, 5} {
		e := engine.New(4)
		res, err := engine.RunSharded(e, ctx, f, 0,
			engine.ShardPlan{Shards: shards, Warmup: 4_000}, "wss-samples", build)
		if err != nil {
			t.Fatal(err)
		}
		if res.WSS == nil {
			t.Fatalf("shards=%d: no WSS result", shards)
		}
		if res.WSS.Samples != f.Refs() {
			t.Errorf("shards=%d: WSS samples %d, want %d (warm-up refs must not be sampled)",
				shards, res.WSS.Samples, f.Refs())
		}
	}
}
