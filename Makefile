GO ?= go

# Third-party checkers, pinned and fetched on demand via `go run` so
# they never enter go.mod. Both need network on first use; lint-extra
# probes for that and degrades to a warning offline, while CI (which
# always has network) treats failures as hard.
STATICCHECK = honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK = golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: all build test verify lint paperlint lint-extra bench bench-trace bench-kernels bench-shard bench-walk bench-report golden golden-update paper

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# paperlint runs the repository's own invariant analyzers (package
# twopage/internal/analysis): determinism, hotalloc (interprocedural),
# powtwo, ctxcheck, errfmt, mergecheck, keycheck, deprcheck, plus the
# stale-suppression audit. Zero tolerance: any unsuppressed diagnostic
# fails the build. deprcheck subsumes the old grep-based
# deprecation-gate target: uses of Deprecated-marked identifiers
# (tlb.Config.SmallShift/LargeShift and friends) outside their defining
# package are findings, resolved by object so same-named current fields
# (policy.TwoSizeConfig.LargeShift) are untouched.
paperlint:
	$(GO) run ./cmd/paperlint ./...

# lint is the fast local loop: just the invariant analyzers.
lint: paperlint

# lint-extra layers the pinned third-party checkers on top. Offline the
# tools cannot be fetched; warn and continue so air-gapped development
# still works (CI runs them for real).
lint-extra:
	@$(GO) run $(STATICCHECK) ./... \
		|| { [ "$(CI)" = "true" ] && exit 1 \
		|| echo "warning: staticcheck unavailable or failed (offline?); CI will enforce it"; }
	@$(GO) run $(GOVULNCHECK) ./... \
		|| { [ "$(CI)" = "true" ] && exit 1 \
		|| echo "warning: govulncheck unavailable or failed (offline?); CI will enforce it"; }

# verify is the pre-merge gate: static checks (vet, then the paperlint
# invariant suite, then the pinned external checkers), a full build,
# and the test suite under the race detector (the engine is concurrent;
# races are correctness bugs here, not style).
verify:
	$(GO) vet ./...
	$(MAKE) paperlint
	$(MAKE) lint-extra
	$(GO) build ./...
	$(GO) test -race ./...

# bench runs every benchmark in benchstat-friendly form: no unit tests
# mixed in (-run '^$'), allocation counts on, and repeated samples so
# `benchstat old.txt new.txt` has variance to work with.
# Usage: make bench | tee new.txt
COUNT ?= 6
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(COUNT) ./...

# bench-trace regenerates BENCH_trace.json: v1-vs-v2 trace size and
# decode throughput over the real workload generators.
bench-trace:
	$(GO) test -run TestTraceBenchReport -tracebench -count 1 .

# bench-kernels regenerates BENCH_kernels.json: the converted hot-state
# kernels (internal/htab and the arena page table) against their
# pre-conversion Go-map baselines (internal/kernelref), plus the
# end-to-end experiment-suite wall time at a fixed scale.
bench-kernels:
	$(GO) test -run TestKernelBenchReport -kernelbench -count 1 .

# bench-shard regenerates BENCH_shard.json: sharded-vs-serial wall time
# per shard count plus the residual miss error after warm-up (DESIGN.md
# §10). Speedup is capped by the core count; on a one-CPU box the
# sharded rows are expected to come out slower than serial.
SHARD_BENCH_REFS ?= 400000
bench-shard:
	$(GO) test -run TestShardBenchReport -shardbench -shardbenchrefs $(SHARD_BENCH_REFS) -count 1 .

# bench-walk regenerates BENCH_walk.json: simulator throughput and the
# emergent cycles-per-walk for the flat 25-cycle penalty against the
# modeled multi-level walk (DESIGN.md §12), with and without page-walk
# caches. The cycle columns are deterministic; only the timings churn.
WALK_BENCH_REFS ?= 400000
bench-walk:
	$(GO) test -run TestWalkBenchReport -walkbench -walkbenchrefs $(WALK_BENCH_REFS) -count 1 .

# bench-report regenerates BENCH_run.json: the full experiment suite's
# run report (internal/obs schema) at a reduced scale. The counter
# sections are deterministic for a given scale, so a diff against the
# committed file shows exactly which simulation volumes an intentional
# change moved (wall_ms/parallelism are the only fields expected to
# churn).
REPORT_SCALE ?= 0.05
bench-report:
	$(GO) run ./cmd/paper -scale $(REPORT_SCALE) -stats BENCH_run.json all > /dev/null

# golden checks the rendered output of every experiment byte-for-byte
# against testdata/golden; golden-update re-blesses the corpus after an
# intentional output change.
golden:
	$(GO) test -run TestGolden -count 1 .

golden-update:
	$(GO) test -run 'TestGolden$$' -update -count 1 .

# Regenerate every paper table/figure at full scale.
paper:
	$(GO) run ./cmd/paper all
