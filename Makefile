GO ?= go

.PHONY: all build test verify bench bench-trace golden golden-update paper

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: static checks, a full build, and the
# test suite under the race detector (the engine is concurrent; races
# are correctness bugs here, not style).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench runs every benchmark in benchstat-friendly form: no unit tests
# mixed in (-run '^$'), allocation counts on, and repeated samples so
# `benchstat old.txt new.txt` has variance to work with.
# Usage: make bench | tee new.txt
COUNT ?= 6
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(COUNT) ./...

# bench-trace regenerates BENCH_trace.json: v1-vs-v2 trace size and
# decode throughput over the real workload generators.
bench-trace:
	$(GO) test -run TestTraceBenchReport -tracebench -count 1 .

# golden checks the rendered output of every experiment byte-for-byte
# against testdata/golden; golden-update re-blesses the corpus after an
# intentional output change.
golden:
	$(GO) test -run TestGolden -count 1 .

golden-update:
	$(GO) test -run 'TestGolden$$' -update -count 1 .

# Regenerate every paper table/figure at full scale.
paper:
	$(GO) run ./cmd/paper all
