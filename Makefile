GO ?= go

.PHONY: all build test verify bench paper

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: static checks, a full build, and the
# test suite under the race detector (the engine is concurrent; races
# are correctness bugs here, not style).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at full scale.
paper:
	$(GO) run ./cmd/paper all
