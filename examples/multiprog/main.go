// Multiprog: the experiment the paper wished it could run. Its authors
// note twice that their uniprogrammed traces understate TLB pressure
// ("our traces do not include multiprogramming or operating system
// behavior"). This example interleaves four of the modelled programs
// round-robin, the way a time-sharing SPARCstation would, and compares:
//
//   - an ASID-tagged TLB (entries survive context switches) against
//     flush-on-switch hardware, and
//   - the 4KB baseline against the dynamic 4KB/32KB policy,
//
// on a 64-entry fully associative TLB — the "large TLB" regime the
// paper could not exercise.
//
// Run with:
//
//	go run ./examples/multiprog
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/multiprog"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

const (
	perProcess = 600_000
	quantum    = 20_000 // references per scheduling slice
)

var mix = []string{"li", "x11perf", "espresso", "eqntott"}

func run(two, flush bool) (cpi float64, switches uint64) {
	procs := make([]multiprog.Process, len(mix))
	for i, name := range mix {
		procs[i] = multiprog.Process{Name: name, Source: workload.MustNew(name, perProcess)}
	}
	mp, err := multiprog.New(procs, quantum)
	if err != nil {
		log.Fatal(err)
	}
	var pol policy.Assigner
	if two {
		pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(perProcess / 2))
	} else {
		pol = policy.NewSingle(addr.Size4K)
	}
	hw := tlb.NewFullyAssoc(64)
	if flush {
		mp.OnSwitch = func(from, to int) { hw.Flush() }
	}
	sim := core.NewSimulator(pol, []tlb.TLB{hw})
	res, err := sim.Run(context.Background(), mp)
	if err != nil {
		log.Fatal(err)
	}
	return res.TLBs[0].CPITLB, mp.Switches()
}

func main() {
	fmt.Printf("four-process mix %v, quantum %d refs, 64-entry fully associative TLB\n\n", mix, quantum)
	tbl := tableio.New("", "policy", "TLB on switch", "CPI_TLB", "switches")
	for _, two := range []bool{false, true} {
		for _, flush := range []bool{false, true} {
			name := "4KB"
			if two {
				name = "4KB/32KB"
			}
			mode := "ASID-tagged (kept)"
			if flush {
				mode = "flushed"
			}
			cpi, sw := run(two, flush)
			tbl.Row(name, mode, tableio.F(cpi, 3), fmt.Sprintf("%d", sw))
		}
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFlushing refills the mapped footprint after every switch; large pages")
	fmt.Println("refill it with ~8x fewer entries, so the two-page scheme softens the")
	fmt.Println("multiprogramming penalty — the effect the paper predicted but could not measure.")
}
