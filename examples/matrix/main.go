// Matrix: the paper's headline scenario in detail. matrix300's column
// walk through matrix B touches a new 4KB page almost every reference,
// so a small TLB thrashes; 32KB pages map 8x more memory per entry, and
// the dynamic two-page policy recovers nearly all of that benefit while
// keeping the working set close to the 4KB footprint.
//
// This example sweeps page-size schemes across both a fully associative
// and a two-way set-associative TLB and prints the tradeoff (CPI_TLB vs
// average working-set size) that Sections 4 and 5 of the paper weigh.
//
// Run with:
//
//	go run ./examples/matrix
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

const (
	refs = 3_000_000
	T    = refs / 8
)

func singleSize(size addr.PageSize) (cpiFA, cpi2W float64, avgWS float64) {
	sim := core.NewSimulator(policy.NewSingle(addr.MustPow2(size)), []tlb.TLB{
		tlb.NewFullyAssoc(16),
		tlb.MustNew(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact}),
	})
	res, err := sim.Run(context.Background(), workload.MustNew("matrix300", refs))
	if err != nil {
		log.Fatal(err)
	}
	wr, err := core.MeasureStaticWSS(context.Background(), workload.MustNew("matrix300", refs), T, addr.MustPow2(size))
	if err != nil {
		log.Fatal(err)
	}
	return res.TLBs[0].CPITLB, res.TLBs[1].CPITLB, wr[0].AvgBytes
}

func twoSize() (cpiFA, cpi2W float64, avgWS float64, promos uint64) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
	sim := core.NewSimulator(pol, []tlb.TLB{
		tlb.NewFullyAssoc(16),
		tlb.MustNew(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact}),
	}, core.WithWSS())
	res, err := sim.Run(context.Background(), workload.MustNew("matrix300", refs))
	if err != nil {
		log.Fatal(err)
	}
	return res.TLBs[0].CPITLB, res.TLBs[1].CPITLB, res.WSS.AvgBytes, res.PolicyStats.Promotions
}

func main() {
	tbl := tableio.New("matrix300: CPI_TLB vs memory cost (16-entry TLBs)",
		"scheme", "CPI (fully assoc)", "CPI (2-way exact)", "avg working set")
	var base float64
	for _, size := range []addr.PageSize{addr.Size4K, addr.Size8K, addr.Size32K} {
		fa, sa, ws := singleSize(size)
		if size == addr.Size4K {
			base = ws
		}
		tbl.Row(size.String(), tableio.F(fa, 3), tableio.F(sa, 3),
			fmt.Sprintf("%s (%.2fx)", wss.FormatBytes(ws), ws/base))
	}
	fa, sa, ws, promos := twoSize()
	tbl.Row("4KB/32KB", tableio.F(fa, 3), tableio.F(sa, 3),
		fmt.Sprintf("%s (%.2fx)", wss.FormatBytes(ws), ws/base))
	tbl.Note("two-page run performed %d chunk promotions (25-cycle miss penalty applied)", promos)
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
