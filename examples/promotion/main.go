// Promotion: watch the Section 3.4 page-size assignment policy at work,
// end to end through the OS substrates.
//
// Part 1 drives the li workload through the dynamic policy and prints a
// timeline of promotions/demotions and the instantaneous working-set
// size of the two-page scheme.
//
// Part 2 replays the policy's decisions against the page-table and
// physical-memory substrates: each promotion allocates an aligned 32KB
// frame from the buddy allocator, copies the resident small pages, and
// frees their frames — accumulating the real costs (copy bytes, walk
// cycles, external fragmentation) that the paper folds into its 25%
// miss-penalty increase.
//
// Run with:
//
//	go run ./examples/promotion
package main

import (
	"errors"
	"fmt"
	"io"
	"log"

	"twopage/internal/addr"
	"twopage/internal/pagetable"
	"twopage/internal/physmem"
	"twopage/internal/policy"
	"twopage/internal/trace"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

func main() {
	const refs = 1_000_000
	const T = refs / 8

	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
	calc := wss.NewTwoSize(pol)

	// OS substrates: a 16MB physical memory and a two-size page table.
	mem := physmem.MustNew(16 << 20)
	pt := pagetable.New()

	src := workload.MustNew("li", refs)
	buf := make([]trace.Ref, 4096)
	var step uint64
	events := 0

	fmt.Println("== part 1+2: policy timeline against page table + buddy allocator ==")
	for {
		n, err := src.Read(buf)
		for _, ref := range buf[:n] {
			step++
			res := pol.Assign(ref.Addr)
			calc.Observe(res)
			switch res.Event {
			case policy.EventPromote:
				if events < 12 {
					fmt.Printf("  ref %8d: PROMOTE chunk %#07x (%d blocks active)  WSS=%s\n",
						step, uint64(res.Chunk), pol.Window().ChunkActive(res.Chunk),
						wss.FormatBytes(float64(calc.Current())))
				}
				events++
				promote(pt, mem, res.Chunk)
			case policy.EventDemote:
				if events < 12 {
					fmt.Printf("  ref %8d: DEMOTE  chunk %#07x  WSS=%s\n",
						step, uint64(res.Chunk), wss.FormatBytes(float64(calc.Current())))
				}
				events++
				demote(pt, mem, res.Chunk)
			default:
				ensureMapped(pt, mem, res.Page)
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			log.Fatal(err)
		}
	}

	st := pol.Stats()
	pts := pt.Stats()
	ms := mem.Stats()
	fmt.Printf("\npolicy:     %d promotions, %d demotions, %d chunks large at end\n",
		st.Promotions, st.Demotions, st.LargeChunks)
	fmt.Printf("working set: %s average under 4KB/32KB\n",
		wss.FormatBytes(calc.Result().AvgBytes))
	fmt.Printf("page table: %d lookups, %d promoted, %.1f KB copied\n",
		pts.Lookups, pts.Promotions, float64(pts.CopiedBytes)/1024)
	fmt.Printf("phys mem:   %d/%d frames free, %d large allocs (%d blocked by fragmentation)\n",
		mem.FreeFrames(), mem.TotalFrames(), ms.LargeAllocs, ms.FailedLargeFragmented)
	fmt.Printf("handlers:   single-size miss %.0f cycles, two-size %.0f cycles (the paper's 20/25 model)\n",
		pagetable.SingleSizeHandlerCycles(), pagetable.TwoSizeHandlerCycles())
}

// ensureMapped faults the page in (maps it) if the page table misses,
// like a soft page-fault handler would.
func ensureMapped(pt *pagetable.Table, mem *physmem.Allocator, p policy.Page) {
	if _, walk := pt.Lookup(p.Base()); walk.Found {
		return
	}
	if p.Shift >= addr.ChunkShift {
		frame, err := mem.AllocLarge()
		if err != nil {
			return // leave unmapped under memory pressure
		}
		if err := pt.MapLarge(p.Number, frame); err != nil {
			mem.Free(frame)
		}
		return
	}
	frame, err := mem.AllocSmall()
	if err != nil {
		return
	}
	if err := pt.MapSmall(p.Number, frame); err != nil {
		mem.Free(frame)
	}
}

// promote reshapes the chunk's mappings: new 32KB frame, copy resident
// blocks, free the old small frames.
func promote(pt *pagetable.Table, mem *physmem.Allocator, c addr.PN) {
	newFrame, err := mem.AllocLarge()
	if err != nil {
		return
	}
	freed, _, err := pt.Promote(c, newFrame)
	if err != nil {
		mem.Free(newFrame)
		return
	}
	for _, f := range freed {
		mem.Free(f)
	}
}

// demote splits the large mapping back into eight small frames.
func demote(pt *pagetable.Table, mem *physmem.Allocator, c addr.PN) {
	var frames [addr.BlocksPerChunk]addr.PN
	for i := range frames {
		f, err := mem.AllocSmall()
		if err != nil {
			return
		}
		frames[i] = f
	}
	old, err := pt.Demote(c, frames)
	if err != nil {
		for _, f := range frames {
			mem.Free(f)
		}
		return
	}
	mem.Free(old)
}
