// Indexing: the Section 2 design space, live.
//
// Part 1 reproduces the paper's Figure 2.1 thought experiment on a toy
// 16-bit address space: a direct-mapped 2-entry TLB indexed by the
// small page number smears one large page across both sets, while
// indexing by the large page number makes eight consecutive small pages
// collide in one set.
//
// Part 2 runs tomcatv — the paper's pathological program — against a
// 16-entry two-way TLB under all three indexing schemes plus a split
// TLB, showing the Table 5.1 anomaly: any scheme that indexes with the
// large-page bits thrashes, because tomcatv's seven arrays share those
// bits.
//
// Run with:
//
//	go run ./examples/indexing
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

func part1() {
	fmt.Println("== Figure 2.1: one 32KB page vs a small-page-indexed TLB ==")
	smallIx := tlb.MustNew(tlb.Config{Entries: 2, Ways: 1, Index: tlb.IndexSmall})
	large := policy.Page{Number: 0, Shift: addr.Shift32K}
	// Touch the large page at offsets 0 and 4KB: bit<12> differs, so the
	// small-page index sends the SAME page to BOTH sets.
	smallIx.Access(0x0000, large)
	smallIx.Access(0x1000, large)
	fmt.Printf("  small-page index: one 32KB page now occupies %d copies ->\n", smallIx.Invalidate(large))
	fmt.Println("  the large page is replicated; its reach is wasted (paper: \"negates the very reason\")")

	largeIx := tlb.MustNew(tlb.Config{Entries: 2, Ways: 1, Index: tlb.IndexLarge})
	misses := 0
	for round := 0; round < 4; round++ {
		for p := 0; p < 2; p++ { // two alternating small pages, same 32KB region
			va := addr.VA(p << addr.Shift4K)
			pg := policy.Page{Number: addr.Page(va, addr.Shift4K), Shift: addr.Shift4K}
			if !largeIx.Access(va, pg) {
				misses++
			}
		}
	}
	fmt.Printf("  large-page index: 2 alternating small pages, 8 accesses, %d misses (they share one set)\n\n", misses)
}

func part2() {
	fmt.Println("== tomcatv vs the three indexing schemes (16-entry, 4KB/32KB policy) ==")
	const refs = 2_000_000
	run := func(mk func() tlb.TLB) float64 {
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(refs / 8))
		sim := core.NewSimulator(pol, []tlb.TLB{mk()})
		res, err := sim.Run(context.Background(), workload.MustNew("tomcatv", refs))
		if err != nil {
			log.Fatal(err)
		}
		return res.TLBs[0].CPITLB
	}
	tbl := tableio.New("", "organization", "CPI_TLB")
	tbl.Row("2-way, small-page index (broken for large pages)",
		tableio.F(run(func() tlb.TLB { return twoWay(tlb.IndexSmall) }), 3))
	tbl.Row("2-way, large-page index",
		tableio.F(run(func() tlb.TLB { return twoWay(tlb.IndexLarge) }), 3))
	tbl.Row("2-way, exact index",
		tableio.F(run(func() tlb.TLB { return twoWay(tlb.IndexExact) }), 3))
	tbl.Row("split 12+4 (per-size TLBs)",
		tableio.F(run(func() tlb.TLB {
			sp, err := tlb.NewSplit(tlb.Config{Entries: 12, Ways: 12}, tlb.Config{Entries: 4, Ways: 4})
			if err != nil {
				log.Fatal(err)
			}
			return sp
		}), 3))
	tbl.Row("fully associative (Section 2.1 baseline)",
		tableio.F(run(func() tlb.TLB { return tlb.NewFullyAssoc(16) }), 3))
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  tomcatv's seven arrays share large-page-index bits: every set-associative")
	fmt.Println("  scheme that uses them thrashes; full associativity is immune (paper Section 5.2).")
}

func twoWay(ix tlb.IndexScheme) tlb.TLB {
	return tlb.MustNew(tlb.Config{Entries: 16, Ways: 2, Index: ix})
}

func main() {
	part1()
	part2()
}
