// Quickstart: simulate one workload against a 16-entry TLB under the
// 4KB baseline and the paper's dynamic 4KB/32KB policy, and print the
// headline metric (CPI_TLB) for both.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

func main() {
	const refs = 2_000_000 // trace length
	const T = refs / 8     // policy window ("last T references")

	// Baseline: a single 4KB page size on a 16-entry fully associative
	// TLB (the paper's Figure 5.1 configuration).
	base := core.NewSimulator(
		policy.NewSingle(addr.Size4K),
		[]tlb.TLB{tlb.NewFullyAssoc(16)},
	)
	baseRes, err := base.Run(context.Background(), workload.MustNew("matrix300", refs))
	if err != nil {
		log.Fatal(err)
	}

	// Two page sizes: the dynamic promotion policy of Section 3.4 (a
	// 32KB chunk becomes one large page when >= 4 of its eight 4KB
	// blocks were referenced in the last T references), with the 25%
	// higher miss penalty of Section 2.3 and the working-set tracker.
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
	two := core.NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(16)}, core.WithWSS())
	twoRes, err := two.Run(context.Background(), workload.MustNew("matrix300", refs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("matrix300, 16-entry fully associative TLB")
	fmt.Printf("  4KB pages:      CPI_TLB = %.3f  (MPI %.5f, penalty %.0f cycles)\n",
		baseRes.TLBs[0].CPITLB, baseRes.TLBs[0].MPI, baseRes.TLBs[0].MissPenalty)
	fmt.Printf("  4KB/32KB pages: CPI_TLB = %.3f  (MPI %.5f, penalty %.0f cycles)\n",
		twoRes.TLBs[0].CPITLB, twoRes.TLBs[0].MPI, twoRes.TLBs[0].MissPenalty)
	fmt.Printf("  speedup: %.1fx with %d promotions; avg working set %.2f MB\n",
		baseRes.TLBs[0].CPITLB/twoRes.TLBs[0].CPITLB,
		twoRes.PolicyStats.Promotions,
		twoRes.WSS.AvgBytes/(1<<20))
}
