// Customworkload: model a new program without writing Go, using the
// workload spec language, then put it through the paper's full
// analysis pipeline: characterize it (chunk density predicts what the
// promotion policy will do), then measure CPI_TLB under 4KB, 32KB and
// the dynamic two-page policy.
//
// The spec below sketches a database-like program the paper never
// traced: a large B-tree (pointer chasing over dense node clusters), a
// sequential log writer, and a small hot catalog.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/tracestat"
	"twopage/internal/workload"
)

const dbSpec = `
# a small database engine, circa 1992
code funcs=12 body=1024 visit=3072 spacing=4K base=0x1000000
dpi 0.36
# B-tree: 64 dense 24KB node clusters, pointer-chased
chase   base=512M span=24M clusters=64 csize=24K nodes=2048 span2=32 burst=6 weight=0.45
# write-ahead log: pure sequential appends
seq     base=16M size=512K stride=64 weight=0.25 store=0.9
# catalog: small hot region
uniform base=32M size=32K align=16 weight=0.30 store=0.1
`

const refs = 2_000_000

func main() {
	// 1. Characterize: what will the promotion policy see?
	rep, err := tracestat.Analyze(workload.MustParse("db", refs, dbSpec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== workload characterization ==")
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// 2. Evaluate the page-size schemes on it.
	run := func(pol policy.Assigner) *core.Result {
		sim := core.NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(16)})
		res, err := sim.Run(context.Background(), workload.MustParse("db", refs, dbSpec))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	tbl := tableio.New("== db workload: CPI_TLB, 16-entry fully associative ==",
		"scheme", "CPI_TLB", "MPI", "penalty")
	for _, pol := range []policy.Assigner{
		policy.NewSingle(addr.Size4K),
		policy.NewSingle(addr.Size32K),
		policy.NewTwoSize(policy.DefaultTwoSizeConfig(refs / 8)),
	} {
		res := run(pol)
		tr := res.TLBs[0]
		tbl.Row(res.Policy, tableio.F(tr.CPITLB, 3),
			fmt.Sprintf("%.5f", tr.MPI), fmt.Sprintf("%.0f cyc", tr.MissPenalty))
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe dense B-tree clusters promote (density ~6 of 8 blocks), the log")
	fmt.Println("promotes trivially, and the catalog stays small — so the two-page")
	fmt.Println("scheme should approach the 32KB result at a fraction of its memory cost.")
}
