package twopage_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"regexp"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/experiments"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// maskTimings hides the designspace experiment's wall-clock ratio, the
// one intentionally time-dependent cell in any table.
var maskTimings = regexp.MustCompile(`\d+\.\d+x`)

// renderAll runs every registered experiment through one Runner at the
// given parallelism and returns the combined output.
func renderAll(t *testing.T, parallelism int) string {
	t.Helper()
	var sb bytes.Buffer
	r := experiments.NewRunner(
		experiments.WithScale(0.01),
		experiments.WithWorkloads("li", "worm"),
		experiments.WithOut(&sb),
		experiments.WithParallelism(parallelism),
	)
	ids := make([]string, 0, len(experiments.All()))
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	if err := r.RunAll(context.Background(), ids...); err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	return maskTimings.ReplaceAllString(sb.String(), "T")
}

// The tentpole guarantee: running the whole paper concurrently produces
// byte-identical output to running it sequentially. Tables are
// reassembled in registry order regardless of which worker finished
// first, and the memo cache returns shared (deterministic) results.
func TestParallelOutputMatchesSequential(t *testing.T) {
	seq := renderAll(t, 1)
	par := renderAll(t, 8)
	if seq != par {
		t.Fatalf("output differs between -j 1 and -j 8:\n-- j1 --\n%s\n-- j8 --\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("no output produced")
	}
}

// cancelAfterReader cancels its context after n batches, simulating a
// user interrupt arriving mid-trace.
type cancelAfterReader struct {
	src    trace.Reader
	cancel context.CancelFunc
	n      int
}

func (c *cancelAfterReader) Read(p []trace.Ref) (int, error) {
	if c.n--; c.n < 0 {
		c.cancel()
	}
	return c.src.Read(p)
}

// A canceled context stops core.Simulator.Run between batches, long
// before the trace is exhausted, and surfaces context.Canceled.
func TestSimulatorRunCancellation(t *testing.T) {
	const refs = 50_000_000 // far more than a test should ever simulate
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterReader{src: workload.MustNew("li", refs), cancel: cancel, n: 2}
	sim := core.NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{tlb.NewFullyAssoc(16)})
	_, err := sim.Run(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Cancellation propagates through the engine and Runner: a canceled
// context fails the run with context.Canceled instead of hanging or
// returning partial tables.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := experiments.NewRunner(
		experiments.WithScale(0.01),
		experiments.WithWorkloads("li"),
		experiments.WithOut(io.Discard),
		experiments.WithParallelism(2),
	)
	err := r.RunAll(ctx, "table3.1", "fig5.1")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The JSON rendering mode produces one decodable document per table.
func TestExperimentsJSON(t *testing.T) {
	var sb bytes.Buffer
	r := experiments.NewRunner(
		experiments.WithScale(0.01),
		experiments.WithWorkloads("li"),
		experiments.WithOut(&sb),
		experiments.WithJSON(true),
	)
	if err := r.Run(context.Background(), "table3.1"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(sb.Bytes(), &doc); err != nil {
		t.Fatalf("undecodable JSON: %v\n%s", err, sb.String())
	}
	if doc.Title == "" || len(doc.Columns) == 0 || len(doc.Rows) == 0 {
		t.Fatalf("empty JSON document: %+v", doc)
	}
	if _, ok := doc.Rows[0][doc.Columns[0]]; !ok {
		t.Fatalf("rows not keyed by column headers: %+v", doc.Rows[0])
	}
}
