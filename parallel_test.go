package twopage_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/experiments"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// maskTimings hides the designspace experiment's wall-clock ratio, the
// one intentionally time-dependent cell in any table. The trailing
// column padding is masked with the digits: the cell's rendered width
// tracks the raw ratio string, so a run crossing the 10x boundary
// would otherwise shift the padding by a character.
var maskTimings = regexp.MustCompile(`\d+\.\d+x *`)

// renderAll runs every registered experiment through one Runner at the
// given parallelism and returns the combined output.
func renderAll(t *testing.T, parallelism int) string {
	t.Helper()
	var sb bytes.Buffer
	r := experiments.NewRunner(
		experiments.WithScale(0.01),
		experiments.WithWorkloads("li", "worm"),
		experiments.WithOut(&sb),
		experiments.WithParallelism(parallelism),
	)
	ids := make([]string, 0, len(experiments.All()))
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	if err := r.RunAll(context.Background(), ids...); err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	return maskTimings.ReplaceAllString(sb.String(), "T")
}

// The tentpole guarantee: running the whole paper concurrently produces
// byte-identical output to running it sequentially. Tables are
// reassembled in registry order regardless of which worker finished
// first, and the memo cache returns shared (deterministic) results.
func TestParallelOutputMatchesSequential(t *testing.T) {
	seq := renderAll(t, 1)
	par := renderAll(t, 8)
	if seq != par {
		t.Fatalf("output differs between -j 1 and -j 8:\n-- j1 --\n%s\n-- j8 --\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("no output produced")
	}
}

// writeV2Workload generates a workload's reference stream into a v2
// trace file and memory-maps it back.
func writeV2Workload(t *testing.T, name string, refs uint64, blockRefs int) *trace.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".trc")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewV2WriterBlock(out, blockRefs)
	if _, err := trace.Drain(workload.MustNew(name, refs), func(batch []trace.Ref) {
		if werr := w.Write(batch); werr != nil {
			t.Fatal(werr)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// The tentpole guarantee extends to file-backed workloads: with an
// mmap'd v2 trace standing in for a modelled program, every experiment
// still renders byte-identically at -j 1 and -j 8 (all parallel passes
// decode the one shared mapping through independent cursors).
func TestParallelOutputMatchesSequentialOverTraceFile(t *testing.T) {
	f := writeV2Workload(t, "li", 80_000, 4096)
	const name = "trace:li-partest"
	if err := workload.RegisterFile(name, f); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workload.Unregister(name) })

	render := func(parallelism int) string {
		var sb bytes.Buffer
		r := experiments.NewRunner(
			experiments.WithScale(0.01),
			experiments.WithWorkloads(name),
			experiments.WithOut(&sb),
			experiments.WithParallelism(parallelism),
		)
		ids := make([]string, 0, len(experiments.All()))
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		if err := r.RunAll(context.Background(), ids...); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return maskTimings.ReplaceAllString(sb.String(), "T")
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("trace-file output differs between -j 1 and -j 8:\n-- j1 --\n%s\n-- j8 --\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("no output produced")
	}
}

// The three-size ladder experiment mixes memoized engine passes with
// opaque tasks (the sampled working-set and NAPOT runs), so its -j
// invariance is pinned on its own, not just as part of the full-registry
// sweep above: a scheduling dependence here would implicate the new
// N-size machinery specifically.
func TestLadder3DeterministicAcrossParallelism(t *testing.T) {
	render := func(parallelism int) string {
		var sb bytes.Buffer
		r := experiments.NewRunner(
			experiments.WithScale(0.01),
			experiments.WithWorkloads("li", "worm"),
			experiments.WithOut(&sb),
			experiments.WithParallelism(parallelism),
		)
		if err := r.RunAll(context.Background(), "ladder3", "nindex"); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return maskTimings.ReplaceAllString(sb.String(), "T")
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("ladder3/nindex output differs between -j 1 and -j 8:\n-- j1 --\n%s\n-- j8 --\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("no output produced")
	}
}

// Section-split simulation is deterministic in the engine: simulating
// the same 8 disjoint sections of one mapped trace must render the
// same per-section miss table whether one worker or eight execute the
// sections.
func TestSectionSimulationDeterministicAcrossParallelism(t *testing.T) {
	f := writeV2Workload(t, "worm", 120_000, 2048)
	const sections = 8
	render := func(parallelism int) string {
		e := engine.New(parallelism)
		fut := engine.MapSections(e, context.Background(), f, sections, "worm",
			func(ctx context.Context, r *trace.MapReader, section int) (string, error) {
				sim := core.NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{tlb.NewFullyAssoc(16)})
				res, err := sim.Run(ctx, r)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("section %d: refs %d misses %d\n",
					section, res.Refs, res.TLBs[0].Stats.Misses()), nil
			})
		parts, err := fut.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var sb bytes.Buffer
		var refs uint64
		for _, p := range parts {
			sb.WriteString(p)
		}
		for i := 0; i < sections; i++ {
			refs += f.SectionRefs(i, sections)
		}
		if refs != f.Refs() {
			t.Fatalf("sections cover %d refs, file has %d", refs, f.Refs())
		}
		return sb.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("section table differs between 1 and 8 workers:\n-- 1 --\n%s\n-- 8 --\n%s", seq, par)
	}
}

// cancelAfterReader cancels its context after n batches, simulating a
// user interrupt arriving mid-trace.
type cancelAfterReader struct {
	src    trace.Reader
	cancel context.CancelFunc
	n      int
}

func (c *cancelAfterReader) Read(p []trace.Ref) (int, error) {
	if c.n--; c.n < 0 {
		c.cancel()
	}
	return c.src.Read(p)
}

// A canceled context stops core.Simulator.Run between batches, long
// before the trace is exhausted, and surfaces context.Canceled.
func TestSimulatorRunCancellation(t *testing.T) {
	const refs = 50_000_000 // far more than a test should ever simulate
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterReader{src: workload.MustNew("li", refs), cancel: cancel, n: 2}
	sim := core.NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{tlb.NewFullyAssoc(16)})
	_, err := sim.Run(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Cancellation propagates through the engine and Runner: a canceled
// context fails the run with context.Canceled instead of hanging or
// returning partial tables.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := experiments.NewRunner(
		experiments.WithScale(0.01),
		experiments.WithWorkloads("li"),
		experiments.WithOut(io.Discard),
		experiments.WithParallelism(2),
	)
	err := r.RunAll(ctx, "table3.1", "fig5.1")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The JSON rendering mode produces one decodable document per table.
func TestExperimentsJSON(t *testing.T) {
	var sb bytes.Buffer
	r := experiments.NewRunner(
		experiments.WithScale(0.01),
		experiments.WithWorkloads("li"),
		experiments.WithOut(&sb),
		experiments.WithJSON(true),
	)
	if err := r.Run(context.Background(), "table3.1"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(sb.Bytes(), &doc); err != nil {
		t.Fatalf("undecodable JSON: %v\n%s", err, sb.String())
	}
	if doc.Title == "" || len(doc.Columns) == 0 || len(doc.Rows) == 0 {
		t.Fatalf("empty JSON document: %+v", doc)
	}
	if _, ok := doc.Rows[0][doc.Columns[0]]; !ok {
		t.Fatalf("rows not keyed by column headers: %+v", doc.Rows[0])
	}
}
