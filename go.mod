module twopage

go 1.22
