package twopage_test

import (
	"bytes"
	"context"
	"reflect"
	"regexp"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/allassoc"
	"twopage/internal/core"
	"twopage/internal/experiments"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/window"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// The direct TLB simulator and the all-associativity (tycho-style)
// simulator must report identical miss counts for single-page-size
// LRU TLBs, across real workload streams.
func TestDirectVsAllAssociativity(t *testing.T) {
	for _, name := range []string{"li", "matrix300", "tomcatv"} {
		const refs = 150_000
		// Direct simulation of 16- and 32-entry fully associative TLBs.
		fa16 := tlb.NewFullyAssoc(16)
		fa32 := tlb.NewFullyAssoc(32)
		sim := core.NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{fa16, fa32})
		if _, err := sim.Run(context.Background(), workload.MustNew(name, refs)); err != nil {
			t.Fatal(err)
		}
		// One stack-simulation pass covering both sizes.
		sa := allassoc.MustNew(1, addr.Shift4K, 32)
		if _, err := trace.Drain(workload.MustNew(name, refs), func(b []trace.Ref) {
			for _, ref := range b {
				sa.Access(ref.Addr)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if got, want := sa.Misses(16), fa16.Stats().Misses(); got != want {
			t.Errorf("%s: allassoc FA16 misses %d != direct %d", name, got, want)
		}
		if got, want := sa.Misses(32), fa32.Stats().Misses(); got != want {
			t.Errorf("%s: allassoc FA32 misses %d != direct %d", name, got, want)
		}
	}
}

// The O(1)-counter working-set calculator must agree with an exact
// sliding-window recomputation on a real workload stream.
func TestStaticWSSVsWindowTracker(t *testing.T) {
	const refs = 60_000
	const T = 4_000
	calc := wss.NewStatic(T, addr.Shift4K)
	win := window.New(T)
	var winAccum float64
	if _, err := trace.Drain(workload.MustNew("espresso", refs), func(b []trace.Ref) {
		for _, ref := range b {
			calc.Step(ref.Addr)
			win.StepVA(ref.Addr)
			winAccum += float64(win.ActiveBlocks()) * addr.BlockSize
		}
	}); err != nil {
		t.Fatal(err)
	}
	got := calc.Finish()[0].AvgBytes
	want := winAccum / refs
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Static WSS %v != window-tracker WSS %v", got, want)
	}
}

// Encoding a workload to the binary trace format and simulating the
// decoded stream must produce byte-identical results to simulating the
// generator directly (the tracegen → tlbsim path).
func TestTraceFileRoundTripPreservesSimulation(t *testing.T) {
	const refs = 120_000
	runTLB := func(src trace.Reader) tlb.Stats {
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(refs / 8))
		hw := tlb.NewFullyAssoc(16)
		sim := core.NewSimulator(pol, []tlb.TLB{hw})
		if _, err := sim.Run(context.Background(), src); err != nil {
			t.Fatal(err)
		}
		return hw.Stats()
	}
	direct := runTLB(workload.MustNew("doduc", refs))

	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if _, err := trace.Drain(workload.MustNew("doduc", refs), func(b []trace.Ref) {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed := runTLB(trace.NewBinaryReader(&buf))
	if !reflect.DeepEqual(direct, replayed) {
		t.Fatalf("replay diverged:\ndirect:   %+v\nreplayed: %+v", direct, replayed)
	}
}

// Every registered experiment must be deterministic: two runs at the
// same options produce identical output. The designspace experiment
// reports a wall-clock ratio (the point of its methodology claim), so
// its timing column is masked before comparison.
func TestExperimentsDeterministic(t *testing.T) {
	maskTiming := regexp.MustCompile(`\d+\.\d+x`)
	for _, e := range experiments.All() {
		render := func() string {
			var sb bytes.Buffer
			err := experiments.Run(e.ID, experiments.Options{
				Scale:     0.01,
				Out:       &sb,
				Workloads: []string{"li", "worm"},
			})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := sb.String()
			if e.ID == "designspace" {
				out = maskTiming.ReplaceAllString(out, "T")
			}
			return out
		}
		if a, b := render(), render(); a != b {
			t.Errorf("%s: nondeterministic output", e.ID)
		}
	}
}

// Every registered experiment honours the CSV option and produces at
// least a header and one data row.
func TestExperimentsCSV(t *testing.T) {
	for _, e := range experiments.All() {
		var sb bytes.Buffer
		err := experiments.Run(e.ID, experiments.Options{
			Scale:     0.01,
			Out:       &sb,
			CSV:       true,
			Workloads: []string{"li"},
		})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		lines := bytes.Count(sb.Bytes(), []byte("\n"))
		if lines < 2 {
			t.Errorf("%s: CSV output too short (%d lines)", e.ID, lines)
		}
	}
}

// A full two-page simulation over every workload must satisfy global
// accounting invariants end to end.
func TestAllWorkloadsAccounting(t *testing.T) {
	for _, spec := range workload.All() {
		const refs = 60_000
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(refs / 8))
		hw := tlb.NewFullyAssoc(16)
		sim := core.NewSimulator(pol, []tlb.TLB{hw}, core.WithWSS())
		res, err := sim.Run(context.Background(), workload.MustNew(spec.Name, refs))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Refs != refs {
			t.Errorf("%s: refs = %d", spec.Name, res.Refs)
		}
		st := res.TLBs[0].Stats
		if st.Accesses != refs || st.Hits()+st.Misses() != st.Accesses {
			t.Errorf("%s: TLB accounting: %+v", spec.Name, st)
		}
		ps := res.PolicyStats
		if ps.Refs != refs || ps.LargeRefs+ps.SmallRefs != ps.Refs {
			t.Errorf("%s: policy accounting: %+v", spec.Name, ps)
		}
		if ps.Demotions > ps.Promotions {
			t.Errorf("%s: more demotions than promotions", spec.Name)
		}
		if res.WSS.AvgBytes <= 0 {
			t.Errorf("%s: WSS = %v", spec.Name, res.WSS.AvgBytes)
		}
		// The two-page working set is bounded by twice the 4KB one
		// (Section 3.4's worst case); compare against a fresh static pass.
		static, err := core.MeasureStaticWSS(context.Background(), workload.MustNew(spec.Name, refs),
			uint64(refs/8), addr.Size4K)
		if err != nil {
			t.Fatal(err)
		}
		if res.WSS.AvgBytes > 2*static[0].AvgBytes+1 {
			t.Errorf("%s: two-page WSS %v exceeds 2x 4KB WSS %v",
				spec.Name, res.WSS.AvgBytes, static[0].AvgBytes)
		}
	}
}
