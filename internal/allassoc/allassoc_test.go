package allassoc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
	"twopage/internal/policy"
	"twopage/internal/tlb"
)

func randAddrs(n int, seed int64, pages int) []addr.VA {
	rng := rand.New(rand.NewSource(seed))
	out := make([]addr.VA, n)
	for i := range out {
		// Mix hot and cold pages with sub-page offsets.
		var p int
		if rng.Intn(2) == 0 {
			p = rng.Intn(pages / 8)
		} else {
			p = rng.Intn(pages)
		}
		out[i] = addr.VA(p<<addr.Shift4K + rng.Intn(addr.BlockSize))
	}
	return out
}

func TestValidation(t *testing.T) {
	for _, c := range []struct{ sets, ways int }{{0, 4}, {-1, 4}, {3, 4}, {4, 0}} {
		if _, err := New(c.sets, addr.Shift4K, c.ways); err == nil {
			t.Errorf("New(%d,_,%d) should fail", c.sets, c.ways)
		}
	}
	if _, err := NewSweep(nil, addr.Shift4K, 2); err == nil {
		t.Error("empty sweep should fail")
	}
	if _, err := NewSweep([]int{4, 5}, addr.Shift4K, 2); err == nil {
		t.Error("bad set count in sweep should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(3, addr.Shift4K, 2)
}

func TestMissesRangeChecks(t *testing.T) {
	s := MustNew(4, addr.Shift4K, 4)
	for _, w := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Misses(%d) should panic", w)
				}
			}()
			s.Misses(w)
		}()
	}
}

// The central correctness claim: the one-pass stack simulation matches
// direct simulation of each (sets, ways) LRU TLB exactly.
func TestMatchesDirectSimulation(t *testing.T) {
	addrs := randAddrs(30_000, 11, 256)
	const maxWays = 8
	sw, err := NewSweep([]int{1, 2, 4, 8}, addr.Shift4K, maxWays)
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range addrs {
		sw.Access(va)
	}
	for _, sets := range []int{1, 2, 4, 8} {
		for ways := 1; ways <= maxWays; ways++ {
			direct := tlb.MustNew(tlb.Config{
				Entries: sets * ways, Ways: ways, Index: tlb.IndexSmall, Repl: tlb.LRU,
			})
			pol := policy.NewSingle(addr.Size4K)
			for _, va := range addrs {
				direct.Access(va, pol.Assign(va).Page)
			}
			want := direct.Stats().Misses()
			got, err := sw.Misses(sets, ways)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("sets=%d ways=%d: allassoc=%d direct=%d", sets, ways, got, want)
			}
		}
	}
	if _, err := sw.Misses(16, 1); err == nil {
		t.Fatal("unsimulated set count should error")
	}
}

// Works for large pages too (index/tag at the 32KB shift).
func TestMatchesDirectSimulationLargePages(t *testing.T) {
	addrs := randAddrs(20_000, 13, 2048)
	s := MustNew(8, addr.Shift32K, 4)
	for _, va := range addrs {
		s.Access(va)
	}
	for ways := 1; ways <= 4; ways++ {
		direct := tlb.MustNew(tlb.Config{
			Entries: 8 * ways, Ways: ways, Index: tlb.IndexLarge, Repl: tlb.LRU,
		})
		pol := policy.NewSingle(addr.Size32K)
		for _, va := range addrs {
			direct.Access(va, pol.Assign(va).Page)
		}
		if got, want := s.Misses(ways), direct.Stats().Misses(); got != want {
			t.Fatalf("ways=%d: allassoc=%d direct=%d", ways, got, want)
		}
	}
}

// Property: misses are monotonically non-increasing in associativity
// (LRU inclusion), and every count is bounded by the access count.
func TestMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		addrs := randAddrs(5000, seed, 128)
		s := MustNew(4, addr.Shift4K, 8)
		for _, va := range addrs {
			s.Access(va)
		}
		prev := s.Misses(1)
		if prev > s.Accesses() {
			return false
		}
		for w := 2; w <= 8; w++ {
			m := s.Misses(w)
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestResultsEnumeration(t *testing.T) {
	sw, err := NewSweep([]int{2, 4}, addr.Shift4K, 2)
	if err != nil {
		t.Fatal(err)
	}
	sw.Access(0x1000)
	rs := sw.Results()
	if len(rs) != 4 {
		t.Fatalf("got %d configs, want 4", len(rs))
	}
	seen := map[[2]int]bool{}
	for _, r := range rs {
		if r.Entries != r.Sets*r.Ways {
			t.Fatalf("entries mismatch: %+v", r)
		}
		seen[[2]int{r.Sets, r.Ways}] = true
	}
	for _, want := range [][2]int{{2, 1}, {2, 2}, {4, 1}, {4, 2}} {
		if !seen[want] {
			t.Fatalf("missing config %v", want)
		}
	}
}

func TestAccessorMethods(t *testing.T) {
	s := MustNew(4, addr.Shift4K, 3)
	if s.Sets() != 4 || s.MaxWays() != 3 {
		t.Fatalf("accessors: %d %d", s.Sets(), s.MaxWays())
	}
	s.Access(0)
	if s.Accesses() != 1 {
		t.Fatal("accesses not counted")
	}
}

func BenchmarkSweepAccess(b *testing.B) {
	sw, _ := NewSweep([]int{4, 8, 16}, addr.Shift4K, 8)
	addrs := randAddrs(1<<14, 1, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Access(addrs[i&(len(addrs)-1)])
	}
}
