// Package allassoc implements all-associativity simulation in the style
// of tycho (Hill & Smith, "Evaluating Associativity in CPU Caches",
// IEEE ToC 1989), which the paper modified to simulate its 84 TLB
// configurations in one pass (Section 3.3).
//
// For a fixed number of sets and a fixed indexing function, one pass
// over the reference stream maintains a true-LRU stack per set and
// records each access's *stack distance* (its depth in the set's stack).
// An access at distance d hits in any TLB of that set count with
// associativity > d, so the distance histogram yields miss counts for
// every associativity at once. A Sweep runs several set counts side by
// side, covering the whole (sets × ways) design space in a single pass
// over the trace.
//
// The simulation is exact for single-page-size TLBs with LRU
// replacement, which is how the paper used it; the two-page-size
// configurations with promotion events are simulated directly by
// internal/core instead (stack inclusion does not survive cross-size
// invalidations).
package allassoc

import (
	"fmt"

	"twopage/internal/addr"
)

// Sim performs all-associativity simulation for one set count.
type Sim struct {
	sets     int
	setBits  uint
	shift    uint
	maxWays  int
	stacks   [][]addr.PN // per set, MRU first, capped at maxWays entries
	hist     []uint64    // hist[d]: accesses found at stack distance d < maxWays
	cold     uint64      // accesses that miss at every associativity of interest
	accesses uint64
}

// New returns a Sim for a TLB with the given set count (a power of two),
// page shift (index and tag derive from va >> shift), and the maximum
// associativity of interest. Per-set stacks are truncated at maxWays
// entries: an access at distance >= maxWays misses in every evaluated
// configuration regardless of its exact depth, so truncation changes no
// reported miss count while bounding per-access work at O(maxWays).
func New(sets int, pageShift uint, maxWays int) (*Sim, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("allassoc: set count %d not a positive power of two", sets)
	}
	if maxWays <= 0 {
		return nil, fmt.Errorf("allassoc: maxWays must be positive, got %d", maxWays)
	}
	setBits := uint(0)
	for v := sets; v > 1; v >>= 1 {
		setBits++
	}
	return &Sim{
		sets:    sets,
		setBits: setBits,
		shift:   pageShift,
		maxWays: maxWays,
		stacks:  make([][]addr.PN, sets),
		hist:    make([]uint64, maxWays),
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(sets int, pageShift uint, maxWays int) *Sim {
	s, err := New(sets, pageShift, maxWays)
	if err != nil {
		panic(err)
	}
	return s
}

// Access observes one reference.
func (s *Sim) Access(va addr.VA) {
	s.accesses++
	pn := addr.Page(va, s.shift)
	idx := addr.Index(va, s.shift, s.setBits)
	stack := s.stacks[idx]
	for d, p := range stack {
		if p == pn {
			// Move to MRU position.
			copy(stack[1:d+1], stack[:d])
			stack[0] = pn
			s.hist[d]++
			return
		}
	}
	// Miss at every associativity of interest (never seen, or truncated
	// off the capped stack — identical outcome for ways <= maxWays).
	s.cold++
	if len(stack) < s.maxWays {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = pn
	s.stacks[idx] = stack
}

// Misses returns the miss count a TLB with the given associativity
// (1..maxWays) would have incurred: every access at stack distance
// >= ways, including cold and truncated-depth accesses.
func (s *Sim) Misses(ways int) uint64 {
	if ways < 1 || ways > s.maxWays {
		panic(fmt.Sprintf("allassoc: ways %d out of range [1,%d]", ways, s.maxWays))
	}
	m := s.cold
	for d := ways; d < s.maxWays; d++ {
		m += s.hist[d]
	}
	return m
}

// Accesses returns the number of references observed.
func (s *Sim) Accesses() uint64 { return s.accesses }

// Sets returns the configured set count.
func (s *Sim) Sets() int { return s.sets }

// MaxWays returns the configured maximum associativity.
func (s *Sim) MaxWays() int { return s.maxWays }

// Sweep simulates several set counts in one pass, covering a whole
// (sets × ways) design space.
type Sweep struct {
	sims []*Sim
}

// NewSweep returns a Sweep over the given set counts, sharing pageShift
// and maxWays.
func NewSweep(setCounts []int, pageShift uint, maxWays int) (*Sweep, error) {
	if len(setCounts) == 0 {
		return nil, fmt.Errorf("allassoc: no set counts")
	}
	sw := &Sweep{}
	for _, n := range setCounts {
		s, err := New(n, pageShift, maxWays)
		if err != nil {
			return nil, err
		}
		sw.sims = append(sw.sims, s)
	}
	return sw, nil
}

// Access observes one reference in every simulated set count.
func (sw *Sweep) Access(va addr.VA) {
	for _, s := range sw.sims {
		s.Access(va)
	}
}

// Misses returns the misses for the configuration (sets, ways).
func (sw *Sweep) Misses(sets, ways int) (uint64, error) {
	for _, s := range sw.sims {
		if s.sets == sets {
			return s.Misses(ways), nil
		}
	}
	return 0, fmt.Errorf("allassoc: set count %d not simulated", sets)
}

// Configs enumerates every (sets, ways, entries, misses) tuple covered.
type Config struct {
	Sets    int
	Ways    int
	Entries int
	Misses  uint64
}

// Results lists all simulated configurations.
func (sw *Sweep) Results() []Config {
	var out []Config
	for _, s := range sw.sims {
		for w := 1; w <= s.maxWays; w++ {
			out = append(out, Config{
				Sets:    s.sets,
				Ways:    w,
				Entries: s.sets * w,
				Misses:  s.Misses(w),
			})
		}
	}
	return out
}
