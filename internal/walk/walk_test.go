package walk

import (
	"reflect"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/pagetable"
)

func twoClasses(t *testing.T) addr.SizeClasses {
	t.Helper()
	return addr.MustShiftClasses(12, 22)
}

// flatCfg disables the PWCs and the memory-side cache and charges
// every walk load the handler's dependent-load cost, so the per-walk
// total collapses to the flat handler model.
func flatCfg(classes addr.SizeClasses, multi bool) Config {
	return Config{
		Classes:    classes,
		PWCEntries: 0,
		MemBytes:   0,
		HitCycles:  uint64(pagetable.LoadCycles),
		MissCycles: uint64(pagetable.LoadCycles),
		BaseCycles: HandlerBaseCycles(multi),
	}
}

func TestHandlerBaseCycles(t *testing.T) {
	// base + 2 loads must equal the handler totals the flat model uses.
	if got := HandlerBaseCycles(false) + 2*uint64(pagetable.LoadCycles); got != uint64(pagetable.SingleSizeHandlerCycles()) {
		t.Fatalf("single base+2 loads = %d, want %v", got, pagetable.SingleSizeHandlerCycles())
	}
	if got := HandlerBaseCycles(true) + 2*uint64(pagetable.LoadCycles); got != uint64(pagetable.TwoSizeHandlerCycles()) {
		t.Fatalf("two-size base+2 loads = %d, want %v", got, pagetable.TwoSizeHandlerCycles())
	}
}

func TestFlatEquivalencePerWalk(t *testing.T) {
	classes := twoClasses(t)
	cases := []struct {
		name   string
		multi  bool
		levels int
		want   uint64
	}{
		{"single/leaf", false, 2, 20}, // SingleSizeHandlerCycles
		{"two/leaf", true, 2, 25},     // TwoSizeHandlerCycles
		{"two/large", true, 1, 21},    // large page: one level fewer
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := MustNew(flatCfg(classes, tc.multi))
			got := w.Walk(addr.VA(0x1234_5000), tc.levels)
			if got != tc.want {
				t.Fatalf("Walk levels=%d = %d cycles, want %d", tc.levels, got, tc.want)
			}
			if s := w.Stats(); s.Walks != 1 || s.Cycles != tc.want {
				t.Fatalf("stats = %+v, want Walks=1 Cycles=%d", s, tc.want)
			}
		})
	}
}

func TestWalkLevelClamp(t *testing.T) {
	classes := twoClasses(t)
	w := MustNew(flatCfg(classes, true))
	// levels < 1 clamps to 1 (root probe only), > N clamps to N.
	if got := w.Walk(0, 0); got != 21 {
		t.Fatalf("levels=0 walk = %d, want 21", got)
	}
	if got := w.Walk(0, 99); got != 25 {
		t.Fatalf("levels=99 walk = %d, want 25", got)
	}
}

func TestPWCSkipsUpperLevels(t *testing.T) {
	classes := twoClasses(t)
	cfg := flatCfg(classes, true)
	cfg.PWCEntries = 4
	w := MustNew(cfg)

	va := addr.VA(0x4000_0000)
	// Cold walk: PWC miss at class 1, both levels loaded, class-1
	// descriptor inserted.
	if got := w.Walk(va, 2); got != 25 {
		t.Fatalf("cold walk = %d, want 25", got)
	}
	s := w.Stats()
	if s.PWCMissesByClass[1] != 1 || s.PWCHitsByClass[1] != 0 {
		t.Fatalf("cold stats = %+v, want one class-1 PWC miss", s)
	}
	if s.LoadsByClass[1] != 1 || s.LoadsByClass[0] != 1 {
		t.Fatalf("cold loads = %+v, want one load per class", s.LoadsByClass)
	}

	// Warm walk through the same class-1 region: PWC hit skips the
	// root load — only the leaf PTE is fetched.
	if got := w.Walk(va+addr.VA(1<<12), 2); got != 21 {
		t.Fatalf("warm walk = %d, want 21 (root load skipped)", got)
	}
	s = w.Stats()
	if s.PWCHitsByClass[1] != 1 {
		t.Fatalf("warm stats = %+v, want one class-1 PWC hit", s)
	}
	if s.LoadsByClass[1] != 1 {
		t.Fatalf("PWC hit still loaded class 1: %+v", s.LoadsByClass)
	}

	// A walk that resolves at class 1 (large page) probes no PWC —
	// there is no interior level above the resolved one to cache.
	before := w.Stats()
	w.Walk(va, 1)
	after := w.Stats()
	if after.PWCHits() != before.PWCHits() || after.PWCMisses() != before.PWCMisses() {
		t.Fatalf("levels=1 walk probed the PWC: before=%+v after=%+v", before, after)
	}
}

func TestPWCEvictionDeterministic(t *testing.T) {
	classes := twoClasses(t)
	cfg := flatCfg(classes, true)
	cfg.PWCEntries = 2

	run := func() Stats {
		w := MustNew(cfg)
		// Touch three distinct class-1 regions (insert order 0,1,2 with
		// cap 2 evicts region 0), then revisit region 0 (miss) and
		// region 2 (hit).
		for _, r := range []uint64{0, 1, 2, 0, 2} {
			w.Walk(addr.VA(r<<22), 2)
		}
		return w.Stats()
	}

	s := run()
	if s.PWCHitsByClass[1] != 1 {
		t.Fatalf("stats = %+v, want exactly one class-1 PWC hit (region 2 retained)", s)
	}
	if s.PWCMissesByClass[1] != 4 {
		t.Fatalf("stats = %+v, want four class-1 PWC misses", s)
	}
	for i := 0; i < 10; i++ {
		if got := run(); !reflect.DeepEqual(got, s) {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, s)
		}
	}
}

func TestPWCFlush(t *testing.T) {
	classes := twoClasses(t)
	cfg := flatCfg(classes, true)
	cfg.PWCEntries = 4
	w := MustNew(cfg)

	va := addr.VA(0x4000_0000)
	w.Walk(va, 2)
	w.FlushPWC()
	w.Walk(va, 2) // would hit without the flush
	s := w.Stats()
	if s.PWCHits() != 0 {
		t.Fatalf("PWC hit survived a flush: %+v", s)
	}
	if s.PWCFlushes != 1 {
		t.Fatalf("PWCFlushes = %d, want 1", s.PWCFlushes)
	}

	// Flushing with PWCs disabled is a silent no-op.
	off := MustNew(flatCfg(classes, true))
	off.FlushPWC()
	if off.Stats().PWCFlushes != 0 {
		t.Fatal("disabled-PWC flush was counted")
	}
}

func TestMemorySideCache(t *testing.T) {
	classes := twoClasses(t)
	cfg := Default(classes)
	cfg.PWCEntries = 0 // isolate the memory-side model
	cfg.BaseCycles = HandlerBaseCycles(true)
	w := MustNew(cfg)

	va := addr.VA(0x4000_0000)
	first := w.Walk(va, 2)
	// Same VA again: both descriptor lines are now resident.
	second := w.Walk(va, 2)
	wantFirst := cfg.BaseCycles + 2*cfg.MissCycles
	wantSecond := cfg.BaseCycles + 2*cfg.HitCycles
	if first != wantFirst || second != wantSecond {
		t.Fatalf("walks = %d, %d; want %d, %d", first, second, wantFirst, wantSecond)
	}
	s := w.Stats()
	if s.MemHits != 2 || s.MemMisses != 2 {
		t.Fatalf("mem stats = %+v, want 2 hits / 2 misses", s)
	}

	// Adjacent 4K pages share a 32-byte PTE line (4 PTEs per line): the
	// leaf load of va+4K hits the line va's walk brought in.
	third := w.Walk(va+addr.VA(1<<12), 2)
	if third != cfg.BaseCycles+2*cfg.HitCycles {
		t.Fatalf("adjacent-page walk = %d, want all-hit %d", third, cfg.BaseCycles+2*cfg.HitCycles)
	}
}

func TestStatsMergeSub(t *testing.T) {
	classes := twoClasses(t)
	cfg := Default(classes)
	cfg.BaseCycles = HandlerBaseCycles(true)

	// One walker over the whole sequence vs two walkers over halves:
	// state-dependent counters differ, but Merge must be exact
	// summation, and Sub must invert Merge.
	a := MustNew(cfg)
	b := MustNew(cfg)
	for i := 0; i < 50; i++ {
		a.Walk(addr.VA(uint64(i)*0x5000), 2)
		b.Walk(addr.VA(uint64(i)*0x9000), 2)
	}
	sa, sb := a.Stats(), b.Stats()

	merged := sa
	merged.Merge(sb)
	if merged.Walks != sa.Walks+sb.Walks || merged.Cycles != sa.Cycles+sb.Cycles {
		t.Fatalf("merge totals wrong: %+v", merged)
	}
	if merged.Loads() != sa.Loads()+sb.Loads() {
		t.Fatalf("merge loads wrong: %d vs %d+%d", merged.Loads(), sa.Loads(), sb.Loads())
	}

	back := merged
	back.Sub(sb)
	if !reflect.DeepEqual(back, sa) {
		t.Fatalf("Sub did not invert Merge: %+v vs %+v", back, sa)
	}

	var zero Stats
	zeroed := sa
	zeroed.Sub(sa)
	if !reflect.DeepEqual(zeroed, zero) {
		t.Fatalf("x.Sub(x) != zero: %+v", zeroed)
	}
}

// TestStatsMergeCoversAllFields guards Merge/Sub against silently
// dropping a future field: merging a fully-saturated Stats into a zero
// one must leave no field at its zero value.
func TestStatsMergeCoversAllFields(t *testing.T) {
	var full Stats
	v := reflect.ValueOf(&full).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(7)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(7)
			}
		default:
			t.Fatalf("unhandled Stats field kind %v; extend this test and Merge/Sub", f.Kind())
		}
	}
	var m Stats
	m.Merge(full)
	if !reflect.DeepEqual(m, full) {
		t.Fatalf("Merge dropped a field: %+v vs %+v", m, full)
	}
	m.Sub(full)
	if !reflect.DeepEqual(m, Stats{}) {
		t.Fatalf("Sub dropped a field: %+v", m)
	}
}

func TestRatioHelpers(t *testing.T) {
	var s Stats
	if s.CyclesPerWalk() != 0 || s.PWCHitRatio() != 0 || s.MemHitRatio() != 0 {
		t.Fatal("zero stats must yield zero ratios, not NaN")
	}
	s.Walks, s.Cycles = 4, 100
	if got := s.CyclesPerWalk(); got != 25 {
		t.Fatalf("CyclesPerWalk = %v, want 25", got)
	}
	s.PWCHitsByClass[1], s.PWCMissesByClass[1] = 3, 1
	if got := s.PWCHitRatio(); got != 0.75 {
		t.Fatalf("PWCHitRatio = %v, want 0.75", got)
	}
	s.MemHits, s.MemMisses = 1, 3
	if got := s.MemHitRatio(); got != 0.25 {
		t.Fatalf("MemHitRatio = %v, want 0.25", got)
	}
}

func TestConfigKey(t *testing.T) {
	classes := twoClasses(t)
	base := Default(classes)
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Every field must move the key.
	variants := []func(*Config){
		func(c *Config) { c.Classes = addr.MustShiftClasses(12, 19) },
		func(c *Config) { c.PWCEntries = 16 },
		func(c *Config) { c.MemBytes = 4096 },
		func(c *Config) { c.MemWays = 2 },
		func(c *Config) { c.HitCycles = 2 },
		func(c *Config) { c.MissCycles = 40 },
		func(c *Config) { c.BaseCycles = 12 },
	}
	for i, mut := range variants {
		c := base
		mut(&c)
		k2, err := c.Key()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if k2 == k1 {
			t.Fatalf("variant %d did not change the key %q", i, k1)
		}
	}

	// Normalization: MemWays defaults only when the cache is enabled,
	// so the explicit-default spelling shares a key.
	c := base
	c.MemWays = 0
	k3, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k1 {
		t.Fatalf("MemWays default not normalized: %q vs %q", k3, k1)
	}

	// Invalid configs error out of Key as they do out of New.
	bad := base
	bad.MissCycles = 0
	if _, err := bad.Key(); err == nil {
		t.Fatal("zero MissCycles key must error")
	}
	if _, err := (Config{}).Key(); err == nil {
		t.Fatal("zero-value config key must error")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	classes := twoClasses(t)
	bad := []Config{
		{},
		{Classes: classes}, // MissCycles 0
		{Classes: classes, MissCycles: 24, PWCEntries: -1},           // negative PWC
		{Classes: classes, MissCycles: 24, MemBytes: -1},             // negative mem
		{Classes: classes, MissCycles: 24, MemBytes: 48},             // non-pow2 mem size
		{Classes: classes, MissCycles: 24, MemBytes: 64, MemWays: 3}, // non-pow2 ways
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Default(classes)); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestWalkZeroAllocs(t *testing.T) {
	classes := twoClasses(t)
	w := MustNew(Default(classes))
	var i uint64
	allocs := testing.AllocsPerRun(2000, func() {
		w.Walk(addr.VA(i*0x3000), 2)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Walk allocates %v per call, want 0", allocs)
	}
	wf := MustNew(Default(classes))
	wf.Walk(0, 2)
	allocs = testing.AllocsPerRun(200, wf.FlushPWC)
	if allocs != 0 {
		t.Fatalf("FlushPWC allocates %v per call, want 0", allocs)
	}
}
