package walk

import "twopage/internal/htab"

// pwcache is one level's page-walk cache: a small fully-associative
// LRU over class-k page numbers, htab-backed so lookups in the hot
// walk path stay allocation-free. Replacement is LRU on an insertion
// tick, with the smaller page number breaking tie — a total order, so
// eviction is deterministic regardless of scan order. The resident key
// set is mirrored in a preallocated slice so the eviction scan and the
// flush never iterate the table through a closure or grow a buffer —
// insert sits on the hot walk path.
type pwcache struct {
	cap  int
	tick uint64
	m    *htab.U64 // page number -> last-touch tick
	keys []uint64  // the resident page numbers, in insertion slots
}

func newPWCache(capacity int) pwcache {
	return pwcache{
		cap: capacity,
		// Size the table past capacity so steady-state Put never grows.
		m:    htab.NewU64(capacity * 2),
		keys: make([]uint64, 0, capacity),
	}
}

// lookup probes for pn; a hit refreshes its LRU position.
func (c *pwcache) lookup(pn uint64) bool {
	if _, ok := c.m.Get(pn); !ok {
		return false
	}
	c.tick++
	c.m.Put(pn, c.tick)
	return true
}

// insert records pn as most recently used, evicting the LRU entry
// (ties broken toward the smaller page number) when full.
func (c *pwcache) insert(pn uint64) {
	c.tick++
	if _, ok := c.m.Get(pn); ok {
		c.m.Put(pn, c.tick)
		return
	}
	if n := len(c.keys); n < c.cap {
		c.keys = c.keys[:n+1]
		c.keys[n] = pn
	} else {
		slot := 0
		victim, oldest := c.keys[0], uint64(0)
		first := true
		for i, k := range c.keys {
			v, _ := c.m.Get(k)
			if first || v < oldest || (v == oldest && k < victim) {
				slot, victim, oldest, first = i, k, v, false
			}
		}
		c.m.Delete(victim)
		c.keys[slot] = pn
	}
	c.m.Put(pn, c.tick)
}

// flush empties the cache without releasing its storage.
func (c *pwcache) flush() {
	for _, k := range c.keys {
		c.m.Delete(k)
	}
	c.keys = c.keys[:0]
}

// len reports the resident entry count (tests only).
func (c *pwcache) len() int { return c.m.Len() }
