// Package walk models the multi-level radix page walk a TLB miss
// triggers, replacing the paper's flat 20/25-cycle miss penalty with an
// emergent cost: how many radix levels the walk descends, which levels
// the MMU's page-walk caches (PWCs) short-circuit, and where the
// per-level loads land in a memory-side cache. The radix layout derives
// from addr.SizeClasses — a larger page terminates the walk early
// (fewer dependent loads), which is the modern mechanism behind the
// related pagewalk literature's results (VESPA, "TLB and Pagewalk
// Performance in Multicore Architectures").
//
// The model is deliberately deterministic and shard-mergeable: every
// counter (cycles included) is an integer flow counter, PWC replacement
// is LRU with a deterministic tie-break, and the memory-side cache is
// the repository's existing set-associative LRU model. A walker's
// per-walk charge is
//
//	BaseCycles + Σ per-level load charge
//
// where each load pays HitCycles or MissCycles depending on the
// memory-side cache, and PWC hits skip the loads above the cached
// level. Configured with the PWCs and memory cache disabled and
// MissCycles = pagetable.LoadCycles, the charge collapses exactly to
// the handler cost model (20 cycles single-size, 25 two-size) — the
// differential tests pin that identity.
package walk

import (
	"fmt"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/cache"
	"twopage/internal/pagetable"
)

// Model defaults. The cycle charges keep the early-90s flavor of the
// pagetable cost model: a walk load that hits the memory-side cache
// costs one dependent load (pagetable.LoadCycles); one that misses goes
// to memory at six times that.
const (
	// DefaultPWCEntries is the per-interior-level page-walk-cache
	// capacity (x86 paging-structure caches are this small).
	DefaultPWCEntries = 8
	// DefaultMemBytes is the memory-side cache capacity reachable by
	// walk loads: 2KB of 32-byte lines (4 PTEs per line).
	DefaultMemBytes = 2048
	// DefaultMemWays is the memory-side cache associativity.
	DefaultMemWays = 4
	// DefaultHitCycles charges a walk load that hits the memory-side
	// cache — the handler model's dependent-load cost.
	DefaultHitCycles = uint64(pagetable.LoadCycles)
	// DefaultMissCycles charges a walk load that goes to memory.
	DefaultMissCycles = 6 * uint64(pagetable.LoadCycles)
)

// ptesPerLine is how many 8-byte descriptors share one memory-side
// cache line; lineAddr spaces synthesized addresses by it.
const pteBytes = 8

// HandlerBaseCycles returns the fixed per-walk charge outside the
// per-level loads: trap entry/exit plus the TLB insert, and for a
// multi-size handler the size probe. With flat per-level load charges
// this reconstructs pagetable.SingleSizeHandlerCycles (20) and
// TwoSizeHandlerCycles (25) exactly.
func HandlerBaseCycles(multi bool) uint64 {
	base := uint64(pagetable.TrapCycles + pagetable.InsertCycles)
	if multi {
		base += uint64(pagetable.SizeProbeCycles)
	}
	return base
}

// Config describes a walk model. The zero value is invalid; start from
// Default and override, or fill every field.
type Config struct {
	// Classes is the radix hierarchy the walk descends: class N-1 is
	// the root table, class 0 the leaf PTEs. A walk resolving at class
	// k performs N-k dependent loads, so larger pages terminate early.
	Classes addr.SizeClasses
	// PWCEntries is the page-walk-cache capacity per interior level;
	// 0 disables the PWCs (every walk starts at the root).
	PWCEntries int
	// MemBytes is the memory-side cache capacity in bytes; 0 disables
	// the cache, making every walk load pay MissCycles.
	MemBytes int
	// MemWays is the memory-side cache associativity (0 = DefaultMemWays
	// when the cache is enabled).
	MemWays int
	// HitCycles and MissCycles charge one walk load that hits or
	// misses the memory-side cache. MissCycles must be nonzero.
	HitCycles  uint64
	MissCycles uint64
	// BaseCycles is the fixed per-walk charge (trap, size probe,
	// insert). 0 lets core.WithWalkModel derive it from the policy
	// kind via HandlerBaseCycles.
	BaseCycles uint64
}

// Default returns the standard walk model over classes: PWCs on,
// memory-side cache on, handler-derived charges, BaseCycles left for
// the policy kind to resolve.
func Default(classes addr.SizeClasses) Config {
	return Config{
		Classes:    classes,
		PWCEntries: DefaultPWCEntries,
		MemBytes:   DefaultMemBytes,
		MemWays:    DefaultMemWays,
		HitCycles:  DefaultHitCycles,
		MissCycles: DefaultMissCycles,
	}
}

// normalized validates and fills defaults without mutating c.
func (c Config) normalized() (Config, error) {
	if c.Classes.N() < 2 {
		return Config{}, fmt.Errorf("walk: need at least two size classes, got %d", c.Classes.N())
	}
	if c.PWCEntries < 0 {
		return Config{}, fmt.Errorf("walk: negative PWC capacity %d", c.PWCEntries)
	}
	if c.MemBytes < 0 {
		return Config{}, fmt.Errorf("walk: negative memory-cache capacity %d", c.MemBytes)
	}
	if c.MemBytes > 0 && c.MemWays == 0 {
		c.MemWays = DefaultMemWays
	}
	if c.MemBytes == 0 {
		c.MemWays = 0
	}
	if c.MissCycles == 0 {
		return Config{}, fmt.Errorf("walk: MissCycles must be nonzero (walk loads cannot be free)")
	}
	return c, nil
}

// Key returns the memoization-key fragment for the configuration,
// normalized first so equivalent spellings share engine units. Every
// field is spelled out: two configs with the same key charge the same
// cycles.
func (c Config) Key() (string, error) {
	cfg, err := c.normalized()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("sc")
	for i, s := range cfg.Classes.Shifts() {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	fmt.Fprintf(&b, ".pwc%d.mem%db.w%d.h%d.m%d.base%d",
		cfg.PWCEntries, cfg.MemBytes, cfg.MemWays, cfg.HitCycles, cfg.MissCycles, cfg.BaseCycles)
	return b.String(), nil
}

// Stats counts walk activity. Every field is an integer flow counter —
// cycles included — so per-shard stats merge exactly by summation and
// warm-up baselines subtract exactly.
type Stats struct {
	// Walks counts modeled walks (one per first-TLB miss).
	Walks uint64
	// LoadsByClass[k] counts descriptor loads from class-k table nodes
	// actually performed (after PWC skips).
	LoadsByClass [addr.MaxSizeClasses]uint64
	// PWCHitsByClass and PWCMissesByClass count page-walk-cache probes
	// per interior class (classes 1..N-1; class 0 is never cached).
	PWCHitsByClass   [addr.MaxSizeClasses]uint64
	PWCMissesByClass [addr.MaxSizeClasses]uint64
	// PWCFlushes counts whole-PWC invalidations (the shootdown a
	// promotion or demotion forces).
	PWCFlushes uint64
	// MemHits and MemMisses split the performed loads by where they
	// landed in the memory-side cache (with the cache disabled every
	// load is a MemMiss).
	MemHits   uint64
	MemMisses uint64
	// Cycles is the total charge across all walks, in integer cycles.
	Cycles uint64
}

// Merge folds another shard's counters into s; all fields are flow
// counters, so the sum is exact.
func (s *Stats) Merge(o Stats) {
	s.Walks += o.Walks
	for k := range s.LoadsByClass {
		s.LoadsByClass[k] += o.LoadsByClass[k]
	}
	for k := range s.PWCHitsByClass {
		s.PWCHitsByClass[k] += o.PWCHitsByClass[k]
	}
	for k := range s.PWCMissesByClass {
		s.PWCMissesByClass[k] += o.PWCMissesByClass[k]
	}
	s.PWCFlushes += o.PWCFlushes
	s.MemHits += o.MemHits
	s.MemMisses += o.MemMisses
	s.Cycles += o.Cycles
}

// Sub removes a previously recorded baseline from s (warm-up
// roll-back); integer subtraction, exact.
func (s *Stats) Sub(o Stats) {
	s.Walks -= o.Walks
	for k := range s.LoadsByClass {
		s.LoadsByClass[k] -= o.LoadsByClass[k]
	}
	for k := range s.PWCHitsByClass {
		s.PWCHitsByClass[k] -= o.PWCHitsByClass[k]
	}
	for k := range s.PWCMissesByClass {
		s.PWCMissesByClass[k] -= o.PWCMissesByClass[k]
	}
	s.PWCFlushes -= o.PWCFlushes
	s.MemHits -= o.MemHits
	s.MemMisses -= o.MemMisses
	s.Cycles -= o.Cycles
}

// Loads returns total performed walk loads across classes.
func (s Stats) Loads() uint64 {
	var n uint64
	for _, v := range s.LoadsByClass {
		n += v
	}
	return n
}

// PWCHits returns total page-walk-cache hits across levels.
func (s Stats) PWCHits() uint64 {
	var n uint64
	for _, v := range s.PWCHitsByClass {
		n += v
	}
	return n
}

// PWCMisses returns total page-walk-cache misses across levels.
func (s Stats) PWCMisses() uint64 {
	var n uint64
	for _, v := range s.PWCMissesByClass {
		n += v
	}
	return n
}

// PWCHitRatio returns PWC hits over probes (0 if never probed).
func (s Stats) PWCHitRatio() float64 {
	probes := s.PWCHits() + s.PWCMisses()
	if probes == 0 {
		return 0
	}
	return float64(s.PWCHits()) / float64(probes)
}

// MemHitRatio returns memory-side cache hits over performed loads
// (0 if no loads).
func (s Stats) MemHitRatio() float64 {
	loads := s.MemHits + s.MemMisses
	if loads == 0 {
		return 0
	}
	return float64(s.MemHits) / float64(loads)
}

// CyclesPerWalk returns the emergent average miss penalty: total walk
// cycles over walks (0 if no walks happened).
func (s Stats) CyclesPerWalk() float64 {
	if s.Walks == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Walks)
}

// Walker charges modeled walks. Build with New/MustNew; state is plain
// shard-local data (PWC tables, a cache model, counters), so per-shard
// walkers merge by summing their Stats.
type Walker struct {
	classes addr.SizeClasses
	base    uint64
	hit     uint64
	miss    uint64
	pwcCap  int
	pwc     [addr.MaxSizeClasses]pwcache // interior classes 1..N-1
	mem     *cache.Cache                 // nil when MemBytes == 0
	stats   Stats
}

// New builds a walker from cfg. A zero cfg.BaseCycles is accepted and
// defaults to the multi-size handler base (core.WithWalkModel resolves
// the policy-appropriate base before construction).
func New(cfg Config) (*Walker, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.BaseCycles == 0 {
		cfg.BaseCycles = HandlerBaseCycles(true)
	}
	w := &Walker{
		classes: cfg.Classes,
		base:    cfg.BaseCycles,
		hit:     cfg.HitCycles,
		miss:    cfg.MissCycles,
		pwcCap:  cfg.PWCEntries,
	}
	if cfg.PWCEntries > 0 {
		for k := 1; k < cfg.Classes.N(); k++ {
			w.pwc[k] = newPWCache(cfg.PWCEntries)
		}
	}
	if cfg.MemBytes > 0 {
		mem, err := cache.New(cache.Config{Size: cfg.MemBytes, Ways: cfg.MemWays})
		if err != nil {
			return nil, fmt.Errorf("walk: memory-side cache: %w", err)
		}
		w.mem = mem
	}
	return w, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Walker {
	w, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// lineAddr synthesizes the memory address of the class-k descriptor
// for va, so the memory-side cache sees the real locality structure:
// adjacent class-k page numbers share a cache line (8-byte PTEs), and
// a level tag in the high bits keeps the per-class descriptor arrays
// from aliasing each other.
func (w *Walker) lineAddr(va addr.VA, k int) addr.VA {
	return addr.VA(uint64(w.classes.Page(va, k))*pteBytes | uint64(k)<<58)
}

// Walk charges one modeled page walk for va. levels is how many radix
// levels the table walk descends (pagetable.Walk.Levels): the walk
// visits classes N-1 down to N-levels, so a large-page mapping (or a
// completely unmapped root region) costs fewer loads. It returns the
// cycles charged, which are also accumulated into Stats.
//
// The PWCs are probed deepest-first over the walk's interior classes;
// a hit resumes the walk just below the cached level, skipping every
// load above it. Interior descriptors actually loaded are inserted,
// so the next walk through the same region starts lower.
//
//paperlint:hot
func (w *Walker) Walk(va addr.VA, levels int) uint64 {
	n := w.classes.N()
	if levels < 1 {
		levels = 1
	}
	if levels > n {
		levels = n
	}
	low := n - levels // deepest class this walk reaches
	w.stats.Walks++
	cycles := w.base
	start := n - 1
	if w.pwcCap > 0 {
		for k := low + 1; k <= n-1; k++ {
			if w.pwc[k].lookup(uint64(w.classes.Page(va, k))) {
				w.stats.PWCHitsByClass[k]++
				start = k - 1
				break
			}
			w.stats.PWCMissesByClass[k]++
		}
	}
	for k := start; k >= low; k-- {
		w.stats.LoadsByClass[k]++
		if w.mem != nil && w.mem.Access(w.lineAddr(va, k)) {
			w.stats.MemHits++
			cycles += w.hit
		} else {
			w.stats.MemMisses++
			cycles += w.miss
		}
		if k > low && w.pwcCap > 0 {
			// An interior descriptor was loaded; cache it.
			w.pwc[k].insert(uint64(w.classes.Page(va, k)))
		}
	}
	w.stats.Cycles += cycles
	return cycles
}

// FlushPWC empties every page-walk cache — the shootdown a promotion
// or demotion forces, since the remapped region's interior descriptors
// change shape. The memory-side cache is untouched (it is coherent
// with the table by construction). No-op when PWCs are disabled.
func (w *Walker) FlushPWC() {
	if w.pwcCap == 0 {
		return
	}
	w.stats.PWCFlushes++
	for k := 1; k < w.classes.N(); k++ {
		w.pwc[k].flush()
	}
}

// Stats returns a snapshot of the counters.
func (w *Walker) Stats() Stats { return w.stats }

// Classes returns the radix hierarchy the walker descends.
func (w *Walker) Classes() addr.SizeClasses { return w.classes }
