package disk

import (
	"math"
	"testing"

	"twopage/internal/addr"
)

func TestDefaultModel(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4KB at 2MB/s = 2ms transfer + 21.6ms positioning.
	ms := m.AccessMs(uint64(addr.Size4K))
	if math.Abs(ms-23.648) > 0.01 {
		t.Fatalf("4KB access = %vms", ms)
	}
	// Cycles at 40MHz.
	cyc := m.AccessCycles(uint64(addr.Size4K))
	if math.Abs(cyc-ms*40_000) > 1 {
		t.Fatalf("cycles = %v", cyc)
	}
	if m.PageInCycles(addr.Size4K) != cyc {
		t.Fatal("PageInCycles should equal AccessCycles of the size")
	}
}

func TestValidation(t *testing.T) {
	bad := []Model{
		{SeekMs: -1, RotateMs: 1, MBPerSec: 1, CPUMHz: 1},
		{SeekMs: 1, RotateMs: 1, MBPerSec: 0, CPUMHz: 1},
		{SeekMs: 1, RotateMs: 1, MBPerSec: 1, CPUMHz: 0},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("model %+v should be invalid", m)
		}
	}
}

// The paper's amortization claim: positioning dominates small transfers,
// so one 32KB page-in is far cheaper than eight 4KB page-ins.
func TestAmortization(t *testing.T) {
	m := Default()
	f := m.AmortizationFactor()
	if f < 4 || f > 8 {
		t.Fatalf("amortization factor = %v, expected ~5 for 1992 parameters", f)
	}
	// A hypothetical zero-latency device has no amortization benefit.
	flat := Model{SeekMs: 0, RotateMs: 0, MBPerSec: 2, CPUMHz: 40}
	if got := flat.AmortizationFactor(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("zero-latency factor = %v, want 1", got)
	}
}

func TestStatsAccount(t *testing.T) {
	m := Default()
	var s Stats
	c1 := s.Account(m, addr.Size4K)
	c2 := s.Account(m, addr.Size32K)
	if s.PageIns != 2 {
		t.Fatalf("page-ins = %d", s.PageIns)
	}
	if s.BytesIn != uint64(addr.Size4K)+uint64(addr.Size32K) {
		t.Fatalf("bytes = %d", s.BytesIn)
	}
	if math.Abs(s.IOCycles-(c1+c2)) > 1e-9 {
		t.Fatalf("cycles = %v", s.IOCycles)
	}
	if c2 <= c1 {
		t.Fatal("larger transfer must cost more in absolute terms")
	}
	if c2 >= 8*c1 {
		t.Fatal("but much less than proportionally (amortization)")
	}
}
