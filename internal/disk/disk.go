// Package disk models paging I/O for an early-1990s disk, quantifying
// the paper's Section 1 claim that with larger pages "disk paging is
// more efficient (since the delay of disk head movement is amortized
// over more data transferred)". A page-in pays seek + rotational
// latency once, then transfers the whole page at the media rate, so a
// 32KB page costs far less than eight 4KB page-ins.
package disk

import (
	"fmt"

	"twopage/internal/addr"
)

// Model is a simple positional disk/channel model.
type Model struct {
	// SeekMs is the average seek time in milliseconds.
	SeekMs float64
	// RotateMs is the average rotational latency (half a revolution).
	RotateMs float64
	// MBPerSec is the sustained media transfer rate.
	MBPerSec float64
	// CPUMHz converts I/O time to CPU cycles (the simulators account in
	// cycles).
	CPUMHz float64
}

// Default returns parameters typical of a 1992 workstation disk behind
// a 40MHz processor: ~16ms average seek, 5400rpm (5.6ms average
// rotational latency), 2MB/s media rate.
func Default() Model {
	return Model{SeekMs: 16, RotateMs: 5.6, MBPerSec: 2, CPUMHz: 40}
}

// Validate reports whether the model's parameters are usable.
func (m Model) Validate() error {
	if m.SeekMs < 0 || m.RotateMs < 0 || m.MBPerSec <= 0 || m.CPUMHz <= 0 {
		return fmt.Errorf("disk: invalid model %+v", m)
	}
	return nil
}

// AccessMs returns the milliseconds to read n contiguous bytes:
// positioning once, then streaming.
func (m Model) AccessMs(n uint64) float64 {
	transfer := float64(n) / (m.MBPerSec * 1e6) * 1e3
	return m.SeekMs + m.RotateMs + transfer
}

// AccessCycles converts AccessMs to CPU cycles.
func (m Model) AccessCycles(n uint64) float64 {
	return m.AccessMs(n) * m.CPUMHz * 1e3
}

// PageInCycles returns the cycles to demand-load one page.
func (m Model) PageInCycles(size addr.PageSize) float64 {
	return m.AccessCycles(uint64(size))
}

// AmortizationFactor returns how much cheaper one large-page transfer is
// than loading the same bytes as small pages:
// (8 × 4KB page-ins) / (1 × 32KB page-in).
func (m Model) AmortizationFactor() float64 {
	small := 8 * m.AccessMs(uint64(addr.Size4K))
	large := m.AccessMs(uint64(addr.Size32K))
	return small / large
}

// Stats accumulates paging I/O.
type Stats struct {
	PageIns  uint64
	BytesIn  uint64
	IOCycles float64
}

// Account records one page-in against the stats.
func (s *Stats) Account(m Model, size addr.PageSize) float64 {
	c := m.PageInCycles(size)
	s.PageIns++
	s.BytesIn += uint64(size)
	s.IOCycles += c
	return c
}
