// Package cache implements a small level-one CPU cache model. The
// paper's Section 1 argues that TLB size is constrained by the L1
// cache's tagging: with *physical* tags the TLB sits on the access path
// of every reference, so it must stay small and fast; with *virtual*
// tags the TLB is consulted only on L1 misses, so it can be large. This
// package provides the cache filter needed to quantify that argument
// (the cachetlb experiment): a virtually indexed, set-associative,
// LRU-replaced cache whose hit/miss stream gates TLB accesses.
package cache

import (
	"fmt"

	"twopage/internal/addr"
)

// Config describes a cache.
type Config struct {
	// Size is the capacity in bytes.
	Size int
	// Block is the line size in bytes (power of two). Default 32.
	Block int
	// Ways is the set associativity; 0 defaults to 1 (direct mapped).
	Ways int
}

func (c *Config) normalize() error {
	if c.Block == 0 {
		c.Block = 32
	}
	if c.Ways == 0 {
		c.Ways = 1
	}
	if c.Block <= 0 || c.Block&(c.Block-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two", c.Block)
	}
	if c.Size <= 0 || c.Size%(c.Block*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d-byte %d-way sets", c.Size, c.Block, c.Ways)
	}
	sets := c.Size / (c.Block * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

type line struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

// Stats counts cache activity.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// Hits returns total hits.
func (s Stats) Hits() uint64 { return s.Accesses - s.Misses }

// MissRatio returns misses/accesses (0 if untouched).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a virtually indexed set-associative cache with per-set LRU.
type Cache struct {
	cfg        Config
	blockShift uint
	setBits    uint
	sets       int
	lines      []line
	clock      uint64
	stats      Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sets := cfg.Size / (cfg.Block * cfg.Ways)
	blockShift, setBits := uint(0), uint(0)
	for v := cfg.Block; v > 1; v >>= 1 {
		blockShift++
	}
	for v := sets; v > 1; v >>= 1 {
		setBits++
	}
	return &Cache{
		cfg:        cfg,
		blockShift: blockShift,
		setBits:    setBits,
		sets:       sets,
		lines:      make([]line, sets*cfg.Ways),
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access looks the address up, filling on a miss. Returns true on hit.
func (c *Cache) Access(va addr.VA) bool {
	c.clock++
	c.stats.Accesses++
	blockNum := uint64(va) >> c.blockShift
	idx := int(blockNum & (uint64(c.sets) - 1))
	tag := blockNum >> c.setBits
	set := c.lines[idx*c.cfg.Ways : (idx+1)*c.cfg.Ways]
	victim := 0
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.clock
			return true
		}
		if !set[victim].valid {
			continue
		}
		if !l.valid || l.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	c.stats.Misses++
	set[victim] = line{tag: tag, valid: true, lastUse: c.clock}
	return false
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the set count.
func (c *Cache) Sets() int { return c.sets }

// Name describes the organization.
func (c *Cache) Name() string {
	return fmt.Sprintf("%dKB %d-way %dB-block cache",
		c.cfg.Size>>10, c.cfg.Ways, c.cfg.Block)
}
