package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
)

func TestValidation(t *testing.T) {
	bad := []Config{
		{Size: 0},
		{Size: 1000, Block: 32},          // not divisible
		{Size: 96, Block: 32, Ways: 1},   // 3 sets
		{Size: 1024, Block: 24, Ways: 1}, // block not power of two
		{Size: -64},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	c := MustNew(Config{Size: 8 << 10}) // defaults: 32B blocks, direct mapped
	if c.Sets() != 256 {
		t.Fatalf("sets = %d", c.Sets())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic")
		}
	}()
	MustNew(Config{Size: -1})
}

func TestBasicHitMiss(t *testing.T) {
	c := MustNew(Config{Size: 1024, Block: 32, Ways: 1}) // 32 sets
	if c.Access(0x40) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x40) || !c.Access(0x5F) {
		t.Fatal("same 32B block should hit")
	}
	if c.Access(0x60) {
		t.Fatal("next block should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 || st.Hits() != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MissRatio() != 0.5 {
		t.Fatalf("miss ratio = %v", st.MissRatio())
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := MustNew(Config{Size: 1024, Block: 32, Ways: 1}) // 32 sets
	// Addresses 0 and 1024 collide (same index, different tag).
	c.Access(0)
	c.Access(1024)
	if c.Access(0) {
		t.Fatal("direct-mapped conflict should have evicted address 0")
	}
	// Two-way tolerates the pair.
	c2 := MustNew(Config{Size: 1024, Block: 32, Ways: 2})
	c2.Access(0)
	c2.Access(1024)
	if !c2.Access(0) || !c2.Access(1024) {
		t.Fatal("two-way cache should hold both conflicting lines")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := MustNew(Config{Size: 64, Block: 32, Ways: 2}) // one set, 2 ways
	c.Access(0)
	c.Access(32)
	c.Access(0)  // refresh
	c.Access(64) // evicts 32 (LRU)
	if !c.Access(0) {
		t.Fatal("0 should survive (recently used)")
	}
	if c.Access(32) {
		t.Fatal("32 should have been evicted")
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(Config{Size: 1024, Block: 32, Ways: 2})
	c.Access(0x100)
	c.Flush()
	if c.Access(0x100) {
		t.Fatal("post-flush access should miss")
	}
	if c.Name() == "" {
		t.Fatal("name")
	}
}

// Property: a working set that fits entirely misses only once per block.
func TestCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{Size: 8 << 10, Block: 32, Ways: 4})
		blocks := rng.Intn(64) + 1 // << 256 lines
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < blocks; i++ {
				hit := c.Access(addr.VA(i * 32))
				if pass > 0 && !hit {
					return false
				}
			}
		}
		return c.Stats().Misses == uint64(blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: associativity never hurts on LRU (per fixed set count the
// inclusion property; here fixed capacity, which empirically holds for
// these mixes and guards gross bugs).
func TestMoreWaysFewerMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	addrs := make([]addr.VA, 30_000)
	for i := range addrs {
		if rng.Intn(2) == 0 {
			addrs[i] = addr.VA(rng.Intn(4 << 10))
		} else {
			addrs[i] = addr.VA(rng.Intn(64 << 10))
		}
	}
	misses := func(ways int) uint64 {
		c := MustNew(Config{Size: 8 << 10, Block: 32, Ways: ways})
		for _, va := range addrs {
			c.Access(va)
		}
		return c.Stats().Misses
	}
	m1, m4 := misses(1), misses(4)
	if m4 > m1+m1/10 {
		t.Fatalf("4-way (%d) much worse than direct (%d)", m4, m1)
	}
}
