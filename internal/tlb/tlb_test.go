package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

func smallPage(va addr.VA) policy.Page {
	return policy.Page{Number: addr.Page(va, addr.Shift4K), Shift: addr.Shift4K}
}

func largePage(va addr.VA) policy.Page {
	return policy.Page{Number: addr.Page(va, addr.Shift32K), Shift: addr.Shift32K}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Entries: 0},
		{Entries: -4},
		{Entries: 16, Ways: 3},  // 16 % 3 != 0
		{Entries: 24, Ways: 2},  // 12 sets: not a power of two
		{Entries: 16, Ways: -2}, // negative ways
		{Entries: 16, Ways: 2, SmallShift: 15, LargeShift: 12}, // inverted
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	good := Config{Entries: 16, Ways: 2}
	tl, err := New(good)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Sets() != 8 || tl.Entries() != 16 {
		t.Fatalf("sets=%d entries=%d", tl.Sets(), tl.Entries())
	}
	c := tl.Config()
	if len(c.Shifts) != 2 || c.Shifts[0] != addr.Shift4K || c.Shifts[1] != addr.Shift32K {
		t.Fatalf("default shifts not applied: %+v", c)
	}
	if c.SmallShift != 0 || c.LargeShift != 0 {
		t.Fatalf("deprecated shift fields should be cleared after normalize: %+v", c)
	}
	if cl := tl.Classes(); cl.N() != 2 || cl.Shift(0) != addr.Shift4K || cl.Shift(1) != addr.Shift32K {
		t.Fatalf("classes: %v", tl.Classes())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{Entries: -1})
}

func TestNames(t *testing.T) {
	if got := NewFullyAssoc(16).Name(); got != "16-entry fully associative" {
		t.Errorf("FA name = %q", got)
	}
	tl := MustNew(Config{Entries: 32, Ways: 2, Index: IndexExact})
	if got := tl.Name(); got != "32-entry 2-way (exact index)" {
		t.Errorf("SA name = %q", got)
	}
	if IndexSmall.String() != "small index" || IndexLarge.String() != "large index" {
		t.Error("index scheme names wrong")
	}
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "random" {
		t.Error("replacement names wrong")
	}
}

func TestFullyAssocLRU(t *testing.T) {
	tl := NewFullyAssoc(2)
	a, b, c := addr.VA(0x1000), addr.VA(0x2000), addr.VA(0x3000)
	if tl.Access(a, smallPage(a)) {
		t.Fatal("first access must miss")
	}
	if tl.Access(b, smallPage(b)) {
		t.Fatal("first access must miss")
	}
	if !tl.Access(a, smallPage(a)) {
		t.Fatal("a should hit")
	}
	// c evicts LRU = b.
	if tl.Access(c, smallPage(c)) {
		t.Fatal("c must miss")
	}
	if tl.Access(b, smallPage(b)) {
		t.Fatal("b should have been evicted")
	}
	st := tl.Stats()
	if st.Accesses != 5 || st.Hits() != 1 || st.Misses() != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

// A fully associative two-page TLB distinguishes page sizes in the tag:
// small page number N and large page number N are different entries.
func TestTagIncludesPageSize(t *testing.T) {
	tl := NewFullyAssoc(4)
	p4 := policy.Page{Number: 5, Shift: addr.Shift4K}
	p32 := policy.Page{Number: 5, Shift: addr.Shift32K}
	tl.Access(addr.VA(5<<addr.Shift4K), p4)
	if tl.Access(addr.VA(5<<addr.Shift32K), p32) {
		t.Fatal("same page number at different size must not hit")
	}
	if !tl.Contains(p4) || !tl.Contains(p32) {
		t.Fatal("both entries should coexist")
	}
}

// Paper Figure 2.1 / Section 2.2: indexing by the small page number maps
// one large page into multiple sets depending on offset bits.
func TestIndexSmallReplicatesLargePages(t *testing.T) {
	tl := MustNew(Config{Entries: 4, Ways: 2, Index: IndexSmall}) // 2 sets, bit<12>
	lp := largePage(0)
	// Access offset 0 (bit12=0 → set 0) then offset 4KB (bit12=1 → set 1).
	if tl.Access(addr.VA(0x0000), lp) {
		t.Fatal("miss expected")
	}
	if tl.Access(addr.VA(0x1000), lp) {
		t.Fatal("second copy in other set: miss expected — this is the defect")
	}
	// Both copies now resident.
	if !tl.Access(addr.VA(0x0000), lp) || !tl.Access(addr.VA(0x1000), lp) {
		t.Fatal("both copies should hit now")
	}
	if n := tl.Invalidate(lp); n != 2 {
		t.Fatalf("Invalidate removed %d copies, want 2", n)
	}
}

// Paper Section 2.2: indexing by the large page number makes eight
// consecutive small pages compete for the same set.
func TestIndexLargeCollidesSmallPages(t *testing.T) {
	tl := MustNew(Config{Entries: 4, Ways: 2, Index: IndexLarge}) // 2 sets, bit<15>
	// Small pages 0..7 share large-page number 0 → all map to set 0.
	// Round-robin over 3 of them with 2 ways: every access misses (LRU).
	misses := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			va := addr.VA(i << addr.Shift4K)
			if !tl.Access(va, smallPage(va)) {
				misses++
			}
		}
	}
	if misses != 30 {
		t.Fatalf("expected LRU thrash (30 misses), got %d", misses)
	}
	// Under exact/small indexing the same workload fits easily.
	tl2 := MustNew(Config{Entries: 4, Ways: 2, Index: IndexExact})
	misses = 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			va := addr.VA(i << addr.Shift4K)
			if !tl2.Access(va, smallPage(va)) {
				misses++
			}
		}
	}
	if misses != 3 {
		t.Fatalf("exact index should only take 3 cold misses, got %d", misses)
	}
}

// Exact indexing places small pages by bits<12+> and large pages by
// bits<15+>; check the set math via observable conflicts.
func TestIndexExactSetSelection(t *testing.T) {
	tl := MustNew(Config{Entries: 2, Ways: 1, Index: IndexExact}) // 2 sets
	// Large pages 0 and 1: bit<15> differs → different sets, both stay.
	l0, l1 := largePage(0), largePage(1<<addr.Shift32K)
	tl.Access(0, l0)
	tl.Access(1<<addr.Shift32K, l1)
	if !tl.Contains(l0) || !tl.Contains(l1) {
		t.Fatal("large pages 0 and 1 should occupy different sets")
	}
	// Small page with bit<12> = 0 conflicts with l0 (set 0).
	s := smallPage(addr.VA(2 << addr.Shift4K)) // page 2: bit12 of page number... page number 2 → low bit 0 → set 0
	tl.Access(addr.VA(2<<addr.Shift4K), s)
	if tl.Contains(l0) {
		t.Fatal("small page should have evicted l0 from set 0")
	}
	if !tl.Contains(l1) {
		t.Fatal("l1 in set 1 should survive")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tl := NewFullyAssoc(8)
	for i := 0; i < 8; i++ {
		va := addr.VA(i << addr.Shift4K)
		tl.Access(va, smallPage(va))
	}
	if tl.Occupied() != 8 {
		t.Fatalf("occupied = %d", tl.Occupied())
	}
	if n := tl.Invalidate(smallPage(addr.VA(3 << addr.Shift4K))); n != 1 {
		t.Fatalf("Invalidate = %d", n)
	}
	if tl.Occupied() != 7 {
		t.Fatalf("occupied = %d after invalidate", tl.Occupied())
	}
	if n := tl.Invalidate(smallPage(addr.VA(100 << addr.Shift4K))); n != 0 {
		t.Fatalf("Invalidate of absent page = %d", n)
	}
	if tl.Stats().Invalidations != 1 {
		t.Fatalf("invalidation count = %d", tl.Stats().Invalidations)
	}
	tl.Flush()
	if tl.Occupied() != 0 {
		t.Fatal("flush should empty the TLB")
	}
	va := addr.VA(0)
	if tl.Access(va, smallPage(va)) {
		t.Fatal("post-flush access must miss")
	}
}

func TestFIFOvsLRU(t *testing.T) {
	// Access pattern distinguishing FIFO from LRU in a 2-entry set:
	// load A, B; touch A (refresh); insert C.
	// LRU evicts B; FIFO evicts A.
	run := func(repl Replacement) (aSurvives bool) {
		tl := MustNew(Config{Entries: 2, Ways: 2, Repl: repl})
		a, b, c := addr.VA(0x1000), addr.VA(0x2000), addr.VA(0x3000)
		tl.Access(a, smallPage(a))
		tl.Access(b, smallPage(b))
		tl.Access(a, smallPage(a))
		tl.Access(c, smallPage(c))
		return tl.Contains(smallPage(a))
	}
	if !run(LRU) {
		t.Fatal("LRU should keep the recently touched entry")
	}
	if run(FIFO) {
		t.Fatal("FIFO should evict the oldest-loaded entry")
	}
}

func TestRandomReplacementIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) uint64 {
		tl := MustNew(Config{Entries: 4, Ways: 4, Repl: Random, Seed: seed})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			va := addr.VA(rng.Intn(16) << addr.Shift4K)
			tl.Access(va, smallPage(va))
		}
		return tl.Stats().Misses()
	}
	if run(1) != run(1) {
		t.Fatal("same seed must reproduce")
	}
	// Random should behave sanely: touched working set of 16 pages in a
	// 4-entry TLB misses a lot.
	if m := run(1); m < 500 {
		t.Fatalf("implausibly few misses: %d", m)
	}
}

func TestStatsBreakdownAndReprobes(t *testing.T) {
	tl := NewFullyAssoc(8)
	sva, lva := addr.VA(0x1000), addr.VA(0x20000)
	tl.Access(sva, smallPage(sva)) // small miss
	tl.Access(sva, smallPage(sva)) // small hit
	tl.Access(lva, largePage(lva)) // large miss
	tl.Access(lva, largePage(lva)) // large hit
	tl.Access(lva, largePage(lva)) // large hit
	st := tl.Stats()
	if st.SmallMisses() != 1 || st.SmallHits() != 1 || st.LargeMisses() != 1 || st.LargeHits() != 2 {
		t.Fatalf("breakdown: %+v", st)
	}
	if st.Accesses != 5 || st.Hits()+st.Misses() != st.Accesses {
		t.Fatalf("totals: %+v", st)
	}
	// Sequential exact access: second probe on large hits and all misses.
	if got, want := st.Reprobes(), uint64(2+2); got != want {
		t.Fatalf("reprobes = %d, want %d", got, want)
	}
	if st.MissRatio() != 2.0/5.0 {
		t.Fatalf("miss ratio = %v", st.MissRatio())
	}
	var zero Stats
	if zero.MissRatio() != 0 {
		t.Fatal("zero stats miss ratio should be 0")
	}
}

func TestSplitTLB(t *testing.T) {
	sp, err := NewSplit(Config{Entries: 8, Ways: 2}, Config{Entries: 4, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Entries() != 12 {
		t.Fatalf("entries = %d", sp.Entries())
	}
	if sp.Name() != "split 8+4-entry" {
		t.Fatalf("name = %q", sp.Name())
	}
	sva, lva := addr.VA(0x1000), addr.VA(0x20000)
	sp.Access(sva, smallPage(sva))
	sp.Access(lva, largePage(lva))
	small, large := sp.Halves()
	if small.Occupied() != 1 || large.Occupied() != 1 {
		t.Fatalf("occupancy: small=%d large=%d", small.Occupied(), large.Occupied())
	}
	if !sp.Access(sva, smallPage(sva)) || !sp.Access(lva, largePage(lva)) {
		t.Fatal("both should hit their half")
	}
	st := sp.Stats()
	if st.Accesses != 4 || st.SmallHits() != 1 || st.LargeHits() != 1 {
		t.Fatalf("merged stats: %+v", st)
	}
	if n := sp.Invalidate(largePage(lva)); n != 1 {
		t.Fatalf("Invalidate = %d", n)
	}
	sp.Flush()
	if sp.Access(sva, smallPage(sva)) {
		t.Fatal("post-flush access must miss")
	}
}

func TestSplitTLBBadConfigs(t *testing.T) {
	if _, err := NewSplit(Config{Entries: 0}, Config{Entries: 4}); err == nil {
		t.Fatal("bad small half should error")
	}
	if _, err := NewSplit(Config{Entries: 4}, Config{Entries: 24, Ways: 2}); err == nil {
		t.Fatal("bad large half should error")
	}
}

// LRU inclusion property: with the same set count and indexing, more ways
// never produce more misses on a single-page-size stream.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]addr.VA, 4000)
		for i := range refs {
			// Mix of hot pages and a wide tail across sets.
			if rng.Intn(2) == 0 {
				refs[i] = addr.VA(rng.Intn(8) << addr.Shift4K)
			} else {
				refs[i] = addr.VA(rng.Intn(256) << addr.Shift4K)
			}
		}
		misses := func(ways int) uint64 {
			tl := MustNew(Config{Entries: 4 * ways, Ways: ways, Index: IndexSmall})
			for _, va := range refs {
				tl.Access(va, smallPage(va))
			}
			return tl.Stats().Misses()
		}
		m1, m2, m4 := misses(1), misses(2), misses(4)
		return m1 >= m2 && m2 >= m4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a fully associative TLB with n entries never misses on a
// cyclic working set of <= n pages after the first pass.
func TestFACapacityProperty(t *testing.T) {
	f := func(nRaw, entRaw uint8) bool {
		entries := 1 << (entRaw%5 + 1) // 2..32
		n := int(nRaw)%entries + 1     // 1..entries
		tl := NewFullyAssoc(entries)
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < n; i++ {
				va := addr.VA(i << addr.Shift4K)
				hit := tl.Access(va, smallPage(va))
				if pass > 0 && !hit {
					return false
				}
			}
		}
		return tl.Stats().Misses() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFullyAssocAccess(b *testing.B) {
	tl := NewFullyAssoc(64)
	rng := rand.New(rand.NewSource(1))
	vas := make([]addr.VA, 1<<14)
	for i := range vas {
		vas[i] = addr.VA(rng.Intn(1 << 26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := vas[i&(len(vas)-1)]
		tl.Access(va, smallPage(va))
	}
}

func BenchmarkSetAssocAccess(b *testing.B) {
	tl := MustNew(Config{Entries: 32, Ways: 2, Index: IndexExact})
	rng := rand.New(rand.NewSource(1))
	vas := make([]addr.VA, 1<<14)
	for i := range vas {
		vas[i] = addr.VA(rng.Intn(1 << 26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := vas[i&(len(vas)-1)]
		tl.Access(va, smallPage(va))
	}
}

func TestProbeDoesNotInsert(t *testing.T) {
	tl := NewFullyAssoc(4)
	p := smallPage(0x1000)
	if tl.Probe(0x1000, p) {
		t.Fatal("probe of empty TLB should miss")
	}
	if tl.Occupied() != 0 {
		t.Fatal("probe must not insert")
	}
	if tl.Stats().Accesses != 0 {
		t.Fatal("probe must not count accesses")
	}
	tl.Access(0x1000, p)
	if !tl.Probe(0x1000, p) {
		t.Fatal("probe should hit resident entry")
	}
}

func TestProbeRefreshesLRU(t *testing.T) {
	tl := NewFullyAssoc(2)
	a, b, c := smallPage(0x1000), smallPage(0x2000), smallPage(0x3000)
	tl.Access(0x1000, a)
	tl.Access(0x2000, b)
	tl.Probe(0x1000, a)  // refresh a
	tl.Access(0x3000, c) // evicts b (LRU), not a
	if !tl.Contains(a) || tl.Contains(b) {
		t.Fatal("probe did not refresh LRU state")
	}
}

func TestInsertReturnsEvicted(t *testing.T) {
	tl := NewFullyAssoc(2)
	a, b, c := smallPage(0x1000), smallPage(0x2000), smallPage(0x3000)
	if _, had := tl.Insert(0x1000, a); had {
		t.Fatal("insert into empty should not evict")
	}
	tl.Insert(0x2000, b)
	ev, had := tl.Insert(0x3000, c)
	if !had || ev != a {
		t.Fatalf("evicted = %v (had=%v), want %v", ev, had, a)
	}
	// Re-inserting a resident page is a no-op without eviction.
	if _, had := tl.Insert(0x3000, c); had {
		t.Fatal("duplicate insert should not evict")
	}
	if tl.Occupied() != 2 {
		t.Fatalf("occupied = %d", tl.Occupied())
	}
	if tl.Stats().Accesses != 0 {
		t.Fatal("insert must not count accesses")
	}
}

// The Probe/Insert decomposition (used by the tlbx wrappers) must be
// behaviourally identical to Access under LRU: same hit sequence, same
// final contents.
func TestAccessEqualsProbeThenInsert(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNew(Config{Entries: 16, Ways: 2, Index: IndexExact})
		b := MustNew(Config{Entries: 16, Ways: 2, Index: IndexExact})
		for i := 0; i < 4000; i++ {
			var va addr.VA
			var p policy.Page
			if rng.Intn(3) == 0 {
				va = addr.VA(rng.Intn(32) << addr.Shift32K)
				p = largePage(va)
			} else {
				va = addr.VA(rng.Intn(256) << addr.Shift4K)
				p = smallPage(va)
			}
			hitA := a.Access(va, p)
			hitB := b.Probe(va, p)
			if !hitB {
				b.Insert(va, p)
			}
			if hitA != hitB {
				return false
			}
		}
		// Final contents agree.
		for i := 0; i < 256; i++ {
			va := addr.VA(i << addr.Shift4K)
			if a.Contains(smallPage(va)) != b.Contains(smallPage(va)) {
				return false
			}
		}
		for i := 0; i < 32; i++ {
			va := addr.VA(i << addr.Shift32K)
			if a.Contains(largePage(va)) != b.Contains(largePage(va)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
