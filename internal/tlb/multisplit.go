package tlb

import (
	"fmt"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

// MultiSplit generalizes SplitTLB to N size classes: one sub-TLB per
// class, all probed in parallel, each indexed by its own class's
// page-number bits (so every half gets exact indexing for the only
// size it ever sees). It is the natural hardware answer to the paper's
// option (c) once the hierarchy grows past two sizes — and inherits,
// per class, the same utilization hazard the paper notes for the
// two-way split: a class the policy never assigns leaves its half idle.
type MultiSplit struct {
	classes addr.SizeClasses
	halves  []*SetAssoc
}

// NewMultiSplit builds a per-class split TLB. Each config entry is the
// geometry of one half, in class order; all halves share the hierarchy
// (taken from the first config, defaulting to 4KB/32KB), and each
// half's Index is forced to its own class.
func NewMultiSplit(cfgs []Config) (*MultiSplit, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("tlb: multi-split needs at least one half")
	}
	classes, err := cfgs[0].Classes()
	if err != nil {
		return nil, fmt.Errorf("half 0: %w", err)
	}
	if len(cfgs) != classes.N() {
		return nil, fmt.Errorf("tlb: %d halves for %d size classes", len(cfgs), classes.N())
	}
	ms := &MultiSplit{classes: classes}
	for k, cfg := range cfgs {
		cfg.Shifts = classes.Shifts()
		cfg.SmallShift, cfg.LargeShift = 0, 0
		cfg.Index = IndexByClass(k)
		half, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("half %d: %w", k, err)
		}
		ms.halves = append(ms.halves, half)
	}
	return ms, nil
}

// Access implements TLB, routing by the page's size class.
//
//paperlint:hot
func (t *MultiSplit) Access(va addr.VA, p policy.Page) bool {
	return t.halves[t.classes.ClassOf(uint(p.Shift))].Access(va, p)
}

// Invalidate implements TLB.
func (t *MultiSplit) Invalidate(p policy.Page) int {
	return t.halves[t.classes.ClassOf(uint(p.Shift))].Invalidate(p)
}

// Flush implements TLB.
func (t *MultiSplit) Flush() {
	for _, h := range t.halves {
		h.Flush()
	}
}

// Stats implements TLB, merging all halves.
func (t *MultiSplit) Stats() Stats {
	s := NewStats(t.classes)
	for _, h := range t.halves {
		s.Merge(h.Stats())
	}
	return s
}

// Entries implements TLB.
func (t *MultiSplit) Entries() int {
	n := 0
	for _, h := range t.halves {
		n += h.Entries()
	}
	return n
}

// Name implements TLB.
func (t *MultiSplit) Name() string {
	var b strings.Builder
	b.WriteString("split ")
	for i, h := range t.halves {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", h.Entries())
	}
	b.WriteString("-entry per-class")
	return b.String()
}

// Classes returns the hierarchy the split is wired for.
func (t *MultiSplit) Classes() addr.SizeClasses { return t.classes }

// Halves exposes the per-class sub-TLBs for inspection.
func (t *MultiSplit) Halves() []*SetAssoc { return t.halves }

var _ TLB = (*MultiSplit)(nil)
