// Package tlb models translation lookaside buffers that support one or
// more page sizes, reproducing — and generalizing — the design space of
// Section 2 of the paper.
//
// A fully associative TLB (Section 2.1) stores the page size in each tag
// and needs a comparator per entry; it is the straightforward but
// expensive design. Set-associative TLBs (Section 2.2) must choose which
// address bits select the set:
//
//   - IndexSmall: the least significant bits of the *smallest* page
//     number. Broken for larger pages: bits <14:12> are part of a 32KB
//     page's offset, so one large page lands in many sets (Figure 2.1).
//   - IndexLarge: the least significant bits of the *largest* page
//     number. Works for large pages but makes consecutive small pages
//     compete for one set; severe if the OS allocates no large pages.
//   - IndexExact: index with the page's own page-number bits. Requires
//     either parallel probes, a sequential reprobe, or split TLBs; the
//     contents (and therefore hit/miss behaviour) are the same for the
//     first two, differing only in hit cost, which Stats exposes as
//     Reprobes for the sequential variant.
//   - IndexByClass(k): the least significant bits of class k's page
//     number — the N-size generalization that makes "small index" and
//     "large index" the two ends of a spectrum of middle-class indexing
//     choices.
//
// The page-size hierarchy itself is a parameter (Config.Shifts,
// validated through addr.SizeClasses); the paper's 4KB/32KB pair is the
// two-class default, and the legacy SmallShift/LargeShift fields remain
// as deprecated shims over it.
//
// SplitTLB models option (c) of Section 2.2 for two sizes: separate
// TLBs per page size, both probed in parallel with their own index.
// MultiSplit is its N-class generalization (one half per class).
//
// All models count hits/misses per size class and support the entry
// invalidation that page promotion/demotion requires.
package tlb

import (
	"fmt"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/obs"
	"twopage/internal/policy"
)

// IndexScheme selects which address bits index a set-associative TLB
// (Section 2.2 of the paper, generalized to per-class indexing).
type IndexScheme uint8

// Index schemes. IndexSmall and IndexLarge are aliases for indexing by
// the lowest and highest configured class; IndexByClass(k) names any
// class explicitly.
const (
	IndexSmall IndexScheme = iota // smallest-class page-number bits (broken for large pages)
	IndexLarge                    // largest-class page-number bits
	IndexExact                    // the accessed page's own page-number bits

	// indexClassBase is the first per-class scheme value; IndexByClass
	// builds on it.
	indexClassBase
)

// IndexByClass returns the scheme that indexes with size class k's
// page-number bits. k must be in [0, addr.MaxSizeClasses).
func IndexByClass(k int) IndexScheme {
	if k < 0 || k >= addr.MaxSizeClasses {
		panic(fmt.Sprintf("tlb: index class %d out of range [0,%d)", k, addr.MaxSizeClasses))
	}
	return indexClassBase + IndexScheme(k)
}

// Class returns the explicit class a per-class scheme indexes by, and
// whether s is such a scheme.
func (s IndexScheme) Class() (int, bool) {
	if s >= indexClassBase && s < indexClassBase+addr.MaxSizeClasses {
		return int(s - indexClassBase), true
	}
	return 0, false
}

// String names the scheme as in the paper's Table 5.1.
func (s IndexScheme) String() string {
	switch s {
	case IndexSmall:
		return "small index"
	case IndexLarge:
		return "large index"
	case IndexExact:
		return "exact index"
	}
	if k, ok := s.Class(); ok {
		return fmt.Sprintf("class%d index", k)
	}
	return fmt.Sprintf("IndexScheme(%d)", uint8(s))
}

// Replacement selects the per-set replacement policy.
type Replacement uint8

// Replacement policies.
const (
	LRU    Replacement = iota // least recently used (paper's assumption)
	FIFO                      // first in, first out
	Random                    // uniform random victim
)

// String names the replacement policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// Stats are TLB access counters. Hits and misses are broken down by the
// size class of the access so CPI accounting can weigh them.
type Stats struct {
	Accesses      uint64 // total lookups
	Invalidations uint64 // entries removed by Invalidate
	// Classes is how many size classes the owning TLB supports. Zero is
	// treated as the legacy two-class layout by the derived metrics.
	//paperlint:gauge structural constant, not flow: Merge max-carries it, Sub leaves it
	Classes int
	// HitsByClass and MissesByClass split the traffic by size class;
	// class 0 is the smallest page. Only the first Classes entries are
	// ever nonzero.
	HitsByClass   [addr.MaxSizeClasses]uint64
	MissesByClass [addr.MaxSizeClasses]uint64
}

// NewStats returns a zeroed Stats for a TLB supporting the given
// hierarchy; wrappers that keep their own counters use it so derived
// metrics know the class count.
func NewStats(classes addr.SizeClasses) Stats { return Stats{Classes: classes.N()} }

// Count records one access outcome against size class k.
func (s *Stats) Count(k int, hit bool) {
	if hit {
		s.HitsByClass[k]++
	} else {
		s.MissesByClass[k]++
	}
}

// Merge accumulates another TLB's counters (split halves, multi-level
// wrappers). The class count is the maximum of the two.
func (s *Stats) Merge(o Stats) {
	s.Accesses += o.Accesses
	s.Invalidations += o.Invalidations
	if o.Classes > s.Classes {
		s.Classes = o.Classes
	}
	for k := range s.HitsByClass {
		s.HitsByClass[k] += o.HitsByClass[k]
		s.MissesByClass[k] += o.MissesByClass[k]
	}
}

// Sub removes a previously recorded baseline from the counters: every
// count in o must have been accumulated into s first. Shard workers use
// it to roll back a warm-up preroll's traffic, leaving exactly the
// section's own accesses — integer arithmetic, so the subtraction is
// exact. It allocates nothing.
func (s *Stats) Sub(o Stats) {
	s.Accesses -= o.Accesses
	s.Invalidations -= o.Invalidations
	for k := range s.HitsByClass {
		s.HitsByClass[k] -= o.HitsByClass[k]
		s.MissesByClass[k] -= o.MissesByClass[k]
	}
}

// Hits returns total hits.
func (s Stats) Hits() uint64 {
	var n uint64
	for _, h := range s.HitsByClass {
		n += h
	}
	return n
}

// Misses returns total misses.
func (s Stats) Misses() uint64 {
	var n uint64
	for _, m := range s.MissesByClass {
		n += m
	}
	return n
}

// MissRatio returns misses/accesses, or 0 for an untouched TLB.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses)
}

// SmallHits returns hits on the smallest size class.
//
// Deprecated: use HitsByClass[0].
func (s Stats) SmallHits() uint64 { return s.HitsByClass[0] }

// LargeHits returns hits on every class above the smallest.
//
// Deprecated: use HitsByClass[k] for the class of interest.
func (s Stats) LargeHits() uint64 {
	var n uint64
	for k := 1; k < len(s.HitsByClass); k++ {
		n += s.HitsByClass[k]
	}
	return n
}

// SmallMisses returns misses on the smallest size class.
//
// Deprecated: use MissesByClass[0].
func (s Stats) SmallMisses() uint64 { return s.MissesByClass[0] }

// LargeMisses returns misses on every class above the smallest.
//
// Deprecated: use MissesByClass[k] for the class of interest.
func (s Stats) LargeMisses() uint64 {
	var n uint64
	for k := 1; k < len(s.MissesByClass); k++ {
		n += s.MissesByClass[k]
	}
	return n
}

// Counters converts the TLB statistics into the run-report counter
// block (internal/obs). Classes 0 and 1 keep the legacy small/large
// keys; classes 2 and 3 use the size<k> keys. Called once per pass,
// off the hot path.
func (s Stats) Counters() obs.Counters {
	return obs.Counters{
		TLBAccesses:      s.Accesses,
		TLBHitsSmall:     s.HitsByClass[0],
		TLBHitsLarge:     s.HitsByClass[1],
		TLBMissesSmall:   s.MissesByClass[0],
		TLBMissesLarge:   s.MissesByClass[1],
		TLBHitsSize2:     s.HitsByClass[2],
		TLBHitsSize3:     s.HitsByClass[3],
		TLBMissesSize2:   s.MissesByClass[2],
		TLBMissesSize3:   s.MissesByClass[3],
		TLBInvalidations: s.Invalidations,
	}
}

// Reprobes returns how many extra probes the sequential-access variant
// of exact indexing needs (Section 2.2, option (b)): the TLB is probed
// smallest class first, so a class-k hit costs k extra probes and a
// miss probes every class. With two classes this is the paper's
// "every large-page hit and every miss" count.
func (s Stats) Reprobes() uint64 {
	n := s.Classes
	if n < 2 {
		n = 2
	}
	var r uint64
	for k := 1; k < n && k < len(s.HitsByClass); k++ {
		r += uint64(k) * s.HitsByClass[k]
	}
	return r + uint64(n-1)*s.Misses()
}

// TLB is the interface shared by all TLB models. Access takes both the
// full virtual address (set selection may use offset bits below the large
// page number) and the page the OS policy resolved the address to.
type TLB interface {
	// Access looks up the page; on a miss the translation is installed
	// (possibly evicting a victim). Returns true on hit.
	Access(va addr.VA, p policy.Page) bool
	// Invalidate removes all copies of the page, returning how many
	// entries were dropped. Page promotion invalidates the region's
	// smaller pages; demotion invalidates the larger page.
	Invalidate(p policy.Page) int
	// Flush empties the TLB (context switch).
	Flush()
	// Stats returns a snapshot of the counters.
	Stats() Stats
	// Entries returns the total entry count.
	Entries() int
	// Name describes the organization, e.g. "16-entry 2-way (exact index)".
	Name() string
}

type entry struct {
	pn       addr.PN
	shift    uint16
	valid    bool
	lastUse  uint64 // LRU timestamp
	loadedAt uint64 // FIFO timestamp
}

// Config describes a set-associative (or, with Ways == Entries, fully
// associative) TLB.
type Config struct {
	// Entries is the total number of translation entries. Must be a
	// positive multiple of Ways.
	Entries int
	// Ways is the set associativity; Ways == Entries (or 0, treated the
	// same) is fully associative.
	Ways int
	// Index selects the set-index bits; irrelevant for fully associative.
	Index IndexScheme
	// Repl is the replacement policy within a set. Defaults to LRU.
	Repl Replacement
	// Shifts lists the page shifts the indexing hardware is wired for,
	// strictly ascending, at most addr.MaxSizeClasses of them. Empty
	// defaults to the deprecated SmallShift/LargeShift pair, and then
	// to the paper's 4KB/32KB.
	Shifts []uint
	// SmallShift is the legacy small-page shift field.
	//
	// Deprecated: set Shifts. It remains as a shim for the two-size
	// constructors; combining it with a non-empty Shifts is an error.
	SmallShift uint
	// LargeShift is the legacy large-page shift field.
	//
	// Deprecated: set Shifts. It remains as a shim for the two-size
	// constructors; combining it with a non-empty Shifts is an error.
	LargeShift uint
	// Seed seeds the Random replacement generator.
	Seed uint64
}

func (c *Config) normalize() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb: entries must be positive, got %d", c.Entries)
	}
	if c.Ways == 0 {
		c.Ways = c.Entries
	}
	if c.Ways < 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: %d entries not divisible into %d ways", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb: set count %d is not a power of two", sets)
	}
	if len(c.Shifts) == 0 {
		// Legacy two-size spelling: fold the deprecated pair (with the
		// paper's defaults) into the canonical form.
		small, large := c.SmallShift, c.LargeShift
		if small == 0 {
			small = addr.Shift4K
		}
		if large == 0 {
			large = addr.Shift32K
		}
		if small >= large {
			return fmt.Errorf("tlb: small shift %d must be below large shift %d", small, large)
		}
		c.Shifts = []uint{small, large}
	} else if c.SmallShift != 0 || c.LargeShift != 0 {
		return fmt.Errorf("tlb: set either Shifts or the deprecated SmallShift/LargeShift pair, not both")
	}
	classes, err := addr.NewShiftClasses(c.Shifts...)
	if err != nil {
		return err
	}
	if classes.N() < 2 {
		return fmt.Errorf("tlb: need at least two size classes, got %d", classes.N())
	}
	if k, ok := c.Index.Class(); ok && k >= classes.N() {
		return fmt.Errorf("tlb: index class %d out of range for %d size classes", k, classes.N())
	}
	// Canonical form: the hierarchy lives in Shifts only.
	c.SmallShift, c.LargeShift = 0, 0
	return nil
}

// Normalized returns the configuration with defaults applied (Ways,
// the Shifts hierarchy), or an error for invalid geometries. Two
// configurations that normalize identically build identical TLBs, which
// is what lets the experiment engine use the normalized form as a
// memoization key.
func (c Config) Normalized() (Config, error) {
	if err := c.normalize(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Classes returns the validated size-class hierarchy of a normalized
// configuration (after Normalized or New).
func (c Config) Classes() (addr.SizeClasses, error) {
	n, err := c.Normalized()
	if err != nil {
		return addr.SizeClasses{}, err
	}
	return addr.NewShiftClasses(n.Shifts...)
}

// Key returns a canonical fragment identifying the configuration for
// memoization keys. Two-class configurations keep the historical
// "s<small>.l<large>" spelling byte-for-byte (run-report pass keys are
// derived from it); larger hierarchies spell the shifts explicitly.
func (c Config) Key() (string, error) {
	cfg, err := c.Normalized()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "e%d.w%d.ix%d.r%d.", cfg.Entries, cfg.Ways, cfg.Index, cfg.Repl)
	if len(cfg.Shifts) == 2 {
		fmt.Fprintf(&b, "s%d.l%d", cfg.Shifts[0], cfg.Shifts[1])
	} else {
		b.WriteString("sc")
		for i, s := range cfg.Shifts {
			if i > 0 {
				b.WriteByte('-')
			}
			fmt.Fprintf(&b, "%d", s)
		}
	}
	fmt.Fprintf(&b, ".seed%d", cfg.Seed)
	return b.String(), nil
}

// SetAssoc is a set-associative TLB (fully associative when Ways ==
// Entries). It implements TLB.
type SetAssoc struct {
	cfg     Config
	classes addr.SizeClasses
	sets    int
	setBits uint
	// idxShift is the fixed indexing shift, or -1 for exact indexing
	// (index with the accessed page's own shift).
	idxShift int
	entries  []entry // sets × ways
	clock    uint64
	rng      uint64
	stats    Stats
	occupied int
}

// New constructs a TLB from cfg. It returns an error for invalid
// geometries (non-power-of-two set counts, entries not divisible by
// ways, non-ascending shift lists).
func New(cfg Config) (*SetAssoc, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	classes, err := addr.NewShiftClasses(cfg.Shifts...)
	if err != nil {
		return nil, err
	}
	sets := cfg.Entries / cfg.Ways
	setBits := uint(0)
	for v := sets; v > 1; v >>= 1 {
		setBits++
	}
	idxShift := -1
	switch {
	case cfg.Index == IndexSmall:
		idxShift = int(classes.Shift(0))
	case cfg.Index == IndexLarge:
		idxShift = int(classes.TopShift())
	default:
		if k, ok := cfg.Index.Class(); ok {
			idxShift = int(classes.Shift(k))
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &SetAssoc{
		cfg:      cfg,
		classes:  classes,
		sets:     sets,
		setBits:  setBits,
		idxShift: idxShift,
		entries:  make([]entry, cfg.Entries),
		rng:      seed,
		stats:    NewStats(classes),
	}, nil
}

// MustNew is New, panicking on error; for tests and tables of known-good
// configurations.
func MustNew(cfg Config) *SetAssoc {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NewFullyAssoc returns a fully associative TLB with LRU replacement,
// the organization of Section 2.1 and Figure 5.1.
func NewFullyAssoc(entries int) *SetAssoc {
	return MustNew(Config{Entries: entries, Ways: entries})
}

// Config returns the (normalized) configuration.
func (t *SetAssoc) Config() Config { return t.cfg }

// Classes returns the size-class hierarchy the TLB is wired for.
func (t *SetAssoc) Classes() addr.SizeClasses { return t.classes }

// Sets returns the number of sets.
func (t *SetAssoc) Sets() int { return t.sets }

// Entries implements TLB.
func (t *SetAssoc) Entries() int { return t.cfg.Entries }

// FullyAssociative reports whether the TLB is one set.
func (t *SetAssoc) FullyAssociative() bool { return t.sets == 1 }

// Name implements TLB.
func (t *SetAssoc) Name() string {
	if t.FullyAssociative() {
		return fmt.Sprintf("%d-entry fully associative", t.cfg.Entries)
	}
	return fmt.Sprintf("%d-entry %d-way (%s)", t.cfg.Entries, t.cfg.Ways, t.cfg.Index)
}

// index computes the set index for an access (va, p) under the
// configured scheme.
func (t *SetAssoc) index(va addr.VA, p policy.Page) uint64 {
	if t.sets == 1 {
		return 0
	}
	if t.idxShift >= 0 {
		return addr.Index(va, uint(t.idxShift), t.setBits)
	}
	return addr.Index(va, uint(p.Shift), t.setBits) // IndexExact
}

func (t *SetAssoc) xorshift() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// Access implements TLB. This is the per-reference hot path: the
// AllocsPerRun test pins it to zero steady-state allocations.
//
//paperlint:hot
func (t *SetAssoc) Access(va addr.VA, p policy.Page) bool {
	t.clock++
	t.stats.Accesses++
	k := t.classes.ClassOf(uint(p.Shift))
	idx := t.index(va, p)
	base := int(idx) * t.cfg.Ways
	set := t.entries[base : base+t.cfg.Ways]
	victim := -1
	for i := range set {
		e := &set[i]
		if !e.valid {
			if victim < 0 {
				victim = i
			}
			continue
		}
		if e.pn == p.Number && uint(e.shift) == p.Shift {
			e.lastUse = t.clock
			t.stats.HitsByClass[k]++
			return true
		}
	}
	t.stats.MissesByClass[k]++
	if victim < 0 {
		victim = t.pickVictim(set)
	} else {
		t.occupied++
	}
	set[victim] = entry{
		pn:       p.Number,
		shift:    uint16(p.Shift),
		valid:    true,
		lastUse:  t.clock,
		loadedAt: t.clock,
	}
	return false
}

func (t *SetAssoc) pickVictim(set []entry) int {
	switch t.cfg.Repl {
	case FIFO:
		v, oldest := 0, set[0].loadedAt
		for i := 1; i < len(set); i++ {
			if set[i].loadedAt < oldest {
				v, oldest = i, set[i].loadedAt
			}
		}
		return v
	case Random:
		return int(t.xorshift() % uint64(len(set)))
	default: // LRU
		v, oldest := 0, set[0].lastUse
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < oldest {
				v, oldest = i, set[i].lastUse
			}
		}
		return v
	}
}

// Invalidate implements TLB. Because IndexSmall can replicate one large
// page across several sets, invalidation scans the whole array; TLBs are
// tiny (tens of entries) and invalidations are rare (page promotions), so
// this costs nothing measurable.
func (t *SetAssoc) Invalidate(p policy.Page) int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pn == p.Number && uint(e.shift) == p.Shift {
			e.valid = false
			n++
		}
	}
	t.stats.Invalidations += uint64(n)
	t.occupied -= n
	return n
}

// Flush implements TLB.
func (t *SetAssoc) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.occupied = 0
}

// Stats implements TLB.
func (t *SetAssoc) Stats() Stats { return t.stats }

// Occupied returns the number of valid entries; useful to observe
// underutilization (e.g. split TLBs with skewed page-size mixes).
func (t *SetAssoc) Occupied() int { return t.occupied }

// Contains reports whether the page currently has a valid entry, without
// disturbing replacement state. For tests and inspection.
func (t *SetAssoc) Contains(p policy.Page) bool {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pn == p.Number && uint(e.shift) == p.Shift {
			return true
		}
	}
	return false
}

// SplitTLB models option (c) of Section 2.2: a separate TLB per page
// size, accessed in parallel with different page numbers. Accesses to
// small pages go to the small TLB, large pages to the large TLB; if the
// workload's pages are not appropriately distributed, one side sits
// unused — the disadvantage the paper notes. For more than two size
// classes see MultiSplit.
type SplitTLB struct {
	small, large *SetAssoc
	largeShift   uint
}

// NewSplit builds a split TLB. Both halves are built from their own
// configs; the large half's Index is forced to IndexExact semantics by
// construction (it only ever sees large pages, so IndexLarge and
// IndexExact coincide; we set IndexLarge) and likewise the small half
// uses IndexSmall.
func NewSplit(smallCfg, largeCfg Config) (*SplitTLB, error) {
	smallCfg.Index = IndexSmall
	largeCfg.Index = IndexLarge
	s, err := New(smallCfg)
	if err != nil {
		return nil, fmt.Errorf("small half: %w", err)
	}
	l, err := New(largeCfg)
	if err != nil {
		return nil, fmt.Errorf("large half: %w", err)
	}
	return &SplitTLB{small: s, large: l, largeShift: l.classes.TopShift()}, nil
}

// Access implements TLB.
//
//paperlint:hot
func (t *SplitTLB) Access(va addr.VA, p policy.Page) bool {
	if uint(p.Shift) >= t.largeShift {
		return t.large.Access(va, p)
	}
	return t.small.Access(va, p)
}

// Invalidate implements TLB.
func (t *SplitTLB) Invalidate(p policy.Page) int {
	if uint(p.Shift) >= t.largeShift {
		return t.large.Invalidate(p)
	}
	return t.small.Invalidate(p)
}

// Flush implements TLB.
func (t *SplitTLB) Flush() {
	t.small.Flush()
	t.large.Flush()
}

// Stats implements TLB, merging both halves.
func (t *SplitTLB) Stats() Stats {
	s := t.small.Stats()
	s.Merge(t.large.Stats())
	return s
}

// Entries implements TLB.
func (t *SplitTLB) Entries() int { return t.small.Entries() + t.large.Entries() }

// Name implements TLB.
func (t *SplitTLB) Name() string {
	return fmt.Sprintf("split %d+%d-entry", t.small.Entries(), t.large.Entries())
}

// Halves returns the small and large sub-TLBs for inspection.
func (t *SplitTLB) Halves() (small, large *SetAssoc) { return t.small, t.large }

// Compile-time interface checks.
var (
	_ TLB = (*SetAssoc)(nil)
	_ TLB = (*SplitTLB)(nil)
)

// Probe looks the page up and refreshes its replacement state on a hit,
// but does not install anything on a miss and does not touch Stats.
// It is the building block wrappers (victim buffers, prefetchers) use
// to compose TLBs while keeping their own accounting.
func (t *SetAssoc) Probe(va addr.VA, p policy.Page) bool {
	idx := t.index(va, p)
	base := int(idx) * t.cfg.Ways
	set := t.entries[base : base+t.cfg.Ways]
	for i := range set {
		e := &set[i]
		if e.valid && e.pn == p.Number && uint(e.shift) == p.Shift {
			t.clock++
			e.lastUse = t.clock
			return true
		}
	}
	return false
}

// Insert installs the page (evicting if the set is full), returning the
// evicted page if a valid entry was displaced. Like Probe it does not
// touch Stats. The inserted entry's set placement follows the same
// index scheme as Access.
func (t *SetAssoc) Insert(va addr.VA, p policy.Page) (evicted policy.Page, hadEvict bool) {
	t.clock++
	idx := t.index(va, p)
	base := int(idx) * t.cfg.Ways
	set := t.entries[base : base+t.cfg.Ways]
	victim := -1
	for i := range set {
		e := &set[i]
		if !e.valid {
			if victim < 0 {
				victim = i
			}
			continue
		}
		if e.pn == p.Number && uint(e.shift) == p.Shift {
			e.lastUse = t.clock
			return policy.Page{}, false // already present
		}
	}
	if victim < 0 {
		victim = t.pickVictim(set)
		evicted = policy.Page{Number: set[victim].pn, Shift: uint(set[victim].shift)}
		hadEvict = true
	} else {
		t.occupied++
	}
	set[victim] = entry{
		pn:       p.Number,
		shift:    uint16(p.Shift),
		valid:    true,
		lastUse:  t.clock,
		loadedAt: t.clock,
	}
	return evicted, hadEvict
}
