package tlb_test

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/policy"
	"twopage/internal/tlb"
)

// ExampleSetAssoc reproduces the paper's Figure 2.1 thought experiment:
// a direct-mapped 2-entry TLB indexed by the small page number smears
// one 32KB page across both sets, because bit<12> belongs to the large
// page's offset.
func ExampleSetAssoc() {
	t := tlb.MustNew(tlb.Config{Entries: 2, Ways: 1, Index: tlb.IndexSmall})
	large := policy.Page{Number: 0, Shift: addr.Shift32K}

	t.Access(0x0000, large) // offset 0: bit<12>=0 -> set 0
	t.Access(0x1000, large) // offset 4KB: bit<12>=1 -> set 1 (a second copy!)
	fmt.Printf("copies of one large page: %d\n", t.Invalidate(large))

	exact := tlb.MustNew(tlb.Config{Entries: 2, Ways: 1, Index: tlb.IndexExact})
	exact.Access(0x0000, large)
	exact.Access(0x1000, large) // exact index uses bit<15>: same set, hit
	fmt.Printf("exact-index misses: %d\n", exact.Stats().Misses())
	// Output:
	// copies of one large page: 2
	// exact-index misses: 1
}

// ExampleStats_Reprobes shows the sequential exact-index cost model of
// Section 2.2 option (b): large-page hits and all misses need a second
// probe.
func ExampleStats_Reprobes() {
	t := tlb.NewFullyAssoc(4)
	small := policy.Page{Number: 1, Shift: addr.Shift4K}
	large := policy.Page{Number: 1, Shift: addr.Shift32K}
	t.Access(0x1000, small) // small miss (reprobe)
	t.Access(0x1000, small) // small hit (single probe)
	t.Access(0x8000, large) // large miss (reprobe)
	t.Access(0x8000, large) // large hit (reprobe)
	fmt.Printf("accesses needing a second probe: %d of %d\n",
		t.Stats().Reprobes(), t.Stats().Accesses)
	// Output:
	// accesses needing a second probe: 3 of 4
}
