package tlb

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

// TestAccessAllocs pins the simulator's innermost operation at zero
// allocations: one TLB probe per reference means any alloc here scales
// with trace length.
func TestAccessAllocs(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 16, Ways: 16, Index: IndexExact},
		{Entries: 64, Ways: 2, Index: IndexSmall},
		{Entries: 64, Ways: 4, Index: IndexLarge, Repl: Random},
	} {
		tl := MustNew(cfg)
		i := 0
		avg := testing.AllocsPerRun(1000, func() {
			// Mix hits, misses, and both page sizes so every Access
			// path is exercised.
			va := addr.VA(uint64(i*4096) % (1 << 22))
			if i%3 == 0 {
				tl.Access(va, policy.Page{Number: addr.Chunk(va), Shift: addr.ChunkShift})
			} else {
				tl.Access(va, policy.Page{Number: addr.Block(va), Shift: addr.BlockShift})
			}
			i++
		})
		if avg != 0 {
			t.Errorf("%s: Access allocates %.1f times per call, want 0", tl.Name(), avg)
		}
	}
}

// TestStatsMergeSubAllocs pins the shard merge/warm-up arithmetic at
// zero allocations: Merge folds one shard's counters per (shard, TLB)
// pair and Sub subtracts a warm-up snapshot per shard, so both must be
// pure value updates.
func TestStatsMergeSubAllocs(t *testing.T) {
	a := Stats{Accesses: 100, Classes: 2}
	b := Stats{Accesses: 40, Classes: 2}
	avg := testing.AllocsPerRun(5000, func() {
		s := a
		s.Merge(b)
		s.Sub(b)
	})
	if avg != 0 {
		t.Errorf("Stats.Merge+Sub allocates %.2f times per call, want 0", avg)
	}
}
