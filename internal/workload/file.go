package workload

import (
	"fmt"

	"twopage/internal/trace"
)

// nBuiltin counts the compiled-in program specs; entries past it are
// runtime registrations and the only ones Unregister may remove.
var nBuiltin = len(specs)

// RegisterSource adds a runtime-defined workload to the registry, so
// trace files (or any other reference source) plug into the same
// experiment machinery as the twelve modelled programs. open must
// return a fresh deterministic Reader for each call; refs == 0 means
// the source's natural length. The name must not collide with a
// registered workload.
func RegisterSource(name, description string, defaultRefs uint64, largeWS bool, open func(refs uint64) trace.Reader) error {
	if name == "" {
		return fmt.Errorf("workload: empty source name")
	}
	if _, err := Get(name); err == nil {
		return fmt.Errorf("workload: %q already registered", name)
	}
	specs = append(specs, Spec{
		Name:        name,
		Description: description,
		DefaultRefs: defaultRefs,
		LargeWS:     largeWS,
		New: func(refs uint64) trace.Reader {
			r := open(refs)
			if refs > 0 {
				return trace.NewLimit(r, refs)
			}
			return r
		},
	})
	return nil
}

// Unregister removes a source added with RegisterSource or
// RegisterFile, reporting whether it was present. The twelve modelled
// programs cannot be removed.
func Unregister(name string) bool {
	for i := nBuiltin; i < len(specs); i++ {
		if specs[i].Name == name {
			specs = append(specs[:i], specs[i+1:]...)
			return true
		}
	}
	return false
}

// RegisterFile registers a memory-mapped v2 trace as a workload named
// name. Every New call returns an independent cursor over the shared
// mapping, so experiments running the workload in parallel decode
// concurrently without rereading the file. The caller keeps ownership
// of f and must not Close it while the workload is in use.
func RegisterFile(name string, f *trace.File) error {
	desc := fmt.Sprintf("v2 trace file (%d refs, %.2f bytes/ref)", f.Refs(), f.BytesPerRef())
	if err := RegisterSource(name, desc, f.Refs(), false, func(refs uint64) trace.Reader {
		return f.Reader()
	}); err != nil {
		return err
	}
	specs[len(specs)-1].File = f
	return nil
}
