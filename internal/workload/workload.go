// Package workload generates the synthetic SPARC-like reference streams
// that stand in for the paper's twelve traced programs (Table 3.1).
//
// The original traces were produced by running SPEC-era binaries under
// Sun's shade/shadow tracers; neither the tools nor the binaries/inputs
// are obtainable, so each program is modelled as a deterministic
// generator composed from primitive access patterns — sequential
// instruction fetch with loop structure, dense linear sweeps, strided
// column walks, round-robin multi-array walks, pointer chasing over a
// clustered heap, and skewed random lookups. The composition and region
// geometry of each program are chosen to match its published
// characteristics: working-set size class, spatial-locality class
// (working-set growth with page size, Figure 4.1), page-size-assignment
// behaviour (how much of its traffic the promotion policy moves to large
// pages), and TLB-conflict geometry (e.g. tomcatv's large-page-index
// thrashing). See DESIGN.md for the substitution argument and
// programs.go for the per-program models.
//
// Generators implement trace.Reader, are deterministic for a given
// (name, refs) pair, and emit instruction fetches interleaved with data
// references so that RPI (references per instruction) is meaningful.
package workload

import (
	"fmt"
	"io"
	"math"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

// rng is a splitmix64 generator: tiny, fast, and deterministic across
// platforms (unlike math/rand's unspecified stream evolution).
type rng struct{ s uint64 }

func newRNG(seed uint64) rng { return rng{s: seed ^ 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n). n must be > 0.
func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// stream is a primitive data-access pattern. Each call produces the next
// virtual address of the pattern.
type stream interface {
	next(r *rng) addr.VA
}

// seqStream scans [base, base+size) with a fixed stride, wrapping to the
// start: the linear looping traversal of programs like matrix300's row
// accesses or x11perf's copy loops.
type seqStream struct {
	base   addr.VA
	size   uint64
	stride uint64
	pos    uint64
}

func (s *seqStream) next(*rng) addr.VA {
	va := s.base + addr.VA(s.pos)
	s.pos += s.stride
	if s.pos >= s.size {
		s.pos -= s.size
	}
	return va
}

// colWalk walks a rows×cols matrix in column-major order over a
// row-major layout: consecutive references are rowBytes apart, the
// pattern that makes matrix300 and nasa7 touch a new 4KB page almost
// every reference (Section 5.2 of the paper).
type colWalk struct {
	base     addr.VA
	rows     uint64
	cols     uint64
	rowBytes uint64
	elem     uint64
	r, c     uint64
}

func (w *colWalk) next(*rng) addr.VA {
	va := w.base + addr.VA(w.r*w.rowBytes+w.c*w.elem)
	w.r++
	if w.r == w.rows {
		w.r = 0
		w.c++
		if w.c == w.cols {
			w.c = 0
		}
	}
	return va
}

// roundRobin visits several equally sized arrays at the same logical
// offset, a burst of consecutive elements per array before moving to the
// next array, advancing the offset once per full cycle. This is the
// tomcatv inner-loop shape: seven arrays indexed by the same induction
// variable. With array spacing chosen as in programs.go, all arrays
// collide in the large-page-index bits while spreading under the
// small-page index.
type roundRobin struct {
	bases  []addr.VA
	size   uint64
	stride uint64 // offset advance per full cycle
	elem   uint64 // element step within a burst
	burst  int    // consecutive refs per array visit
	pos    uint64
	cur    int
	b      int
}

func (s *roundRobin) next(*rng) addr.VA {
	va := s.bases[s.cur] + addr.VA(s.pos+uint64(s.b)*s.elem)
	s.b++
	if s.b == s.burst {
		s.b = 0
		s.cur++
		if s.cur == len(s.bases) {
			s.cur = 0
			s.pos += s.stride
			if s.pos+uint64(s.burst)*s.elem >= s.size {
				s.pos = 0
			}
		}
	}
	return va
}

// uniformStream picks uniformly random aligned addresses in
// [base, base+size): hash tables, FFT butterflies, scattered updates.
type uniformStream struct {
	base  addr.VA
	size  uint64
	align uint64
}

func (s *uniformStream) next(r *rng) addr.VA {
	return s.base + addr.VA(r.intn(s.size/s.align)*s.align)
}

// clusterStream models traffic over scattered fixed-size clusters
// (allocation arenas, cons-cell segments, netlist node groups). Cluster
// choice is skewed: with probability hotProb the reference goes to the
// hot prefix (hotFrac of the clusters), modelling temporal locality.
// Within a cluster, references burst: burstLen consecutive references
// stay in the cluster at random aligned offsets.
type clusterStream struct {
	clusters []addr.VA
	size     uint64 // bytes per cluster
	align    uint64
	hotFrac  float64
	hotProb  float64
	burstLen int

	cur   int
	burst int
}

func (s *clusterStream) next(r *rng) addr.VA {
	if s.burst == 0 {
		n := len(s.clusters)
		hot := int(math.Max(1, s.hotFrac*float64(n)))
		if r.float() < s.hotProb {
			s.cur = int(r.intn(uint64(hot)))
		} else {
			s.cur = int(r.intn(uint64(n)))
		}
		s.burst = s.burstLen
	}
	s.burst--
	return s.clusters[s.cur] + addr.VA(r.intn(s.size/s.align)*s.align)
}

// chaseStream walks a fixed pseudo-random cyclic permutation of node
// addresses: pointer chasing with essentially no spatial locality beyond
// the node layout itself, in bursts (a node and its neighbours) to model
// object traversal.
type chaseStream struct {
	order []addr.VA
	burst int
	cur   int
	b     int
	span  uint64 // bytes of the node touched per burst step
}

func (s *chaseStream) next(r *rng) addr.VA {
	va := s.order[s.cur] + addr.VA(uint64(s.b)*s.span)
	s.b++
	if s.b == s.burst {
		s.b = 0
		s.cur++
		if s.cur == len(s.order) {
			s.cur = 0
		}
	}
	return va
}

// codeWalker emits the instruction-fetch stream: sequential 4-byte
// fetches through a function's loop body, looping, and moving to the
// next function after visitLen instructions (calls/returns).
type codeWalker struct {
	funcs     []codeFunc
	visitLen  int
	cur       int
	pc        int
	visitLeft int
}

type codeFunc struct {
	base addr.VA
	body int // instructions in the loop body
}

func newCodeWalker(base addr.VA, nFuncs, bodyInstrs, visitLen int, spacing uint64) *codeWalker {
	funcs := make([]codeFunc, nFuncs)
	for i := range funcs {
		funcs[i] = codeFunc{base: base + addr.VA(uint64(i)*spacing), body: bodyInstrs}
	}
	return &codeWalker{funcs: funcs, visitLen: visitLen, visitLeft: visitLen}
}

func (c *codeWalker) next() addr.VA {
	f := c.funcs[c.cur]
	va := f.base + addr.VA(4*c.pc)
	c.pc++
	if c.pc >= f.body {
		c.pc = 0
	}
	c.visitLeft--
	if c.visitLeft == 0 {
		c.visitLeft = c.visitLen
		c.cur++
		if c.cur == len(c.funcs) {
			c.cur = 0
		}
		c.pc = 0
	}
	return va
}

// weighted couples a stream with its share of data references and its
// store fraction.
type weighted struct {
	s      stream
	weight float64
	store  float64
}

// program interleaves an instruction-fetch stream with data references
// drawn from weighted streams, at dataPerInstr data references per
// instruction. It implements trace.Reader and stops after refs total
// references.
type program struct {
	rng     rng
	code    *codeWalker
	dpi     float64
	streams []weighted
	cum     []float64

	carry    float64
	pending  int
	refsLeft uint64
}

func newProgram(seed uint64, code *codeWalker, dpi float64, refs uint64, streams []weighted) *program {
	total := 0.0
	for _, w := range streams {
		total += w.weight
	}
	cum := make([]float64, len(streams))
	acc := 0.0
	for i, w := range streams {
		acc += w.weight / total
		cum[i] = acc
	}
	return &program{
		rng:      newRNG(seed),
		code:     code,
		dpi:      dpi,
		streams:  streams,
		cum:      cum,
		refsLeft: refs,
	}
}

// Read implements trace.Reader.
func (p *program) Read(batch []trace.Ref) (int, error) {
	if p.refsLeft == 0 {
		return 0, io.EOF
	}
	n := len(batch)
	if uint64(n) > p.refsLeft {
		n = int(p.refsLeft)
	}
	for i := 0; i < n; i++ {
		if p.pending > 0 {
			p.pending--
			batch[i] = p.dataRef()
			continue
		}
		batch[i] = trace.Ref{Addr: p.code.next(), Kind: trace.Instr}
		p.carry += p.dpi
		for p.carry >= 1 {
			p.carry--
			p.pending++
		}
	}
	p.refsLeft -= uint64(n)
	if p.refsLeft == 0 {
		return n, io.EOF
	}
	return n, nil
}

func (p *program) dataRef() trace.Ref {
	u := p.rng.float()
	idx := len(p.streams) - 1
	for i, c := range p.cum {
		if u < c {
			idx = i
			break
		}
	}
	w := p.streams[idx]
	kind := trace.Load
	if w.store > 0 && p.rng.float() < w.store {
		kind = trace.Store
	}
	return trace.Ref{Addr: w.s.next(&p.rng), Kind: kind}
}

// jitterWithinChunk shifts each chunk-aligned cluster base by a random
// whole number of 4KB blocks such that a cluster of the given size stays
// inside its chunk. Real allocators place objects at diverse page
// offsets; without this, every scattered structure would share page
// index bits <14:12> = 0 and pile into one TLB set, an artifact no real
// trace exhibits.
func jitterWithinChunk(r *rng, clusters []addr.VA, size uint64) {
	maxShift := (addr.ChunkSize - size) / addr.BlockSize
	if maxShift == 0 {
		return
	}
	for i := range clusters {
		clusters[i] += addr.VA(r.intn(maxShift+1) * addr.BlockSize)
	}
}

// scatterClusters places n cluster bases of the given size within
// [base, base+span), aligned to align, deterministically for seed, with
// no two clusters overlapping. Placement is random-first with an
// attempt cap, then falls back to scanning for a free run from a random
// origin, so tightly packed configurations terminate; it panics only if
// the clusters genuinely cannot fit.
func scatterClusters(r *rng, base addr.VA, span uint64, n int, size, align uint64) []addr.VA {
	slots := span / align
	per := (size + align - 1) / align
	if per == 0 {
		per = 1
	}
	// Starts are aligned to whole cluster footprints (buckets of `per`
	// slots), so any configuration that fits by volume is placeable
	// regardless of the random order — no fragmentation dead ends.
	buckets := slots / per
	if buckets == 0 || uint64(n) > buckets {
		panic(fmt.Sprintf("workload: cannot place %d clusters of %d bytes in a %d-byte span", n, size, span))
	}
	occupied := make([]bool, buckets)
	claim := func(b uint64) addr.VA {
		occupied[b] = true
		return base + addr.VA(b*per*align)
	}
	out := make([]addr.VA, 0, n)
	for len(out) < n {
		placed := false
		for attempt := 0; attempt < 32; attempt++ {
			b := r.intn(buckets)
			if !occupied[b] {
				out = append(out, claim(b))
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		// Dense regime: scan forward from a random origin.
		origin := r.intn(buckets)
		for i := uint64(0); i < buckets; i++ {
			b := (origin + i) % buckets
			if !occupied[b] {
				out = append(out, claim(b))
				placed = true
				break
			}
		}
		if !placed {
			panic(fmt.Sprintf("workload: no room for %d clusters of %d bytes in %d-byte span", n, size, span))
		}
	}
	return out
}
