package workload

import (
	"bytes"
	"io"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

func drain(t *testing.T, r trace.Reader) []trace.Ref {
	t.Helper()
	var out []trace.Ref
	batch := make([]trace.Ref, 256)
	for {
		n, err := r.Read(batch)
		out = append(out, batch[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// snapshotRegistry undoes test registrations so the shared registry
// stays the twelve modelled programs for other tests.
func snapshotRegistry(t *testing.T) {
	t.Helper()
	old := specs[:len(specs):len(specs)]
	t.Cleanup(func() { specs = old })
}

func TestRegisterFile(t *testing.T) {
	snapshotRegistry(t)
	refs := make([]trace.Ref, 1000)
	for i := range refs {
		refs[i] = trace.Ref{Addr: addr.VA(0x1000 + i*64), Kind: trace.Kind(i % 3)}
	}
	var buf bytes.Buffer
	w := trace.NewV2WriterBlock(&buf, 128)
	if err := w.Write(refs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := trace.NewFileBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	const name = "trace:file_test"
	if err := RegisterFile(name, f); err != nil {
		t.Fatal(err)
	}
	if err := RegisterFile(name, f); err == nil {
		t.Fatal("duplicate RegisterFile succeeded, want error")
	}

	spec, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if spec.DefaultRefs != 1000 {
		t.Fatalf("DefaultRefs = %d, want 1000", spec.DefaultRefs)
	}
	got := drain(t, MustNew(name, 0))
	if len(got) != len(refs) {
		t.Fatalf("full read: %d refs, want %d", len(got), len(refs))
	}
	for i := range got {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %v, want %v", i, got[i], refs[i])
		}
	}
	// A scaled-down run sees a truncated prefix, like the modelled
	// programs at scale < 1.
	if got := drain(t, MustNew(name, 250)); len(got) != 250 {
		t.Fatalf("limited read: %d refs, want 250", len(got))
	}
	// Independent cursors over the shared mapping don't interfere.
	r1, r2 := MustNew(name, 0), MustNew(name, 0)
	b1, b2 := make([]trace.Ref, 64), make([]trace.Ref, 64)
	if _, err := r1.Read(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Read(b2); err != nil {
		t.Fatal(err)
	}
	if b1[0] != b2[0] || b1[0] != refs[0] {
		t.Fatalf("cursors disagree: %v vs %v", b1[0], b2[0])
	}
}

func TestUnregister(t *testing.T) {
	snapshotRegistry(t)
	open := func(refs uint64) trace.Reader { return trace.NewSliceReader(nil) }
	if err := RegisterSource("trace:tmp", "d", 0, false, open); err != nil {
		t.Fatal(err)
	}
	if !Unregister("trace:tmp") {
		t.Fatal("Unregister missed a registered source")
	}
	if _, err := Get("trace:tmp"); err == nil {
		t.Fatal("source still resolvable after Unregister")
	}
	if Unregister("li") {
		t.Fatal("Unregister removed a built-in program")
	}
	if Unregister("trace:tmp") {
		t.Fatal("Unregister reported success twice")
	}
}

func TestRegisterSourceValidation(t *testing.T) {
	snapshotRegistry(t)
	open := func(refs uint64) trace.Reader { return trace.NewSliceReader(nil) }
	if err := RegisterSource("", "d", 0, false, open); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterSource("li", "d", 0, false, open); err == nil {
		t.Fatal("collision with built-in workload accepted")
	}
}
