package workload

import (
	"strings"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

const goodSpec = `
# a matrix-multiply-like program
code funcs=2 body=512 visit=16K spacing=4K base=0x1000000
dpi 0.4
colwalk base=16M rows=300 cols=300 rowbytes=2400 elem=8 weight=0.45 store=0
seq     base=32M size=720000 stride=8 weight=0.40
uniform base=48M size=16K align=8 weight=0.15 store=0.5
`

func TestParseGoodSpec(t *testing.T) {
	r, err := Parse("custom-m300", 50_000, goodSpec)
	if err != nil {
		t.Fatal(err)
	}
	refs := collect(t, r, 50_000)
	c, err := trace.CountRefs(trace.NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	if rpi := c.RPI(); rpi < 1.3 || rpi > 1.5 {
		t.Fatalf("RPI = %v", rpi)
	}
	// Addresses land in the declared regions.
	sawCol, sawSeq, sawCode := false, false, false
	for _, ref := range refs {
		switch {
		case ref.Addr >= 0x1000000 && ref.Addr < 0x1002000:
			sawCode = true
		case ref.Addr >= 16<<20 && ref.Addr < 17<<20:
			sawCol = true
		case ref.Addr >= 32<<20 && ref.Addr < 33<<20:
			sawSeq = true
		}
	}
	if !sawCol || !sawSeq || !sawCode {
		t.Fatalf("regions missing: col=%v seq=%v code=%v", sawCol, sawSeq, sawCode)
	}
}

func TestParseDeterministic(t *testing.T) {
	a := collect(t, MustParse("x", 10_000, goodSpec), 10_000)
	b := collect(t, MustParse("x", 10_000, goodSpec), 10_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
	// A different name seeds differently (stream choices diverge).
	c := collect(t, MustParse("y", 10_000, goodSpec), 10_000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different names should produce different streams")
	}
}

func TestParseDefaults(t *testing.T) {
	// Minimal spec: one stream; code and dpi default.
	r, err := Parse("min", 5_000, "uniform base=1M size=64K weight=1\n")
	if err != nil {
		t.Fatal(err)
	}
	refs := collect(t, r, 5_000)
	c, _ := trace.CountRefs(trace.NewSliceReader(refs))
	if c.Instr == 0 || c.Data() == 0 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestParseAllStreamKinds(t *testing.T) {
	spec := `
seed value=42
clusters base=512M span=16M n=16 size=12K align=8 hot=0.3 hotprob=0.8 burst=6 weight=0.3
robin bases=16M,17M,18M size=256K stride=520 elem=8 burst=3 weight=0.3
chase base=768M span=8M clusters=16 csize=24K nodes=256 span2=16 burst=2 weight=0.4
`
	r, err := Parse("kinds", 20_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	refs := collect(t, r, 20_000)
	// Cluster bases are chunk-scattered with jitter; chase nodes in the
	// 768M region; robin in 16-19M.
	sawCluster, sawRobin, sawChase := false, false, false
	for _, ref := range refs {
		switch {
		case ref.Addr >= 512<<20 && ref.Addr < 528<<20:
			sawCluster = true
		case ref.Addr >= 16<<20 && ref.Addr < 19<<20:
			sawRobin = true
		case ref.Addr >= 768<<20 && ref.Addr < 776<<20:
			sawChase = true
		}
	}
	if !sawCluster || !sawRobin || !sawChase {
		t.Fatalf("streams missing: clusters=%v robin=%v chase=%v", sawCluster, sawRobin, sawChase)
	}
}

func TestParseSizeSuffixes(t *testing.T) {
	cases := map[string]uint64{
		"128":    128,
		"4K":     4096,
		"16M":    16 << 20,
		"1G":     1 << 30,
		"0x1000": 4096,
		"2k":     2048,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "4KB", "-3"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) should fail", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"bogus a=1\nuniform base=1M size=4K weight=1", "unknown directive"},
		{"dpi\nuniform base=1M size=4K weight=1", "dpi wants one value"},
		{"dpi 9\nuniform base=1M size=4K weight=1", "bad dpi"},
		{"uniform base=1M size=4K", "positive weight"},
		{"uniform size=4K weight=1", `missing required field "base"`},
		{"seq base=1M size=64 stride=128 weight=1", "stride < size"},
		{"colwalk base=1M rows=0 cols=2 rowbytes=64 weight=1", "must be positive"},
		{"uniform base=1M size=4 align=8 weight=1", "size >= align"},
		{"clusters base=1M span=8K n=4 size=4K weight=1", "span >= n*size"},
		{"robin size=4K weight=1", "missing bases"},
		{"chase base=1M span=8K clusters=4 csize=4K weight=1", "span >= clusters*csize"},
		{"uniform base=1M size=4K weight=1 junk", "malformed field"},
		{"", "no data streams"},
	}
	for _, c := range cases {
		_, err := Parse("t", 1000, c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: err = %v, want contains %q", c.spec, err, c.want)
		}
	}
	if _, err := Parse("t", 0, "uniform base=1M size=4K weight=1"); err == nil {
		t.Error("zero refs should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("t", 1000, "nope")
}

// A parsed spec mimicking matrix300 must show the same qualitative TLB
// behaviour class as the built-in model: dense chunks, promotable.
func TestParsedSpecBehavesLikeBuiltin(t *testing.T) {
	r := MustParse("m300ish", 200_000, goodSpec)
	blocks := map[addr.PN]bool{}
	buf := make([]trace.Ref, 4096)
	for {
		n, err := r.Read(buf)
		for _, ref := range buf[:n] {
			if ref.Kind != trace.Instr {
				blocks[addr.Block(ref.Addr)] = true
			}
		}
		if err != nil {
			break
		}
	}
	perChunk := map[addr.PN]int{}
	for b := range blocks {
		perChunk[addr.ChunkOfBlock(b)]++
	}
	dense := 0
	for _, k := range perChunk {
		if k >= 4 {
			dense++
		}
	}
	if frac := float64(dense) / float64(len(perChunk)); frac < 0.7 {
		t.Fatalf("dense-chunk fraction = %v, want high for a matrix spec", frac)
	}
}
