package workload_test

import (
	"fmt"
	"log"

	"twopage/internal/trace"
	"twopage/internal/workload"
)

// ExampleParse models a program in the spec language and counts its
// reference mix.
func ExampleParse() {
	src, err := workload.Parse("demo", 100_000, `
code funcs=2 body=256 visit=1024
dpi 0.5
seq     base=16M size=256K stride=64 weight=0.7 store=0.3
uniform base=32M size=16K align=8 weight=0.3 store=0.5
`)
	if err != nil {
		log.Fatal(err)
	}
	c, err := trace.CountRefs(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total refs: %d\n", c.Total())
	fmt.Printf("references per instruction: %.1f\n", c.RPI())
	// Output:
	// total refs: 100000
	// references per instruction: 1.5
}
