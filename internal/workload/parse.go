package workload

import (
	"fmt"
	"strconv"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

// Parse builds a workload generator from a textual specification, so
// new programs can be modelled without writing Go. The format is one
// directive per line; '#' starts a comment. Sizes accept K/M suffixes
// and addresses accept 0x prefixes.
//
//	# instruction stream: 8 functions of 1024 instructions, switching
//	# every 4096 instructions, laid out 4K apart
//	code funcs=8 body=1024 visit=4096 spacing=4K base=0x1000000
//	# data references per instruction
//	dpi 0.35
//	# data streams (weights are relative):
//	seq     base=16M size=384K stride=128 weight=0.4 store=0.2
//	colwalk base=32M rows=300 cols=300 rowbytes=2400 elem=8 weight=0.4
//	uniform base=48M size=64K align=8 weight=0.2 store=0.5
//	clusters base=512M span=16M n=48 size=12K align=8 hot=0.25 hotprob=0.8 burst=12 weight=0.3
//	robin   bases=16M,17M,18M size=512K stride=520 elem=8 burst=3 weight=0.85
//	chase   base=512M span=16M clusters=64 csize=24K nodes=4096 span2=16 burst=4 weight=0.5
//
// Defaults: code (4 funcs, 1024 body, 4096 visit, 4K spacing, base
// 0x1000000) and dpi 0.35 apply if omitted. At least one data stream is
// required. seed defaults to a hash of name.
func Parse(name string, refs uint64, spec string) (trace.Reader, error) {
	p := &specParser{seed: seedFor(name)}
	for ln, raw := range strings.Split(spec, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.directive(line); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", ln+1, err)
		}
	}
	return p.build(name, refs)
}

// MustParse is Parse, panicking on error; for tests and fixed specs.
func MustParse(name string, refs uint64, spec string) trace.Reader {
	r, err := Parse(name, refs, spec)
	if err != nil {
		panic(err)
	}
	return r
}

type specParser struct {
	seed    uint64
	code    *codeWalker
	dpi     float64
	streams []weighted
}

// fields parses "k=v" pairs after the directive word.
type fields map[string]string

func parseFields(parts []string) (fields, error) {
	f := fields{}
	for _, p := range parts {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("malformed field %q (want key=value)", p)
		}
		f[kv[0]] = kv[1]
	}
	return f, nil
}

// size parses "128", "4K", "16M", "0x1000".
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	up := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(up, "K"):
		mult, up = 1<<10, strings.TrimSuffix(up, "K")
	case strings.HasSuffix(up, "M"):
		mult, up = 1<<20, strings.TrimSuffix(up, "M")
	case strings.HasSuffix(up, "G"):
		mult, up = 1<<30, strings.TrimSuffix(up, "G")
	}
	var v uint64
	var err error
	if strings.HasPrefix(up, "0X") {
		v, err = strconv.ParseUint(up[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(up, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func (f fields) size(key string, def uint64) (uint64, error) {
	s, ok := f[key]
	if !ok {
		return def, nil
	}
	return parseSize(s)
}

func (f fields) sizeReq(key string) (uint64, error) {
	s, ok := f[key]
	if !ok {
		return 0, fmt.Errorf("missing required field %q", key)
	}
	return parseSize(s)
}

func (f fields) float(key string, def float64) (float64, error) {
	s, ok := f[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad float %q for %q", s, key)
	}
	return v, nil
}

func (f fields) intVal(key string, def int) (int, error) {
	s, ok := f[key]
	if !ok {
		return def, nil
	}
	v, err := parseSize(s)
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

func (p *specParser) directive(line string) error {
	parts := strings.Fields(line)
	kind := parts[0]
	if kind == "dpi" {
		if len(parts) != 2 {
			return fmt.Errorf("dpi wants one value")
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || v <= 0 || v > 4 {
			return fmt.Errorf("bad dpi %q", parts[1])
		}
		p.dpi = v
		return nil
	}
	f, err := parseFields(parts[1:])
	if err != nil {
		return err
	}
	switch kind {
	case "seed":
		v, err := f.sizeReq("value")
		if err != nil {
			return err
		}
		p.seed = v
		return nil
	case "code":
		return p.parseCode(f)
	case "seq", "colwalk", "uniform", "clusters", "robin", "chase":
		return p.parseStream(kind, f)
	default:
		return fmt.Errorf("unknown directive %q", kind)
	}
}

func (p *specParser) parseCode(f fields) error {
	funcs, err := f.intVal("funcs", 4)
	if err != nil {
		return err
	}
	body, err := f.intVal("body", 1024)
	if err != nil {
		return err
	}
	visit, err := f.intVal("visit", 4096)
	if err != nil {
		return err
	}
	spacing, err := f.size("spacing", 4<<10)
	if err != nil {
		return err
	}
	base, err := f.size("base", uint64(codeBase))
	if err != nil {
		return err
	}
	if funcs < 1 || body < 1 || visit < 1 {
		return fmt.Errorf("code: funcs/body/visit must be positive")
	}
	p.code = newCodeWalker(addr.VA(base), funcs, body, visit, spacing)
	return nil
}

func (p *specParser) parseStream(kind string, f fields) error {
	weight, err := f.float("weight", 0)
	if err != nil {
		return err
	}
	if weight <= 0 {
		return fmt.Errorf("%s: positive weight required", kind)
	}
	store, err := f.float("store", 0.25)
	if err != nil {
		return err
	}
	var s stream
	switch kind {
	case "seq":
		base, err := f.sizeReq("base")
		if err != nil {
			return err
		}
		size, err := f.sizeReq("size")
		if err != nil {
			return err
		}
		stride, err := f.size("stride", 8)
		if err != nil {
			return err
		}
		if size == 0 || stride == 0 || stride >= size {
			return fmt.Errorf("seq: need 0 < stride < size")
		}
		s = &seqStream{base: addr.VA(base), size: size, stride: stride}
	case "colwalk":
		base, err := f.sizeReq("base")
		if err != nil {
			return err
		}
		rows, err := f.sizeReq("rows")
		if err != nil {
			return err
		}
		cols, err := f.sizeReq("cols")
		if err != nil {
			return err
		}
		rowBytes, err := f.sizeReq("rowbytes")
		if err != nil {
			return err
		}
		elem, err := f.size("elem", 8)
		if err != nil {
			return err
		}
		if rows == 0 || cols == 0 || rowBytes == 0 {
			return fmt.Errorf("colwalk: rows/cols/rowbytes must be positive")
		}
		s = &colWalk{base: addr.VA(base), rows: rows, cols: cols, rowBytes: rowBytes, elem: elem}
	case "uniform":
		base, err := f.sizeReq("base")
		if err != nil {
			return err
		}
		size, err := f.sizeReq("size")
		if err != nil {
			return err
		}
		align, err := f.size("align", 8)
		if err != nil {
			return err
		}
		if align == 0 || size < align {
			return fmt.Errorf("uniform: need size >= align > 0")
		}
		s = &uniformStream{base: addr.VA(base), size: size, align: align}
	case "clusters":
		base, err := f.sizeReq("base")
		if err != nil {
			return err
		}
		span, err := f.sizeReq("span")
		if err != nil {
			return err
		}
		n, err := f.intVal("n", 0)
		if err != nil {
			return err
		}
		size, err := f.sizeReq("size")
		if err != nil {
			return err
		}
		align, err := f.size("align", 8)
		if err != nil {
			return err
		}
		hot, err := f.float("hot", 0.25)
		if err != nil {
			return err
		}
		hotProb, err := f.float("hotprob", 0.75)
		if err != nil {
			return err
		}
		burst, err := f.intVal("burst", 8)
		if err != nil {
			return err
		}
		if n < 1 || size == 0 || span < size*uint64(n) {
			return fmt.Errorf("clusters: need n >= 1 and span >= n*size")
		}
		r := newRNG(p.seed ^ uint64(len(p.streams)))
		cl := scatterClusters(&r, addr.VA(base), span, n, size, addr.ChunkSize)
		if size < addr.ChunkSize {
			jitterWithinChunk(&r, cl, size)
		}
		s = &clusterStream{clusters: cl, size: size, align: align,
			hotFrac: hot, hotProb: hotProb, burstLen: burst}
	case "robin":
		raw, ok := f["bases"]
		if !ok {
			return fmt.Errorf("robin: missing bases")
		}
		var bases []addr.VA
		for _, b := range strings.Split(raw, ",") {
			v, err := parseSize(b)
			if err != nil {
				return err
			}
			bases = append(bases, addr.VA(v))
		}
		size, err := f.sizeReq("size")
		if err != nil {
			return err
		}
		stride, err := f.size("stride", 8)
		if err != nil {
			return err
		}
		elem, err := f.size("elem", 8)
		if err != nil {
			return err
		}
		burst, err := f.intVal("burst", 1)
		if err != nil {
			return err
		}
		if len(bases) == 0 || size == 0 || burst < 1 {
			return fmt.Errorf("robin: need bases, size and burst >= 1")
		}
		s = &roundRobin{bases: bases, size: size, stride: stride, elem: elem, burst: burst}
	case "chase":
		base, err := f.sizeReq("base")
		if err != nil {
			return err
		}
		span, err := f.sizeReq("span")
		if err != nil {
			return err
		}
		nClusters, err := f.intVal("clusters", 32)
		if err != nil {
			return err
		}
		csize, err := f.size("csize", 24<<10)
		if err != nil {
			return err
		}
		nodes, err := f.intVal("nodes", 4096)
		if err != nil {
			return err
		}
		nodeSpan, err := f.size("span2", 16)
		if err != nil {
			return err
		}
		burst, err := f.intVal("burst", 4)
		if err != nil {
			return err
		}
		if nClusters < 1 || nodes < 1 || csize == 0 || span < csize*uint64(nClusters) {
			return fmt.Errorf("chase: need clusters >= 1, nodes >= 1, span >= clusters*csize")
		}
		r := newRNG(p.seed ^ 0xC4A5E ^ uint64(len(p.streams)))
		cl := scatterClusters(&r, addr.VA(base), span, nClusters, csize, addr.ChunkSize)
		order := make([]addr.VA, nodes)
		for i := range order {
			c := cl[r.intn(uint64(len(cl)))]
			order[i] = c + addr.VA(r.intn(csize/64)*64)
		}
		s = &chaseStream{order: order, burst: burst, span: nodeSpan}
	}
	p.streams = append(p.streams, weighted{s: s, weight: weight, store: store})
	return nil
}

func (p *specParser) build(name string, refs uint64) (trace.Reader, error) {
	if len(p.streams) == 0 {
		return nil, fmt.Errorf("workload %q: no data streams defined", name)
	}
	if refs == 0 {
		return nil, fmt.Errorf("workload %q: refs must be positive", name)
	}
	code := p.code
	if code == nil {
		code = newCodeWalker(codeBase, 4, 1024, 4096, 4<<10)
	}
	dpi := p.dpi
	if dpi == 0 {
		dpi = 0.35
	}
	return newProgram(p.seed, code, dpi, refs, p.streams), nil
}
