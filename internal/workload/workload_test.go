package workload

import (
	"errors"
	"io"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/policy"
	"twopage/internal/trace"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("want 12 programs, got %d", len(names))
	}
	wantOrder := []string{"li", "espresso", "fpppp", "doduc", "x11perf",
		"eqntott", "worm", "nasa7", "xnews", "matrix300", "tomcatv", "verilog"}
	for i, w := range wantOrder {
		if names[i] != w {
			t.Fatalf("order[%d] = %q, want %q", i, names[i], w)
		}
	}
	for _, s := range All() {
		if s.DefaultRefs == 0 || s.Description == "" || s.New == nil {
			t.Errorf("spec %q incomplete", s.Name)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get of unknown program should error")
	}
	s, err := Get("tomcatv")
	if err != nil || !s.LargeWS {
		t.Fatalf("tomcatv: %v, LargeWS=%v", err, s.LargeWS)
	}
	if s2, _ := Get("li"); s2.LargeWS {
		t.Fatal("li should be in the small class")
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("nope", 0)
}

func collect(t *testing.T, r trace.Reader, want uint64) []trace.Ref {
	t.Helper()
	var out []trace.Ref
	buf := make([]trace.Ref, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(out)) > want {
			t.Fatalf("generator exceeded requested length")
		}
	}
	if uint64(len(out)) != want {
		t.Fatalf("generated %d refs, want %d", len(out), want)
	}
	return out
}

func TestGeneratorsProduceExactLengths(t *testing.T) {
	for _, name := range Names() {
		r := MustNew(name, 10_000)
		collect(t, r, 10_000)
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := collect(t, MustNew(name, 20_000), 20_000)
		b := collect(t, MustNew(name, 20_000), 20_000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: ref %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

func TestRPIInPlausibleRange(t *testing.T) {
	// Every instruction is fetched, plus ~0.3-0.4 data refs: RPI in
	// roughly [1.25, 1.45] like SPARC traces of the era.
	for _, name := range Names() {
		refs := collect(t, MustNew(name, 100_000), 100_000)
		c, err := trace.CountRefs(trace.NewSliceReader(refs))
		if err != nil {
			t.Fatal(err)
		}
		rpi := c.RPI()
		if rpi < 1.2 || rpi > 1.5 {
			t.Errorf("%s: RPI = %.3f outside [1.2, 1.5]", name, rpi)
		}
		if c.Store == 0 {
			t.Errorf("%s: no stores generated", name)
		}
		if c.Load == 0 {
			t.Errorf("%s: no loads generated", name)
		}
	}
}

// Distinct 4KB footprint ordering should follow the paper's small/large
// classification: every LargeWS program touches more blocks than every
// small-class program over the same horizon.
func TestFootprintClasses(t *testing.T) {
	const n = 400_000
	foot := map[string]int{}
	for _, s := range All() {
		refs := collect(t, s.New(n), n)
		blocks := map[addr.PN]bool{}
		for _, r := range refs {
			blocks[addr.Block(r.Addr)] = true
		}
		foot[s.Name] = len(blocks)
	}
	minLarge, maxSmall := 1<<30, 0
	for _, s := range All() {
		if s.LargeWS {
			if foot[s.Name] < minLarge {
				minLarge = foot[s.Name]
			}
		} else if foot[s.Name] > maxSmall {
			maxSmall = foot[s.Name]
		}
	}
	if minLarge <= maxSmall {
		t.Errorf("class overlap: min large-class footprint %d <= max small-class %d (%v)",
			minLarge, maxSmall, foot)
	}
}

// worm is constructed to sit below the promotion threshold: the default
// policy must promote (almost) nothing, while matrix300 must promote
// heavily. This is the paper's espresso/worm-vs-matrix300 contrast.
func TestPromotionContrast(t *testing.T) {
	// Instruction fetches to small loopy code dominate raw reference
	// counts and (rightly) promote dense code chunks, so the contrast
	// that drives CPI lives in the data references: measure the fraction
	// of data refs that land on large pages.
	dataLargeFrac := func(name string) float64 {
		const n = 600_000
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(100_000))
		refs := collect(t, MustNew(name, n), n)
		var data, large uint64
		for _, r := range refs {
			res := pol.Assign(r.Addr)
			if r.Kind == trace.Instr {
				continue
			}
			data++
			if res.Page.Shift == addr.ChunkShift {
				large++
			}
		}
		return float64(large) / float64(data)
	}
	worm := dataLargeFrac("worm")
	m300 := dataLargeFrac("matrix300")
	if worm > 0.1 {
		t.Errorf("worm data large-page fraction = %.2f, want ~0", worm)
	}
	if m300 < 0.7 {
		t.Errorf("matrix300 data large-page fraction = %.2f, want high", m300)
	}
}

// tomcatv's seven arrays must share the large-page-index set for both 8
// and 16 sets while spreading under the small-page index.
func TestTomcatvSetGeometry(t *testing.T) {
	const spacing = 516 * kb
	for _, sets := range []uint{8, 16} {
		setBits := uint(3)
		if sets == 16 {
			setBits = 4
		}
		largeSets := map[uint64]bool{}
		smallSets := map[uint64]bool{}
		for k := 0; k < 7; k++ {
			base := dataBase + addr.VA(k*spacing)
			largeSets[addr.Index(base, addr.Shift32K, setBits)] = true
			smallSets[addr.Index(base, addr.Shift4K, setBits)] = true
		}
		if len(largeSets) != 1 {
			t.Errorf("sets=%d: arrays span %d large-index sets, want 1", sets, len(largeSets))
		}
		if len(smallSets) < 7 && sets == 8 {
			// With 8 sets the seven offsets k*4KB give 7 distinct sets.
			t.Errorf("sets=%d: arrays span only %d small-index sets", sets, len(smallSets))
		}
	}
}

func TestScatterClustersNonOverlapping(t *testing.T) {
	r := newRNG(7)
	cl := scatterClusters(&r, 0, 8*mb, 50, 16*kb, addr.ChunkSize)
	if len(cl) != 50 {
		t.Fatalf("got %d clusters", len(cl))
	}
	seen := map[addr.VA]bool{}
	for _, c := range cl {
		if !addr.Aligned(c, addr.ChunkShift) {
			t.Fatalf("cluster %#x not chunk-aligned", uint64(c))
		}
		if uint64(c) >= 8*mb {
			t.Fatalf("cluster %#x outside span", uint64(c))
		}
		if seen[c] {
			t.Fatalf("duplicate cluster at %#x", uint64(c))
		}
		seen[c] = true
	}
}

func TestCodeWalkerLoopsAndSwitches(t *testing.T) {
	w := newCodeWalker(0x1000, 2, 4, 6, 0x100)
	var got []addr.VA
	for i := 0; i < 14; i++ {
		got = append(got, w.next())
	}
	// Function 0 at 0x1000 body 4 instrs, visit 6: 0,4,8,c,0,4 then
	// switch to function 1 at 0x1100.
	want := []addr.VA{
		0x1000, 0x1004, 0x1008, 0x100c, 0x1000, 0x1004,
		0x1100, 0x1104, 0x1108, 0x110c, 0x1100, 0x1104,
		0x1000, 0x1004,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("instr %d = %#x, want %#x (full: %v)", i, uint64(got[i]), uint64(want[i]), got)
		}
	}
}

func TestStreamsStayInBounds(t *testing.T) {
	r := newRNG(3)
	checks := []struct {
		name string
		s    stream
		lo   addr.VA
		hi   addr.VA
	}{
		{"seq", &seqStream{base: 0x1000, size: 0x800, stride: 24}, 0x1000, 0x1800},
		{"colWalk", &colWalk{base: 0x4000, rows: 16, cols: 8, rowBytes: 256, elem: 8},
			0x4000, 0x4000 + 16*256},
		{"uniform", &uniformStream{base: 0x8000, size: 0x1000, align: 8}, 0x8000, 0x9000},
		{"roundRobin", &roundRobin{bases: []addr.VA{0x10000, 0x20000},
			size: 0x400, stride: 16, elem: 8, burst: 2}, 0x10000, 0x20400},
	}
	for _, c := range checks {
		for i := 0; i < 10000; i++ {
			va := c.s.next(&r)
			if va < c.lo || va >= c.hi {
				t.Fatalf("%s: address %#x outside [%#x, %#x)", c.name, uint64(va), uint64(c.lo), uint64(c.hi))
			}
		}
	}
}

func TestClusterStreamHotSkew(t *testing.T) {
	r := newRNG(5)
	clusters := make([]addr.VA, 10)
	for i := range clusters {
		clusters[i] = addr.VA(i * 0x10000)
	}
	s := &clusterStream{clusters: clusters, size: 0x1000, align: 8,
		hotFrac: 0.2, hotProb: 0.9, burstLen: 1}
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		va := s.next(&r)
		if va < 0x20000 { // clusters 0 and 1 are the hot 20%
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 {
		t.Errorf("hot fraction = %.2f, want >= 0.85", frac)
	}
}

func TestChaseStreamCyclesDeterministically(t *testing.T) {
	order := []addr.VA{0x1000, 0x5000, 0x3000}
	s := &chaseStream{order: order, burst: 2, span: 8}
	var got []addr.VA
	for i := 0; i < 8; i++ {
		got = append(got, s.next(nil))
	}
	want := []addr.VA{0x1000, 0x1008, 0x5000, 0x5008, 0x3000, 0x3008, 0x1000, 0x1008}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chase[%d] = %#x, want %#x", i, uint64(got[i]), uint64(want[i]))
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(1), newRNG(1)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRNG(2)
	same := true
	a = newRNG(1)
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func BenchmarkGenerateMatrix300(b *testing.B) {
	r := MustNew("matrix300", uint64(b.N)+1)
	buf := make([]trace.Ref, 8192)
	b.ResetTimer()
	n := 0
	for n < b.N {
		m, err := r.Read(buf)
		n += m
		if err != nil {
			break
		}
	}
}

func TestScatterClustersDensePacking(t *testing.T) {
	// Exactly-fitting configuration: 22 one-slot clusters in 22 slots.
	r := newRNG(3)
	cl := scatterClusters(&r, 0, 22*addr.ChunkSize, 22, 4*kb, addr.ChunkSize)
	seen := map[addr.VA]bool{}
	for _, c := range cl {
		if seen[c] {
			t.Fatalf("duplicate at %#x", uint64(c))
		}
		seen[c] = true
	}
	if len(seen) != 22 {
		t.Fatalf("placed %d clusters", len(seen))
	}
	// Multi-slot clusters in a tight span.
	r2 := newRNG(4)
	cl2 := scatterClusters(&r2, 0, 8*addr.ChunkSize, 4, 2*addr.ChunkSize, addr.ChunkSize)
	for i, a := range cl2 {
		for j, b := range cl2 {
			if i != j && a < b+addr.VA(2*addr.ChunkSize) && b < a+addr.VA(2*addr.ChunkSize) {
				t.Fatalf("clusters %d and %d overlap: %#x %#x", i, j, uint64(a), uint64(b))
			}
		}
	}
}

func TestScatterClustersImpossiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("impossible placement should panic")
		}
	}()
	r := newRNG(5)
	scatterClusters(&r, 0, 4*addr.ChunkSize, 5, addr.ChunkSize, addr.ChunkSize)
}
