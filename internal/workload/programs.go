package workload

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

// Spec describes one of the twelve modelled programs.
type Spec struct {
	// Name is the program name as used in the paper's tables.
	Name string
	// Description summarizes the behavioural model.
	Description string
	// DefaultRefs is the trace length used at scale 1.0.
	DefaultRefs uint64
	// LargeWS marks the paper's "large programs" class (working set
	// > 1MB, Section 5).
	LargeWS bool
	// New builds a fresh deterministic generator producing refs
	// references.
	New func(refs uint64) trace.Reader
	// File is the backing memory-mapped trace for workloads registered
	// with RegisterFile, nil for generated programs. A non-nil File is
	// what makes a workload shardable: sections of the mapping can be
	// simulated independently and merged (engine.RunSharded).
	File *trace.File
}

const (
	kb = 1 << 10
	mb = 1 << 20

	codeBase = addr.VA(0x0100_0000)
	dataBase = addr.VA(0x1000_0000)
	heapBase = addr.VA(0x2000_0000)
)

// specs lists the programs in the paper's order (ascending working-set
// size, Table 5.1): six "small" then six "large".
var specs = []Spec{
	{
		Name: "li",
		Description: "lisp interpreter: cons-cell segments (dense 16KB " +
			"arenas, chunk-aligned) plus scattered single-block objects; " +
			"sparse address space makes working set balloon with page size",
		DefaultRefs: 6_000_000,
		New:         newLi,
	},
	{
		Name: "espresso",
		Description: "logic minimizer: many single-block cube structures " +
			"(never promoted) plus one dense table; high temporal locality " +
			"in a small region, so two page sizes mostly add miss penalty",
		DefaultRefs: 5_000_000,
		New:         newEspresso,
	},
	{
		Name: "fpppp",
		Description: "quantum chemistry: very large instruction footprint " +
			"(dense code pages promote well) over a modest dense data set",
		DefaultRefs: 6_000_000,
		New:         newFpppp,
	},
	{
		Name: "doduc",
		Description: "Monte Carlo reactor simulation: many mid-size dense " +
			"arrays (6 of 8 blocks per chunk) with skewed strided access",
		DefaultRefs: 6_000_000,
		New:         newDoduc,
	},
	{
		Name: "x11perf",
		Description: "X server benchmark: vertical-line rasterization " +
			"(large-stride column walks over a framebuffer) plus copies; " +
			"dense regions promote and large pages win big",
		DefaultRefs: 7_000_000,
		New:         newX11perf,
	},
	{
		Name: "eqntott",
		Description: "truth-table generator: parallel sequential scans of " +
			"two bit-vector arrays with a random hash table",
		DefaultRefs: 8_000_000,
		New:         newEqntott,
	},
	{
		Name: "worm",
		Description: "simulation with 3-block (12KB) regions on 32KB " +
			"boundaries: just under the promotion threshold, so the " +
			"two-page scheme pays the penalty without using large pages",
		DefaultRefs: 8_000_000,
		LargeWS:     true,
		New:         newWorm,
	},
	{
		Name: "nasa7",
		Description: "seven numeric kernels: column walks, parallel " +
			"sequential sweeps and scattered butterflies over dense " +
			"multi-hundred-KB matrices; promotes heavily",
		DefaultRefs: 10_000_000,
		LargeWS:     true,
		New:         newNasa7,
	},
	{
		Name: "xnews",
		Description: "news/X server mix: streaming scans, a dense shared " +
			"region and scattered per-client state",
		DefaultRefs: 8_000_000,
		LargeWS:     true,
		New:         newXnews,
	},
	{
		Name: "matrix300",
		Description: "300x300 matrix multiply: column walk through B " +
			"touches a new 4KB page nearly every reference; dense " +
			"matrices promote fully, the paper's headline large-page win",
		DefaultRefs: 12_000_000,
		LargeWS:     true,
		New:         newMatrix300,
	},
	{
		Name: "tomcatv",
		Description: "vectorized mesh generation: seven 512KB arrays " +
			"spaced 516KB apart walked at a common index — all seven " +
			"collide in the large-page-index bits, thrashing any two-way " +
			"scheme that indexes with them (paper Section 5.2's anomaly)",
		DefaultRefs: 10_000_000,
		LargeWS:     true,
		New:         newTomcatv,
	},
	{
		Name: "verilog",
		Description: "event-driven gate simulation: pointer chasing over " +
			"a clustered netlist plus event queue scans and dense value " +
			"arrays; the largest working set",
		DefaultRefs: 9_000_000,
		LargeWS:     true,
		New:         newVerilog,
	},
}

// Names returns the program names in the paper's order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// All returns all specs in the paper's order.
func All() []Spec { return append([]Spec(nil), specs...) }

// Get returns the spec for name.
func Get(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown program %q", name)
}

// MustNew builds a generator for the named program, panicking on unknown
// names. refs == 0 uses the spec's default length.
func MustNew(name string, refs uint64) trace.Reader {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	if refs == 0 {
		refs = s.DefaultRefs
	}
	return s.New(refs)
}

// seedFor gives each program a fixed seed so traces are reproducible.
func seedFor(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func newLi(refs uint64) trace.Reader {
	r := newRNG(seedFor("li"))
	// 10 dense cons-cell arenas of 24KB (6 of 8 blocks: promoted with a
	// 32/24 = 1.33x size cost, keeping li's two-page working-set growth
	// near the paper's range).
	arenas := scatterClusters(&r, heapBase, 8*mb, 10, 24*kb, addr.ChunkSize)
	jitterWithinChunk(&r, arenas, 24*kb)
	// 40 scattered single-block objects, one per chunk, over 16MB: these
	// are what makes li's working set balloon with page size.
	singles := scatterClusters(&r, heapBase+addr.VA(16*mb), 16*mb, 40, 4*kb, addr.ChunkSize)
	jitterWithinChunk(&r, singles, 4*kb)
	code := newCodeWalker(codeBase, 6, 1024, 4096, 4*kb)
	return newProgram(seedFor("li"), code, 0.35, refs, []weighted{
		{s: &clusterStream{clusters: arenas, size: 24 * kb, align: 8,
			hotFrac: 0.3, hotProb: 0.75, burstLen: 12}, weight: 0.70, store: 0.30},
		{s: &clusterStream{clusters: singles, size: 4 * kb, align: 8,
			hotFrac: 0.25, hotProb: 0.8, burstLen: 6}, weight: 0.20, store: 0.15},
		{s: &uniformStream{base: dataBase, size: 8 * kb, align: 8}, weight: 0.10, store: 0.5},
	})
}

func newEspresso(refs uint64) trace.Reader {
	r := newRNG(seedFor("espresso"))
	// 48 single-block cube structures scattered one per chunk: high
	// temporal locality, never promoted.
	cubes := scatterClusters(&r, heapBase, 12*mb, 48, 4*kb, addr.ChunkSize)
	jitterWithinChunk(&r, cubes, 4*kb)
	code := newCodeWalker(codeBase, 4, 1024, 8192, 4*kb)
	return newProgram(seedFor("espresso"), code, 0.33, refs, []weighted{
		{s: &clusterStream{clusters: cubes, size: 4 * kb, align: 4,
			hotFrac: 0.2, hotProb: 0.85, burstLen: 24}, weight: 0.60, store: 0.25},
		// One dense 64KB table (2 chunks, promoted).
		{s: &uniformStream{base: dataBase, size: 64 * kb, align: 8}, weight: 0.25, store: 0.2},
		// A dense 96KB bit-matrix walked with a 96B stride.
		{s: &seqStream{base: dataBase + addr.VA(mb), size: 96 * kb, stride: 96}, weight: 0.15},
	})
}

func newFpppp(refs uint64) trace.Reader {
	// 32 functions of 1024 instructions each = 128KB of dense code: the
	// famous fpppp instruction footprint. Long visits keep locality high
	// but the footprint still cycles through all 32 pages.
	code := newCodeWalker(codeBase, 32, 1024, 3072, 4*kb)
	return newProgram(seedFor("fpppp"), code, 0.30, refs, []weighted{
		// Dense 256KB integral tables, hot-skewed.
		{s: &uniformStream{base: dataBase, size: 256 * kb, align: 8}, weight: 0.55, store: 0.25},
		// 64KB coefficient array scanned with a 64B stride.
		{s: &seqStream{base: dataBase + addr.VA(mb), size: 64 * kb, stride: 64}, weight: 0.35},
		{s: &uniformStream{base: dataBase + addr.VA(2*mb), size: 16 * kb, align: 8}, weight: 0.10, store: 0.5},
	})
}

func newDoduc(refs uint64) trace.Reader {
	r := newRNG(seedFor("doduc"))
	// 20 dense arrays of 24KB (6 of 8 blocks per chunk: above threshold).
	arrays := scatterClusters(&r, heapBase, 16*mb, 20, 24*kb, addr.ChunkSize)
	jitterWithinChunk(&r, arrays, 24*kb)
	singles := scatterClusters(&r, heapBase+addr.VA(24*mb), 8*mb, 24, 4*kb, addr.ChunkSize)
	jitterWithinChunk(&r, singles, 4*kb)
	code := newCodeWalker(codeBase, 16, 1024, 2048, 4*kb)
	return newProgram(seedFor("doduc"), code, 0.32, refs, []weighted{
		{s: &clusterStream{clusters: arrays, size: 24 * kb, align: 8,
			hotFrac: 0.35, hotProb: 0.7, burstLen: 10}, weight: 0.60, store: 0.3},
		{s: &clusterStream{clusters: singles, size: 4 * kb, align: 8,
			hotFrac: 0.3, hotProb: 0.8, burstLen: 8}, weight: 0.20, store: 0.2},
		{s: &seqStream{base: dataBase, size: 128 * kb, stride: 136}, weight: 0.20},
	})
}

func newX11perf(refs uint64) trace.Reader {
	code := newCodeWalker(codeBase, 8, 1024, 4096, 4*kb)
	return newProgram(seedFor("x11perf"), code, 0.38, refs, []weighted{
		// Vertical-line draws: 512 rows of a 1280-byte-pitch framebuffer
		// (640KB): consecutive stores 1280B apart → a new 4KB page every
		// ~3 references, a new 32KB page every ~26.
		{s: &colWalk{base: dataBase, rows: 512, cols: 320, rowBytes: 1280, elem: 4},
			weight: 0.30, store: 0.85},
		// Block copies: dense sequential scan.
		{s: &seqStream{base: dataBase + addr.VA(mb), size: 256 * kb, stride: 16},
			weight: 0.35, store: 0.5},
		// Request/GC state: small hot region.
		{s: &uniformStream{base: dataBase + addr.VA(2*mb), size: 24 * kb, align: 8},
			weight: 0.35, store: 0.3},
	})
}

func newEqntott(refs uint64) trace.Reader {
	code := newCodeWalker(codeBase, 4, 768, 8192, 4*kb)
	return newProgram(seedFor("eqntott"), code, 0.34, refs, []weighted{
		// cmppt: two 384KB pterm arrays compared in lockstep, 128B apart.
		{s: &roundRobin{
			bases: []addr.VA{dataBase, dataBase + addr.VA(mb)},
			size:  384 * kb, stride: 128, elem: 8, burst: 2},
			weight: 0.55, store: 0.1},
		// Hash lookups over a dense 128KB table.
		{s: &uniformStream{base: dataBase + addr.VA(4*mb), size: 128 * kb, align: 16},
			weight: 0.25},
		{s: &uniformStream{base: dataBase + addr.VA(5*mb), size: 16 * kb, align: 8},
			weight: 0.20, store: 0.4},
	})
}

func newWorm(refs uint64) trace.Reader {
	r := newRNG(seedFor("worm"))
	// 96 regions of exactly 3 blocks (12KB) on chunk boundaries: one
	// block below the promotion threshold, so the dynamic policy never
	// promotes them — the paper's "insufficient use of large pages".
	regions := scatterClusters(&r, heapBase, 24*mb, 96, 12*kb, addr.ChunkSize)
	jitterWithinChunk(&r, regions, 12*kb)
	code := newCodeWalker(codeBase, 6, 1024, 4096, 4*kb)
	return newProgram(seedFor("worm"), code, 0.35, refs, []weighted{
		{s: &clusterStream{clusters: regions, size: 12 * kb, align: 8,
			hotFrac: 0.25, hotProb: 0.6, burstLen: 18}, weight: 0.80, store: 0.3},
		// Misc state kept at 2 blocks so it, too, stays unpromoted.
		{s: &uniformStream{base: dataBase, size: 8 * kb, align: 8}, weight: 0.20, store: 0.4},
	})
}

func newNasa7(refs uint64) trace.Reader {
	code := newCodeWalker(codeBase, 12, 1024, 3072, 4*kb)
	return newProgram(seedFor("nasa7"), code, 0.36, refs, []weighted{
		// Column walk over a 448KB matrix (1024B pitch).
		{s: &colWalk{base: dataBase, rows: 448, cols: 128, rowBytes: 1024, elem: 8},
			weight: 0.30, store: 0.2},
		// Parallel sweeps over two 384KB arrays.
		{s: &roundRobin{
			bases: []addr.VA{dataBase + addr.VA(mb), dataBase + addr.VA(2*mb)},
			size:  384 * kb, stride: 64, elem: 8, burst: 2},
			weight: 0.30, store: 0.3},
		// FFT butterflies: scattered within a dense 256KB array.
		{s: &uniformStream{base: dataBase + addr.VA(3*mb), size: 256 * kb, align: 16},
			weight: 0.25, store: 0.3},
		{s: &uniformStream{base: dataBase + addr.VA(4*mb), size: 32 * kb, align: 8},
			weight: 0.15, store: 0.4},
	})
}

func newXnews(refs uint64) trace.Reader {
	r := newRNG(seedFor("xnews"))
	clients := scatterClusters(&r, heapBase, 16*mb, 48, 8*kb, addr.ChunkSize)
	jitterWithinChunk(&r, clients, 8*kb)
	code := newCodeWalker(codeBase, 16, 1024, 2048, 4*kb)
	return newProgram(seedFor("xnews"), code, 0.34, refs, []weighted{
		// Article/stream scans.
		{s: &seqStream{base: dataBase, size: 384 * kb, stride: 48}, weight: 0.25, store: 0.2},
		// Dense shared caches.
		{s: &uniformStream{base: dataBase + addr.VA(mb), size: 512 * kb, align: 16},
			weight: 0.20, store: 0.25},
		// Per-client scattered state (2 blocks per chunk: not promoted).
		{s: &clusterStream{clusters: clients, size: 8 * kb, align: 8,
			hotFrac: 0.25, hotProb: 0.7, burstLen: 12}, weight: 0.35, store: 0.3},
		// Rasterization bursts.
		{s: &colWalk{base: dataBase + addr.VA(3*mb), rows: 256, cols: 128, rowBytes: 640, elem: 4},
			weight: 0.20, store: 0.8},
	})
}

func newMatrix300(refs uint64) trace.Reader {
	const rowBytes = 300 * 8 // 2400
	const matBytes = 300 * rowBytes
	code := newCodeWalker(codeBase, 2, 512, 16384, 4*kb)
	return newProgram(seedFor("matrix300"), code, 0.40, refs, []weighted{
		// B column walk: the page-per-reference killer.
		{s: &colWalk{base: dataBase + addr.VA(mb), rows: 300, cols: 300,
			rowBytes: rowBytes, elem: 8}, weight: 0.45},
		// A row scan.
		{s: &seqStream{base: dataBase, size: matBytes, stride: 8}, weight: 0.40},
		// C writeback, slower scan.
		{s: &seqStream{base: dataBase + addr.VA(2*mb), size: matBytes, stride: 16},
			weight: 0.15, store: 0.9},
	})
}

func newTomcatv(refs uint64) trace.Reader {
	// Seven 512KB arrays spaced 516KB apart. 516KB = 16.125 × 32KB, so at
	// equal logical offsets all seven arrays share large-page-index bits
	// modulo any power-of-two set count up to 16 (k·516KB mod 256KB =
	// k·4KB, which never reaches bit 15), while their small-page-index
	// bits differ by k — exactly the geometry that makes tomcatv thrash
	// two-way TLBs indexed by the large page number but behave under the
	// small-page index (paper Table 5.1).
	const spacing = 516 * kb
	bases := make([]addr.VA, 7)
	for i := range bases {
		bases[i] = dataBase + addr.VA(i*spacing)
	}
	code := newCodeWalker(codeBase, 4, 1024, 8192, 4*kb)
	return newProgram(seedFor("tomcatv"), code, 0.36, refs, []weighted{
		{s: &roundRobin{bases: bases, size: 512 * kb, stride: 520, elem: 8, burst: 3},
			weight: 0.85, store: 0.35},
		{s: &uniformStream{base: dataBase + addr.VA(8*mb), size: 32 * kb, align: 8},
			weight: 0.15, store: 0.4},
	})
}

func newVerilog(refs uint64) trace.Reader {
	r := newRNG(seedFor("verilog"))
	// Netlist: 72 clusters of 24KB (promoted) holding 64B gate nodes;
	// the chase order hops between clusters like netlist connectivity.
	clusters := scatterClusters(&r, heapBase, 24*mb, 72, 24*kb, addr.ChunkSize)
	jitterWithinChunk(&r, clusters, 24*kb)
	nodes := make([]addr.VA, 4096)
	for i := range nodes {
		c := clusters[r.intn(uint64(len(clusters)))]
		nodes[i] = c + addr.VA(r.intn(24*kb/64)*64)
	}
	code := newCodeWalker(codeBase, 24, 1024, 2048, 4*kb)
	return newProgram(seedFor("verilog"), code, 0.33, refs, []weighted{
		{s: &chaseStream{order: nodes, burst: 4, span: 16}, weight: 0.45, store: 0.3},
		// Event queue.
		{s: &seqStream{base: dataBase, size: 128 * kb, stride: 32}, weight: 0.25, store: 0.5},
		// Dense value arrays.
		{s: &uniformStream{base: dataBase + addr.VA(mb), size: 768 * kb, align: 8},
			weight: 0.30, store: 0.3},
	})
}
