package workload

import (
	"errors"
	"io"
	"strings"
	"testing"

	"twopage/internal/trace"
)

// FuzzParse feeds arbitrary spec text to the workload parser: it must
// either return an error or a generator that produces exactly the
// requested number of references without panicking.
func FuzzParse(f *testing.F) {
	f.Add("uniform base=1M size=64K weight=1\n")
	f.Add(goodSpec)
	f.Add("code funcs=2 body=8 visit=16\ndpi 0.5\nseq base=0 size=1K stride=8 weight=1")
	f.Add("clusters base=1M span=1M n=4 size=4K weight=0.5")
	f.Add("robin bases=1M,2M size=4K stride=8 burst=2 weight=1")
	f.Add("seq base=1M size=0 stride=8 weight=1")
	f.Add("dpi nope")
	f.Add("#")
	f.Add("seed value=7\nuniform base=0 size=4K weight=0.1")

	f.Fuzz(func(t *testing.T, spec string) {
		// Cap pathological sizes the fuzzer might synthesize: huge spans
		// make cluster placement allocate big bitmaps. Skip specs
		// mentioning G sizes.
		if strings.ContainsAny(spec, "Gg") && strings.Contains(spec, "span") {
			t.Skip()
		}
		defer func() {
			if r := recover(); r != nil {
				// Panics are reserved for impossible cluster placement,
				// which Parse's validation should have rejected first.
				t.Fatalf("Parse panicked: %v (spec %q)", r, spec)
			}
		}()
		r, err := Parse("fuzz", 2_000, spec)
		if err != nil {
			return
		}
		buf := make([]trace.Ref, 256)
		var total int
		for {
			n, rerr := r.Read(buf)
			total += n
			if rerr != nil {
				if !errors.Is(rerr, io.EOF) {
					t.Fatalf("generator error: %v", rerr)
				}
				break
			}
			if total > 2_000 {
				t.Fatalf("generator exceeded requested refs")
			}
		}
		if total != 2_000 {
			t.Fatalf("generated %d refs, want 2000", total)
		}
	})
}
