package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeShift(t *testing.T) {
	cases := []struct {
		size  PageSize
		shift uint
	}{
		{Size4K, 12}, {Size8K, 13}, {Size16K, 14}, {Size32K, 15}, {Size64K, 16},
		{PageSize(1 << 20), 20},
	}
	for _, c := range cases {
		if got := c.size.Shift(); got != c.shift {
			t.Errorf("%v.Shift() = %d, want %d", c.size, got, c.shift)
		}
	}
}

func TestPageSizeValid(t *testing.T) {
	for _, s := range []PageSize{Size4K, Size8K, Size16K, Size32K, Size64K, 1, 2} {
		if !s.Valid() {
			t.Errorf("%d should be valid", s)
		}
	}
	for _, s := range []PageSize{0, 3, 4097, 12288} {
		if s.Valid() {
			t.Errorf("%d should be invalid", s)
		}
	}
}

func TestPageSizeString(t *testing.T) {
	cases := map[PageSize]string{
		Size4K:            "4KB",
		Size32K:           "32KB",
		PageSize(1 << 20): "1MB",
		PageSize(1 << 30): "1GB",
		PageSize(512):     "512B",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", uint64(s), got, want)
		}
	}
}

func TestPageOffsetBase(t *testing.T) {
	va := VA(0x12345678)
	if got := Page(va, Shift4K); got != PN(0x12345) {
		t.Errorf("Page = %#x, want 0x12345", got)
	}
	if got := Offset(va, Shift4K); got != 0x678 {
		t.Errorf("Offset = %#x, want 0x678", got)
	}
	if got := Base(va, Shift4K); got != VA(0x12345000) {
		t.Errorf("Base = %#x, want 0x12345000", got)
	}
	if !Aligned(0x8000, Shift32K) {
		t.Error("0x8000 should be 32KB-aligned")
	}
	if Aligned(0x9000, Shift32K) {
		t.Error("0x9000 should not be 32KB-aligned")
	}
}

func TestBlockChunkRelations(t *testing.T) {
	va := VA(0x2F123) // block 0x2F, chunk 0x5
	if Block(va) != 0x2F {
		t.Errorf("Block = %#x", Block(va))
	}
	if Chunk(va) != 0x5 {
		t.Errorf("Chunk = %#x", Chunk(va))
	}
	if ChunkOfBlock(0x2F) != 0x5 {
		t.Errorf("ChunkOfBlock = %#x", ChunkOfBlock(0x2F))
	}
	if FirstBlock(0x5) != 0x28 {
		t.Errorf("FirstBlock = %#x", FirstBlock(0x5))
	}
	if BlockInChunk(va) != 7 {
		t.Errorf("BlockInChunk = %d, want 7", BlockInChunk(va))
	}
	if BlockIndex(0x2F) != 7 {
		t.Errorf("BlockIndex = %d, want 7", BlockIndex(0x2F))
	}
}

// Property: a chunk contains exactly BlocksPerChunk consecutive blocks and
// every block maps back to that chunk.
func TestChunkBlockRoundTrip(t *testing.T) {
	f := func(c uint32) bool {
		chunk := PN(c)
		first := FirstBlock(chunk)
		for i := PN(0); i < BlocksPerChunk; i++ {
			if ChunkOfBlock(first+i) != chunk {
				return false
			}
			if BlockIndex(first+i) != uint(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Base/Offset decompose va exactly, for all studied shifts.
func TestBaseOffsetDecomposition(t *testing.T) {
	f := func(v uint64, pick uint8) bool {
		shifts := []uint{Shift4K, Shift8K, Shift16K, Shift32K, Shift64K}
		sh := shifts[int(pick)%len(shifts)]
		va := VA(v)
		return uint64(Base(va, sh))+Offset(va, sh) == uint64(va) &&
			Aligned(Base(va, sh), sh)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: page numbers are monotone in the address and consistent
// across shifts (the 32KB page number is the 4KB page number >> 3).
func TestPageShiftConsistency(t *testing.T) {
	f := func(v uint64) bool {
		va := VA(v)
		return Page(va, Shift32K) == Page(va, Shift4K)>>3 &&
			Page(va, Shift64K) == Page(va, Shift4K)>>4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndex(t *testing.T) {
	// 16-bit example from the paper's Figure 2.1: small page index uses
	// bit<12>, large page index uses bit<15>.
	va := VA(0x1000) // bit 12 set, bit 15 clear
	if got := Index(va, Shift4K, 1); got != 1 {
		t.Errorf("small index = %d, want 1", got)
	}
	if got := Index(va, Shift32K, 1); got != 0 {
		t.Errorf("large index = %d, want 0", got)
	}
	va = VA(0x8000) // bit 15 set, bit 12 clear
	if got := Index(va, Shift32K, 1); got != 1 {
		t.Errorf("large index of 0x8000 = %d, want 1", got)
	}
	if got := Index(va, Shift4K, 1); got != 0 {
		t.Errorf("small index of 0x8000 = %d, want 0", got)
	}
}

func TestSpanPages(t *testing.T) {
	cases := []struct {
		start  VA
		length uint64
		shift  uint
		want   uint64
	}{
		{0, 0, Shift4K, 0},
		{0, 1, Shift4K, 1},
		{0, 4096, Shift4K, 1},
		{0, 4097, Shift4K, 2},
		{4095, 2, Shift4K, 2},
		{0x7FFF, 2, Shift32K, 2},
		{0, 1 << 20, Shift32K, 32},
	}
	for _, c := range cases {
		if got := SpanPages(c.start, c.length, c.shift); got != c.want {
			t.Errorf("SpanPages(%#x,%d,%d) = %d, want %d",
				c.start, c.length, c.shift, got, c.want)
		}
	}
}
