package addr

import (
	"strings"
	"testing"
)

func TestSizeClassesValidation(t *testing.T) {
	cases := []struct {
		name    string
		sizes   []PageSize
		wantErr string
	}{
		{"empty", nil, "at least one"},
		{"one", []PageSize{Size4K}, ""},
		{"pair", []PageSize{Size4K, Size32K}, ""},
		{"trident", []PageSize{Size4K, Size2M, Size1G}, ""},
		{"four", []PageSize{Size4K, Size32K, Size256K, Size2M}, ""},
		{"too-many", []PageSize{Size4K, Size8K, Size16K, Size32K, Size64K}, "exceed the maximum"},
		{"not-pow2", []PageSize{Size4K, 3 << 14}, "not a power of two"},
		{"descending", []PageSize{Size32K, Size4K}, "strictly ascending"},
		{"duplicate", []PageSize{Size4K, Size4K}, "strictly ascending"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewSizeClasses(tc.sizes...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("NewSizeClasses(%v) = %v", tc.sizes, err)
				}
				if c.N() != len(tc.sizes) {
					t.Fatalf("N() = %d, want %d", c.N(), len(tc.sizes))
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewSizeClasses(%v) err = %v, want containing %q", tc.sizes, err, tc.wantErr)
			}
		})
	}
}

func TestSizeClassesAccessors(t *testing.T) {
	c := MustSizeClasses(Size4K, Size32K, Size256K)
	if got := c.String(); got != "4KB/32KB/256KB" {
		t.Errorf("String() = %q", got)
	}
	if c.Shift(0) != Shift4K || c.Shift(1) != Shift32K || c.Shift(2) != Shift256K {
		t.Errorf("shifts = %v", c.Shifts())
	}
	if c.TopShift() != Shift256K {
		t.Errorf("TopShift() = %d", c.TopShift())
	}
	if c.Fanout(1) != 8 || c.Fanout(2) != 8 {
		t.Errorf("Fanout = %d, %d, want 8, 8", c.Fanout(1), c.Fanout(2))
	}
	if c.BaseFanout(2) != 64 {
		t.Errorf("BaseFanout(2) = %d, want 64", c.BaseFanout(2))
	}
	// Comparable: equal hierarchies are ==.
	if c != MustShiftClasses(Shift4K, Shift32K, Shift256K) {
		t.Error("equivalent SizeClasses values are not ==")
	}
	if c == MustShiftClasses(Shift4K, Shift32K) {
		t.Error("different SizeClasses values are ==")
	}
}

func TestSizeClassesClassOf(t *testing.T) {
	c := MustSizeClasses(Size4K, Size32K, Size256K)
	cases := []struct {
		shift uint
		want  int
	}{
		{10, 0}, // below base clamps to 0 (legacy small rule)
		{Shift4K, 0},
		{Shift16K, 0},
		{Shift32K, 1},
		{Shift64K, 1},
		{Shift256K, 2},
		{Shift2M, 2}, // above top counts against the top class
	}
	for _, tc := range cases {
		if got := c.ClassOf(tc.shift); got != tc.want {
			t.Errorf("ClassOf(%d) = %d, want %d", tc.shift, got, tc.want)
		}
	}
}

func TestSizeClassesAddressing(t *testing.T) {
	c := MustSizeClasses(Size4K, Size32K, Size256K)
	va := VA(0x123456)
	if got, want := c.Page(va, 0), Block(va); got != want {
		t.Errorf("Page(va, 0) = %#x, want %#x", got, want)
	}
	if got, want := c.Page(va, 1), Chunk(va); got != want {
		t.Errorf("Page(va, 1) = %#x, want %#x", got, want)
	}
	if got, want := c.Base(va, 2), Base(va, Shift256K); got != want {
		t.Errorf("Base(va, 2) = %#x, want %#x", got, want)
	}
	// Page-number conversions between classes.
	b := c.Page(va, 0)
	if got, want := c.Up(b, 0, 2), c.Page(va, 2); got != want {
		t.Errorf("Up(block, 0, 2) = %#x, want %#x", got, want)
	}
	r2 := c.Page(va, 2)
	if got := c.FirstSub(r2, 2, 1); got != r2<<3 {
		t.Errorf("FirstSub(region, 2, 1) = %#x, want %#x", got, r2<<3)
	}
	if got, want := c.SubIndex(c.Page(va, 1), 2, 1), uint(c.Page(va, 1)&7); got != want {
		t.Errorf("SubIndex = %d, want %d", got, want)
	}
	if got, want := c.SpanPages(0x1000, 1<<16, 1), SpanPages(0x1000, 1<<16, Shift32K); got != want {
		t.Errorf("SpanPages = %d, want %d", got, want)
	}
}
