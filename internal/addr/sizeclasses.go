package addr

import (
	"fmt"
	"strings"
)

// Larger page shifts used by the N-size generalization (Trident-style
// 4KB/2MB/1GB hierarchies and the intermediate NAPOT sizes between
// them). The paper's own pair is 4KB/32KB; these constants let the
// N-size experiments and tests speak about modern hierarchies too.
const (
	// Shift128K is log2(128KB).
	Shift128K = 17
	// Shift256K is log2(256KB), the third level of the simulator's
	// 4KB/32KB/256KB ladder experiments (each level ×8, like the
	// paper's block→chunk step).
	Shift256K = 18
	// Shift2M is log2(2MB), the x86-64/RISC-V megapage shift.
	Shift2M = 21
	// Shift1G is log2(1GB), the x86-64/RISC-V gigapage shift.
	Shift1G = 30
)

// Page sizes matching the shifts above.
const (
	Size128K PageSize = 1 << Shift128K
	Size256K PageSize = 1 << Shift256K
	Size2M   PageSize = 1 << Shift2M
	Size1G   PageSize = 1 << Shift1G
)

// MaxSizeClasses bounds how many page sizes one configuration may
// support. Per-class counter arrays throughout the tree (tlb.Stats,
// mmu.Stats, the obs size<k> keys) are sized by it, so raising it is a
// schema change, not just a constant bump. Four levels covers every
// hierarchy the related systems use (4K/2M/1G plus one NAPOT step).
const MaxSizeClasses = 4

// SizeClasses is a validated, strictly ascending list of page shifts —
// the size hierarchy a TLB, policy, or page table is configured for.
// Class 0 is the base (smallest) page; higher classes are larger.
// The zero value means "no classes" (N() == 0); construct real values
// with NewSizeClasses/MustSizeClasses (by size) or NewShiftClasses
// (by shift). SizeClasses is comparable: two values are == iff they
// list the same shifts.
type SizeClasses struct {
	n      int
	shifts [MaxSizeClasses]uint8
}

// NewSizeClasses builds a hierarchy from page sizes, which must be
// valid powers of two in strictly ascending order, at most
// MaxSizeClasses of them. This is the constructor the paperlint powtwo
// analyzer checks at call sites with constant arguments.
func NewSizeClasses(sizes ...PageSize) (SizeClasses, error) {
	shifts := make([]uint, len(sizes))
	for i, s := range sizes {
		if !s.Valid() {
			return SizeClasses{}, fmt.Errorf("addr: size class %d: %d is not a power of two", i, uint64(s))
		}
		shifts[i] = s.Shift()
	}
	return NewShiftClasses(shifts...)
}

// MustSizeClasses is NewSizeClasses, panicking on error; for tables of
// known-good hierarchies.
func MustSizeClasses(sizes ...PageSize) SizeClasses {
	c, err := NewSizeClasses(sizes...)
	if err != nil {
		panic(err)
	}
	return c
}

// NewShiftClasses builds a hierarchy from page shifts (log2 sizes),
// which must be strictly ascending and within (0, 63).
func NewShiftClasses(shifts ...uint) (SizeClasses, error) {
	if len(shifts) == 0 {
		return SizeClasses{}, fmt.Errorf("addr: need at least one size class")
	}
	if len(shifts) > MaxSizeClasses {
		return SizeClasses{}, fmt.Errorf("addr: %d size classes exceed the maximum %d",
			len(shifts), MaxSizeClasses)
	}
	var c SizeClasses
	for i, s := range shifts {
		if s == 0 || s >= 63 {
			return SizeClasses{}, fmt.Errorf("addr: size class %d: shift %d out of range (0,63)", i, s)
		}
		if i > 0 && s <= uint(c.shifts[i-1]) {
			return SizeClasses{}, fmt.Errorf("addr: size classes must be strictly ascending: shift %d (class %d) after %d",
				s, i, c.shifts[i-1])
		}
		c.shifts[i] = uint8(s)
	}
	c.n = len(shifts)
	return c, nil
}

// MustShiftClasses is NewShiftClasses, panicking on error.
func MustShiftClasses(shifts ...uint) SizeClasses {
	c, err := NewShiftClasses(shifts...)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of size classes (0 for the zero value).
func (c SizeClasses) N() int { return c.n }

// Shift returns class k's page shift. It panics for out-of-range k,
// like a slice index.
func (c SizeClasses) Shift(k int) uint {
	if k < 0 || k >= c.n {
		panic(fmt.Sprintf("addr: size class %d out of range [0,%d)", k, c.n))
	}
	return uint(c.shifts[k])
}

// TopShift returns the largest class's shift.
func (c SizeClasses) TopShift() uint { return c.Shift(c.n - 1) }

// Size returns class k's page size in bytes.
func (c SizeClasses) Size(k int) PageSize { return PageSize(1) << c.Shift(k) }

// Shifts returns the shifts as a fresh slice, ascending.
func (c SizeClasses) Shifts() []uint {
	out := make([]uint, c.n)
	for i := range out {
		out[i] = uint(c.shifts[i])
	}
	return out
}

// ClassOf returns the largest class whose pages are no bigger than a
// page of the given shift — the class a page of that shift counts
// against. Shifts below class 0 clamp to 0, preserving the legacy
// two-size rule "shift >= LargeShift ⇒ large, else small".
func (c SizeClasses) ClassOf(shift uint) int {
	k := c.n - 1
	for k > 0 && shift < uint(c.shifts[k]) {
		k--
	}
	return k
}

// Page returns va's page number at class k.
func (c SizeClasses) Page(va VA, k int) PN { return Page(va, c.Shift(k)) }

// Base returns the first address of va's class-k page.
func (c SizeClasses) Base(va VA, k int) VA { return Base(va, c.Shift(k)) }

// SpanPages returns how many class-k pages the byte range
// [start, start+length) touches.
func (c SizeClasses) SpanPages(start VA, length uint64, k int) uint64 {
	return SpanPages(start, length, c.Shift(k))
}

// Fanout returns how many class-(k-1) pages one class-k page spans.
// k must be at least 1.
func (c SizeClasses) Fanout(k int) int {
	if k < 1 {
		panic("addr: Fanout needs class >= 1")
	}
	return 1 << (c.Shift(k) - c.Shift(k-1))
}

// BaseFanout returns how many class-0 pages one class-k page spans.
func (c SizeClasses) BaseFanout(k int) int {
	return 1 << (c.Shift(k) - c.Shift(0))
}

// Up converts a class-from page number to the class-to page containing
// it. to must be >= from.
func (c SizeClasses) Up(p PN, from, to int) PN {
	return p >> (c.Shift(to) - c.Shift(from))
}

// FirstSub returns the first (lowest) class-to page of the class-from
// page p. to must be <= from.
func (c SizeClasses) FirstSub(p PN, from, to int) PN {
	return p << (c.Shift(from) - c.Shift(to))
}

// SubIndex returns the index of class-to page p within its class-from
// parent. to must be <= from.
func (c SizeClasses) SubIndex(p PN, from, to int) uint {
	return uint(p) & uint(1<<(c.Shift(from)-c.Shift(to))-1)
}

// String lists the sizes smallest-first, e.g. "4KB/32KB/256KB" — the
// same style the two-size policy names used ("4KB/32KB").
func (c SizeClasses) String() string {
	if c.n == 0 {
		return "(no size classes)"
	}
	var b strings.Builder
	for k := 0; k < c.n; k++ {
		if k > 0 {
			b.WriteByte('/')
		}
		b.WriteString(c.Size(k).String())
	}
	return b.String()
}
