// Package addr provides virtual-address arithmetic for the two-page-size
// simulators: page numbers, offsets, blocks, chunks and TLB index
// extraction for arbitrary power-of-two page sizes.
//
// Terminology follows the paper (Talluri et al., ISCA 1992, Section 3.4):
//
//   - a *block* is the small page unit (4KB);
//   - a *chunk* is the large page unit (32KB), i.e. eight aligned blocks;
//   - a chunk is either mapped as one large page or as eight small pages.
//
// All pages are power-of-two sized and naturally aligned, so physical
// addresses can be formed by concatenation (Section 1 of the paper) and
// page numbers are simple shifts.
package addr

import "fmt"

// VA is a virtual address. The simulators use a flat 64-bit user address
// space; the traced SPARC programs of the paper used 32-bit addresses,
// which embed trivially.
type VA uint64

// Canonical shifts for the page sizes studied in the paper.
const (
	// Shift4K is log2(4KB), the small (base) page size of the paper.
	Shift4K = 12
	// Shift8K is log2(8KB).
	Shift8K = 13
	// Shift16K is log2(16KB).
	Shift16K = 14
	// Shift32K is log2(32KB), the large page size of the paper.
	Shift32K = 15
	// Shift64K is log2(64KB), the largest single page size in Figure 4.1.
	Shift64K = 16
)

// Block/chunk structure of the paper's page-size assignment policy
// (Section 3.4): the address space is treated as 32KB chunks of eight
// 4KB blocks.
const (
	BlockShift     = Shift4K
	ChunkShift     = Shift32K
	BlockSize      = 1 << BlockShift
	ChunkSize      = 1 << ChunkShift
	BlocksPerChunk = 1 << (ChunkShift - BlockShift) // 8
)

// PageSize is a page size in bytes. It is always a power of two.
type PageSize uint64

// Common page sizes.
const (
	Size4K  PageSize = 1 << Shift4K
	Size8K  PageSize = 1 << Shift8K
	Size16K PageSize = 1 << Shift16K
	Size32K PageSize = 1 << Shift32K
	Size64K PageSize = 1 << Shift64K
)

// Shift returns log2 of the page size.
func (s PageSize) Shift() uint {
	n := uint(0)
	for v := uint64(s); v > 1; v >>= 1 {
		n++
	}
	return n
}

// Valid reports whether s is a nonzero power of two.
func (s PageSize) Valid() bool {
	return s != 0 && s&(s-1) == 0
}

// MustPow2 returns s unchanged after asserting it is a nonzero power of
// two, panicking otherwise. It is the validation boundary the paperlint
// powtwo analyzer requires where a non-constant page size flows into a
// constructor: the model's address arithmetic is pure shifts and masks
// and is silently wrong for any other size.
func MustPow2(s PageSize) PageSize {
	if !s.Valid() {
		panic(fmt.Sprintf("addr: page size %d is not a power of two", uint64(s)))
	}
	return s
}

// String formats a page size as "4KB", "32KB", "1MB", etc.
func (s PageSize) String() string {
	switch {
	case s >= 1<<30 && s%(1<<30) == 0:
		return fmt.Sprintf("%dGB", s>>30)
	case s >= 1<<20 && s%(1<<20) == 0:
		return fmt.Sprintf("%dMB", s>>20)
	case s >= 1<<10 && s%(1<<10) == 0:
		return fmt.Sprintf("%dKB", s>>10)
	default:
		return fmt.Sprintf("%dB", uint64(s))
	}
}

// PN is a page number: a virtual address shifted right by the page shift.
// A PN is only meaningful together with the shift that produced it.
type PN uint64

// Page returns the page number of va for a page of the given shift.
func Page(va VA, shift uint) PN { return PN(va >> shift) }

// Offset returns the offset of va within its page of the given shift.
func Offset(va VA, shift uint) uint64 { return uint64(va) & (1<<shift - 1) }

// Base returns the first address of the page containing va.
func Base(va VA, shift uint) VA { return va &^ (1<<shift - 1) }

// Aligned reports whether va is aligned to a page of the given shift,
// i.e. whether it could be the base of such a page. The paper requires
// all pages to be aligned (Section 1).
func Aligned(va VA, shift uint) bool { return Offset(va, shift) == 0 }

// Block returns the 4KB block number of va.
func Block(va VA) PN { return Page(va, BlockShift) }

// Chunk returns the 32KB chunk number of va.
func Chunk(va VA) PN { return Page(va, ChunkShift) }

// ChunkOfBlock returns the chunk containing the given block.
func ChunkOfBlock(b PN) PN { return b >> (ChunkShift - BlockShift) }

// FirstBlock returns the first (lowest) block of chunk c.
func FirstBlock(c PN) PN { return c << (ChunkShift - BlockShift) }

// BlockInChunk returns the index (0..BlocksPerChunk-1) of va's block
// within its chunk.
func BlockInChunk(va VA) uint {
	return uint(uint64(va)>>BlockShift) & (BlocksPerChunk - 1)
}

// BlockIndex returns the index of block b within its chunk.
func BlockIndex(b PN) uint { return uint(b) & (BlocksPerChunk - 1) }

// Index extracts a TLB set index from va: setBits bits starting just
// above the page offset, i.e. the least significant bits of the page
// number. This is the conventional single-page-size TLB index; the paper's
// Section 2.2 discusses which shift to use when two sizes coexist.
func Index(va VA, pageShift, setBits uint) uint64 {
	return (uint64(va) >> pageShift) & (1<<setBits - 1)
}

// SpanPages returns how many pages of the given shift the byte range
// [start, start+length) touches. A zero length touches zero pages.
func SpanPages(start VA, length uint64, shift uint) uint64 {
	if length == 0 {
		return 0
	}
	first := uint64(start) >> shift
	last := (uint64(start) + length - 1) >> shift
	return last - first + 1
}
