package tracestat

import (
	"math"
	"strings"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

func TestAnalyzeSyntheticStream(t *testing.T) {
	// Build a stream with known structure: 10 instruction fetches on one
	// page, 3 data blocks in chunk 0, 1 data block in chunk 5.
	var refs []trace.Ref
	for i := 0; i < 10; i++ {
		refs = append(refs, trace.Ref{Addr: 0x100000 + addr.VA(4*i), Kind: trace.Instr})
	}
	for i := 0; i < 3; i++ {
		refs = append(refs, trace.Ref{Addr: addr.VA(i * addr.BlockSize), Kind: trace.Load})
	}
	refs = append(refs, trace.Ref{Addr: addr.VA(5*addr.ChunkSize + 64), Kind: trace.Store})

	rep, err := Analyze(trace.NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts.Instr != 10 || rep.Counts.Load != 3 || rep.Counts.Store != 1 {
		t.Fatalf("counts: %+v", rep.Counts)
	}
	// Footprint: 1 code block + 3 + 1 data blocks.
	if rep.Blocks != 5 {
		t.Fatalf("blocks = %d", rep.Blocks)
	}
	// Chunks: code chunk, chunk 0, chunk 5.
	if rep.Chunks != 3 {
		t.Fatalf("chunks = %d", rep.Chunks)
	}
	// Density: two chunks with 1 block (code, chunk 5), one with 3.
	if rep.ChunkDensity[1] != 2 || rep.ChunkDensity[3] != 1 {
		t.Fatalf("density: %v", rep.ChunkDensity)
	}
	if got := rep.MeanDensity(); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Fatalf("mean density = %v", got)
	}
	// No chunk reaches the threshold of 4.
	if rep.PromotableFraction(4) != 0 {
		t.Fatalf("promotable = %v", rep.PromotableFraction(4))
	}
	if rep.PromotableFraction(1) != 1 {
		t.Fatalf("promotable@1 = %v", rep.PromotableFraction(1))
	}
	if rep.FootprintBytes != 5*addr.BlockSize {
		t.Fatalf("footprint = %d", rep.FootprintBytes)
	}
}

func TestStrideAndSequentiality(t *testing.T) {
	var refs []trace.Ref
	// 100 sequential 8-byte-stride loads, then one 1MB jump, then 100 more.
	for i := 0; i < 100; i++ {
		refs = append(refs, trace.Ref{Addr: addr.VA(8 * i), Kind: trace.Load})
	}
	for i := 0; i < 100; i++ {
		refs = append(refs, trace.Ref{Addr: addr.VA(1<<20 + 8*i), Kind: trace.Load})
	}
	rep, err := Analyze(trace.NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	// 199 strides: 198 of 8 bytes, 1 of ~1MB.
	if rep.DataStride.N() != 199 {
		t.Fatalf("strides = %d", rep.DataStride.N())
	}
	if got := rep.SeqFraction(); got < 0.98 {
		t.Fatalf("seq fraction = %v", got)
	}
	// Two sequential runs recorded.
	if rep.DataRun.N() != 2 {
		t.Fatalf("runs = %d (%s)", rep.DataRun.N(), rep.DataRun.String())
	}
	if rep.DataRun.Mean() < 90 {
		t.Fatalf("mean run = %v", rep.DataRun.Mean())
	}
}

func TestEmptyStream(t *testing.T) {
	rep, err := Analyze(trace.NewSliceReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 0 || rep.Chunks != 0 || rep.MeanDensity() != 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.PromotableFraction(4) != 0 || rep.SeqFraction() != 0 {
		t.Fatal("empty fractions should be 0")
	}
}

// The analyzer must explain the workload contrasts the experiments rely
// on: worm's chunks sit below the promotion threshold, matrix300's are
// dense and promotable.
func TestWorkloadDensityContrast(t *testing.T) {
	analyze := func(name string) *Report {
		rep, err := Analyze(workload.MustNew(name, 400_000))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	worm := analyze("worm")
	m300 := analyze("matrix300")
	if p := worm.PromotableFraction(4); p > 0.15 {
		t.Errorf("worm promotable fraction = %v, want ~0 (3-block regions)", p)
	}
	if p := m300.PromotableFraction(4); p < 0.8 {
		t.Errorf("matrix300 promotable fraction = %v, want ~1 (dense matrices)", p)
	}
	// worm's modal density is 3 blocks/chunk by construction.
	peak, peakK := uint64(0), 0
	for k := 1; k <= 8; k++ {
		if worm.ChunkDensity[k] > peak {
			peak, peakK = worm.ChunkDensity[k], k
		}
	}
	if peakK != 3 {
		t.Errorf("worm modal density = %d blocks/chunk, want 3 (%v)", peakK, worm.ChunkDensity)
	}
}

func TestReportWriteTo(t *testing.T) {
	rep, err := Analyze(workload.MustNew("li", 50_000))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := rep.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"references:", "footprint:", "chunk density:", "sequentiality:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
