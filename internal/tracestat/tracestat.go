// Package tracestat characterizes reference streams in the terms the
// paper's analysis uses: footprint at both page sizes, spatial density
// of 32KB chunks (which directly predicts what the Section 3.4
// promotion policy will do), data-stride distribution, and
// sequentiality. cmd/traceinfo exposes it on the command line; the
// experiment write-ups in EXPERIMENTS.md lean on it to explain why each
// program behaves as it does.
package tracestat

import (
	"fmt"
	"io"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/stats"
	"twopage/internal/trace"
)

// Report summarizes one reference stream.
type Report struct {
	// Counts tallies references per kind.
	Counts trace.Count
	// Blocks and Chunks are the distinct 4KB / 32KB footprints.
	Blocks uint64
	Chunks uint64
	// FootprintBytes is Blocks × 4KB: the touched memory.
	FootprintBytes uint64
	// ChunkDensity[k] counts chunks with exactly k of their 8 blocks
	// touched (k = 1..8); index 0 is unused. The promotion policy
	// promotes chunks reaching the threshold, so this distribution
	// predicts large-page usage.
	ChunkDensity [addr.BlocksPerChunk + 1]uint64
	// DataStride is the histogram of |delta| between successive data
	// reference addresses.
	DataStride stats.LogHist
	// InstrStride is the same for instruction fetches.
	InstrStride stats.LogHist
	// DataRun summarizes run lengths of monotone small-stride data
	// accesses (a sequentiality measure).
	DataRun stats.Summary
}

// SeqFraction returns the fraction of data references whose stride is
// below 128 bytes — near-sequential traffic.
func (r *Report) SeqFraction() float64 { return r.DataStride.FractionBelow(128) }

// PromotableFraction returns the fraction of touched chunks whose final
// density meets the given promotion threshold. With the paper's
// threshold of 4 this approximates (from whole-trace footprints) how
// much of the address space the dynamic policy can move to large pages.
func (r *Report) PromotableFraction(threshold int) float64 {
	if r.Chunks == 0 {
		return 0
	}
	var n uint64
	for k := threshold; k <= addr.BlocksPerChunk; k++ {
		n += r.ChunkDensity[k]
	}
	return float64(n) / float64(r.Chunks)
}

// MeanDensity returns the average touched-blocks-per-chunk.
func (r *Report) MeanDensity() float64 {
	if r.Chunks == 0 {
		return 0
	}
	var sum uint64
	for k := 1; k <= addr.BlocksPerChunk; k++ {
		sum += uint64(k) * r.ChunkDensity[k]
	}
	return float64(sum) / float64(r.Chunks)
}

// Analyze consumes the stream and builds a Report.
func Analyze(r trace.Reader) (*Report, error) {
	rep := &Report{}
	blocks := make(map[addr.PN]bool)
	var lastData, lastInstr addr.VA
	haveData, haveInstr := false, false
	run := 0.0
	_, err := trace.Drain(r, func(batch []trace.Ref) {
		for _, ref := range batch {
			switch ref.Kind {
			case trace.Instr:
				rep.Counts.Instr++
				if haveInstr {
					rep.InstrStride.Add(absDelta(ref.Addr, lastInstr))
				}
				lastInstr = ref.Addr
				haveInstr = true
			default:
				if ref.Kind == trace.Load {
					rep.Counts.Load++
				} else {
					rep.Counts.Store++
				}
				if haveData {
					d := absDelta(ref.Addr, lastData)
					rep.DataStride.Add(d)
					if d <= 128 {
						run++
					} else if run > 0 {
						rep.DataRun.Add(run)
						run = 0
					}
				}
				lastData = ref.Addr
				haveData = true
			}
			blocks[addr.Block(ref.Addr)] = true
		}
	})
	if err != nil {
		return nil, err
	}
	if run > 0 {
		rep.DataRun.Add(run)
	}
	rep.Blocks = uint64(len(blocks))
	rep.FootprintBytes = rep.Blocks * addr.BlockSize
	perChunk := make(map[addr.PN]int)
	for b := range blocks {
		perChunk[addr.ChunkOfBlock(b)]++
	}
	rep.Chunks = uint64(len(perChunk))
	for _, k := range perChunk {
		rep.ChunkDensity[k]++
	}
	return rep, nil
}

func absDelta(a, b addr.VA) uint64 {
	if a >= b {
		return uint64(a - b)
	}
	return uint64(b - a)
}

// WriteTo renders the report as text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "references:      %d (I %d, L %d, S %d; RPI %.3f)\n",
		r.Counts.Total(), r.Counts.Instr, r.Counts.Load, r.Counts.Store, r.Counts.RPI())
	fmt.Fprintf(&b, "footprint:       %d blocks (4KB) = %.2f MB over %d chunks (32KB)\n",
		r.Blocks, float64(r.FootprintBytes)/(1<<20), r.Chunks)
	fmt.Fprintf(&b, "chunk density:   mean %.2f blocks/chunk; promotable@4: %.0f%%\n",
		r.MeanDensity(), 100*r.PromotableFraction(addr.BlocksPerChunk/2))
	fmt.Fprintf(&b, "density histo:   ")
	for k := 1; k <= addr.BlocksPerChunk; k++ {
		fmt.Fprintf(&b, "%d:%d ", k, r.ChunkDensity[k])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "data strides:    %s\n", r.DataStride.String())
	fmt.Fprintf(&b, "sequentiality:   %.0f%% of data refs move < 128B\n", 100*r.SeqFraction())
	fmt.Fprintf(&b, "seq run length:  %s\n", r.DataRun.String())
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
