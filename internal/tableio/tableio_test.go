package tableio

import (
	"math"
	"strings"
	"testing"
)

func TestWriteTo(t *testing.T) {
	tb := New("My Table", "name", "value")
	tb.Row("alpha", "1.00")
	tb.Row("b", "22.50")
	tb.Note("note %d", 1)
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"My Table", "name", "value", "alpha", "22.50", "note 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Data lines must align: "alpha" padded to width 5.
	if !strings.HasPrefix(lines[3], "alpha  ") {
		t.Errorf("row not aligned: %q", lines[3])
	}
	if tb.Rows() != 2 || tb.Cell(1, 0) != "b" {
		t.Error("accessors wrong")
	}
}

func TestRowPadding(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Row("x")
	if tb.Cell(0, 2) != "" {
		t.Error("short row should be padded")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-long row should panic")
		}
	}()
	tb.Row("1", "2", "3", "4")
}

func TestCSV(t *testing.T) {
	tb := New("t", "name", "note")
	tb.Row("a,b", `say "hi"`)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestF(t *testing.T) {
	if F(1.234, 2) != "1.23" {
		t.Error("F format")
	}
	if F(math.NaN(), 2) != "-" {
		t.Error("NaN")
	}
	if F(math.Inf(1), 2) != "inf" || F(math.Inf(-1), 2) != "-inf" {
		t.Error("Inf")
	}
}

func TestPct(t *testing.T) {
	if Pct(700) != "+700%" {
		t.Errorf("Pct(700) = %q", Pct(700))
	}
	if Pct(-12.4) != "-12%" {
		t.Errorf("Pct(-12.4) = %q", Pct(-12.4))
	}
	if Pct(math.Inf(1)) != "inf" {
		t.Error("Pct inf")
	}
}
