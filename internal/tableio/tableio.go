// Package tableio renders the experiment results as aligned ASCII
// tables (the form the paper's tables take) and as CSV for plotting.
package tableio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is an ordered collection of rows under fixed headers.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row. Rows shorter than the header are padded; longer
// rows panic (a bug in the caller).
func (t *Table) Row(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("tableio: row has %d cells for %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col), for tests.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// CSV renders the table as comma-separated values (headers first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Records returns the rows as header-keyed maps — the machine-readable
// form of the table, also used by JSON.
func (t *Table) Records() []map[string]string {
	out := make([]map[string]string, len(t.rows))
	for i, r := range t.rows {
		rec := make(map[string]string, len(t.headers))
		for j, h := range t.headers {
			rec[h] = r[j]
		}
		out[i] = rec
	}
	return out
}

// jsonTable is the wire form of a table.
type jsonTable struct {
	Title   string              `json:"title"`
	Columns []string            `json:"columns"`
	Rows    []map[string]string `json:"rows"`
	Notes   []string            `json:"notes,omitempty"`
}

// JSON renders the table as one indented JSON document: title, column
// order, header-keyed rows, and footnotes.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonTable{
		Title:   t.Title,
		Columns: t.Headers(),
		Rows:    t.Records(),
		Notes:   append([]string(nil), t.notes...),
	})
}

// F formats a float with the given decimal places, rendering NaN and
// ±Inf readably.
func F(v float64, prec int) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return fmt.Sprintf("%.*f", prec, v)
	}
}

// Pct formats a percentage with sign, e.g. "+700%", "-12%".
func Pct(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%+.0f%%", v)
}

// Headers returns the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }
