package tworef_test

import (
	"fmt"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/pagetable"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/tworef"
)

// xorshift is the test's deterministic reference-stream generator.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// addrStream generates a deterministic mixture of dense scans (which
// drive promotions), a warm medium region, and sparse background noise
// (which drives window expiry and demotions).
func addrStream(n int, seed uint64) []addr.VA {
	rng := xorshift(seed)
	vas := make([]addr.VA, n)
	var scan uint64
	for i := range vas {
		switch rng.next() % 10 {
		case 0, 1, 2, 3, 4: // dense scan: walks chunk after chunk
			scan += addr.BlockSize / 4
			vas[i] = addr.VA(scan % (1 << 22))
		case 5, 6, 7: // warm 2MB region
			vas[i] = addr.VA(1<<24 + rng.next()%(1<<21))
		default: // sparse 64MB background
			vas[i] = addr.VA(rng.next() % (1 << 26))
		}
	}
	return vas
}

// TestPolicyDifferential pins the N-size ladder behind the TwoSize shim
// against the pre-generalization policy, event for event: every Assign
// must return an identical Result (page, event, chunk, level) and the
// final counters must agree, across window/threshold/demotion/shift
// variants.
func TestPolicyDifferential(t *testing.T) {
	cases := []struct {
		name string
		cfg  policy.TwoSizeConfig
	}{
		{"paper default", policy.TwoSizeConfig{T: 2000, Threshold: 4, Demote: true, LargeShift: addr.Shift32K}},
		{"no demotion", policy.TwoSizeConfig{T: 2000, Threshold: 4, Demote: false, LargeShift: addr.Shift32K}},
		{"16KB large pages", policy.TwoSizeConfig{T: 1500, Threshold: 2, Demote: true, LargeShift: 14}},
		{"64KB large pages", policy.TwoSizeConfig{T: 3000, Threshold: 8, Demote: true, LargeShift: 16}},
		{"promote on first touch", policy.TwoSizeConfig{T: 2000, Threshold: 1, Demote: true, LargeShift: addr.Shift32K}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live := policy.NewTwoSize(tc.cfg)
			ref := tworef.NewTwoSize(tc.cfg)
			for i, va := range addrStream(200_000, 0x5DEECE66D) {
				got, want := live.Assign(va), ref.Assign(va)
				if got != want {
					t.Fatalf("step %d va %#x: live %+v, ref %+v", i, uint64(va), got, want)
				}
			}
			ls, rs := live.Stats(), ref.Stats()
			if ls.Refs != rs.Refs || ls.LargeRefs != rs.LargeRefs || ls.SmallRefs != rs.SmallRefs ||
				ls.Promotions != rs.Promotions || ls.Demotions != rs.Demotions ||
				ls.LargeChunks != rs.LargeChunks {
				t.Fatalf("final stats diverge:\nlive %+v\nref  %+v", ls, rs)
			}
			for c := addr.PN(0); c < 1<<(26-tc.cfg.LargeShift); c++ {
				if live.IsLarge(c) != ref.IsLarge(c) {
					t.Fatalf("chunk %d largeness diverges", c)
				}
			}
		})
	}
}

// TestTLBDifferential pins the per-class TLB rewrite against the legacy
// two-size implementation: identical hit/miss decisions on every access,
// identical invalidation counts, and identical final statistics, across
// index schemes, associativities, replacement policies and non-default
// shift pairs (the deprecated SmallShift/LargeShift configuration path).
func TestTLBDifferential(t *testing.T) {
	cases := []struct {
		name string
		live tlb.Config
		ref  tworef.Config
	}{
		{"16-entry FA",
			tlb.Config{Entries: 16, Ways: 16},
			tworef.Config{Entries: 16, Ways: 16}},
		{"16-entry 2-way exact",
			tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact},
			tworef.Config{Entries: 16, Ways: 2, Index: tworef.IndexExact}},
		{"32-entry 2-way large-index",
			tlb.Config{Entries: 32, Ways: 2, Index: tlb.IndexLarge},
			tworef.Config{Entries: 32, Ways: 2, Index: tworef.IndexLarge}},
		{"16-entry 4-way small-index",
			tlb.Config{Entries: 16, Ways: 4, Index: tlb.IndexSmall},
			tworef.Config{Entries: 16, Ways: 4, Index: tworef.IndexSmall}},
		{"FIFO replacement",
			tlb.Config{Entries: 16, Ways: 2, Repl: tlb.FIFO},
			tworef.Config{Entries: 16, Ways: 2, Repl: tworef.FIFO}},
		{"random replacement, same seed",
			tlb.Config{Entries: 16, Ways: 2, Repl: tlb.Random, Seed: 7},
			tworef.Config{Entries: 16, Ways: 2, Repl: tworef.Random, Seed: 7}},
		{"deprecated 8KB/64KB shifts",
			tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact, SmallShift: 13, LargeShift: 16},
			tworef.Config{Entries: 16, Ways: 2, Index: tworef.IndexExact, SmallShift: 13, LargeShift: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live, err := tlb.New(tc.live)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := tworef.New(tc.ref)
			if err != nil {
				t.Fatal(err)
			}
			largeShift := tc.ref.LargeShift
			if largeShift == 0 {
				largeShift = addr.Shift32K
			}
			pol := tworef.NewTwoSize(policy.TwoSizeConfig{
				T: 2000, Threshold: 4, Demote: true, LargeShift: largeShift,
			})
			bpc := addr.PN(1) << (largeShift - addr.BlockShift)
			for i, va := range addrStream(200_000, 0xB5297A4D) {
				res := pol.Assign(va)
				switch res.Event {
				case policy.EventPromote:
					first := res.Chunk * bpc
					for b := addr.PN(0); b < bpc; b++ {
						p := policy.Page{Number: first + b, Shift: addr.BlockShift}
						if gi, ri := live.Invalidate(p), ref.Invalidate(p); gi != ri {
							t.Fatalf("step %d: invalidate %+v: live %d, ref %d", i, p, gi, ri)
						}
					}
				case policy.EventDemote:
					p := policy.Page{Number: res.Chunk, Shift: largeShift}
					if gi, ri := live.Invalidate(p), ref.Invalidate(p); gi != ri {
						t.Fatalf("step %d: invalidate %+v: live %d, ref %d", i, p, gi, ri)
					}
				}
				if got, want := live.Access(va, res.Page), ref.Access(va, res.Page); got != want {
					t.Fatalf("step %d va %#x page %+v: live hit=%t, ref hit=%t",
						i, uint64(va), res.Page, got, want)
				}
				if i%50_000 == 49_999 {
					live.Flush()
					ref.Flush()
				}
			}
			ls, rs := live.Stats(), ref.Stats()
			diff := map[string][2]uint64{
				"accesses":      {ls.Accesses, rs.Accesses},
				"smallHits":     {ls.SmallHits(), rs.SmallHits},
				"largeHits":     {ls.LargeHits(), rs.LargeHits},
				"smallMisses":   {ls.SmallMisses(), rs.SmallMisses},
				"largeMisses":   {ls.LargeMisses(), rs.LargeMisses},
				"invalidations": {ls.Invalidations, rs.Invalidations},
				"reprobes":      {ls.Reprobes(), rs.Reprobes()},
			}
			for name, v := range diff {
				if v[0] != v[1] {
					t.Errorf("%s: live %d, ref %d", name, v[0], v[1])
				}
			}
		})
	}
}

// TestPageTableDifferential drives the span-arena NTable (behind the
// two-size Table shim) and the legacy dense-chunk table through one
// mirrored pseudorandom operation mix, comparing every walk, every
// error outcome, and the final statistics.
func TestPageTableDifferential(t *testing.T) {
	live := pagetable.New()
	ref := tworef.NewTable()
	rng := xorshift(0x2545F4914F6CDD1D)
	const chunks = 64
	var frame addr.PN
	newFrame := func() addr.PN { frame++; return frame }
	for i := 0; i < 150_000; i++ {
		op := rng.next() % 16
		c := addr.PN(rng.next() % chunks)
		b := c*addr.BlocksPerChunk + addr.PN(rng.next()%addr.BlocksPerChunk)
		va := addr.VA(uint64(b)<<addr.BlockShift | rng.next()%addr.BlockSize)
		switch {
		case op < 5: // map small
			f := newFrame()
			ge, re := live.MapSmall(b, f), ref.MapSmall(b, f)
			if (ge == nil) != (re == nil) {
				t.Fatalf("op %d MapSmall(%d): live err %v, ref err %v", i, b, ge, re)
			}
		case op < 7: // map large
			f := newFrame()
			ge, re := live.MapLarge(c, f), ref.MapLarge(c, f)
			if (ge == nil) != (re == nil) {
				t.Fatalf("op %d MapLarge(%d): live err %v, ref err %v", i, c, ge, re)
			}
		case op < 9: // unmap
			if g, r := live.Unmap(va), ref.Unmap(va); g != r {
				t.Fatalf("op %d Unmap(%#x): live %t, ref %t", i, uint64(va), g, r)
			}
		case op < 14: // lookup
			gp, gw := live.Lookup(va)
			rp, rw := ref.Lookup(va)
			if gp.Frame != rp.Frame || gp.Valid != rp.Valid || gp.Large != rp.Large {
				t.Fatalf("op %d Lookup(%#x): live PTE %+v, ref PTE %+v", i, uint64(va), gp, rp)
			}
			if gw.Found != rw.Found || gw.Levels != rw.Levels ||
				gw.Cycles != rw.Cycles || gw.Large != rw.Large {
				t.Fatalf("op %d Lookup(%#x): live walk %+v, ref walk %+v", i, uint64(va), gw, rw)
			}
		case op < 15: // promote
			f := newFrame()
			gf, gc, ge := live.Promote(c, f)
			rf, rc, re := ref.Promote(c, f)
			if (ge == nil) != (re == nil) || gc != rc {
				t.Fatalf("op %d Promote(%d): live (%d, %v), ref (%d, %v)", i, c, gc, ge, rc, re)
			}
			if fmt.Sprint(gf) != fmt.Sprint(rf) {
				t.Fatalf("op %d Promote(%d): freed lists diverge: live %v, ref %v", i, c, gf, rf)
			}
		default: // demote
			var frames [addr.BlocksPerChunk]addr.PN
			for j := range frames {
				frames[j] = newFrame()
			}
			gf, ge := live.Demote(c, frames)
			rf, re := ref.Demote(c, frames)
			if (ge == nil) != (re == nil) || gf != rf {
				t.Fatalf("op %d Demote(%d): live (%d, %v), ref (%d, %v)", i, c, gf, ge, rf, re)
			}
		}
		if g, r := live.MappedChunks(), ref.MappedChunks(); g != r {
			t.Fatalf("op %d: mapped chunks diverge: live %d, ref %d", i, g, r)
		}
	}
	gs, rs := live.Stats(), ref.Stats()
	if gs.Lookups != rs.Lookups || gs.Misses != rs.Misses ||
		gs.Promotions != rs.Promotions || gs.Demotions != rs.Demotions ||
		gs.CopiedBytes != rs.CopiedBytes {
		t.Fatalf("final stats diverge:\nlive %+v\nref  %+v", gs, rs)
	}
}
