// Package tworef preserves the pre-generalization two-page-size
// implementations of the TLB, the dynamic assignment policy, and the
// page table, copied from internal/{tlb,policy,pagetable} at the point
// the N-size core replaced them. Like internal/kernelref for the hash
// kernels, this package exists solely as a differential-test oracle:
// the shimmed two-size constructors in the live packages must reproduce
// these reference implementations event-for-event when configured with
// exactly {4KB, 32KB} (or any legacy small/large pair).
//
// The code intentionally keeps the legacy Small*/Large* naming — that
// is the surface being pinned. The deprecation grep-gate exempts this
// package for the same reason.
package tworef

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/htab"
	"twopage/internal/policy"
	"twopage/internal/window"
)

// ---------------------------------------------------------------------------
// Reference TLB (legacy internal/tlb.SetAssoc)

// IndexScheme mirrors the legacy tlb.IndexScheme values.
type IndexScheme uint8

// Index schemes.
const (
	IndexSmall IndexScheme = iota
	IndexLarge
	IndexExact
)

// Replacement mirrors the legacy tlb.Replacement values.
type Replacement uint8

// Replacement policies.
const (
	LRU Replacement = iota
	FIFO
	Random
)

// Stats is the legacy two-size counter layout.
type Stats struct {
	Accesses      uint64
	SmallHits     uint64
	LargeHits     uint64
	SmallMisses   uint64
	LargeMisses   uint64
	Invalidations uint64
}

// Hits returns total hits.
func (s Stats) Hits() uint64 { return s.SmallHits + s.LargeHits }

// Misses returns total misses.
func (s Stats) Misses() uint64 { return s.SmallMisses + s.LargeMisses }

// Reprobes mirrors the legacy sequential exact-index reprobe count.
func (s Stats) Reprobes() uint64 { return s.LargeHits + s.Misses() }

type entry struct {
	pn       addr.PN
	shift    uint16
	valid    bool
	lastUse  uint64
	loadedAt uint64
}

// Config mirrors the legacy tlb.Config with explicit two-size shifts.
type Config struct {
	Entries    int
	Ways       int
	Index      IndexScheme
	Repl       Replacement
	SmallShift uint
	LargeShift uint
	Seed       uint64
}

// SetAssoc is the legacy set-associative TLB.
type SetAssoc struct {
	cfg      Config
	sets     int
	setBits  uint
	entries  []entry
	clock    uint64
	rng      uint64
	stats    Stats
	occupied int
}

// New constructs the reference TLB, applying the legacy defaults.
func New(cfg Config) (*SetAssoc, error) {
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("tworef: entries must be positive, got %d", cfg.Entries)
	}
	if cfg.Ways == 0 {
		cfg.Ways = cfg.Entries
	}
	if cfg.Ways < 0 || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("tworef: %d entries not divisible into %d ways", cfg.Entries, cfg.Ways)
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("tworef: set count %d is not a power of two", sets)
	}
	if cfg.SmallShift == 0 {
		cfg.SmallShift = addr.Shift4K
	}
	if cfg.LargeShift == 0 {
		cfg.LargeShift = addr.Shift32K
	}
	if cfg.SmallShift >= cfg.LargeShift {
		return nil, fmt.Errorf("tworef: small shift %d must be below large shift %d",
			cfg.SmallShift, cfg.LargeShift)
	}
	setBits := uint(0)
	for v := sets; v > 1; v >>= 1 {
		setBits++
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &SetAssoc{
		cfg:     cfg,
		sets:    sets,
		setBits: setBits,
		entries: make([]entry, cfg.Entries),
		rng:     seed,
	}, nil
}

func (t *SetAssoc) index(va addr.VA, p policy.Page) uint64 {
	if t.sets == 1 {
		return 0
	}
	switch t.cfg.Index {
	case IndexSmall:
		return addr.Index(va, t.cfg.SmallShift, t.setBits)
	case IndexLarge:
		return addr.Index(va, t.cfg.LargeShift, t.setBits)
	default: // IndexExact
		return addr.Index(va, uint(p.Shift), t.setBits)
	}
}

func (t *SetAssoc) xorshift() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// Access is the legacy access path.
func (t *SetAssoc) Access(va addr.VA, p policy.Page) bool {
	t.clock++
	t.stats.Accesses++
	large := uint(p.Shift) >= t.cfg.LargeShift
	idx := t.index(va, p)
	base := int(idx) * t.cfg.Ways
	set := t.entries[base : base+t.cfg.Ways]
	victim := -1
	for i := range set {
		e := &set[i]
		if !e.valid {
			if victim < 0 {
				victim = i
			}
			continue
		}
		if e.pn == p.Number && uint(e.shift) == p.Shift {
			e.lastUse = t.clock
			if large {
				t.stats.LargeHits++
			} else {
				t.stats.SmallHits++
			}
			return true
		}
	}
	if large {
		t.stats.LargeMisses++
	} else {
		t.stats.SmallMisses++
	}
	if victim < 0 {
		victim = t.pickVictim(set)
	} else {
		t.occupied++
	}
	set[victim] = entry{
		pn:       p.Number,
		shift:    uint16(p.Shift),
		valid:    true,
		lastUse:  t.clock,
		loadedAt: t.clock,
	}
	return false
}

func (t *SetAssoc) pickVictim(set []entry) int {
	switch t.cfg.Repl {
	case FIFO:
		v, oldest := 0, set[0].loadedAt
		for i := 1; i < len(set); i++ {
			if set[i].loadedAt < oldest {
				v, oldest = i, set[i].loadedAt
			}
		}
		return v
	case Random:
		return int(t.xorshift() % uint64(len(set)))
	default: // LRU
		v, oldest := 0, set[0].lastUse
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < oldest {
				v, oldest = i, set[i].lastUse
			}
		}
		return v
	}
}

// Invalidate is the legacy whole-array invalidation scan.
func (t *SetAssoc) Invalidate(p policy.Page) int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pn == p.Number && uint(e.shift) == p.Shift {
			e.valid = false
			n++
		}
	}
	t.stats.Invalidations += uint64(n)
	t.occupied -= n
	return n
}

// Flush empties the TLB.
func (t *SetAssoc) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.occupied = 0
}

// Stats returns a snapshot of the counters.
func (t *SetAssoc) Stats() Stats { return t.stats }

// Occupied returns the number of valid entries.
func (t *SetAssoc) Occupied() int { return t.occupied }

// ---------------------------------------------------------------------------
// Reference policy (legacy internal/policy.TwoSize)

// TwoSizeStats is the legacy policy counter layout.
type TwoSizeStats struct {
	Refs        uint64
	LargeRefs   uint64
	SmallRefs   uint64
	Promotions  uint64
	Demotions   uint64
	LargeChunks int
}

// TwoSize is the legacy dynamic policy (paper Section 3.4).
type TwoSize struct {
	cfg   policy.TwoSizeConfig
	win   *window.Tracker
	large *htab.Set
	stats TwoSizeStats
}

// NewTwoSize builds the reference policy from a live-package config.
func NewTwoSize(cfg policy.TwoSizeConfig) *TwoSize {
	if cfg.T <= 0 {
		panic("tworef: TwoSizeConfig.T must be positive")
	}
	if cfg.LargeShift == 0 {
		cfg.LargeShift = addr.ChunkShift
	}
	if cfg.LargeShift <= addr.BlockShift || cfg.LargeShift > 24 {
		panic(fmt.Sprintf("tworef: large shift %d out of range (%d,24]",
			cfg.LargeShift, addr.BlockShift))
	}
	bpc := cfg.BlocksPerChunk()
	if cfg.Threshold < 1 || cfg.Threshold > bpc {
		panic(fmt.Sprintf("tworef: threshold %d out of range [1,%d]",
			cfg.Threshold, bpc))
	}
	return &TwoSize{
		cfg:   cfg,
		win:   window.NewWithChunkShift(cfg.T, cfg.LargeShift),
		large: htab.NewSet(1 << 8),
	}
}

// Window exposes the sliding-window tracker.
func (p *TwoSize) Window() *window.Tracker { return p.win }

// Stats returns a snapshot of policy counters.
func (p *TwoSize) Stats() TwoSizeStats {
	s := p.stats
	s.LargeChunks = p.large.Len()
	return s
}

// IsLarge reports whether chunk c is currently mapped large.
func (p *TwoSize) IsLarge(c addr.PN) bool { return p.large.Has(uint64(c)) }

// Assign is the legacy per-reference policy step. It returns results in
// the live package's Result type so differential tests can compare
// field-for-field (Level is always 1 on events, matching the shim).
func (p *TwoSize) Assign(va addr.VA) policy.Result {
	p.stats.Refs++
	p.win.StepVA(va)
	c := addr.Page(va, p.cfg.LargeShift)
	active := p.win.ChunkActive(c)
	isLarge := p.large.Has(uint64(c))
	var res policy.Result
	switch {
	case !isLarge && active >= p.cfg.Threshold &&
		(p.cfg.DenyPromotion == nil || !p.cfg.DenyPromotion(c)):
		p.large.Add(uint64(c))
		isLarge = true
		p.stats.Promotions++
		res.Event = policy.EventPromote
		res.Chunk = c
		res.Level = 1
	case isLarge && p.cfg.Demote && active < p.cfg.Threshold:
		p.large.Remove(uint64(c))
		isLarge = false
		p.stats.Demotions++
		res.Event = policy.EventDemote
		res.Chunk = c
		res.Level = 1
	}
	if isLarge {
		p.stats.LargeRefs++
		res.Page = policy.Page{Number: c, Shift: p.cfg.LargeShift}
	} else {
		p.stats.SmallRefs++
		res.Page = policy.Page{Number: addr.Block(va), Shift: addr.BlockShift}
	}
	return res
}

// ---------------------------------------------------------------------------
// Reference page table (legacy internal/pagetable.Table)

// Cycle model constants, copied from the legacy package.
const (
	trapCycles      = 8.0
	loadCycles      = 4.0
	insertCycles    = 4.0
	sizeProbeCycles = 5.0
)

// PTE mirrors pagetable.PTE.
type PTE struct {
	Frame addr.PN
	Valid bool
	Large bool
}

// Walk mirrors pagetable.Walk.
type Walk struct {
	Found  bool
	Levels int
	Cycles float64
	Large  bool
}

type chunkEntry struct {
	large    bool
	largePTE PTE
	blocks   [addr.BlocksPerChunk]PTE
}

// TableStats mirrors pagetable.Stats.
type TableStats struct {
	Lookups     uint64
	Misses      uint64
	Promotions  uint64
	Demotions   uint64
	CopiedBytes uint64
}

// Table is the legacy two-size page table with the dense chunk arena.
type Table struct {
	idx   *htab.U64
	arena []chunkEntry
	free  []uint32
	stats TableStats
}

// NewTable returns an empty reference table.
func NewTable() *Table {
	return &Table{idx: htab.NewU64(1 << 8)}
}

func (t *Table) entry(c addr.PN) *chunkEntry {
	i, ok := t.idx.Get(uint64(c))
	if !ok {
		return nil
	}
	return &t.arena[i]
}

func (t *Table) alloc(c addr.PN) *chunkEntry {
	var i uint32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
		t.arena[i] = chunkEntry{}
	} else {
		i = uint32(len(t.arena))
		t.arena = append(t.arena, chunkEntry{})
	}
	t.idx.Put(uint64(c), uint64(i))
	return &t.arena[i]
}

func (t *Table) release(c addr.PN) {
	i, ok := t.idx.Get(uint64(c))
	if !ok {
		return
	}
	t.idx.Delete(uint64(c))
	t.free = append(t.free, uint32(i))
}

// MapSmall installs a 4KB mapping for block b.
func (t *Table) MapSmall(b addr.PN, frame addr.PN) error {
	c := addr.ChunkOfBlock(b)
	ce := t.entry(c)
	if ce == nil {
		ce = t.alloc(c)
	}
	if ce.large {
		return fmt.Errorf("tworef: chunk %#x is mapped large", uint64(c))
	}
	ce.blocks[addr.BlockIndex(b)] = PTE{Frame: frame, Valid: true}
	return nil
}

// MapLarge installs a 32KB mapping for chunk c.
func (t *Table) MapLarge(c addr.PN, frame addr.PN) error {
	ce := t.entry(c)
	if ce != nil {
		if ce.large {
			return fmt.Errorf("tworef: chunk %#x already mapped large", uint64(c))
		}
		for _, pte := range ce.blocks {
			if pte.Valid {
				return fmt.Errorf("tworef: chunk %#x has small mappings; promote instead", uint64(c))
			}
		}
	} else {
		ce = t.alloc(c)
	}
	*ce = chunkEntry{large: true, largePTE: PTE{Frame: frame, Valid: true, Large: true}}
	return nil
}

// Unmap removes the mapping covering va.
func (t *Table) Unmap(va addr.VA) bool {
	c := addr.Chunk(va)
	ce := t.entry(c)
	if ce == nil {
		return false
	}
	if ce.large {
		t.release(c)
		return true
	}
	i := addr.BlockInChunk(va)
	if !ce.blocks[i].Valid {
		return false
	}
	ce.blocks[i] = PTE{}
	for _, pte := range ce.blocks {
		if pte.Valid {
			return true
		}
	}
	t.release(c)
	return true
}

// Lookup walks the table with the legacy cost model.
func (t *Table) Lookup(va addr.VA) (PTE, Walk) {
	t.stats.Lookups++
	w := Walk{Cycles: trapCycles + sizeProbeCycles + insertCycles}
	ce := t.entry(addr.Chunk(va))
	w.Levels = 1
	w.Cycles += loadCycles
	if ce == nil {
		t.stats.Misses++
		return PTE{}, w
	}
	if ce.large {
		w.Found = true
		w.Large = true
		return ce.largePTE, w
	}
	w.Levels = 2
	w.Cycles += loadCycles
	pte := ce.blocks[addr.BlockInChunk(va)]
	if !pte.Valid {
		t.stats.Misses++
		return PTE{}, w
	}
	w.Found = true
	return pte, w
}

// Promote collapses chunk c's small mappings into one large mapping.
func (t *Table) Promote(c addr.PN, newFrame addr.PN) (freed []addr.PN, copied int, err error) {
	ce := t.entry(c)
	if ce == nil || ce.large {
		return nil, 0, fmt.Errorf("tworef: chunk %#x has no small mappings to promote", uint64(c))
	}
	for _, pte := range ce.blocks {
		if pte.Valid {
			freed = append(freed, pte.Frame)
			copied++
		}
	}
	if copied == 0 {
		return nil, 0, fmt.Errorf("tworef: chunk %#x is empty", uint64(c))
	}
	*ce = chunkEntry{large: true, largePTE: PTE{Frame: newFrame, Valid: true, Large: true}}
	t.stats.Promotions++
	t.stats.CopiedBytes += uint64(copied) * addr.BlockSize
	return freed, copied, nil
}

// Demote splits chunk c's large mapping into eight small mappings.
func (t *Table) Demote(c addr.PN, frames [addr.BlocksPerChunk]addr.PN) (addr.PN, error) {
	ce := t.entry(c)
	if ce == nil || !ce.large {
		return 0, fmt.Errorf("tworef: chunk %#x is not mapped large", uint64(c))
	}
	old := ce.largePTE.Frame
	*ce = chunkEntry{}
	for i, f := range frames {
		ce.blocks[i] = PTE{Frame: f, Valid: true}
	}
	t.stats.Demotions++
	t.stats.CopiedBytes += addr.ChunkSize
	return old, nil
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() TableStats { return t.stats }

// MappedChunks returns how many chunks have any mapping.
func (t *Table) MappedChunks() int { return t.idx.Len() }
