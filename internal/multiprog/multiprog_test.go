package multiprog

import (
	"errors"
	"io"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

func refs(n int, base addr.VA) []trace.Ref {
	out := make([]trace.Ref, n)
	for i := range out {
		out[i] = trace.Ref{Addr: base + addr.VA(i*16), Kind: trace.Load}
	}
	return out
}

func readAll(t *testing.T, r trace.Reader) []trace.Ref {
	t.Helper()
	var out []trace.Ref
	buf := make([]trace.Ref, 37)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, 10); err == nil {
		t.Fatal("empty process list should fail")
	}
	if _, err := New([]Process{{Name: "a", Source: trace.NewSliceReader(nil)}}, 0); err == nil {
		t.Fatal("zero quantum should fail")
	}
	if _, err := New([]Process{{Name: "a"}}, 10); err == nil {
		t.Fatal("nil source should fail")
	}
}

func TestTagAndASID(t *testing.T) {
	va := Tag(0x1234, 3)
	if ASID(va) != 3 {
		t.Fatalf("ASID = %d", ASID(va))
	}
	// Tagging preserves all index-relevant low bits.
	if uint64(va)&(1<<ASIDShift-1) != 0x1234 {
		t.Fatalf("low bits disturbed: %#x", uint64(va))
	}
	if addr.Index(va, addr.Shift4K, 4) != addr.Index(0x1234, addr.Shift4K, 4) {
		t.Fatal("set index changed by tagging")
	}
}

func TestRoundRobinInterleaving(t *testing.T) {
	a := trace.NewSliceReader(refs(6, 0x1000))
	b := trace.NewSliceReader(refs(6, 0x2000))
	r, err := New([]Process{{"a", a}, {"b", b}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, r)
	if len(out) != 12 {
		t.Fatalf("got %d refs", len(out))
	}
	wantASID := []int{0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1}
	for i, ref := range out {
		if ASID(ref.Addr) != wantASID[i] {
			t.Fatalf("ref %d: asid %d, want %d", i, ASID(ref.Addr), wantASID[i])
		}
	}
	if r.Switches() < 5 {
		t.Fatalf("switches = %d", r.Switches())
	}
}

func TestUnevenStreamLengths(t *testing.T) {
	a := trace.NewSliceReader(refs(3, 0x1000))
	b := trace.NewSliceReader(refs(10, 0x2000))
	r, err := New([]Process{{"a", a}, {"b", b}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, r)
	if len(out) != 13 {
		t.Fatalf("got %d refs, want 13", len(out))
	}
	// After a finishes, only b's refs appear.
	tail := out[len(out)-6:]
	for _, ref := range tail {
		if ASID(ref.Addr) != 1 {
			t.Fatalf("tail ref from asid %d", ASID(ref.Addr))
		}
	}
}

func TestOnSwitchHook(t *testing.T) {
	a := trace.NewSliceReader(refs(4, 0x1000))
	b := trace.NewSliceReader(refs(4, 0x2000))
	r, err := New([]Process{{"a", a}, {"b", b}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var transitions [][2]int
	r.OnSwitch = func(from, to int) { transitions = append(transitions, [2]int{from, to}) }
	readAll(t, r)
	if len(transitions) == 0 {
		t.Fatal("no switch callbacks")
	}
	for _, tr := range transitions {
		if tr[0] == tr[1] {
			t.Fatalf("self-switch reported: %v", tr)
		}
	}
	if uint64(len(transitions)) != r.Switches() {
		t.Fatalf("hook count %d != Switches %d", len(transitions), r.Switches())
	}
}

func TestSingleProcessNoSwitches(t *testing.T) {
	a := trace.NewSliceReader(refs(10, 0x1000))
	r, err := New([]Process{{"a", a}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, r)
	if len(out) != 10 || r.Switches() != 0 {
		t.Fatalf("refs=%d switches=%d", len(out), r.Switches())
	}
	for _, ref := range out {
		if ASID(ref.Addr) != 0 {
			t.Fatal("single process should keep asid 0")
		}
	}
}

// Distinct processes referencing the same virtual page must produce
// distinct TLB tags (different page numbers once tagged).
func TestASIDDisambiguatesIdenticalAddresses(t *testing.T) {
	a := trace.NewSliceReader(refs(2, 0x5000))
	b := trace.NewSliceReader(refs(2, 0x5000))
	r, err := New([]Process{{"a", a}, {"b", b}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, r)
	pages := map[addr.PN]bool{}
	untagged := map[addr.PN]bool{}
	for _, ref := range out {
		pages[addr.Page(ref.Addr, addr.Shift4K)] = true
		untagged[addr.Page(ref.Addr&(1<<ASIDShift-1), addr.Shift4K)] = true
	}
	// Both processes touch virtual page 0x5: one untagged page, but two
	// distinct tagged pages (TLB tags differ by ASID).
	if len(untagged) != 1 {
		t.Fatalf("untagged pages = %d, want 1", len(untagged))
	}
	if len(pages) != 2 {
		t.Fatalf("distinct tagged pages = %d, want 2", len(pages))
	}
}
