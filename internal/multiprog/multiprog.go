// Package multiprog builds multiprogrammed reference streams from
// uniprogrammed ones — the extension the paper explicitly could not
// evaluate ("our traces do not include multiprogramming or operating
// system behavior", Abstract; "our traces are inadequate to exercise
// large TLBs, in part, because they do not include the effect of
// multiprogramming", Section 6).
//
// Processes run round-robin with a configurable context-switch quantum.
// Each process's addresses are tagged with an address-space identifier
// in high virtual-address bits: low bits (and therefore TLB set
// indices) are unchanged, while page numbers — TLB tags — become
// distinct across processes, which is exactly how an ASID-tagged TLB
// behaves. For architectures without ASIDs, register an OnSwitch hook
// to flush the TLB at each context switch and measure the difference.
package multiprog

import (
	"errors"
	"fmt"
	"io"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

// ASIDShift is the virtual-address bit where the address-space
// identifier is inserted. 48 keeps every workload's addresses (< 2^32)
// untouched while remaining within the 64-bit VA.
const ASIDShift = 48

// Tag returns va tagged with the given address-space identifier.
func Tag(va addr.VA, asid int) addr.VA {
	return va | addr.VA(uint64(asid)<<ASIDShift)
}

// ASID extracts the address-space identifier from a tagged address.
func ASID(va addr.VA) int { return int(uint64(va) >> ASIDShift) }

// Process is one member of the multiprogrammed mix.
type Process struct {
	// Name labels the process in diagnostics.
	Name string
	// Source supplies its reference stream.
	Source trace.Reader
}

// Reader interleaves the processes' streams. It implements
// trace.Reader; the stream ends when every process's stream has ended.
type Reader struct {
	procs   []Process
	done    []bool
	quantum int
	cur     int
	left    int
	alive   int

	// OnSwitch, if non-nil, is called at every context switch with the
	// outgoing and incoming process indices. Use it to flush TLBs when
	// modelling hardware without ASIDs. It runs between batches: the
	// switch takes effect before the next reference is produced.
	OnSwitch func(from, to int)

	switches uint64
}

// New returns a Reader running the processes round-robin with the given
// context-switch quantum (references per scheduling slice).
func New(procs []Process, quantum int) (*Reader, error) {
	if len(procs) == 0 {
		return nil, errors.New("multiprog: need at least one process")
	}
	if quantum <= 0 {
		return nil, fmt.Errorf("multiprog: quantum must be positive, got %d", quantum)
	}
	if len(procs) > 1<<(64-ASIDShift) {
		return nil, fmt.Errorf("multiprog: too many processes (%d)", len(procs))
	}
	for i, p := range procs {
		if p.Source == nil {
			return nil, fmt.Errorf("multiprog: process %d (%s) has no source", i, p.Name)
		}
	}
	return &Reader{
		procs:   procs,
		done:    make([]bool, len(procs)),
		quantum: quantum,
		left:    quantum,
		alive:   len(procs),
	}, nil
}

// Switches returns how many context switches have occurred.
func (r *Reader) Switches() uint64 { return r.switches }

// advance moves to the next live process, invoking OnSwitch.
func (r *Reader) advance() {
	from := r.cur
	for i := 1; i <= len(r.procs); i++ {
		next := (r.cur + i) % len(r.procs)
		if !r.done[next] {
			r.cur = next
			r.left = r.quantum
			if next != from {
				r.switches++
				if r.OnSwitch != nil {
					r.OnSwitch(from, next)
				}
			}
			return
		}
	}
}

// Read implements trace.Reader. A single call never crosses a context
// switch: it returns (a possibly short batch) at each quantum boundary,
// so OnSwitch hooks observe the stream in precise switch order as long
// as the caller processes each batch before reading the next (which
// trace.Drain and core.Simulator do).
func (r *Reader) Read(batch []trace.Ref) (int, error) {
	if r.alive == 0 {
		return 0, io.EOF
	}
	if r.done[r.cur] {
		r.advance()
	}
	want := len(batch)
	if want > r.left {
		want = r.left
	}
	m, err := r.procs[r.cur].Source.Read(batch[:want])
	for i := 0; i < m; i++ {
		batch[i].Addr = Tag(batch[i].Addr, r.cur)
	}
	r.left -= m
	switchNow := false
	switch {
	case err != nil && errors.Is(err, io.EOF):
		r.done[r.cur] = true
		r.alive--
		switchNow = r.alive > 0
	case err != nil:
		return m, err
	case r.left == 0:
		switchNow = true
	}
	if switchNow {
		r.advance()
	}
	if r.alive == 0 {
		return m, io.EOF
	}
	return m, nil
}
