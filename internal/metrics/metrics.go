// Package metrics implements the paper's evaluation metrics
// (Section 3.2): CPI_TLB, misses per instruction, TLB miss ratio,
// normalized working-set size, and the critical miss-penalty increase,
// plus the penalty model of Section 2.3.
package metrics

import (
	"fmt"
	"math"
)

// Miss-penalty model (paper Sections 2.3 and 3.2): a software-handled
// TLB miss costs 20 cycles for a single-page-size TLB; miss handlers
// that must cope with two page sizes are estimated to run about 25%
// longer (25 cycles), which also folds in page-promotion costs
// (Section 3.4).
const (
	MissPenaltySingle = 20.0
	MissPenaltyTwo    = 25.0
	// TwoSizePenaltyFactor is the assumed relative increase:
	// MissPenaltyTwo = TwoSizePenaltyFactor × MissPenaltySingle.
	TwoSizePenaltyFactor = 1.25
	// HandlerLevelCycles is the marginal handler cost of one more page
	// size beyond two: an extra PTE load (4 cycles, the pagetable
	// model's per-level charge) as the handler probes one more level of
	// the size hierarchy. It extends the paper's 20→25 step to N sizes.
	HandlerLevelCycles = 4.0
)

// MissPenaltyN returns the software miss-handler penalty for a TLB
// serving n page sizes: the paper's 20 cycles for one size, 25 for two,
// and one extra level charge per size beyond that. MissPenaltyN(2) is
// exactly MissPenaltyTwo, so two-size results are untouched. A size
// count below one is a wiring bug, not a degenerate config — it panics
// rather than producing a paper-plausible CPI from garbage.
func MissPenaltyN(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("metrics: MissPenaltyN(%d): a TLB serves at least one page size", n))
	}
	if n == 1 {
		return MissPenaltySingle
	}
	return MissPenaltyTwo + float64(n-2)*HandlerLevelCycles
}

// MPI returns TLB misses per instruction.
func MPI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) / float64(instructions)
}

// CPITLB returns the TLB contribution to cycles per instruction:
// CPI_TLB = MPI × miss penalty.
func CPITLB(misses, instructions uint64, missPenalty float64) float64 {
	return MPI(misses, instructions) * missPenalty
}

// MissRatio converts misses per instruction to a per-reference miss
// ratio given RPI (references per instruction): miss ratio = MPI / RPI.
func MissRatio(mpi, rpi float64) float64 {
	if rpi == 0 {
		return 0
	}
	return mpi / rpi
}

// WSNormalized returns the normalized working-set size
// s(T, ps) / s(T, 4KB) of Section 3.2.
func WSNormalized(avgBytes, baseBytes float64) float64 {
	if baseBytes == 0 {
		return 0
	}
	return avgBytes / baseBytes
}

// CriticalMissPenaltyIncrease returns Δmp(ps) in percent: the miss
// penalty increase that a scheme can tolerate and still match the
// CPI_TLB of the 4KB baseline, (MPI(4KB)/MPI(ps) − 1) × 100%
// (Section 3.2). A scheme with fewer misses than the baseline has
// positive headroom; more misses, negative.
func CriticalMissPenaltyIncrease(mpi4K, mpiScheme float64) float64 {
	if mpiScheme == 0 {
		if mpi4K == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (mpi4K/mpiScheme - 1) * 100
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio safely divides, returning 0 when the denominator is 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
