package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPenaltyModel(t *testing.T) {
	if MissPenaltyTwo != TwoSizePenaltyFactor*MissPenaltySingle {
		t.Fatalf("penalty model inconsistent: %v != %v × %v",
			MissPenaltyTwo, TwoSizePenaltyFactor, MissPenaltySingle)
	}
}

func TestMissPenaltyN(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{1, MissPenaltySingle},
		{2, MissPenaltyTwo},
		{3, MissPenaltyTwo + HandlerLevelCycles},
		{4, MissPenaltyTwo + 2*HandlerLevelCycles},
	}
	for _, tc := range cases {
		if got := MissPenaltyN(tc.n); got != tc.want {
			t.Errorf("MissPenaltyN(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MissPenaltyN(%d) did not panic", n)
				}
			}()
			MissPenaltyN(n)
		}()
	}
}

func TestMPIAndCPI(t *testing.T) {
	if got := MPI(50, 1000); got != 0.05 {
		t.Fatalf("MPI = %v", got)
	}
	if got := MPI(50, 0); got != 0 {
		t.Fatalf("MPI with zero instructions = %v", got)
	}
	if got := CPITLB(50, 1000, MissPenaltySingle); got != 1.0 {
		t.Fatalf("CPITLB = %v", got)
	}
	if got := CPITLB(50, 1000, MissPenaltyTwo); got != 1.25 {
		t.Fatalf("CPITLB two-size = %v", got)
	}
}

func TestMissRatio(t *testing.T) {
	if got := MissRatio(0.05, 1.25); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("miss ratio = %v", got)
	}
	if MissRatio(0.05, 0) != 0 {
		t.Fatal("zero RPI should give 0")
	}
}

func TestWSNormalized(t *testing.T) {
	if got := WSNormalized(167, 100); got != 1.67 {
		t.Fatalf("WSNormalized = %v", got)
	}
	if WSNormalized(167, 0) != 0 {
		t.Fatal("zero base should give 0")
	}
}

func TestCriticalMissPenaltyIncrease(t *testing.T) {
	// Paper Section 3.2: Δmp = (MPI(4KB)/MPI(ps) − 1) × 100%.
	if got := CriticalMissPenaltyIncrease(0.08, 0.01); math.Abs(got-700) > 1e-9 {
		t.Fatalf("Δmp = %v, want 700", got)
	}
	// A scheme with more misses than the baseline has negative headroom.
	if got := CriticalMissPenaltyIncrease(0.01, 0.02); got >= 0 {
		t.Fatalf("Δmp = %v, want negative", got)
	}
	if got := CriticalMissPenaltyIncrease(0.01, 0); !math.IsInf(got, 1) {
		t.Fatalf("Δmp with zero scheme MPI = %v, want +Inf", got)
	}
	if got := CriticalMissPenaltyIncrease(0, 0); got != 0 {
		t.Fatalf("Δmp(0,0) = %v", got)
	}
}

// The paper's identity: Δmp can equivalently be computed from CPI_TLB as
// (1.25 × CPI_TLB(4KB)/CPI_TLB(ps) − 1) × 100% when ps is a two-page
// scheme (the 1.25 cancels the penalty difference).
func TestDeltaMPIdentity(t *testing.T) {
	f := func(m4Raw, mpsRaw uint16) bool {
		mpi4 := float64(m4Raw%1000+1) / 10000
		mpiPS := float64(mpsRaw%1000+1) / 10000
		cpi4 := mpi4 * MissPenaltySingle
		cpiPS := mpiPS * MissPenaltyTwo
		direct := CriticalMissPenaltyIncrease(mpi4, mpiPS)
		viaCPI := (TwoSizePenaltyFactor*cpi4/cpiPS - 1) * 100
		return math.Abs(direct-viaCPI) < 1e-6*(math.Abs(direct)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio by zero should be 0")
	}
	if Ratio(3, 2) != 1.5 {
		t.Fatal("ratio wrong")
	}
}
