// Package profiling wires -cpuprofile/-memprofile flags into the
// commands with one call. The simulators are throughput-bound, so
// every cmd that drains traces exposes these flags; profiles feed
// `go tool pprof` against the cmd binary.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile to memPath (if non-empty). The returned stop function
// finishes both and must be called before exit — via defer in main, or
// explicitly before os.Exit. Start with two empty paths is a no-op
// returning a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			memF, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer memF.Close()
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(memF); err != nil {
				return fmt.Errorf("writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
