// Package window implements an exact sliding-window reference tracker.
//
// The paper's page-size assignment policy (Section 3.4) and the working
// set model (Section 3.2, after Denning) are both defined over "the last
// T references": a 4KB block is *active* at time t if it was referenced
// at least once in the interval [t-T+1, t]. This package maintains that
// set exactly with a ring buffer of the last T block references and
// per-block reference counts, in O(1) amortized work per reference.
//
// On top of block activity it maintains, incrementally:
//
//   - the number of distinct active blocks (the 4KB working-set size in
//     blocks);
//   - per large-page chunk (32KB by default, i.e. eight blocks), how
//     many of its blocks are active — exactly the quantity the
//     promotion policy thresholds on. The chunk size is configurable to
//     support the paper's 4KB/16KB and 4KB/64KB combinations.
//
// Consumers may register enter/leave hooks to maintain further derived
// state (e.g. the two-page-size working-set size in internal/wss).
package window

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/htab"
)

// Tracker tracks which 4KB blocks were referenced in the last T
// references. The zero value is not usable; call New.
type Tracker struct {
	t          int
	chunkShift uint
	ring       []addr.PN
	pos        int
	filled     bool
	steps      uint64

	refCnt      *htab.Counter // block -> references of it inside the window
	chunkActive *htab.Counter // chunk -> active blocks in it
	active      int

	// OnBlockEnter, if non-nil, is called when a block becomes active
	// (was not referenced in the window, now is). The tracker's counts,
	// including ChunkActive, are already updated when it runs.
	OnBlockEnter func(b addr.PN)
	// OnBlockLeave, if non-nil, is called when a block becomes inactive
	// (its last reference in the window just expired); counts are
	// already updated.
	OnBlockLeave func(b addr.PN)
}

// New returns a Tracker with window length T references and the default
// 32KB chunk size. T must be > 0.
func New(T int) *Tracker { return NewWithChunkShift(T, addr.ChunkShift) }

// NewWithChunkShift returns a Tracker whose chunk grouping uses the
// given large-page shift (e.g. 14 for 16KB chunks, 16 for 64KB chunks).
// chunkShift must exceed the 4KB block shift.
func NewWithChunkShift(T int, chunkShift uint) *Tracker {
	if T <= 0 {
		panic("window: T must be positive")
	}
	if chunkShift <= addr.BlockShift {
		panic(fmt.Sprintf("window: chunk shift %d must exceed block shift %d",
			chunkShift, addr.BlockShift))
	}
	return &Tracker{
		t:           T,
		chunkShift:  chunkShift,
		ring:        make([]addr.PN, T),
		refCnt:      htab.NewCounter(1 << 10),
		chunkActive: htab.NewCounter(1 << 8),
	}
}

// T returns the window length in references.
func (w *Tracker) T() int { return w.t }

// ChunkShift returns the large-page shift defining the chunk grouping.
func (w *Tracker) ChunkShift() uint { return w.chunkShift }

// BlocksPerChunk returns how many 4KB blocks one chunk spans.
func (w *Tracker) BlocksPerChunk() int { return 1 << (w.chunkShift - addr.BlockShift) }

// ChunkOf returns the chunk number containing block b under this
// tracker's chunk grouping.
func (w *Tracker) ChunkOf(b addr.PN) addr.PN { return b >> (w.chunkShift - addr.BlockShift) }

// Steps returns how many references have been observed.
func (w *Tracker) Steps() uint64 { return w.steps }

// ActiveBlocks returns the number of distinct 4KB blocks referenced in
// the current window — the 4KB-page working-set size in pages.
func (w *Tracker) ActiveBlocks() int { return w.active }

// BlockActive reports whether block b was referenced in the window.
func (w *Tracker) BlockActive(b addr.PN) bool { return w.refCnt.Get(uint64(b)) > 0 }

// ChunkActive returns how many of chunk c's blocks are active.
func (w *Tracker) ChunkActive(c addr.PN) int { return int(w.chunkActive.Get(uint64(c))) }

// Step observes one reference to 4KB block b, expiring the reference
// that falls out of the window (if the window is full). This is the
// per-reference hot path shared by the policy and the two-size
// working-set calculator; the Counter tables keep it allocation-free
// in steady state.
//
//paperlint:hot
func (w *Tracker) Step(b addr.PN) {
	w.steps++
	if w.filled {
		old := w.ring[w.pos]
		if w.refCnt.Add(uint64(old), -1) == 0 {
			w.active--
			w.chunkActive.Add(uint64(w.ChunkOf(old)), -1)
			if w.OnBlockLeave != nil {
				w.OnBlockLeave(old)
			}
		}
	}
	w.ring[w.pos] = b
	w.pos++
	if w.pos == w.t {
		w.pos = 0
		w.filled = true
	}
	if w.refCnt.Add(uint64(b), 1) == 1 {
		w.active++
		w.chunkActive.Add(uint64(w.ChunkOf(b)), 1)
		if w.OnBlockEnter != nil {
			w.OnBlockEnter(b)
		}
	}
}

// StepVA observes one reference by virtual address.
func (w *Tracker) StepVA(va addr.VA) { w.Step(addr.Block(va)) }

// ActiveBlocksOf returns the indices of chunk c's blocks that are
// active, in ascending order. It is O(blocks-per-chunk) and intended for
// inspection and the promotion machinery, not the hot path.
func (w *Tracker) ActiveBlocksOf(c addr.PN) []uint {
	var out []uint
	per := addr.PN(w.BlocksPerChunk())
	first := c * per
	for i := addr.PN(0); i < per; i++ {
		if w.BlockActive(first + i) {
			out = append(out, uint(i))
		}
	}
	return out
}

// ActiveChunks calls fn for every chunk with at least one active block,
// with its active-block count, in ascending chunk order. O(active
// chunks log active chunks); intended for periodic sampling, not the
// per-reference path.
func (w *Tracker) ActiveChunks(fn func(c addr.PN, blocks int)) {
	w.chunkActive.IterSorted(func(c uint64, n int64) {
		fn(addr.PN(c), int(n))
	})
}
