package window

import (
	"testing"

	"twopage/internal/kernelref"
)

// BenchmarkTrackerStep measures the htab-based window kernel; the
// GoMap variant is the pre-conversion map kernel (kernelref.MapTracker)
// on the same stream. The pair backs the speedup rows in
// BENCH_kernels.json.
func BenchmarkTrackerStep(b *testing.B) {
	stream := kernelref.BlockStream(1 << 16)
	w := New(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(stream[i&(1<<16-1)])
	}
}

func BenchmarkTrackerStepGoMap(b *testing.B) {
	stream := kernelref.BlockStream(1 << 16)
	w := kernelref.NewMapTracker(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(stream[i&(1<<16-1)])
	}
}
