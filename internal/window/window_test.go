package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
)

// refModel recomputes window state naively from the full history.
type refModel struct {
	T    int
	hist []addr.PN
}

func (m *refModel) step(b addr.PN) { m.hist = append(m.hist, b) }

func (m *refModel) window() []addr.PN {
	start := len(m.hist) - m.T
	if start < 0 {
		start = 0
	}
	return m.hist[start:]
}

func (m *refModel) activeBlocks() map[addr.PN]bool {
	set := map[addr.PN]bool{}
	for _, b := range m.window() {
		set[b] = true
	}
	return set
}

func (m *refModel) chunkActive(c addr.PN) int {
	n := 0
	for b := range m.activeBlocks() {
		if addr.ChunkOfBlock(b) == c {
			n++
		}
	}
	return n
}

func TestNewPanicsOnBadT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSingleBlock(t *testing.T) {
	w := New(4)
	w.Step(7)
	if w.ActiveBlocks() != 1 || !w.BlockActive(7) {
		t.Fatal("block 7 should be active")
	}
	// Three more refs to a different block: 7 still in window (T=4).
	w.Step(8)
	w.Step(8)
	w.Step(8)
	if !w.BlockActive(7) {
		t.Fatal("block 7 should still be active after 3 more refs")
	}
	// One more: the ref to 7 expires.
	w.Step(8)
	if w.BlockActive(7) {
		t.Fatal("block 7 should have expired")
	}
	if w.ActiveBlocks() != 1 {
		t.Fatalf("active = %d, want 1", w.ActiveBlocks())
	}
}

func TestRepeatedBlockDoesNotExpireEarly(t *testing.T) {
	w := New(3)
	w.Step(1)
	w.Step(1)
	w.Step(2)
	w.Step(3) // expires first ref to 1; second ref to 1 still in window
	if !w.BlockActive(1) {
		t.Fatal("block 1 must remain active while any ref is in window")
	}
	w.Step(3) // expires second ref to 1
	if w.BlockActive(1) {
		t.Fatal("block 1 should have expired")
	}
}

func TestChunkActiveCounts(t *testing.T) {
	w := New(100)
	// Touch blocks 0..4 of chunk 0 and block 0 of chunk 1.
	for i := 0; i < 5; i++ {
		w.Step(addr.PN(i))
	}
	w.Step(addr.PN(addr.BlocksPerChunk)) // chunk 1, block 0
	if got := w.ChunkActive(0); got != 5 {
		t.Fatalf("chunk 0 active = %d, want 5", got)
	}
	if got := w.ChunkActive(1); got != 1 {
		t.Fatalf("chunk 1 active = %d, want 1", got)
	}
	if got := w.ChunkActive(2); got != 0 {
		t.Fatalf("chunk 2 active = %d, want 0", got)
	}
	idx := w.ActiveBlocksOf(0)
	want := []uint{0, 1, 2, 3, 4}
	if len(idx) != len(want) {
		t.Fatalf("ActiveBlocksOf = %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("ActiveBlocksOf = %v, want %v", idx, want)
		}
	}
}

func TestHooks(t *testing.T) {
	w := New(2)
	var enters, leaves []addr.PN
	w.OnBlockEnter = func(b addr.PN) { enters = append(enters, b) }
	w.OnBlockLeave = func(b addr.PN) { leaves = append(leaves, b) }
	w.Step(10)
	w.Step(11)
	w.Step(12) // 10 leaves
	w.Step(10) // 11 leaves, 10 re-enters
	wantEnters := []addr.PN{10, 11, 12, 10}
	wantLeaves := []addr.PN{10, 11}
	if len(enters) != len(wantEnters) || len(leaves) != len(wantLeaves) {
		t.Fatalf("enters=%v leaves=%v", enters, leaves)
	}
	for i := range wantEnters {
		if enters[i] != wantEnters[i] {
			t.Fatalf("enters=%v want %v", enters, wantEnters)
		}
	}
	for i := range wantLeaves {
		if leaves[i] != wantLeaves[i] {
			t.Fatalf("leaves=%v want %v", leaves, wantLeaves)
		}
	}
}

func TestStepVA(t *testing.T) {
	w := New(10)
	w.StepVA(0x5123)
	if !w.BlockActive(addr.PN(5)) {
		t.Fatal("StepVA should map address to its block")
	}
}

// Cross-check the incremental tracker against a naive recomputation over
// random reference streams with varying locality.
func TestAgainstNaiveModel(t *testing.T) {
	for _, T := range []int{1, 2, 7, 64, 250} {
		rng := rand.New(rand.NewSource(int64(T)))
		w := New(T)
		m := &refModel{T: T}
		for i := 0; i < 5000; i++ {
			var b addr.PN
			switch rng.Intn(3) {
			case 0: // hot set
				b = addr.PN(rng.Intn(4))
			case 1: // one chunk's blocks
				b = addr.PN(64 + rng.Intn(addr.BlocksPerChunk))
			default: // wide range
				b = addr.PN(rng.Intn(1000))
			}
			w.Step(b)
			m.step(b)
			if i%97 != 0 {
				continue
			}
			want := m.activeBlocks()
			if w.ActiveBlocks() != len(want) {
				t.Fatalf("T=%d step=%d active=%d want %d", T, i, w.ActiveBlocks(), len(want))
			}
			for b := range want {
				if !w.BlockActive(b) {
					t.Fatalf("T=%d step=%d block %d should be active", T, i, b)
				}
			}
			for _, c := range []addr.PN{0, 8, 64 / addr.BlocksPerChunk, 100} {
				if got, want := w.ChunkActive(c), m.chunkActive(c); got != want {
					t.Fatalf("T=%d step=%d chunk %d active=%d want %d", T, i, c, got, want)
				}
			}
		}
		if w.Steps() != 5000 {
			t.Fatalf("Steps = %d", w.Steps())
		}
	}
}

// Property: ActiveBlocks never exceeds min(T, distinct blocks ever seen),
// and chunk active counts are always within [0, BlocksPerChunk] and sum
// to ActiveBlocks.
func TestInvariants(t *testing.T) {
	f := func(blocks []uint16, tRaw uint8) bool {
		T := int(tRaw)%50 + 1
		w := New(T)
		seen := map[addr.PN]bool{}
		chunks := map[addr.PN]bool{}
		for _, raw := range blocks {
			b := addr.PN(raw % 512)
			w.Step(b)
			seen[b] = true
			chunks[addr.ChunkOfBlock(b)] = true
			if w.ActiveBlocks() > T || w.ActiveBlocks() > len(seen) {
				return false
			}
			sum := 0
			for c := range chunks {
				n := w.ChunkActive(c)
				if n < 0 || n > addr.BlocksPerChunk {
					return false
				}
				sum += n
			}
			if sum != w.ActiveBlocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStep(b *testing.B) {
	w := New(1 << 16)
	rng := rand.New(rand.NewSource(1))
	blocks := make([]addr.PN, 1<<14)
	for i := range blocks {
		blocks[i] = addr.PN(rng.Intn(1 << 12))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(blocks[i&(len(blocks)-1)])
	}
}

func TestActiveChunks(t *testing.T) {
	w := New(100)
	for i := 0; i < 5; i++ {
		w.Step(addr.PN(i)) // chunk 0: 5 blocks
	}
	w.Step(addr.PN(addr.BlocksPerChunk * 3)) // chunk 3: 1 block
	got := map[addr.PN]int{}
	w.ActiveChunks(func(c addr.PN, blocks int) { got[c] = blocks })
	if len(got) != 2 || got[0] != 5 || got[3] != 1 {
		t.Fatalf("active chunks: %v", got)
	}
}

// Property: enter and leave events are balanced against the active
// count at every step, for arbitrary streams.
func TestHookBalanceProperty(t *testing.T) {
	f := func(blocks []uint16, tRaw uint8) bool {
		T := int(tRaw)%40 + 1
		w := New(T)
		enters, leaves := 0, 0
		w.OnBlockEnter = func(addr.PN) { enters++ }
		w.OnBlockLeave = func(addr.PN) { leaves++ }
		for _, raw := range blocks {
			w.Step(addr.PN(raw % 128))
			if enters-leaves != w.ActiveBlocks() {
				return false
			}
			if leaves > enters {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
