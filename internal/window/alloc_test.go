package window

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/kernelref"
)

// TestStepAllocs pins the sliding-window update at zero steady-state
// allocations: after the counter tables have grown to the stream's
// footprint, every Step — including expiry traffic with its
// backward-shift deletes — must be pure table updates.
func TestStepAllocs(t *testing.T) {
	w := New(1 << 12)
	stream := kernelref.BlockStream(1 << 15)
	for _, b := range stream {
		w.Step(b)
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		w.Step(stream[i&(1<<15-1)])
		i++
	})
	if avg != 0 {
		t.Errorf("Tracker.Step allocates %.2f times per call, want 0", avg)
	}
}

// The hooks run inside Step; closures there must not re-introduce
// allocation either.
func TestStepAllocsWithHooks(t *testing.T) {
	w := New(1 << 12)
	enters, leaves := 0, 0
	w.OnBlockEnter = func(addr.PN) { enters++ }
	w.OnBlockLeave = func(addr.PN) { leaves++ }
	stream := kernelref.BlockStream(1 << 15)
	for _, b := range stream {
		w.Step(b)
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		w.Step(stream[i&(1<<15-1)])
		i++
	})
	if avg != 0 {
		t.Errorf("Tracker.Step with hooks allocates %.2f times per call, want 0", avg)
	}
	if enters == 0 || leaves == 0 {
		t.Fatalf("hooks did not run (enters %d, leaves %d)", enters, leaves)
	}
}
