package tlbx

import (
	"context"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

func smallPage(va addr.VA) policy.Page {
	return policy.Page{Number: addr.Page(va, addr.Shift4K), Shift: addr.Shift4K}
}

func TestVictimValidation(t *testing.T) {
	if _, err := NewVictim(tlb.Config{Entries: 0}, 4); err == nil {
		t.Fatal("bad main config should fail")
	}
	if _, err := NewVictim(tlb.Config{Entries: 4, Ways: 2}, 0); err == nil {
		t.Fatal("bad buffer size should fail")
	}
}

// Three pages cycling through a 2-entry direct set thrash without a
// victim buffer; with one, the displaced entry is recovered cheaply.
func TestVictimAbsorbsConflictMisses(t *testing.T) {
	plain := tlb.MustNew(tlb.Config{Entries: 2, Ways: 2})
	vict, err := NewVictim(tlb.Config{Entries: 2, Ways: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pages := []addr.VA{0x1000, 0x2000, 0x3000}
	for round := 0; round < 20; round++ {
		for _, va := range pages {
			plain.Access(va, smallPage(va))
			vict.Access(va, smallPage(va))
		}
	}
	pm := plain.Stats().Misses()
	vm := vict.Stats().Misses()
	if pm != 60 {
		t.Fatalf("plain TLB should thrash: %d misses", pm)
	}
	// With a 2-entry victim buffer, the 3-page loop fits in 4 entries:
	// only cold misses remain.
	if vm != 3 {
		t.Fatalf("victim TLB misses = %d, want 3 cold", vm)
	}
	if vict.VictimHits == 0 {
		t.Fatal("victim hits not counted")
	}
	st := vict.Stats()
	if st.Accesses != 60 || st.Hits()+st.Misses() != st.Accesses {
		t.Fatalf("stats accounting: %+v", st)
	}
}

func TestVictimInvalidateAndFlush(t *testing.T) {
	v, err := NewVictim(tlb.Config{Entries: 2, Ways: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fill main with a,b then displace a into the buffer with c.
	a, b, c := addr.VA(0x1000), addr.VA(0x2000), addr.VA(0x3000)
	v.Access(a, smallPage(a))
	v.Access(b, smallPage(b))
	v.Access(c, smallPage(c))
	main, buf := v.Halves()
	if buf.Occupied() != 1 {
		t.Fatalf("buffer occupancy = %d", buf.Occupied())
	}
	// Invalidate the page that lives in the buffer.
	var target policy.Page
	for _, va := range []addr.VA{a, b} {
		if !main.Contains(smallPage(va)) {
			target = smallPage(va)
		}
	}
	if n := v.Invalidate(target); n != 1 {
		t.Fatalf("Invalidate = %d", n)
	}
	v.Flush()
	if v.Access(a, smallPage(a)) {
		t.Fatal("post-flush access must miss")
	}
	if v.Entries() != 4 {
		t.Fatalf("entries = %d", v.Entries())
	}
	if v.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPrefetchHalvesSequentialMisses(t *testing.T) {
	plain := tlb.MustNew(tlb.Config{Entries: 16, Ways: 16})
	pf, err := NewPrefetch(tlb.Config{Entries: 16, Ways: 16})
	if err != nil {
		t.Fatal(err)
	}
	// 64 sequential pages, never revisited: all compulsory misses.
	for i := 0; i < 64; i++ {
		va := addr.VA(i << addr.Shift4K)
		plain.Access(va, smallPage(va))
		pf.Access(va, smallPage(va))
	}
	if got := plain.Stats().Misses(); got != 64 {
		t.Fatalf("plain misses = %d", got)
	}
	if got := pf.Stats().Misses(); got != 32 {
		t.Fatalf("prefetch misses = %d, want 32 (every other page)", got)
	}
	if pf.Prefetches != 32 {
		t.Fatalf("prefetches = %d", pf.Prefetches)
	}
}

func TestPrefetchValidation(t *testing.T) {
	if _, err := NewPrefetch(tlb.Config{Entries: -1}); err == nil {
		t.Fatal("bad config should fail")
	}
}

func TestPrefetchInterfaceBasics(t *testing.T) {
	pf, err := NewPrefetch(tlb.Config{Entries: 8, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	va := addr.VA(0x5000)
	pf.Access(va, smallPage(va))
	if n := pf.Invalidate(smallPage(va)); n != 1 {
		t.Fatalf("Invalidate = %d", n)
	}
	pf.Flush()
	if pf.Entries() != 8 || pf.Name() == "" {
		t.Fatal("accessors")
	}
}

// Both wrappers must behave as drop-in TLBs in a full two-page
// simulation (promotion invalidations included) and never beat the
// laws of accounting.
func TestWrappersInFullSimulation(t *testing.T) {
	const refs = 150_000
	for _, mk := range []func() tlb.TLB{
		func() tlb.TLB {
			v, err := NewVictim(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact}, 4)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
		func() tlb.TLB {
			p, err := NewPrefetch(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	} {
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(refs / 8))
		sim := core.NewSimulator(pol, []tlb.TLB{mk()})
		res, err := sim.Run(context.Background(), workload.MustNew("tomcatv", refs))
		if err != nil {
			t.Fatal(err)
		}
		st := res.TLBs[0].Stats
		if st.Accesses != refs {
			t.Fatalf("accesses = %d", st.Accesses)
		}
		if st.Hits()+st.Misses() != st.Accesses {
			t.Fatalf("accounting: %+v", st)
		}
	}
}

// The victim buffer must specifically help tomcatv's large-page-index
// thrash: same total entries, fewer misses.
func TestVictimHelpsTomcatv(t *testing.T) {
	const refs = 300_000
	run := func(mk func() tlb.TLB) uint64 {
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(refs / 8))
		sim := core.NewSimulator(pol, []tlb.TLB{mk()})
		res, err := sim.Run(context.Background(), workload.MustNew("tomcatv", refs))
		if err != nil {
			t.Fatal(err)
		}
		return res.TLBs[0].Stats.Misses()
	}
	plain := run(func() tlb.TLB {
		return tlb.MustNew(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact})
	})
	vict := run(func() tlb.TLB {
		v, err := NewVictim(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return v
	})
	if vict*2 > plain {
		t.Fatalf("victim buffer should at least halve tomcatv misses: plain %d vs victim %d",
			plain, vict)
	}
}

func TestTwoLevelBasics(t *testing.T) {
	tl, err := NewTwoLevel(
		tlb.Config{Entries: 2, Ways: 2},
		tlb.Config{Entries: 8, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Entries() != 10 || tl.Name() == "" {
		t.Fatal("accessors")
	}
	// Fill 4 pages: L1 holds 2, L2 holds all 4.
	for i := 0; i < 4; i++ {
		va := addr.VA(i << addr.Shift4K)
		if tl.Access(va, smallPage(va)) {
			t.Fatal("cold access must miss")
		}
	}
	// Page 0 fell out of L1 but sits in L2: an L2 hit.
	va := addr.VA(0)
	if !tl.Access(va, smallPage(va)) {
		t.Fatal("L2 should satisfy the re-access")
	}
	if tl.L2Hits != 1 {
		t.Fatalf("L2 hits = %d", tl.L2Hits)
	}
	st := tl.Stats()
	if st.Misses() != 4 || st.Hits() != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Invalidate removes from both levels.
	if n := tl.Invalidate(smallPage(va)); n != 2 {
		t.Fatalf("Invalidate = %d, want 2 (L1+L2)", n)
	}
	tl.Flush()
	if tl.Access(addr.VA(1<<addr.Shift4K), smallPage(addr.VA(1<<addr.Shift4K))) {
		t.Fatal("post-flush access must miss")
	}
}

func TestTwoLevelValidation(t *testing.T) {
	if _, err := NewTwoLevel(tlb.Config{Entries: 0}, tlb.Config{Entries: 8}); err == nil {
		t.Fatal("bad L1 should fail")
	}
	if _, err := NewTwoLevel(tlb.Config{Entries: 4}, tlb.Config{Entries: -1}); err == nil {
		t.Fatal("bad L2 should fail")
	}
}

// A two-level hierarchy must produce far fewer software misses than the
// bare L1 on a working set that fits the L2.
func TestTwoLevelReducesSoftwareMisses(t *testing.T) {
	const refs = 200_000
	run := func(mk func() tlb.TLB) uint64 {
		pol := policy.NewSingle(addr.Size4K)
		sim := core.NewSimulator(pol, []tlb.TLB{mk()})
		res, err := sim.Run(context.Background(), workload.MustNew("li", refs))
		if err != nil {
			t.Fatal(err)
		}
		return res.TLBs[0].Stats.Misses()
	}
	bare := run(func() tlb.TLB { return tlb.MustNew(tlb.Config{Entries: 16, Ways: 16}) })
	twoLvl := run(func() tlb.TLB {
		h, err := NewTwoLevel(tlb.Config{Entries: 16, Ways: 16}, tlb.Config{Entries: 128, Ways: 4})
		if err != nil {
			t.Fatal(err)
		}
		return h
	})
	if twoLvl*4 > bare {
		t.Fatalf("two-level misses %d should be a small fraction of bare %d", twoLvl, bare)
	}
}
