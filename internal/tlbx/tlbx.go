// Package tlbx provides TLB organizations beyond the paper's design
// space, targeting the pathologies its evaluation exposes:
//
//   - Victim: a small fully associative victim buffer behind a
//     set-associative TLB (after Jouppi, ISCA 1990). The paper's
//     set-associative results suffer exactly the conflict misses a
//     victim buffer absorbs — tomcatv's seven arrays colliding in one
//     large-page-index set being the extreme case — and its conclusion
//     warns against page sizes "that require the use of a fully
//     associative TLB"; a victim buffer is the classic middle ground.
//
//   - Prefetch: next-page translation prefetching on a miss. Sequential
//     scans (matrix rows, x11perf copies) take one compulsory-style miss
//     per page; prefetching the successor translation converts most of
//     them into hits at the cost of possible pollution.
//
// Both wrappers implement tlb.TLB and keep their own statistics, so the
// experiment harness can drop them into any configuration.
package tlbx

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/policy"
	"twopage/internal/tlb"
)

// Victim is a set-associative TLB backed by a small fully associative
// victim buffer. Main-TLB evictions land in the buffer; a main miss
// that hits the buffer swaps the entry back, costing far less than a
// full software miss.
type Victim struct {
	main  *tlb.SetAssoc
	buf   *tlb.SetAssoc
	stats tlb.Stats
	// VictimHits counts main-TLB misses satisfied by the buffer; they
	// are counted as hits in Stats (the swap is a hardware action, not
	// a software miss).
	VictimHits uint64
}

// NewVictim wraps a main TLB configuration with a fully associative
// victim buffer of bufEntries entries.
func NewVictim(mainCfg tlb.Config, bufEntries int) (*Victim, error) {
	main, err := tlb.New(mainCfg)
	if err != nil {
		return nil, fmt.Errorf("victim main: %w", err)
	}
	buf, err := tlb.New(tlb.Config{
		Entries: bufEntries, Ways: bufEntries,
		Shifts: main.Classes().Shifts(),
	})
	if err != nil {
		return nil, fmt.Errorf("victim buffer: %w", err)
	}
	return &Victim{main: main, buf: buf,
		stats: tlb.NewStats(main.Classes())}, nil
}

// Access implements tlb.TLB.
func (v *Victim) Access(va addr.VA, p policy.Page) bool {
	v.stats.Accesses++
	k := v.main.Classes().ClassOf(uint(p.Shift))
	if v.main.Probe(va, p) {
		v.stats.Count(k, true)
		return true
	}
	// Main miss: consult the victim buffer.
	bufHit := v.buf.Probe(va, p)
	if bufHit {
		v.buf.Invalidate(p) // entry moves back to the main TLB
		v.VictimHits++
	}
	if evicted, had := v.main.Insert(va, p); had {
		// The displaced main entry retires into the victim buffer.
		v.buf.Insert(evicted.Base(), evicted)
	}
	v.stats.Count(k, bufHit)
	return bufHit
}

// Invalidate implements tlb.TLB.
func (v *Victim) Invalidate(p policy.Page) int {
	n := v.main.Invalidate(p) + v.buf.Invalidate(p)
	v.stats.Invalidations += uint64(n)
	return n
}

// Flush implements tlb.TLB.
func (v *Victim) Flush() {
	v.main.Flush()
	v.buf.Flush()
}

// Stats implements tlb.TLB.
func (v *Victim) Stats() tlb.Stats { return v.stats }

// Entries implements tlb.TLB.
func (v *Victim) Entries() int { return v.main.Entries() + v.buf.Entries() }

// Name implements tlb.TLB.
func (v *Victim) Name() string {
	return fmt.Sprintf("%s + %d-entry victim", v.main.Name(), v.buf.Entries())
}

// Halves exposes the main TLB and victim buffer for inspection.
func (v *Victim) Halves() (main, buf *tlb.SetAssoc) { return v.main, v.buf }

// Prefetch wraps a TLB with next-page translation prefetching: on a
// demand miss to page p, the translation for page p+1 (same size) is
// installed as well. Real systems can do this because the miss handler
// already has the page table cache-hot; we charge nothing extra, making
// the experiment an upper bound on the benefit.
type Prefetch struct {
	inner *tlb.SetAssoc
	stats tlb.Stats
	// Prefetches counts speculative insertions.
	Prefetches uint64
}

// NewPrefetch wraps the configuration with next-page prefetching.
func NewPrefetch(cfg tlb.Config) (*Prefetch, error) {
	inner, err := tlb.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Prefetch{inner: inner, stats: tlb.NewStats(inner.Classes())}, nil
}

// Access implements tlb.TLB.
func (p *Prefetch) Access(va addr.VA, pg policy.Page) bool {
	p.stats.Accesses++
	hit := p.inner.Probe(va, pg)
	if !hit {
		p.inner.Insert(va, pg)
		next := policy.Page{Number: pg.Number + 1, Shift: pg.Shift}
		p.inner.Insert(next.Base(), next)
		p.Prefetches++
	}
	p.stats.Count(p.inner.Classes().ClassOf(uint(pg.Shift)), hit)
	return hit
}

// Invalidate implements tlb.TLB.
func (p *Prefetch) Invalidate(pg policy.Page) int {
	n := p.inner.Invalidate(pg)
	p.stats.Invalidations += uint64(n)
	return n
}

// Flush implements tlb.TLB.
func (p *Prefetch) Flush() { p.inner.Flush() }

// Stats implements tlb.TLB.
func (p *Prefetch) Stats() tlb.Stats { return p.stats }

// Entries implements tlb.TLB.
func (p *Prefetch) Entries() int { return p.inner.Entries() }

// Name implements tlb.TLB.
func (p *Prefetch) Name() string {
	return p.inner.Name() + " + next-page prefetch"
}

// Compile-time interface checks.
var (
	_ tlb.TLB = (*Victim)(nil)
	_ tlb.TLB = (*Prefetch)(nil)
)

// TwoLevel stacks a small, fast L1 TLB in front of a larger L2 TLB:
// the design that later became standard when physically tagged caches
// capped L1 TLB sizes (the paper's Section 1 tension). L1 misses that
// hit the L2 refill the L1 in hardware; only double misses invoke the
// software handler. Contents are managed inclusively: entries are
// installed in both levels, and invalidations hit both.
type TwoLevel struct {
	l1, l2 *tlb.SetAssoc
	stats  tlb.Stats
	// L2Hits counts L1 misses satisfied by the L2 (hardware refills).
	L2Hits uint64
}

// NewTwoLevel builds the hierarchy from the two level configurations.
func NewTwoLevel(l1Cfg, l2Cfg tlb.Config) (*TwoLevel, error) {
	l1, err := tlb.New(l1Cfg)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := tlb.New(l2Cfg)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &TwoLevel{l1: l1, l2: l2, stats: tlb.NewStats(l1.Classes())}, nil
}

// Access implements tlb.TLB. A hit means either level held the
// translation; only a double miss counts as a (software-visible) miss.
func (t *TwoLevel) Access(va addr.VA, p policy.Page) bool {
	t.stats.Accesses++
	hit := t.l1.Probe(va, p)
	if !hit {
		if t.l2.Probe(va, p) {
			t.L2Hits++
			hit = true
			t.l1.Insert(va, p) // hardware refill
		} else {
			t.l1.Insert(va, p)
			t.l2.Insert(va, p)
		}
	}
	t.stats.Count(t.l1.Classes().ClassOf(uint(p.Shift)), hit)
	return hit
}

// Invalidate implements tlb.TLB.
func (t *TwoLevel) Invalidate(p policy.Page) int {
	n := t.l1.Invalidate(p) + t.l2.Invalidate(p)
	t.stats.Invalidations += uint64(n)
	return n
}

// Flush implements tlb.TLB.
func (t *TwoLevel) Flush() {
	t.l1.Flush()
	t.l2.Flush()
}

// Stats implements tlb.TLB.
func (t *TwoLevel) Stats() tlb.Stats { return t.stats }

// Entries implements tlb.TLB.
func (t *TwoLevel) Entries() int { return t.l1.Entries() + t.l2.Entries() }

// Name implements tlb.TLB.
func (t *TwoLevel) Name() string {
	return fmt.Sprintf("%d-entry L1 + %d-entry L2 TLB", t.l1.Entries(), t.l2.Entries())
}

// Levels exposes the two levels for inspection.
func (t *TwoLevel) Levels() (l1, l2 *tlb.SetAssoc) { return t.l1, t.l2 }

var _ tlb.TLB = (*TwoLevel)(nil)
