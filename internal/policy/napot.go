package policy

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/htab"
)

// NapotConfig parameterizes the contiguity-driven assignment policy
// modeled on RISC-V SVNAPOT: a region is promoted to class k only once
// every base block inside it has been touched, i.e. the mapping is
// naturally aligned and fully populated. No reference window and no
// demotion — contiguity, once established, is assumed to persist.
type NapotConfig struct {
	// Classes is the page-size hierarchy; class 0 must be the 4KB block.
	// 2 to addr.MaxSizeClasses levels.
	Classes addr.SizeClasses
	// Deny, if non-nil, vetoes promotion of a specific class-k region.
	Deny func(level int, region addr.PN) bool
}

// Napot is the SVNAPOT-style alternative to the window-based Ladder: it
// tracks first touches of base blocks and promotes a region the moment
// the region becomes fully populated. Because population only grows,
// promotions are monotone and the policy needs no sliding window —
// making it the cheap-hardware contrast case for the ladder sweeps.
type Napot struct {
	cfg     NapotConfig
	touched *htab.Set                          // base blocks touched at least once
	full    [addr.MaxSizeClasses]*htab.Counter // k >= 1: region -> touched base blocks
	mapped  [addr.MaxSizeClasses]*htab.Set     // k >= 1: regions promoted to class k
	stats   LadderStats
}

// NewNapot returns the contiguity policy for the given configuration.
func NewNapot(cfg NapotConfig) *Napot {
	n := cfg.Classes.N()
	if n < 2 {
		panic(fmt.Sprintf("policy: napot needs at least two size classes, got %d", n))
	}
	if cfg.Classes.Shift(0) != addr.BlockShift {
		panic(fmt.Sprintf("policy: napot base class must be the 4KB block, got shift %d",
			cfg.Classes.Shift(0)))
	}
	p := &Napot{cfg: cfg, touched: htab.NewSet(1 << 10)}
	for k := 1; k < n; k++ {
		p.full[k] = htab.NewCounter(1 << 8)
		p.mapped[k] = htab.NewSet(1 << 8)
	}
	return p
}

// Config returns the policy's configuration.
func (p *Napot) Config() NapotConfig { return p.cfg }

// SizeClasses implements MultiSize.
func (p *Napot) SizeClasses() addr.SizeClasses { return p.cfg.Classes }

// Stats returns a snapshot of policy counters.
func (p *Napot) Stats() LadderStats {
	s := p.stats
	for k := 1; k < p.cfg.Classes.N(); k++ {
		s.Mapped[k] = p.mapped[k].Len()
	}
	return s
}

// MappedAt reports whether the class-k region is promoted (k >= 1).
func (p *Napot) MappedAt(k int, region addr.PN) bool {
	return p.mapped[k].Has(uint64(region))
}

// MappedCount returns how many regions are promoted at class k (k >= 1).
func (p *Napot) MappedCount(k int) int { return p.mapped[k].Len() }

// TopMappedClass returns the largest class covering the class-1 chunk c,
// or 0 if references in c resolve to base blocks. Used by the sampled
// N-size working-set calculator.
func (p *Napot) TopMappedClass(c addr.PN) int {
	for k := p.cfg.Classes.N() - 1; k >= 1; k-- {
		if p.mapped[k].Has(uint64(p.cfg.Classes.Up(c, 1, k))) {
			return k
		}
	}
	return 0
}

// Assign implements Assigner. A first touch of a base block bumps the
// population count of every enclosing region; each region that just
// became fully populated is promoted, and the event reports the topmost
// class promoted by this reference. Per-reference hot path: one set
// probe, plus counter updates only on first touches.
//
//paperlint:hot
func (p *Napot) Assign(va addr.VA) Result {
	p.stats.Refs++
	n := p.cfg.Classes.N()
	var res Result
	b := addr.Block(va)
	if p.touched.Add(uint64(b)) {
		for k := 1; k < n; k++ {
			r := p.cfg.Classes.Page(va, k)
			if int(p.full[k].Add(uint64(r), 1)) != p.cfg.Classes.BaseFanout(k) {
				continue
			}
			if p.mapped[k].Has(uint64(r)) ||
				(p.cfg.Deny != nil && p.cfg.Deny(k, r)) {
				continue
			}
			p.mapped[k].Add(uint64(r))
			p.stats.Promotions[k]++
			res.Event, res.Chunk, res.Level = EventPromote, r, k
		}
	}
	for k := n - 1; k >= 1; k-- {
		r := p.cfg.Classes.Page(va, k)
		if p.mapped[k].Has(uint64(r)) {
			p.stats.RefsByClass[k]++
			res.Page = Page{Number: r, Shift: p.cfg.Classes.Shift(k)}
			return res
		}
	}
	p.stats.RefsByClass[0]++
	res.Page = Page{Number: b, Shift: addr.BlockShift}
	return res
}

// Name implements Assigner, e.g. "4KB/32KB/256KB napot".
func (p *Napot) Name() string { return p.cfg.Classes.String() + " napot" }

var _ MultiSize = (*Napot)(nil)
