// Package policy implements page-size assignment: deciding, per
// reference, whether the referenced address lives on a small (4KB) or a
// large (32KB) page.
//
// The paper has no real operating system to consult, so it assigns page
// sizes dynamically during simulation (Section 3.4): the address space is
// treated as 32KB chunks of eight 4KB blocks; a chunk is mapped as one
// large page when at least half of its blocks were referenced within the
// last T references, and as small pages otherwise. This guarantees the
// working set at most doubles (promoting requires ≥16KB of the 32KB to
// be live).
//
// The package provides that dynamic policy (TwoSize) plus the static
// single-page-size policies used as baselines (Single), behind a common
// Assigner interface consumed by the TLB simulator and the working-set
// calculators.
package policy

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/window"
)

// Page identifies the translation unit that a reference falls on: a page
// number together with the page's shift (log2 size). Two pages are the
// same TLB entry iff both fields match.
type Page struct {
	Number addr.PN // page number (va >> Shift)
	Shift  uint    // log2 of the page size in bytes
}

// Size returns the page size in bytes.
func (p Page) Size() addr.PageSize { return addr.PageSize(1) << p.Shift }

// Base returns the first virtual address of the page.
func (p Page) Base() addr.VA { return addr.VA(uint64(p.Number) << p.Shift) }

// String formats the page for diagnostics.
func (p Page) String() string {
	return fmt.Sprintf("%s@%#x", p.Size(), uint64(p.Base()))
}

// Event reports a page-size transition triggered by observing a
// reference. The TLB simulator uses it to invalidate stale entries, and
// the miss-penalty model charges promotion costs through the two-page
// miss penalty (Section 3.4 of the paper folds promotion costs into the
// 25% penalty increase).
type Event uint8

// Event values.
const (
	EventNone    Event = iota // no transition
	EventPromote              // chunk switched from eight 4KB pages to one 32KB page
	EventDemote               // chunk switched from one 32KB page to eight 4KB pages
)

// Result is the outcome of assigning one reference.
type Result struct {
	Page  Page    // the page the reference falls on, after any transition
	Event Event   // transition triggered by this reference, if any
	Chunk addr.PN // region affected by the transition, numbered at class Level (valid when Event != EventNone)
	// Level is the size class a promotion enters or a demotion leaves;
	// always 1 for two-size policies, 1..N-1 for the N-level ladder.
	Level int
}

// Assigner maps each reference to its page and carries out any dynamic
// page-size transitions.
type Assigner interface {
	// Assign observes one reference and returns its page.
	Assign(va addr.VA) Result
	// Name identifies the policy in reports, e.g. "4KB" or "4KB/32KB".
	Name() string
}

// Single is the trivial policy: every address lives on a page of one
// fixed size. It is the baseline for every single-page-size experiment.
type Single struct {
	shift uint
	name  string
}

// NewSingle returns the single-page-size policy for the given size.
func NewSingle(size addr.PageSize) *Single {
	if !size.Valid() {
		panic(fmt.Sprintf("policy: invalid page size %d", size))
	}
	return &Single{shift: size.Shift(), name: size.String()}
}

// Assign implements Assigner.
func (s *Single) Assign(va addr.VA) Result {
	return Result{Page: Page{Number: addr.Page(va, s.shift), Shift: s.shift}}
}

// Name implements Assigner.
func (s *Single) Name() string { return s.name }

// Shift returns the policy's page shift.
func (s *Single) Shift() uint { return s.shift }

// TwoSizeConfig parameterizes the dynamic two-page-size policy.
type TwoSizeConfig struct {
	// T is the reference-window length used to judge block activity.
	// The paper uses the same T as the working-set parameter (10M for
	// full-size traces). Must be > 0.
	T int
	// Threshold is the number of active blocks (out of blocks-per-chunk)
	// at or above which a chunk is promoted to a large page. The paper
	// uses half ("whether half or more of the blocks in a chunk have
	// been accessed"): 4 of 8 for 32KB chunks. Must be in
	// [1, blocks-per-chunk].
	Threshold int
	// Demote, when true, demotes a large chunk back to small pages when
	// its active-block count falls below Threshold (checked on access to
	// the chunk). The paper assigns sizes "dynamically during the
	// simulation, looking at the last T references", which we read as
	// allowing both directions; set false for promote-only ablations.
	Demote bool
	// LargeShift is the large page's log2 size. Zero defaults to 32KB
	// (the paper's headline combination); 14 and 16 give the 4KB/16KB
	// and 4KB/64KB combinations the authors also measured but could not
	// print (Section 3.2).
	LargeShift uint
	// DenyPromotion, if non-nil, vetoes promotion of specific chunks.
	// The paper notes that larger pages coarsen the protection
	// granularity (Section 1, citing Appel & Li); an OS that keeps
	// sub-page-protected regions on small pages implements exactly this
	// hook.
	DenyPromotion func(c addr.PN) bool
}

// BlocksPerChunk returns how many 4KB blocks one large page spans under
// this configuration.
func (c TwoSizeConfig) BlocksPerChunk() int {
	ls := c.LargeShift
	if ls == 0 {
		ls = addr.ChunkShift
	}
	return 1 << (ls - addr.BlockShift)
}

// DefaultTwoSizeConfig returns the paper's parameters for a given window:
// 4KB/32KB with the half-or-more promotion threshold.
func DefaultTwoSizeConfig(T int) TwoSizeConfig {
	return TwoSizeConfig{T: T, Threshold: addr.BlocksPerChunk / 2, Demote: true,
		LargeShift: addr.ChunkShift}
}

// TwoSizeStats counts policy activity.
type TwoSizeStats struct {
	Refs        uint64 // references observed
	LargeRefs   uint64 // references that landed on large pages
	SmallRefs   uint64 // references that landed on small pages
	Promotions  uint64 // small→large transitions
	Demotions   uint64 // large→small transitions
	//paperlint:gauge chunks currently mapped large; last-writer on Merge, kept on Sub
	LargeChunks int
}

// Sub removes a previously recorded baseline from the flow counters,
// leaving the activity after the snapshot. LargeChunks is a gauge and
// is kept (see LadderStats.Sub).
func (s *TwoSizeStats) Sub(o TwoSizeStats) {
	s.Refs -= o.Refs
	s.LargeRefs -= o.LargeRefs
	s.SmallRefs -= o.SmallRefs
	s.Promotions -= o.Promotions
	s.Demotions -= o.Demotions
}

// Merge folds another shard's flow counters into s. LargeChunks is a
// gauge with last-writer semantics; the caller sets it from the final
// shard.
func (s *TwoSizeStats) Merge(o TwoSizeStats) {
	s.Refs += o.Refs
	s.LargeRefs += o.LargeRefs
	s.SmallRefs += o.SmallRefs
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
}

// TwoSize is the paper's dynamic page-size assignment policy
// (Section 3.4), kept as the two-class constructor over the N-level
// Ladder core — its decisions are pinned against the pre-generalization
// implementation by internal/tworef's differential tests. It owns a
// sliding-window tracker; the working-set calculator for the two-page
// scheme shares the same tracker via Window.
type TwoSize struct {
	cfg    TwoSizeConfig
	ladder *Ladder
}

// NewTwoSize returns the dynamic policy for the given configuration.
func NewTwoSize(cfg TwoSizeConfig) *TwoSize {
	if cfg.T <= 0 {
		panic("policy: TwoSizeConfig.T must be positive")
	}
	if cfg.LargeShift == 0 {
		cfg.LargeShift = addr.ChunkShift
	}
	if cfg.LargeShift <= addr.BlockShift || cfg.LargeShift > 24 {
		panic(fmt.Sprintf("policy: large shift %d out of range (%d,24]",
			cfg.LargeShift, addr.BlockShift))
	}
	bpc := cfg.BlocksPerChunk()
	if cfg.Threshold < 1 || cfg.Threshold > bpc {
		panic(fmt.Sprintf("policy: threshold %d out of range [1,%d]",
			cfg.Threshold, bpc))
	}
	lcfg := LadderConfig{
		T:          cfg.T,
		Classes:    addr.MustShiftClasses(addr.BlockShift, cfg.LargeShift),
		Thresholds: []int{cfg.Threshold},
		Demote:     cfg.Demote,
	}
	if deny := cfg.DenyPromotion; deny != nil {
		lcfg.Deny = func(_ int, region addr.PN) bool { return deny(region) }
	}
	return &TwoSize{cfg: cfg, ladder: NewLadder(lcfg)}
}

// Window exposes the policy's sliding-window tracker so that other
// consumers (the two-page working-set calculator) can observe the same
// window without a second ring buffer. Hooks must be registered before
// the first Assign.
func (p *TwoSize) Window() *window.Tracker { return p.ladder.Window() }

// Config returns the policy's configuration.
func (p *TwoSize) Config() TwoSizeConfig { return p.cfg }

// SizeClasses implements MultiSize.
func (p *TwoSize) SizeClasses() addr.SizeClasses { return p.ladder.SizeClasses() }

// Stats returns a snapshot of policy counters.
func (p *TwoSize) Stats() TwoSizeStats {
	ls := p.ladder.Stats()
	return TwoSizeStats{
		Refs:        ls.Refs,
		LargeRefs:   ls.RefsByClass[1],
		SmallRefs:   ls.RefsByClass[0],
		Promotions:  ls.Promotions[1],
		Demotions:   ls.Demotions[1],
		LargeChunks: p.ladder.MappedCount(1),
	}
}

// IsLarge reports whether chunk c is currently mapped as a large page.
func (p *TwoSize) IsLarge(c addr.PN) bool { return p.ladder.MappedAt(1, c) }

// Assign implements Assigner: it records the reference in the window,
// applies the promotion/demotion rule to the referenced chunk, and
// returns the page the reference falls on under the resulting mapping.
// Per-reference hot path: one delegated ladder step.
//
//paperlint:hot
func (p *TwoSize) Assign(va addr.VA) Result { return p.ladder.Assign(va) }

// Name implements Assigner.
func (p *TwoSize) Name() string {
	return fmt.Sprintf("4KB/%s", addr.PageSize(1)<<p.cfg.LargeShift)
}

// LargeFraction returns the fraction of references that landed on large
// pages so far; it quantifies how much use the policy made of large pages
// (Section 5.2 attributes espresso/worm degradation to "insufficient use
// of large pages during page-size assignment").
func (p *TwoSize) LargeFraction() float64 {
	ls := p.ladder.Stats()
	if ls.Refs == 0 {
		return 0
	}
	return float64(ls.RefsByClass[1]) / float64(ls.Refs)
}
