package policy

import (
	"strings"
	"testing"

	"twopage/internal/addr"
)

func TestRegionAssign(t *testing.T) {
	p, err := NewRegion(RegionConfig{LargeRegions: []Range{
		{Start: 0x10000, End: 0x30000},   // chunks 2..5
		{Start: 0x100000, End: 0x108000}, // chunk 32
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Inside the first region.
	res := p.Assign(0x18000)
	if res.Page.Shift != addr.ChunkShift || res.Page.Number != 3 {
		t.Fatalf("in-region assign: %+v", res.Page)
	}
	if res.Event != EventNone {
		t.Fatal("static policy must not emit events")
	}
	// 0x2FFFF is in chunk 5, the last chunk of [0x10000, 0x30000).
	if got := p.Assign(0x2FFFF); got.Page.Shift != addr.ChunkShift {
		t.Fatalf("end of region: %+v", got.Page)
	}
	if got := p.Assign(0x30000); got.Page.Shift != addr.BlockShift {
		t.Fatalf("past end should be small: %+v", got.Page)
	}
	// Outside any region.
	if got := p.Assign(0x50000); got.Page.Shift != addr.BlockShift {
		t.Fatalf("outside assign: %+v", got.Page)
	}
	// One-chunk region covers its whole chunk.
	if got := p.Assign(0x107FFF); got.Page.Shift != addr.ChunkShift {
		t.Fatalf("one-chunk region: %+v", got.Page)
	}
	st := p.Stats()
	if st.Refs != 5 || st.LargeRefs != 3 || st.SmallRefs != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if p.Name() != "4KB/32KB static" {
		t.Fatalf("name: %q", p.Name())
	}
}

func TestRegionCoalescesAdjacent(t *testing.T) {
	p, err := NewRegion(RegionConfig{LargeRegions: []Range{
		{Start: 0x40000, End: 0x50000},
		{Start: 0x50000, End: 0x60000}, // adjacent to the previous
		{Start: 0x00000, End: 0x08000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range []addr.VA{0x0, 0x40000, 0x4C000, 0x5FFFF} {
		if got := p.Assign(va); got.Page.Shift != addr.ChunkShift {
			t.Fatalf("va %#x should be large", uint64(va))
		}
	}
	if got := p.Assign(0x60000); got.Page.Shift != addr.BlockShift {
		t.Fatal("past coalesced end should be small")
	}
}

func TestRegionValidation(t *testing.T) {
	cases := []struct {
		name    string
		regions []Range
		wantErr string // substring of the error; "" means valid
	}{
		{"no regions", nil, ""},
		{"one chunk", []Range{{Start: 0x8000, End: 0x10000}}, ""},
		{"adjacent", []Range{{Start: 0x0, End: 0x8000}, {Start: 0x8000, End: 0x10000}}, ""},
		{"empty range", []Range{{Start: 5, End: 5}}, "region 0 [0x5, 0x5) is empty"},
		{"inverted range", []Range{{Start: 0x10000, End: 0x8000}}, "is empty"},
		{"unaligned start", []Range{{Start: 0x1000, End: 0x8000}},
			"region 0 [0x1000, 0x8000) is not 32KB-aligned"},
		{"unaligned end", []Range{{Start: 0x8000, End: 0x9000}},
			"region 0 [0x8000, 0x9000) is not 32KB-aligned"},
		{"overlap", []Range{{Start: 0x40000, End: 0x50000}, {Start: 0x48000, End: 0x60000}},
			"region 1 [0x48000, 0x60000) overlaps region 0 [0x40000, 0x50000)"},
		{"duplicate", []Range{{Start: 0x8000, End: 0x10000}, {Start: 0x8000, End: 0x10000}},
			"overlaps"},
		{"contained", []Range{{Start: 0x0, End: 0x20000}, {Start: 0x8000, End: 0x10000}},
			"overlaps"},
		{"overlap given out of order", []Range{{Start: 0x48000, End: 0x60000}, {Start: 0x40000, End: 0x50000}},
			"region 0 [0x48000, 0x60000) overlaps region 1 [0x40000, 0x50000)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewRegion(RegionConfig{LargeRegions: tc.regions})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
			if p != nil {
				t.Fatal("policy should be nil on error")
			}
		})
	}
	// No regions at all: everything small.
	p, err := NewRegion(RegionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Assign(0x1234); got.Page.Shift != addr.BlockShift {
		t.Fatal("regionless policy should be all-small")
	}
}

func TestCumulativePromotesOnceForever(t *testing.T) {
	p := NewCumulative(CumulativeConfig{Threshold: 4})
	// Touch 4 distinct blocks of chunk 0, spread over "time" with heavy
	// interleaved traffic elsewhere — no window, so it still promotes.
	for i := 0; i < 3; i++ {
		res := p.Assign(addr.VA(i * addr.BlockSize))
		if res.Event != EventNone {
			t.Fatalf("premature event: %+v", res)
		}
	}
	for i := 0; i < 100; i++ {
		p.Assign(addr.VA(50<<addr.ChunkShift) + addr.VA(i%3*addr.BlockSize))
	}
	res := p.Assign(addr.VA(3 * addr.BlockSize))
	if res.Event != EventPromote || res.Chunk != 0 {
		t.Fatalf("expected promotion: %+v", res)
	}
	if !p.IsLarge(0) {
		t.Fatal("chunk 0 should be large")
	}
	// Never demotes, no matter what happens afterwards.
	for i := 0; i < 1000; i++ {
		p.Assign(addr.VA(60 << addr.ChunkShift))
	}
	if got := p.Assign(0); got.Page.Shift != addr.ChunkShift || got.Event != EventNone {
		t.Fatalf("cumulative policy must never demote: %+v", got)
	}
	st := p.Stats()
	if st.Promotions != 1 || st.Demotions != 0 || st.LargeChunks != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LargeRefs+st.SmallRefs != st.Refs {
		t.Fatalf("accounting: %+v", st)
	}
}

func TestCumulativeRepeatedBlockDoesNotCount(t *testing.T) {
	p := NewCumulative(CumulativeConfig{Threshold: 2})
	for i := 0; i < 10; i++ {
		if res := p.Assign(0x100); res.Event != EventNone {
			t.Fatal("same block repeatedly must not promote")
		}
	}
	if res := p.Assign(0x100 + addr.BlockSize); res.Event != EventPromote {
		t.Fatal("second distinct block should promote at threshold 2")
	}
}

func TestCumulativeValidation(t *testing.T) {
	for _, thr := range []int{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("threshold %d should panic", thr)
				}
			}()
			NewCumulative(CumulativeConfig{Threshold: thr})
		}()
	}
	if NewCumulative(CumulativeConfig{Threshold: 4}).Name() != "4KB/32KB cumulative" {
		t.Fatal("name")
	}
}
