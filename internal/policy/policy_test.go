package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
)

func TestPageHelpers(t *testing.T) {
	p := Page{Number: 3, Shift: addr.Shift32K}
	if p.Size() != addr.Size32K {
		t.Fatalf("Size = %v", p.Size())
	}
	if p.Base() != addr.VA(3<<addr.Shift32K) {
		t.Fatalf("Base = %#x", uint64(p.Base()))
	}
	if p.String() != "32KB@0x18000" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestSingleAssign(t *testing.T) {
	for _, size := range []addr.PageSize{addr.Size4K, addr.Size8K, addr.Size32K} {
		s := NewSingle(size)
		if s.Name() != size.String() {
			t.Fatalf("Name = %q", s.Name())
		}
		res := s.Assign(addr.VA(0x12345))
		if res.Event != EventNone {
			t.Fatal("single policy must not emit events")
		}
		if res.Page.Shift != size.Shift() {
			t.Fatalf("shift = %d", res.Page.Shift)
		}
		if res.Page.Number != addr.Page(0x12345, size.Shift()) {
			t.Fatalf("page = %#x", uint64(res.Page.Number))
		}
	}
}

func TestSinglePanicsOnInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSingle(addr.PageSize(3000))
}

func TestTwoSizeConfigValidation(t *testing.T) {
	for _, cfg := range []TwoSizeConfig{
		{T: 0, Threshold: 4},
		{T: 10, Threshold: 0},
		{T: 10, Threshold: 9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewTwoSize(cfg)
		}()
	}
}

// Touch the first n distinct blocks of chunk c once each.
func touchBlocks(p *TwoSize, c addr.PN, n int) []Result {
	var out []Result
	base := addr.VA(uint64(c) << addr.ChunkShift)
	for i := 0; i < n; i++ {
		out = append(out, p.Assign(base+addr.VA(i*addr.BlockSize)))
	}
	return out
}

func TestPromotionAtThreshold(t *testing.T) {
	p := NewTwoSize(DefaultTwoSizeConfig(1000))
	res := touchBlocks(p, 5, 4)
	// First three assignments: small pages, no events.
	for i := 0; i < 3; i++ {
		if res[i].Event != EventNone || res[i].Page.Shift != addr.BlockShift {
			t.Fatalf("ref %d: %+v", i, res[i])
		}
	}
	// Fourth distinct block reaches the threshold: promotion, and the
	// reference itself lands on the large page.
	if res[3].Event != EventPromote || res[3].Chunk != 5 {
		t.Fatalf("ref 3: %+v", res[3])
	}
	if res[3].Page.Shift != addr.ChunkShift || res[3].Page.Number != 5 {
		t.Fatalf("ref 3 page: %+v", res[3].Page)
	}
	if !p.IsLarge(5) {
		t.Fatal("chunk 5 should be large")
	}
	st := p.Stats()
	if st.Promotions != 1 || st.Demotions != 0 || st.LargeChunks != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LargeRefs != 1 || st.SmallRefs != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDemotionWhenActivityExpires(t *testing.T) {
	cfg := DefaultTwoSizeConfig(8)
	p := NewTwoSize(cfg)
	touchBlocks(p, 0, 4) // promote chunk 0
	if !p.IsLarge(0) {
		t.Fatal("chunk 0 should be large")
	}
	// Flood the window with refs to a distant chunk so chunk 0's blocks
	// expire, then touch chunk 0 once: demotion happens on that access.
	for i := 0; i < 8; i++ {
		p.Assign(addr.VA(100<<addr.ChunkShift) + addr.VA(i*addr.BlockSize))
	}
	res := p.Assign(addr.VA(0))
	if res.Event != EventDemote || res.Chunk != 0 {
		t.Fatalf("expected demotion, got %+v", res)
	}
	if res.Page.Shift != addr.BlockShift {
		t.Fatalf("post-demotion page: %+v", res.Page)
	}
	if p.IsLarge(0) {
		t.Fatal("chunk 0 should be small again")
	}
	if st := p.Stats(); st.Demotions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNoDemotionWhenDisabled(t *testing.T) {
	cfg := DefaultTwoSizeConfig(8)
	cfg.Demote = false
	p := NewTwoSize(cfg)
	touchBlocks(p, 0, 4)
	for i := 0; i < 8; i++ {
		p.Assign(addr.VA(100<<addr.ChunkShift) + addr.VA(i*addr.BlockSize))
	}
	res := p.Assign(addr.VA(0))
	if res.Event != EventNone || res.Page.Shift != addr.ChunkShift {
		t.Fatalf("promote-only policy demoted: %+v", res)
	}
}

func TestThresholdOne(t *testing.T) {
	cfg := TwoSizeConfig{T: 100, Threshold: 1, Demote: true}
	p := NewTwoSize(cfg)
	res := p.Assign(addr.VA(0x12345))
	if res.Event != EventPromote {
		t.Fatalf("threshold-1 policy should promote on first touch: %+v", res)
	}
	if res.Page.Shift != addr.ChunkShift {
		t.Fatalf("page: %+v", res.Page)
	}
}

func TestLargeFraction(t *testing.T) {
	p := NewTwoSize(DefaultTwoSizeConfig(1000))
	if p.LargeFraction() != 0 {
		t.Fatal("initial LargeFraction should be 0")
	}
	touchBlocks(p, 0, 8)
	// 3 small refs then 5 large refs.
	if got, want := p.LargeFraction(), 5.0/8.0; got != want {
		t.Fatalf("LargeFraction = %v, want %v", got, want)
	}
}

func TestName(t *testing.T) {
	if NewTwoSize(DefaultTwoSizeConfig(10)).Name() != "4KB/32KB" {
		t.Fatal("bad name")
	}
}

// Property (paper Section 3.4): with the half-or-more threshold, the
// mapped size of the working set under the two-page policy never exceeds
// 2x the 4KB mapped size. We check the per-chunk invariant: a chunk is
// large only if >= 4 of its blocks are active at the moment of the check.
func TestWorstCaseDoubling(t *testing.T) {
	f := func(seed int64, nRefs uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewTwoSize(DefaultTwoSizeConfig(64))
		for i := 0; i < int(nRefs%2000)+100; i++ {
			// Skewed traffic over 4 chunks.
			c := addr.PN(rng.Intn(4))
			b := rng.Intn(addr.BlocksPerChunk)
			va := addr.VA(uint64(c)<<addr.ChunkShift + uint64(b)<<addr.BlockShift)
			res := p.Assign(va)
			// Invariant: a reference lands on a large page only when the
			// chunk has >= threshold active blocks right now.
			if res.Page.Shift == addr.ChunkShift {
				if p.Window().ChunkActive(addr.Chunk(va)) < p.Config().Threshold {
					return false
				}
			}
			// Invariant: events only ever concern the referenced chunk.
			if res.Event != EventNone && res.Chunk != addr.Chunk(va) {
				return false
			}
		}
		// Mapped size <= 2x active size, chunk by chunk. The policy can
		// only demote on a reference to the chunk, so give each chunk one
		// demotion opportunity first: without it a large chunk whose
		// blocks aged out of the window after its last reference would
		// (correctly, per the mechanism) still be mapped large.
		for c := addr.PN(0); c < 4; c++ {
			p.Assign(addr.VA(uint64(c) << addr.ChunkShift))
			if p.IsLarge(c) {
				active := p.Window().ChunkActive(c)
				if uint64(addr.ChunkSize) > 2*uint64(active)*addr.BlockSize {
					return false
				}
			}
		}
		return true
	}
	// Fixed seed: quick's default source is time-seeded, which makes the
	// test draw different inputs every run.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: stats are consistent — LargeRefs+SmallRefs == Refs, and
// promotions >= demotions always (can't demote what was never promoted).
func TestStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewTwoSize(DefaultTwoSizeConfig(32))
		for i := 0; i < 3000; i++ {
			va := addr.VA(rng.Intn(1 << 18))
			p.Assign(va)
			st := p.Stats()
			if st.LargeRefs+st.SmallRefs != st.Refs {
				return false
			}
			if st.Demotions > st.Promotions {
				return false
			}
			if st.LargeChunks < 0 || uint64(st.LargeChunks) > st.Promotions {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTwoSizeAssign(b *testing.B) {
	p := NewTwoSize(DefaultTwoSizeConfig(1 << 16))
	rng := rand.New(rand.NewSource(1))
	vas := make([]addr.VA, 1<<14)
	for i := range vas {
		vas[i] = addr.VA(rng.Intn(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Assign(vas[i&(len(vas)-1)])
	}
}

func TestGeneralizedLargeShift(t *testing.T) {
	// 4KB/16KB: chunks are 4 blocks, threshold 2 (half).
	cfg := TwoSizeConfig{T: 100, Threshold: 2, Demote: true, LargeShift: addr.Shift16K}
	if cfg.BlocksPerChunk() != 4 {
		t.Fatalf("blocks per 16KB chunk = %d", cfg.BlocksPerChunk())
	}
	p := NewTwoSize(cfg)
	if p.Name() != "4KB/16KB" {
		t.Fatalf("name = %q", p.Name())
	}
	// Two blocks of a 16KB chunk trigger promotion.
	p.Assign(addr.VA(0))
	res := p.Assign(addr.VA(addr.BlockSize))
	if res.Event != EventPromote {
		t.Fatalf("expected promotion, got %+v", res)
	}
	if res.Page.Shift != addr.Shift16K || res.Page.Number != 0 {
		t.Fatalf("page = %+v", res.Page)
	}

	// 4KB/64KB: 16 blocks per chunk.
	cfg64 := TwoSizeConfig{T: 1000, Threshold: 8, Demote: true, LargeShift: addr.Shift64K}
	p64 := NewTwoSize(cfg64)
	if p64.Name() != "4KB/64KB" {
		t.Fatalf("name = %q", p64.Name())
	}
	var got Result
	for i := 0; i < 8; i++ {
		got = p64.Assign(addr.VA(i * addr.BlockSize))
	}
	if got.Event != EventPromote || got.Page.Shift != addr.Shift64K {
		t.Fatalf("64KB promotion: %+v", got)
	}
}

func TestLargeShiftValidation(t *testing.T) {
	for _, cfg := range []TwoSizeConfig{
		{T: 10, Threshold: 1, LargeShift: addr.BlockShift}, // not larger than small
		{T: 10, Threshold: 1, LargeShift: 30},              // absurdly large
		{T: 10, Threshold: 5, LargeShift: addr.Shift16K},   // threshold > 4 blocks
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewTwoSize(cfg)
		}()
	}
}

func TestDefaultConfigIsPaper(t *testing.T) {
	cfg := DefaultTwoSizeConfig(10)
	if cfg.LargeShift != addr.ChunkShift || cfg.Threshold != 4 || !cfg.Demote {
		t.Fatalf("default config: %+v", cfg)
	}
}

func TestDenyPromotion(t *testing.T) {
	cfg := DefaultTwoSizeConfig(1000)
	cfg.DenyPromotion = func(c addr.PN) bool { return c == 0 }
	p := NewTwoSize(cfg)
	// Chunk 0: vetoed forever, stays small no matter how dense.
	for i := 0; i < addr.BlocksPerChunk; i++ {
		res := p.Assign(addr.VA(i * addr.BlockSize))
		if res.Event != EventNone || res.Page.Shift != addr.BlockShift {
			t.Fatalf("vetoed chunk promoted: %+v", res)
		}
	}
	// Chunk 1: promotes normally.
	var last Result
	for i := 0; i < 4; i++ {
		last = p.Assign(addr.VA(addr.ChunkSize) + addr.VA(i*addr.BlockSize))
	}
	if last.Event != EventPromote || last.Chunk != 1 {
		t.Fatalf("unvetoed chunk should promote: %+v", last)
	}
}
