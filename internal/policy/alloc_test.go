package policy

import (
	"testing"

	"twopage/internal/addr"
)

// policyStream is a deterministic mix of hot-loop and excursion
// references that triggers promotions and demotions.
func policyStream(n int) []addr.VA {
	out := make([]addr.VA, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if i%11 == 0 {
			out[i] = addr.VA(x % (1 << 24))
			continue
		}
		out[i] = addr.VA(x % (1 << 18))
	}
	return out
}

// TestAssignAllocs pins the dynamic policy's per-reference path —
// window step, chunk-activity probe, large-set update — at zero
// steady-state allocations.
func TestAssignAllocs(t *testing.T) {
	p := NewTwoSize(DefaultTwoSizeConfig(1 << 12))
	stream := policyStream(1 << 15)
	for _, va := range stream {
		p.Assign(va)
	}
	if s := p.Stats(); s.Promotions == 0 {
		t.Fatal("warmup produced no promotions; stream too cold to be a meaningful pin")
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		p.Assign(stream[i&(1<<15-1)])
		i++
	})
	if avg != 0 {
		t.Errorf("TwoSize.Assign allocates %.2f times per call, want 0", avg)
	}
}

// TestCumulativeAssignAllocs pins the windowless policy's path too.
func TestCumulativeAssignAllocs(t *testing.T) {
	p := NewCumulative(CumulativeConfig{Threshold: 4})
	stream := policyStream(1 << 15)
	for _, va := range stream {
		p.Assign(va)
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		p.Assign(stream[i&(1<<15-1)])
		i++
	})
	if avg != 0 {
		t.Errorf("Cumulative.Assign allocates %.2f times per call, want 0", avg)
	}
}
