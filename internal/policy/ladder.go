package policy

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/htab"
	"twopage/internal/window"
)

// MultiSize is implemented by every policy that assigns pages from a
// multi-size hierarchy. The simulator uses it to size the miss-penalty
// model and to know which classes a promotion/demotion event spans.
type MultiSize interface {
	Assigner
	// SizeClasses returns the policy's page-size hierarchy, smallest
	// class first.
	SizeClasses() addr.SizeClasses
}

// LadderConfig parameterizes the N-level promotion ladder, the
// generalization of the paper's Section 3.4 policy to hierarchies like
// Trident's 4K/2M/1G: block→chunk→superchunk, each level promoted when
// enough of its children are live in the reference window.
type LadderConfig struct {
	// T is the reference-window length used to judge block activity,
	// exactly as in TwoSizeConfig. Must be > 0.
	T int
	// Classes is the page-size hierarchy. Class 0 must be the 4KB block
	// (the window tracker's unit); 2 to addr.MaxSizeClasses levels, all
	// shifts at most 24 (the window's chunk-counting bound).
	Classes addr.SizeClasses
	// Thresholds[k-1] is the support needed to promote a class-k region:
	// for k == 1, active blocks in the window (the paper's rule); for
	// k >= 2, currently mapped class-(k-1) children. Each must be in
	// [1, Classes.Fanout(k)].
	Thresholds []int
	// Demote, when true, demotes a mapped region back when its support
	// falls below the threshold (checked on access, top level first).
	Demote bool
	// Deny, if non-nil, vetoes promotion of a specific class-k region —
	// the N-level form of TwoSizeConfig.DenyPromotion.
	Deny func(level int, region addr.PN) bool
}

// DefaultLadderConfig returns the half-or-more rule at every level for
// the given hierarchy, with demotion on — the natural extension of the
// paper's parameters.
func DefaultLadderConfig(T int, classes addr.SizeClasses) LadderConfig {
	thr := make([]int, classes.N()-1)
	for k := 1; k < classes.N(); k++ {
		thr[k-1] = classes.Fanout(k) / 2
	}
	return LadderConfig{T: T, Classes: classes, Thresholds: thr, Demote: true}
}

// LadderStats counts N-level policy activity, indexed by size class.
type LadderStats struct {
	Refs        uint64                            // references observed
	RefsByClass [addr.MaxSizeClasses]uint64       // references landing on each class
	Promotions  [addr.MaxSizeClasses]uint64       // promotions *into* class k (k >= 1)
	Demotions   [addr.MaxSizeClasses]uint64       // demotions *out of* class k (k >= 1)
	//paperlint:gauge regions currently mapped at class k; last-writer on Merge, kept on Sub
	Mapped [addr.MaxSizeClasses]int
}

// Sub removes a previously recorded baseline from the flow counters —
// Refs, RefsByClass, Promotions, Demotions — leaving the activity that
// happened after the baseline snapshot. Mapped is a gauge (current
// state, not flow) and is kept, not subtracted: after a warm-up preroll
// the mapped-region count is exactly the state the warm-up built.
func (s *LadderStats) Sub(o LadderStats) {
	s.Refs -= o.Refs
	for k := range s.RefsByClass {
		s.RefsByClass[k] -= o.RefsByClass[k]
		s.Promotions[k] -= o.Promotions[k]
		s.Demotions[k] -= o.Demotions[k]
	}
}

// Merge folds another shard's flow counters into s. Mapped is a gauge
// and follows last-writer semantics: the caller overwrites it with the
// final shard's value, so Merge leaves it alone.
func (s *LadderStats) Merge(o LadderStats) {
	s.Refs += o.Refs
	for k := range s.RefsByClass {
		s.RefsByClass[k] += o.RefsByClass[k]
		s.Promotions[k] += o.Promotions[k]
		s.Demotions[k] += o.Demotions[k]
	}
}

// Ladder is the N-level dynamic page-size assignment policy. With two
// classes it reproduces TwoSize decision-for-decision (the two-size
// constructor is a shim over it; internal/tworef pins the equivalence).
//
// One reference triggers at most one transition, evaluated top level
// first: the largest class wins ties, mirroring how the two-size policy
// resolves promotion and demotion in a single Assign step. Support for
// level 1 is the window's active-block count; support for level k >= 2
// is how many class-(k-1) children are currently mapped, so promotion
// pressure propagates up the ladder one level per reference.
type Ladder struct {
	cfg    LadderConfig
	win    *window.Tracker
	mapped [addr.MaxSizeClasses]*htab.Set     // k >= 1: regions mapped at class k
	kids   [addr.MaxSizeClasses]*htab.Counter // k >= 2: region -> mapped class-(k-1) children
	stats  LadderStats
}

// NewLadder returns the N-level policy for the given configuration.
func NewLadder(cfg LadderConfig) *Ladder {
	if cfg.T <= 0 {
		panic("policy: LadderConfig.T must be positive")
	}
	n := cfg.Classes.N()
	if n < 2 {
		panic(fmt.Sprintf("policy: ladder needs at least two size classes, got %d", n))
	}
	if cfg.Classes.Shift(0) != addr.BlockShift {
		panic(fmt.Sprintf("policy: ladder base class must be the 4KB block, got shift %d",
			cfg.Classes.Shift(0)))
	}
	if top := cfg.Classes.TopShift(); top > 24 {
		panic(fmt.Sprintf("policy: top shift %d out of range (%d,24]", top, addr.BlockShift))
	}
	if len(cfg.Thresholds) != n-1 {
		panic(fmt.Sprintf("policy: ladder needs %d thresholds for %d classes, got %d",
			n-1, n, len(cfg.Thresholds)))
	}
	for k := 1; k < n; k++ {
		if thr, fan := cfg.Thresholds[k-1], cfg.Classes.Fanout(k); thr < 1 || thr > fan {
			panic(fmt.Sprintf("policy: class-%d threshold %d out of range [1,%d]", k, thr, fan))
		}
	}
	l := &Ladder{
		cfg: cfg,
		win: window.NewWithChunkShift(cfg.T, cfg.Classes.Shift(1)),
	}
	for k := 1; k < n; k++ {
		l.mapped[k] = htab.NewSet(1 << 8)
		if k >= 2 {
			l.kids[k] = htab.NewCounter(1 << 8)
		}
	}
	return l
}

// Window exposes the policy's sliding-window tracker so working-set
// calculators can observe the same window without a second ring buffer.
// Hooks must be registered before the first Assign.
func (l *Ladder) Window() *window.Tracker { return l.win }

// Config returns the policy's configuration.
func (l *Ladder) Config() LadderConfig { return l.cfg }

// SizeClasses implements MultiSize.
func (l *Ladder) SizeClasses() addr.SizeClasses { return l.cfg.Classes }

// Stats returns a snapshot of policy counters.
func (l *Ladder) Stats() LadderStats {
	s := l.stats
	for k := 1; k < l.cfg.Classes.N(); k++ {
		s.Mapped[k] = l.mapped[k].Len()
	}
	return s
}

// MappedAt reports whether the class-k region is currently mapped at
// class k (k >= 1).
func (l *Ladder) MappedAt(k int, region addr.PN) bool {
	return l.mapped[k].Has(uint64(region))
}

// MappedCount returns how many regions are mapped at class k (k >= 1).
func (l *Ladder) MappedCount(k int) int { return l.mapped[k].Len() }

// TopMappedClass returns the largest class at which the class-1 chunk c
// is covered by a mapping, or 0 if references in c resolve to base
// blocks. Used by the sampled N-size working-set calculator.
func (l *Ladder) TopMappedClass(c addr.PN) int {
	for k := l.cfg.Classes.N() - 1; k >= 1; k-- {
		if l.mapped[k].Has(uint64(l.cfg.Classes.Up(c, 1, k))) {
			return k
		}
	}
	return 0
}

// promote maps region r at class k and propagates the child count up.
func (l *Ladder) promote(k int, r addr.PN) {
	l.mapped[k].Add(uint64(r))
	l.stats.Promotions[k]++
	if k+1 < l.cfg.Classes.N() {
		l.kids[k+1].Add(uint64(l.cfg.Classes.Up(r, k, k+1)), 1)
	}
}

// demote unmaps region r at class k and propagates the child count up.
func (l *Ladder) demote(k int, r addr.PN) {
	l.mapped[k].Remove(uint64(r))
	l.stats.Demotions[k]++
	if k+1 < l.cfg.Classes.N() {
		l.kids[k+1].Add(uint64(l.cfg.Classes.Up(r, k, k+1)), -1)
	}
}

// Assign implements Assigner: record the reference in the window, apply
// at most one promotion/demotion (top level first), and resolve the
// reference to the largest covering mapped class. Per-reference hot
// path: one window step plus a few flat-table probes.
//
//paperlint:hot
func (l *Ladder) Assign(va addr.VA) Result {
	l.stats.Refs++
	l.win.StepVA(va)
	n := l.cfg.Classes.N()
	var res Result
	for k := n - 1; k >= 1; k-- {
		r := l.cfg.Classes.Page(va, k)
		var support int
		if k == 1 {
			support = l.win.ChunkActive(r)
		} else {
			support = int(l.kids[k].Get(uint64(r)))
		}
		isMapped := l.mapped[k].Has(uint64(r))
		thr := l.cfg.Thresholds[k-1]
		switch {
		case !isMapped && support >= thr &&
			(l.cfg.Deny == nil || !l.cfg.Deny(k, r)):
			l.promote(k, r)
			res.Event, res.Chunk, res.Level = EventPromote, r, k
		case isMapped && l.cfg.Demote && support < thr:
			l.demote(k, r)
			res.Event, res.Chunk, res.Level = EventDemote, r, k
		default:
			continue
		}
		break
	}
	for k := n - 1; k >= 1; k-- {
		r := l.cfg.Classes.Page(va, k)
		if l.mapped[k].Has(uint64(r)) {
			l.stats.RefsByClass[k]++
			res.Page = Page{Number: r, Shift: l.cfg.Classes.Shift(k)}
			return res
		}
	}
	l.stats.RefsByClass[0]++
	res.Page = Page{Number: addr.Block(va), Shift: addr.BlockShift}
	return res
}

// Name implements Assigner, e.g. "4KB/32KB/256KB ladder".
func (l *Ladder) Name() string {
	return l.cfg.Classes.String() + " ladder"
}

var _ MultiSize = (*Ladder)(nil)
