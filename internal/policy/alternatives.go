package policy

import (
	"fmt"
	"sort"

	"twopage/internal/addr"
	"twopage/internal/htab"
)

// This file implements the alternative page-size assignment policies the
// paper's conclusion speculates about: "A real page-mapping policy may
// perform much better (e.g., by reorganizing code and data for the new
// page sizes) or much worse (e.g., mapping policies might use less
// dynamic information)". Region models the better case — an OS/compiler
// that knows ahead of time which address ranges deserve large pages —
// and Cumulative the worse one — a policy with no reference window,
// only lifetime touch counts.

// RegionConfig declares address ranges to map with large pages; all
// other addresses use small pages. It models static placement hints
// (madvise-style, or a linker packing hot segments onto aligned 32KB
// regions).
type RegionConfig struct {
	// LargeRegions lists [start, end) byte ranges to map large. Each
	// range must be non-empty and 32KB-aligned at both ends (a static
	// placement hint that isn't chunk-aligned can't be honored by the
	// hardware, so it is rejected rather than silently widened), and
	// ranges must not overlap one another. Adjacent ranges are allowed
	// and coalesce.
	LargeRegions []Range
}

// Range is a half-open virtual address interval.
type Range struct {
	Start addr.VA
	End   addr.VA
}

// Region is the static-hint policy.
type Region struct {
	chunks []addr.PN // sorted first-chunk numbers of large ranges
	ends   []addr.PN // matching one-past-last chunk numbers
	stats  TwoSizeStats
}

// NewRegion builds the static-hint policy from cfg. It rejects, naming
// the offending region(s): empty ranges, ranges not aligned to the 32KB
// chunk size at both ends, and ranges that overlap another range.
func NewRegion(cfg RegionConfig) (*Region, error) {
	type span struct {
		lo, hi addr.PN
		idx    int // position in cfg.LargeRegions, for error messages
	}
	const mask = addr.ChunkSize - 1
	var spans []span
	for i, r := range cfg.LargeRegions {
		if r.End <= r.Start {
			return nil, fmt.Errorf("policy: region %d [%#x, %#x) is empty",
				i, uint64(r.Start), uint64(r.End))
		}
		if uint64(r.Start)&mask != 0 || uint64(r.End)&mask != 0 {
			return nil, fmt.Errorf("policy: region %d [%#x, %#x) is not %s-aligned",
				i, uint64(r.Start), uint64(r.End), addr.PageSize(addr.ChunkSize))
		}
		spans = append(spans, span{
			lo:  addr.Chunk(r.Start),
			hi:  addr.Chunk(r.End-1) + 1,
			idx: i,
		})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	p := &Region{}
	prev := span{idx: -1}
	for _, s := range spans {
		if n := len(p.ends); n > 0 && s.lo < p.ends[n-1] {
			return nil, fmt.Errorf("policy: region %d [%#x, %#x) overlaps region %d [%#x, %#x)",
				s.idx, uint64(s.lo)<<addr.ChunkShift, uint64(s.hi)<<addr.ChunkShift,
				prev.idx, uint64(prev.lo)<<addr.ChunkShift, uint64(prev.hi)<<addr.ChunkShift)
		}
		prev = s
		if n := len(p.ends); n > 0 && s.lo == p.ends[n-1] {
			p.ends[n-1] = s.hi // coalesce adjacency
			continue
		}
		p.chunks = append(p.chunks, s.lo)
		p.ends = append(p.ends, s.hi)
	}
	return p, nil
}

// inLarge reports whether chunk c falls in a declared large region.
func (p *Region) inLarge(c addr.PN) bool {
	i := sort.Search(len(p.chunks), func(i int) bool { return p.chunks[i] > c })
	return i > 0 && c < p.ends[i-1]
}

// Assign implements Assigner.
func (p *Region) Assign(va addr.VA) Result {
	p.stats.Refs++
	c := addr.Chunk(va)
	if p.inLarge(c) {
		p.stats.LargeRefs++
		return Result{Page: Page{Number: c, Shift: addr.ChunkShift}}
	}
	p.stats.SmallRefs++
	return Result{Page: Page{Number: addr.Block(va), Shift: addr.BlockShift}}
}

// Name implements Assigner.
func (p *Region) Name() string { return "4KB/32KB static" }

// SizeClasses implements MultiSize.
func (p *Region) SizeClasses() addr.SizeClasses {
	return addr.MustShiftClasses(addr.BlockShift, addr.ChunkShift)
}

// Stats returns reference counters.
func (p *Region) Stats() TwoSizeStats { return p.stats }

// CumulativeConfig parameterizes the less-dynamic policy.
type CumulativeConfig struct {
	// Threshold is the number of distinct blocks of a chunk that must
	// have been touched *ever* (no window) before the chunk is promoted.
	// Must be in [1, 8].
	Threshold int
}

// Cumulative is the "less dynamic information" policy: it promotes a
// chunk once its lifetime distinct-block count reaches the threshold
// and never demotes. Compared with the paper's windowed policy it
// over-promotes long-running programs: any chunk whose blocks are
// touched even once each, ever, ends up large, so the working set
// drifts toward the 32KB single-size cost.
type Cumulative struct {
	threshold int
	touched   *htab.U64 // chunk -> bitmap of blocks ever touched
	large     *htab.Set
	stats     TwoSizeStats
}

// NewCumulative builds the less-dynamic policy.
func NewCumulative(cfg CumulativeConfig) *Cumulative {
	if cfg.Threshold < 1 || cfg.Threshold > addr.BlocksPerChunk {
		panic(fmt.Sprintf("policy: cumulative threshold %d out of range [1,%d]",
			cfg.Threshold, addr.BlocksPerChunk))
	}
	return &Cumulative{
		threshold: cfg.Threshold,
		touched:   htab.NewU64(1 << 8),
		large:     htab.NewSet(1 << 8),
	}
}

// Assign implements Assigner. Per-reference hot path.
//
//paperlint:hot
func (p *Cumulative) Assign(va addr.VA) Result {
	p.stats.Refs++
	c := addr.Chunk(va)
	var res Result
	isLarge := p.large.Has(uint64(c))
	if !isLarge {
		prev, _ := p.touched.Get(uint64(c))
		bits := prev | 1<<addr.BlockInChunk(va)
		p.touched.Put(uint64(c), bits)
		n := 0
		for b := bits; b != 0; b &= b - 1 {
			n++
		}
		if n >= p.threshold {
			p.large.Add(uint64(c))
			isLarge = true
			p.touched.Delete(uint64(c))
			p.stats.Promotions++
			res.Event = EventPromote
			res.Chunk = c
			res.Level = 1
		}
	}
	if isLarge {
		p.stats.LargeRefs++
		res.Page = Page{Number: c, Shift: addr.ChunkShift}
		return res
	}
	p.stats.SmallRefs++
	res.Page = Page{Number: addr.Block(va), Shift: addr.BlockShift}
	return res
}

// Name implements Assigner.
func (p *Cumulative) Name() string { return "4KB/32KB cumulative" }

// SizeClasses implements MultiSize.
func (p *Cumulative) SizeClasses() addr.SizeClasses {
	return addr.MustShiftClasses(addr.BlockShift, addr.ChunkShift)
}

// Stats returns policy counters.
func (p *Cumulative) Stats() TwoSizeStats {
	s := p.stats
	s.LargeChunks = p.large.Len()
	return s
}

// IsLarge reports whether chunk c has been promoted.
func (p *Cumulative) IsLarge(c addr.PN) bool { return p.large.Has(uint64(c)) }

// Compile-time interface checks.
var (
	_ Assigner = (*Region)(nil)
	_ Assigner = (*Cumulative)(nil)
)

// IsLarge reports whether chunk c falls in a declared large region.
func (p *Region) IsLarge(c addr.PN) bool { return p.inLarge(c) }
