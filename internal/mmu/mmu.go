// Package mmu assembles the full address-translation path of a
// two-page-size system: TLB lookup, software miss handling against the
// two-size page table, demand paging with physical frame allocation,
// and a clock page-replacement policy that accommodates both page
// sizes — the machinery the paper's conclusion lists as open operating
// system problems ("efficient TLB miss handling, page-size assignment
// policies, memory management and page replacement policies for
// multiple page size systems").
//
// Cycle accounting follows the paper's models: 1 cycle for a TLB hit,
// the page-table walk cost (≈20/25 cycles, internal/pagetable) for a
// miss that finds a mapping, a configurable fault cost for a miss that
// does not, and copy costs for promotions/demotions charged at a
// configurable bytes-per-cycle rate.
package mmu

import (
	"context"
	"errors"
	"fmt"
	"io"

	"twopage/internal/addr"
	"twopage/internal/disk"
	"twopage/internal/htab"
	"twopage/internal/obs"
	"twopage/internal/pagetable"
	"twopage/internal/physmem"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
)

// Config parameterizes an MMU.
type Config struct {
	// TLB is the translation cache. Required.
	TLB tlb.TLB
	// Policy assigns page sizes. Required.
	Policy policy.Assigner
	// Memory is the physical memory size; must be a positive multiple
	// of 32KB. Required.
	Memory addr.PageSize
	// TLBHitCycles is the cost of a hit. Default 1.
	TLBHitCycles float64
	// FaultCycles is charged when a reference touches an unmapped page
	// (demand paging in). The paper's metrics exclude page faults, so
	// keep it small to study TLB effects, or large to study memory
	// pressure. Default 500.
	FaultCycles float64
	// CopyBytesPerCycle converts promotion/demotion copy traffic to
	// cycles. Default 8 (one 8-byte word per cycle).
	CopyBytesPerCycle float64
	// Disk, when non-nil, prices page-ins with the positional disk
	// model instead of the flat FaultCycles — one seek+rotation per
	// fault plus a size-proportional transfer, the Section 1
	// amortization argument for large pages.
	Disk *disk.Model
}

func (c *Config) normalize() error {
	if c.TLB == nil {
		return errors.New("mmu: Config.TLB is required")
	}
	if c.Policy == nil {
		return errors.New("mmu: Config.Policy is required")
	}
	if ts, ok := c.Policy.(*policy.TwoSize); ok {
		if ts.Config().LargeShift != addr.ChunkShift {
			return fmt.Errorf("mmu: only 32KB large pages are supported, policy uses %d-bit shift",
				ts.Config().LargeShift)
		}
	} else if mp, ok := c.Policy.(policy.MultiSize); ok {
		// The frame allocator and replacement clock understand exactly the
		// paper's two sizes; a deeper hierarchy would emit pages the buddy
		// allocator cannot back.
		want := addr.MustShiftClasses(addr.BlockShift, addr.ChunkShift)
		if mp.SizeClasses() != want {
			return fmt.Errorf("mmu: only the %s hierarchy is supported, policy uses %s",
				want, mp.SizeClasses())
		}
	}
	if c.TLBHitCycles == 0 {
		c.TLBHitCycles = 1
	}
	if c.FaultCycles == 0 {
		c.FaultCycles = 500
	}
	if c.CopyBytesPerCycle == 0 {
		c.CopyBytesPerCycle = 8
	}
	if c.Disk != nil {
		if err := c.Disk.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates MMU activity and cycle accounting.
type Stats struct {
	Accesses  uint64
	TLBHits   uint64
	TLBMisses uint64
	// Walks counts software miss-handler invocations; WalkHits the
	// subset that found a valid mapping (no fault).
	Walks    uint64
	WalkHits uint64
	// Faults counts demand-paging events (mapping created).
	Faults uint64
	// Evictions counts replaced pages (by page, not frame); each page
	// also counts once in EvictionsByClass at its size class.
	Evictions uint64
	// EvictionsByClass splits Evictions by size class (0 = 4KB blocks,
	// 1 = 32KB chunks; higher classes stay zero while the MMU supports
	// only the paper's two sizes).
	EvictionsByClass [addr.MaxSizeClasses]uint64
	// LargeEvictions mirrors EvictionsByClass[1].
	//
	// Deprecated: read EvictionsByClass[1] instead.
	LargeEvictions uint64
	// Promotions/Demotions mirror the policy's transitions that the MMU
	// carried out against the page table.
	Promotions uint64
	Demotions  uint64
	// CopiedBytes is promotion/demotion copy traffic.
	CopiedBytes uint64
	// IO accumulates disk paging traffic when a disk model is attached.
	IO disk.Stats
	// Cycles is the total modelled translation cost.
	Cycles float64
}

// CyclesPerAccess returns the average translation cost.
func (s Stats) CyclesPerAccess() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return s.Cycles / float64(s.Accesses)
}

type resident struct {
	page  policy.Page
	frame addr.PN
	ref   bool
	valid bool
}

// pageKey packs a policy.Page into one uint64 so the resident index
// can be a flat uint64 table instead of a map keyed by the two-field
// struct (whose runtime hashing dominates the touch-per-access path).
// Shift is at most 24 (policy validates LargeShift ≤ 24), so six low
// bits hold it and the page number keeps 58 bits — more than any
// virtual address the simulators generate.
func pageKey(p policy.Page) uint64 {
	return uint64(p.Number)<<6 | uint64(p.Shift)&63
}

// unpackKey inverts pageKey (tests and diagnostics).
func unpackKey(k uint64) policy.Page {
	return policy.Page{Number: addr.PN(k >> 6), Shift: uint(k & 63)}
}

// MMU is a two-page-size memory-management unit with demand paging.
type MMU struct {
	cfg   Config
	pt    *pagetable.Table
	mem   *physmem.Allocator
	stats Stats

	clock     []resident
	hand      int
	where     *htab.U64 // pageKey -> clock index
	tombstone int
}

// New builds an MMU from cfg.
func New(cfg Config) (*MMU, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	mem, err := physmem.New(cfg.Memory)
	if err != nil {
		return nil, err
	}
	return &MMU{
		cfg:   cfg,
		pt:    pagetable.New(),
		mem:   mem,
		where: htab.NewU64(1 << 8),
	}, nil
}

// Stats returns a snapshot of the counters.
func (m *MMU) Stats() Stats { return m.stats }

// Counters folds the MMU's translation-path activity, its TLB's
// per-page-size hit/miss split, and the buddy allocator's counters into
// one run-report block. Called once per pass, off the hot path.
func (m *MMU) Counters() obs.Counters {
	c := m.cfg.TLB.Stats().Counters()
	ms := m.mem.Stats()
	c.Passes = 1
	c.Refs = m.stats.Accesses
	c.Promotions = m.stats.Promotions
	c.Demotions = m.stats.Demotions
	c.PTWalks = m.stats.Walks
	c.Faults = m.stats.Faults
	c.Evictions = m.stats.Evictions
	c.EvictionsSize2 = m.stats.EvictionsByClass[2]
	c.EvictionsSize3 = m.stats.EvictionsByClass[3]
	c.CopiedBytes = m.stats.CopiedBytes
	c.BuddySplits = ms.Splits
	c.BuddyCoalesces = ms.Coalesces
	c.BuddyPeakResident = ms.PeakResident
	return c
}

// PageTable exposes the page table for inspection.
func (m *MMU) PageTable() *pagetable.Table { return m.pt }

// Memory exposes the physical allocator for inspection.
func (m *MMU) Memory() *physmem.Allocator { return m.mem }

// Resident returns the number of resident pages (of either size).
func (m *MMU) Resident() int { return m.where.Len() }

// Access translates one reference, performing any policy transition,
// miss handling, demand paging and replacement it implies. It returns
// the cycles charged.
func (m *MMU) Access(va addr.VA) float64 {
	m.stats.Accesses++
	res := m.cfg.Policy.Assign(va)
	switch res.Event {
	case policy.EventPromote:
		m.promote(res.Chunk)
	case policy.EventDemote:
		m.demote(res.Chunk)
	}
	cycles := 0.0
	if m.cfg.TLB.Access(va, res.Page) {
		m.stats.TLBHits++
		cycles = m.cfg.TLBHitCycles
		m.touch(res.Page)
		m.stats.Cycles += cycles
		return cycles
	}
	m.stats.TLBMisses++
	m.stats.Walks++
	_, walk := m.pt.Lookup(va)
	cycles = m.cfg.TLBHitCycles + walk.Cycles
	if walk.Found {
		m.stats.WalkHits++
		m.touch(res.Page)
	} else {
		m.stats.Faults++
		if m.cfg.Disk != nil {
			cycles += m.stats.IO.Account(*m.cfg.Disk, res.Page.Size())
		} else {
			cycles += m.cfg.FaultCycles
		}
		m.pageIn(res.Page)
	}
	m.stats.Cycles += cycles
	return cycles
}

// Run drives a whole reference stream through the MMU. Cancellation is
// checked between batches, as in core.Simulator.Run.
func (m *MMU) Run(ctx context.Context, r trace.Reader) (Stats, error) {
	buf := make([]trace.Ref, 8192)
	for {
		if err := ctx.Err(); err != nil {
			return m.stats, err
		}
		n, err := r.Read(buf)
		for _, ref := range buf[:n] {
			m.Access(ref.Addr)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return m.stats, nil
			}
			return m.stats, fmt.Errorf("mmu: %w", err)
		}
	}
}

// touch sets the clock reference bit. It runs on every TLB hit and
// walk hit — the MMU's own per-reference hot path.
//
//paperlint:hot
func (m *MMU) touch(p policy.Page) {
	if i, ok := m.where.Get(pageKey(p)); ok {
		m.clock[i].ref = true
	}
}

// insert records a resident page in the clock.
func (m *MMU) insert(p policy.Page, frame addr.PN) {
	if _, ok := m.where.Get(pageKey(p)); ok {
		return
	}
	m.clock = append(m.clock, resident{page: p, frame: frame, ref: true, valid: true})
	m.where.Put(pageKey(p), uint64(len(m.clock)-1))
	m.maybeCompact()
}

// remove drops a resident page from the clock (tombstoned).
func (m *MMU) remove(p policy.Page) (addr.PN, bool) {
	i, ok := m.where.Get(pageKey(p))
	if !ok {
		return 0, false
	}
	frame := m.clock[i].frame
	m.clock[i].valid = false
	m.where.Delete(pageKey(p))
	m.tombstone++
	return frame, true
}

func (m *MMU) maybeCompact() {
	if m.tombstone < 64 || m.tombstone*2 < len(m.clock) {
		return
	}
	out := m.clock[:0]
	for _, e := range m.clock {
		if e.valid {
			out = append(out, e)
		}
	}
	m.clock = out
	m.tombstone = 0
	for i := range m.clock {
		m.where.Put(pageKey(m.clock[i].page), uint64(i))
	}
	if m.hand >= len(m.clock) {
		m.hand = 0
	}
}

// evictOne runs the clock until it reclaims one page, returning false
// if nothing is resident.
func (m *MMU) evictOne() bool {
	if m.where.Len() == 0 {
		return false
	}
	for spins := 0; spins < 2*len(m.clock)+2; spins++ {
		if len(m.clock) == 0 {
			return false
		}
		if m.hand >= len(m.clock) {
			m.hand = 0
		}
		e := &m.clock[m.hand]
		m.hand++
		if !e.valid {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		m.reclaim(e.page)
		return true
	}
	return false
}

// reclaim unmaps and frees one resident page.
func (m *MMU) reclaim(p policy.Page) {
	frame, ok := m.remove(p)
	if !ok {
		return
	}
	m.pt.Unmap(p.Base())
	m.cfg.TLB.Invalidate(p)
	m.mem.Free(frame)
	m.stats.Evictions++
	if uint(p.Shift) >= addr.ChunkShift {
		m.stats.EvictionsByClass[1]++
		m.stats.LargeEvictions++
	} else {
		m.stats.EvictionsByClass[0]++
	}
}

// allocSmall allocates a 4KB frame, evicting under pressure.
func (m *MMU) allocSmall() (addr.PN, bool) {
	for {
		f, err := m.mem.AllocSmall()
		if err == nil {
			return f, true
		}
		if !m.evictOne() {
			return 0, false
		}
	}
}

// allocLarge allocates an aligned 32KB frame, evicting under pressure.
// External fragmentation can make this fail even with free memory; the
// clock keeps evicting until the buddy allocator coalesces a run or
// nothing is left to evict.
func (m *MMU) allocLarge() (addr.PN, bool) {
	for {
		f, err := m.mem.AllocLarge()
		if err == nil {
			return f, true
		}
		if !m.evictOne() {
			return 0, false
		}
	}
}

// pageIn maps a faulting page, allocating its frame.
func (m *MMU) pageIn(p policy.Page) {
	if uint(p.Shift) >= addr.ChunkShift {
		frame, ok := m.allocLarge()
		if !ok {
			return
		}
		if err := m.pt.MapLarge(p.Number, frame); err != nil {
			// Small mappings still exist under this chunk (the policy
			// promoted but the promote step could not run, e.g. OOM):
			// drop them and retry once.
			m.dropSmallUnder(p.Number)
			if err := m.pt.MapLarge(p.Number, frame); err != nil {
				m.mem.Free(frame)
				return
			}
		}
		m.insert(p, frame)
		return
	}
	frame, ok := m.allocSmall()
	if !ok {
		return
	}
	if err := m.pt.MapSmall(p.Number, frame); err != nil {
		// Chunk is mapped large while the policy thinks small (stale
		// after failed demotion): drop the large page and retry.
		large := policy.Page{Number: addr.ChunkOfBlock(p.Number), Shift: addr.ChunkShift}
		m.reclaim(large)
		if err := m.pt.MapSmall(p.Number, frame); err != nil {
			m.mem.Free(frame)
			return
		}
	}
	m.insert(p, frame)
}

// dropSmallUnder reclaims any resident small pages of chunk c.
func (m *MMU) dropSmallUnder(c addr.PN) {
	first := addr.FirstBlock(c)
	for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
		m.reclaim(policy.Page{Number: first + i, Shift: addr.BlockShift})
	}
}

// promote carries out a policy promotion against the page table:
// allocate the large frame, copy resident blocks, free their frames.
// If the chunk has no resident small pages, the large page simply
// faults in on next access.
func (m *MMU) promote(c addr.PN) {
	frame, ok := m.allocLarge()
	if !ok {
		return
	}
	freed, copied, err := m.pt.Promote(c, frame)
	if err != nil {
		m.mem.Free(frame)
		return
	}
	first := addr.FirstBlock(c)
	for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
		p := policy.Page{Number: first + i, Shift: addr.BlockShift}
		m.remove(p) // its frame is returned via the page table's freed list
		m.cfg.TLB.Invalidate(p)
	}
	for _, f := range freed {
		m.mem.Free(f)
	}
	large := policy.Page{Number: c, Shift: addr.ChunkShift}
	m.insert(large, frame)
	m.stats.Promotions++
	bytes := uint64(copied) * addr.BlockSize
	m.stats.CopiedBytes += bytes
	m.stats.Cycles += float64(bytes) / m.cfg.CopyBytesPerCycle
}

// demote splits a resident large page back into eight resident small
// pages (the contents already exist; only frames and mappings move).
func (m *MMU) demote(c addr.PN) {
	large := policy.Page{Number: c, Shift: addr.ChunkShift}
	if _, ok := m.where.Get(pageKey(large)); !ok {
		return // not resident; nothing to split
	}
	var frames [addr.BlocksPerChunk]addr.PN
	for i := range frames {
		f, ok := m.allocSmall()
		if !ok {
			for j := 0; j < i; j++ {
				m.mem.Free(frames[j])
			}
			return
		}
		frames[i] = f
	}
	oldFrame, err := m.pt.Demote(c, frames)
	if err != nil {
		for _, f := range frames {
			m.mem.Free(f)
		}
		return
	}
	m.remove(large)
	m.cfg.TLB.Invalidate(large)
	m.mem.Free(oldFrame)
	first := addr.FirstBlock(c)
	for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
		m.insert(policy.Page{Number: first + i, Shift: addr.BlockShift}, frames[i])
	}
	m.stats.Demotions++
	m.stats.CopiedBytes += addr.ChunkSize
	m.stats.Cycles += float64(addr.ChunkSize) / m.cfg.CopyBytesPerCycle
}
