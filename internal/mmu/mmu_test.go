package mmu

import (
	"context"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/disk"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

func newTwoSizeMMU(t *testing.T, memKB int, T int) *MMU {
	t.Helper()
	m, err := New(Config{
		TLB:    tlb.NewFullyAssoc(16),
		Policy: policy.NewTwoSize(policy.DefaultTwoSizeConfig(T)),
		Memory: addr.PageSize(memKB * 1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing TLB should fail")
	}
	if _, err := New(Config{TLB: tlb.NewFullyAssoc(4)}); err == nil {
		t.Fatal("missing policy should fail")
	}
	if _, err := New(Config{
		TLB:    tlb.NewFullyAssoc(4),
		Policy: policy.NewSingle(addr.Size4K),
		Memory: addr.PageSize(1000),
	}); err == nil {
		t.Fatal("bad memory size should fail")
	}
	// Non-32KB large pages unsupported.
	cfg16 := policy.TwoSizeConfig{T: 10, Threshold: 2, LargeShift: addr.Shift16K}
	if _, err := New(Config{
		TLB:    tlb.NewFullyAssoc(4),
		Policy: policy.NewTwoSize(cfg16),
		Memory: addr.Size32K,
	}); err == nil {
		t.Fatal("16KB large pages should be rejected")
	}
}

func TestColdAccessFaultsThenHits(t *testing.T) {
	m := newTwoSizeMMU(t, 1024, 1000)
	c1 := m.Access(0x1000)
	st := m.Stats()
	if st.Faults != 1 || st.TLBMisses != 1 {
		t.Fatalf("stats after cold access: %+v", st)
	}
	if c1 < m.cfg.FaultCycles {
		t.Fatalf("cold access cost %v should include the fault", c1)
	}
	c2 := m.Access(0x1000)
	if c2 != m.cfg.TLBHitCycles {
		t.Fatalf("warm access cost %v, want %v", c2, m.cfg.TLBHitCycles)
	}
	if m.Resident() != 1 {
		t.Fatalf("resident = %d", m.Resident())
	}
}

func TestMissWalkHitAfterTLBEviction(t *testing.T) {
	// 2-entry TLB: the third page evicts the first from the TLB but the
	// mapping stays resident, so re-access costs a walk, not a fault.
	m, err := New(Config{
		TLB:    tlb.NewFullyAssoc(2),
		Policy: policy.NewSingle(addr.Size4K),
		Memory: addr.PageSize(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range []addr.VA{0x1000, 0x2000, 0x3000} {
		m.Access(va)
	}
	m.Access(0x1000)
	st := m.Stats()
	if st.Faults != 3 {
		t.Fatalf("faults = %d, want 3", st.Faults)
	}
	if st.WalkHits != 1 {
		t.Fatalf("walk hits = %d, want 1 (TLB refill from page table)", st.WalkHits)
	}
}

func TestPromotionMovesResidency(t *testing.T) {
	m := newTwoSizeMMU(t, 4096, 1000)
	// Touch 3 blocks: resident small pages.
	for i := 0; i < 3; i++ {
		m.Access(addr.VA(i * addr.BlockSize))
	}
	if m.Resident() != 3 {
		t.Fatalf("resident = %d", m.Resident())
	}
	// Fourth block triggers promotion: small pages collapse into one
	// large page; the triggering block then faults in as large... no:
	// promote copies resident blocks into the large frame, so the
	// reference finds the mapping via walk (TLB entries were shot down).
	m.Access(addr.VA(3 * addr.BlockSize))
	st := m.Stats()
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d", st.Promotions)
	}
	if m.Resident() != 1 {
		t.Fatalf("resident = %d after promotion, want 1 large page", m.Resident())
	}
	if st.CopiedBytes != 3*addr.BlockSize {
		t.Fatalf("copied = %d", st.CopiedBytes)
	}
	// The whole chunk is now mapped: untouched block 7 walk-hits.
	before := m.Stats().Faults
	m.Access(addr.VA(7 * addr.BlockSize))
	if m.Stats().Faults != before {
		t.Fatal("access within promoted chunk should not fault")
	}
}

func TestDemotionSplitsResidency(t *testing.T) {
	m := newTwoSizeMMU(t, 4096, 8)
	for i := 0; i < 4; i++ {
		m.Access(addr.VA(i * addr.BlockSize)) // promote chunk 0
	}
	if m.Stats().Promotions != 1 {
		t.Fatalf("promotions = %d", m.Stats().Promotions)
	}
	// Age chunk 0 out of the tiny window, then touch it: demotion.
	for i := 0; i < 8; i++ {
		m.Access(addr.VA(100<<addr.ChunkShift) + addr.VA(i*addr.BlockSize))
	}
	m.Access(0)
	st := m.Stats()
	if st.Demotions != 1 {
		t.Fatalf("demotions = %d", st.Demotions)
	}
	// Large page split into 8 small resident pages (plus the distant
	// chunk's pages).
	if m.Resident() < 8 {
		t.Fatalf("resident = %d after demotion", m.Resident())
	}
}

func TestReplacementUnderPressure(t *testing.T) {
	// 64KB of memory = 16 small frames; touch 64 distinct pages.
	m, err := New(Config{
		TLB:    tlb.NewFullyAssoc(8),
		Policy: policy.NewSingle(addr.Size4K),
		Memory: addr.PageSize(64 * 1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		m.Access(addr.VA(i * addr.BlockSize))
	}
	st := m.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected clock evictions under memory pressure")
	}
	if m.Resident() > 16 {
		t.Fatalf("resident %d exceeds physical frames", m.Resident())
	}
	// Conservation: resident pages == allocated frames.
	if m.Memory().FreeFrames()+uint64(m.Resident()) != m.Memory().TotalFrames() {
		t.Fatalf("frame leak: free %d + resident %d != total %d",
			m.Memory().FreeFrames(), m.Resident(), m.Memory().TotalFrames())
	}
}

func TestLargePagesUnderPressure(t *testing.T) {
	// Two-page policy with memory pressure: large allocations must
	// succeed by evicting, and frames must be conserved, even with
	// promotion/demotion churn.
	m := newTwoSizeMMU(t, 128, 64) // 128KB = 4 chunks
	src := workload.MustNew("li", 30_000)
	if _, err := m.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Accesses != 30_000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.Evictions == 0 {
		t.Fatal("li's working set exceeds 128KB; evictions expected")
	}
	free := m.Memory().FreeFrames()
	residentFrames := residentFrames(m)
	if free+residentFrames != m.Memory().TotalFrames() {
		t.Fatalf("frame conservation violated: free %d + resident %d != %d",
			free, residentFrames, m.Memory().TotalFrames())
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	m := newTwoSizeMMU(t, 8192, 20_000)
	st, err := m.Run(context.Background(), workload.MustNew("matrix300", 200_000))
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 200_000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.TLBHits+st.TLBMisses != st.Accesses {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
	if st.Walks != st.TLBMisses {
		t.Fatalf("every miss should walk: %+v", st)
	}
	if st.WalkHits+st.Faults != st.Walks {
		t.Fatalf("walk accounting: %+v", st)
	}
	if st.Promotions == 0 {
		t.Fatal("matrix300 must promote")
	}
	if st.CyclesPerAccess() <= 1 {
		t.Fatalf("cycles/access = %v", st.CyclesPerAccess())
	}
	var zero Stats
	if zero.CyclesPerAccess() != 0 {
		t.Fatal("zero stats should report 0 cycles/access")
	}
}

// The MMU's TLB behaviour must agree with the standalone simulator when
// memory is ample (no evictions): same misses for the same stream.
func TestAgreesWithCoreSimulator(t *testing.T) {
	const refs = 100_000
	const T = refs / 8
	m := newTwoSizeMMU(t, 16*1024, T)
	if _, err := m.Run(context.Background(), workload.MustNew("li", refs)); err != nil {
		t.Fatal(err)
	}
	// Reference: same policy+TLB via direct loop.
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
	tl := tlb.NewFullyAssoc(16)
	src := workload.MustNew("li", refs)
	buf := make([]trace.Ref, 4096)
	for {
		n, err := src.Read(buf)
		for _, ref := range buf[:n] {
			res := pol.Assign(ref.Addr)
			if res.Event == policy.EventPromote {
				first := addr.FirstBlock(res.Chunk)
				for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
					tl.Invalidate(policy.Page{Number: first + i, Shift: addr.BlockShift})
				}
			} else if res.Event == policy.EventDemote {
				tl.Invalidate(policy.Page{Number: res.Chunk, Shift: addr.ChunkShift})
			}
			tl.Access(ref.Addr, res.Page)
		}
		if err != nil {
			break
		}
	}
	if m.Stats().Evictions != 0 {
		t.Fatalf("test premise broken: %d evictions with ample memory", m.Stats().Evictions)
	}
	if got, want := m.Stats().TLBMisses, tl.Stats().Misses(); got != want {
		t.Fatalf("MMU TLB misses %d != standalone %d", got, want)
	}
}

// Heavy residency churn exercises the clock's tombstone compaction and
// hand wrap-around; invariants must survive.
func TestClockCompaction(t *testing.T) {
	m, err := New(Config{
		TLB:    tlb.NewFullyAssoc(8),
		Policy: policy.NewSingle(addr.Size4K),
		Memory: addr.PageSize(256 * 1024), // 64 frames
	})
	if err != nil {
		t.Fatal(err)
	}
	// Touch 4000 distinct pages: thousands of evictions and removals.
	for i := 0; i < 4000; i++ {
		m.Access(addr.VA(i * addr.BlockSize))
	}
	st := m.Stats()
	if st.Evictions < 3000 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	if m.Resident() > 64 {
		t.Fatalf("resident %d exceeds frames", m.Resident())
	}
	if m.Memory().FreeFrames()+uint64(m.Resident()) != m.Memory().TotalFrames() {
		t.Fatal("frame conservation violated after churn")
	}
	// Everything resident is still reachable without faulting: walk hits.
	// (Touch a recent page that must still be mapped.)
	before := m.Stats().Faults
	m.Access(addr.VA(3999 * addr.BlockSize))
	if m.Stats().Faults != before {
		t.Fatal("recently touched page should still be resident")
	}
}

// Demotion of a non-resident large page is a no-op, and the policy's
// subsequent small mapping faults in cleanly.
func TestDemoteNonResident(t *testing.T) {
	// Tiny memory: a promoted chunk gets evicted, then demoted by the
	// policy while absent.
	cfg := policy.DefaultTwoSizeConfig(8)
	pol := policy.NewTwoSize(cfg)
	m, err := New(Config{
		TLB:    tlb.NewFullyAssoc(4),
		Policy: pol,
		Memory: addr.Size32K, // exactly one chunk of frames
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // promote chunk 0 (fills all of memory)
		m.Access(addr.VA(i * addr.BlockSize))
	}
	// Touch a distant chunk: must evict the large page to make room.
	for i := 0; i < 8; i++ {
		m.Access(addr.VA(100<<addr.ChunkShift) + addr.VA(i%2*addr.BlockSize))
	}
	// Chunk 0 aged out; next access demotes it (policy) while the page
	// table no longer holds it: the MMU must not corrupt state.
	m.Access(addr.VA(0))
	if m.Memory().FreeFrames()+residentFrames(m) != m.Memory().TotalFrames() {
		t.Fatal("frame conservation violated across non-resident demotion")
	}
}

func residentFrames(m *MMU) uint64 {
	var n uint64
	m.where.Iter(func(k, _ uint64) {
		if p := unpackKey(k); uint(p.Shift) >= addr.ChunkShift {
			n += addr.BlocksPerChunk
		} else {
			n++
		}
	})
	return n
}

// When memory cannot hold even one large frame's worth of small pages,
// promotion attempts must fail gracefully (nothing to evict).
func TestPromotionUnderImpossibleMemory(t *testing.T) {
	cfg := policy.DefaultTwoSizeConfig(1000)
	pol := policy.NewTwoSize(cfg)
	m, err := New(Config{
		TLB:    tlb.NewFullyAssoc(4),
		Policy: pol,
		Memory: addr.Size32K,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Promote chunk 0, then touch chunk 1 densely: its promotion needs
	// a second large frame that can only come from evicting chunk 0.
	for i := 0; i < 4; i++ {
		m.Access(addr.VA(i * addr.BlockSize))
	}
	for i := 0; i < 4; i++ {
		m.Access(addr.VA(addr.ChunkSize) + addr.VA(i*addr.BlockSize))
	}
	if m.Memory().FreeFrames()+residentFrames(m) != m.Memory().TotalFrames() {
		t.Fatal("frame conservation violated under extreme pressure")
	}
	if m.Resident() == 0 {
		t.Fatal("something should be resident")
	}
}

// With a disk model attached, faults pay positional + transfer time and
// the paper's amortization shows: a large-page fault brings in 8x the
// bytes for barely more time.
func TestDiskModelFaultCosts(t *testing.T) {
	dm := disk.Default()
	mk := func(pol policy.Assigner) *MMU {
		m, err := New(Config{
			TLB:    tlb.NewFullyAssoc(8),
			Policy: pol,
			Memory: addr.PageSize(1 << 20),
			Disk:   &dm,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// 8 small faults vs 1 large fault for the same 32KB of data.
	small := mk(policy.NewSingle(addr.Size4K))
	for i := 0; i < 8; i++ {
		small.Access(addr.VA(i * addr.BlockSize))
	}
	large := mk(policy.NewSingle(addr.Size32K))
	large.Access(0)
	ss, ls := small.Stats(), large.Stats()
	if ss.IO.PageIns != 8 || ls.IO.PageIns != 1 {
		t.Fatalf("page-ins: %d vs %d", ss.IO.PageIns, ls.IO.PageIns)
	}
	if ss.IO.BytesIn != ls.IO.BytesIn {
		t.Fatalf("bytes differ: %d vs %d", ss.IO.BytesIn, ls.IO.BytesIn)
	}
	if ls.IO.IOCycles*4 > ss.IO.IOCycles {
		t.Fatalf("one 32KB fault (%v cycles) should be far below eight 4KB faults (%v)",
			ls.IO.IOCycles, ss.IO.IOCycles)
	}
	// Invalid disk model rejected.
	badDisk := disk.Model{MBPerSec: 0}
	if _, err := New(Config{
		TLB: tlb.NewFullyAssoc(4), Policy: policy.NewSingle(addr.Size4K),
		Memory: addr.Size32K, Disk: &badDisk,
	}); err == nil {
		t.Fatal("invalid disk model should be rejected")
	}
}
