package pagetable

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/kernelref"
)

// TestLookupAllocs pins the miss-handler walk at zero allocations: one
// flat-table probe plus an arena index, hit or miss.
func TestLookupAllocs(t *testing.T) {
	tab := New()
	for blk := addr.PN(0); blk < 1<<12; blk += 2 {
		if err := tab.MapSmall(blk, blk); err != nil {
			t.Fatal(err)
		}
	}
	vas := kernelref.LookupVAs(1 << 14)
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		tab.Lookup(vas[i&(1<<14-1)])
		i++
	})
	if avg != 0 {
		t.Errorf("Table.Lookup allocates %.2f times per call, want 0", avg)
	}
}

// TestMapUnmapAllocs pins steady-state map/unmap churn at zero
// allocations once the arena and free list are warm.
func TestMapUnmapAllocs(t *testing.T) {
	tab := New()
	// Warm the arena and index past their growth phase.
	for c := addr.PN(0); c < 1<<10; c++ {
		if err := tab.MapSmall(addr.FirstBlock(c), addr.PN(c)); err != nil {
			t.Fatal(err)
		}
	}
	for c := addr.PN(0); c < 1<<10; c++ {
		tab.Unmap(addr.VA(uint64(c) << addr.ChunkShift))
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		c := addr.PN(i & (1<<10 - 1))
		if err := tab.MapSmall(addr.FirstBlock(c), addr.PN(i)); err != nil {
			t.Fatal(err)
		}
		tab.Unmap(addr.VA(uint64(c) << addr.ChunkShift))
		i++
	})
	if avg != 0 {
		t.Errorf("MapSmall+Unmap allocate %.2f times per cycle, want 0", avg)
	}
}
