package pagetable

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/htab"
)

// node is one slot of the N-size radix tree: either empty, a leaf PTE
// at its own class, or split into a span of child nodes one class down.
// Nodes live by value in per-class arenas; kids indexes the first child
// in the class-(k-1) arena.
type node struct {
	pte   PTE
	split bool
	kids  uint32
}

// empty reports whether the node holds neither a leaf nor children.
func (n node) empty() bool { return !n.split && !n.pte.Valid }

// Freed is one mapping released by a promotion: the physical frame and
// the size class it was mapped at.
type Freed struct {
	Frame addr.PN
	Class int
}

// NTable is the page table for an N-page-size hierarchy: a radix tree
// over the size classes, rooted at the top class. Each top-class region
// with any mapping owns one root node; a node at class k is either one
// class-k leaf PTE or a table of Fanout(k) class-(k-1) nodes. With two
// classes this is exactly the paper's chunk model (one large PTE or a
// block table of eight small PTEs); Table keeps that case's API.
//
// All nodes live by value in per-class dense arenas: child tables are
// allocated as contiguous spans, recycled through per-class free lists,
// so steady-state map/unmap churn allocates nothing — the same arena
// discipline the two-size table used, extended to per-class spans.
type NTable struct {
	classes addr.SizeClasses
	idx     *htab.U64 // top-class region -> index in the top arena
	top     []node
	freeTop []uint32
	// nodes[k] holds class-k child spans (k < N-1), each of length
	// Fanout(k+1); free[k] recycles span start indices.
	nodes [addr.MaxSizeClasses][]node
	free  [addr.MaxSizeClasses][]uint32
	stats Stats
}

// NewNTable returns an empty table for the hierarchy. At least two size
// classes are required (one-size tables have no size to discover, so
// the handler model below would not apply).
func NewNTable(classes addr.SizeClasses) *NTable {
	if classes.N() < 2 {
		panic(fmt.Sprintf("pagetable: NTable needs at least two size classes, got %d",
			classes.N()))
	}
	return &NTable{classes: classes, idx: htab.NewU64(1 << 8)}
}

// Classes returns the table's size hierarchy.
func (t *NTable) Classes() addr.SizeClasses { return t.classes }

// allocTop binds a fresh (or recycled) root slot and returns its index.
func (t *NTable) allocTop(region addr.PN) uint32 {
	var i uint32
	if n := len(t.freeTop); n > 0 {
		i = t.freeTop[n-1]
		t.freeTop = t.freeTop[:n-1]
		t.top[i] = node{}
	} else {
		i = uint32(len(t.top))
		t.top = append(t.top, node{})
	}
	t.idx.Put(uint64(region), uint64(i))
	return i
}

// releaseTop unbinds the root slot of region and recycles it.
func (t *NTable) releaseTop(region addr.PN, i uint32) {
	t.idx.Delete(uint64(region))
	t.freeTop = append(t.freeTop, i)
}

// allocSpan returns the start index of a zeroed class-k child span (the
// children of one class-(k+1) node).
func (t *NTable) allocSpan(k int) uint32 {
	fan := t.classes.Fanout(k + 1)
	if n := len(t.free[k]); n > 0 {
		i := t.free[k][n-1]
		t.free[k] = t.free[k][:n-1]
		clear(t.nodes[k][i : int(i)+fan])
		return i
	}
	i := uint32(len(t.nodes[k]))
	for j := 0; j < fan; j++ {
		t.nodes[k] = append(t.nodes[k], node{})
	}
	return i
}

// freeSpan recycles a class-k child span.
func (t *NTable) freeSpan(k int, start uint32) {
	t.free[k] = append(t.free[k], start)
}

// freeSubtree releases every child span below the class-k node nd.
func (t *NTable) freeSubtree(k int, nd node) {
	if !nd.split {
		return
	}
	fan := t.classes.Fanout(k)
	for j := 0; j < fan; j++ {
		t.freeSubtree(k-1, t.nodes[k-1][nd.kids+uint32(j)])
	}
	t.freeSpan(k-1, nd.kids)
}

// subtreeValid reports whether any valid leaf exists at or below the
// class-k node nd.
func (t *NTable) subtreeValid(k int, nd node) bool {
	if nd.pte.Valid {
		return true
	}
	if !nd.split {
		return false
	}
	fan := t.classes.Fanout(k)
	for j := 0; j < fan; j++ {
		if t.subtreeValid(k-1, t.nodes[k-1][nd.kids+uint32(j)]) {
			return true
		}
	}
	return false
}

// Map installs a class-k mapping for page number pn (numbered at class
// k). Intermediate tables are created on demand. It fails when any
// enclosing region is already mapped at a larger size (demote first),
// or — for k >= 1 — when the region itself is already mapped or still
// holds smaller mappings (promote instead). Class-0 mappings may
// overwrite an existing class-0 PTE, as the two-size table allowed.
func (t *NTable) Map(k int, pn addr.PN, frame addr.PN) error {
	n := t.classes.N()
	if k < 0 || k >= n {
		return fmt.Errorf("pagetable: size class %d out of range [0,%d)", k, n)
	}
	topR := t.classes.Up(pn, k, n-1)
	var ti uint32
	if i, ok := t.idx.Get(uint64(topR)); ok {
		ti = uint32(i)
	} else {
		ti = t.allocTop(topR)
	}
	// Descend to class k, checking for blocking leaves. cur always
	// points into an arena one class above the one allocSpan grows, so
	// the pointer stays valid across span allocation.
	cur := &t.top[ti]
	for j := n - 1; j > k; j-- {
		if cur.pte.Valid {
			return fmt.Errorf("pagetable: class-%d region %#x is mapped as one %s page",
				j, uint64(t.classes.Up(pn, k, j)), t.classes.Size(j))
		}
		if !cur.split {
			cur.split = true
			cur.kids = t.allocSpan(j - 1)
		}
		sub := t.classes.Up(pn, k, j-1)
		cur = &t.nodes[j-1][cur.kids+uint32(t.classes.SubIndex(sub, j, j-1))]
	}
	if k == 0 {
		cur.pte = PTE{Frame: frame, Valid: true}
		return nil
	}
	if cur.pte.Valid {
		return fmt.Errorf("pagetable: class-%d region %#x already mapped", k, uint64(pn))
	}
	if cur.split {
		if t.subtreeValid(k, *cur) {
			return fmt.Errorf("pagetable: class-%d region %#x has smaller mappings; promote instead",
				k, uint64(pn))
		}
		t.freeSubtree(k, *cur)
	}
	*cur = node{pte: PTE{Frame: frame, Valid: true, Large: true}}
	return nil
}

// Unmap removes the mapping covering va — the leaf of whatever class
// resolves it — and reports whether anything was unmapped. Child tables
// left entirely empty are recycled, cascading upward, so an unmapped
// region costs nothing.
func (t *NTable) Unmap(va addr.VA) bool {
	n := t.classes.N()
	topR := t.classes.Page(va, n-1)
	ti64, ok := t.idx.Get(uint64(topR))
	if !ok {
		return false
	}
	ti := uint32(ti64)
	// path[k] is the node index of va's class-k node in its arena.
	var path [addr.MaxSizeClasses]uint32
	path[n-1] = ti
	k := n - 1
	nd := t.top[ti]
	for nd.split {
		k--
		path[k] = nd.kids + uint32(t.classes.SubIndex(t.classes.Page(va, k), k+1, k))
		nd = t.nodes[k][path[k]]
	}
	if !nd.pte.Valid {
		return false
	}
	if k == n-1 {
		t.top[ti] = node{}
		t.releaseTop(topR, ti)
		return true
	}
	t.nodes[k][path[k]] = node{}
	// Cascade: free any span that just became entirely empty.
	for k < n-1 {
		var parent *node
		if k+1 == n-1 {
			parent = &t.top[ti]
		} else {
			parent = &t.nodes[k+1][path[k+1]]
		}
		fan := uint32(t.classes.Fanout(k + 1))
		for j := uint32(0); j < fan; j++ {
			if !t.nodes[k][parent.kids+j].empty() {
				return true
			}
		}
		t.freeSpan(k, parent.kids)
		*parent = node{}
		k++
	}
	t.releaseTop(topR, ti)
	return true
}

// Lookup walks the table for va as a size-aware software miss handler
// would, charging the cost model: trap + size probe + insert, plus one
// dependent load per level descended. With two classes the charges are
// exactly the two-size table's. It runs on every simulated TLB miss:
// one flat-table probe plus arena indexing, no allocation.
//
//paperlint:hot
func (t *NTable) Lookup(va addr.VA) (PTE, Walk) {
	t.stats.Lookups++
	w := Walk{Cycles: TrapCycles + SizeProbeCycles + InsertCycles}
	n := t.classes.N()
	w.Levels = 1
	w.Cycles += LoadCycles
	ti, ok := t.idx.Get(uint64(t.classes.Page(va, n-1)))
	if !ok {
		t.stats.Misses++
		return PTE{}, w
	}
	k := n - 1
	nd := t.top[ti]
	for nd.split {
		k--
		nd = t.nodes[k][nd.kids+uint32(t.classes.SubIndex(t.classes.Page(va, k), k+1, k))]
		w.Levels++
		w.Cycles += LoadCycles
	}
	if !nd.pte.Valid {
		t.stats.Misses++
		return PTE{}, w
	}
	w.Found = true
	w.Class = k
	w.Large = k >= 1
	return nd.pte, w
}

// findNode descends to the class-k node for region (numbered at class
// k), without creating anything. It returns a pointer into the arena —
// valid until the next allocation — or an error when the path is absent
// or blocked by a larger-size leaf.
func (t *NTable) findNode(k int, region addr.PN) (*node, error) {
	n := t.classes.N()
	if k < 0 || k >= n {
		return nil, fmt.Errorf("pagetable: size class %d out of range [0,%d)", k, n)
	}
	ti, ok := t.idx.Get(uint64(t.classes.Up(region, k, n-1)))
	if !ok {
		return nil, fmt.Errorf("pagetable: class-%d region %#x is not mapped", k, uint64(region))
	}
	cur := &t.top[ti]
	for j := n - 1; j > k; j-- {
		if cur.pte.Valid {
			return nil, fmt.Errorf("pagetable: class-%d region %#x is mapped as one %s page",
				j, uint64(t.classes.Up(region, k, j)), t.classes.Size(j))
		}
		if !cur.split {
			return nil, fmt.Errorf("pagetable: class-%d region %#x is not mapped", k, uint64(region))
		}
		sub := t.classes.Up(region, k, j-1)
		cur = &t.nodes[j-1][cur.kids+uint32(t.classes.SubIndex(sub, j, j-1))]
	}
	return cur, nil
}

// collect gathers every valid leaf at or below the class-k node nd.
func (t *NTable) collect(k int, nd node, freed []Freed, bytes uint64) ([]Freed, uint64) {
	if nd.pte.Valid {
		return append(freed, Freed{Frame: nd.pte.Frame, Class: k}),
			bytes + uint64(t.classes.Size(k))
	}
	if !nd.split {
		return freed, bytes
	}
	fan := t.classes.Fanout(k)
	for j := 0; j < fan; j++ {
		freed, bytes = t.collect(k-1, t.nodes[k-1][nd.kids+uint32(j)], freed, bytes)
	}
	return freed, bytes
}

// Promote collapses every smaller mapping under the class-k region
// (k >= 1) into one class-k mapping at newFrame. It returns the frames
// that were freed, with their classes, and the bytes of resident data
// copied to the new frame. It fails if the region holds no smaller
// mappings.
func (t *NTable) Promote(k int, region addr.PN, newFrame addr.PN) ([]Freed, uint64, error) {
	if k < 1 || k >= t.classes.N() {
		return nil, 0, fmt.Errorf("pagetable: promotion class %d out of range [1,%d)",
			k, t.classes.N())
	}
	nd, err := t.findNode(k, region)
	if err != nil || nd.pte.Valid || !nd.split {
		return nil, 0, fmt.Errorf("pagetable: class-%d region %#x has no smaller mappings to promote",
			k, uint64(region))
	}
	freed, bytes := t.collect(k, *nd, nil, 0)
	if len(freed) == 0 {
		return nil, 0, fmt.Errorf("pagetable: class-%d region %#x is empty", k, uint64(region))
	}
	t.freeSubtree(k, *nd)
	*nd = node{pte: PTE{Frame: newFrame, Valid: true, Large: true}}
	t.stats.Promotions++
	t.stats.CopiedBytes += bytes
	return freed, bytes, nil
}

// Demote splits the class-k region's leaf into Fanout(k) class-(k-1)
// mappings at the given frames. It returns the freed class-k frame.
func (t *NTable) Demote(k int, region addr.PN, frames []addr.PN) (addr.PN, error) {
	if k < 1 || k >= t.classes.N() {
		return 0, fmt.Errorf("pagetable: demotion class %d out of range [1,%d)",
			k, t.classes.N())
	}
	if fan := t.classes.Fanout(k); len(frames) != fan {
		return 0, fmt.Errorf("pagetable: demoting class-%d region %#x needs %d frames, got %d",
			k, uint64(region), fan, len(frames))
	}
	nd, err := t.findNode(k, region)
	if err != nil {
		return 0, err
	}
	if !nd.pte.Valid {
		return 0, fmt.Errorf("pagetable: class-%d region %#x is not mapped as one %s page",
			k, uint64(region), t.classes.Size(k))
	}
	old := nd.pte.Frame
	kids := t.allocSpan(k - 1)
	// allocSpan may have grown nodes[k-1]; nd points one class above.
	*nd = node{split: true, kids: kids}
	for i, f := range frames {
		t.nodes[k-1][kids+uint32(i)] = node{
			pte: PTE{Frame: f, Valid: true, Large: k-1 >= 1},
		}
	}
	t.stats.Demotions++
	t.stats.CopiedBytes += uint64(t.classes.Size(k))
	return old, nil
}

// Stats returns a snapshot of the counters.
func (t *NTable) Stats() Stats { return t.stats }

// MappedRegions returns how many top-class regions have any mapping.
func (t *NTable) MappedRegions() int { return t.idx.Len() }
