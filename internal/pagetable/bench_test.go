package pagetable

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/kernelref"
)

// BenchmarkTableLookup measures the arena-backed miss-handler walk; the
// GoMap variant is the pre-conversion pointer-chasing layout
// (kernelref.MapTable) on the same stream. The pairs back the speedup
// rows in BENCH_kernels.json.
func BenchmarkTableLookup(b *testing.B) {
	t := New()
	for blk := addr.PN(0); blk < 1<<13; blk += 2 { // map every other block of 32MB
		if err := t.MapSmall(blk, blk); err != nil {
			b.Fatal(err)
		}
	}
	vas := kernelref.LookupVAs(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(vas[i&(1<<16-1)])
	}
}

func BenchmarkTableLookupGoMap(b *testing.B) {
	t := kernelref.NewMapTable()
	for blk := addr.PN(0); blk < 1<<13; blk += 2 {
		t.MapSmall(blk, blk)
	}
	vas := kernelref.LookupVAs(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(vas[i&(1<<16-1)])
	}
}

// Map/unmap churn is where the arena layout pays off: the old layout
// heap-allocates an entry plus a block array per chunk creation, the
// arena recycles free-list slots and allocates nothing.
func BenchmarkTableMapUnmap(b *testing.B) {
	t := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := addr.PN(i&(1<<12-1)) << 3 // one block per chunk
		if err := t.MapSmall(blk, addr.PN(i)); err != nil {
			b.Fatal(err)
		}
		t.Unmap(addr.VA(uint64(blk) << addr.BlockShift))
	}
}

func BenchmarkTableMapUnmapGoMap(b *testing.B) {
	t := kernelref.NewMapTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := addr.PN(i&(1<<12-1)) << 3
		t.MapSmall(blk, addr.PN(i))
		t.Unmap(addr.VA(uint64(blk) << addr.BlockShift))
	}
}
