package pagetable

import (
	"strings"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

// The instruction-level handler models must reproduce the scalar
// penalty constants the simulators (and the paper) use.
func TestHandlerSequencesMatchModel(t *testing.T) {
	if got := Cycles(SingleSizeHandler()); got != SingleSizeHandlerCycles() {
		t.Fatalf("single-size handler = %v cycles, want %v", got, SingleSizeHandlerCycles())
	}
	if got := Cycles(TwoSizeHandler()); got != TwoSizeHandlerCycles() {
		t.Fatalf("two-size handler = %v cycles, want %v", got, TwoSizeHandlerCycles())
	}
	ratio := Cycles(TwoSizeHandler()) / Cycles(SingleSizeHandler())
	if ratio != 1.25 {
		t.Fatalf("two-size/single-size = %v, paper says 1.25", ratio)
	}
}

func TestHandlerSequencesAreAnnotated(t *testing.T) {
	for _, seq := range [][]Instr{SingleSizeHandler(), TwoSizeHandler(), HashedHandler(2, 3)} {
		if len(seq) == 0 {
			t.Fatal("empty handler")
		}
		if seq[0].Op != OpTrapEntry {
			t.Error("handlers must start with trap entry")
		}
		if seq[len(seq)-1].Op != OpTrapRet {
			t.Error("handlers must end with trap return")
		}
		for _, in := range seq {
			if strings.TrimSpace(in.What) == "" {
				t.Errorf("unannotated instruction %v", in.Op)
			}
		}
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpTrapEntry: "trap-entry", OpTrapRet: "trap-return", OpALU: "alu",
		OpLoad: "load", OpStore: "store", OpBranch: "branch", OpTLBWrite: "tlb-write",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op string")
	}
}

// TestOpCostExhaustive pins the dense cost table against the Op const
// block: every declared Op must have a nonzero cycle cost and a real
// String() case (not the fallback spelling), and an undeclared Op must
// panic instead of silently costing 0.0 the way the old map did.
func TestOpCostExhaustive(t *testing.T) {
	for op := Op(0); int(op) < numOps; op++ {
		if c := op.cycles(); c <= 0 {
			t.Errorf("%v costs %v cycles, want > 0", op, c)
		}
		if s := op.String(); strings.HasPrefix(s, "Op(") {
			t.Errorf("Op(%d) has no String() case (got %q)", uint8(op), s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("costing an undeclared Op did not panic")
		}
	}()
	Cycles([]Instr{{Op(numOps), "bogus"}})
}

func TestHashedHandlerCostsGrowWithWork(t *testing.T) {
	oneProbe := Cycles(HashedHandler(1, 1))
	twoProbes := Cycles(HashedHandler(2, 1))
	longChain := Cycles(HashedHandler(1, 4))
	if twoProbes <= oneProbe {
		t.Fatal("second probe must cost more")
	}
	if longChain <= oneProbe {
		t.Fatal("chain steps must cost more")
	}
}

func TestHashedTableValidation(t *testing.T) {
	if _, err := NewHashed(0, SmallFirst); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := NewHashed(12, SmallFirst); err == nil {
		t.Fatal("non-power-of-two buckets should fail")
	}
	if SmallFirst.String() != "small-first" || LargeFirst.String() != "large-first" {
		t.Fatal("probe order names")
	}
}

func TestHashedInsertLookupRemove(t *testing.T) {
	h, err := NewHashed(64, SmallFirst)
	if err != nil {
		t.Fatal(err)
	}
	small := policy.Page{Number: addr.Block(0x5123), Shift: addr.BlockShift}
	large := policy.Page{Number: addr.Chunk(0x80000), Shift: addr.ChunkShift}
	h.Insert(small, 10)
	h.Insert(large, 20)

	pte, w := h.Lookup(0x5123)
	if !w.Found || w.Large || pte.Frame != 10 {
		t.Fatalf("small lookup: pte=%+v walk=%+v", pte, w)
	}
	if w.Probes != 1 {
		t.Fatalf("small-first order should find small pages on probe 1, got %d", w.Probes)
	}
	pte, w = h.Lookup(0x80000 + 0x1234)
	if !w.Found || !w.Large || pte.Frame != 20 {
		t.Fatalf("large lookup: pte=%+v walk=%+v", pte, w)
	}
	if w.Probes != 2 {
		t.Fatalf("small-first order needs 2 probes for large pages, got %d", w.Probes)
	}
	// Miss: both probes, charged anyway.
	_, w = h.Lookup(0xdead0000)
	if w.Found || w.Probes != 2 {
		t.Fatalf("miss walk: %+v", w)
	}
	if st := h.Stats(); st.Lookups != 3 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if !h.Remove(small) {
		t.Fatal("remove should succeed")
	}
	if h.Remove(small) {
		t.Fatal("double remove should fail")
	}
	if _, w := h.Lookup(0x5123); w.Found {
		t.Fatal("removed mapping still found")
	}
}

func TestHashedProbeOrderFavoursLargePages(t *testing.T) {
	hs, _ := NewHashed(64, SmallFirst)
	hl, _ := NewHashed(64, LargeFirst)
	large := policy.Page{Number: 2, Shift: addr.ChunkShift}
	hs.Insert(large, 1)
	hl.Insert(large, 1)
	va := addr.VA(2 << addr.ChunkShift)
	_, ws := hs.Lookup(va)
	_, wl := hl.Lookup(va)
	if wl.Cycles >= ws.Cycles {
		t.Fatalf("large-first (%v cycles) should beat small-first (%v) on large pages",
			wl.Cycles, ws.Cycles)
	}
	if wl.Probes != 1 || ws.Probes != 2 {
		t.Fatalf("probes: large-first %d, small-first %d", wl.Probes, ws.Probes)
	}
}

func TestHashedInsertReplaces(t *testing.T) {
	h, _ := NewHashed(16, SmallFirst)
	p := policy.Page{Number: 7, Shift: addr.BlockShift}
	h.Insert(p, 1)
	h.Insert(p, 2)
	pte, w := h.Lookup(addr.VA(7 << addr.BlockShift))
	if !w.Found || pte.Frame != 2 {
		t.Fatalf("replacement failed: %+v", pte)
	}
	if _, entries := h.Load(); entries != 1 {
		t.Fatalf("entries = %d after replace", entries)
	}
}

func TestHashedLoadDistribution(t *testing.T) {
	h, _ := NewHashed(256, SmallFirst)
	for i := 0; i < 512; i++ {
		h.Insert(policy.Page{Number: addr.PN(i), Shift: addr.BlockShift}, addr.PN(i))
	}
	avg, entries := h.Load()
	if entries != 512 {
		t.Fatalf("entries = %d", entries)
	}
	// A decent hash keeps chains near the load factor (2).
	if avg > 4 {
		t.Fatalf("average chain %v too long for load factor 2", avg)
	}
	empty, _ := NewHashed(16, SmallFirst)
	if a, n := empty.Load(); a != 0 || n != 0 {
		t.Fatal("empty table load")
	}
}

func TestSTLBValidation(t *testing.T) {
	if _, err := NewSTLB(0); err == nil {
		t.Fatal("zero slots should fail")
	}
	if _, err := NewSTLB(3); err == nil {
		t.Fatal("non-power-of-two slots should fail")
	}
}

func TestSTLBHitPaths(t *testing.T) {
	s, err := NewSTLB(64)
	if err != nil {
		t.Fatal(err)
	}
	small := policy.Page{Number: addr.Block(0x3000), Shift: addr.BlockShift}
	large := policy.Page{Number: addr.Chunk(0x100000), Shift: addr.ChunkShift}
	s.Fill(small, PTE{Frame: 5, Valid: true})
	s.Fill(large, PTE{Frame: 9, Valid: true, Large: true})

	pte, hit, cyc := s.Lookup(0x3000)
	if !hit || pte.Frame != 5 || cyc != STLBProbeCycles {
		t.Fatalf("small hit: %+v hit=%v cyc=%v", pte, hit, cyc)
	}
	pte, hit, cyc = s.Lookup(0x100000 + 0x4567)
	if !hit || pte.Frame != 9 || cyc != 2*STLBProbeCycles {
		t.Fatalf("large hit: %+v hit=%v cyc=%v", pte, hit, cyc)
	}
	_, hit, cyc = s.Lookup(0xdeadbeef000)
	if hit || cyc != 2*STLBProbeCycles {
		t.Fatalf("miss: hit=%v cyc=%v", hit, cyc)
	}
	st := s.Stats()
	if st.Lookups != 3 || st.Hits != 2 || st.SecondProbeHits != 1 || st.Fills != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if s.HitRatio() != 2.0/3.0 {
		t.Fatalf("hit ratio = %v", s.HitRatio())
	}
}

func TestSTLBInvalidateChunk(t *testing.T) {
	s, _ := NewSTLB(64)
	// Fill the chunk's large entry and two of its small entries.
	c := addr.PN(3)
	s.Fill(policy.Page{Number: c, Shift: addr.ChunkShift}, PTE{Valid: true, Large: true})
	first := addr.FirstBlock(c)
	s.Fill(policy.Page{Number: first, Shift: addr.BlockShift}, PTE{Valid: true})
	s.Fill(policy.Page{Number: first + 5, Shift: addr.BlockShift}, PTE{Valid: true})
	if n := s.InvalidateChunk(c); n != 3 {
		t.Fatalf("invalidated %d entries, want 3", n)
	}
	if n := s.InvalidateChunk(c); n != 0 {
		t.Fatalf("second shootdown removed %d", n)
	}
	if _, hit, _ := s.Lookup(addr.VA(uint64(first) << addr.BlockShift)); hit {
		t.Fatal("invalidated entry still hits")
	}
}

func TestSTLBConflictEviction(t *testing.T) {
	s, _ := NewSTLB(4) // tiny: pages 0 and 4 share slot 0
	p0 := policy.Page{Number: 0, Shift: addr.BlockShift}
	p4 := policy.Page{Number: 4, Shift: addr.BlockShift}
	s.Fill(p0, PTE{Frame: 1, Valid: true})
	s.Fill(p4, PTE{Frame: 2, Valid: true})
	if _, hit, _ := s.Lookup(0); hit {
		t.Fatal("page 0 should have been displaced by page 4")
	}
	if pte, hit, _ := s.Lookup(addr.VA(4 << addr.BlockShift)); !hit || pte.Frame != 2 {
		t.Fatal("page 4 should hit")
	}
	if !s.Invalidate(p4) {
		t.Fatal("invalidate resident entry")
	}
	if s.Invalidate(p0) {
		t.Fatal("invalidate of displaced entry should miss")
	}
}

// Model-based property test: the hashed table agrees with a plain map
// under arbitrary insert/remove/lookup interleavings of both page sizes.
func TestHashedAgainstMapModel(t *testing.T) {
	f := func(ops []uint16, seed uint16) bool {
		h, err := NewHashed(64, ProbeOrder(seed%2))
		if err != nil {
			return false
		}
		model := map[policy.Page]addr.PN{}
		for i, op := range ops {
			// Derive a pseudo-random page from the op.
			shift := uint(addr.BlockShift)
			if op&1 == 1 {
				shift = addr.ChunkShift
			}
			p := policy.Page{Number: addr.PN(op >> 3 & 0x3F), Shift: shift}
			switch (op >> 1) & 0x3 {
			case 0, 1: // insert
				frame := addr.PN(i)
				h.Insert(p, frame)
				model[p] = frame
			case 2: // remove
				got := h.Remove(p)
				_, want := model[p]
				if got != want {
					return false
				}
				delete(model, p)
			default: // lookup
				// A VA lookup resolves through EITHER page size, in probe
				// order; mirror that in the model.
				va := addr.VA(uint64(p.Number) << p.Shift)
				smallP := policy.Page{Number: addr.Block(va), Shift: addr.BlockShift}
				largeP := policy.Page{Number: addr.Chunk(va), Shift: addr.ChunkShift}
				order := []policy.Page{smallP, largeP}
				if seed%2 == uint16(LargeFirst) {
					order = []policy.Page{largeP, smallP}
				}
				var wantFrame addr.PN
				wantFound := false
				wantLarge := false
				for _, cand := range order {
					if f, ok := model[cand]; ok {
						wantFrame, wantFound = f, true
						wantLarge = cand.Shift == addr.ChunkShift
						break
					}
				}
				pte, w := h.Lookup(va)
				if w.Found != wantFound {
					return false
				}
				if wantFound && (pte.Frame != wantFrame || pte.Large != wantLarge || w.Large != wantLarge) {
					return false
				}
			}
		}
		// Entry count agrees at the end.
		_, entries := h.Load()
		return entries == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
