package pagetable

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

// HashedTable is the alternative page-table organization Section 2.3
// sketches for two page sizes: a hashed (inverted-style) table whose
// miss handler does not know the faulting page's size and therefore
// probes the table "trying all page sizes in some order". Each probe
// hashes the page number at one candidate size and walks the bucket
// chain; the probe order trades small-page against large-page miss
// latency.
type HashedTable struct {
	buckets [][]hashedEntry
	order   ProbeOrder
	small   uint
	large   uint
	stats   HashedStats
}

type hashedEntry struct {
	page  policy.Page
	frame addr.PN
}

// ProbeOrder selects which page size a hashed lookup tries first.
type ProbeOrder uint8

// Probe orders.
const (
	// SmallFirst favours small-page misses: large-page lookups pay a
	// second hash+chain.
	SmallFirst ProbeOrder = iota
	// LargeFirst favours large-page misses, sensible when the OS makes
	// heavy use of large pages.
	LargeFirst
)

// String names the probe order.
func (o ProbeOrder) String() string {
	if o == LargeFirst {
		return "large-first"
	}
	return "small-first"
}

// HashedStats counts hashed-table activity.
type HashedStats struct {
	Lookups    uint64
	Misses     uint64
	Probes     uint64 // hash-and-walk attempts across all lookups
	ChainSteps uint64 // chain links traversed
}

// HashWalk reports the cost of one hashed lookup, priced via the
// instruction-level HashedHandler model.
type HashWalk struct {
	Found      bool
	Large      bool
	Probes     int
	ChainSteps int
	Cycles     float64
}

// NewHashed returns a hashed table with the given bucket count (a power
// of two) and probe order, for 4KB/32KB pages.
func NewHashed(buckets int, order ProbeOrder) (*HashedTable, error) {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("pagetable: bucket count %d not a positive power of two", buckets)
	}
	return &HashedTable{
		buckets: make([][]hashedEntry, buckets),
		order:   order,
		small:   addr.BlockShift,
		large:   addr.ChunkShift,
	}, nil
}

func (h *HashedTable) hash(p policy.Page) int {
	x := uint64(p.Number)*0x9E3779B97F4A7C15 ^ uint64(p.Shift)<<57
	x ^= x >> 29
	return int(x & uint64(len(h.buckets)-1))
}

// Insert adds or replaces the mapping for page p.
func (h *HashedTable) Insert(p policy.Page, frame addr.PN) {
	b := h.hash(p)
	for i := range h.buckets[b] {
		if h.buckets[b][i].page == p {
			h.buckets[b][i].frame = frame
			return
		}
	}
	h.buckets[b] = append(h.buckets[b], hashedEntry{page: p, frame: frame})
}

// Remove deletes the mapping for page p, reporting whether it existed.
func (h *HashedTable) Remove(p policy.Page) bool {
	b := h.hash(p)
	for i := range h.buckets[b] {
		if h.buckets[b][i].page == p {
			last := len(h.buckets[b]) - 1
			h.buckets[b][i] = h.buckets[b][last]
			h.buckets[b] = h.buckets[b][:last]
			return true
		}
	}
	return false
}

// probe walks one bucket for the page, returning the frame and how many
// chain links were loaded.
func (h *HashedTable) probe(p policy.Page) (addr.PN, int, bool) {
	b := h.hash(p)
	for i, e := range h.buckets[b] {
		if e.page == p {
			return e.frame, i + 1, true
		}
	}
	return 0, len(h.buckets[b]), false
}

// Lookup resolves va without knowing its page size, probing the sizes
// in the configured order. The returned walk carries the full handler
// cost under the instruction-level model.
func (h *HashedTable) Lookup(va addr.VA) (PTE, HashWalk) {
	h.stats.Lookups++
	sizes := [2]uint{h.small, h.large}
	if h.order == LargeFirst {
		sizes = [2]uint{h.large, h.small}
	}
	var w HashWalk
	for _, shift := range sizes {
		p := policy.Page{Number: addr.Page(va, shift), Shift: shift}
		frame, steps, ok := h.probe(p)
		w.Probes++
		w.ChainSteps += steps
		if ok {
			w.Found = true
			w.Large = shift == h.large
			h.finish(&w)
			return PTE{Frame: frame, Valid: true, Large: w.Large}, w
		}
	}
	h.stats.Misses++
	h.finish(&w)
	return PTE{}, w
}

func (h *HashedTable) finish(w *HashWalk) {
	w.Cycles = Cycles(HashedHandler(w.Probes, w.ChainSteps))
	h.stats.Probes += uint64(w.Probes)
	h.stats.ChainSteps += uint64(w.ChainSteps)
}

// Stats returns a snapshot of the counters.
func (h *HashedTable) Stats() HashedStats { return h.stats }

// Load returns the average chain length over non-empty buckets and the
// number of mapped entries; useful to check hash quality in tests.
func (h *HashedTable) Load() (avgChain float64, entries int) {
	used := 0
	for _, b := range h.buckets {
		if len(b) > 0 {
			used++
			entries += len(b)
		}
	}
	if used == 0 {
		return 0, 0
	}
	return float64(entries) / float64(used), entries
}
