package pagetable

import "fmt"

// This file models TLB miss handlers at the instruction level. The
// paper's miss-penalty estimates come from "routines written in assembly
// code for the SPARC architecture" (Section 2.3): a single-page-size
// handler of about 20 cycles and a two-page-size handler "about 25%
// longer". Rather than hard-coding those scalars, we write the handler
// instruction sequences and cost them with a simple per-class cycle
// model; the totals reproduce the 20/25-cycle constants used by the
// simulators, and tests pin the agreement.

// Op classifies an abstract handler instruction.
type Op uint8

// Instruction classes.
const (
	OpTrapEntry Op = iota // take the trap, save state
	OpTrapRet             // restore state, return from trap
	OpALU                 // shift/mask/add to form indices and tags
	OpLoad                // dependent memory load (table walk step)
	OpStore               // memory store
	OpBranch              // conditional branch (size test, validity test)
	OpTLBWrite            // install the entry into the TLB
)

// numOps is the number of declared Op values; keep in sync with the
// const block above (the exhaustiveness test enforces it).
const numOps = int(OpTLBWrite) + 1

// opCycles is the per-class cycle model: loads dominate (cache-missing
// dependent loads on an early-90s machine), traps cost several cycles
// of pipeline drain, simple ALU/branches are single-cycle. A dense
// array, not a map: Cycles runs once per modeled miss, and the old map
// silently costed an unknown Op at 0.0 — now an out-of-range Op panics
// in cycles() instead of corrupting totals.
var opCycles = [numOps]float64{
	OpTrapEntry: 4,
	OpTrapRet:   3,
	OpALU:       1,
	OpLoad:      4,
	OpStore:     2,
	OpBranch:    1,
	OpTLBWrite:  2,
}

// cycles costs one op, panicking on an undeclared Op value so a
// miswired handler fails loudly rather than costing 0.0.
func (o Op) cycles() float64 {
	if int(o) >= numOps {
		panic(fmt.Sprintf("pagetable: no cycle cost for %v", o))
	}
	return opCycles[o]
}

// String names the op class.
func (o Op) String() string {
	switch o {
	case OpTrapEntry:
		return "trap-entry"
	case OpTrapRet:
		return "trap-return"
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpTLBWrite:
		return "tlb-write"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Instr is one abstract handler instruction.
type Instr struct {
	Op   Op
	What string // human-readable purpose, e.g. "load L2 PTE"
}

// Cycles costs an instruction sequence under the per-class model.
func Cycles(seq []Instr) float64 {
	total := 0.0
	for _, in := range seq {
		total += in.Op.cycles()
	}
	return total
}

// SingleSizeHandler is the classic software miss handler for one page
// size: index the root table, load the second-level PTE, install.
// Its cost is exactly SingleSizeHandlerCycles() = 20.
func SingleSizeHandler() []Instr {
	return []Instr{
		{OpTrapEntry, "trap entry, save registers"},
		{OpALU, "extract level-1 index from faulting VA"},
		{OpLoad, "load level-1 descriptor"},
		{OpALU, "extract level-2 index"},
		{OpLoad, "load level-2 PTE"},
		{OpTLBWrite, "install translation"},
		{OpBranch, "validity check"},
		{OpTrapRet, "return from trap"},
	}
}

// TwoSizeHandler extends the single-size handler with page-size
// discovery: after loading the chunk descriptor it must test the size
// bit, branch, and either use the large PTE directly or form the block
// index and take the extra path. Its cost is exactly
// TwoSizeHandlerCycles() = 25, the paper's "about 25% longer".
func TwoSizeHandler() []Instr {
	return []Instr{
		{OpTrapEntry, "trap entry, save registers"},
		{OpALU, "extract chunk index from faulting VA"},
		{OpLoad, "load chunk descriptor"},
		{OpALU, "extract size bit"},
		{OpBranch, "large page?"},
		{OpALU, "form block index (small path)"},
		{OpALU, "compute block-table base"},
		{OpLoad, "load small PTE from block table"},
		{OpALU, "select PTE format for size"},
		{OpALU, "merge size into TLB tag"},
		{OpTLBWrite, "install translation (with size)"},
		{OpBranch, "validity check"},
		{OpTrapRet, "return from trap"},
	}
}

// HashedHandler models a handler that probes a hashed page table, not
// knowing the page size: each probe hashes the page number at one size
// and walks a chain. probes is how many sizes were tried before the hit
// (1 or 2) and chainSteps the total chain loads across probes.
func HashedHandler(probes, chainSteps int) []Instr {
	seq := []Instr{
		{OpTrapEntry, "trap entry, save registers"},
	}
	for p := 0; p < probes; p++ {
		seq = append(seq,
			Instr{OpALU, "form page number at candidate size"},
			Instr{OpALU, "hash page number"},
			Instr{OpLoad, "load bucket head"},
		)
	}
	for c := 0; c < chainSteps; c++ {
		seq = append(seq,
			Instr{OpLoad, "follow chain link"},
			Instr{OpBranch, "tag match?"},
		)
	}
	seq = append(seq,
		Instr{OpALU, "merge size into TLB tag"},
		Instr{OpTLBWrite, "install translation"},
		Instr{OpTrapRet, "return from trap"},
	)
	return seq
}
