package pagetable

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

// STLB is the "software cache of translation entries" Section 2.3
// suggests placing in front of the full page-table walk: a
// direct-mapped array of recent translations that the miss handler
// probes before walking the real table. Because the handler does not
// know the faulting page's size, the probe mirrors the hardware's
// sequential exact-index strategy: try the small page number's slot,
// then the large page number's slot.
type STLB struct {
	slots []stlbSlot
	mask  uint64
	stats STLBStats
}

type stlbSlot struct {
	page  policy.Page
	pte   PTE
	valid bool
}

// STLBStats counts software-cache activity.
type STLBStats struct {
	Lookups uint64
	Hits    uint64
	// SecondProbeHits are hits found on the large-page (second) probe.
	SecondProbeHits uint64
	Fills           uint64
	Invalidations   uint64
}

// STLBProbeCycles is the cost of one software-cache probe: form the
// index, load the entry, compare the tag (ALU+ALU+Load+Branch under the
// handler cost model, minus trap overhead which the caller charges once).
const STLBProbeCycles = 7.0

// NewSTLB returns a direct-mapped software translation cache with the
// given number of slots (a power of two).
func NewSTLB(slots int) (*STLB, error) {
	if slots <= 0 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("pagetable: STLB slots %d not a positive power of two", slots)
	}
	return &STLB{slots: make([]stlbSlot, slots), mask: uint64(slots - 1)}, nil
}

func (s *STLB) slotFor(pn addr.PN) *stlbSlot {
	return &s.slots[uint64(pn)&s.mask]
}

// Lookup probes for va (small slot, then large slot). It returns the
// translation, whether it hit, and the probe cost in cycles.
func (s *STLB) Lookup(va addr.VA) (PTE, bool, float64) {
	s.stats.Lookups++
	small := policy.Page{Number: addr.Block(va), Shift: addr.BlockShift}
	if sl := s.slotFor(small.Number); sl.valid && sl.page == small {
		s.stats.Hits++
		return sl.pte, true, STLBProbeCycles
	}
	large := policy.Page{Number: addr.Chunk(va), Shift: addr.ChunkShift}
	if sl := s.slotFor(large.Number); sl.valid && sl.page == large {
		s.stats.Hits++
		s.stats.SecondProbeHits++
		return sl.pte, true, 2 * STLBProbeCycles
	}
	return PTE{}, false, 2 * STLBProbeCycles
}

// Fill caches a translation after a successful full walk.
func (s *STLB) Fill(p policy.Page, pte PTE) {
	sl := s.slotFor(p.Number)
	*sl = stlbSlot{page: p, pte: pte, valid: true}
	s.stats.Fills++
}

// Invalidate drops the cached translation for p if present.
func (s *STLB) Invalidate(p policy.Page) bool {
	sl := s.slotFor(p.Number)
	if sl.valid && sl.page == p {
		sl.valid = false
		s.stats.Invalidations++
		return true
	}
	return false
}

// InvalidateChunk drops the chunk's large entry and all its small
// entries — the shootdown a promotion/demotion requires.
func (s *STLB) InvalidateChunk(c addr.PN) int {
	n := 0
	if s.Invalidate(policy.Page{Number: c, Shift: addr.ChunkShift}) {
		n++
	}
	first := addr.FirstBlock(c)
	for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
		if s.Invalidate(policy.Page{Number: first + i, Shift: addr.BlockShift}) {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (s *STLB) Stats() STLBStats { return s.stats }

// HitRatio returns hits/lookups.
func (s *STLB) HitRatio() float64 {
	if s.stats.Lookups == 0 {
		return 0
	}
	return float64(s.stats.Hits) / float64(s.stats.Lookups)
}
