// Package pagetable implements the software page-table organization a
// two-page-size operating system needs (paper Section 2.3), and the
// cycle-cost model that justifies the paper's miss-penalty estimates:
// about 20 cycles for a software-handled miss with one page size and
// about 25% more when the handler must also discover the page size.
//
// The structure follows the paper's chunk model: the address space is an
// array of 32KB chunks; each mapped chunk is either one large-page PTE
// or a block table of eight small-page PTEs. A miss handler probes the
// chunk entry (one load), tests the size bit (the two-size overhead),
// and either uses the large PTE or loads the small PTE from the block
// table. Promote and Demote implement the remapping that the page-size
// assignment policy triggers, tracking the copy traffic they cause
// (Section 3.4's promotion costs).
package pagetable

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/htab"
)

// Cycle cost model for software miss handling, loosely itemized from
// the SPARC-style handlers the paper estimated from (Section 2.3):
// trap entry/exit, per-level table loads, and TLB entry insertion.
const (
	// TrapCycles covers exception entry, register save/restore, return.
	TrapCycles = 8.0
	// LoadCycles is the cost of one dependent table load.
	LoadCycles = 4.0
	// InsertCycles writes the TLB entry.
	InsertCycles = 4.0
	// SizeProbeCycles is the extra work of a two-size handler: fetch the
	// size bit, test, branch to the right PTE format — the paper's
	// "about 25% longer" (Section 2.3).
	SizeProbeCycles = 5.0
)

// SingleSizeHandlerCycles returns the modelled cost of a one-page-size
// software miss handler: trap + two-level walk + insert = 20 cycles,
// matching the paper's assumed penalty.
func SingleSizeHandlerCycles() float64 {
	return TrapCycles + 2*LoadCycles + InsertCycles
}

// TwoSizeHandlerCycles returns the modelled cost of a two-page-size
// handler: the single-size cost plus the size probe = 25 cycles (25%
// more), matching the paper's assumption.
func TwoSizeHandlerCycles() float64 {
	return SingleSizeHandlerCycles() + SizeProbeCycles
}

// PTE is a page-table entry.
type PTE struct {
	Frame addr.PN // physical frame number (at the page's own size)
	Valid bool
	Large bool // set on 32KB mappings
}

// Walk reports what a lookup cost.
type Walk struct {
	Found  bool
	Levels int     // dependent loads performed
	Cycles float64 // full handler cost for this walk
	Large  bool    // resolved to a large mapping
}

// chunkEntry is one mapped chunk, held by value in the Table's dense
// arena: either one large PTE or an inline block table of eight small
// PTEs. Keeping the block array inline (rather than behind a pointer)
// removes the per-chunk heap allocation and the GC write barrier the
// old map-of-pointers layout paid on every chunk creation.
type chunkEntry struct {
	large    bool
	largePTE PTE
	blocks   [addr.BlocksPerChunk]PTE
}

// Stats counts page-table activity.
type Stats struct {
	Lookups     uint64
	Misses      uint64 // lookups that found no valid mapping
	Promotions  uint64
	Demotions   uint64
	CopiedBytes uint64 // bytes copied by promotions/demotions
}

// Table is a two-page-size page table. Mapped chunks live by value in
// a dense arena indexed through a flat hash table (chunk number →
// arena slot); unmapped slots go on a free list and are reused, so a
// long churn of map/unmap traffic allocates nothing in steady state.
type Table struct {
	idx   *htab.U64    // chunk number -> arena index
	arena []chunkEntry // dense chunk storage
	free  []uint32     // recycled arena indices
	stats Stats
}

// New returns an empty table.
func New() *Table {
	return &Table{idx: htab.NewU64(1 << 8)}
}

// entry returns the arena slot for chunk c, or nil if unmapped.
//
//paperlint:hot
func (t *Table) entry(c addr.PN) *chunkEntry {
	i, ok := t.idx.Get(uint64(c))
	if !ok {
		return nil
	}
	return &t.arena[i]
}

// alloc binds a fresh (or recycled) arena slot to chunk c and returns
// it zeroed. The caller must know c is unmapped.
func (t *Table) alloc(c addr.PN) *chunkEntry {
	var i uint32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
		t.arena[i] = chunkEntry{}
	} else {
		i = uint32(len(t.arena))
		t.arena = append(t.arena, chunkEntry{})
	}
	t.idx.Put(uint64(c), uint64(i))
	return &t.arena[i]
}

// release unbinds chunk c and recycles its arena slot.
func (t *Table) release(c addr.PN) {
	i, ok := t.idx.Get(uint64(c))
	if !ok {
		return
	}
	t.idx.Delete(uint64(c))
	t.free = append(t.free, uint32(i))
}

// MapSmall installs a 4KB mapping for block b. It fails if the chunk is
// currently mapped as a large page (the OS must demote first).
func (t *Table) MapSmall(b addr.PN, frame addr.PN) error {
	c := addr.ChunkOfBlock(b)
	ce := t.entry(c)
	if ce == nil {
		ce = t.alloc(c)
	}
	if ce.large {
		return fmt.Errorf("pagetable: chunk %#x is mapped large", uint64(c))
	}
	ce.blocks[addr.BlockIndex(b)] = PTE{Frame: frame, Valid: true}
	return nil
}

// MapLarge installs a 32KB mapping for chunk c, replacing nothing: it
// fails if any small mapping exists (use Promote) or the chunk is
// already large.
func (t *Table) MapLarge(c addr.PN, frame addr.PN) error {
	ce := t.entry(c)
	if ce != nil {
		if ce.large {
			return fmt.Errorf("pagetable: chunk %#x already mapped large", uint64(c))
		}
		for _, pte := range ce.blocks {
			if pte.Valid {
				return fmt.Errorf("pagetable: chunk %#x has small mappings; promote instead", uint64(c))
			}
		}
	} else {
		ce = t.alloc(c)
	}
	*ce = chunkEntry{large: true, largePTE: PTE{Frame: frame, Valid: true, Large: true}}
	return nil
}

// Unmap removes the mapping covering va (a small PTE or the whole large
// page). It reports whether anything was unmapped.
func (t *Table) Unmap(va addr.VA) bool {
	c := addr.Chunk(va)
	ce := t.entry(c)
	if ce == nil {
		return false
	}
	if ce.large {
		t.release(c)
		return true
	}
	i := addr.BlockInChunk(va)
	if !ce.blocks[i].Valid {
		return false
	}
	ce.blocks[i] = PTE{}
	for _, pte := range ce.blocks {
		if pte.Valid {
			return true
		}
	}
	t.release(c)
	return true
}

// Lookup walks the table for va as a two-size-aware miss handler would,
// charging the full handler cost model. It runs on every simulated TLB
// miss, so it is annotated hot: one flat-table probe plus an arena
// index, no allocation.
//
//paperlint:hot
func (t *Table) Lookup(va addr.VA) (PTE, Walk) {
	t.stats.Lookups++
	w := Walk{Cycles: TrapCycles + SizeProbeCycles + InsertCycles}
	ce := t.entry(addr.Chunk(va))
	w.Levels = 1
	w.Cycles += LoadCycles
	if ce == nil {
		t.stats.Misses++
		return PTE{}, w
	}
	if ce.large {
		w.Found = true
		w.Large = true
		return ce.largePTE, w
	}
	w.Levels = 2
	w.Cycles += LoadCycles
	pte := ce.blocks[addr.BlockInChunk(va)]
	if !pte.Valid {
		t.stats.Misses++
		return PTE{}, w
	}
	w.Found = true
	return pte, w
}

// Promote collapses chunk c's small mappings into one large mapping at
// newFrame. It returns the small frames that were freed and how many of
// the eight blocks were resident (and therefore copied to the new large
// frame). It fails if the chunk has no small mappings.
func (t *Table) Promote(c addr.PN, newFrame addr.PN) (freed []addr.PN, copied int, err error) {
	ce := t.entry(c)
	if ce == nil || ce.large {
		return nil, 0, fmt.Errorf("pagetable: chunk %#x has no small mappings to promote", uint64(c))
	}
	for _, pte := range ce.blocks {
		if pte.Valid {
			freed = append(freed, pte.Frame)
			copied++
		}
	}
	if copied == 0 {
		return nil, 0, fmt.Errorf("pagetable: chunk %#x is empty", uint64(c))
	}
	*ce = chunkEntry{large: true, largePTE: PTE{Frame: newFrame, Valid: true, Large: true}}
	t.stats.Promotions++
	t.stats.CopiedBytes += uint64(copied) * addr.BlockSize
	return freed, copied, nil
}

// Demote splits chunk c's large mapping into eight small mappings at the
// given frames (all eight blocks become resident). It returns the freed
// large frame.
func (t *Table) Demote(c addr.PN, frames [addr.BlocksPerChunk]addr.PN) (addr.PN, error) {
	ce := t.entry(c)
	if ce == nil || !ce.large {
		return 0, fmt.Errorf("pagetable: chunk %#x is not mapped large", uint64(c))
	}
	old := ce.largePTE.Frame
	*ce = chunkEntry{}
	for i, f := range frames {
		ce.blocks[i] = PTE{Frame: f, Valid: true}
	}
	t.stats.Demotions++
	t.stats.CopiedBytes += addr.ChunkSize
	return old, nil
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats { return t.stats }

// MappedChunks returns how many chunks have any mapping.
func (t *Table) MappedChunks() int { return t.idx.Len() }
