// Package pagetable implements the software page-table organization a
// two-page-size operating system needs (paper Section 2.3), and the
// cycle-cost model that justifies the paper's miss-penalty estimates:
// about 20 cycles for a software-handled miss with one page size and
// about 25% more when the handler must also discover the page size.
//
// The structure follows the paper's chunk model: the address space is an
// array of 32KB chunks; each mapped chunk is either one large-page PTE
// or a block table of eight small-page PTEs. A miss handler probes the
// chunk entry (one load), tests the size bit (the two-size overhead),
// and either uses the large PTE or loads the small PTE from the block
// table. Promote and Demote implement the remapping that the page-size
// assignment policy triggers, tracking the copy traffic they cause
// (Section 3.4's promotion costs).
package pagetable

import (
	"twopage/internal/addr"
)

// Cycle cost model for software miss handling, loosely itemized from
// the SPARC-style handlers the paper estimated from (Section 2.3):
// trap entry/exit, per-level table loads, and TLB entry insertion.
const (
	// TrapCycles covers exception entry, register save/restore, return.
	TrapCycles = 8.0
	// LoadCycles is the cost of one dependent table load.
	LoadCycles = 4.0
	// InsertCycles writes the TLB entry.
	InsertCycles = 4.0
	// SizeProbeCycles is the extra work of a two-size handler: fetch the
	// size bit, test, branch to the right PTE format — the paper's
	// "about 25% longer" (Section 2.3).
	SizeProbeCycles = 5.0
)

// SingleSizeHandlerCycles returns the modelled cost of a one-page-size
// software miss handler: trap + two-level walk + insert = 20 cycles,
// matching the paper's assumed penalty.
func SingleSizeHandlerCycles() float64 {
	return TrapCycles + 2*LoadCycles + InsertCycles
}

// TwoSizeHandlerCycles returns the modelled cost of a two-page-size
// handler: the single-size cost plus the size probe = 25 cycles (25%
// more), matching the paper's assumption.
func TwoSizeHandlerCycles() float64 {
	return SingleSizeHandlerCycles() + SizeProbeCycles
}

// PTE is a page-table entry.
type PTE struct {
	Frame addr.PN // physical frame number (at the page's own size)
	Valid bool
	Large bool // set on 32KB mappings
}

// Walk reports what a lookup cost.
type Walk struct {
	Found  bool
	Levels int     // dependent loads performed
	Cycles float64 // full handler cost for this walk
	Large  bool    // resolved to a non-base-class mapping
	Class  int     // size class the walk resolved to (0 = base page)
}

// Stats counts page-table activity.
type Stats struct {
	Lookups     uint64
	Misses      uint64 // lookups that found no valid mapping
	Promotions  uint64
	Demotions   uint64
	CopiedBytes uint64 // bytes copied by promotions/demotions
}

// Add folds another table's counters into s (shard merge). All fields
// are flow counters, so the sum is exact.
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Misses += o.Misses
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.CopiedBytes += o.CopiedBytes
}

// Sub removes a previously recorded baseline from s, leaving the
// activity after the snapshot (warm-up roll-back).
func (s *Stats) Sub(o Stats) {
	s.Lookups -= o.Lookups
	s.Misses -= o.Misses
	s.Promotions -= o.Promotions
	s.Demotions -= o.Demotions
	s.CopiedBytes -= o.CopiedBytes
}

// Table is the two-page-size page table: the paper's 4KB/32KB chunk
// model, kept as a thin wrapper over the N-size NTable so the original
// API (MapSmall/MapLarge, block-array Demote) survives unchanged. The
// mapping state lives in NTable's per-class arenas; steady-state
// map/unmap churn allocates nothing, as before.
type Table struct {
	nt *NTable
}

// New returns an empty two-size table.
func New() *Table {
	return &Table{nt: NewNTable(addr.MustShiftClasses(addr.BlockShift, addr.ChunkShift))}
}

// NTable exposes the underlying N-size table.
func (t *Table) NTable() *NTable { return t.nt }

// MapSmall installs a 4KB mapping for block b. It fails if the chunk is
// currently mapped as a large page (the OS must demote first).
func (t *Table) MapSmall(b addr.PN, frame addr.PN) error {
	return t.nt.Map(0, b, frame)
}

// MapLarge installs a 32KB mapping for chunk c, replacing nothing: it
// fails if any small mapping exists (use Promote) or the chunk is
// already large.
func (t *Table) MapLarge(c addr.PN, frame addr.PN) error {
	return t.nt.Map(1, c, frame)
}

// Unmap removes the mapping covering va (a small PTE or the whole large
// page). It reports whether anything was unmapped.
func (t *Table) Unmap(va addr.VA) bool { return t.nt.Unmap(va) }

// Lookup walks the table for va as a two-size-aware miss handler would,
// charging the full handler cost model. It runs on every simulated TLB
// miss, so it is annotated hot: one flat-table probe plus an arena
// index, no allocation.
//
//paperlint:hot
func (t *Table) Lookup(va addr.VA) (PTE, Walk) { return t.nt.Lookup(va) }

// Promote collapses chunk c's small mappings into one large mapping at
// newFrame. It returns the small frames that were freed and how many of
// the eight blocks were resident (and therefore copied to the new large
// frame). It fails if the chunk has no small mappings.
func (t *Table) Promote(c addr.PN, newFrame addr.PN) (freed []addr.PN, copied int, err error) {
	fr, _, err := t.nt.Promote(1, c, newFrame)
	if err != nil {
		return nil, 0, err
	}
	freed = make([]addr.PN, len(fr))
	for i, f := range fr {
		freed[i] = f.Frame
	}
	return freed, len(fr), nil
}

// Demote splits chunk c's large mapping into eight small mappings at the
// given frames (all eight blocks become resident). It returns the freed
// large frame.
func (t *Table) Demote(c addr.PN, frames [addr.BlocksPerChunk]addr.PN) (addr.PN, error) {
	return t.nt.Demote(1, c, frames[:])
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats { return t.nt.Stats() }

// MappedChunks returns how many chunks have any mapping.
func (t *Table) MappedChunks() int { return t.nt.MappedRegions() }
