package pagetable

import (
	"testing"

	"twopage/internal/addr"
)

func TestPenaltyModelMatchesPaper(t *testing.T) {
	if got := SingleSizeHandlerCycles(); got != 20 {
		t.Fatalf("single-size handler = %v cycles, want 20", got)
	}
	if got := TwoSizeHandlerCycles(); got != 25 {
		t.Fatalf("two-size handler = %v cycles, want 25", got)
	}
	// "about 25% longer" (Section 2.3).
	if TwoSizeHandlerCycles()/SingleSizeHandlerCycles() != 1.25 {
		t.Fatal("two-size handler should cost 25% more")
	}
}

func TestMapAndLookupSmall(t *testing.T) {
	pt := New()
	if err := pt.MapSmall(5, 100); err != nil {
		t.Fatal(err)
	}
	pte, w := pt.Lookup(addr.VA(5*addr.BlockSize + 123))
	if !w.Found || w.Large || pte.Frame != 100 || !pte.Valid || pte.Large {
		t.Fatalf("pte=%+v walk=%+v", pte, w)
	}
	if w.Levels != 2 {
		t.Fatalf("small lookup levels = %d, want 2", w.Levels)
	}
	// Unmapped block in same chunk.
	_, w2 := pt.Lookup(addr.VA(6 * addr.BlockSize))
	if w2.Found {
		t.Fatal("block 6 should be unmapped")
	}
	// Completely unmapped chunk: one level only.
	_, w3 := pt.Lookup(addr.VA(1 << 30))
	if w3.Found || w3.Levels != 1 {
		t.Fatalf("walk=%+v", w3)
	}
	st := pt.Stats()
	if st.Lookups != 3 || st.Misses != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMapAndLookupLarge(t *testing.T) {
	pt := New()
	if err := pt.MapLarge(2, 40); err != nil {
		t.Fatal(err)
	}
	pte, w := pt.Lookup(addr.VA(2*addr.ChunkSize + 0x5123))
	if !w.Found || !w.Large || !pte.Large || pte.Frame != 40 {
		t.Fatalf("pte=%+v walk=%+v", pte, w)
	}
	if w.Levels != 1 {
		t.Fatalf("large lookup levels = %d, want 1", w.Levels)
	}
	// Large walks are cheaper than small walks (one fewer load).
	_, ws := func() (PTE, Walk) {
		pt2 := New()
		pt2.MapSmall(100, 1)
		return pt2.Lookup(addr.VA(100 * addr.BlockSize))
	}()
	if w.Cycles >= ws.Cycles {
		t.Fatalf("large walk (%v) should cost less than small walk (%v)", w.Cycles, ws.Cycles)
	}
}

func TestMappingConflicts(t *testing.T) {
	pt := New()
	if err := pt.MapLarge(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapSmall(0, 9); err == nil {
		t.Fatal("MapSmall into a large chunk should fail")
	}
	if err := pt.MapLarge(0, 8); err == nil {
		t.Fatal("double MapLarge should fail")
	}
	pt2 := New()
	pt2.MapSmall(0, 1)
	if err := pt2.MapLarge(0, 2); err == nil {
		t.Fatal("MapLarge over small mappings should fail")
	}
}

func TestUnmap(t *testing.T) {
	pt := New()
	pt.MapSmall(0, 1)
	pt.MapSmall(1, 2)
	if pt.MappedChunks() != 1 {
		t.Fatalf("chunks = %d", pt.MappedChunks())
	}
	if !pt.Unmap(addr.VA(0)) {
		t.Fatal("unmap block 0 should succeed")
	}
	if pt.Unmap(addr.VA(0)) {
		t.Fatal("double unmap should report false")
	}
	if !pt.Unmap(addr.VA(addr.BlockSize)) {
		t.Fatal("unmap block 1 should succeed")
	}
	// Chunk entry reclaimed once empty.
	if pt.MappedChunks() != 0 {
		t.Fatalf("chunks = %d after unmapping all", pt.MappedChunks())
	}
	pt.MapLarge(3, 9)
	if !pt.Unmap(addr.VA(3 * addr.ChunkSize)) {
		t.Fatal("unmap large should succeed")
	}
	if pt.MappedChunks() != 0 {
		t.Fatal("large unmap should reclaim the chunk")
	}
	if pt.Unmap(addr.VA(1 << 40)) {
		t.Fatal("unmap of unmapped chunk should be false")
	}
}

func TestPromote(t *testing.T) {
	pt := New()
	pt.MapSmall(0, 10)
	pt.MapSmall(2, 12)
	pt.MapSmall(7, 17)
	freed, copied, err := pt.Promote(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 3 || len(freed) != 3 {
		t.Fatalf("copied=%d freed=%v", copied, freed)
	}
	pte, w := pt.Lookup(addr.VA(3 * addr.BlockSize)) // previously unmapped block
	if !w.Found || !pte.Large || pte.Frame != 99 {
		t.Fatalf("post-promotion lookup: pte=%+v", pte)
	}
	st := pt.Stats()
	if st.Promotions != 1 || st.CopiedBytes != 3*addr.BlockSize {
		t.Fatalf("stats: %+v", st)
	}
	// Can't promote again or promote empty/large chunks.
	if _, _, err := pt.Promote(0, 100); err == nil {
		t.Fatal("promoting a large chunk should fail")
	}
	if _, _, err := pt.Promote(50, 100); err == nil {
		t.Fatal("promoting an unmapped chunk should fail")
	}
}

func TestDemote(t *testing.T) {
	pt := New()
	pt.MapLarge(1, 55)
	var frames [addr.BlocksPerChunk]addr.PN
	for i := range frames {
		frames[i] = addr.PN(200 + i)
	}
	old, err := pt.Demote(1, frames)
	if err != nil {
		t.Fatal(err)
	}
	if old != 55 {
		t.Fatalf("freed large frame = %d", old)
	}
	for i := 0; i < addr.BlocksPerChunk; i++ {
		pte, w := pt.Lookup(addr.VA(1*addr.ChunkSize + i*addr.BlockSize))
		if !w.Found || pte.Large || pte.Frame != addr.PN(200+i) {
			t.Fatalf("block %d: pte=%+v", i, pte)
		}
	}
	if _, err := pt.Demote(1, frames); err == nil {
		t.Fatal("demoting a small chunk should fail")
	}
	if pt.Stats().Demotions != 1 {
		t.Fatalf("stats: %+v", pt.Stats())
	}
}
