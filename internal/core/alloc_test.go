package core

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/kernelref"
	"twopage/internal/policy"
	"twopage/internal/tlb"
)

// TestPTStepAllocs pins the page-table-shadow step — the per-reference
// hot path of a WithPageTable run — at zero steady-state allocations:
// TLB probes, the walk on a miss, and the demand-map bookkeeping must
// all be allocation-free once the tables have grown to the footprint.
// The policy is promote-only so the steady-state stream carries no
// transition events (those go through applyEvent, which may legally
// allocate when the NTable restructures).
func TestPTStepAllocs(t *testing.T) {
	pol := policy.NewTwoSize(policy.TwoSizeConfig{
		T: 1 << 12, Threshold: 4, Demote: false, LargeShift: addr.Shift32K,
	})
	sim := NewSimulator(pol,
		[]tlb.TLB{tlb.MustNew(tlb.Config{Entries: 32, Ways: 2, Index: tlb.IndexExact})},
		WithPageTable())
	stream := kernelref.VAStream(1 << 15)
	step := func(va addr.VA) {
		res := pol.Assign(va)
		if res.Event != policy.EventNone {
			sim.applyEvent(res)
		}
		sim.ptStep(va, res)
	}
	for _, va := range stream {
		step(va)
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		step(stream[i&(1<<15-1)])
		i++
	})
	if avg != 0 {
		t.Errorf("Assign+ptStep allocates %.2f times per reference, want 0", avg)
	}
}

// TestMergeResultsGrouping pins the merge itself: merging merged parts
// is associative-enough for the battery — two halves merged then
// combined equal one flat merge. Guards the carry/gauge handling
// against ordering mistakes that the end-to-end tests could mask.
func TestMergeResultsGrouping(t *testing.T) {
	mk := func(refs, miss uint64) *Result {
		r := &Result{Refs: refs, Instrs: refs / 2}
		st := tlb.Stats{Accesses: refs, Classes: 2}
		st.MissesByClass[0] = miss
		st.HitsByClass[0] = refs - miss
		r.TLBs = []TLBResult{{Name: "t", Stats: st, MissPenalty: 25}}
		return r
	}
	parts := []*Result{mk(100, 10), mk(200, 30), mk(300, 60), mk(400, 100)}
	flat := MergeResults(parts)
	left := MergeResults(parts[:2])
	right := MergeResults(parts[2:])
	grouped := MergeResults([]*Result{left, right})
	if flat.TLBs[0].Stats != grouped.TLBs[0].Stats || flat.Refs != grouped.Refs ||
		flat.TLBs[0].MPI != grouped.TLBs[0].MPI {
		t.Errorf("grouped merge differs from flat merge:\n flat %+v\n grouped %+v", flat, grouped)
	}
}
