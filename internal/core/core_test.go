package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// makeTrace builds a tiny hand-rolled stream: instruction fetches to one
// page plus data refs cycling over nPages data pages.
func makeTrace(n, nPages int) []trace.Ref {
	refs := make([]trace.Ref, 0, 2*n)
	for i := 0; i < n; i++ {
		refs = append(refs, trace.Ref{Addr: 0x1000, Kind: trace.Instr})
		va := addr.VA(0x100000 + (i%nPages)*addr.BlockSize)
		refs = append(refs, trace.Ref{Addr: va, Kind: trace.Load})
	}
	return refs
}

func TestSingleSizeSimulation(t *testing.T) {
	refs := makeTrace(1000, 4)
	sim := NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{tlb.NewFullyAssoc(8)})
	res, err := sim.Run(context.Background(), trace.NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 2000 || res.Instrs != 1000 {
		t.Fatalf("refs=%d instrs=%d", res.Refs, res.Instrs)
	}
	if res.RPI != 2.0 {
		t.Fatalf("RPI = %v", res.RPI)
	}
	if res.Policy != "4KB" {
		t.Fatalf("policy = %q", res.Policy)
	}
	tr := res.TLBs[0]
	// 5 compulsory misses (1 code + 4 data), everything else hits.
	if tr.Stats.Misses() != 5 {
		t.Fatalf("misses = %d", tr.Stats.Misses())
	}
	if tr.MissPenalty != metrics.MissPenaltySingle {
		t.Fatalf("penalty = %v", tr.MissPenalty)
	}
	wantMPI := 5.0 / 1000.0
	if math.Abs(tr.MPI-wantMPI) > 1e-12 {
		t.Fatalf("MPI = %v", tr.MPI)
	}
	if math.Abs(tr.CPITLB-wantMPI*20) > 1e-12 {
		t.Fatalf("CPITLB = %v", tr.CPITLB)
	}
	if res.WSS != nil || res.PolicyStats != nil {
		t.Fatal("single-size run should not carry two-size extras")
	}
}

func TestTwoSizeDefaultsToHigherPenalty(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(100))
	sim := NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(8)})
	res, err := sim.Run(context.Background(), trace.NewSliceReader(makeTrace(100, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TLBs[0].MissPenalty != metrics.MissPenaltyTwo {
		t.Fatalf("penalty = %v", res.TLBs[0].MissPenalty)
	}
	if res.PolicyStats == nil {
		t.Fatal("two-size run should report policy stats")
	}
}

func TestWithMissPenaltyOverride(t *testing.T) {
	sim := NewSimulator(policy.NewSingle(addr.Size4K),
		[]tlb.TLB{tlb.NewFullyAssoc(4)}, WithMissPenalty(40))
	res, err := sim.Run(context.Background(), trace.NewSliceReader(makeTrace(50, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TLBs[0].MissPenalty != 40 {
		t.Fatalf("penalty = %v", res.TLBs[0].MissPenalty)
	}
}

func TestWithWSSPanicsForSinglePolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimulator(policy.NewSingle(addr.Size4K), nil, WithWSS())
}

// Promotion must invalidate the chunk's small-page TLB entries: after a
// chunk is promoted, its old small entries may not produce hits.
func TestPromotionInvalidatesSmallEntries(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(1000))
	tl := tlb.NewFullyAssoc(16)
	sim := NewSimulator(pol, []tlb.TLB{tl})

	// Touch 4 blocks of chunk 0 → 3 small misses, promotion on the 4th,
	// which then misses as a large page.
	var refs []trace.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, trace.Ref{Addr: addr.VA(i * addr.BlockSize), Kind: trace.Load})
	}
	// Re-touch block 0: now on the large page, which is resident → hit.
	refs = append(refs, trace.Ref{Addr: 0, Kind: trace.Load})
	res, err := sim.Run(context.Background(), trace.NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	st := res.TLBs[0].Stats
	if st.SmallMisses() != 3 || st.LargeMisses() != 1 || st.LargeHits() != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Invalidations != 3 {
		// The three resident small entries are shot down at promotion.
		t.Fatalf("invalidations = %d, want 3", st.Invalidations)
	}
	// No stale small entries remain.
	for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
		if tl.Contains(policy.Page{Number: i, Shift: addr.BlockShift}) {
			t.Fatalf("stale small entry for block %d", i)
		}
	}
	if !tl.Contains(policy.Page{Number: 0, Shift: addr.ChunkShift}) {
		t.Fatal("large entry should be resident")
	}
}

func TestDemotionInvalidatesLargeEntry(t *testing.T) {
	cfg := policy.DefaultTwoSizeConfig(8)
	pol := policy.NewTwoSize(cfg)
	tl := tlb.NewFullyAssoc(16)
	sim := NewSimulator(pol, []tlb.TLB{tl})
	var refs []trace.Ref
	for i := 0; i < 4; i++ { // promote chunk 0
		refs = append(refs, trace.Ref{Addr: addr.VA(i * addr.BlockSize), Kind: trace.Load})
	}
	for i := 0; i < 8; i++ { // age chunk 0 out of the window
		refs = append(refs, trace.Ref{Addr: addr.VA(100<<addr.ChunkShift) + addr.VA(i*addr.BlockSize), Kind: trace.Load})
	}
	refs = append(refs, trace.Ref{Addr: 0, Kind: trace.Load}) // demotes
	_, err := sim.Run(context.Background(), trace.NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Contains(policy.Page{Number: 0, Shift: addr.ChunkShift}) {
		t.Fatal("large entry should have been invalidated on demotion")
	}
	if !tl.Contains(policy.Page{Number: 0, Shift: addr.BlockShift}) {
		t.Fatal("the demoting access should have installed a small entry")
	}
}

func TestMultipleTLBsShareOnePass(t *testing.T) {
	refs := makeTrace(2000, 32)
	a := tlb.NewFullyAssoc(8)
	b := tlb.MustNew(tlb.Config{Entries: 32, Ways: 2, Index: tlb.IndexSmall})
	sim := NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{a, b})
	res, err := sim.Run(context.Background(), trace.NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TLBs) != 2 {
		t.Fatalf("got %d TLB results", len(res.TLBs))
	}
	if res.TLBs[0].Stats.Accesses != res.TLBs[1].Stats.Accesses {
		t.Fatal("both TLBs must see every reference")
	}
	// 32-page cyclic data + 8-entry FA: data thrashes the small TLB but
	// fits the larger one.
	if res.TLBs[0].MPI <= res.TLBs[1].MPI {
		t.Fatalf("8-entry MPI %v should exceed 32-entry MPI %v",
			res.TLBs[0].MPI, res.TLBs[1].MPI)
	}
}

func TestWithWSSProducesResult(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(500))
	sim := NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(8)}, WithWSS())
	res, err := sim.Run(context.Background(), workload.MustNew("li", 50_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.WSS == nil || res.WSS.AvgBytes <= 0 {
		t.Fatalf("WSS = %+v", res.WSS)
	}
	if res.WSS.Scheme != "4KB/32KB" {
		t.Fatalf("scheme = %q", res.WSS.Scheme)
	}
}

func TestMeasureStaticWSS(t *testing.T) {
	// A stream cycling over 4 pages with T covering everything: average
	// WSS converges to 4 pages (x page size).
	refs := makeTrace(4000, 4)
	got, err := MeasureStaticWSS(context.Background(), trace.NewSliceReader(refs), 1<<20, addr.Size4K, addr.Size32K)
	if err != nil {
		t.Fatal(err)
	}
	// 4 data pages + 1 code page.
	want4K := 5.0 * float64(addr.BlockSize)
	if math.Abs(got[0].AvgBytes-want4K) > 0.05*want4K {
		t.Fatalf("4KB WSS = %v, want ≈%v", got[0].AvgBytes, want4K)
	}
	// At 32KB: data pages 0x100000.. span one 32KB page... data pages
	// 0x100000-0x104000 lie in chunk 32; code in chunk 0 → 2 pages.
	want32K := 2.0 * float64(addr.ChunkSize)
	if math.Abs(got[1].AvgBytes-want32K) > 0.05*want32K {
		t.Fatalf("32KB WSS = %v, want ≈%v", got[1].AvgBytes, want32K)
	}
	if _, err := MeasureStaticWSS(context.Background(), trace.NewSliceReader(refs), 10, addr.PageSize(3000)); err == nil {
		t.Fatal("invalid page size should error")
	}
}

func TestMeasureTwoSizeWSS(t *testing.T) {
	res, stats, err := MeasureTwoSizeWSS(context.Background(), workload.MustNew("matrix300", 100_000),
		policy.DefaultTwoSizeConfig(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgBytes <= 0 {
		t.Fatalf("avg = %v", res.AvgBytes)
	}
	if stats.Promotions == 0 {
		t.Fatal("matrix300 must promote")
	}
}

// End-to-end sanity on a real generator: the headline result. For
// matrix300, a 16-entry FA TLB with 32KB pages must dramatically beat
// 4KB pages, and the two-page scheme must land near the 32KB result.
func TestMatrix300Headline(t *testing.T) {
	const n = 400_000
	run := func(pol policy.Assigner) float64 {
		sim := NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(16)})
		res, err := sim.Run(context.Background(), workload.MustNew("matrix300", n))
		if err != nil {
			t.Fatal(err)
		}
		return res.TLBs[0].CPITLB
	}
	cpi4 := run(policy.NewSingle(addr.Size4K))
	cpi32 := run(policy.NewSingle(addr.Size32K))
	cpiTwo := run(policy.NewTwoSize(policy.DefaultTwoSizeConfig(100_000)))
	if cpi4 < 4*cpi32 {
		t.Fatalf("32KB should win big: cpi4=%v cpi32=%v", cpi4, cpi32)
	}
	if cpiTwo > cpi4/2 {
		t.Fatalf("two-page should approach 32KB: cpi4=%v cpiTwo=%v cpi32=%v",
			cpi4, cpiTwo, cpi32)
	}
}

// failingReader errors mid-stream; the simulator must propagate it.
type failingReader struct{ n int }

func (f *failingReader) Read(batch []trace.Ref) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("tape ran out")
	}
	f.n--
	batch[0] = trace.Ref{Addr: 0x1000, Kind: trace.Load}
	return 1, nil
}

func TestRunPropagatesReaderErrors(t *testing.T) {
	sim := NewSimulator(policy.NewSingle(addr.Size4K), []tlb.TLB{tlb.NewFullyAssoc(4)})
	if _, err := sim.Run(context.Background(), &failingReader{n: 5}); err == nil {
		t.Fatal("reader error should propagate")
	}
	if _, err := MeasureStaticWSS(context.Background(), &failingReader{n: 2}, 10, addr.Size4K); err == nil {
		t.Fatal("WSS pass should propagate reader errors")
	}
	if _, _, err := MeasureTwoSizeWSS(context.Background(), &failingReader{n: 2}, policy.DefaultTwoSizeConfig(10)); err == nil {
		t.Fatal("two-size WSS pass should propagate reader errors")
	}
}
