// Package core wires the pieces together: it drives a reference stream
// through a page-size assignment policy and one or more TLB models,
// optionally tracking the working-set size of the dynamic two-page
// scheme, and reports the paper's metrics (CPI_TLB, MPI, miss ratio).
//
// This is the package the examples and the experiment harness build on.
// Typical use:
//
//	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(1_000_000))
//	sim := core.NewSimulator(pol, tlb.NewFullyAssoc(16))
//	res, err := sim.Run(ctx, workload.MustNew("matrix300", 0))
//	fmt.Println(res.TLBs[0].CPITLB)
//
// Simulating several TLB configurations against the same policy shares
// one trace-generation and policy pass, mirroring the paper's use of
// all-associativity simulation to evaluate many configurations at once
// (Section 3.3); for sweeps over associativity itself see
// internal/allassoc.
package core

import (
	"context"
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/metrics"
	"twopage/internal/obs"
	"twopage/internal/pagetable"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/walk"
	"twopage/internal/wss"
)

// TLBResult holds one simulated TLB's counters and derived metrics.
type TLBResult struct {
	Name        string    // TLB organization, e.g. "16-entry 2-way (exact index)"
	Stats       tlb.Stats // raw counters
	MissPenalty float64   // cycles per miss used for CPI
	MPI         float64   // misses per instruction
	CPITLB      float64   // MPI × MissPenalty (the paper's headline metric)
	MissRatio   float64   // misses per reference
}

// Result is the outcome of one simulation pass.
type Result struct {
	Policy string // policy name, e.g. "4KB" or "4KB/32KB"
	Refs   uint64 // references simulated
	Instrs uint64 // instruction fetches (for per-instruction metrics)
	RPI    float64
	TLBs   []TLBResult

	// WSS is the average working-set size of the two-page scheme, set
	// only when the simulator was built with WithWSS.
	WSS *wss.Result
	// PolicyStats holds promotion/demotion counters for TwoSize policies.
	PolicyStats *policy.TwoSizeStats
	// LadderStats holds per-class counters for N-level ladder and NAPOT
	// policies (nil for two-size and single-size runs).
	LadderStats *policy.LadderStats

	// PageTable holds the page-table shadow's counters, set only when
	// the simulator was built with WithPageTable.
	PageTable *pagetable.Stats
	// PTWalkCycles is the total modelled cost of the shadow's software
	// walks (zero without WithPageTable). Under WithWalkModel it is the
	// walker's integer cycle total, exactly.
	PTWalkCycles float64

	// Walk holds the modeled page-walk counters, set only when the
	// simulator was built with WithWalkModel. When present, the first
	// TLB's MissPenalty and CPITLB are emergent — recomputed from these
	// counters instead of the flat penalty constant.
	Walk *walk.Stats

	// Counters is the pass's run-report block (internal/obs): the TLB
	// split, policy transitions, and any trace-decode work, assembled
	// once after the drain loop completes.
	Counters obs.Counters
}

// Simulator drives references through a policy and a set of TLBs.
type Simulator struct {
	pol         policy.Assigner
	tlbs        []tlb.TLB
	missPenalty float64
	wssCalc     *wss.TwoSize
	classes     addr.SizeClasses // hierarchy of a MultiSize policy (zero for single-size)
	pt          *ptShadow        // page-table shadow (WithPageTable)
	walker      *walk.Walker     // modeled radix walk (WithWalkModel)

	// Warm-up baselines (see Warm): counter snapshots taken at the end
	// of the warm-up preroll, subtracted out of Run's results so only
	// the section's own activity is reported.
	warmed     bool
	warmTLB    []tlb.Stats
	warmLadder *policy.LadderStats
	warmTwo    *policy.TwoSizeStats
	warmPT     pagetable.Stats
	warmPTCyc  float64
	warmWalk   walk.Stats
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithMissPenalty overrides the miss penalty (cycles). By default a
// multi-size policy with n classes uses metrics.MissPenaltyN(n) — 25
// cycles for two sizes — and everything else metrics.MissPenaltySingle,
// per Sections 2.3/3.2.
func WithMissPenalty(cycles float64) Option {
	return func(s *Simulator) { s.missPenalty = cycles }
}

// WithWSS attaches a two-page working-set calculator. Only valid when
// the policy is a *policy.TwoSize; NewSimulator panics otherwise.
// For static page sizes use MeasureStaticWSS, which needs no TLB pass.
func WithWSS() Option {
	return func(s *Simulator) {
		pol, ok := s.pol.(*policy.TwoSize)
		if !ok {
			panic("core: WithWSS requires a TwoSize policy")
		}
		s.wssCalc = wss.NewTwoSize(pol)
	}
}

// WithPageTable attaches a software page-table shadow: every miss of
// the first TLB walks an NTable kept consistent with the policy's
// promotion/demotion decisions (demand-mapping unmapped pages from a
// deterministic bump frame allocator), charging the pagetable package's
// handler cost model per walk. Requires a MultiSize policy and at least
// one TLB; NewSimulator panics otherwise. Results gain PageTable stats
// and PTWalkCycles; the shadow's tables are plain shard-local state, so
// sharded runs merge it like every other counter block.
func WithPageTable() Option {
	return func(s *Simulator) {
		mp, ok := s.pol.(policy.MultiSize)
		if !ok {
			panic("core: WithPageTable requires a MultiSize policy")
		}
		if len(s.tlbs) == 0 {
			panic("core: WithPageTable requires at least one TLB")
		}
		s.pt = newPTShadow(mp.SizeClasses())
	}
}

// resolveWalkConfig fills the policy-derived defaults of a walk config:
// a zero Classes takes the policy's hierarchy, a zero BaseCycles the
// multi-size handler base. It rejects non-MultiSize policies (the walk
// needs the page-table shadow, which needs a size hierarchy) and a
// Classes that disagrees with the policy's.
func resolveWalkConfig(pol policy.Assigner, cfg walk.Config) (walk.Config, error) {
	mp, ok := pol.(policy.MultiSize)
	if !ok {
		return walk.Config{}, fmt.Errorf("core: the walk model requires a MultiSize policy, got %q", pol.Name())
	}
	if cfg.Classes.N() == 0 {
		cfg.Classes = mp.SizeClasses()
	} else if cfg.Classes != mp.SizeClasses() {
		return walk.Config{}, fmt.Errorf("core: walk classes %v disagree with policy classes %v", cfg.Classes, mp.SizeClasses())
	}
	if cfg.BaseCycles == 0 {
		cfg.BaseCycles = walk.HandlerBaseCycles(true)
	}
	return cfg, nil
}

// CheckWalkModel reports whether WithWalkModel(cfg) would succeed for
// the policy, as an error instead of a panic — the engine validates
// units with it before building simulators on worker goroutines.
func CheckWalkModel(pol policy.Assigner, cfg walk.Config) error {
	cfg, err := resolveWalkConfig(pol, cfg)
	if err != nil {
		return err
	}
	_, err = walk.New(cfg)
	return err
}

// WithWalkModel replaces the page-table shadow's flat per-walk charge
// with the modeled multi-level radix walk of internal/walk: every
// first-TLB miss descends the shadow's table, probing the MMU
// page-walk caches and charging each performed level load through the
// memory-side cache model. CPI_TLB becomes emergent — total walk
// cycles over instructions — instead of MPI × penalty, and the first
// TLB's reported MissPenalty is the measured cycles-per-walk.
//
// The option implies WithPageTable (attaching the shadow if absent)
// and therefore shares its requirements: a MultiSize policy and at
// least one TLB; NewSimulator panics otherwise (use CheckWalkModel to
// validate first). A zero cfg.Classes defaults to the policy's
// hierarchy; a zero cfg.BaseCycles to the multi-size handler base.
// Promotions and demotions flush the PWCs (the shootdown a remap
// forces); walker state is shard-local and its counters are integers,
// so sharded runs merge exactly.
func WithWalkModel(cfg walk.Config) Option {
	return func(s *Simulator) {
		resolved, err := resolveWalkConfig(s.pol, cfg)
		if err != nil {
			panic(err)
		}
		if len(s.tlbs) == 0 {
			panic("core: WithWalkModel requires at least one TLB")
		}
		if s.pt == nil {
			s.pt = newPTShadow(resolved.Classes)
		}
		s.walker = walk.MustNew(resolved)
	}
}

// NewSimulator builds a simulator for the policy and TLBs. The TLBs are
// all driven by the same policy decisions in a single pass.
func NewSimulator(pol policy.Assigner, tlbs []tlb.TLB, opts ...Option) *Simulator {
	s := &Simulator{pol: pol, tlbs: tlbs}
	if mp, ok := pol.(policy.MultiSize); ok {
		s.classes = mp.SizeClasses()
		s.missPenalty = metrics.MissPenaltyN(s.classes.N())
	} else {
		s.missPenalty = metrics.MissPenaltySingle
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Warm replays a reference stream to build simulator state — TLB
// contents, policy window and mapped regions, page-table shadow, the
// two-page WSS calculator's incremental split — without contributing to
// the metrics Run will report. At the end of the stream every counter
// is snapshotted; Run subtracts the snapshots, so the reported counts
// cover exactly the post-warm-up references (integer subtraction,
// exact). Shard workers call Warm with a Preroll reader before running
// their section; the warm-up stream must immediately precede Run's.
//
// Warm may be called once, before Run. The working-set averages are
// untouched by design: WSS samples start at the first Run reference.
func (s *Simulator) Warm(ctx context.Context, r trace.Reader) error {
	if s.warmed {
		return fmt.Errorf("core: Warm called twice")
	}
	//paperlint:hot
	_, err := trace.DrainContext(ctx, r, func(batch []trace.Ref) {
		for _, ref := range batch {
			res := s.pol.Assign(ref.Addr)
			if res.Event != policy.EventNone {
				s.applyEvent(res) //paperlint:ignore hotalloc event path: page-table node alloc/free and error formatting run per promotion/demotion, not per reference
			}
			if s.pt != nil {
				s.ptStep(ref.Addr, res)
			} else {
				for _, t := range s.tlbs {
					t.Access(ref.Addr, res.Page)
				}
			}
			if s.wssCalc != nil {
				s.wssCalc.ObserveWarm(res)
			}
		}
	})
	if err != nil {
		return fmt.Errorf("core: warm-up failed: %w", err)
	}
	s.warmed = true
	s.warmTLB = make([]tlb.Stats, len(s.tlbs))
	for i, t := range s.tlbs {
		s.warmTLB[i] = t.Stats()
	}
	switch pol := s.pol.(type) {
	case *policy.TwoSize:
		st := pol.Stats()
		s.warmTwo = &st
	case *policy.Ladder:
		st := pol.Stats()
		s.warmLadder = &st
	case *policy.Napot:
		st := pol.Stats()
		s.warmLadder = &st
	}
	if s.pt != nil {
		s.warmPT = s.pt.nt.Stats()
		s.warmPTCyc = s.pt.cycles
	}
	if s.walker != nil {
		s.warmWalk = s.walker.Stats()
	}
	return nil
}

// Run consumes the reference stream to completion and returns metrics.
// A Simulator is single-use: Run may only be called once.
//
// Cancellation is checked between batches: when ctx is canceled the
// simulation stops mid-trace and Run returns the context's error.
func (s *Simulator) Run(ctx context.Context, r trace.Reader) (*Result, error) {
	var refs, instrs uint64
	//paperlint:hot
	_, err := trace.DrainContext(ctx, r, func(batch []trace.Ref) {
		for _, ref := range batch {
			refs++
			if ref.Kind == trace.Instr {
				instrs++
			}
			res := s.pol.Assign(ref.Addr)
			if res.Event != policy.EventNone {
				s.applyEvent(res) //paperlint:ignore hotalloc event path: page-table node alloc/free and error formatting run per promotion/demotion, not per reference
			}
			if s.pt != nil {
				s.ptStep(ref.Addr, res)
			} else {
				for _, t := range s.tlbs {
					t.Access(ref.Addr, res.Page)
				}
			}
			if s.wssCalc != nil {
				s.wssCalc.Observe(res)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("core: simulation failed: %w", err)
	}
	out := &Result{
		Policy: s.pol.Name(),
		Refs:   refs,
		Instrs: instrs,
	}
	if instrs > 0 {
		out.RPI = float64(refs) / float64(instrs)
	}
	for i, t := range s.tlbs {
		st := t.Stats()
		if s.warmed {
			st.Sub(s.warmTLB[i])
		}
		mpi := metrics.MPI(st.Misses(), instrs)
		out.TLBs = append(out.TLBs, TLBResult{
			Name:        t.Name(),
			Stats:       st,
			MissPenalty: s.missPenalty,
			MPI:         mpi,
			CPITLB:      mpi * s.missPenalty,
			MissRatio:   st.MissRatio(),
		})
	}
	if s.wssCalc != nil {
		res := s.wssCalc.Result()
		out.WSS = &res
	}
	switch pol := s.pol.(type) {
	case *policy.TwoSize:
		st := pol.Stats()
		if s.warmTwo != nil {
			st.Sub(*s.warmTwo)
		}
		out.PolicyStats = &st
	case *policy.Ladder:
		st := pol.Stats()
		if s.warmLadder != nil {
			st.Sub(*s.warmLadder)
		}
		out.LadderStats = &st
	case *policy.Napot:
		st := pol.Stats()
		if s.warmLadder != nil {
			st.Sub(*s.warmLadder)
		}
		out.LadderStats = &st
	}
	if s.pt != nil {
		st := s.pt.nt.Stats()
		cyc := s.pt.cycles
		if s.warmed {
			st.Sub(s.warmPT)
			cyc -= s.warmPTCyc
		}
		out.PageTable = &st
		out.PTWalkCycles = cyc
	}
	if s.walker != nil {
		ws := s.walker.Stats()
		if s.warmed {
			ws.Sub(s.warmWalk)
		}
		out.Walk = &ws
		applyWalkResult(out)
	}
	out.Counters = obs.Counters{Passes: 1, Refs: refs, Instrs: instrs}
	for _, tr := range out.TLBs {
		out.Counters.Add(tr.Stats.Counters())
	}
	if out.PolicyStats != nil {
		out.Counters.Promotions = out.PolicyStats.Promotions
		out.Counters.Demotions = out.PolicyStats.Demotions
	}
	if ls := out.LadderStats; ls != nil {
		out.Counters.Promotions = ls.Promotions[1]
		out.Counters.Demotions = ls.Demotions[1]
		out.Counters.PromotionsSize2 = ls.Promotions[2]
		out.Counters.PromotionsSize3 = ls.Promotions[3]
		out.Counters.DemotionsSize2 = ls.Demotions[2]
		out.Counters.DemotionsSize3 = ls.Demotions[3]
	}
	if pt := out.PageTable; pt != nil {
		out.Counters.PTWalks = pt.Lookups
		out.Counters.Faults = pt.Misses
		out.Counters.CopiedBytes = pt.CopiedBytes
	}
	if ws := out.Walk; ws != nil {
		out.Counters.WalkCycles = ws.Cycles
		out.Counters.WalkLoads = ws.Loads()
		out.Counters.WalkPWCHits = ws.PWCHits()
		out.Counters.WalkPWCMisses = ws.PWCMisses()
		out.Counters.WalkMemHits = ws.MemHits
		out.Counters.WalkMemMisses = ws.MemMisses
	}
	out.Counters.Add(DecodeCounters(r))
	return out, nil
}

// applyWalkResult derives the walk-mode metrics from Result.Walk: the
// total walk cost replaces the shadow's flat charge, and the first TLB
// (the one whose misses trigger walks) reports the emergent penalty —
// measured cycles per walk — with CPI_TLB recomputed as total walk
// cycles over instructions. Run and MergeResults share it so a merged
// result is assembled exactly like a serial one.
func applyWalkResult(out *Result) {
	ws := out.Walk
	out.PTWalkCycles = float64(ws.Cycles)
	if len(out.TLBs) == 0 {
		return
	}
	out.TLBs[0].MissPenalty = ws.CyclesPerWalk()
	out.TLBs[0].CPITLB = 0
	if out.Instrs > 0 {
		out.TLBs[0].CPITLB = float64(ws.Cycles) / float64(out.Instrs)
	}
}

// DecodeCounters harvests a reader's trace-decode counters into a
// run-report block; readers without decode accounting (generators,
// slice readers) contribute zero.
func DecodeCounters(r trace.Reader) obs.Counters {
	dc, ok := r.(trace.DecodeCounter)
	if !ok {
		return obs.Counters{}
	}
	ds := dc.DecodeStats()
	return obs.Counters{
		DecodedRefs:   ds.Refs,
		DecodedBlocks: ds.Blocks,
		DecodedBytes:  ds.Bytes,
	}
}

// applyEvent performs the TLB maintenance a real OS would: promotion
// into class L invalidates every smaller-class entry under the region
// (the eight small pages of a chunk, in the two-size case), demotion
// the class-L entry itself. The cycle cost of this is folded into the
// multi-size miss penalty, as in the paper (Section 3.4).
func (s *Simulator) applyEvent(res policy.Result) {
	level := res.Level
	if level <= 0 {
		level = 1
	}
	if s.pt != nil {
		s.pt.apply(level, res)
	}
	if s.walker != nil {
		// The remapped region's interior descriptors changed shape; a
		// real MMU shoots down its paging-structure caches.
		s.walker.FlushPWC()
	}
	switch res.Event {
	case policy.EventPromote:
		for j := 0; j < level; j++ {
			shift := s.classes.Shift(j)
			per := addr.PN(1) << (s.classes.Shift(level) - shift)
			first := res.Chunk * per
			for i := addr.PN(0); i < per; i++ {
				p := policy.Page{Number: first + i, Shift: shift}
				for _, t := range s.tlbs {
					t.Invalidate(p)
				}
			}
		}
	case policy.EventDemote:
		p := policy.Page{Number: res.Chunk, Shift: s.classes.Shift(level)}
		for _, t := range s.tlbs {
			t.Invalidate(p)
		}
	}
}

// MeasureStaticWSS computes average working-set sizes for a set of
// static page sizes over a reference stream in one pass, no TLBs
// involved (the Section 4 experiments).
func MeasureStaticWSS(ctx context.Context, r trace.Reader, T uint64, sizes ...addr.PageSize) ([]wss.Result, error) {
	shifts := make([]uint, len(sizes))
	for i, s := range sizes {
		if !s.Valid() {
			return nil, fmt.Errorf("core: invalid page size %d", s)
		}
		shifts[i] = s.Shift()
	}
	calc := wss.NewStatic(T, shifts...)
	_, err := trace.DrainContext(ctx, r, func(batch []trace.Ref) {
		for _, ref := range batch {
			calc.Step(ref.Addr)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("core: WSS pass failed: %w", err)
	}
	return calc.Finish(), nil
}

// MeasureTwoSizeWSS computes the average working-set size of the dynamic
// 4KB/32KB scheme over a reference stream, without simulating TLBs.
func MeasureTwoSizeWSS(ctx context.Context, r trace.Reader, cfg policy.TwoSizeConfig) (wss.Result, policy.TwoSizeStats, error) {
	pol := policy.NewTwoSize(cfg)
	calc := wss.NewTwoSize(pol)
	_, err := trace.DrainContext(ctx, r, func(batch []trace.Ref) {
		for _, ref := range batch {
			calc.Observe(pol.Assign(ref.Addr))
		}
	})
	if err != nil {
		return wss.Result{}, policy.TwoSizeStats{}, fmt.Errorf("core: WSS pass failed: %w", err)
	}
	return calc.Result(), pol.Stats(), nil
}
