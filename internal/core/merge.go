package core

import (
	"twopage/internal/metrics"
	"twopage/internal/obs"
	"twopage/internal/policy"
)

// MergeResults folds per-shard simulation results, given in section
// order, into the Result a single pass over the concatenated stream
// would report. Flow counters (references, hits, misses, transitions,
// walks) sum exactly; derived ratios (MPI, CPI_TLB, miss ratio, RPI)
// are recomputed from the merged counters; working-set averages are
// re-weighted by each shard's sample count; gauges (mapped regions,
// large-chunk counts) take the last non-empty shard's value, since they
// describe end-of-stream state rather than accumulated flow.
//
// A single part is returned verbatim — no recomputation — so a
// one-shard run is byte-identical to the serial pass, floats included.
// Nil parts (shards that produced nothing) are skipped.
func MergeResults(parts []*Result) *Result {
	live := parts[:0:0]
	for _, p := range parts {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	// tail is the last shard that saw references; its gauges describe
	// the end-of-stream state the serial pass would have reported.
	tail := live[len(live)-1]
	for i := len(live) - 1; i >= 0; i-- {
		if live[i].Refs > 0 {
			tail = live[i]
			break
		}
	}

	out := &Result{Policy: live[0].Policy}
	for _, p := range live {
		out.Refs += p.Refs
		out.Instrs += p.Instrs
	}
	if out.Instrs > 0 {
		out.RPI = float64(out.Refs) / float64(out.Instrs)
	}

	for i, tr := range live[0].TLBs {
		st := tr.Stats
		for _, p := range live[1:] {
			st.Merge(p.TLBs[i].Stats)
		}
		mpi := metrics.MPI(st.Misses(), out.Instrs)
		out.TLBs = append(out.TLBs, TLBResult{
			Name:        tr.Name,
			Stats:       st,
			MissPenalty: tr.MissPenalty,
			MPI:         mpi,
			CPITLB:      mpi * tr.MissPenalty,
			MissRatio:   st.MissRatio(),
		})
	}

	if live[0].WSS != nil {
		merged := *live[0].WSS
		merged.AvgBytes = 0
		merged.Samples = 0
		merged.Pages = 0
		var acc float64
		for _, p := range live {
			if p.WSS == nil {
				continue
			}
			acc += p.WSS.AvgBytes * float64(p.WSS.Samples)
			merged.Samples += p.WSS.Samples
			merged.Pages += p.WSS.Pages
		}
		if merged.Samples > 0 {
			merged.AvgBytes = acc / float64(merged.Samples)
		}
		out.WSS = &merged
	}

	if live[0].PolicyStats != nil {
		st := *live[0].PolicyStats
		for _, p := range live[1:] {
			if p.PolicyStats != nil {
				st.Merge(*p.PolicyStats)
			}
		}
		if tail.PolicyStats != nil {
			st.LargeChunks = tail.PolicyStats.LargeChunks
		}
		out.PolicyStats = &st
	}
	if live[0].LadderStats != nil {
		st := *live[0].LadderStats
		for _, p := range live[1:] {
			if p.LadderStats != nil {
				st.Merge(*p.LadderStats)
			}
		}
		if tail.LadderStats != nil {
			st.Mapped = tail.LadderStats.Mapped
		}
		out.LadderStats = &st
	}
	if live[0].PageTable != nil {
		st := *live[0].PageTable
		for _, p := range live[1:] {
			if p.PageTable != nil {
				st.Add(*p.PageTable)
			}
			out.PTWalkCycles += p.PTWalkCycles
		}
		out.PTWalkCycles += live[0].PTWalkCycles
		out.PageTable = &st
	}
	if live[0].Walk != nil {
		ws := *live[0].Walk
		for _, p := range live[1:] {
			if p.Walk != nil {
				ws.Merge(*p.Walk)
			}
		}
		out.Walk = &ws
		// Same derivation Run performs: integer cycle total replaces the
		// flat charge, first TLB reports the emergent penalty.
		applyWalkResult(out)
	}

	// Rebuild the run-report block from the merged stats — the same
	// assembly Run performs — rather than summing the parts' blocks, so
	// the merged report is structurally identical to a serial pass (one
	// logical pass, gauges not multiply counted). Decode work is the one
	// genuinely per-shard quantity, so it sums from the parts.
	out.Counters = obs.Counters{Passes: 1, Refs: out.Refs, Instrs: out.Instrs}
	for _, tr := range out.TLBs {
		out.Counters.Add(tr.Stats.Counters())
	}
	if out.PolicyStats != nil {
		out.Counters.Promotions = out.PolicyStats.Promotions
		out.Counters.Demotions = out.PolicyStats.Demotions
	}
	if ls := out.LadderStats; ls != nil {
		out.Counters.Promotions = ls.Promotions[1]
		out.Counters.Demotions = ls.Demotions[1]
		out.Counters.PromotionsSize2 = ls.Promotions[2]
		out.Counters.PromotionsSize3 = ls.Promotions[3]
		out.Counters.DemotionsSize2 = ls.Demotions[2]
		out.Counters.DemotionsSize3 = ls.Demotions[3]
	}
	if pt := out.PageTable; pt != nil {
		out.Counters.PTWalks = pt.Lookups
		out.Counters.Faults = pt.Misses
		out.Counters.CopiedBytes = pt.CopiedBytes
	}
	if ws := out.Walk; ws != nil {
		out.Counters.WalkCycles = ws.Cycles
		out.Counters.WalkLoads = ws.Loads()
		out.Counters.WalkPWCHits = ws.PWCHits()
		out.Counters.WalkPWCMisses = ws.PWCMisses()
		out.Counters.WalkMemHits = ws.MemHits
		out.Counters.WalkMemMisses = ws.MemMisses
	}
	for _, p := range live {
		out.Counters.DecodedRefs += p.Counters.DecodedRefs
		out.Counters.DecodedBlocks += p.Counters.DecodedBlocks
		out.Counters.DecodedBytes += p.Counters.DecodedBytes
	}
	return out
}

// MergeWSSResults folds per-shard two-size working-set results into the
// sample-weighted global average. Static working sets merge exactly via
// wss.MergeStatic instead; this weighted form is for the dynamic scheme,
// whose window state cannot be decomposed exactly across shards.
func MergeWSSResults(parts []policy.TwoSizeStats) policy.TwoSizeStats {
	var out policy.TwoSizeStats
	for i, p := range parts {
		if i == 0 {
			out = p
			continue
		}
		out.Merge(p)
	}
	if n := len(parts); n > 0 {
		for i := n - 1; i >= 0; i-- {
			if parts[i].Refs > 0 {
				out.LargeChunks = parts[i].LargeChunks
				break
			}
		}
	}
	return out
}
