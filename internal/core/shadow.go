package core

import (
	"twopage/internal/addr"
	"twopage/internal/pagetable"
	"twopage/internal/policy"
)

// ptShadow keeps a software page table consistent with the policy's
// page-size decisions, so TLB misses can be charged the modelled walk
// cost (pagetable's handler cycle model) instead of a flat penalty
// assumption. State is plain shard-local data: an NTable, a bump frame
// allocator, and a cycle accumulator — nothing global, so per-shard
// shadows merge by summing their counters.
type ptShadow struct {
	nt      *pagetable.NTable
	classes addr.SizeClasses
	next    addr.PN // bump frame allocator (deterministic)
	cycles  float64
	frames  []addr.PN // demotion scratch, reused across events
}

func newPTShadow(classes addr.SizeClasses) *ptShadow {
	maxFan := 1
	for k := 1; k < classes.N(); k++ {
		if f := classes.Fanout(k); f > maxFan {
			maxFan = f
		}
	}
	return &ptShadow{
		nt:      pagetable.NewNTable(classes),
		classes: classes,
		next:    1, // frame 0 reserved so a zero PTE is never a real frame
		frames:  make([]addr.PN, 0, maxFan),
	}
}

// alloc returns the next frame. Frames are never recycled: the shadow
// models mapping structure and walk cost, not physical memory pressure
// (physmem owns that), and a monotonic counter keeps shard runs
// deterministic without a free-list.
func (p *ptShadow) alloc() addr.PN {
	f := p.next
	p.next++
	return f
}

// classOf maps a page shift back to its size-class index.
func (p *ptShadow) classOf(shift uint) int {
	for k := 0; k < p.classes.N(); k++ {
		if p.classes.Shift(k) == shift {
			return k
		}
	}
	return 0
}

// apply mirrors one policy transition into the table. A promotion
// collapses the region's smaller mappings into one large mapping; if
// the region was never demand-mapped below (no miss touched it yet) the
// large mapping is installed directly. A demotion splits the region
// into its children. Inconsistencies (a transition against a region the
// shadow never saw) are ignored: the policy is authoritative, and the
// next miss demand-maps whatever the walk cannot find.
func (p *ptShadow) apply(level int, res policy.Result) {
	switch res.Event {
	case policy.EventPromote:
		if _, _, err := p.nt.Promote(level, res.Chunk, p.alloc()); err != nil {
			_ = p.nt.Map(level, res.Chunk, p.alloc())
		}
	case policy.EventDemote:
		fan := p.classes.Fanout(level)
		p.frames = p.frames[:0]
		for i := 0; i < fan; i++ {
			p.frames = append(p.frames, p.alloc()) //paperlint:ignore hotalloc frames reuses capacity across demotions; it grows at most to the largest fanout once
		}
		_, _ = p.nt.Demote(level, res.Chunk, p.frames)
	}
}

// ptStep drives the TLBs for one reference and walks the shadow on a
// first-TLB miss, demand-mapping pages the table has never seen. The
// per-reference hot path when WithPageTable is active: one flat-table
// probe on top of the TLB accesses for hits, a walk plus at most one
// map on misses.
//
//paperlint:hot
func (s *Simulator) ptStep(va addr.VA, res policy.Result) {
	hit := s.tlbs[0].Access(va, res.Page)
	for _, t := range s.tlbs[1:] {
		t.Access(va, res.Page)
	}
	if hit {
		return
	}
	pte, w := s.pt.nt.Lookup(va)
	if s.walker != nil {
		// Modeled walk: charge per-level loads through the PWCs and the
		// memory-side cache instead of the flat handler total. The
		// shadow's own cycle accumulator stays at zero — PTWalkCycles
		// comes from the walker.
		s.walker.Walk(va, w.Levels)
	} else {
		s.pt.cycles += w.Cycles
	}
	if !pte.Valid {
		k := s.pt.classOf(res.Page.Shift)
		_ = s.pt.nt.Map(k, res.Page.Number, s.pt.alloc()) //paperlint:ignore hotalloc demand-map path: node alloc and error formatting run once per first-touched page, not per reference
	}
}
