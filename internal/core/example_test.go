package core_test

import (
	"context"
	"fmt"
	"log"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/trace"
)

// ExampleSimulator runs the paper's headline mechanism on a toy trace:
// four blocks of one 32KB chunk are touched (triggering promotion at
// the half-or-more threshold), then revisited on the large page.
func ExampleSimulator() {
	refs := []trace.Ref{
		{Addr: 0x0000, Kind: trace.Instr},
		{Addr: 0x1000, Kind: trace.Load},
		{Addr: 0x2000, Kind: trace.Load},
		{Addr: 0x3000, Kind: trace.Store}, // 4th block: chunk promotes
		{Addr: 0x0000, Kind: trace.Load},  // now a 32KB-page hit
		{Addr: 0x7000, Kind: trace.Load},  // untouched block, same large page
	}
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(100))
	sim := core.NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(8)})
	res, err := sim.Run(context.Background(), trace.NewSliceReader(refs))
	if err != nil {
		log.Fatal(err)
	}
	st := res.TLBs[0].Stats
	fmt.Printf("promotions: %d\n", res.PolicyStats.Promotions)
	fmt.Printf("misses: %d (small %d, large %d)\n",
		st.Misses(), st.SmallMisses(), st.LargeMisses())
	fmt.Printf("large-page hits: %d\n", st.LargeHits())
	// Output:
	// promotions: 1
	// misses: 4 (small 3, large 1)
	// large-page hits: 2
}

// ExampleMeasureStaticWSS computes the Section 4 metric for two page
// sizes over a toy stream: two distinct 4KB pages that share one 32KB
// page.
func ExampleMeasureStaticWSS() {
	refs := make([]trace.Ref, 0, 100)
	for i := 0; i < 50; i++ {
		refs = append(refs,
			trace.Ref{Addr: 0x0000, Kind: trace.Load},
			trace.Ref{Addr: 0x1000, Kind: trace.Load})
	}
	results, err := core.MeasureStaticWSS(context.Background(), trace.NewSliceReader(refs), 1000,
		addr.Size4K, addr.Size32K)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s pages: average working set %.0f KB\n", r.Scheme, r.AvgBytes/1024)
	}
	// Output:
	// 4KB pages: average working set 8 KB
	// 32KB pages: average working set 32 KB
}
