// Package engine schedules simulation work units across a bounded
// worker pool, memoizing repeated units so that experiments sharing a
// (workload, refs, policy, TLB-configuration) pass simulate it once.
//
// The paper's evaluation is embarrassingly parallel: every per-workload
// simulation pass is independent of every other, the same property that
// lets one stack-simulation pass stand in for 84 TLB configurations
// (Section 3.3). The engine exploits the coarser grain: experiments
// submit their work units up front (Unit, PassSpec, or opaque funcs via
// Go), the pool executes them on up to Parallelism goroutines, and the
// experiments reassemble rows from the returned futures in their own
// deterministic order — so output is byte-identical regardless of the
// parallelism level.
//
// Two rules keep the pool deadlock-free:
//
//   - Work submitted to the pool must never block on another future;
//     only the submitting (coordinator) goroutine waits.
//   - Waiting never occupies a pool slot: Future.Wait parks outside the
//     semaphore.
//
// Results returned by memoized units are shared between all requesters
// and must be treated as read-only.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"twopage/internal/obs"
)

// Event describes one completed unit of work, for progress reporting.
// Observers are invoked from worker goroutines and must be safe for
// concurrent use.
type Event struct {
	// Key identifies the unit: a memoization key for keyed passes, or
	// the submitter-provided label for opaque tasks.
	Key string
	// CacheHit reports that the unit was served from the memo cache
	// without simulating.
	CacheHit bool
	// Done and Submitted are cumulative counters at the time of the
	// event (Done <= Submitted).
	Done, Submitted int64
	// Err is the unit's failure, if any.
	Err error
}

// Observer receives an Event per completed unit.
type Observer func(Event)

// Engine is a bounded worker pool with a memoizing result cache.
// The zero value is not usable; construct with New. An Engine may be
// shared by any number of concurrent experiments — sharing one across
// a whole `paper all` run is what deduplicates passes between
// experiments (e.g. fig5.1 and deltamp both need the 4KB/FA16 pass per
// workload).
type Engine struct {
	sem         chan struct{}
	parallelism int
	observer    Observer
	collector   *obs.Collector
	shard       ShardPlan

	mu     sync.Mutex
	passes map[string]*Future[any]

	submitted atomic.Int64
	done      atomic.Int64
	hits      atomic.Int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithObserver registers a progress callback invoked once per completed
// unit. The callback runs on worker goroutines.
func WithObserver(fn Observer) Option {
	return func(e *Engine) { e.observer = fn }
}

// WithCollector attaches a run-report collector. Each keyed unit records
// its counters under its memoization key when it actually executes —
// cache hits record nothing — so the collected set is identical at any
// parallelism level.
func WithCollector(c *obs.Collector) Option {
	return func(e *Engine) { e.collector = c }
}

// Record forwards one executed unit's counters to the engine's
// collector, if any. Exposed for opaque Go tasks (which the engine
// cannot introspect); keyed units record automatically. Safe for
// concurrent use; a no-op without a collector.
func (e *Engine) Record(key string, c obs.Counters) {
	if e.collector != nil {
		e.collector.Record(key, c)
	}
}

// New returns an engine executing at most parallelism units at once.
// parallelism <= 0 selects runtime.NumCPU().
func New(parallelism int, opts ...Option) *Engine {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	e := &Engine{
		sem:         make(chan struct{}, parallelism),
		parallelism: parallelism,
		passes:      make(map[string]*Future[any]),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Parallelism returns the pool size.
func (e *Engine) Parallelism() int { return e.parallelism }

// Stats is a snapshot of engine counters.
type Stats struct {
	Submitted int64 // units submitted (including cache hits)
	Done      int64 // units completed
	CacheHits int64 // units served from the memo cache
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted: e.submitted.Load(),
		Done:      e.done.Load(),
		CacheHits: e.hits.Load(),
	}
}

// Future is the pending result of a submitted unit.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

func newFuture[T any]() *Future[T] { return &Future[T]{done: make(chan struct{})} }

// Wait blocks until the unit completes or ctx is canceled, returning
// the result. Waiting does not occupy a pool slot.
func (f *Future[T]) Wait(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// resolved returns a future already carrying (v, err).
func resolved[T any](v T, err error) *Future[T] {
	f := newFuture[T]()
	f.val, f.err = v, err
	close(f.done)
	return f
}

func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

func (e *Engine) emit(key string, hit bool, err error) {
	done := e.done.Add(1)
	if e.observer != nil {
		e.observer(Event{
			Key:       key,
			CacheHit:  hit,
			Done:      done,
			Submitted: e.submitted.Load(),
			Err:       err,
		})
	}
}

// Go submits an opaque task to the pool and returns its future. The
// label only identifies the task in progress events. fn must not wait
// on other futures (it would hold a pool slot while parked, which can
// deadlock a pool of size 1); coordinators that need staged work wait
// between stages themselves.
func Go[T any](e *Engine, ctx context.Context, label string, fn func(context.Context) (T, error)) *Future[T] {
	e.submitted.Add(1)
	f := newFuture[T]()
	go func() {
		defer close(f.done)
		if err := e.acquire(ctx); err != nil {
			f.err = err
			e.emit(label, false, err)
			return
		}
		defer e.release()
		f.val, f.err = fn(ctx)
		e.emit(label, false, f.err)
	}()
	return f
}

// collect turns a slice of futures into a future of the slice, waiting
// on a plain goroutine (no pool slot).
func collect[T any](ctx context.Context, futs []*Future[T]) *Future[[]T] {
	out := newFuture[[]T]()
	go func() {
		defer close(out.done)
		vals := make([]T, len(futs))
		for i, f := range futs {
			v, err := f.Wait(ctx)
			if err != nil {
				out.err = err
				return
			}
			vals[i] = v
		}
		out.val = vals
	}()
	return out
}

// keyed memoizes fn under key. The first submitter executes fn on the
// pool; concurrent and later submitters share the same future. Failed
// units are evicted so a later submission retries (a canceled first
// requester must not poison the cache for live ones).
func keyed[T any](e *Engine, ctx context.Context, key string, fn func(context.Context) (T, error)) *Future[T] {
	e.submitted.Add(1)
	e.mu.Lock()
	if cached, ok := e.passes[key]; ok {
		e.mu.Unlock()
		e.hits.Add(1)
		return adapt[T](ctx, key, e, cached)
	}
	shared := newFuture[any]()
	e.passes[key] = shared
	e.mu.Unlock()

	f := newFuture[T]()
	go func() {
		defer close(shared.done)
		defer close(f.done)
		if err := e.acquire(ctx); err != nil {
			f.err, shared.err = err, err
			e.evict(key)
			e.emit(key, false, err)
			return
		}
		defer e.release()
		v, err := fn(ctx)
		if err != nil {
			f.err, shared.err = err, err
			e.evict(key)
			e.emit(key, false, err)
			return
		}
		f.val, shared.val = v, v
		e.emit(key, false, nil)
	}()
	return f
}

func (e *Engine) evict(key string) {
	e.mu.Lock()
	delete(e.passes, key)
	e.mu.Unlock()
}

// adapt narrows a cached Future[any] to a typed future, reporting the
// cache hit once resolved.
func adapt[T any](ctx context.Context, key string, e *Engine, shared *Future[any]) *Future[T] {
	f := newFuture[T]()
	go func() {
		defer close(f.done)
		v, err := shared.Wait(ctx)
		if err != nil {
			f.err = err
			e.emit(key, true, err)
			return
		}
		f.val = v.(T)
		e.emit(key, true, nil)
	}()
	return f
}
