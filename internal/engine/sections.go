package engine

import (
	"context"
	"fmt"

	"twopage/internal/trace"
)

// MapSections fans a memory-mapped trace out across the pool: the file
// is split into n disjoint block sections (see trace.File.Section) and
// fn runs once per section with its own cursor, returning one T. n <= 0
// selects the engine's parallelism, clamped to the file's block count
// so no worker receives an empty section (a file with zero blocks runs
// one worker on an empty cursor). The future resolves to the per-
// section results in section order — the concatenation order of the
// underlying references — so callers can merge deterministically
// regardless of completion order.
//
// fn receives the section index alongside the cursor; it must not wait
// on other engine futures (the Go rule), and each invocation sees an
// independent MapReader, so no locking is needed on the trace side.
func MapSections[T any](e *Engine, ctx context.Context, f *trace.File, n int, label string, fn func(ctx context.Context, r *trace.MapReader, section int) (T, error)) *Future[[]T] {
	if n <= 0 {
		n = e.parallelism
	}
	if b := f.Blocks(); n > b {
		n = b
	}
	if n < 1 {
		n = 1
	}
	futs := make([]*Future[T], n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = Go(e, ctx, fmt.Sprintf("%s[%d/%d]", label, i, n), func(ctx context.Context) (T, error) {
			return fn(ctx, f.Section(i, n), i)
		})
	}
	return collect(ctx, futs)
}
