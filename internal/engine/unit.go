package engine

import (
	"context"
	"fmt"
	"strings"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tlb"
	"twopage/internal/walk"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// PolicySpec declaratively describes a page-size assignment policy, so
// that a simulation pass can be keyed and memoized. Exactly one of the
// three forms is used: Single (nonzero) selects the fixed-size
// baseline, a Ladder with at least two size classes selects the N-level
// promotion ladder, otherwise Two selects the paper's dynamic policy.
type PolicySpec struct {
	// Single, when nonzero, is the fixed page size.
	Single addr.PageSize
	// Two is the dynamic two-size configuration used when Single is
	// zero and Ladder is unset. Its DenyPromotion hook must be nil: a
	// function cannot be part of a memoization key (use an opaque Go
	// task for veto policies).
	Two policy.TwoSizeConfig
	// Ladder, when its Classes field names at least two sizes, is the
	// N-level promotion-ladder configuration. Its Deny hook must be nil
	// for the same reason as Two.DenyPromotion.
	Ladder policy.LadderConfig
}

// SinglePolicy returns the spec for the fixed-size policy.
func SinglePolicy(size addr.PageSize) PolicySpec { return PolicySpec{Single: size} }

// TwoSizePolicy returns the spec for the dynamic two-size policy.
func TwoSizePolicy(cfg policy.TwoSizeConfig) PolicySpec { return PolicySpec{Two: cfg} }

// LadderPolicy returns the spec for the N-level promotion ladder.
func LadderPolicy(cfg policy.LadderConfig) PolicySpec { return PolicySpec{Ladder: cfg} }

// New instantiates the policy.
func (p PolicySpec) New() (policy.Assigner, error) {
	if p.Single != 0 {
		if !p.Single.Valid() {
			return nil, fmt.Errorf("engine: invalid page size %d", p.Single)
		}
		return policy.NewSingle(addr.MustPow2(p.Single)), nil
	}
	if p.Ladder.Classes.N() >= 2 {
		if p.Ladder.Deny != nil {
			return nil, fmt.Errorf("engine: Deny hooks cannot be memoized; use an opaque task")
		}
		if p.Ladder.T <= 0 {
			return nil, fmt.Errorf("engine: ladder policy needs T > 0")
		}
		return policy.NewLadder(p.Ladder), nil
	}
	if p.Two.DenyPromotion != nil {
		return nil, fmt.Errorf("engine: DenyPromotion hooks cannot be memoized; use an opaque task")
	}
	if p.Two.T <= 0 {
		return nil, fmt.Errorf("engine: two-size policy needs T > 0")
	}
	return policy.NewTwoSize(p.Two), nil
}

func (p PolicySpec) key() string {
	if p.Single != 0 {
		return fmt.Sprintf("single:%d", p.Single)
	}
	if p.Ladder.Classes.N() >= 2 {
		var b strings.Builder
		fmt.Fprintf(&b, "ladder:T=%d,sc=", p.Ladder.T)
		for i, s := range p.Ladder.Classes.Shifts() {
			if i > 0 {
				b.WriteByte('-')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		b.WriteString(",thr=")
		for i, t := range p.Ladder.Thresholds {
			if i > 0 {
				b.WriteByte('-')
			}
			fmt.Fprintf(&b, "%d", t)
		}
		fmt.Fprintf(&b, ",dem=%t", p.Ladder.Demote)
		return b.String()
	}
	return fmt.Sprintf("two:T=%d,thr=%d,dem=%t,ls=%d",
		p.Two.T, p.Two.Threshold, p.Two.Demote, p.Two.LargeShift)
}

// Unit is one memoizable unit of simulation work: one workload trace
// driven through one policy and at most one TLB configuration. Units
// are the scheduling and deduplication granularity of the engine —
// experiments that share a (workload, refs, policy, TLB-config) tuple
// simulate it once per Engine, no matter how their multi-TLB passes
// were originally grouped.
type Unit struct {
	// Workload is the registered program name (workload.Get).
	Workload string
	// Refs is the trace length.
	Refs uint64
	// Policy assigns page sizes.
	Policy PolicySpec
	// TLB is the simulated TLB configuration; nil means a policy/WSS
	// pass with no TLB.
	TLB *tlb.Config
	// WSS attaches the two-page working-set calculator (requires a
	// two-size policy).
	WSS bool
	// Walk, when set, replaces the flat miss penalty with the modeled
	// multi-level page walk (core.WithWalkModel). Requires a MultiSize
	// policy and a TLB.
	Walk *walk.Config
}

// Key returns the memoization key. TLB configurations are normalized
// first so equivalent spellings (Ways 0 vs Ways == Entries, default
// shifts) share a unit.
func (u Unit) Key() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "w=%s refs=%d pol=%s wss=%t", u.Workload, u.Refs, u.Policy.key(), u.WSS)
	if u.TLB != nil {
		frag, err := u.TLB.Key()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, " tlb=%s", frag)
	}
	if u.Walk != nil {
		frag, err := u.Walk.Key()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, " walk=%s", frag)
	}
	return b.String(), nil
}

// newSimulator builds a fresh simulator for the unit: its own policy
// and TLB instances, so shard workers running the same unit in parallel
// share nothing.
func (u Unit) newSimulator() (*core.Simulator, error) {
	pol, err := u.Policy.New()
	if err != nil {
		return nil, err
	}
	var tlbs []tlb.TLB
	if u.TLB != nil {
		t, err := tlb.New(*u.TLB)
		if err != nil {
			return nil, err
		}
		tlbs = []tlb.TLB{t}
	}
	var opts []core.Option
	if u.WSS {
		opts = append(opts, core.WithWSS())
	}
	if u.Walk != nil {
		if u.TLB == nil {
			return nil, fmt.Errorf("engine: a walk-model unit needs a TLB")
		}
		// Validate as an error here: WithWalkModel panics on a bad
		// config, and a panic on a pool worker would take the whole
		// engine down instead of failing the one unit.
		if err := core.CheckWalkModel(pol, *u.Walk); err != nil {
			return nil, err
		}
		opts = append(opts, core.WithWalkModel(*u.Walk))
	}
	return core.NewSimulator(pol, tlbs, opts...), nil
}

// run executes the unit. The returned Result has exactly one TLBResult
// when u.TLB is set, none otherwise.
func (u Unit) run(ctx context.Context) (*core.Result, error) {
	s, err := workload.Get(u.Workload)
	if err != nil {
		return nil, err
	}
	sim, err := u.newSimulator()
	if err != nil {
		return nil, err
	}
	return sim.Run(ctx, s.New(u.Refs))
}

// PassSpec describes a pass of one policy over one workload trace
// against any number of TLB configurations. The engine decomposes it
// into single-TLB Units so different experiments sharing any unit share
// the work, and merges the unit results back into one core.Result with
// the TLBs in the requested order.
type PassSpec struct {
	Workload string
	Refs     uint64
	Policy   PolicySpec
	// TLBs are the simulated configurations, in result order.
	TLBs []tlb.Config
	// WSS attaches the two-page working-set calculator.
	WSS bool
	// Walk, when set, runs every unit of the pass under the modeled
	// page walk instead of the flat miss penalty.
	Walk *walk.Config
}

// Units returns the spec's decomposition into memoizable units. A spec
// with no TLBs is a single policy/WSS-only unit; the WSS calculator
// rides on the first unit only (its result is independent of the TLB).
func (p PassSpec) Units() []Unit {
	if len(p.TLBs) == 0 {
		return []Unit{{Workload: p.Workload, Refs: p.Refs, Policy: p.Policy, WSS: p.WSS, Walk: p.Walk}}
	}
	units := make([]Unit, len(p.TLBs))
	for i := range p.TLBs {
		cfg := p.TLBs[i]
		units[i] = Unit{
			Workload: p.Workload,
			Refs:     p.Refs,
			Policy:   p.Policy,
			TLB:      &cfg,
			WSS:      p.WSS && i == 0,
			Walk:     p.Walk,
		}
	}
	return units
}

// Pass submits the spec's units to the pool and returns a future of the
// merged result. Units already computed (or in flight) for this Engine
// are shared, not re-simulated. The merged Result must be treated as
// read-only: its TLB entries may be shared with other passes.
func (e *Engine) Pass(ctx context.Context, spec PassSpec) *Future[*core.Result] {
	units := spec.Units()
	futs := make([]*Future[*core.Result], len(units))
	for i, u := range units {
		u := u
		key, err := u.Key()
		if err != nil {
			futs[i] = resolved[*core.Result](nil, err)
			continue
		}
		if f, plan, ok := e.shardFor(u.Workload, u.Policy); ok {
			// Sharded results are approximations of the serial pass;
			// the plan is part of the key so they never alias serial
			// (or differently-sharded) results in the memo cache.
			key := fmt.Sprintf("%s shards=%d warm=%d", key, plan.Shards, plan.Warmup)
			futs[i] = keyedOffPool(e, ctx, key, func(ctx context.Context) (*core.Result, error) {
				res, err := u.runSharded(e, ctx, f, plan, key)
				if err == nil {
					e.Record(key, res.Counters)
				}
				return res, err
			})
			continue
		}
		futs[i] = keyed(e, ctx, key, func(ctx context.Context) (*core.Result, error) {
			res, err := u.run(ctx)
			if err == nil {
				e.Record(key, res.Counters)
			}
			return res, err
		})
	}
	merged := newFuture[*core.Result]()
	go func() {
		defer close(merged.done)
		parts, err := collect(ctx, futs).Wait(ctx)
		if err != nil {
			merged.err = err
			return
		}
		merged.val = mergeParts(parts)
	}()
	return merged
}

// mergeParts reassembles single-TLB unit results into one Result in
// unit order. Policy-side fields are identical across units (same
// trace, same policy); they are taken from the first.
func mergeParts(parts []*core.Result) *core.Result {
	out := &core.Result{
		Policy: parts[0].Policy,
		Refs:   parts[0].Refs,
		Instrs: parts[0].Instrs,
		RPI:    parts[0].RPI,
	}
	for _, p := range parts {
		out.TLBs = append(out.TLBs, p.TLBs...)
		if out.WSS == nil && p.WSS != nil {
			out.WSS = p.WSS
		}
		if out.PolicyStats == nil && p.PolicyStats != nil {
			out.PolicyStats = p.PolicyStats
		}
		if out.LadderStats == nil && p.LadderStats != nil {
			out.LadderStats = p.LadderStats
		}
		// The shadow and the walker hang off each unit's own first TLB,
		// so their counters are per-unit quantities; the first unit that
		// carried them speaks for the pass, like the policy-side fields.
		if out.PageTable == nil && p.PageTable != nil {
			out.PageTable = p.PageTable
			out.PTWalkCycles = p.PTWalkCycles
		}
		if out.Walk == nil && p.Walk != nil {
			out.Walk = p.Walk
		}
		out.Counters.Add(p.Counters)
	}
	return out
}

// StaticShifts is the canonical page-shift ladder measured by StaticWSS
// units: 4KB, 8KB, 16KB, 32KB, 64KB. Measuring the whole ladder in one
// pass costs a few counters per reference and lets every working-set
// experiment share one unit per (workload, refs, T).
var StaticShifts = []uint{addr.Shift4K, addr.Shift8K, addr.Shift16K, addr.Shift32K, addr.Shift64K}

// StaticIndex returns the index of shift in StaticShifts, or -1.
func StaticIndex(shift uint) int {
	for i, s := range StaticShifts {
		if s == shift {
			return i
		}
	}
	return -1
}

// StaticWSSUnit is a memoizable static working-set pass over one
// workload trace, measuring all of StaticShifts at window T.
type StaticWSSUnit struct {
	Workload string
	Refs     uint64
	T        uint64
}

// key is the unit's memoization key. Keeping it a method (rather than
// an inline format string at the submission site) puts it under the
// keycheck analyzer: every StaticWSSUnit field must reach the key.
func (u StaticWSSUnit) key() string {
	return fmt.Sprintf("wss-static w=%s refs=%d T=%d", u.Workload, u.Refs, u.T)
}

// StaticWSS submits the unit, returning average working-set results
// indexed as StaticShifts. Results are shared; treat as read-only.
func (e *Engine) StaticWSS(ctx context.Context, u StaticWSSUnit) *Future[[]wss.Result] {
	key := u.key()
	if f, plan, ok := e.shardFor(u.Workload, PolicySpec{}); ok {
		// The static working-set merge is exact (wss.MergeStatic), so
		// the sharded pass shares the serial unit's key: either path
		// may satisfy a memo hit for the other, bit for bit.
		return keyedOffPool(e, ctx, key, func(ctx context.Context) ([]wss.Result, error) {
			return e.staticWSSSharded(ctx, f, u, plan.Shards, key)
		})
	}
	return keyed(e, ctx, key, func(ctx context.Context) ([]wss.Result, error) {
		s, err := workload.Get(u.Workload)
		if err != nil {
			return nil, err
		}
		sizes := make([]addr.PageSize, len(StaticShifts))
		for i, sh := range StaticShifts {
			sizes[i] = addr.PageSize(1) << sh
		}
		r := s.New(u.Refs)
		results, err := core.MeasureStaticWSS(ctx, r, u.T, sizes...)
		if err != nil {
			return nil, err
		}
		c := core.DecodeCounters(r)
		c.Passes = 1
		c.Refs = u.Refs
		c.WSSPages = results[0].Pages // base (4KB) scheme
		e.Record(key, c)
		return results, nil
	})
}

// TwoWSS couples the dynamic scheme's working-set result with the
// policy counters of the pass that produced it.
type TwoWSS struct {
	WSS   wss.Result
	Stats policy.TwoSizeStats
}

// TwoSizeWSSUnit is a memoizable working-set pass of the dynamic
// two-size policy over one workload trace (no TLBs).
type TwoSizeWSSUnit struct {
	Workload string
	Refs     uint64
	Cfg      policy.TwoSizeConfig
}

// key is the unit's memoization key; delegating the policy fragment to
// PolicySpec.key keeps every TwoSizeConfig knob accountable to the
// keycheck analyzer through one shared spelling.
func (u TwoSizeWSSUnit) key() string {
	return fmt.Sprintf("wss-two w=%s refs=%d pol=%s", u.Workload, u.Refs, TwoSizePolicy(u.Cfg).key())
}

// TwoSizeWSS submits the unit. The configuration's DenyPromotion hook
// must be nil (see PolicySpec).
func (e *Engine) TwoSizeWSS(ctx context.Context, u TwoSizeWSSUnit) *Future[TwoWSS] {
	key := u.key()
	return keyed(e, ctx, key, func(ctx context.Context) (TwoWSS, error) {
		if u.Cfg.DenyPromotion != nil {
			return TwoWSS{}, fmt.Errorf("engine: DenyPromotion hooks cannot be memoized")
		}
		s, err := workload.Get(u.Workload)
		if err != nil {
			return TwoWSS{}, err
		}
		r := s.New(u.Refs)
		res, stats, err := core.MeasureTwoSizeWSS(ctx, r, u.Cfg)
		if err != nil {
			return TwoWSS{}, err
		}
		c := core.DecodeCounters(r)
		c.Passes = 1
		c.Refs = u.Refs
		c.Promotions = stats.Promotions
		c.Demotions = stats.Demotions
		e.Record(key, c)
		return TwoWSS{WSS: res, Stats: stats}, nil
	})
}
