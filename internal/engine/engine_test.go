package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/obs"
	"twopage/internal/policy"
	"twopage/internal/tlb"
)

func TestGoRunsTask(t *testing.T) {
	e := New(2)
	f := Go(e, context.Background(), "answer", func(ctx context.Context) (int, error) {
		return 42, nil
	})
	v, err := f.Wait(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("Wait = (%d, %v)", v, err)
	}
	st := e.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyedMemoizes(t *testing.T) {
	e := New(4)
	var calls atomic.Int64
	run := func() (int, error) {
		f := keyed(e, context.Background(), "k", func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 7, nil
		})
		return f.Wait(context.Background())
	}
	for i := 0; i < 5; i++ {
		if v, err := run(); err != nil || v != 7 {
			t.Fatalf("call %d: (%d, %v)", i, v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", calls.Load())
	}
	st := e.Stats()
	if st.Submitted != 5 || st.CacheHits != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyedConcurrentSharesOneExecution(t *testing.T) {
	e := New(8)
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := keyed(e, context.Background(), "slow", func(ctx context.Context) (int, error) {
				calls.Add(1)
				<-release
				return 1, nil
			})
			_, errs[i] = f.Wait(context.Background())
		}(i)
	}
	// Let the submissions race, then release the single execution.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", calls.Load())
	}
}

func TestKeyedErrorEvicts(t *testing.T) {
	e := New(1)
	boom := errors.New("boom")
	fail := keyed(e, context.Background(), "k", func(ctx context.Context) (int, error) {
		return 0, boom
	})
	if _, err := fail.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v", err)
	}
	// The failed unit must have been evicted: a retry re-executes.
	ok := keyed(e, context.Background(), "k", func(ctx context.Context) (int, error) {
		return 9, nil
	})
	if v, err := ok.Wait(context.Background()); err != nil || v != 9 {
		t.Fatalf("retry = (%d, %v)", v, err)
	}
}

func TestFutureWaitHonorsContext(t *testing.T) {
	f := newFuture[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on canceled ctx = %v", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const parallelism = 2
	e := New(parallelism)
	var active, peak atomic.Int64
	futs := make([]*Future[int], 12)
	for i := range futs {
		futs[i] = Go(e, context.Background(), "work", func(ctx context.Context) (int, error) {
			n := active.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			active.Add(-1)
			return 0, nil
		})
	}
	for _, f := range futs {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > parallelism {
		t.Fatalf("peak concurrency %d exceeds pool size %d", p, parallelism)
	}
}

func TestAcquireCancellation(t *testing.T) {
	e := New(1)
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	Go(e, context.Background(), "hold", func(ctx context.Context) (int, error) {
		close(started)
		<-block
		return 0, nil
	})
	<-started // the single slot is now held
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The slot is held; a canceled submitter must not hang waiting for it.
	f := Go(e, ctx, "starved", func(ctx context.Context) (int, error) { return 0, nil })
	if _, err := f.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("starved task err = %v", err)
	}
}

func TestObserverEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	e := New(2, WithObserver(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	ctx := context.Background()
	if _, err := keyed(e, ctx, "k", func(ctx context.Context) (int, error) { return 1, nil }).Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := keyed(e, ctx, "k", func(ctx context.Context) (int, error) { return 1, nil }).Wait(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	hits := 0
	for _, ev := range events {
		if ev.Key != "k" || ev.Err != nil {
			t.Errorf("event = %+v", ev)
		}
		if ev.Done > ev.Submitted {
			t.Errorf("Done %d > Submitted %d", ev.Done, ev.Submitted)
		}
		if ev.CacheHit {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("%d cache-hit events, want 1", hits)
	}
}

func TestUnitKeyNormalizesTLBSpellings(t *testing.T) {
	// Ways 0 defaults to fully associative; both spellings must share a
	// memo key so equivalent passes deduplicate.
	a := Unit{Workload: "li", Refs: 1000, Policy: SinglePolicy(addr.Size4K),
		TLB: &tlb.Config{Entries: 16}}
	b := Unit{Workload: "li", Refs: 1000, Policy: SinglePolicy(addr.Size4K),
		TLB: &tlb.Config{Entries: 16, Ways: 16}}
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("equivalent configs key differently:\n%s\n%s", ka, kb)
	}
	c := Unit{Workload: "li", Refs: 1000, Policy: SinglePolicy(addr.Size4K),
		TLB: &tlb.Config{Entries: 16, Ways: 2}}
	if kc, _ := c.Key(); kc == ka {
		t.Fatal("distinct configs share a key")
	}
}

func TestPolicySpecValidation(t *testing.T) {
	if _, err := (PolicySpec{Single: 3000}).New(); err == nil {
		t.Fatal("invalid page size accepted")
	}
	deny := policy.DefaultTwoSizeConfig(100)
	deny.DenyPromotion = func(addr.PN) bool { return false }
	if _, err := TwoSizePolicy(deny).New(); err == nil {
		t.Fatal("DenyPromotion hook accepted by memoizable spec")
	}
	if _, err := TwoSizePolicy(policy.TwoSizeConfig{}).New(); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, err := SinglePolicy(addr.Size4K).New(); err != nil {
		t.Fatal(err)
	}
	if _, err := TwoSizePolicy(policy.DefaultTwoSizeConfig(100)).New(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticIndex(t *testing.T) {
	if len(StaticShifts) != 5 {
		t.Fatalf("ladder size %d", len(StaticShifts))
	}
	for i, s := range StaticShifts {
		if StaticIndex(s) != i {
			t.Errorf("StaticIndex(%d) = %d, want %d", s, StaticIndex(s), i)
		}
	}
	if StaticIndex(99) != -1 {
		t.Fatal("unknown shift should be -1")
	}
}

// A multi-TLB pass decomposes into per-TLB units; a second pass sharing
// one configuration reuses that unit. Results merge in request order.
func TestPassDecomposesAndDedupes(t *testing.T) {
	e := New(2)
	ctx := context.Background()
	cfg16 := tlb.Config{Entries: 16}
	cfg32 := tlb.Config{Entries: 32}
	first, err := e.Pass(ctx, PassSpec{
		Workload: "li", Refs: 20_000, Policy: SinglePolicy(addr.Size4K),
		TLBs: []tlb.Config{cfg16, cfg32},
	}).Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.TLBs) != 2 {
		t.Fatalf("merged TLBs = %d", len(first.TLBs))
	}
	if !strings.Contains(first.TLBs[0].Name, "16-entry") || !strings.Contains(first.TLBs[1].Name, "32-entry") {
		t.Fatalf("TLB order lost: %q, %q", first.TLBs[0].Name, first.TLBs[1].Name)
	}
	before := e.Stats()
	second, err := e.Pass(ctx, PassSpec{
		Workload: "li", Refs: 20_000, Policy: SinglePolicy(addr.Size4K),
		TLBs: []tlb.Config{cfg16},
	}).Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("shared unit not served from cache: %+v -> %+v", before, after)
	}
	if got, want := second.TLBs[0].Stats, first.TLBs[0].Stats; got != want {
		t.Fatalf("cached unit stats diverge: %+v != %+v", got, want)
	}
}

// Pass on a single-slot pool must not deadlock: units run on the pool,
// the merge waits on a plain goroutine outside the semaphore.
func TestPassNoDeadlockAtParallelismOne(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := e.Pass(ctx, PassSpec{
		Workload: "li", Refs: 10_000,
		Policy: TwoSizePolicy(policy.DefaultTwoSizeConfig(1000)),
		TLBs:   []tlb.Config{{Entries: 8}, {Entries: 16}, {Entries: 32}},
		WSS:    true,
	}).Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TLBs) != 3 || res.WSS == nil || res.PolicyStats == nil {
		t.Fatalf("merged result incomplete: %d TLBs, WSS %v, stats %v",
			len(res.TLBs), res.WSS != nil, res.PolicyStats != nil)
	}
}

// WSS units: the ladder measures all five shifts; the two-size unit
// couples WSS with policy counters. Both memoize.
func TestWSSUnits(t *testing.T) {
	e := New(2)
	ctx := context.Background()
	ladder, err := e.StaticWSS(ctx, StaticWSSUnit{Workload: "li", Refs: 20_000, T: 2000}).Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ladder) != len(StaticShifts) {
		t.Fatalf("ladder has %d results", len(ladder))
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].AvgBytes < ladder[i-1].AvgBytes {
			t.Fatalf("ladder not monotone at %d: %v < %v", i, ladder[i].AvgBytes, ladder[i-1].AvgBytes)
		}
	}
	two, err := e.TwoSizeWSS(ctx, TwoSizeWSSUnit{
		Workload: "li", Refs: 20_000, Cfg: policy.DefaultTwoSizeConfig(2000),
	}).Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if two.WSS.AvgBytes <= 0 || two.Stats.Refs == 0 {
		t.Fatalf("two-size unit empty: %+v", two)
	}
	before := e.Stats()
	if _, err := e.StaticWSS(ctx, StaticWSSUnit{Workload: "li", Refs: 20_000, T: 2000}).Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if e.Stats().CacheHits != before.CacheHits+1 {
		t.Fatal("repeated StaticWSS unit not memoized")
	}
}

// Collector contents must not depend on the pool size: every unique
// unit executes exactly once and records once, so two engines running
// the same specs at different parallelism yield identical pass lists.
func TestCollectorDeterministicAcrossParallelism(t *testing.T) {
	specs := []PassSpec{
		{Workload: "li", Refs: 20_000, Policy: SinglePolicy(addr.Size4K),
			TLBs: []tlb.Config{{Entries: 16}, {Entries: 32}}},
		{Workload: "li", Refs: 20_000, Policy: TwoSizePolicy(policy.DefaultTwoSizeConfig(2000)),
			TLBs: []tlb.Config{{Entries: 16}}},
		// Duplicate of the first spec: served from cache, recorded once.
		{Workload: "li", Refs: 20_000, Policy: SinglePolicy(addr.Size4K),
			TLBs: []tlb.Config{{Entries: 16}}},
	}
	run := func(parallelism int) []obs.Pass {
		col := obs.NewCollector()
		e := New(parallelism, WithCollector(col))
		ctx := context.Background()
		futs := make([]*Future[*core.Result], len(specs))
		for i, s := range specs {
			futs[i] = e.Pass(ctx, s)
		}
		for i, f := range futs {
			if _, err := f.Wait(ctx); err != nil {
				t.Fatalf("j=%d spec %d: %v", parallelism, i, err)
			}
		}
		return col.Passes()
	}
	p1, p4 := run(1), run(4)
	if len(p1) == 0 {
		t.Fatal("collector recorded no passes")
	}
	if !reflect.DeepEqual(p1, p4) {
		t.Errorf("collector contents differ across parallelism:\nj=1: %+v\nj=4: %+v", p1, p4)
	}
	// Counters must be populated, not just keyed.
	for _, p := range p1 {
		if p.Refs == 0 || p.TLBAccesses == 0 {
			t.Errorf("pass %q has empty counters: %+v", p.Key, p.Counters)
		}
	}
}
