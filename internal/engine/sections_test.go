package engine

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"twopage/internal/addr"
	"twopage/internal/trace"
)

// sectionFile builds an in-memory v2 trace with small blocks so a few
// thousand references split into many sections.
func sectionFile(t *testing.T, nRefs, blockRefs int) (*trace.File, []trace.Ref) {
	t.Helper()
	refs := make([]trace.Ref, nRefs)
	a := int64(0x4000_0000)
	for i := range refs {
		a += int64(i%7)*8 - 16
		refs[i] = trace.Ref{Addr: addr.VA(a), Kind: trace.Kind(i % 3)}
	}
	var buf bytes.Buffer
	w := trace.NewV2WriterBlock(&buf, blockRefs)
	if err := w.Write(refs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := trace.NewFileBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return f, refs
}

func readAll(r trace.Reader) ([]trace.Ref, error) {
	var out []trace.Ref
	batch := make([]trace.Ref, 512)
	for {
		n, err := r.Read(batch)
		out = append(out, batch[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func TestMapSectionsCoversFileInOrder(t *testing.T) {
	f, refs := sectionFile(t, 5000, 64)
	for _, workers := range []int{1, 3, 8, 0} {
		e := New(4)
		fut := MapSections(e, context.Background(), f, workers, "cover",
			func(ctx context.Context, r *trace.MapReader, section int) ([]trace.Ref, error) {
				return readAll(r)
			})
		parts, err := fut.Wait(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var merged []trace.Ref
		for _, p := range parts {
			merged = append(merged, p...)
		}
		if len(merged) != len(refs) {
			t.Fatalf("workers=%d: merged %d refs, want %d", workers, len(merged), len(refs))
		}
		for i := range merged {
			if merged[i] != refs[i] {
				t.Fatalf("workers=%d: ref %d = %v, want %v", workers, i, merged[i], refs[i])
			}
		}
	}
}

func TestMapSectionsClampsToBlockCount(t *testing.T) {
	f, refs := sectionFile(t, 100, 64) // 2 blocks
	e := New(8)
	var sections []int
	fut := MapSections(e, context.Background(), f, 16, "clamp",
		func(ctx context.Context, r *trace.MapReader, section int) (uint64, error) {
			return r.Refs(), nil
		})
	counts, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 {
		t.Fatalf("got %d sections, want 2 (one per block); section log %v", len(counts), sections)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != uint64(len(refs)) {
		t.Fatalf("sections cover %d refs, want %d", total, len(refs))
	}
}

func TestMapSectionsEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewV2Writer(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := trace.NewFileBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	e := New(4)
	fut := MapSections(e, context.Background(), f, 0, "empty",
		func(ctx context.Context, r *trace.MapReader, section int) (int, error) {
			got, err := readAll(r)
			return len(got), err
		})
	counts, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 1 || counts[0] != 0 {
		t.Fatalf("counts = %v, want [0]", counts)
	}
}

func TestMapSectionsPropagatesError(t *testing.T) {
	f, _ := sectionFile(t, 1000, 64)
	e := New(4)
	boom := errors.New("boom")
	fut := MapSections(e, context.Background(), f, 4, "err",
		func(ctx context.Context, r *trace.MapReader, section int) (int, error) {
			if section == 2 {
				return 0, boom
			}
			return 0, nil
		})
	if _, err := fut.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
