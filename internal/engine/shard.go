package engine

import (
	"context"

	"twopage/internal/core"
	"twopage/internal/obs"
	"twopage/internal/trace"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// ShardPlan describes intra-trace sharding: a file-backed workload's
// reference stream is split into Shards block-aligned sections, each
// simulated by an independent worker with its own policy, TLB, and
// page-table state, and the per-shard results merged deterministically
// (core.MergeResults). Shards <= 1 disables sharding.
//
// Sharding trades a small, bounded accuracy loss for parallelism:
// counters that depend only on the reference stream (references,
// instruction mix, decode work, static working sets) merge exactly,
// while history-dependent counters (TLB misses, promotions) see a cold
// start at each shard boundary. Warmup bounds that error by replaying
// the Warmup references preceding each shard before measurement starts
// (core.Simulator.Warm); the residual error is quantified in
// the shard-invariance battery in shard_test.go and DESIGN.md §10.
type ShardPlan struct {
	// Shards is the number of sections. <= 1 means serial.
	Shards int
	// Warmup is the number of preceding references each shard (except
	// the first) replays to rebuild simulator state before measuring.
	// Zero selects AutoWarmup of the policy's window.
	Warmup uint64
}

// AutoWarmup is the default warm-up length for a policy with reference
// window T: the window itself (the policy's full decision horizon),
// floored at 64Ki references so small-window runs still warm the TLBs.
func AutoWarmup(T int) uint64 {
	const floor = 1 << 16
	if T > 0 && uint64(T) > floor {
		return uint64(T)
	}
	return floor
}

// windowT is the policy's reference-window length, 0 for single-size
// policies (which have no window — only TLB state needs warming).
func (p PolicySpec) windowT() int {
	if p.Single != 0 {
		return 0
	}
	if p.Ladder.Classes.N() >= 2 {
		return p.Ladder.T
	}
	return p.Two.T
}

// WithSharding makes the engine run file-backed units sharded under the
// plan. Generated workloads (no backing trace.File) always run serial —
// a generator has no random-access sections — as does everything when
// plan.Shards <= 1. Sharded units memoize under a key that includes the
// plan, so one engine never conflates sharded and serial results.
func WithSharding(plan ShardPlan) Option {
	return func(e *Engine) { e.shard = plan }
}

// Sharding returns the engine's shard plan (zero value when serial).
func (e *Engine) Sharding() ShardPlan { return e.shard }

// shardFor resolves the plan for one unit: the backing file and the
// plan with Warmup defaulted from the unit's policy window. ok is false
// when the engine is serial or the workload has no backing file.
func (e *Engine) shardFor(name string, pol PolicySpec) (*trace.File, ShardPlan, bool) {
	if e.shard.Shards <= 1 {
		return nil, ShardPlan{}, false
	}
	s, err := workload.Get(name)
	if err != nil || s.File == nil {
		return nil, ShardPlan{}, false
	}
	plan := e.shard
	if plan.Warmup == 0 {
		plan.Warmup = AutoWarmup(pol.windowT())
	}
	return s.File, plan, true
}

// keyedOffPool memoizes fn under key like keyed, but runs it on a plain
// goroutine instead of a pool slot. This is the coordinator form: a
// sharded unit submits MapSections work to the pool and waits for it,
// which must never happen from inside a slot (a pool of size 1 would
// deadlock waiting for itself). Cache hits and events behave exactly as
// for keyed units.
func keyedOffPool[T any](e *Engine, ctx context.Context, key string, fn func(context.Context) (T, error)) *Future[T] {
	e.submitted.Add(1)
	e.mu.Lock()
	if cached, ok := e.passes[key]; ok {
		e.mu.Unlock()
		e.hits.Add(1)
		return adapt[T](ctx, key, e, cached)
	}
	shared := newFuture[any]()
	e.passes[key] = shared
	e.mu.Unlock()

	f := newFuture[T]()
	go func() {
		defer close(shared.done)
		defer close(f.done)
		v, err := fn(ctx)
		if err != nil {
			f.err, shared.err = err, err
			e.evict(key)
			e.emit(key, false, err)
			return
		}
		f.val, shared.val = v, v
		e.emit(key, false, nil)
	}()
	return f
}

// RunSharded simulates a memory-mapped trace in plan.Shards disjoint
// block-aligned sections and merges the per-shard results. build must
// return a fresh simulator per call (each shard owns its policy, TLBs,
// and page-table shadow); refs > 0 truncates the stream like
// workload.Spec.New, refs == 0 runs the whole file. Every shard after
// the first warms up on the plan.Warmup references preceding its
// section (clamped to the start of the file) before measuring.
//
// RunSharded waits on pool futures, so it must run on a coordinator
// goroutine, never inside a pool slot (use keyedOffPool or call it from
// the submitting goroutine). plan.Shards <= 1 runs the serial path on
// the calling goroutine, byte-identical to an unsharded run.
func RunSharded(e *Engine, ctx context.Context, f *trace.File, refs uint64, plan ShardPlan, label string, build func() (*core.Simulator, error)) (*core.Result, error) {
	if refs == 0 || refs > f.Refs() {
		refs = f.Refs()
	}
	if plan.Shards <= 1 {
		sim, err := build()
		if err != nil {
			return nil, err
		}
		var r trace.Reader = f.Reader()
		if refs < f.Refs() {
			r = trace.NewLimit(r, refs)
		}
		return sim.Run(ctx, r)
	}
	n := plan.Shards
	parts, err := MapSections(e, ctx, f, n, label, func(ctx context.Context, r *trace.MapReader, section int) (*core.Result, error) {
		// MapSections may have clamped n to the block count; recover
		// the effective count from the reader's own file so section
		// arithmetic stays consistent.
		start := f.SectionStart(section, shardCount(f, n))
		left := uint64(0)
		if refs > start {
			left = refs - start
		}
		sim, err := build()
		if err != nil {
			return nil, err
		}
		if section > 0 && plan.Warmup > 0 && left > 0 {
			if err := sim.Warm(ctx, f.Preroll(section, shardCount(f, n), plan.Warmup)); err != nil {
				return nil, err
			}
		}
		var rd trace.Reader = r
		if left < f.SectionRefs(section, shardCount(f, n)) {
			rd = trace.NewLimit(r, left)
		}
		return sim.Run(ctx, rd)
	}).Wait(ctx)
	if err != nil {
		return nil, err
	}
	return core.MergeResults(parts), nil
}

// shardCount mirrors MapSections' clamping of the requested section
// count, so section indices passed to SectionStart/Preroll line up with
// the sections the workers actually received.
func shardCount(f *trace.File, n int) int {
	if b := f.Blocks(); n > b {
		n = b
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runSharded executes a unit over its backing file under plan.
func (u Unit) runSharded(e *Engine, ctx context.Context, f *trace.File, plan ShardPlan, label string) (*core.Result, error) {
	return RunSharded(e, ctx, f, u.Refs, plan, label, u.newSimulator)
}

// staticWSSSharded runs a static working-set pass sharded. Unlike TLB
// simulation this merge is exact — the residency accumulation
// decomposes across any partition of the stream (wss.MergeStatic) — so
// the sharded pass shares the serial unit's memoization key and needs
// no warm-up.
func (e *Engine) staticWSSSharded(ctx context.Context, f *trace.File, u StaticWSSUnit, shards int, key string) ([]wss.Result, error) {
	refs := u.Refs
	if refs == 0 || refs > f.Refs() {
		refs = f.Refs()
	}
	type part struct {
		calc *wss.StaticShard
		dec  trace.DecodeStats
	}
	parts, err := MapSections(e, ctx, f, shards, key, func(ctx context.Context, r *trace.MapReader, section int) (part, error) {
		n := shardCount(f, shards)
		start := f.SectionStart(section, n)
		left := uint64(0)
		if refs > start {
			left = refs - start
		}
		var rd trace.Reader = r
		if left < f.SectionRefs(section, n) {
			rd = trace.NewLimit(r, left)
		}
		calc := wss.NewStaticShard(u.T, start, StaticShifts...)
		if _, err := trace.DrainContext(ctx, rd, func(batch []trace.Ref) {
			for _, ref := range batch {
				calc.Step(ref.Addr)
			}
		}); err != nil {
			return part{}, err
		}
		return part{calc: calc, dec: r.DecodeStats()}, nil
	}).Wait(ctx)
	if err != nil {
		return nil, err
	}
	calcs := make([]*wss.StaticShard, len(parts))
	var c trace.DecodeStats
	for i, p := range parts {
		calcs[i] = p.calc
		c.Refs += p.dec.Refs
		c.Blocks += p.dec.Blocks
		c.Bytes += p.dec.Bytes
	}
	results := wss.MergeStatic(calcs)
	e.Record(key, obs.Counters{
		Passes:        1,
		Refs:          u.Refs,
		WSSPages:      results[0].Pages, // base (4KB) scheme
		DecodedRefs:   c.Refs,
		DecodedBlocks: c.Blocks,
		DecodedBytes:  c.Bytes,
	})
	return results, nil
}
