package physmem

import (
	"testing"
	"testing/quick"

	"twopage/internal/addr"
)

func TestValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero size should fail")
	}
	if _, err := New(addr.PageSize(20 * 1024)); err == nil {
		t.Fatal("non-multiple of 32KB should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic")
		}
	}()
	MustNew(addr.PageSize(1))
}

func TestSmallAllocFreeCycle(t *testing.T) {
	a := MustNew(addr.Size32K) // 8 frames
	if a.TotalFrames() != 8 || a.FreeFrames() != 8 {
		t.Fatalf("frames: %d/%d", a.FreeFrames(), a.TotalFrames())
	}
	var frames []addr.PN
	for i := 0; i < 8; i++ {
		f, err := a.AllocSmall()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if a.FreeFrames() != 0 {
		t.Fatalf("free = %d", a.FreeFrames())
	}
	if _, err := a.AllocSmall(); err == nil {
		t.Fatal("exhausted allocator should fail")
	}
	seen := map[addr.PN]bool{}
	for _, f := range frames {
		if seen[f] || uint64(f) >= 8 {
			t.Fatalf("bad frame %d", f)
		}
		seen[f] = true
	}
	for _, f := range frames {
		if err := a.Free(f); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeFrames() != 8 {
		t.Fatal("frames not returned")
	}
	// After full free, coalescing must restore large capacity.
	if a.LargeCapacity() != 1 {
		t.Fatalf("large capacity = %d, want 1", a.LargeCapacity())
	}
	if err := a.Free(frames[0]); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestLargeAllocAlignment(t *testing.T) {
	a := MustNew(addr.PageSize(4 * addr.ChunkSize))
	for i := 0; i < 4; i++ {
		f, err := a.AllocLarge()
		if err != nil {
			t.Fatal(err)
		}
		if uint64(f)%8 != 0 {
			t.Fatalf("large frame %d not 8-frame aligned", f)
		}
	}
	if _, err := a.AllocLarge(); err == nil {
		t.Fatal("exhausted")
	}
	st := a.Stats()
	if st.LargeAllocs != 4 || st.FailedLarge != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// The paper's external fragmentation: free frames exist but no aligned
// 32KB run. Construct it by freeing one small frame in each chunk.
func TestExternalFragmentation(t *testing.T) {
	const chunks = 4
	a := MustNew(addr.PageSize(chunks * addr.ChunkSize))
	var all []addr.PN
	for {
		f, err := a.AllocSmall()
		if err != nil {
			break
		}
		all = append(all, f)
	}
	// Free exactly two frames per chunk, never forming an aligned run.
	freed := 0
	for _, f := range all {
		if f%8 == 0 || f%8 == 4 {
			if err := a.Free(f); err != nil {
				t.Fatal(err)
			}
			freed++
		}
	}
	if freed != 2*chunks {
		t.Fatalf("freed %d", freed)
	}
	if a.FreeFrames() != uint64(2*chunks) {
		t.Fatalf("free frames = %d", a.FreeFrames())
	}
	if a.LargeCapacity() != 0 {
		t.Fatalf("large capacity = %d, want 0", a.LargeCapacity())
	}
	if _, err := a.AllocLarge(); err == nil {
		t.Fatal("fragmented allocator should refuse large alloc")
	}
	st := a.Stats()
	if st.FailedLargeFragmented != 1 {
		t.Fatalf("fragmentation not detected: %+v", st)
	}
	if fr := a.FragmentationRatio(); fr != 1.0 {
		t.Fatalf("fragmentation ratio = %v, want 1.0", fr)
	}
}

func TestFragmentationRatioWellFormed(t *testing.T) {
	a := MustNew(addr.PageSize(2 * addr.ChunkSize))
	if a.FragmentationRatio() != 0 {
		t.Fatal("fresh allocator should be unfragmented")
	}
	for a.FreeFrames() > 0 {
		if _, err := a.AllocSmall(); err != nil {
			t.Fatal(err)
		}
	}
	if a.FragmentationRatio() != 0 {
		t.Fatal("fully allocated memory reports 0 (nothing free to fragment)")
	}
}

func TestMixedAllocCoalesce(t *testing.T) {
	a := MustNew(addr.PageSize(2 * addr.ChunkSize))
	s1, _ := a.AllocSmall()
	l1, err := a.AllocLarge() // must come from the second chunk
	if err != nil {
		t.Fatal(err)
	}
	if l1/8 == s1/8 {
		t.Fatal("large allocation overlapped the chunk holding a small frame")
	}
	if err := a.Free(s1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(l1); err != nil {
		t.Fatal(err)
	}
	if a.LargeCapacity() != 2 {
		t.Fatalf("large capacity = %d, want 2 after coalescing", a.LargeCapacity())
	}
	if a.Stats().Coalesces == 0 {
		t.Fatal("coalesces not counted")
	}
}

func TestOrderOf(t *testing.T) {
	if o, err := OrderOf(addr.Size4K); err != nil || o != 0 {
		t.Fatalf("4K: %d %v", o, err)
	}
	if o, err := OrderOf(addr.Size32K); err != nil || o != 3 {
		t.Fatalf("32K: %d %v", o, err)
	}
	if _, err := OrderOf(addr.Size64K); err == nil {
		t.Fatal("64K should be unsupported")
	}
	if _, err := OrderOf(addr.PageSize(3)); err == nil {
		t.Fatal("non-power-of-two should fail")
	}
}

// Property: any interleaving of allocs and frees conserves frames and
// never double-allocates.
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := MustNew(addr.PageSize(8 * addr.ChunkSize)) // 64 frames
		live := map[addr.PN]int{}
		liveFrames := uint64(0)
		order := []addr.PN{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if f, err := a.AllocSmall(); err == nil {
					for l, o := range live {
						if f >= l && uint64(f) < uint64(l)+uint64(1)<<o {
							return false // overlap
						}
					}
					live[f] = 0
					order = append(order, f)
					liveFrames++
				}
			case 1:
				if f, err := a.AllocLarge(); err == nil {
					live[f] = 3
					order = append(order, f)
					liveFrames += 8
				}
			default:
				if len(order) > 0 {
					f := order[len(order)-1]
					order = order[:len(order)-1]
					o := live[f]
					delete(live, f)
					if err := a.Free(f); err != nil {
						return false
					}
					liveFrames -= uint64(1) << o
				}
			}
			if a.FreeFrames()+liveFrames != a.TotalFrames() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// PeakResident tracks the high-water mark of allocated frames: it must
// grow with allocations, survive frees, and never exceed the total.
func TestPeakResident(t *testing.T) {
	a := MustNew(addr.PageSize(2 * addr.ChunkSize)) // 16 frames
	if a.Stats().PeakResident != 0 {
		t.Fatalf("fresh allocator peak = %d, want 0", a.Stats().PeakResident)
	}
	s1, _ := a.AllocSmall()
	s2, _ := a.AllocSmall()
	if got := a.Stats().PeakResident; got != 2 {
		t.Fatalf("peak after two small allocs = %d, want 2", got)
	}
	l1, err := a.AllocLarge()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().PeakResident; got != 10 {
		t.Fatalf("peak after large alloc = %d, want 10", got)
	}
	// Freeing must not lower the high-water mark.
	for _, f := range []addr.PN{s1, s2, l1} {
		if err := a.Free(f); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().PeakResident; got != 10 {
		t.Fatalf("peak after frees = %d, want 10 (high-water mark)", got)
	}
	// Re-allocating below the old peak leaves it unchanged.
	if _, err := a.AllocSmall(); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().PeakResident; got != 10 {
		t.Fatalf("peak after re-alloc = %d, want 10", got)
	}
}
