// Package physmem models the physical-memory substrate a two-page-size
// system needs: a binary buddy allocator over 4KB frames that can hand
// out aligned 32KB frames, with the external-fragmentation accounting
// the paper identifies as a new cost of multiple page sizes (Section 1:
// "External fragmentation is waste due to the page size being larger
// than a contiguous region of available memory").
package physmem

import (
	"fmt"
	"math/bits"

	"twopage/internal/addr"
)

// Orders: order 0 = one 4KB frame, order 3 = eight frames = one aligned
// 32KB large frame.
const (
	OrderSmall = 0
	OrderLarge = 3
	maxOrder   = OrderLarge
)

// Stats counts allocator activity.
type Stats struct {
	SmallAllocs uint64
	LargeAllocs uint64
	SmallFrees  uint64
	LargeFrees  uint64
	// FailedSmall counts small allocations refused for lack of any frame.
	FailedSmall uint64
	// FailedLarge counts large allocations refused outright.
	FailedLarge uint64
	// FailedLargeFragmented counts the subset of FailedLarge where >= 8
	// frames were free but no aligned contiguous run existed: pure
	// external fragmentation.
	FailedLargeFragmented uint64
	// Splits and Coalesces count buddy operations.
	Splits    uint64
	Coalesces uint64
	// PeakResident is the high-water mark of allocated 4KB frames over
	// the allocator's lifetime.
	PeakResident uint64
}

// Allocator is a binary buddy allocator over a fixed pool of 4KB
// frames. Free blocks are tracked in one bitmap per order (bit i of
// order o covers the aligned block with head i<<o), and allocation
// always takes the lowest free address. That makes the allocator fully
// deterministic — same request sequence, same frames, same stats —
// which the experiment layer's byte-identical-output contract depends
// on (a map-keyed free list would hand out frames in randomized
// iteration order).
type Allocator struct {
	frames    uint64
	free      [maxOrder + 1]bitset
	freeLen   [maxOrder + 1]int // set bits per order
	hint      [maxOrder + 1]int // lowest word that may hold a set bit
	allocated map[addr.PN]int   // block head -> order
	freeCnt   uint64            // free 4KB frames
	stats     Stats
}

// New returns an allocator managing the given memory size, which must be
// a positive multiple of the large frame size (32KB).
func New(size addr.PageSize) (*Allocator, error) {
	if size == 0 || uint64(size)%addr.ChunkSize != 0 {
		return nil, fmt.Errorf("physmem: size %d is not a positive multiple of 32KB", size)
	}
	a := &Allocator{
		frames:    uint64(size) / addr.BlockSize,
		allocated: make(map[addr.PN]int),
	}
	for o := range a.free {
		a.free[o] = newBitset(a.frames >> o)
	}
	for f := addr.PN(0); uint64(f) < a.frames; f += 1 << OrderLarge {
		a.setFree(OrderLarge, f)
	}
	a.freeCnt = a.frames
	return a, nil
}

// bitset is a fixed-size bitmap.
type bitset []uint64

func newBitset(n uint64) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i uint64) bool { return b[i>>6]&(1<<(i&63)) != 0 }
func (b bitset) set(i uint64)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) clear(i uint64)    { b[i>>6] &^= 1 << (i & 63) }

// setFree marks the block with the given head free at order o.
func (a *Allocator) setFree(o int, head addr.PN) {
	i := uint64(head) >> o
	a.free[o].set(i)
	a.freeLen[o]++
	if w := int(i >> 6); w < a.hint[o] {
		a.hint[o] = w
	}
}

// clearFree unmarks a known-free block.
func (a *Allocator) clearFree(o int, head addr.PN) {
	a.free[o].clear(uint64(head) >> o)
	a.freeLen[o]--
}

// takeLowest removes and returns the lowest free head at order o. The
// per-order hint makes the word scan amortized O(1): it only moves
// forward past exhausted words and is pulled back when a lower block is
// freed.
func (a *Allocator) takeLowest(o int) (addr.PN, bool) {
	if a.freeLen[o] == 0 {
		return 0, false
	}
	w := a.hint[o]
	for a.free[o][w] == 0 {
		w++
	}
	a.hint[o] = w
	word := a.free[o][w]
	i := uint64(w)<<6 | uint64(bits.TrailingZeros64(word))
	a.free[o][w] = word & (word - 1)
	a.freeLen[o]--
	return addr.PN(i << o), true
}

// MustNew is New, panicking on error.
func MustNew(size addr.PageSize) *Allocator {
	a, err := New(size)
	if err != nil {
		panic(err)
	}
	return a
}

// FreeFrames returns the number of free 4KB frames.
func (a *Allocator) FreeFrames() uint64 { return a.freeCnt }

// TotalFrames returns the pool size in 4KB frames.
func (a *Allocator) TotalFrames() uint64 { return a.frames }

// Stats returns a snapshot of the counters.
func (a *Allocator) Stats() Stats { return a.stats }

// allocOrder finds (splitting as needed) the lowest-addressed free
// block of the order.
func (a *Allocator) allocOrder(order int) (addr.PN, bool) {
	for o := order; o <= maxOrder; o++ {
		head, ok := a.takeLowest(o)
		if !ok {
			continue
		}
		// Split down to the requested order, freeing upper buddies.
		for cur := o; cur > order; cur-- {
			buddy := head + 1<<(cur-1)
			a.setFree(cur-1, buddy)
			a.stats.Splits++
		}
		return head, true
	}
	return 0, false
}

// AllocSmall allocates one 4KB frame.
func (a *Allocator) AllocSmall() (addr.PN, error) {
	head, ok := a.allocOrder(OrderSmall)
	if !ok {
		a.stats.FailedSmall++
		return 0, fmt.Errorf("physmem: out of memory")
	}
	a.allocated[head] = OrderSmall
	a.freeCnt--
	a.stats.SmallAllocs++
	a.notePeak()
	return head, nil
}

// notePeak updates the resident high-water mark after an allocation.
func (a *Allocator) notePeak() {
	if used := a.frames - a.freeCnt; used > a.stats.PeakResident {
		a.stats.PeakResident = used
	}
}

// AllocLarge allocates one aligned 32KB frame (eight contiguous 4KB
// frames). On failure it distinguishes exhaustion from external
// fragmentation in the stats.
func (a *Allocator) AllocLarge() (addr.PN, error) {
	head, ok := a.allocOrder(OrderLarge)
	if !ok {
		a.stats.FailedLarge++
		if a.freeCnt >= 1<<OrderLarge {
			a.stats.FailedLargeFragmented++
			return 0, fmt.Errorf("physmem: externally fragmented: %d frames free but no aligned 32KB run", a.freeCnt)
		}
		return 0, fmt.Errorf("physmem: out of memory")
	}
	a.allocated[head] = OrderLarge
	a.freeCnt -= 1 << OrderLarge
	a.stats.LargeAllocs++
	a.notePeak()
	return head, nil
}

// Free releases a previously allocated frame (of either size),
// coalescing buddies greedily.
func (a *Allocator) Free(head addr.PN) error {
	order, ok := a.allocated[head]
	if !ok {
		return fmt.Errorf("physmem: frame %#x is not allocated", uint64(head))
	}
	delete(a.allocated, head)
	a.freeCnt += 1 << order
	if order == OrderLarge {
		a.stats.LargeFrees++
	} else {
		a.stats.SmallFrees++
	}
	for order < maxOrder {
		buddy := head ^ (1 << order)
		if !a.free[order].get(uint64(buddy) >> order) {
			break
		}
		a.clearFree(order, buddy)
		if buddy < head {
			head = buddy
		}
		order++
		a.stats.Coalesces++
	}
	a.setFree(order, head)
	return nil
}

// LargeCapacity returns how many aligned 32KB allocations could succeed
// right now — a direct external-fragmentation probe.
func (a *Allocator) LargeCapacity() int {
	return a.freeLen[OrderLarge]
}

// FragmentationRatio returns 1 − (satisfiable large frames × 8) / free
// frames: 0 means free memory is perfectly coalesced, approaching 1
// means free memory is nearly useless for large pages.
func (a *Allocator) FragmentationRatio() float64 {
	if a.freeCnt == 0 {
		return 0
	}
	usable := uint64(a.LargeCapacity()) << OrderLarge
	return 1 - float64(usable)/float64(a.freeCnt)
}

// OrderOf returns the buddy order needed for a page size.
func OrderOf(size addr.PageSize) (int, error) {
	if !size.Valid() || size < addr.Size4K || size > addr.Size32K {
		return 0, fmt.Errorf("physmem: unsupported page size %v", size)
	}
	return bits.TrailingZeros64(uint64(size)) - addr.BlockShift, nil
}
