// Package kernelref holds the map-based reference implementations of
// the per-reference simulation kernels, kept verbatim from before the
// internal/htab conversion, plus the deterministic streams both sides
// are benchmarked on.
//
// These are benchmark baselines, not production code: the package
// benchmarks (internal/wss, internal/window, internal/pagetable) and
// the BENCH_kernels.json generator (make bench-kernels) compare the
// flat-table kernels against them on identical streams, so the
// committed speedups always refer to the exact code that was replaced.
// Nothing in the simulation path imports this package.
package kernelref

import "twopage/internal/addr"

// xorshift is the benchmark stream generator: deterministic, seeded,
// allocation-free.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// VAStream generates a reference stream with the shape the simulators
// see: a hot loop over a bounded working set with a drifting base and
// strided excursions.
func VAStream(n int) []addr.VA {
	out := make([]addr.VA, n)
	x := xorshift(0x9E3779B97F4A7C15)
	base := uint64(0)
	for i := range out {
		v := x.next()
		switch {
		case i%64 == 63:
			base += 1 << 15 // drift one chunk
		case i%17 == 0:
			out[i] = addr.VA(base + v%(1<<24)) // excursion
			continue
		}
		out[i] = addr.VA(base + v%(1<<19)) // 512KB hot loop
	}
	return out
}

// BlockStream generates a block-number stream: a hot set of ~2K blocks
// with cold excursions — the delete-heavy shape that exercises window
// expiry (and backward-shift deletion) hard.
func BlockStream(n int) []addr.PN {
	out := make([]addr.PN, n)
	x := xorshift(0x2545F4914F6CDD1D)
	for i := range out {
		v := x.next()
		if i%13 == 0 {
			out[i] = addr.PN(v % (1 << 18)) // cold excursion
			continue
		}
		out[i] = addr.PN(v % (1 << 11)) // ~2K hot blocks
	}
	return out
}

// LookupVAs spreads page-table lookups over a 64MB region, half of it
// mapped, so hits and misses both occur.
func LookupVAs(n int) []addr.VA {
	out := make([]addr.VA, n)
	x := xorshift(0x2545F4914F6CDD1D)
	for i := range out {
		out[i] = addr.VA(x.next() % (1 << 26))
	}
	return out
}

// Keys generates a uint64 key stream over a bounded key space for the
// htab microbenchmarks.
func Keys(n int, space uint64) []uint64 {
	out := make([]uint64, n)
	x := xorshift(0x9E3779B97F4A7C15)
	for i := range out {
		out[i] = x.next() % space
	}
	return out
}

// MapStatic is the pre-htab working-set kernel (wss.Static before the
// conversion): per page shift, a Go map from page number to last
// access time.
type MapStatic struct {
	t      uint64
	shifts []uint
	last   []map[addr.PN]uint64
	acc    []uint64
	steps  uint64
}

// NewMapStatic mirrors wss.NewStatic.
func NewMapStatic(T uint64, shifts ...uint) *MapStatic {
	s := &MapStatic{
		t:      T,
		shifts: append([]uint(nil), shifts...),
		last:   make([]map[addr.PN]uint64, len(shifts)),
		acc:    make([]uint64, len(shifts)),
	}
	for i := range s.last {
		s.last[i] = make(map[addr.PN]uint64)
	}
	return s
}

// Step mirrors the old wss.Static.Step.
func (s *MapStatic) Step(va addr.VA) {
	t := s.steps
	s.steps++
	for i, shift := range s.shifts {
		pn := addr.Page(va, shift)
		if lastT, ok := s.last[i][pn]; ok {
			gap := t - lastT
			if gap > s.t {
				gap = s.t
			}
			s.acc[i] += gap
		}
		s.last[i][pn] = t
	}
}

// MapTracker is the pre-htab sliding-window kernel (window.Tracker
// before the conversion): Go maps for per-block reference counts and
// per-chunk active-block counts.
type MapTracker struct {
	t      int
	ring   []addr.PN
	pos    int
	filled bool

	refCnt      map[addr.PN]int32
	chunkActive map[addr.PN]int16
	active      int
}

// NewMapTracker mirrors window.New.
func NewMapTracker(T int) *MapTracker {
	return &MapTracker{
		t:           T,
		ring:        make([]addr.PN, T),
		refCnt:      make(map[addr.PN]int32),
		chunkActive: make(map[addr.PN]int16),
	}
}

func (w *MapTracker) chunkOf(b addr.PN) addr.PN {
	return b >> (addr.ChunkShift - addr.BlockShift)
}

// ActiveBlocks mirrors window.Tracker.ActiveBlocks.
func (w *MapTracker) ActiveBlocks() int { return w.active }

// Step mirrors the old window.Tracker.Step (without hooks).
func (w *MapTracker) Step(b addr.PN) {
	if w.filled {
		old := w.ring[w.pos]
		if c := w.refCnt[old] - 1; c > 0 {
			w.refCnt[old] = c
		} else {
			delete(w.refCnt, old)
			w.active--
			ch := w.chunkOf(old)
			if n := w.chunkActive[ch] - 1; n > 0 {
				w.chunkActive[ch] = n
			} else {
				delete(w.chunkActive, ch)
			}
		}
	}
	w.ring[w.pos] = b
	w.pos++
	if w.pos == w.t {
		w.pos = 0
		w.filled = true
	}
	if c := w.refCnt[b]; c > 0 {
		w.refCnt[b] = c + 1
		return
	}
	w.refCnt[b] = 1
	w.active++
	w.chunkActive[w.chunkOf(b)]++
}

// MapPTE mirrors pagetable.PTE without importing it (kernelref must
// not depend on the package it baselines).
type MapPTE struct {
	Frame addr.PN
	Valid bool
	Large bool
}

type mapChunkEntry struct {
	large    bool
	largePTE MapPTE
	blocks   *[addr.BlocksPerChunk]MapPTE
}

// MapTable is the pre-arena page table: a Go map from chunk number to
// heap-allocated entries holding a pointer to the block array.
type MapTable struct {
	chunks map[addr.PN]*mapChunkEntry
}

// NewMapTable mirrors pagetable.New.
func NewMapTable() *MapTable {
	return &MapTable{chunks: make(map[addr.PN]*mapChunkEntry)}
}

// MapSmall mirrors the old pagetable.Table.MapSmall (success path).
func (t *MapTable) MapSmall(b addr.PN, frame addr.PN) {
	c := addr.ChunkOfBlock(b)
	ce := t.chunks[c]
	if ce == nil {
		ce = &mapChunkEntry{blocks: new([addr.BlocksPerChunk]MapPTE)}
		t.chunks[c] = ce
	}
	ce.blocks[addr.BlockIndex(b)] = MapPTE{Frame: frame, Valid: true}
}

// Lookup mirrors the old pagetable.Table.Lookup's table walk (without
// the cycle accounting, identical on both sides of the comparison).
func (t *MapTable) Lookup(va addr.VA) (MapPTE, bool) {
	ce := t.chunks[addr.Chunk(va)]
	if ce == nil {
		return MapPTE{}, false
	}
	if ce.large {
		return ce.largePTE, true
	}
	pte := ce.blocks[addr.BlockInChunk(va)]
	return pte, pte.Valid
}

// Unmap mirrors the old pagetable.Table.Unmap.
func (t *MapTable) Unmap(va addr.VA) bool {
	c := addr.Chunk(va)
	ce := t.chunks[c]
	if ce == nil {
		return false
	}
	if ce.large {
		delete(t.chunks, c)
		return true
	}
	i := addr.BlockInChunk(va)
	if !ce.blocks[i].Valid {
		return false
	}
	ce.blocks[i] = MapPTE{}
	for _, pte := range ce.blocks {
		if pte.Valid {
			return true
		}
	}
	delete(t.chunks, c)
	return true
}
