package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if math.Abs(s.Std()-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "mean=5.00") {
		t.Fatalf("String = %q", s.String())
	}
}

// Property: mean lies within [min, max] and std is non-negative.
func TestSummaryProperties(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.Std() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogHistBuckets(t *testing.T) {
	var h LogHist
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Fatalf("n = %d", h.N())
	}
	got := map[uint64]uint64{}
	for _, b := range h.Buckets() {
		got[b.Lo] = b.Count
	}
	want := map[uint64]uint64{0: 2, 2: 2, 4: 2, 8: 1, 1024: 1}
	for lo, c := range want {
		if got[lo] != c {
			t.Fatalf("bucket lo=%d count=%d, want %d (all: %v)", lo, got[lo], c, got)
		}
	}
	if !strings.Contains(h.String(), "[1024,2048):1") {
		t.Fatalf("String = %q", h.String())
	}
	var empty LogHist
	if empty.String() != "(empty)" {
		t.Fatal("empty histogram string")
	}
}

func TestFractionBelow(t *testing.T) {
	var h LogHist
	for i := 0; i < 10; i++ {
		h.Add(1) // bucket [0,2)
	}
	for i := 0; i < 10; i++ {
		h.Add(1000) // bucket [512, 1024)
	}
	if got := h.FractionBelow(2); got != 0.5 {
		t.Fatalf("FractionBelow(2) = %v", got)
	}
	if got := h.FractionBelow(1 << 20); got != 1.0 {
		t.Fatalf("FractionBelow(1M) = %v", got)
	}
	if got := h.FractionBelow(1); math.Abs(got-0.25) > 1e-12 {
		// Half of bucket [0,2) lies below 1 under the proportional rule.
		t.Fatalf("FractionBelow(1) = %v", got)
	}
	var empty LogHist
	if empty.FractionBelow(10) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

// Property: FractionBelow is monotone in the limit and within [0,1].
func TestFractionBelowMonotone(t *testing.T) {
	f := func(vals []uint16, limits []uint32) bool {
		var h LogHist
		for _, v := range vals {
			h.Add(uint64(v))
		}
		prevLimit, prevFrac := uint64(0), 0.0
		for _, l := range limits {
			lim := uint64(l)
			if lim < prevLimit {
				lim, prevLimit = prevLimit, lim
			}
			fr := h.FractionBelow(lim)
			if fr < 0 || fr > 1 {
				return false
			}
			if lim >= prevLimit && fr+1e-9 < prevFrac {
				return false
			}
			prevLimit, prevFrac = lim, fr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
