// Package stats provides the small statistical tools the trace analyzer
// and experiment harness share: streaming summaries and logarithmic
// histograms.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Summary accumulates streaming moments of a series.
type Summary struct {
	n        uint64
	sum      float64
	sumsq    float64
	min, max float64
}

// Add observes one value.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumsq += v * v
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the arithmetic mean (0 if empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Std returns the population standard deviation (0 if empty).
func (s *Summary) Std() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumsq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders "n=... mean=... std=... min=... max=...".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.0f max=%.0f",
		s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}

// LogHist is a power-of-two histogram of non-negative integers: bucket
// i counts values v with 2^i <= v < 2^(i+1); bucket 0 also counts 0 and 1.
type LogHist struct {
	buckets [64]uint64
	n       uint64
}

// Add observes one value.
func (h *LogHist) Add(v uint64) {
	h.n++
	if v <= 1 {
		h.buckets[0]++
		return
	}
	h.buckets[bits.Len64(v)-1]++
}

// N returns the number of observations.
func (h *LogHist) N() uint64 { return h.n }

// Bucket is one histogram bin.
type Bucket struct {
	Lo, Hi uint64 // value range [Lo, Hi)
	Count  uint64
}

// Buckets returns the non-empty bins in ascending order.
func (h *LogHist) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = 1 << uint(i)
		}
		out = append(out, Bucket{Lo: lo, Hi: 1 << uint(i+1), Count: c})
	}
	return out
}

// FractionBelow returns the fraction of observations strictly below
// limit, computed at bucket granularity (buckets fully below count
// entirely; the straddling bucket counts proportionally to its overlap,
// a standard histogram approximation).
func (h *LogHist) FractionBelow(limit uint64) float64 {
	if h.n == 0 {
		return 0
	}
	var below float64
	for _, b := range h.Buckets() {
		switch {
		case b.Hi <= limit:
			below += float64(b.Count)
		case b.Lo < limit:
			below += float64(b.Count) * float64(limit-b.Lo) / float64(b.Hi-b.Lo)
		}
	}
	return below / float64(h.n)
}

// String renders the non-empty bins as "[lo,hi):count ...".
func (h *LogHist) String() string {
	var parts []string
	for _, b := range h.Buckets() {
		parts = append(parts, fmt.Sprintf("[%d,%d):%d", b.Lo, b.Hi, b.Count))
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}
