//go:build unix

package trace

import (
	"io"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned cleanup func
// unmaps; it is nil when there is nothing to release. Zero-length files
// are legal inputs but illegal mmap arguments, so they come back as an
// empty slice without a mapping.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	if int64(int(size)) != size {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems (and pipes handed in as paths) refuse mmap;
		// fall back to a plain read so OpenFile still works there.
		return readFile(f, size)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

func readFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
