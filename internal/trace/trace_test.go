package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
)

func genRefs(n int, seed int64) []Ref {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]Ref, n)
	pc := addr.VA(0x10000)
	data := addr.VA(0x400000)
	for i := range refs {
		switch rng.Intn(4) {
		case 0:
			data += addr.VA(rng.Intn(8192)) - 4096
			refs[i] = Ref{Addr: data, Kind: Load}
		case 1:
			refs[i] = Ref{Addr: data + addr.VA(rng.Intn(64)), Kind: Store}
		default:
			pc += 4
			if rng.Intn(16) == 0 {
				pc = addr.VA(0x10000 + rng.Intn(1<<16)&^3)
			}
			refs[i] = Ref{Addr: pc, Kind: Instr}
		}
	}
	return refs
}

func readAll(t *testing.T, r Reader, batch int) []Ref {
	t.Helper()
	var out []Ref
	buf := make([]Ref, batch)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
}

func TestKindString(t *testing.T) {
	if Instr.String() != "I" || Load.String() != "L" || Store.String() != "S" {
		t.Errorf("kind strings wrong: %v %v %v", Instr, Load, Store)
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestSliceReader(t *testing.T) {
	refs := genRefs(1000, 1)
	sr := NewSliceReader(refs)
	got := readAll(t, sr, 77)
	if !reflect.DeepEqual(got, refs) {
		t.Fatal("slice reader did not round-trip")
	}
	// After EOF, further reads keep returning EOF.
	if n, err := sr.Read(make([]Ref, 4)); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("post-EOF read = %d, %v", n, err)
	}
	sr.Reset()
	if got := readAll(t, sr, 1000); len(got) != 1000 {
		t.Fatalf("after reset read %d refs", len(got))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	refs := genRefs(5000, 2)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Write in uneven batches.
	for i := 0; i < len(refs); {
		end := i + 1 + i%97
		if end > len(refs) {
			end = len(refs)
		}
		if err := w.Write(refs[i:end]); err != nil {
			t.Fatal(err)
		}
		i = end
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != uint64(len(refs)) {
		t.Fatalf("Written = %d, want %d", w.Written(), len(refs))
	}
	got := readAll(t, NewBinaryReader(&buf), 313)
	if !reflect.DeepEqual(got, refs) {
		t.Fatal("binary codec did not round-trip")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, NewBinaryReader(&buf), 16)
	if len(got) != 0 {
		t.Fatalf("empty trace yielded %d refs", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewBinaryReader(strings.NewReader("XXXX\x00"))
	if _, err := r.Read(make([]Ref, 1)); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestBinaryTruncated(t *testing.T) {
	refs := genRefs(100, 3)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(refs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	trunc := b[:len(b)-1]
	r := NewBinaryReader(bytes.NewReader(trunc))
	var err error
	buf2 := make([]Ref, 32)
	for err == nil {
		_, err = r.Read(buf2)
	}
	if errors.Is(err, io.EOF) {
		// Acceptable only if truncation fell exactly on a record boundary;
		// chopping one byte off a varint must not produce clean EOF unless
		// the final record was a single kind byte... it cannot be, so:
		t.Fatal("truncated trace read cleanly")
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := genRefs(2000, 4)
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	if err := w.Write(refs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, NewTextReader(&buf), 129)
	if !reflect.DeepEqual(got, refs) {
		t.Fatal("text codec did not round-trip")
	}
}

func TestTextComments(t *testing.T) {
	in := "# header\n\nI 0x1000\nR 0x2000\nW 0x3000\nl 0x4000\n"
	got := readAll(t, NewTextReader(strings.NewReader(in)), 8)
	want := []Ref{
		{0x1000, Instr}, {0x2000, Load}, {0x3000, Store}, {0x4000, Load},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTextErrors(t *testing.T) {
	for _, in := range []string{"X 0x10\n", "I\n", "I zzz\n", "I 0x10 extra\n"} {
		r := NewTextReader(strings.NewReader(in))
		if _, err := r.Read(make([]Ref, 4)); err == nil || errors.Is(err, io.EOF) {
			t.Errorf("input %q: expected parse error, got %v", in, err)
		}
	}
}

func TestLimit(t *testing.T) {
	refs := genRefs(500, 5)
	lim := NewLimit(NewSliceReader(refs), 123)
	got := readAll(t, lim, 50)
	if len(got) != 123 {
		t.Fatalf("limited read = %d refs, want 123", len(got))
	}
	if !reflect.DeepEqual(got, refs[:123]) {
		t.Fatal("limit changed content")
	}
	// Limit larger than the stream passes everything through.
	lim = NewLimit(NewSliceReader(refs), 10000)
	if got := readAll(t, lim, 64); len(got) != 500 {
		t.Fatalf("over-limit read = %d refs, want 500", len(got))
	}
	// Zero limit: immediate EOF.
	lim = NewLimit(NewSliceReader(refs), 0)
	if n, err := lim.Read(make([]Ref, 4)); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("zero limit read = %d, %v", n, err)
	}
}

func TestTee(t *testing.T) {
	refs := genRefs(300, 6)
	var mirrored []Ref
	tee := NewTee(NewSliceReader(refs), func(b []Ref) {
		mirrored = append(mirrored, b...)
	})
	got := readAll(t, tee, 71)
	if !reflect.DeepEqual(got, refs) || !reflect.DeepEqual(mirrored, refs) {
		t.Fatal("tee did not mirror the stream faithfully")
	}
}

func TestConcat(t *testing.T) {
	a := genRefs(100, 7)
	b := genRefs(50, 8)
	c := genRefs(0, 9)
	cat := NewConcat(NewSliceReader(a), NewSliceReader(c), NewSliceReader(b))
	got := readAll(t, cat, 33)
	want := append(append([]Ref{}, a...), b...)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("concat did not chain streams")
	}
}

func TestDrainAndCount(t *testing.T) {
	refs := genRefs(1000, 10)
	var wantCount Count
	for _, r := range refs {
		switch r.Kind {
		case Instr:
			wantCount.Instr++
		case Load:
			wantCount.Load++
		default:
			wantCount.Store++
		}
	}
	got, err := CountRefs(NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	if got != wantCount {
		t.Fatalf("CountRefs = %+v, want %+v", got, wantCount)
	}
	if got.Total() != 1000 {
		t.Fatalf("Total = %d", got.Total())
	}
	if got.Data() != wantCount.Load+wantCount.Store {
		t.Fatalf("Data = %d", got.Data())
	}
	rpi := got.RPI()
	if rpi <= 1.0 || rpi > 3.0 {
		t.Fatalf("RPI = %v out of plausible range", rpi)
	}
	var zero Count
	if zero.RPI() != 0 {
		t.Fatal("zero count RPI should be 0")
	}
}

// Property: binary round trip preserves arbitrary addresses, including
// extremes, for any kind sequence.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, kinds []uint8) bool {
		n := len(addrs)
		if len(kinds) < n {
			n = len(kinds)
		}
		refs := make([]Ref, n)
		for i := 0; i < n; i++ {
			refs[i] = Ref{Addr: addr.VA(addrs[i]), Kind: Kind(kinds[i] % 3)}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(refs); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewBinaryReader(&buf)
		out := make([]Ref, 0, n)
		tmp := make([]Ref, 17)
		for {
			m, err := r.Read(tmp)
			out = append(out, tmp[:m]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return false
			}
		}
		return reflect.DeepEqual(out, refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// failWriter fails after n successful writes, exercising error paths.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestWriterErrorPaths(t *testing.T) {
	// Invalid kind rejected.
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write([]Ref{{Addr: 1, Kind: Kind(7)}}); err == nil {
		t.Fatal("invalid kind should error")
	}
	// Downstream failure surfaces via Flush (bufio buffers first).
	fw := &failWriter{n: 0}
	w2 := NewWriter(fw)
	big := genRefs(100000, 1) // larger than the bufio buffer
	err := w2.Write(big)
	if err == nil {
		err = w2.Flush()
	}
	if err == nil {
		t.Fatal("write to failing sink should error")
	}
	// Flush of never-written writer emits a valid empty header.
	fw3 := &failWriter{n: 0}
	if err := NewWriter(fw3).Flush(); err == nil {
		t.Fatal("header flush to failing sink should error")
	}
}

func TestTextWriterErrorPath(t *testing.T) {
	fw := &failWriter{n: 0}
	w := NewTextWriter(fw)
	err := w.Write(genRefs(100000, 2))
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		t.Fatal("text write to failing sink should error")
	}
}

func TestBinaryReaderHeaderErrors(t *testing.T) {
	// Empty input: missing header.
	r := NewBinaryReader(strings.NewReader(""))
	if _, err := r.Read(make([]Ref, 1)); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("empty input should be a header error, got %v", err)
	}
	// Magic only, count truncated.
	r2 := NewBinaryReader(strings.NewReader("TP92"))
	if _, err := r2.Read(make([]Ref, 1)); err == nil {
		t.Fatal("truncated header count should error")
	}
	// Invalid kind byte mid-stream.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]Ref{{Addr: 0x100, Kind: Instr}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0xFF) // corrupt kind
	r3 := NewBinaryReader(&buf)
	refs := make([]Ref, 8)
	_, err := r3.Read(refs)
	for err == nil {
		_, err = r3.Read(refs)
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("corrupt kind byte should not read as clean EOF")
	}
	// Errors are sticky.
	if _, err2 := r3.Read(refs); err2 == nil {
		t.Fatal("reader error should be sticky")
	}
}
