//go:build !unix

package trace

import (
	"io"
	"os"
)

// mapFile on platforms without syscall.Mmap reads the whole file once.
// The File API is unchanged; only the zero-copy property is lost.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
