package trace

import "testing"

// A fully drained MapReader must account for every ref, block, and a
// plausible number of payload bytes in its DecodeStats.
func TestMapReaderDecodeStats(t *testing.T) {
	refs := genRefs(5000, 3)
	f, err := NewFileBytes(encodeV2(t, refs, 100))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Reader()
	got := readAll(t, r, 513)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d refs, want %d", len(got), len(refs))
	}
	ds := r.DecodeStats()
	if ds.Refs != f.Refs() {
		t.Errorf("DecodeStats.Refs = %d, want %d", ds.Refs, f.Refs())
	}
	if ds.Blocks != uint64(f.Blocks()) {
		t.Errorf("DecodeStats.Blocks = %d, want %d", ds.Blocks, f.Blocks())
	}
	if ds.Bytes == 0 {
		t.Error("DecodeStats.Bytes = 0 after full drain")
	}

	// Stats are cumulative across Reset: a second pass doubles them.
	r.Reset()
	readAll(t, r, 513)
	ds2 := r.DecodeStats()
	if ds2.Refs != 2*ds.Refs || ds2.Blocks != 2*ds.Blocks || ds2.Bytes != 2*ds.Bytes {
		t.Errorf("stats after Reset+redrain = %+v, want doubled %+v", ds2, ds)
	}
}

// Limit and Tee wrap the readers handed to simulations (RegisterFile
// wraps every trace workload in a Limit); both must forward
// DecodeStats from a counting inner reader and report zero otherwise.
func TestDecodeStatsForwarding(t *testing.T) {
	refs := genRefs(3000, 4)
	f, err := NewFileBytes(encodeV2(t, refs, 100))
	if err != nil {
		t.Fatal(err)
	}

	lim := NewLimit(f.Reader(), 1000)
	readAll(t, lim, 257)
	if ds := lim.DecodeStats(); ds.Refs == 0 || ds.Blocks == 0 {
		t.Errorf("Limit did not forward DecodeStats: %+v", ds)
	}

	tee := NewTee(f.Reader(), func([]Ref) {})
	readAll(t, tee, 257)
	if ds := tee.DecodeStats(); ds.Refs != f.Refs() {
		t.Errorf("Tee DecodeStats.Refs = %d, want %d", ds.Refs, f.Refs())
	}

	// Non-counting inner readers yield the zero value, not a panic.
	plain := NewLimit(NewSliceReader(refs), 100)
	readAll(t, plain, 64)
	if ds := plain.DecodeStats(); ds != (DecodeStats{}) {
		t.Errorf("Limit over SliceReader reported %+v, want zero", ds)
	}
	pt := NewTee(NewSliceReader(refs), func([]Ref) {})
	readAll(t, pt, 64)
	if ds := pt.DecodeStats(); ds != (DecodeStats{}) {
		t.Errorf("Tee over SliceReader reported %+v, want zero", ds)
	}
}
