package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"os"

	"twopage/internal/addr"
)

// ErrNotV2 reports that a file or byte slice does not start with the v2
// magic. Callers sniffing formats (see OpenPath) match it with
// errors.Is and fall back to the v1 or text decoders.
var ErrNotV2 = errors.New("trace: not a v2 trace (bad magic)")

// v2Block is the parsed header of one block: byte extents of the three
// columns within File.data, the lane seeds, and the running reference
// count of all earlier blocks.
type v2Block struct {
	nRefs        int
	kindsOff     int
	instrOff     int
	dataOff      int
	dataEnd      int
	seedI, seedD int64
	cum          uint64
}

// File is a v2 trace opened for zero-copy reading: the whole file is
// memory-mapped (or, on platforms without mmap, read once) and a block
// index built from the headers. A File is immutable after OpenFile and
// safe for concurrent use; every Reader/Section call returns an
// independent cursor over the shared mapping.
type File struct {
	data   []byte
	blocks []v2Block
	refs   uint64
	unmap  func() error
}

// OpenFile memory-maps path and parses its block index. The returned
// File holds the mapping until Close. If the file does not carry the v2
// magic the error matches ErrNotV2.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("trace: mapping %s: %w", path, err)
	}
	tf, err := NewFileBytes(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	tf.unmap = unmap
	return tf, nil
}

// NewFileBytes parses a v2 trace already in memory (tests, fuzzers, or
// callers with their own mapping). data is not copied and must stay
// immutable for the File's lifetime.
func NewFileBytes(data []byte) (*File, error) {
	if len(data) < len(v2Magic) || string(data[:len(v2Magic)]) != v2Magic {
		return nil, ErrNotV2
	}
	pos := len(v2Magic)
	ver, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, errors.New("trace: truncated v2 version")
	}
	if ver != v2Version {
		return nil, fmt.Errorf("trace: unsupported v2 version %d", ver)
	}
	pos += n
	f := &File{data: data}
	for pos < len(data) {
		var b v2Block
		hdr := [5]uint64{}
		for i := range hdr {
			v, n := binary.Uvarint(data[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("trace: block %d: truncated header", len(f.blocks))
			}
			hdr[i] = v
			pos += n
		}
		if hdr[0] == 0 || hdr[0] > v2MaxBlockRefs {
			return nil, fmt.Errorf("trace: block %d: bad reference count %d", len(f.blocks), hdr[0])
		}
		b.nRefs = int(hdr[0])
		kindsLen := (b.nRefs + 3) / 4
		instrLen, dataLen := hdr[1], hdr[2]
		if instrLen > uint64(len(data)) || dataLen > uint64(len(data)) ||
			pos+kindsLen+int(instrLen)+int(dataLen) > len(data) {
			return nil, fmt.Errorf("trace: block %d: lanes overrun file", len(f.blocks))
		}
		b.seedI, b.seedD = int64(hdr[3]), int64(hdr[4])
		b.kindsOff = pos
		b.instrOff = b.kindsOff + kindsLen
		b.dataOff = b.instrOff + int(instrLen)
		b.dataEnd = b.dataOff + int(dataLen)
		b.cum = f.refs
		f.refs += uint64(b.nRefs)
		f.blocks = append(f.blocks, b)
		pos = b.dataEnd
	}
	return f, nil
}

// Refs returns the total reference count (the sum of all block headers).
func (f *File) Refs() uint64 { return f.refs }

// Blocks returns the number of blocks in the file.
func (f *File) Blocks() int { return len(f.blocks) }

// Size returns the on-disk size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// BytesPerRef returns the encoded density, bytes per reference.
func (f *File) BytesPerRef() float64 {
	if f.refs == 0 {
		return 0
	}
	return float64(len(f.data)) / float64(f.refs)
}

// Reader returns a cursor over the whole file.
func (f *File) Reader() *MapReader { return f.Section(0, 1) }

// sectionBounds returns the block range [lo, hi) of the i'th of n
// sections. Degenerate inputs — n <= 0, i out of [0, n) — yield the
// empty range, so shard counts computed from untrusted flag values
// produce empty readers rather than cursors with misaligned block
// indices (a negative i used to overflow into a read-time panic).
func (f *File) sectionBounds(i, n int) (lo, hi int) {
	if n <= 0 || i < 0 || i >= n {
		return 0, 0
	}
	lo = len(f.blocks) * i / n
	hi = len(f.blocks) * (i + 1) / n
	return lo, hi
}

// Section returns a cursor over the i'th of n near-equal block ranges,
// for handing disjoint regions of one file to parallel workers: the n
// sections partition the file, and concatenating them in order yields
// exactly the full stream. When n exceeds the block count the trailing
// sections are empty; degenerate inputs (n <= 0 or i outside [0, n))
// also return an empty reader rather than panicking, so shard counts
// derived from user flags are safe to pass through unchecked.
func (f *File) Section(i, n int) *MapReader {
	lo, hi := f.sectionBounds(i, n)
	return &MapReader{f: f, start: lo, end: hi, blk: lo}
}

// SectionRefs returns how many references Section(i, n) will yield
// (zero for empty or degenerate sections).
func (f *File) SectionRefs(i, n int) uint64 {
	lo, hi := f.sectionBounds(i, n)
	var total uint64
	for _, b := range f.blocks[lo:hi] {
		total += uint64(b.nRefs)
	}
	return total
}

// SectionStart returns how many references precede Section(i, n) in the
// file — the global timestamp of the section's first reference. Shard
// workers use it to place per-shard observations on the file's shared
// timeline (zero for degenerate sections).
func (f *File) SectionStart(i, n int) uint64 {
	lo, hi := f.sectionBounds(i, n)
	if lo == hi {
		if lo < len(f.blocks) {
			return f.blocks[lo].cum
		}
		return f.refs
	}
	return f.blocks[lo].cum
}

// Preroll returns a cursor over the blocks immediately preceding
// Section(i, n), covering at least w references when that many exist —
// the warm-up stream a shard replays so its simulator state at the
// section boundary approximates the serial simulator's. The preroll is
// block-aligned: it may cover more than w references (never fewer,
// unless the file starts too close to the section), and it ends exactly
// where the section begins, so warm-up plus section replays a suffix of
// the serial stream. Section 0 and degenerate inputs get an empty
// preroll.
func (f *File) Preroll(i, n int, w uint64) *MapReader {
	lo, hi := f.sectionBounds(i, n)
	if lo == hi || lo == 0 || w == 0 {
		return &MapReader{f: f}
	}
	start := f.blocks[lo].cum
	b0 := lo
	for b0 > 0 && start-f.blocks[b0].cum < w {
		b0--
	}
	return &MapReader{f: f, start: b0, end: lo, blk: b0}
}

// Close releases the mapping. Readers derived from the File must not be
// used afterwards.
func (f *File) Close() error {
	f.data, f.blocks = nil, nil
	if f.unmap != nil {
		u := f.unmap
		f.unmap = nil
		return u()
	}
	return nil
}

var (
	errV2Lane = errors.New("trace: corrupt v2 lane: bad run encoding")
	errV2Kind = errors.New("trace: corrupt v2 block: invalid kind")
)

// MapReader decodes references straight out of a File's mapping. Read
// is allocation-free in steady state: the only allocations are two
// per-reader scratch buffers sized to the file's largest block on first
// use. A MapReader is a single goroutine's cursor; use separate
// Sections for concurrent readers.
//
// Blocks are decoded in three tight passes rather than one interleaved
// state machine — expand the instruction lane, expand the data lane,
// then weave the two address sequences back together under the kinds
// column. The per-reference cost of an interleaved decoder is dominated
// by run bookkeeping and lane selection; splitting the work keeps each
// loop branch-predictable and gets within ~2x of memcpy speed.
type MapReader struct {
	f          *File
	start, end int // block range [start, end)
	blk        int // next block to load

	// Current block: buf holds its decoded references (a view of
	// scratch), consumed of n already returned. A block decoded
	// directly into a large caller batch never touches scratch; it is
	// recorded as fully consumed.
	n        int
	consumed int
	buf      []Ref

	lanes   []int64 // expanded lane addresses, instr then data
	scratch []Ref

	dec DecodeStats

	err error
}

// DecodeStats counts the decode-side work a reader has performed:
// references and blocks decoded, and encoded bytes consumed (kinds,
// instruction and data lanes). Plain uint64 counters, incremented with
// straight arithmetic on the hot path.
type DecodeStats struct {
	Refs   uint64
	Blocks uint64
	Bytes  uint64
}

// DecodeCounter is implemented by readers that expose decode counters.
// Wrapper readers (Limit, Tee) forward to their inner reader so callers
// can harvest counters without unwrapping. The interface is consulted
// once per pass, after the drain loop — never on the hot path.
type DecodeCounter interface {
	DecodeStats() DecodeStats
}

// DecodeStats returns the cumulative decode counters for this cursor.
func (r *MapReader) DecodeStats() DecodeStats { return r.dec }

// expandLane expands one lane's groups into dst and returns how many
// addresses it produced. a is the lane's seed address. The hot varint
// widths — one through four bytes, which cover group headers, stride
// deltas, and scattered heap deltas — are decoded inline, leaving
// binary.Uvarint for the rare wider ones.
func expandLane(dst []int64, buf []byte, a int64) (int, error) {
	n := 0
	pos := 0
	for pos < len(buf) {
		var h uint64
		switch {
		case buf[pos] < 0x80:
			h = uint64(buf[pos])
			pos++
		case pos+1 < len(buf) && buf[pos+1] < 0x80:
			h = uint64(buf[pos]&0x7f) | uint64(buf[pos+1])<<7
			pos += 2
		default:
			var sz int
			h, sz = binary.Uvarint(buf[pos:])
			if sz <= 0 {
				return 0, errV2Lane
			}
			pos += sz
		}
		cnt := int(h >> 1)
		if cnt > len(dst)-n {
			return 0, errV2Lane
		}
		if h&1 != 0 {
			// Run group: one delta, cnt repetitions.
			var v uint64
			switch {
			case pos < len(buf) && buf[pos] < 0x80:
				v = uint64(buf[pos])
				pos++
			case pos+1 < len(buf) && buf[pos+1] < 0x80:
				v = uint64(buf[pos]&0x7f) | uint64(buf[pos+1])<<7
				pos += 2
			case pos+2 < len(buf) && buf[pos+2] < 0x80:
				v = uint64(buf[pos]&0x7f) | uint64(buf[pos+1]&0x7f)<<7 | uint64(buf[pos+2])<<14
				pos += 3
			default:
				var sz int
				v, sz = binary.Uvarint(buf[pos:])
				if sz <= 0 {
					return 0, errV2Lane
				}
				pos += sz
			}
			delta := unzigzag(v)
			for e := n + cnt; n < e; n++ {
				a += delta
				dst[n] = a
			}
			continue
		}
		// Literal group: cnt independent deltas. Literal lengths are
		// effectively random (a mix of small local deltas and
		// region-sized jumps), so a length switch mispredicts; decode
		// branchlessly instead from one unaligned 8-byte load — find the
		// terminator byte with trailing-zeros on the inverted high bits,
		// then compact the 7-bit groups with constant shifts. Falls back
		// to binary.Uvarint within 8 bytes of the lane's end or for >8
		// byte varints.
		for e := n + cnt; n < e; n++ {
			var v uint64
			if pos+8 <= len(buf) {
				u := binary.LittleEndian.Uint64(buf[pos:])
				stop := bits.TrailingZeros64(^u & 0x8080808080808080)
				if stop == 64 {
					// >8 byte varint; rare enough to take the slow path.
					var sz int
					v, sz = binary.Uvarint(buf[pos:])
					if sz <= 0 {
						return 0, errV2Lane
					}
					pos += sz
				} else {
					u &= 1<<uint(stop+1) - 1
					v = u&0x7f | u>>1&(0x7f<<7) | u>>2&(0x7f<<14) | u>>3&(0x7f<<21) |
						u>>4&(0x7f<<28) | u>>5&(0x7f<<35) | u>>6&(0x7f<<42) | u>>7&(0x7f<<49)
					pos += stop>>3 + 1
				}
			} else {
				var sz int
				v, sz = binary.Uvarint(buf[pos:])
				if sz <= 0 {
					return 0, errV2Lane
				}
				pos += sz
			}
			a += unzigzag(v)
			dst[n] = a
		}
	}
	return n, nil
}

// decodeBlock decodes block b into out, which must be exactly b.nRefs
// long.
//
//paperlint:hot
func (r *MapReader) decodeBlock(b v2Block, out []Ref) error {
	if cap(r.lanes) < b.nRefs {
		r.lanes = make([]int64, b.nRefs) //paperlint:ignore hotalloc first-use growth, amortized to zero per the AllocsPerRun test
	}
	lanes := r.lanes[:b.nRefs]
	nI, err := expandLane(lanes, r.f.data[b.instrOff:b.dataOff], b.seedI)
	if err != nil {
		return err
	}
	nD, err := expandLane(lanes[nI:], r.f.data[b.dataOff:b.dataEnd], b.seedD)
	if err != nil {
		return err
	}
	if nI+nD != b.nRefs {
		return errV2Lane
	}
	kinds := r.f.data[b.kindsOff:b.instrOff]
	if cI, cBad := countKinds(kinds, b.nRefs); cI != nI || cBad != 0 {
		// Corrupt kinds column: it disagrees with the lane sizes or
		// contains the invalid code 3. Checking up front keeps the weave
		// free of per-reference kind and bounds tests — the counts
		// guarantee each lane cursor advances exactly its lane's length.
		return errV2Kind
	}
	// Weave the lanes back together, four references per kinds byte.
	// The lane select is mask arithmetic on the kind code — d = (k+1)>>1
	// maps I to 0, L/S to 1, and c picks between the two cursors with
	// d's sign mask — so both cursors live in registers and the loop has
	// no data-dependent branches to mispredict.
	iI, iD := 0, nI
	i := 0
	for ; i+4 <= len(out); i += 4 {
		kb := int(kinds[i>>2])
		k := kb & 3
		d := ((k + 1) >> 1) & 1
		c := iI ^ ((iI ^ iD) & -d)
		iI += d ^ 1
		iD += d
		out[i] = Ref{Addr: addr.VA(lanes[c]), Kind: Kind(k)}
		k = (kb >> 2) & 3
		d = ((k + 1) >> 1) & 1
		c = iI ^ ((iI ^ iD) & -d)
		iI += d ^ 1
		iD += d
		out[i+1] = Ref{Addr: addr.VA(lanes[c]), Kind: Kind(k)}
		k = (kb >> 4) & 3
		d = ((k + 1) >> 1) & 1
		c = iI ^ ((iI ^ iD) & -d)
		iI += d ^ 1
		iD += d
		out[i+2] = Ref{Addr: addr.VA(lanes[c]), Kind: Kind(k)}
		k = kb >> 6
		d = ((k + 1) >> 1) & 1
		c = iI ^ ((iI ^ iD) & -d)
		iI += d ^ 1
		iD += d
		out[i+3] = Ref{Addr: addr.VA(lanes[c]), Kind: Kind(k)}
	}
	for ; i < len(out); i++ {
		k := int((kinds[i>>2] >> (2 * uint(i&3))) & 3)
		d := ((k + 1) >> 1) & 1
		c := iI ^ ((iI ^ iD) & -d)
		iI += d ^ 1
		iD += d
		out[i] = Ref{Addr: addr.VA(lanes[c]), Kind: Kind(k)}
	}
	return nil
}

// v2KindCounts[b] packs, for the four 2-bit fields of b, the number of
// zero fields (Instr codes) in its low half and the number of 3 fields
// (invalid codes) in its high half, so one table walk yields both.
var v2KindCounts = func() (t [256]uint64) {
	for b := 0; b < 256; b++ {
		for s := 0; s < 4; s++ {
			switch (b >> (2 * s)) & 3 {
			case 0:
				t[b]++
			case 3:
				t[b] += 1 << 32
			}
		}
	}
	return
}()

// countKinds counts Instr and invalid codes among the first nRefs
// entries of a kinds column (the tail slots of the last byte are
// padding and must not be counted).
func countKinds(kinds []byte, nRefs int) (nInstr, nBad int) {
	var sum uint64
	full := nRefs >> 2
	for _, b := range kinds[:full] {
		sum += v2KindCounts[b]
	}
	nInstr, nBad = int(sum&0xffffffff), int(sum>>32)
	for s := full << 2; s < nRefs; s++ {
		switch (kinds[s>>2] >> (2 * uint(s&3))) & 3 {
		case 0:
			nInstr++
		case 3:
			nBad++
		}
	}
	return nInstr, nBad
}

// Read implements Reader. This is the decode hot path: the zero-copy
// AllocsPerRun test pins it to zero steady-state allocations.
//
//paperlint:hot
func (r *MapReader) Read(batch []Ref) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n := 0
	for n < len(batch) {
		if r.consumed == r.n {
			if r.blk >= r.end {
				r.err = io.EOF
				return n, io.EOF
			}
			b := r.f.blocks[r.blk]
			r.blk++
			if len(batch)-n >= b.nRefs {
				// Whole block fits: decode straight into the caller's
				// batch, skipping the scratch copy. The simulators'
				// 8192-reference batches always take this path.
				if err := r.decodeBlock(b, batch[n:n+b.nRefs]); err != nil {
					r.err = err
					return n, err
				}
				r.dec.Refs += uint64(b.nRefs)
				r.dec.Blocks++
				r.dec.Bytes += uint64(b.dataEnd - b.kindsOff)
				n += b.nRefs
				r.n, r.consumed = b.nRefs, b.nRefs
				continue
			}
			if cap(r.scratch) < b.nRefs {
				r.scratch = make([]Ref, b.nRefs) //paperlint:ignore hotalloc first-use growth, amortized to zero per the AllocsPerRun test
			}
			if err := r.decodeBlock(b, r.scratch[:b.nRefs]); err != nil {
				r.err = err
				return n, err
			}
			r.dec.Refs += uint64(b.nRefs)
			r.dec.Blocks++
			r.dec.Bytes += uint64(b.dataEnd - b.kindsOff)
			r.buf = r.scratch[:b.nRefs]
			r.n, r.consumed = b.nRefs, 0
		}
		m := copy(batch[n:], r.buf[r.consumed:r.n])
		n += m
		r.consumed += m
	}
	return n, nil
}

// File returns the mapped file this cursor reads from.
func (r *MapReader) File() *File { return r.f }

// Reset rewinds the cursor to the start of its section.
func (r *MapReader) Reset() {
	r.blk = r.start
	r.n, r.consumed = 0, 0
	r.err = nil
}

// Refs returns how many references the full section yields (independent
// of the cursor position).
func (r *MapReader) Refs() uint64 {
	var total uint64
	for _, b := range r.f.blocks[r.start:r.end] {
		total += uint64(b.nRefs)
	}
	return total
}
