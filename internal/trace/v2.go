package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// ---------------------------------------------------------------------
// Binary trace format v2: columnar, block-structured, mmap-friendly.
//
// v1 interleaves one kind byte and one varint delta per reference, so a
// decoder must branch per reference and cannot skip ahead. v2 splits a
// trace into self-contained blocks (V2BlockRefs references each) whose
// payload stores the same information in three columns:
//
//	file   := "TPV2" uvarint(version=1) block*
//	block  := uvarint(nRefs)            // references in this block, > 0
//	          uvarint(len(instrLane))   // byte length of the I column
//	          uvarint(len(dataLane))    // byte length of the L/S column
//	          uvarint(seedInstr)        // I address preceding this block
//	          uvarint(seedData)         // L/S address preceding this block
//	          kinds instrLane dataLane
//	kinds  := packed 2-bit kind codes, ceil(nRefs/4) bytes; reference i
//	          is (kinds[i/4] >> (2*(i%4))) & 3, values 0..2 (3 is invalid)
//	lane   := group* where
//	group  := uvarint(count<<1 | 1) uvarint(zigzag(delta))   // run
//	        | uvarint(count<<1)     uvarint(zigzag(delta))*  // literals
//
// All integers are unsigned LEB128 varints (encoding/binary's uvarint),
// i.e. little-endian base-128; there are no fixed-width fields, so the
// format has no machine-endianness dependence. Deltas are relative to
// the previous address in the same lane: instruction fetches form one
// lane, loads and stores share the other (interleaved load/store
// streams usually walk the same data structures, so a shared
// predecessor beats two per-kind ones). A run group repeats one delta
// count times — sequential code and strided array walks collapse to a
// few bytes per thousand references, which is what gets v2 under half
// of v1's size — while a literal group carries count distinct deltas
// with the flag cost amortized across the group (and, unlike a
// flag-per-delta scheme, a full 64-bit zigzag range per delta). The
// kinds column reconstructs the original interleaving: kind 0 pulls
// the next instr-lane address, kinds 1 and 2 pull the next data-lane
// address.
//
// Each block header carries the absolute lane seeds, so any block can
// be decoded without touching its predecessors; the lane lengths let a
// scanner hop block to block without decoding payloads. Together these
// make File.Section(i, n) possible: hand disjoint block ranges of one
// mmap'd file to parallel workers.
// ---------------------------------------------------------------------

const (
	v2Magic   = "TPV2"
	v2Version = 1

	// V2BlockRefs is the default number of references per block. It
	// matches the simulators' batch size, so one block refill feeds one
	// Drain batch.
	V2BlockRefs = 8192

	// v2MaxBlockRefs bounds the per-block reference count a decoder will
	// accept; anything larger is a corrupt or hostile header.
	v2MaxBlockRefs = 1 << 24
)

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// v2Lane accumulates one column of a block under construction. Deltas
// repeat so often (sequential code, strided walks) that consecutive
// equal ones become a run group; distinct ones buffer up in lits and
// flush as one literal group when a run interrupts them or the block
// ends.
type v2Lane struct {
	buf   []byte
	lits  []uint64 // zigzagged deltas awaiting a literal group
	addr  int64    // previous absolute address in this lane
	delta int64    // trailing delta
	run   int      // how many times delta has repeated (0 = none pending)
}

func (l *v2Lane) add(a int64) {
	d := a - l.addr
	l.addr = a
	if l.run > 0 && d == l.delta {
		l.run++
		return
	}
	if l.run > 1 {
		l.emitRun()
	} else if l.run == 1 {
		l.lits = append(l.lits, zigzag(l.delta))
	}
	l.delta, l.run = d, 1
}

func (l *v2Lane) emitRun() {
	l.emitLits()
	l.buf = binary.AppendUvarint(l.buf, uint64(l.run)<<1|1)
	l.buf = binary.AppendUvarint(l.buf, zigzag(l.delta))
	l.run = 0
}

func (l *v2Lane) emitLits() {
	if len(l.lits) == 0 {
		return
	}
	l.buf = binary.AppendUvarint(l.buf, uint64(len(l.lits))<<1)
	for _, v := range l.lits {
		l.buf = binary.AppendUvarint(l.buf, v)
	}
	l.lits = l.lits[:0]
}

// flush ends the block: whatever is pending becomes final groups.
func (l *v2Lane) flush() {
	if l.run > 1 {
		l.emitRun()
	} else if l.run == 1 {
		l.lits = append(l.lits, zigzag(l.delta))
		l.run = 0
	}
	l.emitLits()
}

// V2Writer encodes references to the v2 block format.
type V2Writer struct {
	w         *bufio.Writer
	blockRefs int
	kinds     []byte
	n         int // references in the current block
	instr     v2Lane
	data      v2Lane
	seedI     int64 // instr lane address at the start of the block
	seedD     int64 // data lane address at the start of the block
	total     uint64
	head      bool
}

// NewV2Writer returns a V2Writer emitting the v2 trace format to w with
// the default block size.
func NewV2Writer(w io.Writer) *V2Writer { return NewV2WriterBlock(w, V2BlockRefs) }

// NewV2WriterBlock is NewV2Writer with an explicit references-per-block
// count. Small blocks cost header overhead but give Section more split
// points; tests use them to exercise many-block files cheaply.
func NewV2WriterBlock(w io.Writer, blockRefs int) *V2Writer {
	if blockRefs <= 0 || blockRefs > v2MaxBlockRefs {
		blockRefs = V2BlockRefs
	}
	return &V2Writer{
		w:         bufio.NewWriterSize(w, 1<<16),
		blockRefs: blockRefs,
		kinds:     make([]byte, (blockRefs+3)/4),
	}
}

// Write encodes a batch of references.
func (tw *V2Writer) Write(batch []Ref) error {
	if !tw.head {
		tw.head = true
		if _, err := tw.w.WriteString(v2Magic); err != nil {
			return err
		}
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v2Version)
		if _, err := tw.w.Write(tmp[:n]); err != nil {
			return err
		}
	}
	for _, r := range batch {
		if r.Kind > Store {
			return fmt.Errorf("trace: invalid kind %d", r.Kind)
		}
		if tw.n&3 == 0 {
			tw.kinds[tw.n>>2] = byte(r.Kind)
		} else {
			tw.kinds[tw.n>>2] |= byte(r.Kind) << (2 * (tw.n & 3))
		}
		if r.Kind == Instr {
			tw.instr.add(int64(r.Addr))
		} else {
			tw.data.add(int64(r.Addr))
		}
		tw.n++
		tw.total++
		if tw.n == tw.blockRefs {
			if err := tw.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (tw *V2Writer) flushBlock() error {
	tw.instr.flush()
	tw.data.flush()
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{
		uint64(tw.n),
		uint64(len(tw.instr.buf)),
		uint64(len(tw.data.buf)),
		uint64(tw.seedI),
		uint64(tw.seedD),
	} {
		n := binary.PutUvarint(tmp[:], v)
		if _, err := tw.w.Write(tmp[:n]); err != nil {
			return err
		}
	}
	if _, err := tw.w.Write(tw.kinds[:(tw.n+3)/4]); err != nil {
		return err
	}
	if _, err := tw.w.Write(tw.instr.buf); err != nil {
		return err
	}
	if _, err := tw.w.Write(tw.data.buf); err != nil {
		return err
	}
	tw.seedI, tw.seedD = tw.instr.addr, tw.data.addr
	tw.instr.buf = tw.instr.buf[:0]
	tw.data.buf = tw.data.buf[:0]
	tw.n = 0
	return nil
}

// Flush writes any partial final block and flushes buffered output.
// Call once after the last Write.
func (tw *V2Writer) Flush() error {
	if !tw.head {
		// Even an empty trace gets a header.
		if err := tw.Write(nil); err != nil {
			return err
		}
	}
	if tw.n > 0 {
		if err := tw.flushBlock(); err != nil {
			return err
		}
	}
	return tw.w.Flush()
}

// Written returns how many references have been encoded.
func (tw *V2Writer) Written() uint64 { return tw.total }
