package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// OpenPath opens a trace file in any of the repository's formats and
// returns a Reader over it. format selects the decoder: "v2", "binary"
// (the v1 interleaved format), "text", or "auto" ("" is auto), which
// sniffs the magic — "TPV2" → v2, "TP92" → v1, anything else → text.
//
// v2 files are memory-mapped (the returned Reader is a *MapReader over
// a File); the other formats stream through the open descriptor. The
// returned io.Closer releases whichever resource backs the Reader and
// must be closed after the last Read.
func OpenPath(path, format string) (Reader, io.Closer, error) {
	switch format {
	case "", "auto":
		magic, err := sniff(path)
		if err != nil {
			return nil, nil, err
		}
		switch magic {
		case v2Magic:
			format = "v2"
		case binaryMagic:
			format = "binary"
		default:
			format = "text"
		}
	case "v2", "binary", "text":
	default:
		return nil, nil, fmt.Errorf("trace: unknown format %q (want auto, v2, binary, or text)", format)
	}
	if format == "v2" {
		f, err := OpenFile(path)
		if err != nil {
			if errors.Is(err, ErrNotV2) {
				return nil, nil, fmt.Errorf("trace: %s is not a v2 trace (try -format auto)", path)
			}
			return nil, nil, err
		}
		return f.Reader(), f, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if format == "text" {
		return NewTextReader(f), f, nil
	}
	return NewBinaryReader(f), f, nil
}

// sniff reads the first four bytes of path. Short files sniff as text
// (their decoders produce the precise error).
func sniff(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return "", err
	}
	return string(magic[:n]), nil
}
