package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"twopage/internal/addr"
)

// FuzzBinaryReader feeds arbitrary bytes to the binary decoder: it must
// never panic, and everything it successfully decodes must re-encode.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a real trace and some near-misses.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(genRefs(64, 42))
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("TP92"))
	f.Add([]byte("TP92\x00"))
	f.Add([]byte("XXXX\x00\x01\x02"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		out := make([]Ref, 0, 256)
		batch := make([]Ref, 64)
		for i := 0; i < 1000; i++ {
			n, err := r.Read(batch)
			out = append(out, batch[:n]...)
			if err != nil {
				break
			}
		}
		// Whatever decoded must survive a round trip.
		var re bytes.Buffer
		w := NewWriter(&re)
		if err := w.Write(out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2 := NewBinaryReader(&re)
		got := make([]Ref, 0, len(out))
		for {
			n, err := r2.Read(batch)
			got = append(got, batch[:n]...)
			if err != nil {
				break
			}
		}
		if len(got) != len(out) {
			t.Fatalf("round trip length %d != %d", len(got), len(out))
		}
		for i := range out {
			if got[i] != out[i] {
				t.Fatalf("round trip ref %d: %v != %v", i, got[i], out[i])
			}
		}
	})
}

// FuzzV2RoundTrip encodes arbitrary references — including full-range
// 64-bit addresses, which stress the zigzag delta encoding — through
// the v2 writer and demands an exact decode, across block sizes.
func FuzzV2RoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(1))
	seed := make([]byte, 0, 27)
	for i := 0; i < 3; i++ {
		seed = append(seed, byte(i))
		seed = binary.LittleEndian.AppendUint64(seed, ^uint64(0)>>uint(i))
	}
	f.Add(seed, uint16(7))

	f.Fuzz(func(t *testing.T, data []byte, blockRefs uint16) {
		// Each 9-byte window is one reference: kind byte then a raw
		// 64-bit address.
		refs := make([]Ref, 0, len(data)/9)
		for i := 0; i+9 <= len(data); i += 9 {
			refs = append(refs, Ref{
				Addr: addr.VA(binary.LittleEndian.Uint64(data[i+1:])),
				Kind: Kind(data[i] % 3),
			})
		}
		var buf bytes.Buffer
		w := NewV2WriterBlock(&buf, int(blockRefs))
		if err := w.Write(refs); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		tf, err := NewFileBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if tf.Refs() != uint64(len(refs)) {
			t.Fatalf("Refs = %d, want %d", tf.Refs(), len(refs))
		}
		got := make([]Ref, 0, len(refs))
		batch := make([]Ref, 100)
		r := tf.Reader()
		for {
			n, err := r.Read(batch)
			got = append(got, batch[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(refs) {
			t.Fatalf("decoded %d refs, want %d", len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("ref %d = %v, want %v", i, got[i], refs[i])
			}
		}
	})
}

// FuzzV2Decoder feeds arbitrary bytes to the v2 parser and decoder:
// truncated or corrupt headers, lanes, and kinds columns must surface
// as errors, never panics, and whatever decodes must carry valid kinds.
func FuzzV2Decoder(f *testing.F) {
	var buf bytes.Buffer
	w := NewV2WriterBlock(&buf, 32)
	_ = w.Write(genRefs(300, 7))
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("TPV2"))
	f.Add([]byte("TPV2\x01"))
	f.Add([]byte("TPV2\x01\x04\x01\x01\x00\x00"))
	f.Add([]byte{})
	// A valid file with one flipped byte in each region is a good
	// corruption seed.
	for _, i := range []int{5, 8, len(valid) / 2, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := NewFileBytes(data)
		if err != nil {
			return
		}
		var decoded uint64
		batch := make([]Ref, 61) // odd size forces scratch copies too
		r := tf.Reader()
		for {
			n, err := r.Read(batch)
			for _, ref := range batch[:n] {
				if ref.Kind > Store {
					t.Fatalf("decoded invalid kind %d", ref.Kind)
				}
			}
			decoded += uint64(n)
			if err != nil {
				break
			}
		}
		if decoded > tf.Refs() {
			t.Fatalf("decoded %d refs from a file claiming %d", decoded, tf.Refs())
		}
	})
}

// FuzzTextReader feeds arbitrary text to the text decoder: no panics,
// and errors must be reported rather than silently swallowed mid-line.
func FuzzTextReader(f *testing.F) {
	f.Add("I 0x1000\nL 0x2000\nS 0x3000\n")
	f.Add("# comment\n\nI 0x10\n")
	f.Add("garbage")
	f.Add("I")
	f.Add("I 0x1000 extra\n")
	f.Fuzz(func(t *testing.T, data string) {
		r := NewTextReader(bytes.NewReader([]byte(data)))
		batch := make([]Ref, 32)
		for i := 0; i < 1000; i++ {
			n, err := r.Read(batch)
			for _, ref := range batch[:n] {
				if ref.Kind > Store {
					t.Fatalf("decoded invalid kind %d", ref.Kind)
				}
			}
			if err != nil {
				if err == io.EOF && n > 0 {
					// fine: final partial batch
				}
				break
			}
		}
	})
}

// FuzzSectionBounds drives Section, SectionRefs, SectionStart and
// Preroll with arbitrary — including degenerate — coordinates: no call
// may panic, adjacent sections must abut (SectionStart(i) + refs ==
// SectionStart(i+1)), and a preroll must end exactly where its section
// begins, covering at least w references whenever that many precede it.
func FuzzSectionBounds(f *testing.F) {
	f.Add(uint16(1000), uint16(64), 3, 8, uint32(100))
	f.Add(uint16(10), uint16(4), -1, 0, uint32(0))
	f.Add(uint16(0), uint16(16), 5, 3, uint32(1))
	f.Add(uint16(300), uint16(1), 200, 7, uint32(65535))
	f.Add(uint16(777), uint16(9), 2, 3, uint32(500))
	f.Fuzz(func(t *testing.T, nRefs, blockRefs uint16, i, n int, w uint32) {
		br := int(blockRefs)
		if br == 0 {
			br = 1
		}
		refs := genRefs(int(nRefs), 7)
		file, err := NewFileBytes(encodeV2(t, refs, br))
		if err != nil {
			t.Fatal(err)
		}
		start := file.SectionStart(i, n)
		secRefs := file.SectionRefs(i, n)
		if start > file.Refs() || start+secRefs > file.Refs() {
			t.Fatalf("Section(%d, %d): start %d + refs %d overrun file (%d refs)",
				i, n, start, secRefs, file.Refs())
		}
		got := readAll(t, file.Section(i, n), 300)
		if uint64(len(got)) != secRefs {
			t.Fatalf("Section(%d, %d) yielded %d refs, SectionRefs says %d", i, n, len(got), secRefs)
		}
		for j, r := range got {
			if want := refs[start+uint64(j)]; r != want {
				t.Fatalf("Section(%d, %d) ref %d = %v, want %v (misaligned cursor)", i, n, j, r, want)
			}
		}
		if i >= 0 && i+1 < n {
			if next := file.SectionStart(i+1, n); start+secRefs != next {
				t.Fatalf("sections %d and %d of %d do not abut: %d + %d != %d",
					i, i+1, n, start, secRefs, next)
			}
		}
		pr := file.Preroll(i, n, uint64(w))
		covered := pr.Refs()
		if covered > start {
			t.Fatalf("Preroll(%d, %d, %d) covers %d refs but only %d precede the section", i, n, w, covered, start)
		}
		if secRefs > 0 && w > 0 && covered < uint64(w) && covered < start {
			t.Fatalf("Preroll(%d, %d, %d) covers only %d refs with %d available", i, n, w, covered, start)
		}
		warm := readAll(t, pr, 300)
		for j, r := range warm {
			if want := refs[start-covered+uint64(j)]; r != want {
				t.Fatalf("Preroll(%d, %d, %d) ref %d = %v, want %v (does not abut section)", i, n, w, j, r, want)
			}
		}
	})
}
