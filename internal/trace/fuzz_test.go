package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzBinaryReader feeds arbitrary bytes to the binary decoder: it must
// never panic, and everything it successfully decodes must re-encode.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a real trace and some near-misses.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(genRefs(64, 42))
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("TP92"))
	f.Add([]byte("TP92\x00"))
	f.Add([]byte("XXXX\x00\x01\x02"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		out := make([]Ref, 0, 256)
		batch := make([]Ref, 64)
		for i := 0; i < 1000; i++ {
			n, err := r.Read(batch)
			out = append(out, batch[:n]...)
			if err != nil {
				break
			}
		}
		// Whatever decoded must survive a round trip.
		var re bytes.Buffer
		w := NewWriter(&re)
		if err := w.Write(out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2 := NewBinaryReader(&re)
		got := make([]Ref, 0, len(out))
		for {
			n, err := r2.Read(batch)
			got = append(got, batch[:n]...)
			if err != nil {
				break
			}
		}
		if len(got) != len(out) {
			t.Fatalf("round trip length %d != %d", len(got), len(out))
		}
		for i := range out {
			if got[i] != out[i] {
				t.Fatalf("round trip ref %d: %v != %v", i, got[i], out[i])
			}
		}
	})
}

// FuzzTextReader feeds arbitrary text to the text decoder: no panics,
// and errors must be reported rather than silently swallowed mid-line.
func FuzzTextReader(f *testing.F) {
	f.Add("I 0x1000\nL 0x2000\nS 0x3000\n")
	f.Add("# comment\n\nI 0x10\n")
	f.Add("garbage")
	f.Add("I")
	f.Add("I 0x1000 extra\n")
	f.Fuzz(func(t *testing.T, data string) {
		r := NewTextReader(bytes.NewReader([]byte(data)))
		batch := make([]Ref, 32)
		for i := 0; i < 1000; i++ {
			n, err := r.Read(batch)
			for _, ref := range batch[:n] {
				if ref.Kind > Store {
					t.Fatalf("decoded invalid kind %d", ref.Kind)
				}
			}
			if err != nil {
				if err == io.EOF && n > 0 {
					// fine: final partial batch
				}
				break
			}
		}
	})
}
