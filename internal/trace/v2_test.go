package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"twopage/internal/addr"
)

// encodeV2 writes refs through a V2Writer and returns the bytes.
func encodeV2(t testing.TB, refs []Ref, blockRefs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewV2WriterBlock(&buf, blockRefs)
	if err := w.Write(refs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != uint64(len(refs)) {
		t.Fatalf("Written() = %d, want %d", w.Written(), len(refs))
	}
	return buf.Bytes()
}

func TestV2RoundTrip(t *testing.T) {
	for _, blockRefs := range []int{1, 7, 100, V2BlockRefs} {
		refs := genRefs(5000, 2)
		f, err := NewFileBytes(encodeV2(t, refs, blockRefs))
		if err != nil {
			t.Fatalf("blockRefs %d: %v", blockRefs, err)
		}
		if f.Refs() != uint64(len(refs)) {
			t.Fatalf("blockRefs %d: Refs() = %d, want %d", blockRefs, f.Refs(), len(refs))
		}
		wantBlocks := (len(refs) + blockRefs - 1) / blockRefs
		if f.Blocks() != wantBlocks {
			t.Fatalf("blockRefs %d: Blocks() = %d, want %d", blockRefs, f.Blocks(), wantBlocks)
		}
		got := readAll(t, f.Reader(), 513)
		if len(got) != len(refs) {
			t.Fatalf("blockRefs %d: decoded %d refs, want %d", blockRefs, len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("blockRefs %d: ref %d = %v, want %v", blockRefs, i, got[i], refs[i])
			}
		}
	}
}

func TestV2EmptyTrace(t *testing.T) {
	f, err := NewFileBytes(encodeV2(t, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if f.Refs() != 0 || f.Blocks() != 0 {
		t.Fatalf("empty trace: Refs() = %d, Blocks() = %d", f.Refs(), f.Blocks())
	}
	n, err := f.Reader().Read(make([]Ref, 8))
	if n != 0 || err != io.EOF {
		t.Fatalf("Read on empty trace = (%d, %v), want (0, EOF)", n, err)
	}
}

func TestV2WriterRejectsBadKind(t *testing.T) {
	w := NewV2Writer(io.Discard)
	if err := w.Write([]Ref{{Kind: 3}}); err == nil {
		t.Fatal("Write accepted kind 3")
	}
}

// Sections must partition the stream: concatenating every section in
// order reproduces the full trace exactly, for any split count —
// including splits with more sections than blocks.
func TestV2SectionsPartition(t *testing.T) {
	refs := genRefs(10_000, 9)
	f, err := NewFileBytes(encodeV2(t, refs, 256))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 8, f.Blocks(), f.Blocks() + 5} {
		var got []Ref
		var total uint64
		for i := 0; i < n; i++ {
			sec := readAll(t, f.Section(i, n), 1000)
			if uint64(len(sec)) != f.SectionRefs(i, n) {
				t.Fatalf("n=%d section %d: %d refs, SectionRefs says %d",
					n, i, len(sec), f.SectionRefs(i, n))
			}
			total += uint64(len(sec))
			got = append(got, sec...)
		}
		if total != f.Refs() {
			t.Fatalf("n=%d: sections total %d refs, file has %d", n, total, f.Refs())
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("n=%d: ref %d = %v, want %v", n, i, got[i], refs[i])
			}
		}
	}
}

// Degenerate section coordinates — zero or negative counts, indices
// outside [0, n) — return empty readers rather than panicking or
// producing misaligned cursors, so shard counts computed from flag
// values need no pre-validation.
func TestV2SectionDegenerateInputsAreEmpty(t *testing.T) {
	f, err := NewFileBytes(encodeV2(t, genRefs(10, 1), 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int{{-1, 4}, {4, 4}, {0, 0}, {0, -1}, {-7, -3}, {1000, 2}} {
		i, n := c[0], c[1]
		got, gerr := f.Section(i, n).Read(make([]Ref, 16))
		if got != 0 || gerr != io.EOF {
			t.Errorf("Section(%d, %d).Read = (%d, %v), want (0, EOF)", i, n, got, gerr)
		}
		if refs := f.SectionRefs(i, n); refs != 0 {
			t.Errorf("SectionRefs(%d, %d) = %d, want 0", i, n, refs)
		}
		if r := f.Preroll(i, n, 100); r.Refs() != 0 {
			t.Errorf("Preroll(%d, %d, 100) covers %d refs, want 0", i, n, r.Refs())
		}
	}
}

// SectionStart must equal the sum of all earlier sections' refs — the
// global timestamp of the section's first reference — for any split.
func TestV2SectionStart(t *testing.T) {
	refs := genRefs(10_000, 9)
	f, err := NewFileBytes(encodeV2(t, refs, 256))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 8, f.Blocks(), f.Blocks() + 5} {
		var cum uint64
		for i := 0; i < n; i++ {
			if start := f.SectionStart(i, n); start != cum {
				t.Fatalf("n=%d: SectionStart(%d) = %d, want %d", n, i, start, cum)
			}
			cum += f.SectionRefs(i, n)
		}
	}
}

// Preroll(i, n, w) must end exactly where section i begins and cover at
// least w references whenever the file holds that many before the
// section; replaying preroll then section therefore replays a suffix of
// the serial stream ending at the section's end.
func TestV2Preroll(t *testing.T) {
	refs := genRefs(10_000, 9)
	f, err := NewFileBytes(encodeV2(t, refs, 256))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 8} {
		for i := 0; i < n; i++ {
			for _, w := range []uint64{0, 1, 100, 5_000, 1 << 40} {
				pr := f.Preroll(i, n, w)
				start := f.SectionStart(i, n)
				covered := pr.Refs()
				if i == 0 || w == 0 {
					if covered != 0 {
						t.Fatalf("n=%d i=%d w=%d: preroll covers %d refs, want 0", n, i, w, covered)
					}
					continue
				}
				if covered < w && covered != start {
					t.Fatalf("n=%d i=%d w=%d: preroll covers %d refs (< w) without reaching file start (%d preceding)",
						n, i, w, covered, start)
				}
				got := readAll(t, pr, 777)
				if uint64(len(got)) != covered {
					t.Fatalf("n=%d i=%d w=%d: preroll yielded %d refs, Refs() says %d", n, i, w, len(got), covered)
				}
				for j, r := range got {
					want := refs[start-covered+uint64(j)]
					if r != want {
						t.Fatalf("n=%d i=%d w=%d: preroll ref %d = %v, want %v", n, i, w, j, r, want)
					}
				}
			}
		}
	}
}

func TestV2Reset(t *testing.T) {
	refs := genRefs(3000, 4)
	f, err := NewFileBytes(encodeV2(t, refs, 512))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Section(1, 2)
	first := readAll(t, r, 700)
	r.Reset()
	second := readAll(t, r, 131)
	if len(first) != len(second) {
		t.Fatalf("after Reset: %d refs, first pass %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("after Reset: ref %d = %v, want %v", i, second[i], first[i])
		}
	}
	if r.Refs() != uint64(len(first)) {
		t.Fatalf("Refs() = %d, want %d", r.Refs(), len(first))
	}
}

// Corrupt and truncated inputs must fail with an error, never a panic
// or a silent wrong decode past the corruption.
func TestV2Corrupt(t *testing.T) {
	good := encodeV2(t, genRefs(1000, 7), 128)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("TP92\x00")},
		{"magic only", []byte(v2Magic)},
		{"bad version", append([]byte(v2Magic), 0xFF, 0x01)},
		{"zero refs block", append(append([]byte(v2Magic), 1), 0, 0, 0, 0, 0)},
		{"huge refs block", append(append([]byte(v2Magic), 1), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0)},
		{"truncated header", good[:len(v2Magic)+3]},
		{"truncated payload", good[:len(good)/2]},
		{"lane overrun", append(append([]byte(v2Magic), 1), 4, 0xFF, 0xFF, 0, 0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := NewFileBytes(c.data)
			if err != nil {
				return // rejected at parse: fine
			}
			batch := make([]Ref, 64)
			for i := 0; i < 1000; i++ {
				if _, err := f.Reader().Read(batch); err != nil {
					return // rejected at decode: fine
				}
			}
		})
	}
}

// Corrupting lane bytes (not just headers) must surface as a decode
// error or wrong-but-bounded refs, never a panic.
func TestV2CorruptLaneBytes(t *testing.T) {
	good := encodeV2(t, genRefs(500, 11), 64)
	for i := len(v2Magic) + 1; i < len(good); i += 7 {
		data := append([]byte(nil), good...)
		data[i] ^= 0xA5
		f, err := NewFileBytes(data)
		if err != nil {
			continue
		}
		r := f.Reader()
		batch := make([]Ref, 256)
		for {
			if _, err := r.Read(batch); err != nil {
				break
			}
		}
	}
}

func TestOpenFileAndClose(t *testing.T) {
	refs := genRefs(4000, 3)
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := os.WriteFile(path, encodeV2(t, refs, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, f.Reader(), 999)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %v, want %v", i, got[i], refs[i])
		}
	}
	if f.Size() == 0 || f.BytesPerRef() <= 0 {
		t.Fatalf("Size() = %d, BytesPerRef() = %f", f.Size(), f.BytesPerRef())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

func TestOpenFileNotV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := os.WriteFile(path, []byte("TP92 nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted a v1 file")
	}
}

func TestOpenPathSniffing(t *testing.T) {
	refs := genRefs(300, 5)
	dir := t.TempDir()
	write := func(name string, enc func(io.Writer) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	paths := map[string]string{
		"v2": write("a.trc", func(w io.Writer) error {
			tw := NewV2Writer(w)
			if err := tw.Write(refs); err != nil {
				return err
			}
			return tw.Flush()
		}),
		"binary": write("b.trc", func(w io.Writer) error {
			tw := NewWriter(w)
			if err := tw.Write(refs); err != nil {
				return err
			}
			return tw.Flush()
		}),
		"text": write("c.trc", func(w io.Writer) error {
			tw := NewTextWriter(w)
			if err := tw.Write(refs); err != nil {
				return err
			}
			return tw.Flush()
		}),
	}
	for format, path := range paths {
		for _, ask := range []string{"auto", "", format} {
			r, closer, err := OpenPath(path, ask)
			if err != nil {
				t.Fatalf("OpenPath(%s as %q): %v", format, ask, err)
			}
			got := readAll(t, r, 100)
			if err := closer.Close(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(refs) {
				t.Fatalf("OpenPath(%s as %q): %d refs, want %d", format, ask, len(got), len(refs))
			}
			for i := range refs {
				if got[i] != refs[i] {
					t.Fatalf("OpenPath(%s as %q): ref %d = %v, want %v", format, ask, i, got[i], refs[i])
				}
			}
		}
	}
	if _, _, err := OpenPath(paths["v2"], "nonsense"); err == nil {
		t.Fatal("OpenPath accepted a bogus format")
	}
	if _, _, err := OpenPath(paths["binary"], "v2"); err == nil {
		t.Fatal("OpenPath read a v1 file as v2")
	}
	if _, _, err := OpenPath(filepath.Join(dir, "missing.trc"), "auto"); err == nil {
		t.Fatal("OpenPath opened a missing file")
	}
}

// The tentpole's zero-allocation guarantee: steady-state MapReader.Read
// must not allocate at all.
func TestMapReaderReadAllocs(t *testing.T) {
	f, err := NewFileBytes(encodeV2(t, genRefs(200_000, 6), V2BlockRefs))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Reader()
	batch := make([]Ref, 8192)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Read(batch); err != nil {
			r.Reset()
		}
	})
	if allocs != 0 {
		t.Fatalf("MapReader.Read allocates %v times per batch, want 0", allocs)
	}
}

// benchRefs builds a deterministic mixed instruction/data stream whose
// shape — sequential code with occasional branches, bursty sequential
// scans, strided column walks and scattered lookups — matches the
// synthetic workloads without importing them (workload imports trace).
func benchRefs(n int) []Ref {
	refs := make([]Ref, 0, n)
	var pc, a, b int64 = 0x0100_0000, 0x1000_0000, 0x2000_0000
	rng := uint64(99)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	for len(refs) < n {
		for j := 2 + int(next()>>62); j > 0; j-- {
			refs = append(refs, Ref{Addr: addr.VA(pc), Kind: Instr})
			pc += 4
		}
		if next()&0x1F == 0 {
			pc += int64(next()>>52) &^ 3 // branch
		}
		switch next() >> 62 {
		case 0, 1: // sequential scan burst (cluster streams)
			for j := 0; j < 6; j++ {
				refs = append(refs, Ref{Addr: addr.VA(a), Kind: Load})
				a += 8
			}
		case 2: // strided column walk
			for j := 0; j < 3; j++ {
				refs = append(refs, Ref{Addr: addr.VA(b), Kind: Store})
				b += 4096
			}
		default: // scattered lookup
			refs = append(refs, Ref{Addr: addr.VA(0x3000_0000 + int64(next()>>40)), Kind: Load})
		}
	}
	return refs[:n]
}

// BenchmarkMapReader measures single-cursor v2 decode throughput;
// ns/op is per reference. Compare against BenchmarkBinaryReader (the
// v1 streaming decoder over the same references; ~3x slower per ref,
// with the gap bounded by the 16-byte-per-Ref output store traffic
// both decoders share) and BenchmarkFileParallel for the
// section-per-worker scaling that motivates the format. Must run at 0
// allocs/op.
func BenchmarkMapReader(b *testing.B) {
	refs := benchRefs(1 << 20)
	data := encodeV2(b, refs, V2BlockRefs)
	f, err := NewFileBytes(data)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]Ref, 8192)
	r := f.Reader()
	b.ResetTimer()
	for n := 0; n < b.N; { // ns/op is per reference
		m, err := r.Read(batch)
		n += m
		if err != nil {
			r.Reset()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "refs/s")
	b.ReportMetric(float64(len(data))/float64(len(refs)), "bytes/ref")
}

// BenchmarkBinaryReader is the v1 streaming decoder baseline over the
// same references.
func BenchmarkBinaryReader(b *testing.B) {
	refs := benchRefs(1 << 20)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(refs); err != nil {
		b.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	batch := make([]Ref, 8192)
	rd := bytes.NewReader(data)
	r := NewBinaryReader(rd)
	b.ResetTimer()
	for n := 0; n < b.N; { // ns/op is per reference
		m, err := r.Read(batch)
		n += m
		if err != nil {
			rd.Reset(data)
			r = NewBinaryReader(rd)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "refs/s")
	b.ReportMetric(float64(len(data))/float64(len(refs)), "bytes/ref")
}

// BenchmarkFileParallel decodes disjoint sections of one shared File
// from GOMAXPROCS goroutines — the parallel-engine access pattern the
// block index exists for. ns/op is per reference summed over workers.
func BenchmarkFileParallel(b *testing.B) {
	refs := benchRefs(1 << 20)
	data := encodeV2(b, refs, V2BlockRefs)
	f, err := NewFileBytes(data)
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		// Each worker cycles over the whole file via its own cursor;
		// cursors share the mapping but no mutable state.
		r := f.Reader()
		batch := make([]Ref, 8192)
		for pb.Next() {
			for n := 0; n < 8192; {
				m, err := r.Read(batch)
				n += m
				if err != nil {
					r.Reset()
				}
			}
		}
	})
	b.ReportMetric(float64(b.N)*8192/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkV2Writer measures encode throughput (ns/op per 1000 refs).
func BenchmarkV2Writer(b *testing.B) {
	refs := benchRefs(1 << 20)
	b.ResetTimer()
	w := NewV2Writer(io.Discard)
	for n := 0; n < b.N; n += 1000 {
		lo := n % (len(refs) - 1000)
		if err := w.Write(refs[lo : lo+1000]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}
