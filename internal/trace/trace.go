// Package trace defines the memory-reference stream model shared by all
// simulators, plus binary and text trace codecs and stream adapters.
//
// The paper drives its simulators with dynamically generated SPARC traces
// (Section 3.1). We model a trace as a stream of Ref values: a virtual
// address plus a reference kind (instruction fetch, load, or store).
// Streams are pulled in batches through the Reader interface so that
// multi-million-reference simulations do not pay an interface call per
// reference.
package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"twopage/internal/addr"
)

// Kind classifies a memory reference.
type Kind uint8

// Reference kinds. Instruction fetches are distinct because the traced
// SPARC programs fetch every instruction from memory, which is what makes
// RPI (references per instruction) exceed 1.0 in Table 3.1.
const (
	Instr Kind = iota // instruction fetch
	Load              // data read
	Store             // data write
)

// String returns the single-letter mnemonic used by the text trace format.
func (k Kind) String() string {
	switch k {
	case Instr:
		return "I"
	case Load:
		return "L"
	case Store:
		return "S"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref is one memory reference of a trace.
type Ref struct {
	Addr addr.VA // virtual address
	Kind Kind    // instruction fetch, load, or store
}

// Reader is the pull interface for reference streams. Read fills batch
// with up to len(batch) references and returns how many were written.
// It returns io.EOF (possibly alongside n > 0 being zero) when the
// stream is exhausted, following the io.Reader contract: callers must
// process the n references returned before considering the error.
type Reader interface {
	Read(batch []Ref) (n int, err error)
}

// Drain pulls the entire stream through fn in batches. fn is invoked
// with each non-empty batch in order. It is the canonical driver loop
// shared by all simulators.
func Drain(r Reader, fn func([]Ref)) (total uint64, err error) {
	return DrainContext(context.Background(), r, fn)
}

// DrainContext is Drain with cooperative cancellation: the context is
// checked between batches, so a multi-million-reference simulation
// stops within one batch (8192 references) of cancellation. The
// context's error is returned verbatim, letting callers distinguish
// cancellation from stream failures with errors.Is.
func DrainContext(ctx context.Context, r Reader, fn func([]Ref)) (total uint64, err error) {
	buf := make([]Ref, 8192)
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		n, err := r.Read(buf)
		if n > 0 {
			fn(buf[:n])
			total += uint64(n)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return total, nil
			}
			return total, err
		}
	}
}

// Count consumes the stream and returns per-kind reference counts.
type Count struct {
	Instr, Load, Store uint64
}

// Total returns the total number of references counted.
func (c Count) Total() uint64 { return c.Instr + c.Load + c.Store }

// Data returns the number of data references (loads + stores).
func (c Count) Data() uint64 { return c.Load + c.Store }

// RPI returns references per instruction: with every instruction fetched
// from memory, RPI = total refs / instruction fetches (Section 3.2 uses
// RPI to convert between miss ratio and misses per instruction).
func (c Count) RPI() float64 {
	if c.Instr == 0 {
		return 0
	}
	return float64(c.Total()) / float64(c.Instr)
}

// CountRefs drains r and tallies reference kinds.
func CountRefs(r Reader) (Count, error) {
	var c Count
	_, err := Drain(r, func(b []Ref) {
		for _, ref := range b {
			switch ref.Kind {
			case Instr:
				c.Instr++
			case Load:
				c.Load++
			default:
				c.Store++
			}
		}
	})
	return c, err
}

// SliceReader serves references from an in-memory slice. Useful in tests
// and for small replay scenarios.
type SliceReader struct {
	refs []Ref
	pos  int
}

// NewSliceReader returns a Reader over refs. The slice is not copied.
func NewSliceReader(refs []Ref) *SliceReader { return &SliceReader{refs: refs} }

// Read implements Reader.
func (s *SliceReader) Read(batch []Ref) (int, error) {
	if s.pos >= len(s.refs) {
		return 0, io.EOF
	}
	n := copy(batch, s.refs[s.pos:])
	s.pos += n
	if s.pos >= len(s.refs) {
		return n, io.EOF
	}
	return n, nil
}

// Reset rewinds the reader to the start of the slice.
func (s *SliceReader) Reset() { s.pos = 0 }

// Limit wraps r, truncating the stream after max references. It is how
// experiments apply their -scale knob to workload generators.
type Limit struct {
	r    Reader
	left uint64
}

// NewLimit returns a Reader that yields at most max references from r.
func NewLimit(r Reader, max uint64) *Limit { return &Limit{r: r, left: max} }

// Read implements Reader.
func (l *Limit) Read(batch []Ref) (int, error) {
	if l.left == 0 {
		return 0, io.EOF
	}
	if uint64(len(batch)) > l.left {
		batch = batch[:l.left]
	}
	n, err := l.r.Read(batch)
	l.left -= uint64(n)
	if l.left == 0 && err == nil {
		err = io.EOF
	}
	return n, err
}

// DecodeStats forwards to the wrapped reader's counters, so decode
// accounting survives the Limit wrapper registered workloads apply.
func (l *Limit) DecodeStats() DecodeStats {
	if dc, ok := l.r.(DecodeCounter); ok {
		return dc.DecodeStats()
	}
	return DecodeStats{}
}

// Tee wraps r, forwarding every batch it reads to fn before returning it
// to the caller. It lets one pass feed several consumers (e.g. a TLB
// simulator and a working-set tracker).
type Tee struct {
	r  Reader
	fn func([]Ref)
}

// NewTee returns a Reader that mirrors all references read from r to fn.
func NewTee(r Reader, fn func([]Ref)) *Tee { return &Tee{r: r, fn: fn} }

// Read implements Reader.
func (t *Tee) Read(batch []Ref) (int, error) {
	n, err := t.r.Read(batch)
	if n > 0 {
		t.fn(batch[:n])
	}
	return n, err
}

// DecodeStats forwards to the wrapped reader's counters.
func (t *Tee) DecodeStats() DecodeStats {
	if dc, ok := t.r.(DecodeCounter); ok {
		return dc.DecodeStats()
	}
	return DecodeStats{}
}

// Concat chains readers back to back.
type Concat struct {
	rs []Reader
}

// NewConcat returns a Reader that yields all of each reader in turn.
func NewConcat(rs ...Reader) *Concat { return &Concat{rs: rs} }

// Read implements Reader.
func (c *Concat) Read(batch []Ref) (int, error) {
	for len(c.rs) > 0 {
		n, err := c.rs[0].Read(batch)
		if errors.Is(err, io.EOF) {
			c.rs = c.rs[1:]
			if n > 0 {
				if len(c.rs) == 0 {
					return n, io.EOF
				}
				return n, nil
			}
			continue
		}
		return n, err
	}
	return 0, io.EOF
}

// ---------------------------------------------------------------------
// Binary trace format.
//
// Header: magic "TP92" then a uvarint count (0 = unknown/streamed).
// Records: per reference, one byte kind followed by a zig-zag varint
// delta from the previous address of that kind. Delta-encoding per kind
// compresses well because instruction fetches are mostly sequential and
// data streams are mostly strided.
// ---------------------------------------------------------------------

const binaryMagic = "TP92"

// Writer encodes references to the binary trace format.
type Writer struct {
	w    *bufio.Writer
	last [3]int64 // previous address per kind
	n    uint64
	head bool
}

// NewWriter returns a Writer emitting the binary trace format to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriterSize(w, 1<<16)} }

// Write encodes a batch of references.
func (tw *Writer) Write(batch []Ref) error {
	if !tw.head {
		tw.head = true
		if _, err := tw.w.WriteString(binaryMagic); err != nil {
			return err
		}
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], 0) // streamed; count unknown
		if _, err := tw.w.Write(tmp[:n]); err != nil {
			return err
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	for _, r := range batch {
		k := int(r.Kind)
		if k > 2 {
			return fmt.Errorf("trace: invalid kind %d", r.Kind)
		}
		if err := tw.w.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		delta := int64(r.Addr) - tw.last[k]
		tw.last[k] = int64(r.Addr)
		n := binary.PutVarint(tmp[:], delta)
		if _, err := tw.w.Write(tmp[:n]); err != nil {
			return err
		}
		tw.n++
	}
	return nil
}

// Flush flushes buffered output. Call once after the last Write.
func (tw *Writer) Flush() error {
	if !tw.head {
		// Even an empty trace gets a header.
		if err := tw.Write(nil); err != nil {
			return err
		}
	}
	return tw.w.Flush()
}

// Written returns how many references have been encoded.
func (tw *Writer) Written() uint64 { return tw.n }

// BinaryReader decodes the binary trace format.
type BinaryReader struct {
	br   *bufio.Reader
	last [3]int64
	head bool
	err  error
}

// NewBinaryReader returns a Reader decoding the binary format from r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{br: bufio.NewReaderSize(r, 1<<16)}
}

func (br *BinaryReader) readHeader() error {
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br.br, magic); err != nil {
		if errors.Is(err, io.EOF) {
			// Even an empty trace carries a header; a bare EOF here is a
			// malformed file, not a clean end of stream.
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("trace: short or missing header: %w", err)
	}
	if string(magic) != binaryMagic {
		return fmt.Errorf("trace: bad magic %q", magic)
	}
	if _, err := binary.ReadUvarint(br.br); err != nil {
		return fmt.Errorf("trace: bad header count: %w", err)
	}
	return nil
}

// Read implements Reader.
func (br *BinaryReader) Read(batch []Ref) (int, error) {
	if br.err != nil {
		return 0, br.err
	}
	if !br.head {
		br.head = true
		if err := br.readHeader(); err != nil {
			br.err = err
			return 0, err
		}
	}
	n := 0
	for n < len(batch) {
		kb, err := br.br.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				br.err = io.EOF
				return n, io.EOF
			}
			br.err = err
			return n, err
		}
		if kb > 2 {
			br.err = fmt.Errorf("trace: invalid kind byte %d", kb)
			return n, br.err
		}
		delta, err := binary.ReadVarint(br.br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			br.err = fmt.Errorf("trace: truncated record: %w", err)
			return n, br.err
		}
		br.last[kb] += delta
		batch[n] = Ref{Addr: addr.VA(br.last[kb]), Kind: Kind(kb)}
		n++
	}
	return n, nil
}

// ---------------------------------------------------------------------
// Text trace format: one reference per line, "<kind> <hex address>",
// e.g. "I 0x10234" / "L 0x2f000" / "S 0x2f008". Lines beginning with '#'
// and blank lines are ignored.
// ---------------------------------------------------------------------

// TextWriter encodes references to the text trace format.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter returns a TextWriter emitting to w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write encodes a batch of references, one per line.
func (tw *TextWriter) Write(batch []Ref) error {
	for _, r := range batch {
		if _, err := fmt.Fprintf(tw.w, "%s 0x%x\n", r.Kind, uint64(r.Addr)); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader decodes the text trace format.
type TextReader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewTextReader returns a Reader decoding the text format from r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &TextReader{sc: sc}
}

// Read implements Reader.
func (tr *TextReader) Read(batch []Ref) (int, error) {
	if tr.err != nil {
		return 0, tr.err
	}
	n := 0
	for n < len(batch) {
		if !tr.sc.Scan() {
			if err := tr.sc.Err(); err != nil {
				tr.err = err
			} else {
				tr.err = io.EOF
			}
			return n, tr.err
		}
		tr.line++
		line := strings.TrimSpace(tr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			tr.err = fmt.Errorf("trace: line %d: want 2 fields, got %d", tr.line, len(fields))
			return n, tr.err
		}
		var k Kind
		switch fields[0] {
		case "I", "i":
			k = Instr
		case "L", "l", "R", "r":
			k = Load
		case "S", "s", "W", "w":
			k = Store
		default:
			tr.err = fmt.Errorf("trace: line %d: unknown kind %q", tr.line, fields[0])
			return n, tr.err
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			tr.err = fmt.Errorf("trace: line %d: bad address %q: %w", tr.line, fields[1], err)
			return n, tr.err
		}
		batch[n] = Ref{Addr: addr.VA(v), Kind: k}
		n++
	}
	return n, nil
}
