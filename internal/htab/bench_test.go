package htab

import (
	"testing"

	"twopage/internal/kernelref"
)

// benchKeys is the shared deterministic key stream over a bounded key
// space, the page-number shape every kernel feeds the tables.
func benchKeys(n int, space uint64) []uint64 {
	return kernelref.Keys(n, space)
}

// The microbench pairs compare one htab operation against the same
// operation on a Go map, on identical key streams. They back the
// "htab_*" rows of BENCH_kernels.json.

func BenchmarkU64Put(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	h := NewU64(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Put(keys[i&(1<<16-1)], uint64(i))
	}
}

func BenchmarkGoMapPut(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	m := make(map[uint64]uint64, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m[keys[i&(1<<16-1)]] = uint64(i)
	}
}

func BenchmarkU64Get(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	h := NewU64(1 << 14)
	for _, k := range keys {
		h.Put(k, k)
	}
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := h.Get(keys[i&(1<<16-1)])
		sink += v
	}
	_ = sink
}

func BenchmarkGoMapGet(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	m := make(map[uint64]uint64, 1<<14)
	for _, k := range keys {
		m[k] = k
	}
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += m[keys[i&(1<<16-1)]]
	}
	_ = sink
}

// Churn alternates insert and delete, the window's steady state; it is
// the case tombstone schemes degrade on and backward shift does not.
func BenchmarkU64Churn(b *testing.B) {
	keys := benchKeys(1<<16, 1<<13)
	h := NewU64(1 << 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		if i&1 == 0 {
			h.Put(k, uint64(i))
		} else {
			h.Delete(k)
		}
	}
}

func BenchmarkGoMapChurn(b *testing.B) {
	keys := benchKeys(1<<16, 1<<13)
	m := make(map[uint64]uint64, 1<<13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		if i&1 == 0 {
			m[k] = uint64(i)
		} else {
			delete(m, k)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	keys := benchKeys(1<<16, 1<<12)
	c := NewCounter(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		if i&1 == 0 {
			c.Add(k, 1)
		} else if c.Get(k) > 0 {
			c.Add(k, -1)
		}
	}
}

func BenchmarkGoMapCounterAdd(b *testing.B) {
	keys := benchKeys(1<<16, 1<<12)
	m := make(map[uint64]int64, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		if i&1 == 0 {
			m[k]++
		} else if m[k] > 0 {
			if m[k] == 1 {
				delete(m, k)
			} else {
				m[k]--
			}
		}
	}
}
