// Package htab provides the flat, deterministic hash tables behind the
// per-reference simulation kernels.
//
// Every hot loop in the reproduction — the working-set step
// (internal/wss), the sliding-window ref-counts (internal/window), the
// promotion policy's large-chunk set (internal/policy), the MMU's
// resident-page index and the software page table (internal/mmu,
// internal/pagetable) — bottoms out in a lookup keyed by a page number,
// i.e. a uint64. A Go map pays, per operation: the runtime's generic
// hashing through a type descriptor, tophash probing across bucket
// cache lines, and GC write barriers on bucket pointers. Over the
// paper's passes (hundreds of millions of references, Sections 3.2–3.4)
// that is the dominant cost.
//
// The cure is the standard one from high-throughput record processing
// (cf. the 1BRC exemplars in the related-work set) and from
// all-associativity cache/TLB simulation: a single flat power-of-two
// array of key/value slots, Fibonacci multiplicative hashing, linear
// probing, and growth by doubling. Three concrete variants cover every
// kernel:
//
//   - U64: uint64 key → uint64 value (timestamps, arena indices,
//     touch bitmaps);
//   - Counter: uint64 key → int64 count, with remove-at-zero Add — the
//     shape of the window's reference counts;
//   - Set: uint64 key membership — the policy's large-chunk set.
//
// Determinism. The table's layout depends only on the sequence of
// inserts and deletes — there is no per-process seed — but probe-order
// iteration still reflects insertion history, so Iter is documented as
// order-unspecified and reserved for order-independent reductions;
// reporting paths use IterSorted, which visits keys in ascending
// numeric order. Deletion uses backward-shift compaction instead of
// tombstones: the probe chain after a delete is exactly the chain an
// insert-only history would have produced, so lookups never scan dead
// slots, load factor never lies, and iteration stays dense. (With
// tombstones, a long-running window — delete-heavy by construction —
// degrades to scanning graves; backward shift keeps Step O(1) for the
// whole pass.)
//
// The zero key is stored out of line (a flag plus a value), freeing
// key==0 to mark empty slots; page number 0 is a perfectly valid key
// in every kernel.
package htab

import (
	"sort"

	"twopage/internal/addr"
)

// fibMul is 2^64 / φ, the Fibonacci hashing multiplier: consecutive
// keys — the common case for page numbers walking an address range —
// spread maximally across the table, which keeps linear-probe clusters
// short precisely on the access patterns the simulators generate.
const fibMul = 0x9E3779B97F4A7C15

// minCap is the smallest slot count a table starts with.
const minCap = 8

// maxLoadNum/maxLoadDen cap the load factor at 3/4 before doubling;
// past that, linear-probe cluster lengths grow superlinearly.
const (
	maxLoadNum = 3
	maxLoadDen = 4
)

type slot struct {
	key uint64
	val uint64
}

// U64 is an open-addressing map from uint64 keys to uint64 values.
// The zero value is not usable; call NewU64.
type U64 struct {
	slots []slot
	mask  uint64
	shift uint // 64 - log2(len(slots)), for Fibonacci hashing
	n     int  // occupied slots, excluding the out-of-line zero key

	hasZero bool
	zeroVal uint64
}

// NewU64 returns a table pre-sized so that hint entries fit without
// growing. A hint of 0 gets the minimum capacity.
func NewU64(hint int) *U64 {
	t := &U64{}
	t.init(capFor(hint))
	return t
}

// capFor converts an entry-count hint into a power-of-two slot count
// honouring the maximum load factor.
func capFor(hint int) int {
	c := minCap
	for c*maxLoadNum < hint*maxLoadDen {
		c <<= 1
	}
	return c
}

func (t *U64) init(capacity int) {
	// The whole design — mask probing, Fibonacci shift — is silently
	// wrong for any non-power-of-two slot count; assert at the same
	// boundary the rest of the repo uses for geometry invariants.
	capacity = int(addr.MustPow2(addr.PageSize(capacity)))
	t.slots = make([]slot, capacity) //paperlint:ignore hotalloc construction and amortized doubling; the AllocsPerRun tests pin steady state to zero grows
	t.mask = uint64(capacity - 1)
	t.shift = 64 - uint(log2(capacity))
}

// log2 of an exact power of two.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// home returns the key's preferred slot index.
//
//paperlint:hot
func (t *U64) home(k uint64) uint64 { return (k * fibMul) >> t.shift }

// Len returns the number of stored entries.
func (t *U64) Len() int {
	if t.hasZero {
		return t.n + 1
	}
	return t.n
}

// Get returns the value stored for k.
//
//paperlint:hot
func (t *U64) Get(k uint64) (uint64, bool) {
	if k == 0 {
		return t.zeroVal, t.hasZero
	}
	i := t.home(k)
	for {
		s := t.slots[i]
		if s.key == k {
			return s.val, true
		}
		if s.key == 0 {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// Put stores v under k, replacing any previous value.
//
//paperlint:hot
func (t *U64) Put(k, v uint64) {
	if k == 0 {
		t.hasZero = true
		t.zeroVal = v
		return
	}
	i := t.home(k)
	for {
		s := &t.slots[i]
		if s.key == k {
			s.val = v
			return
		}
		if s.key == 0 {
			if (t.n+1)*maxLoadDen > len(t.slots)*maxLoadNum {
				t.grow()
				t.Put(k, v)
				return
			}
			s.key = k
			s.val = v
			t.n++
			return
		}
		i = (i + 1) & t.mask
	}
}

// Delete removes k, reporting whether it was present. Removal
// backward-shifts the following probe cluster so no tombstone is left:
// every surviving entry sits where a fresh insert-only build would have
// put it.
//
//paperlint:hot
func (t *U64) Delete(k uint64) bool {
	if k == 0 {
		had := t.hasZero
		t.hasZero = false
		t.zeroVal = 0
		return had
	}
	i := t.home(k)
	for {
		s := t.slots[i]
		if s.key == 0 {
			return false
		}
		if s.key == k {
			break
		}
		i = (i + 1) & t.mask
	}
	t.deleteAt(i)
	return true
}

// deleteAt empties slot i by backward-shift compaction: each following
// cluster member slides into the hole unless the hole is "before" its
// home position (cyclically), which would break its own probe chain.
//
//paperlint:hot
func (t *U64) deleteAt(i uint64) {
	j := i
	for {
		j = (j + 1) & t.mask
		s := t.slots[j]
		if s.key == 0 {
			break
		}
		h := t.home(s.key)
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.slots[i] = s
			i = j
		}
	}
	t.slots[i] = slot{}
	t.n--
}

// grow doubles the slot array and rehashes. Amortized over the inserts
// that forced it; never on the steady-state path of a pre-sized table.
func (t *U64) grow() {
	old := t.slots
	t.init(len(old) * 2)
	t.n = 0
	for _, s := range old {
		if s.key != 0 {
			t.Put(s.key, s.val)
		}
	}
}

// Iter calls fn for every entry in unspecified order. The order is
// deterministic for a fixed operation history but depends on it; use
// Iter only for order-independent reductions (sums, counts) and
// IterSorted everywhere the result can reach rendered output.
func (t *U64) Iter(fn func(k, v uint64)) {
	if t.hasZero {
		fn(0, t.zeroVal)
	}
	for _, s := range t.slots {
		if s.key != 0 {
			fn(s.key, s.val)
		}
	}
}

// AppendKeys appends every key to dst and returns it; order is
// unspecified (see Iter). Callers sort.
func (t *U64) AppendKeys(dst []uint64) []uint64 {
	if t.hasZero {
		dst = append(dst, 0)
	}
	for _, s := range t.slots {
		if s.key != 0 {
			dst = append(dst, s.key)
		}
	}
	return dst
}

// IterSorted calls fn for every entry in ascending key order. It
// allocates a scratch key slice; it is for reporting and verification
// paths, not the per-reference path.
func (t *U64) IterSorted(fn func(k, v uint64)) {
	keys := t.AppendKeys(make([]uint64, 0, t.Len()))
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		v, _ := t.Get(k)
		fn(k, v)
	}
}

// Counter is an open-addressing map from uint64 keys to int64 counts.
// A key whose count returns to zero is removed, so Len is always the
// number of keys with nonzero counts — exactly the "distinct active
// blocks" quantity the sliding window maintains.
type Counter struct {
	t U64
}

// NewCounter returns a counter table pre-sized for hint keys.
func NewCounter(hint int) *Counter {
	c := &Counter{}
	c.t.init(capFor(hint))
	return c
}

// Len returns the number of keys with nonzero counts.
func (c *Counter) Len() int { return c.t.Len() }

// Get returns k's count (zero if absent).
//
//paperlint:hot
func (c *Counter) Get(k uint64) int64 {
	v, _ := c.t.Get(k)
	return int64(v)
}

// Add adds d to k's count and returns the new count, removing the key
// when the count reaches zero. One probe traversal covers lookup,
// update, insert and remove — Step-shaped callers pay a single cluster
// scan per delta.
//
//paperlint:hot
func (c *Counter) Add(k uint64, d int64) int64 {
	t := &c.t
	if k == 0 {
		n := int64(t.zeroVal) + d
		if n == 0 {
			t.hasZero = false
			t.zeroVal = 0
			return 0
		}
		t.hasZero = true
		t.zeroVal = uint64(n)
		return n
	}
	i := t.home(k)
	for {
		s := &t.slots[i]
		if s.key == k {
			n := int64(s.val) + d
			if n == 0 {
				t.deleteAt(i)
				return 0
			}
			s.val = uint64(n)
			return n
		}
		if s.key == 0 {
			if d == 0 {
				return 0
			}
			if (t.n+1)*maxLoadDen > len(t.slots)*maxLoadNum {
				t.grow()
				return c.Add(k, d)
			}
			s.key = k
			s.val = uint64(d)
			t.n++
			return d
		}
		i = (i + 1) & t.mask
	}
}

// IterSorted calls fn for every nonzero count in ascending key order
// (reporting paths; allocates scratch).
func (c *Counter) IterSorted(fn func(k uint64, n int64)) {
	c.t.IterSorted(func(k, v uint64) { fn(k, int64(v)) })
}

// Set is an open-addressing set of uint64 keys.
type Set struct {
	t U64
}

// NewSet returns a set pre-sized for hint keys.
func NewSet(hint int) *Set {
	s := &Set{}
	s.t.init(capFor(hint))
	return s
}

// Len returns the number of members.
func (s *Set) Len() int { return s.t.Len() }

// Has reports whether k is a member.
//
//paperlint:hot
func (s *Set) Has(k uint64) bool {
	_, ok := s.t.Get(k)
	return ok
}

// Add inserts k, reporting whether it was newly added.
//
//paperlint:hot
func (s *Set) Add(k uint64) bool {
	if _, ok := s.t.Get(k); ok {
		return false
	}
	s.t.Put(k, 1)
	return true
}

// Remove deletes k, reporting whether it was a member.
//
//paperlint:hot
func (s *Set) Remove(k uint64) bool { return s.t.Delete(k) }

// IterSorted calls fn for every member in ascending order (reporting
// paths; allocates scratch).
func (s *Set) IterSorted(fn func(k uint64)) {
	s.t.IterSorted(func(k, _ uint64) { fn(k) })
}
