package htab

import (
	"math/rand"
	"sort"
	"testing"
)

func TestU64Basic(t *testing.T) {
	h := NewU64(0)
	if h.Len() != 0 {
		t.Fatalf("empty Len = %d", h.Len())
	}
	if _, ok := h.Get(42); ok {
		t.Fatal("Get on empty table hit")
	}
	h.Put(42, 7)
	h.Put(0, 9) // zero key is valid and stored out of line
	h.Put(42, 8)
	if v, ok := h.Get(42); !ok || v != 8 {
		t.Fatalf("Get(42) = %d, %v", v, ok)
	}
	if v, ok := h.Get(0); !ok || v != 9 {
		t.Fatalf("Get(0) = %d, %v", v, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if !h.Delete(42) || h.Delete(42) {
		t.Fatal("Delete(42) should succeed exactly once")
	}
	if !h.Delete(0) || h.Delete(0) {
		t.Fatal("Delete(0) should succeed exactly once")
	}
	if h.Len() != 0 {
		t.Fatalf("Len after deletes = %d", h.Len())
	}
}

func TestU64Growth(t *testing.T) {
	h := NewU64(0)
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		h.Put(i*64+1, i)
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Get(i*64 + 1); !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i*64+1, v, ok)
		}
	}
}

// TestDeleteBackwardShift drives deletions through a cluster of keys
// engineered to share probe chains: all map to a handful of home slots,
// so removing an early member must backward-shift the rest or later
// lookups break.
func TestDeleteBackwardShift(t *testing.T) {
	h := NewU64(64)
	// Keys colliding into the same neighbourhood: invert the Fibonacci
	// hash coarsely by picking keys whose product lands in the same top
	// bits. Brute-force a set of keys with equal home slot.
	var cluster []uint64
	want := uint64(3)
	for k := uint64(1); len(cluster) < 12; k++ {
		if h.home(k) == want {
			cluster = append(cluster, k)
		}
	}
	for i, k := range cluster {
		h.Put(k, uint64(i))
	}
	// Delete front-to-back, checking every survivor after each delete.
	for i, k := range cluster {
		if !h.Delete(k) {
			t.Fatalf("Delete(%d) missed", k)
		}
		for j := i + 1; j < len(cluster); j++ {
			if v, ok := h.Get(cluster[j]); !ok || v != uint64(j) {
				t.Fatalf("after deleting %d: Get(%d) = %d, %v", k, cluster[j], v, ok)
			}
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after deleting the cluster", h.Len())
	}
}

// TestU64Differential drives long random insert/update/delete sequences
// through U64 and a shadow Go map, asserting identical contents and
// identical sorted-key iteration after every phase — the property test
// backing the delete backward-shift path.
func TestU64Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewU64(0)
	shadow := map[uint64]uint64{}
	const ops = 200_000
	for op := 0; op < ops; op++ {
		// Small key space (0..511) forces heavy collision, reuse and
		// delete-then-reinsert traffic, including the zero key.
		k := uint64(rng.Intn(512))
		switch rng.Intn(3) {
		case 0, 1: // insert/update twice as often as delete
			v := rng.Uint64()
			h.Put(k, v)
			shadow[k] = v
		case 2:
			got := h.Delete(k)
			_, want := shadow[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, shadow %v", op, k, got, want)
			}
			delete(shadow, k)
		}
		if op%1024 == 0 {
			checkEqual(t, h, shadow)
		}
	}
	checkEqual(t, h, shadow)
}

func checkEqual(t *testing.T, h *U64, shadow map[uint64]uint64) {
	t.Helper()
	if h.Len() != len(shadow) {
		t.Fatalf("Len = %d, shadow %d", h.Len(), len(shadow))
	}
	for k, want := range shadow {
		if v, ok := h.Get(k); !ok || v != want {
			t.Fatalf("Get(%d) = %d, %v; shadow %d", k, v, ok, want)
		}
	}
	// Sorted iteration must visit exactly the shadow's sorted keys.
	wantKeys := make([]uint64, 0, len(shadow))
	for k := range shadow {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	var gotKeys []uint64
	h.IterSorted(func(k, v uint64) {
		gotKeys = append(gotKeys, k)
		if want := shadow[k]; v != want {
			t.Fatalf("IterSorted(%d) = %d, shadow %d", k, v, want)
		}
	})
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("IterSorted visited %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("IterSorted key[%d] = %d, want %d", i, gotKeys[i], wantKeys[i])
		}
	}
	// Unordered iteration covers the same multiset.
	seen := map[uint64]uint64{}
	h.Iter(func(k, v uint64) {
		if _, dup := seen[k]; dup {
			t.Fatalf("Iter visited key %d twice", k)
		}
		seen[k] = v
	})
	if len(seen) != len(shadow) {
		t.Fatalf("Iter visited %d keys, want %d", len(seen), len(shadow))
	}
}

// TestCounterDifferential mirrors the window's usage: ±1 deltas with
// remove-at-zero, checked against a shadow map.
func TestCounterDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewCounter(0)
	shadow := map[uint64]int64{}
	for op := 0; op < 200_000; op++ {
		k := uint64(rng.Intn(256))
		var d int64 = 1
		// Only decrement keys that exist, as the window does.
		if shadow[k] > 0 && rng.Intn(2) == 0 {
			d = -1
		}
		got := c.Add(k, d)
		shadow[k] += d
		if shadow[k] == 0 {
			delete(shadow, k)
		}
		if got != shadow[k] {
			t.Fatalf("op %d: Add(%d, %d) = %d, shadow %d", op, k, d, got, shadow[k])
		}
	}
	if c.Len() != len(shadow) {
		t.Fatalf("Len = %d, shadow %d", c.Len(), len(shadow))
	}
	for k, want := range shadow {
		if got := c.Get(k); got != want {
			t.Fatalf("Get(%d) = %d, shadow %d", k, got, want)
		}
	}
}

// TestSetDifferential checks Set against a shadow map[uint64]bool.
func TestSetDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSet(0)
	shadow := map[uint64]bool{}
	for op := 0; op < 200_000; op++ {
		k := uint64(rng.Intn(512))
		switch rng.Intn(3) {
		case 0, 1:
			if got, want := s.Add(k), !shadow[k]; got != want {
				t.Fatalf("op %d: Add(%d) = %v, want %v", op, k, got, want)
			}
			shadow[k] = true
		case 2:
			if got, want := s.Remove(k), shadow[k]; got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", op, k, got, want)
			}
			delete(shadow, k)
		}
		if s.Has(k) != shadow[k] {
			t.Fatalf("op %d: Has(%d) = %v, shadow %v", op, k, s.Has(k), shadow[k])
		}
	}
	if s.Len() != len(shadow) {
		t.Fatalf("Len = %d, shadow %d", s.Len(), len(shadow))
	}
	var last int64 = -1
	n := 0
	s.IterSorted(func(k uint64) {
		if int64(k) <= last {
			t.Fatalf("IterSorted out of order: %d after %d", k, last)
		}
		last = int64(k)
		if !shadow[k] {
			t.Fatalf("IterSorted visited non-member %d", k)
		}
		n++
	})
	if n != len(shadow) {
		t.Fatalf("IterSorted visited %d members, want %d", n, len(shadow))
	}
}

// FuzzU64 feeds byte-coded operation streams through U64 and a shadow
// map. Each 3-byte group is one op: opcode, key, value. Keys live in a
// one-byte space so the fuzzer reliably produces collide-update-delete
// interleavings that stress backward-shift deletion.
func FuzzU64(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 3, 1, 1, 0})
	f.Add([]byte{0, 0, 1, 1, 0, 0, 0, 0, 2, 1, 0, 0})
	seed := make([]byte, 0, 96)
	for i := byte(0); i < 32; i++ {
		seed = append(seed, 0, i, i) // insert 0..31
	}
	for i := byte(0); i < 16; i++ {
		seed = append(seed, 1, i, 0) // delete the first half
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		h := NewU64(0)
		shadow := map[uint64]uint64{}
		for len(data) >= 3 {
			op, k, v := data[0], uint64(data[1]), uint64(data[2])
			data = data[3:]
			switch op % 3 {
			case 0:
				h.Put(k, v)
				shadow[k] = v
			case 1:
				got := h.Delete(k)
				_, want := shadow[k]
				if got != want {
					t.Fatalf("Delete(%d) = %v, shadow %v", k, got, want)
				}
				delete(shadow, k)
			case 2:
				v, ok := h.Get(k)
				want, wantOK := shadow[k]
				if ok != wantOK || (ok && v != want) {
					t.Fatalf("Get(%d) = %d, %v; shadow %d, %v", k, v, ok, want, wantOK)
				}
			}
		}
		if h.Len() != len(shadow) {
			t.Fatalf("Len = %d, shadow %d", h.Len(), len(shadow))
		}
		for k, want := range shadow {
			if v, ok := h.Get(k); !ok || v != want {
				t.Fatalf("final Get(%d) = %d, %v; shadow %d", k, v, ok, want)
			}
		}
	})
}

// TestAllocsSteadyState pins Get/Put/Delete/Add/Has at zero
// steady-state allocations on a pre-sized table.
func TestAllocsSteadyState(t *testing.T) {
	h := NewU64(1 << 12)
	c := NewCounter(1 << 12)
	s := NewSet(1 << 12)
	for i := uint64(0); i < 1<<11; i++ {
		h.Put(i, i)
		c.Add(i, 1)
		s.Add(i)
	}
	i := uint64(0)
	if avg := testing.AllocsPerRun(5000, func() {
		k := i % (1 << 11)
		h.Put(k, i)
		h.Get(k)
		h.Delete(k)
		h.Put(k, i)
		c.Add(k, 1)
		c.Add(k, -1)
		s.Has(k)
		i++
	}); avg != 0 {
		t.Errorf("steady-state ops allocate %.2f times per run, want 0", avg)
	}
}

func TestCapFor(t *testing.T) {
	cases := map[int]int{0: 8, 1: 8, 6: 8, 7: 16, 12: 16, 13: 32, 100: 256}
	for hint, want := range cases {
		if got := capFor(hint); got != want {
			t.Errorf("capFor(%d) = %d, want %d", hint, got, want)
		}
	}
}
