package experiments

import (
	"context"
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/engine"
	"twopage/internal/mmu"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
)

// pressureRun carries one (workload, memory, policy) MMU run's outcome.
type pressureRun struct {
	st   mmu.Stats
	frag uint64 // large allocations blocked by external fragmentation
}

// Pressure drives the full MMU (TLB + page table + buddy allocator +
// clock replacement) under shrinking physical memory, for the 4KB
// baseline and the two-page scheme. It quantifies the costs the paper
// names but cannot measure: page faults from the larger working set,
// promotion copy traffic, and large-page allocations blocked by
// external fragmentation.
func Pressure(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	memSizes := []int{16 << 10, 1 << 10, 512}
	var futs []*engine.Future[pressureRun]
	for _, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		for _, memKB := range memSizes {
			memKB := memKB
			for _, two := range []bool{false, true} {
				two := two
				label := fmt.Sprintf("pressure %s %dKB two=%t", s.Name, memKB, two)
				futs = append(futs, engine.Go(o.Engine, ctx, label,
					func(ctx context.Context) (pressureRun, error) {
						var pol policy.Assigner
						if two {
							pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
						} else {
							pol = policy.NewSingle(addr.Size4K)
						}
						m, err := mmu.New(mmu.Config{
							TLB:    tlb.NewFullyAssoc(16),
							Policy: pol,
							Memory: addr.PageSize(memKB << 10),
						})
						if err != nil {
							return pressureRun{}, err
						}
						st, err := m.Run(ctx, s.New(refs))
						if err != nil {
							return pressureRun{}, err
						}
						o.Engine.Record(label, m.Counters())
						return pressureRun{st: st, frag: m.Memory().Stats().FailedLargeFragmented}, nil
					}))
			}
		}
	}
	tbl := tableio.New("Extension: end-to-end MMU under memory pressure (per 1000 accesses)",
		"Program", "Memory", "Policy", "cyc/access", "faults", "evictions", "frag-blocked", "copiedKB")
	i := 0
	for _, s := range specs {
		for _, memKB := range memSizes {
			for _, two := range []bool{false, true} {
				name := "4KB"
				if two {
					name = "4KB/32KB"
				}
				run, err := futs[i].Wait(ctx)
				if err != nil {
					return nil, err
				}
				per := float64(run.st.Accesses) / 1000
				mem := fmt.Sprintf("%dKB", memKB)
				if memKB >= 1<<10 {
					mem = fmt.Sprintf("%dMB", memKB>>10)
				}
				tbl.Row(s.Name, mem, name,
					tableio.F(run.st.CyclesPerAccess(), 2),
					tableio.F(float64(run.st.Faults)/per, 2),
					tableio.F(float64(run.st.Evictions)/per, 2),
					fmt.Sprintf("%d", run.frag),
					tableio.F(float64(run.st.CopiedBytes)/1024, 0))
				i++
			}
		}
	}
	tbl.Note("Ample memory isolates TLB effects; tight memory exposes the working-set cost of large pages as faults.")
	return tbl, nil
}
