package experiments

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/mmu"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
)

// Pressure drives the full MMU (TLB + page table + buddy allocator +
// clock replacement) under shrinking physical memory, for the 4KB
// baseline and the two-page scheme. It quantifies the costs the paper
// names but cannot measure: page faults from the larger working set,
// promotion copy traffic, and large-page allocations blocked by
// external fragmentation.
func Pressure(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Extension: end-to-end MMU under memory pressure (per 1000 accesses)",
		"Program", "Memory", "Policy", "cyc/access", "faults", "evictions", "frag-blocked", "copiedKB")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		for _, memKB := range []int{16 << 10, 1 << 10, 512} {
			for _, two := range []bool{false, true} {
				var pol policy.Assigner
				name := "4KB"
				if two {
					pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
					name = "4KB/32KB"
				} else {
					pol = policy.NewSingle(addr.Size4K)
				}
				m, err := mmu.New(mmu.Config{
					TLB:    tlb.NewFullyAssoc(16),
					Policy: pol,
					Memory: addr.PageSize(memKB << 10),
				})
				if err != nil {
					return nil, err
				}
				st, err := m.Run(s.New(refs))
				if err != nil {
					return nil, err
				}
				per := float64(st.Accesses) / 1000
				frag := m.Memory().Stats().FailedLargeFragmented
				mem := fmt.Sprintf("%dKB", memKB)
				if memKB >= 1<<10 {
					mem = fmt.Sprintf("%dMB", memKB>>10)
				}
				tbl.Row(s.Name, mem, name,
					tableio.F(st.CyclesPerAccess(), 2),
					tableio.F(float64(st.Faults)/per, 2),
					tableio.F(float64(st.Evictions)/per, 2),
					fmt.Sprintf("%d", frag),
					tableio.F(float64(st.CopiedBytes)/1024, 0))
			}
		}
	}
	tbl.Note("Ample memory isolates TLB effects; tight memory exposes the working-set cost of large pages as faults.")
	return tbl, nil
}
