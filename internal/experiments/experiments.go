// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (Sections 4 and 5), plus ablations
// over the design choices DESIGN.md calls out. Each experiment knows its
// workloads, simulator configurations and output format; cmd/paper and
// the repository-level benchmarks are thin wrappers over this package.
//
// All experiments take an Options with a Scale knob: trace lengths and
// working-set windows shrink proportionally, so the same code serves
// quick smoke runs (scale 0.01), benchmarks, and full-fidelity
// reproductions (scale 1).
//
// Experiments do not simulate directly: they submit work units to an
// engine.Engine (see Options.Engine) and assemble rows from the
// returned futures in a fixed order. The engine bounds parallelism and
// memoizes identical (workload, refs, policy, TLB-config) passes, so a
// `paper all` run shares passes between experiments — and a Runner over
// several experiments produces output byte-identical to a sequential
// run at any parallelism level.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"sync"

	"twopage/internal/engine"
	"twopage/internal/obs"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

// Options parameterizes an experiment run. Construct with NewOptions
// (or pass Opt values to NewRunner); the zero value works but must go
// through normalize before use, which Run and the Runner do for you.
type Options struct {
	// Scale multiplies every workload's trace length (and, indirectly,
	// its working-set window T). 1.0 is the full default; 0 means 1.0.
	Scale float64
	// Workloads restricts the run to these program names; nil means the
	// experiment's default set (usually all twelve).
	Workloads []string
	// Out receives the rendered table; nil means os.Stdout.
	Out io.Writer
	// CSV renders comma-separated values instead of an aligned table.
	CSV bool
	// JSON renders the table as a JSON document (title, columns, rows)
	// instead of an aligned table. Takes precedence over CSV.
	JSON bool
	// Parallelism bounds concurrent simulation passes when Engine is
	// nil; <= 0 selects runtime.NumCPU(). Ignored when Engine is set.
	Parallelism int
	// Progress, when non-nil, receives one engine.Event per completed
	// work unit. It runs on worker goroutines and must be safe for
	// concurrent use. Ignored when Engine is set (attach an observer to
	// the engine instead).
	Progress func(engine.Event)
	// Engine executes and memoizes the simulation passes. Nil means a
	// private engine built from Parallelism and Progress; sharing one
	// Engine across experiments (as the Runner does) deduplicates
	// passes between them.
	Engine *engine.Engine
	// Collector, when non-nil, receives each executed unit's run-report
	// counters (internal/obs). Ignored when Engine is set (attach the
	// collector to the engine instead).
	Collector *obs.Collector
	// Shards splits each file-backed workload's trace into this many
	// sections simulated in parallel and merged (engine.WithSharding);
	// <= 1 keeps the serial, golden-pinned pass. Generated workloads
	// always run serial. Ignored when Engine is set.
	Shards int
	// Warmup is the per-shard warm-up length in references; 0 selects
	// engine.AutoWarmup of the policy window. Ignored unless Shards > 1.
	Warmup uint64
	// WalkPWC overrides the page-walk-cache capacity of the walkcpi
	// experiment family: 0 keeps walk.DefaultPWCEntries, a negative
	// value disables the PWCs. Flat-penalty experiments ignore it.
	WalkPWC int
	// WalkMemBytes overrides the walk model's memory-side cache size:
	// 0 keeps walk.DefaultMemBytes, negative disables the cache.
	WalkMemBytes int
}

// Opt mutates an Options (the functional-options constructor form).
type Opt func(*Options)

// WithScale sets the trace-length multiplier.
func WithScale(scale float64) Opt { return func(o *Options) { o.Scale = scale } }

// WithWorkloads restricts the run to the named programs.
func WithWorkloads(names ...string) Opt {
	return func(o *Options) { o.Workloads = append([]string(nil), names...) }
}

// WithOut directs rendered tables to w.
func WithOut(w io.Writer) Opt { return func(o *Options) { o.Out = w } }

// WithCSV toggles comma-separated output.
func WithCSV(csv bool) Opt { return func(o *Options) { o.CSV = csv } }

// WithJSON toggles JSON output.
func WithJSON(js bool) Opt { return func(o *Options) { o.JSON = js } }

// WithParallelism bounds concurrent simulation passes; <= 0 selects
// runtime.NumCPU().
func WithParallelism(n int) Opt { return func(o *Options) { o.Parallelism = n } }

// WithProgress registers a per-unit progress callback.
func WithProgress(fn func(engine.Event)) Opt { return func(o *Options) { o.Progress = fn } }

// WithEngine shares an existing engine (its parallelism and observer
// win over WithParallelism/WithProgress).
func WithEngine(e *engine.Engine) Opt { return func(o *Options) { o.Engine = e } }

// WithCollector attaches a run-report collector to the private engine
// normalize builds (a no-op when WithEngine supplies one).
func WithCollector(c *obs.Collector) Opt { return func(o *Options) { o.Collector = c } }

// WithShards splits file-backed traces into n sections simulated in
// parallel and merged; n <= 1 keeps the serial pass. warmup is the
// per-shard warm-up length (0 = auto from the policy window).
func WithShards(n int, warmup uint64) Opt {
	return func(o *Options) { o.Shards, o.Warmup = n, warmup }
}

// WithWalkParams overrides the walkcpi family's walk model: pwc is the
// page-walk-cache capacity and memBytes the memory-side cache size
// (0 keeps the walk package defaults, negative disables the component).
func WithWalkParams(pwc, memBytes int) Opt {
	return func(o *Options) { o.WalkPWC, o.WalkMemBytes = pwc, memBytes }
}

// NewOptions builds a normalized Options from functional options.
func NewOptions(opts ...Opt) *Options {
	o := &Options{}
	for _, fn := range opts {
		fn(o)
	}
	o.normalize()
	return o
}

// normalize fills defaults in place. It is idempotent; every entry
// point (Run, Runner, NewOptions) funnels through it, so experiment
// code can rely on Scale, Out and Engine being set.
func (o *Options) normalize() {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Engine == nil {
		var eopts []engine.Option
		if o.Progress != nil {
			eopts = append(eopts, engine.WithObserver(o.Progress))
		}
		if o.Collector != nil {
			eopts = append(eopts, engine.WithCollector(o.Collector))
		}
		if o.Shards > 1 {
			eopts = append(eopts, engine.WithSharding(engine.ShardPlan{Shards: o.Shards, Warmup: o.Warmup}))
		}
		o.Engine = engine.New(o.Parallelism, eopts...)
	}
}

// specs resolves the option's workload set (default all) to specs.
func (o *Options) specs() ([]workload.Spec, error) {
	if len(o.Workloads) == 0 {
		return workload.All(), nil
	}
	var out []workload.Spec
	for _, name := range o.Workloads {
		s, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// render writes the table in the option's format.
func (o *Options) render(tbl *tableio.Table, w io.Writer) error {
	switch {
	case o.JSON:
		return tbl.JSON(w)
	case o.CSV:
		return tbl.CSV(w)
	default:
		_, err := tbl.WriteTo(w)
		return err
	}
}

// refsFor scales a workload's default trace length, with a floor that
// keeps windows meaningful.
func refsFor(s workload.Spec, scale float64) uint64 {
	r := uint64(float64(s.DefaultRefs) * scale)
	if r < 40_000 {
		r = 40_000
	}
	return r
}

// windowFor derives the working-set / policy window T from the trace
// length. The paper pairs ~10^8-10^9-reference traces with T = 10M,
// i.e. T is a few percent to ~10% of the trace; we use refs/8.
func windowFor(refs uint64) int {
	t := refs / 8
	if t < 5_000 {
		t = 5_000
	}
	return int(t)
}

// twoWayCfg describes an n-entry 2-way set-associative TLB with the
// given index scheme — the organization of Figure 5.2 and Table 5.1 —
// in the declarative form the engine memoizes on.
func twoWayCfg(entries int, ix tlb.IndexScheme) tlb.Config {
	return tlb.Config{Entries: entries, Ways: 2, Index: ix}
}

// twoWay builds the same organization as a live TLB, for experiments
// that drive simulators directly inside opaque engine tasks.
func twoWay(entries int, ix tlb.IndexScheme) tlb.TLB {
	return tlb.MustNew(twoWayCfg(entries, ix))
}

// faCfg is a fully associative TLB of the given size in declarative form.
func faCfg(entries int) tlb.Config {
	return tlb.Config{Entries: entries, Ways: entries}
}

// Experiment couples an identifier with a runner.
type Experiment struct {
	// ID is the command-line name, e.g. "table3.1".
	ID string
	// Title is the table heading.
	Title string
	// About summarizes what the paper artifact shows.
	About string
	// Run executes the experiment and returns the rendered table. The
	// Options must be normalized (NewOptions, or call normalize); Run
	// submits work units to o.Engine and honours ctx cancellation.
	Run func(ctx context.Context, o *Options) (*tableio.Table, error)
}

var registry = []Experiment{
	{
		ID:    "table3.1",
		Title: "Table 3.1: Workloads",
		About: "trace length, references per instruction and average 4KB working-set size per program",
		Run:   Table31,
	},
	{
		ID:    "fig4.1",
		Title: "Figure 4.1: WS_Normalized vs single page size",
		About: "normalized working-set growth for 8KB..64KB pages (paper: ~1.67x at 32KB, ~2.03x at 64KB on average)",
		Run:   Fig41,
	},
	{
		ID:    "fig4.2",
		Title: "Figure 4.2: WS_Normalized, single sizes vs two page sizes",
		About: "the two-page scheme's working-set cost (paper: 1.01-1.22, average ~1.1) against 8/16/32KB single sizes",
		Run:   Fig42,
	},
	{
		ID:    "fig5.1",
		Title: "Figure 5.1: CPI_TLB, 16-entry fully associative TLB",
		About: "32KB pages cut CPI_TLB ~8x; the two-page scheme lands close to 32KB despite the 25% penalty",
		Run:   Fig51,
	},
	{
		ID:    "fig5.2",
		Title: "Figure 5.2: CPI_TLB, 16/32-entry two-way set-associative TLBs",
		About: "set-associative results are mixed: most programs win with two page sizes, espresso/worm degrade, tomcatv thrashes",
		Run:   Fig52,
	},
	{
		ID:    "table5.1",
		Title: "Table 5.1: Comparison of indexing schemes",
		About: "4KB vs 4KB-with-large-index vs two-page large-index vs two-page exact-index, 16- and 32-entry two-way",
		Run:   Table51,
	},
	{
		ID:    "deltamp",
		Title: "Critical miss-penalty increase Δmp(4KB/32KB)",
		About: "how much extra miss penalty the two-page scheme can absorb and still beat 4KB (paper: 30%-1200% for the winners)",
		Run:   DeltaMP,
	},
	{
		ID:    "sensitivity",
		Title: "Section 4: sensitivity of WS_Normalized to T",
		About: "the working-set trends are insensitive to halving/doubling T (paper varies T over 10/25/50M)",
		Run:   SensitivityT,
	},
	{
		ID:    "indexing",
		Title: "Section 5.2.1: large-page index with no large pages allocated",
		About: "hardware indexed by the large page number degrades badly when software never allocates large pages",
		Run:   Indexing,
	},
	{
		ID:    "threshold",
		Title: "Ablation: promotion threshold sweep",
		About: "CPI_TLB, working-set cost and large-page usage as the promote threshold varies over 1..8 blocks",
		Run:   ThresholdSweep,
	},
	{
		ID:    "combos",
		Title: "Ablation: 4KB/16KB vs 4KB/32KB vs 4KB/64KB",
		About: "the page-size combinations the authors measured but could not print (Section 3.2)",
		Run:   Combos,
	},
	{
		ID:    "split",
		Title: "Ablation: split vs unified two-page TLBs",
		About: "Section 2.2 option (c): separate per-size TLBs against a unified exact-index TLB and fully associative",
		Run:   SplitVsUnified,
	},
	{
		ID:    "replacement",
		Title: "Ablation: replacement policy (LRU/FIFO/random)",
		About: "the paper assumes LRU; how much replacement matters at these tiny TLB sizes",
		Run:   ReplacementSweep,
	},
	{
		ID:    "multiprog",
		Title: "Extension: multiprogramming (ASID vs flush)",
		About: "the workload class the paper could not trace: round-robin process mixes, with and without TLB flushing on context switch",
		Run:   Multiprog,
	},
	{
		ID:    "misshandling",
		Title: "Extension: miss-handler organizations",
		About: "two-level walk vs hashed tables (both probe orders) vs a software translation cache, per Section 2.3's sketch",
		Run:   MissHandling,
	},
	{
		ID:    "sharedmem",
		Title: "Extension: multiprogrammed MMU under shared memory",
		About: "four processes share physical memory through the full MMU: the paper's two missing dimensions combined",
		Run:   SharedMem,
	},
	{
		ID:    "pressure",
		Title: "Extension: MMU under memory pressure",
		About: "full demand-paging MMU: faults, evictions, promotion copies and fragmentation as memory shrinks",
		Run:   Pressure,
	},
	{
		ID:    "phases",
		Title: "Extension: phased program behaviour",
		About: "why the policy is dynamic: demotion reclaims large mappings after a dense phase ends; promote-forever policies cannot",
		Run:   Phases,
	},
	{
		ID:    "designspace",
		Title: "Extension: one-pass design-space sweep",
		About: "Section 3.3's methodology reproduced: ~96 TLB configurations from one stack-simulation pass, time-compared with a direct simulation",
		Run:   DesignSpace,
	},
	{
		ID:    "accesscost",
		Title: "Extension: exact-index access strategies",
		About: "Section 2.2 options priced: parallel probe vs sequential reprobe vs split TLBs vs a two-level hierarchy",
		Run:   AccessCost,
	},
	{
		ID:    "policies",
		Title: "Extension: page-size assignment policies",
		About: "the paper's windowed policy vs a profile-derived static oracle vs a promote-once cumulative policy",
		Run:   Policies,
	},
	{
		ID:    "diskio",
		Title: "Extension: disk paging amortization",
		About: "Section 1's third large-page advantage: positioning cost amortized over bigger transfers, measured end to end",
		Run:   DiskIO,
	},
	{
		ID:    "protect",
		Title: "Extension: protection granularity",
		About: "Section 1's cost: sub-page write protection causes spurious faults on large pages; a promotion veto is the OS fix",
		Run:   Protect,
	},
	{
		ID:    "cachetlb",
		Title: "Extension: L1 tagging vs TLB pressure",
		About: "Section 1's argument quantified: physically tagged caches put the TLB on every access, virtually tagged only on L1 misses",
		Run:   CacheTLB,
	},
	{
		ID:    "conflict",
		Title: "Extension: victim buffers and prefetching",
		About: "conflict-mitigation hardware for two-page set-associative TLBs (tomcatv's cure without full associativity)",
		Run:   Conflict,
	},
	{
		ID:    "tlbsweep",
		Title: "Extension: TLB size sweep 8..128 entries",
		About: "all-associativity pass quantifying why the paper capped its TLBs below 64 entries",
		Run:   TLBSweep,
	},
	{
		ID:    "ladder3",
		Title: "Extension: three-size promotion ladder",
		About: "the Section 3.4 policy generalized to 4KB/32KB/256KB: threshold sweep per level against a NAPOT-contiguity alternative",
		Run:   Ladder3,
	},
	{
		ID:    "nindex",
		Title: "Extension: TLB indexing with three page sizes",
		About: "Section 2.2's indexing dilemma with N sizes: per-class index bits vs exact reprobe vs per-class split TLBs",
		Run:   NIndex,
	},
	{
		ID:    "walkcpi",
		Title: "Extension: modeled page walks — CPI_TLB as an emergent quantity",
		About: "the flat 25-cycle assumption vs a modeled radix walk with MMU walk caches and a memory-side cache; cycles per walk emerge from per-level counters",
		Run:   WalkCPI,
	},
	{
		ID:    "walkdeltamp",
		Title: "Extension: Δmp recomputed against the modeled walk penalty",
		About: "the Section 5 critical-miss-penalty headroom with the measured cycles-per-walk in place of the assumed 25% handler growth",
		Run:   WalkDeltaMP,
	},
}

// All returns the experiments in presentation order.
func All() []Experiment { return append([]Experiment(nil), registry...) }

// Get finds an experiment by ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Runner executes experiments against one shared engine, so passes
// common to several experiments are simulated once. Tables are always
// flushed to the output in request order, regardless of which
// experiment finishes first — output is byte-identical to a sequential
// run at any parallelism.
type Runner struct {
	opts *Options
}

// NewRunner builds a Runner from functional options.
func NewRunner(opts ...Opt) *Runner {
	return &Runner{opts: NewOptions(opts...)}
}

// Options exposes the runner's normalized options (shared, not a copy).
func (r *Runner) Options() *Options { return r.opts }

// Run executes one experiment and writes its table to the configured
// output.
func (r *Runner) Run(ctx context.Context, id string) error {
	e, err := Get(id)
	if err != nil {
		return err
	}
	tbl, err := e.Run(ctx, r.opts)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	return r.opts.render(tbl, r.opts.Out)
}

// RunAll executes the named experiments (all of them when ids is empty)
// concurrently over the shared engine and flushes their tables in
// request order. Each experiment runs on its own coordinator goroutine;
// the engine's pool bounds the actual simulation work. The first error
// (in request order) is returned, and tables after it are not written —
// matching what a sequential run would have printed.
func (r *Runner) RunAll(ctx context.Context, ids ...string) error {
	exps := make([]Experiment, 0, len(registry))
	if len(ids) == 0 {
		exps = append(exps, registry...)
	} else {
		for _, id := range ids {
			e, err := Get(id)
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}

	type outcome struct {
		buf bytes.Buffer
		err error
	}
	outs := make([]outcome, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			tbl, err := e.Run(ctx, r.opts)
			if err != nil {
				outs[i].err = fmt.Errorf("experiments: %s: %w", e.ID, err)
				return
			}
			outs[i].err = r.opts.render(tbl, &outs[i].buf)
		}(i, e)
	}
	wg.Wait()
	for i := range outs {
		if outs[i].err != nil {
			return outs[i].err
		}
		if _, err := outs[i].buf.WriteTo(r.opts.Out); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the experiment and writes its table to o.Out.
//
// Deprecated: use NewRunner(opts...).Run(ctx, id), which shares an
// engine across runs and honours cancellation. Kept so struct-literal
// call sites keep compiling during the migration.
func Run(id string, o Options) error {
	o.normalize()
	return (&Runner{opts: &o}).Run(context.Background(), id)
}
