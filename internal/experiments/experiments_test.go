package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"twopage/internal/tableio"
	"twopage/internal/workload"
)

// topts normalizes a literal Options for direct experiment calls.
func topts(o Options) *Options {
	o.normalize()
	return &o
}

// cellF parses a table cell as a float.
func cellF(t *testing.T, tbl *tableio.Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSpace(tbl.Cell(row, col)), "x")
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	s = strings.TrimSuffix(s, "MB")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float: %v", row, col, tbl.Cell(row, col), err)
	}
	return v
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.About == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if _, err := Get(e.ID); err != nil {
			t.Errorf("Get(%q): %v", e.ID, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
	if err := Run("nope", Options{}); err == nil {
		t.Fatal("Run of unknown id should error")
	}
}

func TestRunWritesOutput(t *testing.T) {
	var buf bytes.Buffer
	err := Run("table3.1", Options{Scale: 0.01, Out: &buf, Workloads: []string{"li"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "li") {
		t.Fatalf("output missing workload row:\n%s", buf.String())
	}
	buf.Reset()
	err = Run("table3.1", Options{Scale: 0.01, Out: &buf, CSV: true, Workloads: []string{"li"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "Program,") {
		t.Fatalf("CSV output malformed:\n%s", buf.String())
	}
}

func TestBadWorkloadPropagates(t *testing.T) {
	_, err := Table31(context.Background(), topts(Options{Scale: 0.01, Workloads: []string{"bogus"}}))
	if err == nil {
		t.Fatal("bogus workload should error")
	}
}

func TestTable31AllPrograms(t *testing.T) {
	tbl, err := Table31(context.Background(), topts(Options{Scale: 0.01}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 12 {
		t.Fatalf("rows = %d, want 12", tbl.Rows())
	}
	for r := 0; r < tbl.Rows(); r++ {
		rpi := cellF(t, tbl, r, 2)
		if rpi < 1.2 || rpi > 1.5 {
			t.Errorf("row %d: RPI %v implausible", r, rpi)
		}
	}
}

// Figure 4.1 invariants: normalized working sets are >= ~1 and
// non-decreasing with page size, for every program.
func TestFig41Shapes(t *testing.T) {
	tbl, err := Fig41(context.Background(), topts(Options{Scale: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 13 { // 12 programs + AVERAGE
		t.Fatalf("rows = %d", tbl.Rows())
	}
	for r := 0; r < tbl.Rows(); r++ {
		prev := 0.97
		for c := 1; c <= 4; c++ {
			v := cellF(t, tbl, r, c)
			if v < prev-0.02 {
				t.Errorf("row %d (%s): WS_norm not monotone: col %d = %v after %v",
					r, tbl.Cell(r, 0), c, v, prev)
			}
			prev = v
		}
	}
	// The paper's qualitative claim: meaningful average growth at 32KB.
	avg32 := cellF(t, tbl, 12, 3)
	if avg32 < 1.3 || avg32 > 3.0 {
		t.Errorf("average WS_norm(32KB) = %v, expected paper-like 1.3-3.0", avg32)
	}
}

// Figure 4.2 invariant: the two-page scheme is far cheaper in working
// set than the 32KB single size, and cheap in absolute terms (~1.1).
func TestFig42TwoPageIsCheap(t *testing.T) {
	tbl, err := Fig42(context.Background(), topts(Options{Scale: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	avgRow := tbl.Rows() - 1
	avg32 := cellF(t, tbl, avgRow, 3)
	avgTwo := cellF(t, tbl, avgRow, 4)
	if avgTwo >= avg32 {
		t.Fatalf("two-page WS (%v) should be well below 32KB (%v)", avgTwo, avg32)
	}
	if avgTwo < 0.99 || avgTwo > 1.45 {
		t.Fatalf("two-page avg WS_norm = %v, expected ~1.1", avgTwo)
	}
	for r := 0; r < avgRow; r++ {
		two := cellF(t, tbl, r, 4)
		if two < 0.98 {
			t.Errorf("row %s: two-page WS_norm %v below 1", tbl.Cell(r, 0), two)
		}
	}
}

// Figure 5.1 invariants on representative programs: 32KB crushes 4KB;
// the two-page scheme approaches 32KB for matrix300 and degrades for
// worm (which never promotes).
func TestFig51Shapes(t *testing.T) {
	tbl, err := Fig51(context.Background(), topts(Options{Scale: 0.04, Workloads: []string{"worm", "matrix300", "nasa7"}}))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]int{}
	for r := 0; r < tbl.Rows(); r++ {
		rows[tbl.Cell(r, 0)] = r
	}
	for name, r := range rows {
		cpi4, cpi32 := cellF(t, tbl, r, 1), cellF(t, tbl, r, 3)
		if cpi32 >= cpi4/2 {
			t.Errorf("%s: 32KB (%v) should be far below 4KB (%v)", name, cpi32, cpi4)
		}
	}
	r := rows["matrix300"]
	if two := cellF(t, tbl, r, 4); two > cellF(t, tbl, r, 1)/2 {
		t.Errorf("matrix300 two-page CPI %v should be well below 4KB %v",
			two, cellF(t, tbl, r, 1))
	}
	r = rows["worm"]
	if two := cellF(t, tbl, r, 4); two <= cellF(t, tbl, r, 1) {
		t.Errorf("worm two-page CPI %v should exceed 4KB %v (penalty without promotion)",
			two, cellF(t, tbl, r, 1))
	}
}

// Table 5.1 invariants: the large-page index without large pages (col 2)
// degrades vs col 1 for every program; tomcatv thrashes the two-page
// schemes; matrix300 wins with them.
func TestTable51Shapes(t *testing.T) {
	tbl, err := Table51(context.Background(), topts(Options{Scale: 0.04, Workloads: []string{"espresso", "matrix300", "tomcatv"}}))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.Rows(); r++ {
		name := tbl.Cell(r, 0)
		c4, cLg := cellF(t, tbl, r, 2), cellF(t, tbl, r, 3)
		if cLg <= c4 {
			t.Errorf("%s (row %d): 4KB large-index (%v) should degrade vs 4KB (%v)", name, r, cLg, c4)
		}
		twoEx := cellF(t, tbl, r, 5)
		switch name {
		case "tomcatv":
			if twoEx < 2*c4 {
				t.Errorf("tomcatv: two-page exact (%v) should thrash vs 4KB (%v)", twoEx, c4)
			}
		case "matrix300":
			if twoEx > c4/2 {
				t.Errorf("matrix300: two-page exact (%v) should win vs 4KB (%v)", twoEx, c4)
			}
		}
	}
}

func TestDeltaMPShapes(t *testing.T) {
	tbl, err := DeltaMP(context.Background(), topts(Options{Scale: 0.04, Workloads: []string{"matrix300", "worm"}}))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]int{}
	for r := 0; r < tbl.Rows(); r++ {
		rows[tbl.Cell(r, 0)] = r
	}
	if v := cellF(t, tbl, rows["matrix300"], 1); v <= 100 {
		t.Errorf("matrix300 FA Δmp = %v%%, expected large positive headroom", v)
	}
	if v := cellF(t, tbl, rows["worm"], 1); v >= 25 {
		t.Errorf("worm FA Δmp = %v%%, expected little headroom", v)
	}
}

func TestSensitivityTRuns(t *testing.T) {
	tbl, err := SensitivityT(context.Background(), topts(Options{Scale: 0.02, Workloads: []string{"matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	// Dense program: WS_norm(32K) stable in T within a loose band.
	lo, hi := cellF(t, tbl, 0, 1), cellF(t, tbl, 0, 3)
	if hi/lo > 1.5 {
		t.Errorf("matrix300 32KB WS_norm varies too much with T: %v..%v", lo, hi)
	}
}

func TestIndexingDegrades(t *testing.T) {
	tbl, err := Indexing(context.Background(), topts(Options{Scale: 0.03, Workloads: []string{"li", "espresso"}}))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.Rows(); r++ {
		if d := cellF(t, tbl, r, 3); d <= 1.0 {
			t.Errorf("%s: 16-entry degradation factor %v should exceed 1",
				tbl.Cell(r, 0), d)
		}
	}
}

func TestThresholdSweep(t *testing.T) {
	tbl, err := ThresholdSweep(context.Background(), topts(Options{Scale: 0.02, Workloads: []string{"matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 8 {
		t.Fatalf("rows = %d, want 8 thresholds", tbl.Rows())
	}
	// Higher thresholds promote less: large-ref% must be non-increasing
	// (allowing small noise).
	prev := 101.0
	for r := 0; r < tbl.Rows(); r++ {
		pct := cellF(t, tbl, r, 4)
		if pct > prev+5 {
			t.Errorf("threshold %s: large-ref%% %v rose vs %v", tbl.Cell(r, 1), pct, prev)
		}
		prev = pct
		// The paper's doubling bound holds at threshold >= 4.
		if thr := cellF(t, tbl, r, 1); thr >= 4 {
			if wsn := cellF(t, tbl, r, 3); wsn > 2.0 {
				t.Errorf("threshold %v: WS_norm %v exceeds the 2x bound", thr, wsn)
			}
		}
	}
}

func TestCombos(t *testing.T) {
	tbl, err := Combos(context.Background(), topts(Options{Scale: 0.02, Workloads: []string{"li"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 1 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// The half-or-more rule bounds the working-set cost at 2x for every
	// combination; note the cost is NOT monotone in the large-page size,
	// because bigger chunks are harder to fill to the threshold (li's
	// 24KB arenas never promote into 64KB chunks).
	for c := 4; c <= 6; c++ {
		w := cellF(t, tbl, 0, c)
		if w < 0.98 || w > 2.0 {
			t.Errorf("col %d: WS_norm %v outside [1, 2]", c, w)
		}
	}
}

func TestSplitVsUnified(t *testing.T) {
	tbl, err := SplitVsUnified(context.Background(), topts(Options{Scale: 0.02, Workloads: []string{"matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	// Full associativity is never worse than the unified 2-way here.
	if fa, un := cellF(t, tbl, 0, 4), cellF(t, tbl, 0, 1); fa > un+0.05 {
		t.Errorf("fully associative (%v) should not lose to 2-way (%v)", fa, un)
	}
}

func TestReplacementSweep(t *testing.T) {
	tbl, err := ReplacementSweep(context.Background(), topts(Options{Scale: 0.02, Workloads: []string{"li"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 1 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	for c := 1; c <= 6; c++ {
		if v := cellF(t, tbl, 0, c); v < 0 {
			t.Errorf("negative CPI in column %d", c)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := &Options{}
	o.normalize()
	if o.Scale != 1.0 || o.Out == nil || o.Engine == nil {
		t.Fatalf("normalize: %+v", o)
	}
	// normalize is idempotent: a second call must not replace the engine.
	e := o.Engine
	o.normalize()
	if o.Engine != e {
		t.Fatal("normalize replaced the engine on second call")
	}
	// The functional constructor applies options then normalizes.
	no := NewOptions(WithScale(0.5), WithWorkloads("li"), WithParallelism(2))
	if no.Scale != 0.5 || len(no.Workloads) != 1 || no.Engine == nil {
		t.Fatalf("NewOptions: %+v", no)
	}
	if no.Engine.Parallelism() != 2 {
		t.Fatalf("engine parallelism = %d, want 2", no.Engine.Parallelism())
	}
	if got := windowFor(80); got != 5_000 {
		t.Fatalf("windowFor floor = %d", got)
	}
	spec, err := workload.Get("li")
	if err != nil {
		t.Fatal(err)
	}
	if refsFor(spec, 1e-9) != 40_000 {
		t.Fatal("refsFor floor not applied")
	}
}

func TestMultiprogShapes(t *testing.T) {
	tbl, err := Multiprog(context.Background(), topts(Options{Scale: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 6 { // degrees 1,2,4 x {asid, flush}
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// Row pairs: (asid, flush) per degree. Flushing can never help on
	// the large TLB; switches match within a degree.
	for r := 0; r < tbl.Rows(); r += 2 {
		asid64 := cellF(t, tbl, r, 3)
		flush64 := cellF(t, tbl, r+1, 3)
		if flush64 < asid64-1e-9 {
			t.Errorf("degree %s: flush FA64 CPI %v beats ASID %v", tbl.Cell(r, 0), flush64, asid64)
		}
		if tbl.Cell(r, 6) != tbl.Cell(r+1, 6) {
			t.Errorf("switch counts differ within degree %s", tbl.Cell(r, 0))
		}
	}
	// Degree 1 has no switches.
	if tbl.Cell(0, 6) != "0" {
		t.Errorf("degree 1 switches = %s", tbl.Cell(0, 6))
	}
}

func TestTLBSweepShapes(t *testing.T) {
	tbl, err := TLBSweep(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"li", "matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 4 { // 2 programs x 2 page sizes
		t.Fatalf("rows = %d", tbl.Rows())
	}
	for r := 0; r < tbl.Rows(); r++ {
		prev := cellF(t, tbl, r, 2)
		for c := 3; c <= 6; c++ {
			v := cellF(t, tbl, r, c)
			if v > prev+1e-9 {
				t.Errorf("row %d: CPI not monotone in TLB size (col %d: %v > %v)", r, c, v, prev)
			}
			prev = v
		}
	}
	// The paper's observation: with 32KB pages a 64-entry TLB has a
	// negligible miss rate for these workloads.
	for r := 0; r < tbl.Rows(); r++ {
		if tbl.Cell(r, 1) == "32KB" {
			if v := cellF(t, tbl, r, 5); v > 0.05 {
				t.Errorf("%s: 32KB @ 64 entries CPI %v not negligible", tbl.Cell(r, 0), v)
			}
		}
	}
}

func TestMissHandlingShapes(t *testing.T) {
	tbl, err := MissHandling(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"worm", "matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]int{}
	for r := 0; r < tbl.Rows(); r++ {
		rows[tbl.Cell(r, 0)] = r
	}
	// worm's misses are all small pages: small-first probing must beat
	// large-first. matrix300's are mostly large: the reverse.
	r := rows["worm"]
	if sf, lf := cellF(t, tbl, r, 2), cellF(t, tbl, r, 3); sf >= lf {
		t.Errorf("worm: small-first (%v) should beat large-first (%v)", sf, lf)
	}
	if lm := cellF(t, tbl, r, 6); lm > 10 {
		t.Errorf("worm large-miss%% = %v, want ~0", lm)
	}
	r = rows["matrix300"]
	if sf, lf := cellF(t, tbl, r, 2), cellF(t, tbl, r, 3); lf >= sf {
		t.Errorf("matrix300: large-first (%v) should beat small-first (%v)", lf, sf)
	}
	// Every organization lands in a plausible handler-cost band.
	for name, r := range rows {
		for c := 1; c <= 4; c++ {
			v := cellF(t, tbl, r, c)
			if v < 10 || v > 80 {
				t.Errorf("%s col %d: %v cycles implausible", name, c, v)
			}
		}
	}
}

func TestPressureShapes(t *testing.T) {
	tbl, err := Pressure(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 6 { // 3 memory sizes x 2 policies
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// Ample-memory rows (first two) have no evictions; the tightest
	// memory (512KB for a ~2MB footprint) must evict under both
	// policies.
	if ev := cellF(t, tbl, 0, 5); ev != 0 {
		t.Errorf("ample-memory 4KB evictions = %v", ev)
	}
	if ev := cellF(t, tbl, 4, 5); ev <= 0 {
		t.Errorf("tight-memory 4KB evictions = %v, want > 0", ev)
	}
	if ev := cellF(t, tbl, 5, 5); ev <= 0 {
		t.Errorf("tight-memory two-page evictions = %v, want > 0", ev)
	}
	// Two-page rows carry promotion copy traffic; 4KB rows none.
	if ck := cellF(t, tbl, 0, 7); ck != 0 {
		t.Errorf("4KB copiedKB = %v", ck)
	}
	if ck := cellF(t, tbl, 1, 7); ck <= 0 {
		t.Errorf("two-page copiedKB = %v, want > 0", ck)
	}
}

func TestConflictShapes(t *testing.T) {
	tbl, err := Conflict(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"tomcatv"}}))
	if err != nil {
		t.Fatal(err)
	}
	plain := cellF(t, tbl, 0, 1)
	vict := cellF(t, tbl, 0, 2)
	fa := cellF(t, tbl, 0, 4)
	if vict >= plain {
		t.Errorf("victim buffer (%v) should improve tomcatv vs plain 2-way (%v)", vict, plain)
	}
	if fa >= plain {
		t.Errorf("full associativity (%v) should beat the thrashing 2-way (%v)", fa, plain)
	}
}

func TestCacheTLBShapes(t *testing.T) {
	tbl, err := CacheTLB(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"li", "matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.Rows(); r++ {
		phys := cellF(t, tbl, r, 2)
		virt := cellF(t, tbl, r, 3)
		if virt > phys+1e-9 {
			t.Errorf("%s: virtual-tag CPI (%v) cannot exceed physical-tag (%v)",
				tbl.Cell(r, 0), virt, phys)
		}
		miss := cellF(t, tbl, r, 1)
		if miss <= 0 || miss >= 100 {
			t.Errorf("%s: L1 miss%% = %v implausible", tbl.Cell(r, 0), miss)
		}
	}
}

func TestPoliciesShapes(t *testing.T) {
	tbl, err := Policies(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"li", "worm"}}))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]int{}
	for r := 0; r < tbl.Rows(); r++ {
		rows[tbl.Cell(r, 0)] = r
	}
	// The static oracle never does much worse than the dynamic policy on
	// CPI (it has perfect knowledge of dense chunks).
	for name, r := range rows {
		dyn, static := cellF(t, tbl, r, 1), cellF(t, tbl, r, 2)
		if static > dyn*1.3+0.05 {
			t.Errorf("%s: static oracle CPI %v much worse than dynamic %v", name, static, dyn)
		}
	}
	// All WS normalizations stay within the policy bound.
	for name, r := range rows {
		for c := 4; c <= 6; c++ {
			if v := cellF(t, tbl, r, c); v < 0.5 || v > 2.2 {
				t.Errorf("%s col %d: WSn %v implausible", name, c, v)
			}
		}
	}
}

func TestAccessCostShapes(t *testing.T) {
	tbl, err := AccessCost(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"matrix300", "tomcatv"}}))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.Rows(); r++ {
		name := tbl.Cell(r, 0)
		par := cellF(t, tbl, r, 1)
		seq := cellF(t, tbl, r, 2)
		lvl := cellF(t, tbl, r, 4)
		if seq <= par {
			t.Errorf("%s: sequential (%v) must cost more than parallel (%v)", name, seq, par)
		}
		if lvl >= par+1 {
			t.Errorf("%s: two-level (%v) should be competitive with parallel (%v)", name, lvl, par)
		}
	}
}

func TestDesignSpaceShapes(t *testing.T) {
	tbl, err := DesignSpace(context.Background(), topts(Options{Scale: 0.03, Workloads: []string{"li"}}))
	if err != nil {
		t.Fatal(err) // includes the internal sweep-vs-direct cross-check
	}
	if tbl.Cell(0, 1) != "96" {
		t.Fatalf("configs = %s", tbl.Cell(0, 1))
	}
	// CPI falls with capacity along the FA column.
	if cellF(t, tbl, 0, 2) < cellF(t, tbl, 0, 3) {
		t.Fatal("8-entry CPI should exceed 16-entry CPI")
	}
}

func TestPhasesShapes(t *testing.T) {
	tbl, err := Phases(context.Background(), topts(Options{Scale: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// demote-on demotes; the others never do.
	if d := cellF(t, tbl, 0, 4); d <= 0 {
		t.Errorf("demote-on demotions = %v, want > 0", d)
	}
	if d := cellF(t, tbl, 1, 4); d != 0 {
		t.Errorf("demote-off demotions = %v", d)
	}
	// Demotion reduces the average working set vs demote-off.
	on, off := cellF(t, tbl, 0, 2), cellF(t, tbl, 1, 2)
	if on >= off {
		t.Errorf("demote-on WSS (%v) should be below demote-off (%v)", on, off)
	}
}

func TestSharedMemShapes(t *testing.T) {
	tbl, err := SharedMem(context.Background(), topts(Options{Scale: 0.03}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 6 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// Two-page rows always have far lower TLB miss rates.
	for r := 0; r < tbl.Rows(); r += 2 {
		m4, m2 := cellF(t, tbl, r, 3), cellF(t, tbl, r+1, 3)
		if m2 >= m4 {
			t.Errorf("row %d: two-page TLB miss%% (%v) should be below 4KB (%v)", r, m2, m4)
		}
	}
	// Tightest memory: both policies fault, two-page no more than 4KB
	// (large pages fault in 8 blocks at once).
	f4, f2 := cellF(t, tbl, 4, 4), cellF(t, tbl, 5, 4)
	if f4 <= 0 {
		t.Errorf("4KB under pressure should fault (got %v)", f4)
	}
	if f2 > f4*1.5 {
		t.Errorf("two-page faults (%v) should not explode vs 4KB (%v)", f2, f4)
	}
}

func TestDiskIOShapes(t *testing.T) {
	tbl, err := DiskIO(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// The two-page scheme must pay less total IO time: fewer positioned
	// transfers for the same data.
	io4, io2 := cellF(t, tbl, 0, 4), cellF(t, tbl, 1, 4)
	if io2 >= io4 {
		t.Errorf("two-page IO ms (%v) should be below 4KB (%v)", io2, io4)
	}
	f4, f2 := cellF(t, tbl, 0, 2), cellF(t, tbl, 1, 2)
	if f2 >= f4 {
		t.Errorf("two-page faults (%v) should be below 4KB (%v)", f2, f4)
	}
}

func TestProtectShapes(t *testing.T) {
	tbl, err := Protect(context.Background(), topts(Options{Scale: 0.05, Workloads: []string{"li"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 4 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// True faults identical across schemes (same protected set, same
	// stores); spurious zero at 4KB and with the veto, positive at 32KB.
	trueF := cellF(t, tbl, 0, 2)
	for r := 1; r < 4; r++ {
		if got := cellF(t, tbl, r, 2); got != trueF {
			t.Errorf("row %d: true faults %v != %v", r, got, trueF)
		}
	}
	if sp := cellF(t, tbl, 0, 3); sp != 0 {
		t.Errorf("4KB spurious = %v", sp)
	}
	if sp := cellF(t, tbl, 1, 3); sp <= 0 {
		t.Errorf("32KB spurious = %v, want > 0", sp)
	}
	if sp := cellF(t, tbl, 3, 3); sp != 0 {
		t.Errorf("veto spurious = %v, want 0", sp)
	}
}

func TestFig52Shapes(t *testing.T) {
	tbl, err := Fig52(context.Background(), topts(Options{Scale: 0.04, Workloads: []string{"espresso", "matrix300"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 4 { // 2 programs x 2 entry counts
		t.Fatalf("rows = %d", tbl.Rows())
	}
	for r := 0; r < tbl.Rows(); r++ {
		name := tbl.Cell(r, 0)
		cpi4 := cellF(t, tbl, r, 2)
		two := cellF(t, tbl, r, 5)
		switch name {
		case "matrix300":
			if two >= cpi4 {
				t.Errorf("matrix300 row %d: two-page (%v) should beat 4KB (%v)", r, two, cpi4)
			}
		case "espresso":
			if two <= cpi4 {
				t.Errorf("espresso row %d: two-page (%v) should degrade vs 4KB (%v)", r, two, cpi4)
			}
		}
	}
}
