package experiments

import (
	"context"

	"twopage/internal/addr"
	"twopage/internal/engine"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// phasedSource builds a program whose behaviour changes mid-run: a
// dense matrix phase over one region, then a phase that revisits the
// *same region sparsely* (a few blocks per chunk) while doing fresh
// work elsewhere. The revisits are what make demotion matter: the
// paper's policy demotes on access when a chunk's windowed activity
// falls below the threshold, reclaiming the internal fragmentation the
// dense phase left behind; a promote-forever policy keeps mapping
// 32KB for every chunk the matrix ever touched.
func phasedSource(refsPerPhase uint64) trace.Reader {
	dense := workload.MustParse("phase-dense", refsPerPhase, `
dpi 0.4
colwalk base=16M rows=300 cols=300 rowbytes=2400 elem=8 weight=0.5
seq     base=16M size=720000 stride=8 weight=0.5
`)
	// Sparse revisit: scattered single blocks inside the 16M region the
	// dense phase promoted, plus a fresh hot region.
	sparse := workload.MustParse("phase-sparse", refsPerPhase, `
dpi 0.35
clusters base=16M span=704K n=20 size=4K align=8 hot=0.3 hotprob=0.7 burst=12 weight=0.6
uniform  base=64M size=64K align=8 weight=0.4
`)
	return trace.NewConcat(dense, sparse)
}

// phasesRun is one policy variant's outcome on the phased program.
type phasesRun struct {
	cpi, avgWSS     float64
	promos, demos   uint64
}

// Phases compares the dynamic policy with and without demotion, and the
// cumulative promote-once policy, on the phased program. The paper
// assigns page sizes "dynamically during the simulation, looking at the
// last T references"; this experiment shows what the dynamic window
// buys: once the dense phase's activity leaves the window, sparse
// revisits demote those chunks and the working set shrinks back, while
// promote-forever policies keep paying 32KB per chunk for a handful of
// live blocks.
func Phases(ctx context.Context, o *Options) (*tableio.Table, error) {
	refsPerPhase := refsFor(workload.Spec{DefaultRefs: 3_000_000}, o.Scale)
	T := windowFor(refsPerPhase)

	names := []string{"dynamic (demote on)", "dynamic (demote off)", "cumulative"}
	mkPol := []func() largenessOracle{
		func() largenessOracle { return policy.NewTwoSize(policy.DefaultTwoSizeConfig(T)) },
		func() largenessOracle {
			demoteOff := policy.DefaultTwoSizeConfig(T)
			demoteOff.Demote = false
			return policy.NewTwoSize(demoteOff)
		},
		func() largenessOracle {
			return policy.NewCumulative(policy.CumulativeConfig{Threshold: addr.BlocksPerChunk / 2})
		},
	}
	futs := make([]*engine.Future[phasesRun], len(mkPol))
	for i, mk := range mkPol {
		mk := mk
		futs[i] = engine.Go(o.Engine, ctx, "phases "+names[i],
			func(ctx context.Context) (phasesRun, error) {
				pol := mk()
				cpi, avgWSS, _, err := runPolicyVariantOn(ctx, phasedSource(refsPerPhase), pol, T)
				if err != nil {
					return phasesRun{}, err
				}
				var st policy.TwoSizeStats
				switch p := pol.(type) {
				case *policy.TwoSize:
					st = p.Stats()
				case *policy.Cumulative:
					st = p.Stats()
				}
				return phasesRun{cpi: cpi, avgWSS: avgWSS, promos: st.Promotions, demos: st.Demotions}, nil
			})
	}
	tbl := tableio.New("Extension: phased program (dense region later revisited sparsely), 16-entry FA",
		"Policy", "CPI_TLB", "avg WSS", "promos", "demos")
	for i, name := range names {
		run, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		tbl.Row(name,
			tableio.F(run.cpi, 3),
			tableio.F(run.avgWSS/(1<<20), 2)+"MB",
			tableio.F(float64(run.promos), 0),
			tableio.F(float64(run.demos), 0))
	}
	tbl.Note("Demotion trades a little CPI (sparse revisits lose their 32KB mappings) for working-set honesty.")
	return tbl, nil
}
