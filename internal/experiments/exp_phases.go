package experiments

import (
	"twopage/internal/addr"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// phasedSource builds a program whose behaviour changes mid-run: a
// dense matrix phase over one region, then a phase that revisits the
// *same region sparsely* (a few blocks per chunk) while doing fresh
// work elsewhere. The revisits are what make demotion matter: the
// paper's policy demotes on access when a chunk's windowed activity
// falls below the threshold, reclaiming the internal fragmentation the
// dense phase left behind; a promote-forever policy keeps mapping
// 32KB for every chunk the matrix ever touched.
func phasedSource(refsPerPhase uint64) trace.Reader {
	dense := workload.MustParse("phase-dense", refsPerPhase, `
dpi 0.4
colwalk base=16M rows=300 cols=300 rowbytes=2400 elem=8 weight=0.5
seq     base=16M size=720000 stride=8 weight=0.5
`)
	// Sparse revisit: scattered single blocks inside the 16M region the
	// dense phase promoted, plus a fresh hot region.
	sparse := workload.MustParse("phase-sparse", refsPerPhase, `
dpi 0.35
clusters base=16M span=704K n=20 size=4K align=8 hot=0.3 hotprob=0.7 burst=12 weight=0.6
uniform  base=64M size=64K align=8 weight=0.4
`)
	return trace.NewConcat(dense, sparse)
}

// Phases compares the dynamic policy with and without demotion, and the
// cumulative promote-once policy, on the phased program. The paper
// assigns page sizes "dynamically during the simulation, looking at the
// last T references"; this experiment shows what the dynamic window
// buys: once the dense phase's activity leaves the window, sparse
// revisits demote those chunks and the working set shrinks back, while
// promote-forever policies keep paying 32KB per chunk for a handful of
// live blocks.
func Phases(o Options) (*tableio.Table, error) {
	o = o.normalized()
	refsPerPhase := refsFor(workload.Spec{DefaultRefs: 3_000_000}, o.Scale)
	T := windowFor(refsPerPhase)

	demoteOff := policy.DefaultTwoSizeConfig(T)
	demoteOff.Demote = false
	variants := []struct {
		name string
		pol  largenessOracle
	}{
		{"dynamic (demote on)", policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))},
		{"dynamic (demote off)", policy.NewTwoSize(demoteOff)},
		{"cumulative", policy.NewCumulative(policy.CumulativeConfig{Threshold: addr.BlocksPerChunk / 2})},
	}
	tbl := tableio.New("Extension: phased program (dense region later revisited sparsely), 16-entry FA",
		"Policy", "CPI_TLB", "avg WSS", "promos", "demos")
	for _, v := range variants {
		cpi, avgWSS, _, err := runPolicyVariantOn(phasedSource(refsPerPhase), v.pol, T)
		if err != nil {
			return nil, err
		}
		var st policy.TwoSizeStats
		switch p := v.pol.(type) {
		case *policy.TwoSize:
			st = p.Stats()
		case *policy.Cumulative:
			st = p.Stats()
		}
		tbl.Row(v.name,
			tableio.F(cpi, 3),
			tableio.F(avgWSS/(1<<20), 2)+"MB",
			tableio.F(float64(st.Promotions), 0),
			tableio.F(float64(st.Demotions), 0))
	}
	tbl.Note("Demotion trades a little CPI (sparse revisits lose their 32KB mappings) for working-set honesty.")
	return tbl, nil
}
