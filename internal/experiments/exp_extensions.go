package experiments

import (
	"context"
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/allassoc"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/multiprog"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// multiprogMixes defines the process mixes per multiprogramming degree,
// drawn from the paper's small-working-set programs so the combined
// footprint stresses the TLB the way Section 6 anticipates.
var multiprogMixes = map[int][]string{
	1: {"li"},
	2: {"li", "x11perf"},
	4: {"li", "x11perf", "espresso", "eqntott"},
}

// multiprogRun is one (degree, mode, policy) simulation's outcome.
type multiprogRun struct {
	cpis     [2]float64 // FA16, FA64
	switches uint64
}

// Multiprog evaluates the effect the paper could not measure: TLB
// behaviour under multiprogramming, with ASID-tagged entries versus
// flush-on-context-switch, for the 4KB baseline and the two-page
// scheme, on 16- and 64-entry fully associative TLBs. Each
// (degree, mode, policy) combination is one opaque task; the scheduler
// interleaves them freely because rows are assembled afterwards in
// fixed order.
func Multiprog(ctx context.Context, o *Options) (*tableio.Table, error) {
	degrees := []int{1, 2, 4}
	type cell struct {
		futs [2]*engine.Future[multiprogRun] // per policy: 4KB, two-page
	}
	cells := map[int]map[bool]*cell{}
	for _, degree := range degrees {
		degree := degree
		mix := multiprogMixes[degree]
		// Per-process length shrinks with degree so each row simulates
		// comparable total work.
		var refs uint64
		for _, name := range mix {
			s, err := workload.Get(name)
			if err != nil {
				return nil, err
			}
			refs += refsFor(s, o.Scale)
		}
		perProc := refs / uint64(degree) / uint64(degree)
		quantum := int(perProc / 50)
		if quantum < 2000 {
			quantum = 2000
		}
		T := windowFor(perProc * uint64(degree))

		cells[degree] = map[bool]*cell{}
		for _, flush := range []bool{false, true} {
			flush := flush
			c := &cell{}
			for pi, two := range []bool{false, true} {
				two := two
				label := fmt.Sprintf("multiprog d=%d flush=%t two=%t", degree, flush, two)
				c.futs[pi] = engine.Go(o.Engine, ctx, label,
					func(ctx context.Context) (multiprogRun, error) {
						var pol policy.Assigner
						if two {
							pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
						} else {
							pol = policy.NewSingle(addr.Size4K)
						}
						tlbs := []tlb.TLB{tlb.NewFullyAssoc(16), tlb.NewFullyAssoc(64)}
						procs := make([]multiprog.Process, degree)
						for i, name := range mix {
							s, err := workload.Get(name)
							if err != nil {
								return multiprogRun{}, err
							}
							procs[i] = multiprog.Process{Name: name, Source: s.New(perProc)}
						}
						mp, err := multiprog.New(procs, quantum)
						if err != nil {
							return multiprogRun{}, err
						}
						if flush {
							mp.OnSwitch = func(from, to int) {
								for _, t := range tlbs {
									t.Flush()
								}
							}
						}
						res, err := core.NewSimulator(pol, tlbs).Run(ctx, mp)
						if err != nil {
							return multiprogRun{}, err
						}
						return multiprogRun{
							cpis:     [2]float64{res.TLBs[0].CPITLB, res.TLBs[1].CPITLB},
							switches: mp.Switches(),
						}, nil
					})
			}
			cells[degree][flush] = c
		}
	}
	tbl := tableio.New("Extension: multiprogramming (CPI_TLB, fully associative TLBs)",
		"Degree", "Mode", "4KB FA16", "4KB FA64", "4K/32K FA16", "4K/32K FA64", "switches")
	for _, degree := range degrees {
		for _, flush := range []bool{false, true} {
			mode := "asid"
			if flush {
				mode = "flush"
			}
			c := cells[degree][flush]
			r4, err := c.futs[0].Wait(ctx)
			if err != nil {
				return nil, err
			}
			r2, err := c.futs[1].Wait(ctx)
			if err != nil {
				return nil, err
			}
			tbl.Row(fmt.Sprintf("%d", degree), mode,
				tableio.F(r4.cpis[0], 3), tableio.F(r4.cpis[1], 3),
				tableio.F(r2.cpis[0], 3), tableio.F(r2.cpis[1], 3),
				fmt.Sprintf("%d", r2.switches))
		}
	}
	tbl.Note("ASID mode tags entries per address space; flush mode empties the TLB at every switch.")
	tbl.Note("Large pages recover part of the flush cost: fewer entries refill the mapped footprint.")
	return tbl, nil
}

// tlbSweepRow carries one workload's all-associativity miss curves.
type tlbSweepRow struct {
	instrs   uint64
	m4, m32  []uint64
}

// TLBSweep uses all-associativity simulation to sweep fully associative
// TLB sizes 8..128 for 4KB and 32KB pages — quantifying the Section 5
// remark that the paper had to stay below 64 entries because "large
// TLBs in combination with large pages have negligible miss rates".
func TLBSweep(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	const maxWays = 128
	entries := []int{8, 16, 32, 64, 128}
	futs := make([]*engine.Future[tlbSweepRow], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		futs[i] = engine.Go(o.Engine, ctx, "tlbsweep "+s.Name,
			func(ctx context.Context) (tlbSweepRow, error) {
				sim4 := allassoc.MustNew(1, addr.Shift4K, maxWays)
				sim32 := allassoc.MustNew(1, addr.Shift32K, maxWays)
				var row tlbSweepRow
				if err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
					for _, ref := range batch {
						if ref.Kind == trace.Instr {
							row.instrs++
						}
						sim4.Access(ref.Addr)
						sim32.Access(ref.Addr)
					}
				}); err != nil {
					return tlbSweepRow{}, err
				}
				for _, e := range entries {
					row.m4 = append(row.m4, sim4.Misses(e))
					row.m32 = append(row.m32, sim32.Misses(e))
				}
				return row, nil
			})
	}
	tbl := tableio.New("Extension: CPI_TLB vs fully associative TLB size (all-associativity pass)",
		"Program", "Pages", "8", "16", "32", "64", "128")
	for i, s := range specs {
		res, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		for _, pair := range []struct {
			label  string
			misses []uint64
		}{{"4KB", res.m4}, {"32KB", res.m32}} {
			row := []string{s.Name, pair.label}
			for j := range entries {
				cpi := metrics.CPITLB(pair.misses[j], res.instrs, metrics.MissPenaltySingle)
				row = append(row, tableio.F(cpi, 3))
			}
			tbl.Row(row...)
		}
	}
	tbl.Note("Paper Section 5: \"We do not use large TLBs (>= 64 entries) ... negligible miss rates for our workloads\".")
	return tbl, nil
}
