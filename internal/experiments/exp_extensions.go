package experiments

import (
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/allassoc"
	"twopage/internal/core"
	"twopage/internal/metrics"
	"twopage/internal/multiprog"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
)

// multiprogMixes defines the process mixes per multiprogramming degree,
// drawn from the paper's small-working-set programs so the combined
// footprint stresses the TLB the way Section 6 anticipates.
var multiprogMixes = map[int][]string{
	1: {"li"},
	2: {"li", "x11perf"},
	4: {"li", "x11perf", "espresso", "eqntott"},
}

// Multiprog evaluates the effect the paper could not measure: TLB
// behaviour under multiprogramming, with ASID-tagged entries versus
// flush-on-context-switch, for the 4KB baseline and the two-page
// scheme, on 16- and 64-entry fully associative TLBs.
func Multiprog(o Options) (*tableio.Table, error) {
	o = o.normalized()
	tbl := tableio.New("Extension: multiprogramming (CPI_TLB, fully associative TLBs)",
		"Degree", "Mode", "4KB FA16", "4KB FA64", "4K/32K FA16", "4K/32K FA64", "switches")
	for _, degree := range []int{1, 2, 4} {
		mix := multiprogMixes[degree]
		// Per-process length shrinks with degree so each row simulates
		// comparable total work.
		var refs uint64
		for _, name := range mix {
			s, err := workload.Get(name)
			if err != nil {
				return nil, err
			}
			refs += refsFor(s, o.Scale)
		}
		perProc := refs / uint64(degree) / uint64(degree)
		quantum := int(perProc / 50)
		if quantum < 2000 {
			quantum = 2000
		}
		T := windowFor(perProc * uint64(degree))

		for _, flush := range []bool{false, true} {
			mode := "asid"
			if flush {
				mode = "flush"
			}
			var cpis []float64
			var switches uint64
			for _, two := range []bool{false, true} {
				var pol policy.Assigner
				if two {
					pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
				} else {
					pol = policy.NewSingle(addr.Size4K)
				}
				tlbs := []tlb.TLB{tlb.NewFullyAssoc(16), tlb.NewFullyAssoc(64)}
				procs := make([]multiprog.Process, degree)
				for i, name := range mix {
					s, err := workload.Get(name)
					if err != nil {
						return nil, err
					}
					procs[i] = multiprog.Process{Name: name, Source: s.New(perProc)}
				}
				mp, err := multiprog.New(procs, quantum)
				if err != nil {
					return nil, err
				}
				if flush {
					mp.OnSwitch = func(from, to int) {
						for _, t := range tlbs {
							t.Flush()
						}
					}
				}
				sim := core.NewSimulator(pol, tlbs)
				res, err := sim.Run(mp)
				if err != nil {
					return nil, err
				}
				cpis = append(cpis, res.TLBs[0].CPITLB, res.TLBs[1].CPITLB)
				switches = mp.Switches()
			}
			tbl.Row(fmt.Sprintf("%d", degree), mode,
				tableio.F(cpis[0], 3), tableio.F(cpis[1], 3),
				tableio.F(cpis[2], 3), tableio.F(cpis[3], 3),
				fmt.Sprintf("%d", switches))
		}
	}
	tbl.Note("ASID mode tags entries per address space; flush mode empties the TLB at every switch.")
	tbl.Note("Large pages recover part of the flush cost: fewer entries refill the mapped footprint.")
	return tbl, nil
}

// TLBSweep uses all-associativity simulation to sweep fully associative
// TLB sizes 8..128 for 4KB and 32KB pages — quantifying the Section 5
// remark that the paper had to stay below 64 entries because "large
// TLBs in combination with large pages have negligible miss rates".
func TLBSweep(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	const maxWays = 128
	entries := []int{8, 16, 32, 64, 128}
	tbl := tableio.New("Extension: CPI_TLB vs fully associative TLB size (all-associativity pass)",
		"Program", "Pages", "8", "16", "32", "64", "128")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		sim4 := allassoc.MustNew(1, addr.Shift4K, maxWays)
		sim32 := allassoc.MustNew(1, addr.Shift32K, maxWays)
		var instrs uint64
		if err := drainInto(s.New(refs), func(batch []trace.Ref) {
			for _, ref := range batch {
				if ref.Kind == trace.Instr {
					instrs++
				}
				sim4.Access(ref.Addr)
				sim32.Access(ref.Addr)
			}
		}); err != nil {
			return nil, err
		}
		for _, pair := range []struct {
			label string
			sim   *allassoc.Sim
		}{{"4KB", sim4}, {"32KB", sim32}} {
			row := []string{s.Name, pair.label}
			for _, e := range entries {
				cpi := metrics.CPITLB(pair.sim.Misses(e), instrs, metrics.MissPenaltySingle)
				row = append(row, tableio.F(cpi, 3))
			}
			tbl.Row(row...)
		}
	}
	tbl.Note("Paper Section 5: \"We do not use large TLBs (>= 64 entries) ... negligible miss rates for our workloads\".")
	return tbl, nil
}
