package experiments

import (
	"twopage/internal/addr"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/trace"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// drainInto pulls a reader to completion through fn.
func drainInto(r trace.Reader, fn func([]trace.Ref)) error {
	_, err := trace.Drain(r, fn)
	return err
}

// Table31 reproduces Table 3.1: per-program trace length, references per
// instruction, and average working-set size at 4KB pages.
func Table31(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Table 3.1: Workloads (synthetic reproductions)",
		"Program", "Refs(M)", "RPI", "WS@4KB(T=refs/8)", "Class")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		var count trace.Count
		calc := wss.NewStatic(uint64(T), addr.Shift4K)
		err := drainInto(s.New(refs), func(batch []trace.Ref) {
			for _, ref := range batch {
				switch ref.Kind {
				case trace.Instr:
					count.Instr++
				case trace.Load:
					count.Load++
				default:
					count.Store++
				}
				calc.Step(ref.Addr)
			}
		})
		if err != nil {
			return nil, err
		}
		res := calc.Finish()[0]
		class := "small"
		if s.LargeWS {
			class = "large"
		}
		tbl.Row(s.Name,
			tableio.F(float64(refs)/1e6, 1),
			tableio.F(count.RPI(), 2),
			wss.FormatBytes(res.AvgBytes),
			class)
	}
	tbl.Note("Paper classes: small < 1MB working set, large > 1MB (at full trace lengths).")
	return tbl, nil
}

// wsNormSingle runs one static multi-size pass and returns the
// normalized working-set sizes (vs 4KB) for the given shifts.
func wsNormSingle(r trace.Reader, T uint64, shifts []uint) (base float64, norm []float64, err error) {
	all := append([]uint{addr.Shift4K}, shifts...)
	calc := wss.NewStatic(T, all...)
	if err := drainInto(r, func(batch []trace.Ref) {
		for _, ref := range batch {
			calc.Step(ref.Addr)
		}
	}); err != nil {
		return 0, nil, err
	}
	res := calc.Finish()
	base = res[0].AvgBytes
	norm = make([]float64, len(shifts))
	for i := range shifts {
		norm[i] = metrics.WSNormalized(res[i+1].AvgBytes, base)
	}
	return base, norm, nil
}

// wsNormTwoSize measures the dynamic scheme's normalized working set
// against a 4KB base measured over the same trace.
func wsNormTwoSize(s workload.Spec, refs uint64, cfg policy.TwoSizeConfig, base float64) (float64, policy.TwoSizeStats, error) {
	pol := policy.NewTwoSize(cfg)
	calc := wss.NewTwoSize(pol)
	if err := drainInto(s.New(refs), func(batch []trace.Ref) {
		for _, ref := range batch {
			calc.Observe(pol.Assign(ref.Addr))
		}
	}); err != nil {
		return 0, policy.TwoSizeStats{}, err
	}
	return metrics.WSNormalized(calc.Result().AvgBytes, base), pol.Stats(), nil
}

// Fig41 reproduces Figure 4.1: WS_Normalized for single page sizes
// 8KB..64KB, per program, plus the cross-program average.
func Fig41(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	shifts := []uint{addr.Shift8K, addr.Shift16K, addr.Shift32K, addr.Shift64K}
	tbl := tableio.New("Figure 4.1: WS_Normalized vs page size (4KB = 1.00)",
		"Program", "8KB", "16KB", "32KB", "64KB")
	sums := make([]float64, len(shifts))
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := uint64(windowFor(refs))
		_, norm, err := wsNormSingle(s.New(refs), T, shifts)
		if err != nil {
			return nil, err
		}
		row := []string{s.Name}
		for i, n := range norm {
			sums[i] += n
			row = append(row, tableio.F(n, 2))
		}
		tbl.Row(row...)
	}
	avg := []string{"AVERAGE"}
	for _, s := range sums {
		avg = append(avg, tableio.F(s/float64(len(specs)), 2))
	}
	tbl.Row(avg...)
	tbl.Note("Paper averages at T=10M: 32KB ≈ 1.67, 64KB ≈ 2.03.")
	return tbl, nil
}

// Fig42 reproduces Figure 4.2: WS_Normalized for 8/16/32KB single sizes
// against the dynamic 4KB/32KB scheme.
func Fig42(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	shifts := []uint{addr.Shift8K, addr.Shift16K, addr.Shift32K}
	tbl := tableio.New("Figure 4.2: WS_Normalized, single sizes vs 4KB/32KB",
		"Program", "8KB", "16KB", "32KB", "4KB/32KB")
	sums := make([]float64, 4)
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		base, norm, err := wsNormSingle(s.New(refs), uint64(T), shifts)
		if err != nil {
			return nil, err
		}
		two, _, err := wsNormTwoSize(s, refs, policy.DefaultTwoSizeConfig(T), base)
		if err != nil {
			return nil, err
		}
		row := []string{s.Name}
		for i, n := range norm {
			sums[i] += n
			row = append(row, tableio.F(n, 2))
		}
		sums[3] += two
		row = append(row, tableio.F(two, 2))
		tbl.Row(row...)
	}
	avg := []string{"AVERAGE"}
	for _, s := range sums {
		avg = append(avg, tableio.F(s/float64(len(specs)), 2))
	}
	tbl.Row(avg...)
	tbl.Note("Paper: two-page scheme costs 1.01-1.22 (avg ~1.1), below even the 8KB single size.")
	return tbl, nil
}

// SensitivityT reproduces the Section 4 claim that the working-set
// trends are insensitive to T, sweeping T over half/nominal/double.
func SensitivityT(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Section 4: WS_Normalized sensitivity to the window T",
		"Program", "32KB@T/2", "32KB@T", "32KB@2T", "two@T/2", "two@T", "two@2T")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		ts := []int{T / 2, T, 2 * T}
		// One static pass per T (each pass also measures the 4KB base).
		norm32 := make([]float64, len(ts))
		bases := make([]float64, len(ts))
		for i, t := range ts {
			base, norm, err := wsNormSingle(s.New(refs), uint64(t), []uint{addr.Shift32K})
			if err != nil {
				return nil, err
			}
			bases[i], norm32[i] = base, norm[0]
		}
		normTwo := make([]float64, len(ts))
		for i, t := range ts {
			two, _, err := wsNormTwoSize(s, refs, policy.DefaultTwoSizeConfig(t), bases[i])
			if err != nil {
				return nil, err
			}
			normTwo[i] = two
		}
		tbl.Row(s.Name,
			tableio.F(norm32[0], 2), tableio.F(norm32[1], 2), tableio.F(norm32[2], 2),
			tableio.F(normTwo[0], 2), tableio.F(normTwo[1], 2), tableio.F(normTwo[2], 2))
	}
	tbl.Note("Paper: qualitative trend unchanged for T in {10M, 25M, 50M}; two-page cost varies only a few percent.")
	return tbl, nil
}
