package experiments

import (
	"context"
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/trace"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// drainInto pulls a reader to completion through fn.
func drainInto(ctx context.Context, r trace.Reader, fn func([]trace.Ref)) error {
	_, err := trace.DrainContext(ctx, r, fn)
	return err
}

// staticWSS submits the canonical static working-set ladder for one
// workload. Every working-set experiment keys on the same
// (workload, refs, T) unit, so fig4.1, fig4.2, table3.1 and the
// sensitivity sweep share one pass per workload.
func staticWSS(ctx context.Context, o *Options, s workload.Spec, refs uint64, T uint64) *engine.Future[[]wss.Result] {
	return o.Engine.StaticWSS(ctx, engine.StaticWSSUnit{Workload: s.Name, Refs: refs, T: T})
}

// normAt returns ladder[shift] normalized against the 4KB base.
func normAt(ladder []wss.Result, shift uint) (float64, error) {
	i := engine.StaticIndex(shift)
	if i < 0 {
		return 0, fmt.Errorf("experiments: shift %d not in the static ladder", shift)
	}
	return metrics.WSNormalized(ladder[i].AvgBytes, ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes), nil
}

// Table31 reproduces Table 3.1: per-program trace length, references per
// instruction, and average working-set size at 4KB pages.
func Table31(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	type row struct {
		count  *engine.Future[trace.Count]
		ladder *engine.Future[[]wss.Result]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := uint64(windowFor(refs))
		rows[i].ladder = staticWSS(ctx, o, s, refs, T)
		rows[i].count = engine.Go(o.Engine, ctx, "count "+s.Name,
			func(ctx context.Context) (trace.Count, error) {
				var count trace.Count
				err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
					for _, ref := range batch {
						switch ref.Kind {
						case trace.Instr:
							count.Instr++
						case trace.Load:
							count.Load++
						default:
							count.Store++
						}
					}
				})
				return count, err
			})
	}
	tbl := tableio.New("Table 3.1: Workloads (synthetic reproductions)",
		"Program", "Refs(M)", "RPI", "WS@4KB(T=refs/8)", "Class")
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		count, err := rows[i].count.Wait(ctx)
		if err != nil {
			return nil, err
		}
		ladder, err := rows[i].ladder.Wait(ctx)
		if err != nil {
			return nil, err
		}
		class := "small"
		if s.LargeWS {
			class = "large"
		}
		tbl.Row(s.Name,
			tableio.F(float64(refs)/1e6, 1),
			tableio.F(count.RPI(), 2),
			wss.FormatBytes(ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes),
			class)
	}
	tbl.Note("Paper classes: small < 1MB working set, large > 1MB (at full trace lengths).")
	return tbl, nil
}

// Fig41 reproduces Figure 4.1: WS_Normalized for single page sizes
// 8KB..64KB, per program, plus the cross-program average.
func Fig41(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	shifts := []uint{addr.Shift8K, addr.Shift16K, addr.Shift32K, addr.Shift64K}
	futs := make([]*engine.Future[[]wss.Result], len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		futs[i] = staticWSS(ctx, o, s, refs, uint64(windowFor(refs)))
	}
	tbl := tableio.New("Figure 4.1: WS_Normalized vs page size (4KB = 1.00)",
		"Program", "8KB", "16KB", "32KB", "64KB")
	sums := make([]float64, len(shifts))
	for i, s := range specs {
		ladder, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		row := []string{s.Name}
		for j, sh := range shifts {
			n, err := normAt(ladder, sh)
			if err != nil {
				return nil, err
			}
			sums[j] += n
			row = append(row, tableio.F(n, 2))
		}
		tbl.Row(row...)
	}
	avg := []string{"AVERAGE"}
	for _, s := range sums {
		avg = append(avg, tableio.F(s/float64(len(specs)), 2))
	}
	tbl.Row(avg...)
	tbl.Note("Paper averages at T=10M: 32KB ≈ 1.67, 64KB ≈ 2.03.")
	return tbl, nil
}

// Fig42 reproduces Figure 4.2: WS_Normalized for 8/16/32KB single sizes
// against the dynamic 4KB/32KB scheme.
func Fig42(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	shifts := []uint{addr.Shift8K, addr.Shift16K, addr.Shift32K}
	type row struct {
		ladder *engine.Future[[]wss.Result]
		two    *engine.Future[engine.TwoWSS]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		rows[i].ladder = staticWSS(ctx, o, s, refs, uint64(T))
		rows[i].two = o.Engine.TwoSizeWSS(ctx, engine.TwoSizeWSSUnit{
			Workload: s.Name, Refs: refs, Cfg: policy.DefaultTwoSizeConfig(T),
		})
	}
	tbl := tableio.New("Figure 4.2: WS_Normalized, single sizes vs 4KB/32KB",
		"Program", "8KB", "16KB", "32KB", "4KB/32KB")
	sums := make([]float64, 4)
	for i, s := range specs {
		ladder, err := rows[i].ladder.Wait(ctx)
		if err != nil {
			return nil, err
		}
		twoRes, err := rows[i].two.Wait(ctx)
		if err != nil {
			return nil, err
		}
		base := ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes
		row := []string{s.Name}
		for j, sh := range shifts {
			n, err := normAt(ladder, sh)
			if err != nil {
				return nil, err
			}
			sums[j] += n
			row = append(row, tableio.F(n, 2))
		}
		two := metrics.WSNormalized(twoRes.WSS.AvgBytes, base)
		sums[3] += two
		row = append(row, tableio.F(two, 2))
		tbl.Row(row...)
	}
	avg := []string{"AVERAGE"}
	for _, s := range sums {
		avg = append(avg, tableio.F(s/float64(len(specs)), 2))
	}
	tbl.Row(avg...)
	tbl.Note("Paper: two-page scheme costs 1.01-1.22 (avg ~1.1), below even the 8KB single size.")
	return tbl, nil
}

// SensitivityT reproduces the Section 4 claim that the working-set
// trends are insensitive to T, sweeping T over half/nominal/double.
func SensitivityT(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	type row struct {
		ladders []*engine.Future[[]wss.Result]
		twos    []*engine.Future[engine.TwoWSS]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		for _, t := range []int{T / 2, T, 2 * T} {
			// The nominal-T units are shared with fig4.1/fig4.2; only
			// the halved and doubled windows cost extra passes.
			rows[i].ladders = append(rows[i].ladders, staticWSS(ctx, o, s, refs, uint64(t)))
			rows[i].twos = append(rows[i].twos, o.Engine.TwoSizeWSS(ctx, engine.TwoSizeWSSUnit{
				Workload: s.Name, Refs: refs, Cfg: policy.DefaultTwoSizeConfig(t),
			}))
		}
	}
	tbl := tableio.New("Section 4: WS_Normalized sensitivity to the window T",
		"Program", "32KB@T/2", "32KB@T", "32KB@2T", "two@T/2", "two@T", "two@2T")
	for i, s := range specs {
		norm32 := make([]float64, 3)
		normTwo := make([]float64, 3)
		for j := 0; j < 3; j++ {
			ladder, err := rows[i].ladders[j].Wait(ctx)
			if err != nil {
				return nil, err
			}
			norm32[j], err = normAt(ladder, addr.Shift32K)
			if err != nil {
				return nil, err
			}
			twoRes, err := rows[i].twos[j].Wait(ctx)
			if err != nil {
				return nil, err
			}
			normTwo[j] = metrics.WSNormalized(twoRes.WSS.AvgBytes,
				ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes)
		}
		tbl.Row(s.Name,
			tableio.F(norm32[0], 2), tableio.F(norm32[1], 2), tableio.F(norm32[2], 2),
			tableio.F(normTwo[0], 2), tableio.F(normTwo[1], 2), tableio.F(normTwo[2], 2))
	}
	tbl.Note("Paper: qualitative trend unchanged for T in {10M, 25M, 50M}; two-page cost varies only a few percent.")
	return tbl, nil
}
