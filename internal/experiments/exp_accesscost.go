package experiments

import (
	"context"

	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/tlbx"
)

// accessCostRow is one workload's per-strategy translation cost.
type accessCostRow struct {
	parallel, sequential, split, twoLevel float64
	reprobePct                            float64
}

// AccessCost prices the three exact-index access strategies of
// Section 2.2 — option (a) parallel/dual-ported probe, option (b)
// sequential reprobe, option (c) split TLBs — plus a two-level TLB
// hierarchy, as average translation cycles per reference:
//
//	cycles/ref = hit-path cycles + miss-ratio × 25-cycle handler
//
// Parallel and sequential exact indexing share contents (identical
// misses); they differ in the hit path: the sequential variant probes
// with the small page number first and reprobes on large-page hits
// and misses (Stats.Reprobes), exactly the cost the paper says makes
// option (b) questionable ("It is not clear this gives any performance
// advantage for using the larger page size"). The two-level hierarchy
// charges its L2 refills an intermediate cost. The split and two-level
// organizations are not expressible as one tlb.Config, so each
// workload runs as one opaque task.
func AccessCost(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	const (
		probeCycles   = 1.0 // one TLB probe
		l2ProbeCycles = 3.0 // bigger, slower second-level TLB
	)
	futs := make([]*engine.Future[accessCostRow], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		futs[i] = engine.Go(o.Engine, ctx, "accesscost "+s.Name,
			func(ctx context.Context) (accessCostRow, error) {
				unified := twoWay(16, tlb.IndexExact)
				split, err := tlb.NewSplit(tlb.Config{Entries: 8, Ways: 2}, tlb.Config{Entries: 8, Ways: 4})
				if err != nil {
					return accessCostRow{}, err
				}
				twoLvl, err := tlbx.NewTwoLevel(
					tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact},
					tlb.Config{Entries: 64, Ways: 4, Index: tlb.IndexExact})
				if err != nil {
					return accessCostRow{}, err
				}
				pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
				sim := core.NewSimulator(pol, []tlb.TLB{unified, split, twoLvl})
				if _, err := sim.Run(ctx, s.New(refs)); err != nil {
					return accessCostRow{}, err
				}
				perRef := func(st tlb.Stats, hitCycles float64) float64 {
					if st.Accesses == 0 {
						return 0
					}
					return hitCycles + st.MissRatio()*metrics.MissPenaltyTwo
				}
				ust := unified.Stats()
				// Sequential: every access pays one probe; large hits and misses
				// pay a second.
				reprobeFrac := float64(ust.Reprobes()) / float64(ust.Accesses)
				tst := twoLvl.Stats()
				l2Frac := float64(twoLvl.L2Hits) / float64(tst.Accesses)
				return accessCostRow{
					parallel:   perRef(ust, probeCycles),
					sequential: perRef(ust, probeCycles+reprobeFrac*probeCycles),
					split:      perRef(split.Stats(), probeCycles),
					twoLevel:   perRef(tst, probeCycles+l2Frac*l2ProbeCycles),
					reprobePct: 100 * reprobeFrac,
				}, nil
			})
	}
	tbl := tableio.New("Extension: translation cycles per reference, exact-index access strategies (16 entries)",
		"Program", "parallel", "sequential", "split 8+8", "L1(16)+L2(64)", "reprobe%")
	for i, s := range specs {
		row, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			tableio.F(row.parallel, 3),
			tableio.F(row.sequential, 3),
			tableio.F(row.split, 3),
			tableio.F(row.twoLevel, 3),
			tableio.F(row.reprobePct, 0)+"%")
	}
	tbl.Note("Parallel and sequential share contents; sequential adds a reprobe on every large-page hit and every miss.")
	return tbl, nil
}
