package experiments

import (
	"sort"

	"twopage/internal/addr"
	"twopage/internal/disk"
	"twopage/internal/mmu"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
)

// DiskIO prices demand paging with the positional disk model,
// quantifying the paper's Section 1 claim that with larger pages "disk
// paging is more efficient (since the delay of disk head movement is
// amortized over more data transferred)". Under memory pressure the
// two-page scheme takes fewer faults (one fault maps eight blocks) and
// pays positioning once per 32KB instead of once per 4KB.
func DiskIO(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	dm := disk.Default()
	tbl := tableio.New("Extension: demand paging with a 1992 disk model (1MB memory, per 1000 accesses)",
		"Program", "Policy", "faults", "MB paged", "IO ms", "cyc/access")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		for _, two := range []bool{false, true} {
			var pol policy.Assigner
			name := "4KB"
			if two {
				pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
				name = "4KB/32KB"
			} else {
				pol = policy.NewSingle(addr.Size4K)
			}
			m, err := mmu.New(mmu.Config{
				TLB:    tlb.NewFullyAssoc(16),
				Policy: pol,
				Memory: addr.PageSize(1 << 20),
				Disk:   &dm,
			})
			if err != nil {
				return nil, err
			}
			st, err := m.Run(s.New(refs))
			if err != nil {
				return nil, err
			}
			per := float64(st.Accesses) / 1000
			ioMs := st.IO.IOCycles / (dm.CPUMHz * 1e3)
			tbl.Row(s.Name, name,
				tableio.F(float64(st.Faults)/per, 2),
				tableio.F(float64(st.IO.BytesIn)/(1<<20), 1),
				tableio.F(ioMs, 0),
				tableio.F(st.CyclesPerAccess(), 1))
		}
	}
	tbl.Note("Disk: 16ms seek + 5.6ms rotation + 2MB/s at 40MHz — one 32KB page-in costs ~5x less than eight 4KB page-ins.")
	return tbl, nil
}

// Protect quantifies the paper's third tradeoff: "the protection
// granularity becomes coarser" with larger pages (Section 1, citing
// Appel & Li's user-level virtual memory primitives). A set of 4KB
// regions is write-protected (e.g. GC write barriers); every store to a
// page that contains a protected region faults. Small pages fault only
// on stores to the protected blocks themselves; large pages also fault
// spuriously on stores to their other blocks. The veto policy
// (DenyPromotion) shows the OS fix: keep chunks with sub-page
// protection on small pages.
func Protect(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Extension: sub-page write protection (faults per 1000 stores)",
		"Program", "Scheme", "true", "spurious", "spurious ratio")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)

		// Profile: protect every 16th touched block (deterministic).
		var blocks []addr.PN
		seen := map[addr.PN]bool{}
		if err := drainInto(s.New(refs), func(batch []trace.Ref) {
			for _, ref := range batch {
				b := addr.Block(ref.Addr)
				if !seen[b] {
					seen[b] = true
					blocks = append(blocks, b)
				}
			}
		}); err != nil {
			return nil, err
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		protected := map[addr.PN]bool{}
		protChunk := map[addr.PN]bool{}
		for i := 0; i < len(blocks); i += 16 {
			protected[blocks[i]] = true
			protChunk[addr.ChunkOfBlock(blocks[i])] = true
		}

		type scheme struct {
			name string
			pol  policy.Assigner
		}
		veto := policy.DefaultTwoSizeConfig(T)
		veto.DenyPromotion = func(c addr.PN) bool { return protChunk[c] }
		schemes := []scheme{
			{"4KB", policy.NewSingle(addr.Size4K)},
			{"32KB", policy.NewSingle(addr.Size32K)},
			{"4KB/32KB", policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))},
			{"4KB/32KB veto", policy.NewTwoSize(veto)},
		}
		for _, sc := range schemes {
			var stores, trueF, spurious uint64
			if err := drainInto(s.New(refs), func(batch []trace.Ref) {
				for _, ref := range batch {
					res := sc.pol.Assign(ref.Addr)
					if ref.Kind != trace.Store {
						continue
					}
					stores++
					if protected[addr.Block(ref.Addr)] {
						trueF++
						continue
					}
					// Spurious: the mapped page spans a protected block
					// the store did not touch.
					if uint(res.Page.Shift) > addr.BlockShift {
						first := addr.FirstBlock(res.Page.Number)
						for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
							if protected[first+i] {
								spurious++
								break
							}
						}
					}
				}
			}); err != nil {
				return nil, err
			}
			per := float64(stores) / 1000
			ratio := 0.0
			if trueF > 0 {
				ratio = float64(spurious) / float64(trueF)
			}
			tbl.Row(s.Name, sc.name,
				tableio.F(float64(trueF)/per, 2),
				tableio.F(float64(spurious)/per, 2),
				tableio.F(ratio, 1)+"x")
		}
	}
	tbl.Note("Every 16th touched 4KB block is write-protected. The veto policy keeps protected chunks on small pages.")
	return tbl, nil
}
