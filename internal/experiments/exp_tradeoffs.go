package experiments

import (
	"context"
	"sort"

	"twopage/internal/addr"
	"twopage/internal/disk"
	"twopage/internal/engine"
	"twopage/internal/mmu"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
)

// DiskIO prices demand paging with the positional disk model,
// quantifying the paper's Section 1 claim that with larger pages "disk
// paging is more efficient (since the delay of disk head movement is
// amortized over more data transferred)". Under memory pressure the
// two-page scheme takes fewer faults (one fault maps eight blocks) and
// pays positioning once per 32KB instead of once per 4KB.
func DiskIO(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	dm := disk.Default()
	type cell struct {
		name string
		fut  *engine.Future[mmu.Stats]
	}
	var cells []cell
	for _, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		for _, two := range []bool{false, true} {
			two := two
			name := "4KB"
			if two {
				name = "4KB/32KB"
			}
			cells = append(cells, cell{name, engine.Go(o.Engine, ctx, "diskio "+s.Name+" "+name,
				func(ctx context.Context) (mmu.Stats, error) {
					var pol policy.Assigner
					if two {
						pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
					} else {
						pol = policy.NewSingle(addr.Size4K)
					}
					m, err := mmu.New(mmu.Config{
						TLB:    tlb.NewFullyAssoc(16),
						Policy: pol,
						Memory: addr.PageSize(1 << 20),
						Disk:   &dm,
					})
					if err != nil {
						return mmu.Stats{}, err
					}
					return m.Run(ctx, s.New(refs))
				})})
		}
	}
	tbl := tableio.New("Extension: demand paging with a 1992 disk model (1MB memory, per 1000 accesses)",
		"Program", "Policy", "faults", "MB paged", "IO ms", "cyc/access")
	i := 0
	for _, s := range specs {
		for range []bool{false, true} {
			st, err := cells[i].fut.Wait(ctx)
			if err != nil {
				return nil, err
			}
			per := float64(st.Accesses) / 1000
			ioMs := st.IO.IOCycles / (dm.CPUMHz * 1e3)
			tbl.Row(s.Name, cells[i].name,
				tableio.F(float64(st.Faults)/per, 2),
				tableio.F(float64(st.IO.BytesIn)/(1<<20), 1),
				tableio.F(ioMs, 0),
				tableio.F(st.CyclesPerAccess(), 1))
			i++
		}
	}
	tbl.Note("Disk: 16ms seek + 5.6ms rotation + 2MB/s at 40MHz — one 32KB page-in costs ~5x less than eight 4KB page-ins.")
	return tbl, nil
}

// protProfile is the deterministic protection profile derived from a
// workload's touched blocks: every 16th distinct 4KB block carries
// sub-page write protection.
type protProfile struct {
	protected map[addr.PN]bool
	protChunk map[addr.PN]bool
}

// protStats counts faults for one scheme under a profile.
type protStats struct {
	stores, trueF, spurious uint64
}

// Protect quantifies the paper's third tradeoff: "the protection
// granularity becomes coarser" with larger pages (Section 1, citing
// Appel & Li's user-level virtual memory primitives). A set of 4KB
// regions is write-protected (e.g. GC write barriers); every store to a
// page that contains a protected region faults. Small pages fault only
// on stores to the protected blocks themselves; large pages also fault
// spuriously on stores to their other blocks. The veto policy
// (DenyPromotion) shows the OS fix: keep chunks with sub-page
// protection on small pages.
//
// The profile pass must finish before the scheme passes can start, so
// the experiment stages its submissions: all profiles first, then each
// workload's four schemes as its profile lands (tasks themselves never
// wait on other tasks).
func Protect(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	schemeNames := []string{"4KB", "32KB", "4KB/32KB", "4KB/32KB veto"}
	profiles := make([]*engine.Future[protProfile], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		profiles[i] = engine.Go(o.Engine, ctx, "protect profile "+s.Name,
			func(ctx context.Context) (protProfile, error) {
				var blocks []addr.PN
				seen := map[addr.PN]bool{}
				if err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
					for _, ref := range batch {
						b := addr.Block(ref.Addr)
						if !seen[b] {
							seen[b] = true
							blocks = append(blocks, b)
						}
					}
				}); err != nil {
					return protProfile{}, err
				}
				sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
				p := protProfile{protected: map[addr.PN]bool{}, protChunk: map[addr.PN]bool{}}
				for i := 0; i < len(blocks); i += 16 {
					p.protected[blocks[i]] = true
					p.protChunk[addr.ChunkOfBlock(blocks[i])] = true
				}
				return p, nil
			})
	}
	schemes := make([][]*engine.Future[protStats], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		prof, err := profiles[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		for _, name := range schemeNames {
			name := name
			schemes[i] = append(schemes[i], engine.Go(o.Engine, ctx, "protect "+s.Name+" "+name,
				func(ctx context.Context) (protStats, error) {
					var pol policy.Assigner
					switch name {
					case "4KB":
						pol = policy.NewSingle(addr.Size4K)
					case "32KB":
						pol = policy.NewSingle(addr.Size32K)
					case "4KB/32KB":
						pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
					default:
						veto := policy.DefaultTwoSizeConfig(T)
						veto.DenyPromotion = func(c addr.PN) bool { return prof.protChunk[c] }
						pol = policy.NewTwoSize(veto)
					}
					var st protStats
					err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
						for _, ref := range batch {
							res := pol.Assign(ref.Addr)
							if ref.Kind != trace.Store {
								continue
							}
							st.stores++
							if prof.protected[addr.Block(ref.Addr)] {
								st.trueF++
								continue
							}
							// Spurious: the mapped page spans a protected block
							// the store did not touch.
							if uint(res.Page.Shift) > addr.BlockShift {
								first := addr.FirstBlock(res.Page.Number)
								for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
									if prof.protected[first+i] {
										st.spurious++
										break
									}
								}
							}
						}
					})
					return st, err
				}))
		}
	}
	tbl := tableio.New("Extension: sub-page write protection (faults per 1000 stores)",
		"Program", "Scheme", "true", "spurious", "spurious ratio")
	for i, s := range specs {
		for j, name := range schemeNames {
			st, err := schemes[i][j].Wait(ctx)
			if err != nil {
				return nil, err
			}
			per := float64(st.stores) / 1000
			ratio := 0.0
			if st.trueF > 0 {
				ratio = float64(st.spurious) / float64(st.trueF)
			}
			tbl.Row(s.Name, name,
				tableio.F(float64(st.trueF)/per, 2),
				tableio.F(float64(st.spurious)/per, 2),
				tableio.F(ratio, 1)+"x")
		}
	}
	tbl.Note("Every 16th touched 4KB block is write-protected. The veto policy keeps protected chunks on small pages.")
	return tbl, nil
}
