package experiments

import (
	"twopage/internal/addr"
	"twopage/internal/cache"
	"twopage/internal/core"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/tlbx"
	"twopage/internal/trace"
)

// CacheTLB quantifies the Section 1 argument that L1 tagging dictates
// TLB pressure: with physical tags every reference consults the TLB;
// with virtual tags only L1 misses do. One pass per workload drives a
// 64KB L1 model and two identical TLBs — one fed every reference, one
// fed only the cache-miss stream.
func CacheTLB(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Extension: L1 tagging vs TLB pressure (16-entry FA TLB, 4KB pages)",
		"Program", "L1 miss%", "CPI phys-tag", "CPI virt-tag", "TLB accesses saved")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		l1 := cache.MustNew(cache.Config{Size: 64 << 10, Block: 32, Ways: 2})
		phys := tlb.NewFullyAssoc(16)
		virt := tlb.NewFullyAssoc(16)
		pol := policy.NewSingle(addr.Size4K)
		var instrs uint64
		if err := drainInto(s.New(refs), func(batch []trace.Ref) {
			for _, ref := range batch {
				if ref.Kind == trace.Instr {
					instrs++
				}
				res := pol.Assign(ref.Addr)
				phys.Access(ref.Addr, res.Page)
				if !l1.Access(ref.Addr) {
					virt.Access(ref.Addr, res.Page)
				}
			}
		}); err != nil {
			return nil, err
		}
		cpiP := metrics.CPITLB(phys.Stats().Misses(), instrs, metrics.MissPenaltySingle)
		cpiV := metrics.CPITLB(virt.Stats().Misses(), instrs, metrics.MissPenaltySingle)
		saved := 1 - float64(virt.Stats().Accesses)/float64(phys.Stats().Accesses)
		tbl.Row(s.Name,
			tableio.F(100*l1.Stats().MissRatio(), 1),
			tableio.F(cpiP, 3),
			tableio.F(cpiV, 3),
			tableio.F(100*saved, 0)+"%")
	}
	tbl.Note("Virtual tags consult the TLB only on L1 misses (Section 1), so a much larger TLB becomes feasible.")
	return tbl, nil
}

// Conflict evaluates the conflict-mitigation hardware the paper's
// conclusion gestures at (avoiding designs that require full
// associativity): a victim buffer and next-page prefetching behind a
// 16-entry two-way exact-index TLB, under the two-page policy.
func Conflict(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Extension: conflict mitigation for two-page set-associative TLBs (CPI_TLB)",
		"Program", "2-way exact", "+4-entry victim", "+prefetch", "fully assoc")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		mkTLBs := func() ([]tlb.TLB, error) {
			vict, err := tlbx.NewVictim(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact}, 4)
			if err != nil {
				return nil, err
			}
			pf, err := tlbx.NewPrefetch(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact})
			if err != nil {
				return nil, err
			}
			return []tlb.TLB{
				twoWay(16, tlb.IndexExact),
				vict,
				pf,
				tlb.NewFullyAssoc(16),
			}, nil
		}
		tlbs, err := mkTLBs()
		if err != nil {
			return nil, err
		}
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
		sim := core.NewSimulator(pol, tlbs)
		res, err := sim.Run(s.New(refs))
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			tableio.F(res.TLBs[0].CPITLB, 3),
			tableio.F(res.TLBs[1].CPITLB, 3),
			tableio.F(res.TLBs[2].CPITLB, 3),
			tableio.F(res.TLBs[3].CPITLB, 3))
	}
	tbl.Note("The victim buffer targets tomcatv-style set conflicts; prefetch targets sequential compulsory misses.")
	return tbl, nil
}
