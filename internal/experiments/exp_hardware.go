package experiments

import (
	"context"

	"twopage/internal/addr"
	"twopage/internal/cache"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/tlbx"
	"twopage/internal/trace"
)

// cacheTLBStats carries one workload's cache/TLB interaction counters.
type cacheTLBStats struct {
	l1Miss       float64
	cpiP, cpiV   float64
	savedPercent float64
}

// CacheTLB quantifies the Section 1 argument that L1 tagging dictates
// TLB pressure: with physical tags every reference consults the TLB;
// with virtual tags only L1 misses do. One pass per workload drives a
// 64KB L1 model and two identical TLBs — one fed every reference, one
// fed only the cache-miss stream.
func CacheTLB(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	futs := make([]*engine.Future[cacheTLBStats], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		futs[i] = engine.Go(o.Engine, ctx, "cachetlb "+s.Name,
			func(ctx context.Context) (cacheTLBStats, error) {
				l1 := cache.MustNew(cache.Config{Size: 64 << 10, Block: 32, Ways: 2})
				phys := tlb.NewFullyAssoc(16)
				virt := tlb.NewFullyAssoc(16)
				pol := policy.NewSingle(addr.Size4K)
				var instrs uint64
				if err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
					for _, ref := range batch {
						if ref.Kind == trace.Instr {
							instrs++
						}
						res := pol.Assign(ref.Addr)
						phys.Access(ref.Addr, res.Page)
						if !l1.Access(ref.Addr) {
							virt.Access(ref.Addr, res.Page)
						}
					}
				}); err != nil {
					return cacheTLBStats{}, err
				}
				return cacheTLBStats{
					l1Miss: 100 * l1.Stats().MissRatio(),
					cpiP:   metrics.CPITLB(phys.Stats().Misses(), instrs, metrics.MissPenaltySingle),
					cpiV:   metrics.CPITLB(virt.Stats().Misses(), instrs, metrics.MissPenaltySingle),
					savedPercent: 100 * (1 -
						float64(virt.Stats().Accesses)/float64(phys.Stats().Accesses)),
				}, nil
			})
	}
	tbl := tableio.New("Extension: L1 tagging vs TLB pressure (16-entry FA TLB, 4KB pages)",
		"Program", "L1 miss%", "CPI phys-tag", "CPI virt-tag", "TLB accesses saved")
	for i, s := range specs {
		st, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			tableio.F(st.l1Miss, 1),
			tableio.F(st.cpiP, 3),
			tableio.F(st.cpiV, 3),
			tableio.F(st.savedPercent, 0)+"%")
	}
	tbl.Note("Virtual tags consult the TLB only on L1 misses (Section 1), so a much larger TLB becomes feasible.")
	return tbl, nil
}

// Conflict evaluates the conflict-mitigation hardware the paper's
// conclusion gestures at (avoiding designs that require full
// associativity): a victim buffer and next-page prefetching behind a
// 16-entry two-way exact-index TLB, under the two-page policy. The
// augmented TLBs (tlbx) are not expressible as a plain tlb.Config, so
// each workload runs as one opaque task driving all four organizations.
func Conflict(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	futs := make([]*engine.Future[*core.Result], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		futs[i] = engine.Go(o.Engine, ctx, "conflict "+s.Name,
			func(ctx context.Context) (*core.Result, error) {
				vict, err := tlbx.NewVictim(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact}, 4)
				if err != nil {
					return nil, err
				}
				pf, err := tlbx.NewPrefetch(tlb.Config{Entries: 16, Ways: 2, Index: tlb.IndexExact})
				if err != nil {
					return nil, err
				}
				tlbs := []tlb.TLB{
					twoWay(16, tlb.IndexExact),
					vict,
					pf,
					tlb.NewFullyAssoc(16),
				}
				pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
				return core.NewSimulator(pol, tlbs).Run(ctx, s.New(refs))
			})
	}
	tbl := tableio.New("Extension: conflict mitigation for two-page set-associative TLBs (CPI_TLB)",
		"Program", "2-way exact", "+4-entry victim", "+prefetch", "fully assoc")
	for i, s := range specs {
		res, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			tableio.F(res.TLBs[0].CPITLB, 3),
			tableio.F(res.TLBs[1].CPITLB, 3),
			tableio.F(res.TLBs[2].CPITLB, 3),
			tableio.F(res.TLBs[3].CPITLB, 3))
	}
	tbl.Note("The victim buffer targets tomcatv-style set conflicts; prefetch targets sequential compulsory misses.")
	return tbl, nil
}
