package experiments

import (
	"context"
	"sort"

	"twopage/internal/addr"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/window"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// largenessOracle is the subset of Assigner the sampled working-set
// calculator needs: the current page-size mapping of a chunk.
type largenessOracle interface {
	policy.Assigner
	IsLarge(c addr.PN) bool
}

// runPolicyVariant drives one alternative policy over the workload with
// a 16-entry FA TLB, sampling the two-page working-set size from a
// sliding window every sampleEvery references (the incremental WSS
// calculator is specific to the paper's TwoSize policy; sampling is
// exact at the sample points and plenty for an ablation).
func runPolicyVariant(ctx context.Context, s workload.Spec, refs uint64, pol largenessOracle, T int) (cpi float64, avgWSS float64, largeFrac float64, err error) {
	return runPolicyVariantOn(ctx, s.New(refs), pol, T)
}

// runPolicyVariantOn is runPolicyVariant over an arbitrary stream.
func runPolicyVariantOn(ctx context.Context, src trace.Reader, pol largenessOracle, T int) (cpi float64, avgWSS float64, largeFrac float64, err error) {
	hw := tlb.NewFullyAssoc(16)
	win := window.New(T)
	const sampleEvery = 256
	var instrs, samples uint64
	var wssSum float64
	err = drainInto(ctx, src, func(batch []trace.Ref) {
		for _, ref := range batch {
			if ref.Kind == trace.Instr {
				instrs++
			}
			res := pol.Assign(ref.Addr)
			if res.Event == policy.EventPromote {
				first := addr.FirstBlock(res.Chunk)
				for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
					hw.Invalidate(policy.Page{Number: first + i, Shift: addr.BlockShift})
				}
			}
			hw.Access(ref.Addr, res.Page)
			win.StepVA(ref.Addr)
			if win.Steps()%sampleEvery == 0 {
				var w uint64
				win.ActiveChunks(func(c addr.PN, blocks int) {
					if pol.IsLarge(c) {
						w += addr.ChunkSize
					} else {
						w += uint64(blocks) * addr.BlockSize
					}
				})
				wssSum += float64(w)
				samples++
			}
		}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	cpi = metrics.CPITLB(hw.Stats().Misses(), instrs, metrics.MissPenaltyTwo)
	if samples > 0 {
		avgWSS = wssSum / float64(samples)
	}
	var st policy.TwoSizeStats
	switch p := pol.(type) {
	case *policy.TwoSize:
		st = p.Stats()
	case *policy.Region:
		st = p.Stats()
	case *policy.Cumulative:
		st = p.Stats()
	}
	if st.Refs > 0 {
		largeFrac = float64(st.LargeRefs) / float64(st.Refs)
	}
	return cpi, avgWSS, largeFrac, nil
}

// oracleRegions derives static large-page hints from a profiling pass:
// chunks whose whole-trace density meets the paper's threshold become
// large regions — the "reorganizing code and data" best case, with
// perfect knowledge.
func oracleRegions(ctx context.Context, s workload.Spec, refs uint64) ([]policy.Range, error) {
	blocks := map[addr.PN]bool{}
	if err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
		for _, ref := range batch {
			blocks[addr.Block(ref.Addr)] = true
		}
	}); err != nil {
		return nil, err
	}
	dense := map[addr.PN]int{}
	//paperlint:ignore determinism count increments are order-independent
	for b := range blocks {
		dense[addr.ChunkOfBlock(b)]++
	}
	chunks := make([]addr.PN, 0, len(dense))
	for c := range dense {
		chunks = append(chunks, c)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i] < chunks[j] })
	var ranges []policy.Range
	for _, c := range chunks {
		if dense[c] >= addr.BlocksPerChunk/2 {
			ranges = append(ranges, policy.Range{
				Start: addr.VA(uint64(c) << addr.ChunkShift),
				End:   addr.VA((uint64(c) + 1) << addr.ChunkShift),
			})
		}
	}
	return ranges, nil
}

// policyVariantRun is one (workload, policy-variant) outcome.
type policyVariantRun struct {
	cpi, wss, lg float64
}

// Policies compares page-size assignment policies — the axis the
// paper's conclusion flags as its biggest unknown: the dynamic windowed
// policy (Section 3.4), a static-hint oracle (profile-derived large
// regions; "reorganizing code and data", the better case), and a
// cumulative promote-once policy ("less dynamic information", the
// worse case).
//
// The oracle variant needs the profiling pass's regions, so the
// experiment stages its submissions: all profiles first, then each
// workload's three variants as its profile lands.
func Policies(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	ladders := make([]*engine.Future[[]wss.Result], len(specs))
	profiles := make([]*engine.Future[[]policy.Range], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		ladders[i] = staticWSS(ctx, o, s, refs, uint64(T))
		profiles[i] = engine.Go(o.Engine, ctx, "policies profile "+s.Name,
			func(ctx context.Context) ([]policy.Range, error) {
				return oracleRegions(ctx, s, refs)
			})
	}
	variants := make([][]*engine.Future[policyVariantRun], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		ranges, err := profiles[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		mkPol := []func() (largenessOracle, error){
			func() (largenessOracle, error) {
				return policy.NewTwoSize(policy.DefaultTwoSizeConfig(T)), nil
			},
			func() (largenessOracle, error) {
				return policy.NewRegion(policy.RegionConfig{LargeRegions: ranges})
			},
			func() (largenessOracle, error) {
				return policy.NewCumulative(policy.CumulativeConfig{Threshold: addr.BlocksPerChunk / 2}), nil
			},
		}
		names := []string{"dyn", "static", "cumul"}
		for j, mk := range mkPol {
			mk := mk
			variants[i] = append(variants[i], engine.Go(o.Engine, ctx, "policies "+s.Name+" "+names[j],
				func(ctx context.Context) (policyVariantRun, error) {
					pol, err := mk()
					if err != nil {
						return policyVariantRun{}, err
					}
					cpi, w, lg, err := runPolicyVariant(ctx, s, refs, pol, T)
					if err != nil {
						return policyVariantRun{}, err
					}
					return policyVariantRun{cpi: cpi, wss: w, lg: lg}, nil
				}))
		}
	}
	tbl := tableio.New("Extension: page-size assignment policies (16-entry FA, 25-cycle penalty)",
		"Program", "CPI dyn", "CPI static", "CPI cumul", "WSn dyn", "WSn static", "WSn cumul", "lg% dyn/st/cu")
	for i, s := range specs {
		ladder, err := ladders[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		base := ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes
		var cpis, wsns, lgs []float64
		for _, f := range variants[i] {
			run, err := f.Wait(ctx)
			if err != nil {
				return nil, err
			}
			cpis = append(cpis, run.cpi)
			wsns = append(wsns, run.wss/base)
			lgs = append(lgs, 100*run.lg)
		}
		tbl.Row(s.Name,
			tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
			tableio.F(wsns[0], 2), tableio.F(wsns[1], 2), tableio.F(wsns[2], 2),
			tableio.F(lgs[0], 0)+"/"+tableio.F(lgs[1], 0)+"/"+tableio.F(lgs[2], 0))
	}
	tbl.Note("static = profile-derived large regions (oracle); cumul = promote-once on lifetime touches, never demote.")
	return tbl, nil
}
