package experiments

import (
	"twopage/internal/addr"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/window"
	"twopage/internal/workload"
)

// largenessOracle is the subset of Assigner the sampled working-set
// calculator needs: the current page-size mapping of a chunk.
type largenessOracle interface {
	policy.Assigner
	IsLarge(c addr.PN) bool
}

// runPolicyVariant drives one alternative policy over the workload with
// a 16-entry FA TLB, sampling the two-page working-set size from a
// sliding window every sampleEvery references (the incremental WSS
// calculator is specific to the paper's TwoSize policy; sampling is
// exact at the sample points and plenty for an ablation).
func runPolicyVariant(s workload.Spec, refs uint64, pol largenessOracle, T int) (cpi float64, avgWSS float64, largeFrac float64, err error) {
	return runPolicyVariantOn(s.New(refs), pol, T)
}

// runPolicyVariantOn is runPolicyVariant over an arbitrary stream.
func runPolicyVariantOn(src trace.Reader, pol largenessOracle, T int) (cpi float64, avgWSS float64, largeFrac float64, err error) {
	hw := tlb.NewFullyAssoc(16)
	win := window.New(T)
	const sampleEvery = 256
	var instrs, samples uint64
	var wssSum float64
	err = drainInto(src, func(batch []trace.Ref) {
		for _, ref := range batch {
			if ref.Kind == trace.Instr {
				instrs++
			}
			res := pol.Assign(ref.Addr)
			if res.Event == policy.EventPromote {
				first := addr.FirstBlock(res.Chunk)
				for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
					hw.Invalidate(policy.Page{Number: first + i, Shift: addr.BlockShift})
				}
			}
			hw.Access(ref.Addr, res.Page)
			win.StepVA(ref.Addr)
			if win.Steps()%sampleEvery == 0 {
				var w uint64
				win.ActiveChunks(func(c addr.PN, blocks int) {
					if pol.IsLarge(c) {
						w += addr.ChunkSize
					} else {
						w += uint64(blocks) * addr.BlockSize
					}
				})
				wssSum += float64(w)
				samples++
			}
		}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	cpi = metrics.CPITLB(hw.Stats().Misses(), instrs, metrics.MissPenaltyTwo)
	if samples > 0 {
		avgWSS = wssSum / float64(samples)
	}
	var st policy.TwoSizeStats
	switch p := pol.(type) {
	case *policy.TwoSize:
		st = p.Stats()
	case *policy.Region:
		st = p.Stats()
	case *policy.Cumulative:
		st = p.Stats()
	}
	if st.Refs > 0 {
		largeFrac = float64(st.LargeRefs) / float64(st.Refs)
	}
	return cpi, avgWSS, largeFrac, nil
}

// oracleRegions derives static large-page hints from a profiling pass:
// chunks whose whole-trace density meets the paper's threshold become
// large regions — the "reorganizing code and data" best case, with
// perfect knowledge.
func oracleRegions(s workload.Spec, refs uint64) ([]policy.Range, error) {
	blocks := map[addr.PN]bool{}
	if err := drainInto(s.New(refs), func(batch []trace.Ref) {
		for _, ref := range batch {
			blocks[addr.Block(ref.Addr)] = true
		}
	}); err != nil {
		return nil, err
	}
	dense := map[addr.PN]int{}
	for b := range blocks {
		dense[addr.ChunkOfBlock(b)]++
	}
	var ranges []policy.Range
	for c, n := range dense {
		if n >= addr.BlocksPerChunk/2 {
			ranges = append(ranges, policy.Range{
				Start: addr.VA(uint64(c) << addr.ChunkShift),
				End:   addr.VA((uint64(c) + 1) << addr.ChunkShift),
			})
		}
	}
	return ranges, nil
}

// Policies compares page-size assignment policies — the axis the
// paper's conclusion flags as its biggest unknown: the dynamic windowed
// policy (Section 3.4), a static-hint oracle (profile-derived large
// regions; "reorganizing code and data", the better case), and a
// cumulative promote-once policy ("less dynamic information", the
// worse case).
func Policies(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Extension: page-size assignment policies (16-entry FA, 25-cycle penalty)",
		"Program", "CPI dyn", "CPI static", "CPI cumul", "WSn dyn", "WSn static", "WSn cumul", "lg% dyn/st/cu")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		base, _, err := wsNormSingle(s.New(refs), uint64(T), []uint{addr.Shift32K})
		if err != nil {
			return nil, err
		}
		ranges, err := oracleRegions(s, refs)
		if err != nil {
			return nil, err
		}
		static, err := policy.NewRegion(policy.RegionConfig{LargeRegions: ranges})
		if err != nil {
			return nil, err
		}
		type variant struct {
			pol largenessOracle
		}
		variants := []variant{
			{policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))},
			{static},
			{policy.NewCumulative(policy.CumulativeConfig{Threshold: addr.BlocksPerChunk / 2})},
		}
		var cpis, wsns, lgs []float64
		for _, v := range variants {
			cpi, wss, lg, err := runPolicyVariant(s, refs, v.pol, T)
			if err != nil {
				return nil, err
			}
			cpis = append(cpis, cpi)
			wsns = append(wsns, wss/base)
			lgs = append(lgs, 100*lg)
		}
		tbl.Row(s.Name,
			tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
			tableio.F(wsns[0], 2), tableio.F(wsns[1], 2), tableio.F(wsns[2], 2),
			tableio.F(lgs[0], 0)+"/"+tableio.F(lgs[1], 0)+"/"+tableio.F(lgs[2], 0))
	}
	tbl.Note("static = profile-derived large regions (oracle); cumul = promote-once on lifetime touches, never demote.")
	return tbl, nil
}
