package experiments

import (
	"context"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/walk"
)

// walkConfig resolves the Options walk knobs into a concrete model over
// the policy's size classes: zero knobs keep the walk package defaults,
// negative ones disable the component. BaseCycles stays zero — core
// derives the handler base from the policy kind.
func walkConfig(o *Options, classes addr.SizeClasses) walk.Config {
	cfg := walk.Default(classes)
	if o.WalkPWC < 0 {
		cfg.PWCEntries = 0
	} else if o.WalkPWC > 0 {
		cfg.PWCEntries = o.WalkPWC
	}
	if o.WalkMemBytes < 0 {
		cfg.MemBytes = 0
	} else if o.WalkMemBytes > 0 {
		cfg.MemBytes = o.WalkMemBytes
	}
	return cfg
}

// twoSizeClasses is the 4KB/32KB hierarchy the two-size policy walks;
// derived from the policy itself so the walk model can never drift from
// the policy's layout.
func twoSizeClasses() addr.SizeClasses {
	return policy.NewTwoSize(policy.DefaultTwoSizeConfig(1)).SizeClasses()
}

// walkPassFuture is passFuture with the modeled page walk attached to
// every unit of the pass.
func walkPassFuture(ctx context.Context, o *Options, wl string, refs uint64, pol engine.PolicySpec, wcfg walk.Config, tlbs ...tlb.Config) *engine.Future[*core.Result] {
	return o.Engine.Pass(ctx, engine.PassSpec{
		Workload: wl, Refs: refs, Policy: pol, TLBs: tlbs, Walk: &wcfg,
	})
}

// WalkCPI compares the paper's flat 25-cycle penalty against the
// modeled multi-level walk on the 16-entry fully associative TLB: the
// same two-size policy pass, charged three ways (flat; modeled with
// PWCs; modeled with PWCs disabled). CPI_TLB in the walk columns is
// emergent — total walk cycles over instructions — and cyc/walk is the
// measured per-miss penalty the flat model approximates with 25.
func WalkCPI(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	classes := twoSizeClasses()
	modeled := walkConfig(o, classes)
	noPWC := modeled
	noPWC.PWCEntries = 0
	type row struct {
		flat, walk, walkNoPWC *engine.Future[*core.Result]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		pol := engine.TwoSizePolicy(policy.DefaultTwoSizeConfig(T))
		rows[i] = row{
			// The flat pass is the exact unit Fig51 submits; a shared
			// engine simulates it once.
			flat:      passFuture(ctx, o, s.Name, refs, pol, faCfg(16)),
			walk:      walkPassFuture(ctx, o, s.Name, refs, pol, modeled, faCfg(16)),
			walkNoPWC: walkPassFuture(ctx, o, s.Name, refs, pol, noPWC, faCfg(16)),
		}
	}
	tbl := tableio.New("Modeled page walks: CPI_TLB, 4KB/32KB on FA16",
		"Program", "flat", "walk", "cyc/walk", "no-PWC", "pwc-hit%", "mem-hit%")
	for i, s := range specs {
		flat, err := rows[i].flat.Wait(ctx)
		if err != nil {
			return nil, err
		}
		wres, err := rows[i].walk.Wait(ctx)
		if err != nil {
			return nil, err
		}
		nres, err := rows[i].walkNoPWC.Wait(ctx)
		if err != nil {
			return nil, err
		}
		ws := wres.Walk
		tbl.Row(s.Name,
			tableio.F(flat.TLBs[0].CPITLB, 3),
			tableio.F(wres.TLBs[0].CPITLB, 3),
			tableio.F(ws.CyclesPerWalk(), 1),
			tableio.F(nres.TLBs[0].CPITLB, 3),
			tableio.F(100*ws.PWCHitRatio(), 0),
			tableio.F(100*ws.MemHitRatio(), 0))
	}
	tbl.Note("Flat assumes 25 cycles per miss; the walk columns measure it: PWC hits skip the root load, walk locality lands PTE loads in the memory-side cache.")
	return tbl, nil
}

// WalkDeltaMP recomputes the Section 5 critical-miss-penalty analysis
// against the modeled penalty. The critical increase Δmp (from the MPI
// ratio) says how much the two-size handler may grow over the 20-cycle
// single-size baseline before the scheme loses to 4KB; the paper
// assumes the actual growth is 25%. The modeled column replaces that
// assumption with the measured cycles-per-walk of the radix walk.
func WalkDeltaMP(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	classes := twoSizeClasses()
	modeled := walkConfig(o, classes)
	type row struct {
		four, two *engine.Future[*core.Result]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		rows[i] = row{
			// The 4KB baseline is DeltaMP's exact unit; shared.
			four: passFuture(ctx, o, s.Name, refs, engine.SinglePolicy(addr.Size4K), faCfg(16)),
			two: walkPassFuture(ctx, o, s.Name, refs,
				engine.TwoSizePolicy(policy.DefaultTwoSizeConfig(T)), modeled, faCfg(16)),
		}
	}
	tbl := tableio.New("Δmp(4KB/32KB) against the modeled walk penalty (FA16)",
		"Program", "crit Δmp", "flat Δmp", "cyc/walk", "modeled Δmp", "holds?")
	const flatIncrease = 100 * (metrics.TwoSizePenaltyFactor - 1)
	for i, s := range specs {
		res4, err := rows[i].four.Wait(ctx)
		if err != nil {
			return nil, err
		}
		resTwo, err := rows[i].two.Wait(ctx)
		if err != nil {
			return nil, err
		}
		crit := metrics.CriticalMissPenaltyIncrease(res4.TLBs[0].MPI, resTwo.TLBs[0].MPI)
		perWalk := resTwo.Walk.CyclesPerWalk()
		modeledIncrease := 100 * (perWalk/metrics.MissPenaltySingle - 1)
		holds := "no"
		if modeledIncrease <= crit {
			holds = "yes"
		}
		tbl.Row(s.Name,
			tableio.Pct(crit),
			tableio.Pct(flatIncrease),
			tableio.F(perWalk, 1),
			tableio.Pct(modeledIncrease),
			holds)
	}
	tbl.Note("'holds?' = the measured penalty growth stays under the critical increase, so the two-page win survives the modeled walk cost.")
	return tbl, nil
}
