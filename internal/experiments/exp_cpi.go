package experiments

import (
	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

// runPass simulates one policy against a set of TLBs over a fresh trace
// of the workload, returning the per-TLB results.
func runPass(s workload.Spec, refs uint64, pol policy.Assigner, tlbs ...tlb.TLB) (*core.Result, error) {
	sim := core.NewSimulator(pol, tlbs)
	return sim.Run(s.New(refs))
}

// Fig51 reproduces Figure 5.1: CPI_TLB on a 16-entry fully associative
// TLB for 4KB, 8KB and 32KB single page sizes and the 4KB/32KB scheme.
func Fig51(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Figure 5.1: CPI_TLB, 16-entry fully associative TLB",
		"Program", "4KB", "8KB", "32KB", "4KB/32KB", "large-ref%")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		var cpis []float64
		for _, size := range []addr.PageSize{addr.Size4K, addr.Size8K, addr.Size32K} {
			res, err := runPass(s, refs, policy.NewSingle(size), tlb.NewFullyAssoc(16))
			if err != nil {
				return nil, err
			}
			cpis = append(cpis, res.TLBs[0].CPITLB)
		}
		resTwo, err := runPass(s, refs, policy.NewTwoSize(policy.DefaultTwoSizeConfig(T)),
			tlb.NewFullyAssoc(16))
		if err != nil {
			return nil, err
		}
		largePct := 100 * float64(resTwo.PolicyStats.LargeRefs) / float64(resTwo.PolicyStats.Refs)
		tbl.Row(s.Name,
			tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
			tableio.F(resTwo.TLBs[0].CPITLB, 3), tableio.F(largePct, 0))
	}
	tbl.Note("Paper: 32KB ≈ 8x better than 4KB; two-page slightly above 32KB (25-cycle penalty), usually below 8KB.")
	return tbl, nil
}

// Fig52 reproduces Figure 5.2: CPI_TLB on 16- and 32-entry two-way
// set-associative TLBs, single sizes (indexed by their own page number)
// vs the two-page scheme with exact indexing.
func Fig52(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Figure 5.2: CPI_TLB, two-way set-associative TLBs (exact index)",
		"Program", "Entries", "4KB", "8KB", "32KB", "4KB/32KB")
	for _, entries := range []int{16, 32} {
		for _, s := range specs {
			refs := refsFor(s, o.Scale)
			T := windowFor(refs)
			var cpis []float64
			for _, size := range []addr.PageSize{addr.Size4K, addr.Size8K, addr.Size32K} {
				res, err := runPass(s, refs, policy.NewSingle(size), twoWay(entries, tlb.IndexExact))
				if err != nil {
					return nil, err
				}
				cpis = append(cpis, res.TLBs[0].CPITLB)
			}
			resTwo, err := runPass(s, refs, policy.NewTwoSize(policy.DefaultTwoSizeConfig(T)),
				twoWay(entries, tlb.IndexExact))
			if err != nil {
				return nil, err
			}
			tbl.Row(s.Name, tableio.F(float64(entries), 0),
				tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
				tableio.F(resTwo.TLBs[0].CPITLB, 3))
		}
	}
	tbl.Note("Paper: most programs improve with two page sizes; espresso/worm degrade; tomcatv thrashes large-index bits.")
	return tbl, nil
}

// Table51 reproduces Table 5.1: the four columns comparing indexing
// schemes for 16- and 32-entry two-way TLBs.
func Table51(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Table 5.1: Comparison of indexing schemes (CPI_TLB, two-way)",
		"Program", "Entries", "4KB", "4KB lg-ix", "4K/32K lg-ix", "4K/32K exact")
	for _, entries := range []int{16, 32} {
		for _, s := range specs {
			refs := refsFor(s, o.Scale)
			T := windowFor(refs)
			// One pass for the two 4KB columns.
			res4, err := runPass(s, refs, policy.NewSingle(addr.Size4K),
				twoWay(entries, tlb.IndexSmall), twoWay(entries, tlb.IndexLarge))
			if err != nil {
				return nil, err
			}
			// One pass for the two two-page columns.
			resTwo, err := runPass(s, refs, policy.NewTwoSize(policy.DefaultTwoSizeConfig(T)),
				twoWay(entries, tlb.IndexLarge), twoWay(entries, tlb.IndexExact))
			if err != nil {
				return nil, err
			}
			tbl.Row(s.Name, tableio.F(float64(entries), 0),
				tableio.F(res4.TLBs[0].CPITLB, 3),
				tableio.F(res4.TLBs[1].CPITLB, 3),
				tableio.F(resTwo.TLBs[0].CPITLB, 3),
				tableio.F(resTwo.TLBs[1].CPITLB, 3))
		}
	}
	tbl.Note("Paper: the large-page index without large pages (col 2 vs 1) degrades severely; exact vs large index are often comparable with two sizes.")
	return tbl, nil
}

// DeltaMP reproduces the Section 5.2 metric: the critical miss-penalty
// increase Δmp(4KB/32KB) on the fully associative and two-way TLBs.
func DeltaMP(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Critical miss-penalty increase Δmp(4KB/32KB)",
		"Program", "FA16 Δmp", "16e2w Δmp", "32e2w Δmp")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		res4, err := runPass(s, refs, policy.NewSingle(addr.Size4K),
			tlb.NewFullyAssoc(16), twoWay(16, tlb.IndexSmall), twoWay(32, tlb.IndexSmall))
		if err != nil {
			return nil, err
		}
		resTwo, err := runPass(s, refs, policy.NewTwoSize(policy.DefaultTwoSizeConfig(T)),
			tlb.NewFullyAssoc(16), twoWay(16, tlb.IndexExact), twoWay(32, tlb.IndexExact))
		if err != nil {
			return nil, err
		}
		cells := []string{s.Name}
		for i := range res4.TLBs {
			d := metrics.CriticalMissPenaltyIncrease(res4.TLBs[i].MPI, resTwo.TLBs[i].MPI)
			cells = append(cells, tableio.Pct(d))
		}
		tbl.Row(cells...)
	}
	tbl.Note("Paper: Δmp ranges 30%%-1200%% for programs that improve; even a 30%% penalty increase preserves the win.")
	return tbl, nil
}

// Indexing reproduces the Section 5.2.1 hazard: a system whose TLB is
// indexed by the large page number but whose software allocates no
// large pages (the paper's old-OS-on-new-hardware scenario).
func Indexing(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Section 5.2.1: 4KB-only software on large-page-indexed hardware (CPI_TLB)",
		"Program", "16e small-ix", "16e large-ix", "degrade", "32e small-ix", "32e large-ix", "degrade")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		res, err := runPass(s, refs, policy.NewSingle(addr.Size4K),
			twoWay(16, tlb.IndexSmall), twoWay(16, tlb.IndexLarge),
			twoWay(32, tlb.IndexSmall), twoWay(32, tlb.IndexLarge))
		if err != nil {
			return nil, err
		}
		d16 := metrics.Ratio(res.TLBs[1].CPITLB, res.TLBs[0].CPITLB)
		d32 := metrics.Ratio(res.TLBs[3].CPITLB, res.TLBs[2].CPITLB)
		tbl.Row(s.Name,
			tableio.F(res.TLBs[0].CPITLB, 3), tableio.F(res.TLBs[1].CPITLB, 3),
			tableio.F(d16, 1)+"x",
			tableio.F(res.TLBs[2].CPITLB, 3), tableio.F(res.TLBs[3].CPITLB, 3),
			tableio.F(d32, 1)+"x")
	}
	tbl.Note("Paper: without OS support, two-page hardware can do worse than plain 4KB hardware (Table 5.1 cols 1-2).")
	return tbl, nil
}
