package experiments

import (
	"context"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
)

// passFuture submits one (workload, policy, TLB set) pass to the
// engine. All CPI experiments funnel through here, so any two that
// need the same single-TLB unit share one simulation.
func passFuture(ctx context.Context, o *Options, wl string, refs uint64, pol engine.PolicySpec, tlbs ...tlb.Config) *engine.Future[*core.Result] {
	return o.Engine.Pass(ctx, engine.PassSpec{
		Workload: wl, Refs: refs, Policy: pol, TLBs: tlbs,
	})
}

// Fig51 reproduces Figure 5.1: CPI_TLB on a 16-entry fully associative
// TLB for 4KB, 8KB and 32KB single page sizes and the 4KB/32KB scheme.
func Fig51(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	sizes := []addr.PageSize{addr.Size4K, addr.Size8K, addr.Size32K}
	type row struct {
		singles []*engine.Future[*core.Result]
		two     *engine.Future[*core.Result]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		for _, size := range sizes {
			rows[i].singles = append(rows[i].singles,
				passFuture(ctx, o, s.Name, refs, engine.SinglePolicy(size), faCfg(16)))
		}
		rows[i].two = passFuture(ctx, o, s.Name, refs,
			engine.TwoSizePolicy(policy.DefaultTwoSizeConfig(T)), faCfg(16))
	}
	tbl := tableio.New("Figure 5.1: CPI_TLB, 16-entry fully associative TLB",
		"Program", "4KB", "8KB", "32KB", "4KB/32KB", "large-ref%")
	for i, s := range specs {
		var cpis []float64
		for _, f := range rows[i].singles {
			res, err := f.Wait(ctx)
			if err != nil {
				return nil, err
			}
			cpis = append(cpis, res.TLBs[0].CPITLB)
		}
		resTwo, err := rows[i].two.Wait(ctx)
		if err != nil {
			return nil, err
		}
		largePct := 100 * float64(resTwo.PolicyStats.LargeRefs) / float64(resTwo.PolicyStats.Refs)
		tbl.Row(s.Name,
			tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
			tableio.F(resTwo.TLBs[0].CPITLB, 3), tableio.F(largePct, 0))
	}
	tbl.Note("Paper: 32KB ≈ 8x better than 4KB; two-page slightly above 32KB (25-cycle penalty), usually below 8KB.")
	return tbl, nil
}

// Fig52 reproduces Figure 5.2: CPI_TLB on 16- and 32-entry two-way
// set-associative TLBs, single sizes (indexed by their own page number)
// vs the two-page scheme with exact indexing.
func Fig52(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	sizes := []addr.PageSize{addr.Size4K, addr.Size8K, addr.Size32K}
	entriesList := []int{16, 32}
	type row struct {
		singles []*engine.Future[*core.Result]
		two     *engine.Future[*core.Result]
	}
	var rows []row
	for _, entries := range entriesList {
		for _, s := range specs {
			refs := refsFor(s, o.Scale)
			T := windowFor(refs)
			var r row
			for _, size := range sizes {
				r.singles = append(r.singles,
					passFuture(ctx, o, s.Name, refs, engine.SinglePolicy(size), twoWayCfg(entries, tlb.IndexExact)))
			}
			r.two = passFuture(ctx, o, s.Name, refs,
				engine.TwoSizePolicy(policy.DefaultTwoSizeConfig(T)), twoWayCfg(entries, tlb.IndexExact))
			rows = append(rows, r)
		}
	}
	tbl := tableio.New("Figure 5.2: CPI_TLB, two-way set-associative TLBs (exact index)",
		"Program", "Entries", "4KB", "8KB", "32KB", "4KB/32KB")
	i := 0
	for _, entries := range entriesList {
		for _, s := range specs {
			var cpis []float64
			for _, f := range rows[i].singles {
				res, err := f.Wait(ctx)
				if err != nil {
					return nil, err
				}
				cpis = append(cpis, res.TLBs[0].CPITLB)
			}
			resTwo, err := rows[i].two.Wait(ctx)
			if err != nil {
				return nil, err
			}
			tbl.Row(s.Name, tableio.F(float64(entries), 0),
				tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
				tableio.F(resTwo.TLBs[0].CPITLB, 3))
			i++
		}
	}
	tbl.Note("Paper: most programs improve with two page sizes; espresso/worm degrade; tomcatv thrashes large-index bits.")
	return tbl, nil
}

// Table51 reproduces Table 5.1: the four columns comparing indexing
// schemes for 16- and 32-entry two-way TLBs.
func Table51(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	entriesList := []int{16, 32}
	type row struct {
		four, two *engine.Future[*core.Result]
	}
	var rows []row
	for _, entries := range entriesList {
		for _, s := range specs {
			refs := refsFor(s, o.Scale)
			T := windowFor(refs)
			rows = append(rows, row{
				// One submission covers the two 4KB columns; the engine
				// decomposes it per TLB and shares units with DeltaMP
				// and Indexing.
				four: passFuture(ctx, o, s.Name, refs, engine.SinglePolicy(addr.Size4K),
					twoWayCfg(entries, tlb.IndexSmall), twoWayCfg(entries, tlb.IndexLarge)),
				two: passFuture(ctx, o, s.Name, refs,
					engine.TwoSizePolicy(policy.DefaultTwoSizeConfig(T)),
					twoWayCfg(entries, tlb.IndexLarge), twoWayCfg(entries, tlb.IndexExact)),
			})
		}
	}
	tbl := tableio.New("Table 5.1: Comparison of indexing schemes (CPI_TLB, two-way)",
		"Program", "Entries", "4KB", "4KB lg-ix", "4K/32K lg-ix", "4K/32K exact")
	i := 0
	for _, entries := range entriesList {
		for _, s := range specs {
			res4, err := rows[i].four.Wait(ctx)
			if err != nil {
				return nil, err
			}
			resTwo, err := rows[i].two.Wait(ctx)
			if err != nil {
				return nil, err
			}
			tbl.Row(s.Name, tableio.F(float64(entries), 0),
				tableio.F(res4.TLBs[0].CPITLB, 3),
				tableio.F(res4.TLBs[1].CPITLB, 3),
				tableio.F(resTwo.TLBs[0].CPITLB, 3),
				tableio.F(resTwo.TLBs[1].CPITLB, 3))
			i++
		}
	}
	tbl.Note("Paper: the large-page index without large pages (col 2 vs 1) degrades severely; exact vs large index are often comparable with two sizes.")
	return tbl, nil
}

// DeltaMP reproduces the Section 5.2 metric: the critical miss-penalty
// increase Δmp(4KB/32KB) on the fully associative and two-way TLBs.
func DeltaMP(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	type row struct {
		four, two *engine.Future[*core.Result]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		rows[i] = row{
			four: passFuture(ctx, o, s.Name, refs, engine.SinglePolicy(addr.Size4K),
				faCfg(16), twoWayCfg(16, tlb.IndexSmall), twoWayCfg(32, tlb.IndexSmall)),
			two: passFuture(ctx, o, s.Name, refs,
				engine.TwoSizePolicy(policy.DefaultTwoSizeConfig(T)),
				faCfg(16), twoWayCfg(16, tlb.IndexExact), twoWayCfg(32, tlb.IndexExact)),
		}
	}
	tbl := tableio.New("Critical miss-penalty increase Δmp(4KB/32KB)",
		"Program", "FA16 Δmp", "16e2w Δmp", "32e2w Δmp")
	for i, s := range specs {
		res4, err := rows[i].four.Wait(ctx)
		if err != nil {
			return nil, err
		}
		resTwo, err := rows[i].two.Wait(ctx)
		if err != nil {
			return nil, err
		}
		cells := []string{s.Name}
		for j := range res4.TLBs {
			d := metrics.CriticalMissPenaltyIncrease(res4.TLBs[j].MPI, resTwo.TLBs[j].MPI)
			cells = append(cells, tableio.Pct(d))
		}
		tbl.Row(cells...)
	}
	tbl.Note("Paper: Δmp ranges 30%%-1200%% for programs that improve; even a 30%% penalty increase preserves the win.")
	return tbl, nil
}

// Indexing reproduces the Section 5.2.1 hazard: a system whose TLB is
// indexed by the large page number but whose software allocates no
// large pages (the paper's old-OS-on-new-hardware scenario).
func Indexing(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	futs := make([]*engine.Future[*core.Result], len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		futs[i] = passFuture(ctx, o, s.Name, refs, engine.SinglePolicy(addr.Size4K),
			twoWayCfg(16, tlb.IndexSmall), twoWayCfg(16, tlb.IndexLarge),
			twoWayCfg(32, tlb.IndexSmall), twoWayCfg(32, tlb.IndexLarge))
	}
	tbl := tableio.New("Section 5.2.1: 4KB-only software on large-page-indexed hardware (CPI_TLB)",
		"Program", "16e small-ix", "16e large-ix", "degrade", "32e small-ix", "32e large-ix", "degrade")
	for i, s := range specs {
		res, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		d16 := metrics.Ratio(res.TLBs[1].CPITLB, res.TLBs[0].CPITLB)
		d32 := metrics.Ratio(res.TLBs[3].CPITLB, res.TLBs[2].CPITLB)
		tbl.Row(s.Name,
			tableio.F(res.TLBs[0].CPITLB, 3), tableio.F(res.TLBs[1].CPITLB, 3),
			tableio.F(d16, 1)+"x",
			tableio.F(res.TLBs[2].CPITLB, 3), tableio.F(res.TLBs[3].CPITLB, 3),
			tableio.F(d32, 1)+"x")
	}
	tbl.Note("Paper: without OS support, two-page hardware can do worse than plain 4KB hardware (Table 5.1 cols 1-2).")
	return tbl, nil
}
