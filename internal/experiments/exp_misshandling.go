package experiments

import (
	"context"

	"twopage/internal/addr"
	"twopage/internal/engine"
	"twopage/internal/pagetable"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
)

// missHandlingRow is one workload's per-organization handler costs.
type missHandlingRow struct {
	walk, sf, lf, stlbCost float64 // avg cycles per miss
	stlbHitPct             float64
	largeMissPct           float64
}

// MissHandling compares the software miss-handling organizations that
// Section 2.3 sketches for two page sizes, by replaying every hardware
// TLB miss of a two-page run against each organization and averaging
// the handler cost:
//
//   - the chunk-indexed two-level table (the 25-cycle baseline);
//   - a hashed page table probed small-page-size first;
//   - the same hashed table probed large-page-size first;
//   - a software translation cache (STLB) in front of the two-level walk.
//
// The paper leaves "precise miss-handling techniques and software data
// structures ... beyond the scope of this paper"; this experiment fills
// in the comparison its text anticipates.
func MissHandling(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	futs := make([]*engine.Future[missHandlingRow], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		futs[i] = engine.Go(o.Engine, ctx, "misshandling "+s.Name,
			func(ctx context.Context) (missHandlingRow, error) {
				pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
				hw := tlb.NewFullyAssoc(16)
				pt := pagetable.New()
				hashSF, err := pagetable.NewHashed(4096, pagetable.SmallFirst)
				if err != nil {
					return missHandlingRow{}, err
				}
				hashLF, err := pagetable.NewHashed(4096, pagetable.LargeFirst)
				if err != nil {
					return missHandlingRow{}, err
				}
				stlb, err := pagetable.NewSTLB(512)
				if err != nil {
					return missHandlingRow{}, err
				}

				var nextFrame addr.PN
				var misses, largeMisses uint64
				var cWalk, cSF, cLF, cSTLB float64

				// ensurePT maps p in the two-level table, resolving stale
				// size conflicts left by promote/demote races.
				ensurePT := func(p policy.Page) {
					nextFrame++
					if uint(p.Shift) >= addr.ChunkShift {
						if err := pt.MapLarge(p.Number, nextFrame); err != nil {
							// Small mappings linger: collapse them.
							if _, _, perr := pt.Promote(p.Number, nextFrame); perr != nil {
								return
							}
						}
						return
					}
					if err := pt.MapSmall(p.Number, nextFrame); err != nil {
						// Chunk still mapped large from a stale state: drop it.
						pt.Unmap(addr.VA(uint64(addr.ChunkOfBlock(p.Number)) << addr.ChunkShift))
						_ = pt.MapSmall(p.Number, nextFrame)
					}
				}

				if err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
					for _, ref := range batch {
						res := pol.Assign(ref.Addr)
						switch res.Event {
						case policy.EventPromote:
							first := addr.FirstBlock(res.Chunk)
							for i := addr.PN(0); i < addr.BlocksPerChunk; i++ {
								p := policy.Page{Number: first + i, Shift: addr.BlockShift}
								hw.Invalidate(p)
								hashSF.Remove(p)
								hashLF.Remove(p)
							}
							stlb.InvalidateChunk(res.Chunk)
							nextFrame++
							if _, _, err := pt.Promote(res.Chunk, nextFrame); err != nil {
								// No resident small mappings: the large page
								// will fault in on demand.
								_ = err
							}
						case policy.EventDemote:
							lp := policy.Page{Number: res.Chunk, Shift: addr.ChunkShift}
							hw.Invalidate(lp)
							hashSF.Remove(lp)
							hashLF.Remove(lp)
							stlb.InvalidateChunk(res.Chunk)
							pt.Unmap(lp.Base()) // small pages fault back in lazily
						}
						if hw.Access(ref.Addr, res.Page) {
							continue
						}
						misses++
						large := uint(res.Page.Shift) >= addr.ChunkShift
						if large {
							largeMisses++
						}

						// Two-level chunk-indexed walk.
						_, w := pt.Lookup(ref.Addr)
						if !w.Found {
							ensurePT(res.Page)
						}
						cWalk += w.Cycles

						// Hashed tables, both probe orders.
						_, hwalk := hashSF.Lookup(ref.Addr)
						if !hwalk.Found {
							hashSF.Insert(res.Page, nextFrame)
						}
						cSF += hwalk.Cycles
						_, hwalk = hashLF.Lookup(ref.Addr)
						if !hwalk.Found {
							hashLF.Insert(res.Page, nextFrame)
						}
						cLF += hwalk.Cycles

						// STLB in front of the two-level walk: trap overhead +
						// probe; on a miss the full handler runs behind it.
						pte, hit, probe := stlb.Lookup(ref.Addr)
						cost := pagetable.TrapCycles + probe + 5 /* insert+return */
						if !hit {
							cost += pagetable.TwoSizeHandlerCycles()
							pte = pagetable.PTE{Frame: nextFrame, Valid: true, Large: large}
							stlb.Fill(res.Page, pte)
						}
						cSTLB += cost
					}
				}); err != nil {
					return missHandlingRow{}, err
				}
				if misses == 0 {
					misses = 1
				}
				m := float64(misses)
				return missHandlingRow{
					walk:         cWalk / m,
					sf:           cSF / m,
					lf:           cLF / m,
					stlbCost:     cSTLB / m,
					stlbHitPct:   100 * stlb.HitRatio(),
					largeMissPct: 100 * float64(largeMisses) / m,
				}, nil
			})
	}
	tbl := tableio.New("Extension: miss-handler cost per organization (avg cycles per TLB miss)",
		"Program", "2-level", "hash small-1st", "hash large-1st", "STLB+2-level", "STLB hit%", "large-miss%")
	for i, s := range specs {
		row, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			tableio.F(row.walk, 1),
			tableio.F(row.sf, 1),
			tableio.F(row.lf, 1),
			tableio.F(row.stlbCost, 1),
			tableio.F(row.stlbHitPct, 0),
			tableio.F(row.largeMissPct, 0))
	}
	tbl.Note("Paper baseline: 25 cycles for a two-size handler. Hashed probe order should follow the miss mix (large-miss%%).")
	return tbl, nil
}
