package experiments

import (
	"context"
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// threeClasses is the 4KB/32KB/256KB hierarchy the N-size experiments
// sweep: the paper's two sizes plus one more ×8 step, the smallest
// hierarchy that exercises every level of the promotion ladder while
// staying inside the window tracker's 24-bit chunk bound.
func threeClasses() addr.SizeClasses {
	return addr.MustShiftClasses(addr.BlockShift, addr.ChunkShift, addr.Shift256K)
}

// faCfgN is a fully associative TLB carrying an explicit hierarchy, so
// its per-class statistics classify 256KB pages correctly.
func faCfgN(entries int, classes addr.SizeClasses) tlb.Config {
	return tlb.Config{Entries: entries, Ways: entries, Shifts: classes.Shifts()}
}

// sampledLadderWSS runs a policy-only pass of the ladder configuration
// over the workload, sampling the instantaneous N-size working-set size
// (wss.Sampled). It is deliberately a separate pass from the TLB
// simulation: the engine memoizes the TLB pass across experiments, and
// re-running the cheap policy loop here keeps the sampled calculator
// out of the simulator's hot path.
func sampledLadderWSS(ctx context.Context, o *Options, wl string, refs uint64, cfg policy.LadderConfig) *engine.Future[float64] {
	key := fmt.Sprintf("ladder3 ws %s T=%d thr=%v", wl, cfg.T, cfg.Thresholds)
	return engine.Go(o.Engine, ctx, key, func(ctx context.Context) (float64, error) {
		s, err := workload.Get(wl)
		if err != nil {
			return 0, err
		}
		pol := policy.NewLadder(cfg)
		samp := wss.NewSampled(pol, 0)
		err = drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
			for _, ref := range batch {
				pol.Assign(ref.Addr)
				samp.Step()
			}
		})
		if err != nil {
			return 0, err
		}
		return samp.Result().AvgBytes, nil
	})
}

// Ladder3 sweeps the three-size promotion ladder's thresholds over the
// 4KB/32KB/256KB hierarchy, against the NAPOT-contiguity alternative
// (promote a region the moment every one of its base blocks has been
// touched, RISC-V SVNAPOT style: no window, no demotion). CPI_TLB uses
// the 29-cycle three-size miss penalty on a 16-entry fully associative
// TLB; WS_norm is the sampled N-size working set over the static 4KB
// base (the NAPOT policy has no reference window, so no working set is
// reported for it).
func Ladder3(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	classes := threeClasses()
	sweeps := [][]int{{4, 4}, {2, 2}, {8, 8}, {4, 8}}
	type variant struct {
		name string
		pass *engine.Future[*core.Result]
		ws   *engine.Future[float64] // nil for NAPOT
	}
	rows := make([][]variant, len(specs))
	ladders := make([]*engine.Future[[]wss.Result], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		ladders[i] = staticWSS(ctx, o, s, refs, uint64(T))
		for _, thr := range sweeps {
			cfg := policy.LadderConfig{
				T: T, Classes: classes,
				Thresholds: append([]int(nil), thr...), Demote: true,
			}
			rows[i] = append(rows[i], variant{
				name: fmt.Sprintf("thr %d/%d", thr[0], thr[1]),
				pass: passFuture(ctx, o, s.Name, refs, engine.LadderPolicy(cfg), faCfgN(16, classes)),
				ws:   sampledLadderWSS(ctx, o, s.Name, refs, cfg),
			})
		}
		rows[i] = append(rows[i], variant{
			name: "napot",
			pass: engine.Go(o.Engine, ctx, "ladder3 napot "+s.Name,
				func(ctx context.Context) (*core.Result, error) {
					pol := policy.NewNapot(policy.NapotConfig{Classes: classes})
					hw := tlb.MustNew(faCfgN(16, classes))
					return core.NewSimulator(pol, []tlb.TLB{hw}).Run(ctx, s.New(refs))
				}),
		})
	}
	tbl := tableio.New("Extension: three-size promotion ladder, 4KB/32KB/256KB (16-entry FA, 29-cycle penalty)",
		"Program", "Policy", "CPI_TLB", "32K-ref%", "256K-ref%", "promo-32K", "promo-256K", "WS_norm")
	for i, s := range specs {
		ladder, err := ladders[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		base := ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes
		for _, v := range rows[i] {
			res, err := v.pass.Wait(ctx)
			if err != nil {
				return nil, err
			}
			ls := res.LadderStats
			if ls == nil {
				return nil, fmt.Errorf("experiments: %s %s pass has no ladder stats", s.Name, v.name)
			}
			wsCell := "-"
			if v.ws != nil {
				w, err := v.ws.Wait(ctx)
				if err != nil {
					return nil, err
				}
				wsCell = tableio.F(w/base, 2)
			}
			tbl.Row(s.Name, v.name,
				tableio.F(res.TLBs[0].CPITLB, 3),
				tableio.F(100*float64(ls.RefsByClass[1])/float64(ls.Refs), 1),
				tableio.F(100*float64(ls.RefsByClass[2])/float64(ls.Refs), 1),
				tableio.F(float64(ls.Promotions[1]), 0),
				tableio.F(float64(ls.Promotions[2]), 0),
				wsCell)
		}
	}
	tbl.Note("thr a/b: promote a chunk at a active blocks, a 256KB region at b mapped chunks; napot = promote on full contiguity, never demote.")
	return tbl, nil
}

// NIndex sweeps the Section 2.2 indexing question across the three-size
// hierarchy: which page-number bits index a set-associative TLB when
// three sizes coexist. Indexing by any single class's bits is option
// (a)/(b) generalized; exact per-size indexing with sequential reprobe
// is option (d); the per-class split is option (c). All organizations
// run under the default three-size ladder (thresholds 4/4).
func NIndex(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	classes := threeClasses()
	entriesSweep := []int{16, 32}
	type row struct {
		entries int
		pass    *engine.Future[*core.Result] // ix0, ix1, ix2, exact, FA
		split   *engine.Future[*core.Result]
	}
	rows := make([][]row, len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		cfg := policy.DefaultLadderConfig(T, classes)
		for _, entries := range entriesSweep {
			entries := entries
			var cfgs []tlb.Config
			for k := 0; k < classes.N(); k++ {
				cfgs = append(cfgs, tlb.Config{
					Entries: entries, Ways: 2,
					Index: tlb.IndexByClass(k), Shifts: classes.Shifts(),
				})
			}
			cfgs = append(cfgs, tlb.Config{
				Entries: entries, Ways: 2,
				Index: tlb.IndexExact, Shifts: classes.Shifts(),
			})
			cfgs = append(cfgs, faCfgN(entries, classes))
			rows[i] = append(rows[i], row{
				entries: entries,
				pass:    passFuture(ctx, o, s.Name, refs, engine.LadderPolicy(cfg), cfgs...),
				split: engine.Go(o.Engine, ctx,
					fmt.Sprintf("nindex split %s e%d", s.Name, entries),
					func(ctx context.Context) (*core.Result, error) {
						// Half the entries to the base class, a quarter to
						// each large class — the 8+4+4 shape of the paper's
						// PA-RISC example, scaled.
						half := entries / 2
						quarter := entries / 4
						ms, err := tlb.NewMultiSplit([]tlb.Config{
							{Entries: half, Ways: 2, Shifts: classes.Shifts()},
							{Entries: quarter, Ways: quarter, Shifts: classes.Shifts()},
							{Entries: quarter, Ways: quarter, Shifts: classes.Shifts()},
						})
						if err != nil {
							return nil, err
						}
						pol := policy.NewLadder(cfg)
						return core.NewSimulator(pol, []tlb.TLB{ms}).Run(ctx, s.New(refs))
					}),
			})
		}
	}
	tbl := tableio.New("Extension: TLB indexing with three page sizes, 2-way (CPI_TLB, 29-cycle penalty)",
		"Program", "Entries", "ix 4K", "ix 32K", "ix 256K", "exact", "split", "FA")
	for i, s := range specs {
		for _, r := range rows[i] {
			res, err := r.pass.Wait(ctx)
			if err != nil {
				return nil, err
			}
			split, err := r.split.Wait(ctx)
			if err != nil {
				return nil, err
			}
			tbl.Row(s.Name, tableio.F(float64(r.entries), 0),
				tableio.F(res.TLBs[0].CPITLB, 3),
				tableio.F(res.TLBs[1].CPITLB, 3),
				tableio.F(res.TLBs[2].CPITLB, 3),
				tableio.F(res.TLBs[3].CPITLB, 3),
				tableio.F(split.TLBs[0].CPITLB, 3),
				tableio.F(res.TLBs[4].CPITLB, 3))
		}
	}
	tbl.Note("Indexing by one class's bits thrashes the others' sets; exact indexing pays reprobes; the split idles unused halves.")
	return tbl, nil
}
