package experiments

import (
	"context"
	"fmt"

	"twopage/internal/addr"
	"twopage/internal/engine"
	"twopage/internal/mmu"
	"twopage/internal/multiprog"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

// SharedMem composes the two systems the paper names as missing —
// multiprogramming and memory management — into one measurement: four
// processes share one physical memory under the full MMU (demand
// paging, clock replacement, promotion), and the 4KB baseline competes
// with the two-page policy as memory shrinks. It quantifies the
// paper's Section 6 worry that "larger working sets either demand a
// larger main memory, cause a higher page fault rate, or both" — in
// the multiprogrammed setting where the pressure actually arises.
func SharedMem(ctx context.Context, o *Options) (*tableio.Table, error) {
	mix := []string{"li", "x11perf", "espresso", "eqntott"}
	base, err := workload.Get("li")
	if err != nil {
		return nil, err
	}
	perProc := refsFor(base, o.Scale)
	quantum := int(perProc / 50)
	if quantum < 2000 {
		quantum = 2000
	}
	T := windowFor(perProc * uint64(len(mix)))

	memSizes := []int{16, 4, 2}
	var futs []*engine.Future[mmu.Stats]
	for _, memMB := range memSizes {
		memMB := memMB
		for _, two := range []bool{false, true} {
			two := two
			label := fmt.Sprintf("sharedmem %dMB two=%t", memMB, two)
			futs = append(futs, engine.Go(o.Engine, ctx, label,
				func(ctx context.Context) (mmu.Stats, error) {
					var pol policy.Assigner
					if two {
						pol = policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
					} else {
						pol = policy.NewSingle(addr.Size4K)
					}
					procs := make([]multiprog.Process, len(mix))
					for i, wname := range mix {
						s, err := workload.Get(wname)
						if err != nil {
							return mmu.Stats{}, err
						}
						procs[i] = multiprog.Process{Name: wname, Source: s.New(perProc)}
					}
					mp, err := multiprog.New(procs, quantum)
					if err != nil {
						return mmu.Stats{}, err
					}
					m, err := mmu.New(mmu.Config{
						TLB:    tlb.NewFullyAssoc(64),
						Policy: pol,
						Memory: addr.PageSize(memMB << 20),
					})
					if err != nil {
						return mmu.Stats{}, err
					}
					st, err := m.Run(ctx, mp)
					if err != nil {
						return mmu.Stats{}, err
					}
					o.Engine.Record(label, m.Counters())
					return st, nil
				}))
		}
	}
	tbl := tableio.New("Extension: four processes sharing memory under the full MMU (per 1000 accesses)",
		"Memory", "Policy", "cyc/access", "TLB miss%", "faults", "evictions", "copiedKB")
	i := 0
	for _, memMB := range memSizes {
		for _, two := range []bool{false, true} {
			name := "4KB"
			if two {
				name = "4KB/32KB"
			}
			st, err := futs[i].Wait(ctx)
			if err != nil {
				return nil, err
			}
			per := float64(st.Accesses) / 1000
			tbl.Row(fmt.Sprintf("%dMB", memMB), name,
				tableio.F(st.CyclesPerAccess(), 2),
				tableio.F(100*float64(st.TLBMisses)/float64(st.Accesses), 2),
				tableio.F(float64(st.Faults)/per, 2),
				tableio.F(float64(st.Evictions)/per, 2),
				tableio.F(float64(st.CopiedBytes)/1024, 0))
			i++
		}
	}
	tbl.Note("Four-process mix (li, x11perf, espresso, eqntott), 64-entry FA TLB with ASID-tagged entries.")
	return tbl, nil
}
