package experiments

import (
	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
)

// ablationDefault is the representative subset used by the ablations
// when no explicit workload list is given: one program per behaviour
// class (sparse heap, promotion-resistant, dense matrix, large-index
// pathological).
var ablationDefault = []string{"li", "worm", "matrix300", "tomcatv"}

func (o Options) ablationSpecs() ([]workload.Spec, error) {
	if len(o.Workloads) == 0 {
		o.Workloads = ablationDefault
	}
	return o.specs()
}

// ThresholdSweep varies the promotion threshold over 1..8 blocks,
// reporting CPI_TLB (16-entry FA), the working-set cost, and how much
// traffic moves to large pages. Threshold 4 is the paper's policy;
// threshold 1 promotes on first touch (≈ a 32KB single size with lazy
// growth), threshold 8 promotes only fully-populated chunks.
func ThresholdSweep(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Ablation: promotion threshold (16-entry fully associative)",
		"Program", "Thr", "CPI_TLB", "WS_norm", "large-ref%", "promos")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		// 4KB base working set for normalization, one static pass.
		base, _, err := wsNormSingle(s.New(refs), uint64(T), []uint{addr.Shift32K})
		if err != nil {
			return nil, err
		}
		for thr := 1; thr <= addr.BlocksPerChunk; thr++ {
			cfg := policy.TwoSizeConfig{T: T, Threshold: thr, Demote: true, LargeShift: addr.ChunkShift}
			pol := policy.NewTwoSize(cfg)
			sim := core.NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(16)}, core.WithWSS())
			res, err := sim.Run(s.New(refs))
			if err != nil {
				return nil, err
			}
			largePct := 100 * float64(res.PolicyStats.LargeRefs) / float64(res.PolicyStats.Refs)
			tbl.Row(s.Name, tableio.F(float64(thr), 0),
				tableio.F(res.TLBs[0].CPITLB, 3),
				tableio.F(res.WSS.AvgBytes/base, 2),
				tableio.F(largePct, 0),
				tableio.F(float64(res.PolicyStats.Promotions), 0))
		}
	}
	tbl.Note("Threshold 4 is the paper's policy: the half-or-more rule bounds WS_norm at 2.0.")
	return tbl, nil
}

// Combos compares the 4KB/16KB, 4KB/32KB and 4KB/64KB combinations the
// paper measured but had no space to print (Section 3.2).
func Combos(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Ablation: large-page size in the two-page scheme (16-entry FA)",
		"Program", "CPI 4/16K", "CPI 4/32K", "CPI 4/64K", "WSn 4/16K", "WSn 4/32K", "WSn 4/64K")
	shifts := []uint{addr.Shift16K, addr.Shift32K, addr.Shift64K}
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		base, _, err := wsNormSingle(s.New(refs), uint64(T), []uint{addr.Shift32K})
		if err != nil {
			return nil, err
		}
		var cpis, wsns []float64
		for _, ls := range shifts {
			bpc := 1 << (ls - addr.BlockShift)
			cfg := policy.TwoSizeConfig{T: T, Threshold: bpc / 2, Demote: true, LargeShift: ls}
			pol := policy.NewTwoSize(cfg)
			sim := core.NewSimulator(pol, []tlb.TLB{tlb.NewFullyAssoc(16)}, core.WithWSS())
			res, err := sim.Run(s.New(refs))
			if err != nil {
				return nil, err
			}
			cpis = append(cpis, res.TLBs[0].CPITLB)
			wsns = append(wsns, res.WSS.AvgBytes/base)
		}
		tbl.Row(s.Name,
			tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
			tableio.F(wsns[0], 2), tableio.F(wsns[1], 2), tableio.F(wsns[2], 2))
	}
	tbl.Note("Bigger large pages map more memory per entry but cost more working set; 32KB is the paper's sweet spot.")
	return tbl, nil
}

// SplitVsUnified compares Section 2.2's option (c) — split per-size
// TLBs — against a unified exact-index TLB and a fully associative TLB
// of the same total capacity, all under the two-page policy.
func SplitVsUnified(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Ablation: split vs unified two-page TLBs (16 entries total, CPI_TLB)",
		"Program", "unified 2-way exact", "split 12+4", "split 8+8", "fully assoc")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		mk := func() []tlb.TLB {
			// PA-RISC style: fully associative halves (the paper cites
			// HP's 4-entry Block TLB for large pages).
			split124, err := tlb.NewSplit(
				tlb.Config{Entries: 12, Ways: 12}, tlb.Config{Entries: 4, Ways: 4})
			if err != nil {
				panic(err)
			}
			split88, err := tlb.NewSplit(
				tlb.Config{Entries: 8, Ways: 2}, tlb.Config{Entries: 8, Ways: 4})
			if err != nil {
				panic(err)
			}
			return []tlb.TLB{
				twoWay(16, tlb.IndexExact),
				split124,
				split88,
				tlb.NewFullyAssoc(16),
			}
		}
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
		sim := core.NewSimulator(pol, mk())
		res, err := sim.Run(s.New(refs))
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			tableio.F(res.TLBs[0].CPITLB, 3),
			tableio.F(res.TLBs[1].CPITLB, 3),
			tableio.F(res.TLBs[2].CPITLB, 3),
			tableio.F(res.TLBs[3].CPITLB, 3))
	}
	tbl.Note("Split TLBs waste capacity when the page-size mix is skewed (paper Section 2.2, option (c)).")
	return tbl, nil
}

// ReplacementSweep varies the replacement policy on a 16-entry
// fully-associative and a 16-entry 2-way TLB with 4KB pages. The paper
// assumes LRU throughout.
func ReplacementSweep(o Options) (*tableio.Table, error) {
	o = o.normalized()
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	tbl := tableio.New("Ablation: replacement policy, 4KB pages (CPI_TLB)",
		"Program", "FA LRU", "FA FIFO", "FA random", "2-way LRU", "2-way FIFO", "2-way random")
	for _, s := range specs {
		refs := refsFor(s, o.Scale)
		var tlbs []tlb.TLB
		for _, repl := range []tlb.Replacement{tlb.LRU, tlb.FIFO, tlb.Random} {
			tlbs = append(tlbs, tlb.MustNew(tlb.Config{Entries: 16, Ways: 16, Repl: repl, Seed: 42}))
		}
		for _, repl := range []tlb.Replacement{tlb.LRU, tlb.FIFO, tlb.Random} {
			tlbs = append(tlbs, tlb.MustNew(tlb.Config{Entries: 16, Ways: 2, Repl: repl, Seed: 42}))
		}
		res, err := runPass(s, refs, policy.NewSingle(addr.Size4K), tlbs...)
		if err != nil {
			return nil, err
		}
		row := []string{s.Name}
		for _, tr := range res.TLBs {
			row = append(row, tableio.F(tr.CPITLB, 3))
		}
		tbl.Row(row...)
	}
	return tbl, nil
}
