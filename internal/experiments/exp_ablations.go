package experiments

import (
	"context"

	"twopage/internal/addr"
	"twopage/internal/core"
	"twopage/internal/engine"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/workload"
	"twopage/internal/wss"
)

// ablationDefault is the representative subset used by the ablations
// when no explicit workload list is given: one program per behaviour
// class (sparse heap, promotion-resistant, dense matrix, large-index
// pathological).
var ablationDefault = []string{"li", "worm", "matrix300", "tomcatv"}

// ablationSpecs resolves the ablation workload set without mutating the
// shared Options (the default list is applied locally).
func (o *Options) ablationSpecs() ([]workload.Spec, error) {
	if len(o.Workloads) == 0 {
		out := make([]workload.Spec, 0, len(ablationDefault))
		for _, name := range ablationDefault {
			s, err := workload.Get(name)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}
	return o.specs()
}

// wssPass submits a two-size pass with the working-set calculator
// attached, against a 16-entry fully associative TLB.
func wssPass(ctx context.Context, o *Options, wl string, refs uint64, cfg policy.TwoSizeConfig) *engine.Future[*core.Result] {
	return o.Engine.Pass(ctx, engine.PassSpec{
		Workload: wl, Refs: refs, Policy: engine.TwoSizePolicy(cfg),
		TLBs: []tlb.Config{faCfg(16)}, WSS: true,
	})
}

// ThresholdSweep varies the promotion threshold over 1..8 blocks,
// reporting CPI_TLB (16-entry FA), the working-set cost, and how much
// traffic moves to large pages. Threshold 4 is the paper's policy;
// threshold 1 promotes on first touch (≈ a 32KB single size with lazy
// growth), threshold 8 promotes only fully-populated chunks.
func ThresholdSweep(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	type row struct {
		ladder *engine.Future[[]wss.Result]
		sweeps []*engine.Future[*core.Result]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		rows[i].ladder = staticWSS(ctx, o, s, refs, uint64(T))
		for thr := 1; thr <= addr.BlocksPerChunk; thr++ {
			cfg := policy.TwoSizeConfig{T: T, Threshold: thr, Demote: true, LargeShift: addr.ChunkShift}
			rows[i].sweeps = append(rows[i].sweeps, wssPass(ctx, o, s.Name, refs, cfg))
		}
	}
	tbl := tableio.New("Ablation: promotion threshold (16-entry fully associative)",
		"Program", "Thr", "CPI_TLB", "WS_norm", "large-ref%", "promos")
	for i, s := range specs {
		ladder, err := rows[i].ladder.Wait(ctx)
		if err != nil {
			return nil, err
		}
		base := ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes
		for j, f := range rows[i].sweeps {
			res, err := f.Wait(ctx)
			if err != nil {
				return nil, err
			}
			largePct := 100 * float64(res.PolicyStats.LargeRefs) / float64(res.PolicyStats.Refs)
			tbl.Row(s.Name, tableio.F(float64(j+1), 0),
				tableio.F(res.TLBs[0].CPITLB, 3),
				tableio.F(res.WSS.AvgBytes/base, 2),
				tableio.F(largePct, 0),
				tableio.F(float64(res.PolicyStats.Promotions), 0))
		}
	}
	tbl.Note("Threshold 4 is the paper's policy: the half-or-more rule bounds WS_norm at 2.0.")
	return tbl, nil
}

// Combos compares the 4KB/16KB, 4KB/32KB and 4KB/64KB combinations the
// paper measured but had no space to print (Section 3.2).
func Combos(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	shifts := []uint{addr.Shift16K, addr.Shift32K, addr.Shift64K}
	type row struct {
		ladder *engine.Future[[]wss.Result]
		combos []*engine.Future[*core.Result]
	}
	rows := make([]row, len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		rows[i].ladder = staticWSS(ctx, o, s, refs, uint64(T))
		for _, ls := range shifts {
			bpc := 1 << (ls - addr.BlockShift)
			cfg := policy.TwoSizeConfig{T: T, Threshold: bpc / 2, Demote: true, LargeShift: ls}
			rows[i].combos = append(rows[i].combos, wssPass(ctx, o, s.Name, refs, cfg))
		}
	}
	tbl := tableio.New("Ablation: large-page size in the two-page scheme (16-entry FA)",
		"Program", "CPI 4/16K", "CPI 4/32K", "CPI 4/64K", "WSn 4/16K", "WSn 4/32K", "WSn 4/64K")
	for i, s := range specs {
		ladder, err := rows[i].ladder.Wait(ctx)
		if err != nil {
			return nil, err
		}
		base := ladder[engine.StaticIndex(addr.Shift4K)].AvgBytes
		var cpis, wsns []float64
		for _, f := range rows[i].combos {
			res, err := f.Wait(ctx)
			if err != nil {
				return nil, err
			}
			cpis = append(cpis, res.TLBs[0].CPITLB)
			wsns = append(wsns, res.WSS.AvgBytes/base)
		}
		tbl.Row(s.Name,
			tableio.F(cpis[0], 3), tableio.F(cpis[1], 3), tableio.F(cpis[2], 3),
			tableio.F(wsns[0], 2), tableio.F(wsns[1], 2), tableio.F(wsns[2], 2))
	}
	tbl.Note("Bigger large pages map more memory per entry but cost more working set; 32KB is the paper's sweet spot.")
	return tbl, nil
}

// SplitVsUnified compares Section 2.2's option (c) — split per-size
// TLBs — against a unified exact-index TLB and a fully associative TLB
// of the same total capacity, all under the two-page policy. Split TLBs
// are not expressible as one tlb.Config, so each workload runs as an
// opaque task driving all four organizations in one pass.
func SplitVsUnified(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	futs := make([]*engine.Future[*core.Result], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		T := windowFor(refs)
		futs[i] = engine.Go(o.Engine, ctx, "split "+s.Name,
			func(ctx context.Context) (*core.Result, error) {
				// PA-RISC style: fully associative halves (the paper cites
				// HP's 4-entry Block TLB for large pages).
				split124, err := tlb.NewSplit(
					tlb.Config{Entries: 12, Ways: 12}, tlb.Config{Entries: 4, Ways: 4})
				if err != nil {
					return nil, err
				}
				split88, err := tlb.NewSplit(
					tlb.Config{Entries: 8, Ways: 2}, tlb.Config{Entries: 8, Ways: 4})
				if err != nil {
					return nil, err
				}
				tlbs := []tlb.TLB{
					twoWay(16, tlb.IndexExact),
					split124,
					split88,
					tlb.NewFullyAssoc(16),
				}
				pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
				return core.NewSimulator(pol, tlbs).Run(ctx, s.New(refs))
			})
	}
	tbl := tableio.New("Ablation: split vs unified two-page TLBs (16 entries total, CPI_TLB)",
		"Program", "unified 2-way exact", "split 12+4", "split 8+8", "fully assoc")
	for i, s := range specs {
		res, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			tableio.F(res.TLBs[0].CPITLB, 3),
			tableio.F(res.TLBs[1].CPITLB, 3),
			tableio.F(res.TLBs[2].CPITLB, 3),
			tableio.F(res.TLBs[3].CPITLB, 3))
	}
	tbl.Note("Split TLBs waste capacity when the page-size mix is skewed (paper Section 2.2, option (c)).")
	return tbl, nil
}

// ReplacementSweep varies the replacement policy on a 16-entry
// fully-associative and a 16-entry 2-way TLB with 4KB pages. The paper
// assumes LRU throughout.
func ReplacementSweep(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	futs := make([]*engine.Future[*core.Result], len(specs))
	for i, s := range specs {
		refs := refsFor(s, o.Scale)
		var cfgs []tlb.Config
		for _, repl := range []tlb.Replacement{tlb.LRU, tlb.FIFO, tlb.Random} {
			cfgs = append(cfgs, tlb.Config{Entries: 16, Ways: 16, Repl: repl, Seed: 42})
		}
		for _, repl := range []tlb.Replacement{tlb.LRU, tlb.FIFO, tlb.Random} {
			cfgs = append(cfgs, tlb.Config{Entries: 16, Ways: 2, Repl: repl, Seed: 42})
		}
		futs[i] = passFuture(ctx, o, s.Name, refs, engine.SinglePolicy(addr.Size4K), cfgs...)
	}
	tbl := tableio.New("Ablation: replacement policy, 4KB pages (CPI_TLB)",
		"Program", "FA LRU", "FA FIFO", "FA random", "2-way LRU", "2-way FIFO", "2-way random")
	for i, s := range specs {
		res, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		row := []string{s.Name}
		for _, tr := range res.TLBs {
			row = append(row, tableio.F(tr.CPITLB, 3))
		}
		tbl.Row(row...)
	}
	return tbl, nil
}
