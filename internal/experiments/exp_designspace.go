package experiments

import (
	"context"
	"fmt"
	"time"

	"twopage/internal/addr"
	"twopage/internal/allassoc"
	"twopage/internal/engine"
	"twopage/internal/metrics"
	"twopage/internal/policy"
	"twopage/internal/tableio"
	"twopage/internal/tlb"
	"twopage/internal/trace"
)

// designSpaceRow is one workload's sweep outcome. The timing ratio is
// measured inside a single task so both the sweep and the direct pass
// run on the same goroutine back to back — scheduling other workloads
// around it does not distort the comparison.
type designSpaceRow struct {
	configs int
	cells   [4]string
	ratio   float64
}

// DesignSpace reproduces the paper's methodological claim (Section 3.3):
// using all-associativity simulation "it was possible to simulate many
// TLB configurations (84 in our case) in one simulation in about double
// the simulation time for a comparable single TLB simulation". One
// stack-simulation pass sweeps set counts 1..32 at associativities
// 1..8 (out of which 84+ distinct single-page-size configurations
// fall), and the wall-clock ratio against one direct simulation is
// reported alongside a slice of the resulting design-space grid.
func DesignSpace(ctx context.Context, o *Options) (*tableio.Table, error) {
	specs, err := o.ablationSpecs()
	if err != nil {
		return nil, err
	}
	setCounts := []int{1, 2, 4, 8, 16, 32}
	const maxWays = 16 // 6 set counts x 16 ways = 96 configurations
	futs := make([]*engine.Future[designSpaceRow], len(specs))
	for i, s := range specs {
		s := s
		refs := refsFor(s, o.Scale)
		futs[i] = engine.Go(o.Engine, ctx, "designspace "+s.Name,
			func(ctx context.Context) (designSpaceRow, error) {
				// One-pass sweep over the whole design space.
				sw, err := allassoc.NewSweep(setCounts, addr.Shift4K, maxWays)
				if err != nil {
					return designSpaceRow{}, err
				}
				var instrs uint64
				startSweep := time.Now() //paperlint:ignore determinism wall time lands in the cell golden_test masks to "T"
				if err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
					for _, ref := range batch {
						if ref.Kind == trace.Instr {
							instrs++
						}
						sw.Access(ref.Addr)
					}
				}); err != nil {
					return designSpaceRow{}, err
				}
				sweepTime := time.Since(startSweep)

				// One comparable direct simulation (a single 16-entry FA TLB).
				direct := tlb.NewFullyAssoc(16)
				pol := policy.NewSingle(addr.Size4K)
				startDirect := time.Now() //paperlint:ignore determinism wall time lands in the cell golden_test masks to "T"
				if err := drainInto(ctx, s.New(refs), func(batch []trace.Ref) {
					for _, ref := range batch {
						res := pol.Assign(ref.Addr)
						direct.Access(ref.Addr, res.Page)
					}
				}); err != nil {
					return designSpaceRow{}, err
				}
				directTime := time.Since(startDirect)

				// Cross-check one point of the grid against the direct run.
				m16, err := sw.Misses(1, 16)
				if err == nil && m16 != direct.Stats().Misses() {
					return designSpaceRow{}, fmt.Errorf("designspace: sweep FA16 misses %d != direct %d",
						m16, direct.Stats().Misses())
				}

				cpi := func(sets, ways int) string {
					m, err := sw.Misses(sets, ways)
					if err != nil {
						return "-"
					}
					return tableio.F(metrics.CPITLB(m, instrs, metrics.MissPenaltySingle), 3)
				}
				return designSpaceRow{
					configs: len(sw.Results()),
					cells:   [4]string{cpi(1, 8), cpi(1, 16), cpi(8, 4), cpi(32, 2)},
					ratio:   float64(sweepTime) / float64(directTime),
				}, nil
			})
	}
	tbl := tableio.New("Extension: one-pass design-space sweep (CPI_TLB at 4KB pages)",
		"Program", "Configs", "8e", "16e", "32e", "64e(2w)", "sweep/direct time")
	for i, s := range specs {
		row, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, err
		}
		tbl.Row(s.Name,
			fmt.Sprintf("%d", row.configs),
			row.cells[0], row.cells[1], row.cells[2], row.cells[3],
			fmt.Sprintf("%.1fx", row.ratio))
	}
	tbl.Note("Paper: 84 configurations in one pass at ~2x the cost of one direct simulation (Section 3.3).")
	return tbl, nil
}
