package plot

import (
	"math"
	"strings"
	"testing"

	"twopage/internal/tableio"
)

func render(t *testing.T, c *BarChart) string {
	t.Helper()
	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestBasicChart(t *testing.T) {
	c := &BarChart{
		Title:      "CPI",
		Categories: []string{"li", "matrix300"},
		Series: []Series{
			{Label: "4KB", Values: []float64{1.6, 2.1}},
			{Label: "32KB", Values: []float64{0.15, 0.27}},
		},
		Width: 20,
	}
	out := render(t, c)
	for _, want := range []string{"CPI", "li", "matrix300", "4KB", "32KB", "2.100", "linear scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value gets the full-width bar; smaller ones shorter.
	lines := strings.Split(out, "\n")
	var max4, max32 int
	for _, ln := range lines {
		if strings.HasPrefix(ln, "(") { // scale footer
			continue
		}
		bars := strings.Count(ln, "#")
		if strings.Contains(ln, "2.100") {
			max4 = bars
		}
		if strings.Contains(ln, "0.150") {
			max32 = bars
		}
	}
	if max4 != 20 {
		t.Errorf("max bar = %d, want full width 20", max4)
	}
	if max32 >= max4/4 {
		t.Errorf("small bar (%d) should be much shorter than max (%d)", max32, max4)
	}
}

func TestLogScaleCompressesRange(t *testing.T) {
	c := &BarChart{
		Categories: []string{"a"},
		Series: []Series{
			{Label: "lo", Values: []float64{1}},
			{Label: "mid", Values: []float64{100}},
			{Label: "hi", Values: []float64{10000}},
		},
		Width: 40,
		Log:   true,
	}
	out := render(t, c)
	var bars []int
	for _, ln := range strings.Split(out, "\n") {
		if n := strings.Count(ln, "#"); n > 0 {
			bars = append(bars, n)
		}
	}
	if len(bars) != 3 {
		t.Fatalf("bars: %v\n%s", bars, out)
	}
	// Log scale: equal ratios give equal increments — mid should sit
	// halfway between lo and hi.
	if d1, d2 := bars[1]-bars[0], bars[2]-bars[1]; d1 < d2-2 || d1 > d2+2 {
		t.Errorf("log spacing uneven: %v", bars)
	}
	if !strings.Contains(out, "log scale") {
		t.Error("missing scale note")
	}
}

func TestNaNAndZeroHandling(t *testing.T) {
	c := &BarChart{
		Categories: []string{"x"},
		Series: []Series{
			{Label: "missing", Values: []float64{math.NaN()}},
			{Label: "zero", Values: []float64{0}},
			{Label: "val", Values: []float64{2}},
		},
	}
	out := render(t, c)
	if !strings.Contains(out, "|-") {
		t.Errorf("NaN should render as placeholder:\n%s", out)
	}
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "zero") && strings.Contains(ln, "#") {
			t.Errorf("zero value should have no bar: %q", ln)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []*BarChart{
		{},
		{Categories: []string{"a"}},
		{Categories: []string{"a"}, Series: []Series{{Label: "s", Values: []float64{1, 2}}}},
	}
	for i, c := range bad {
		var sb strings.Builder
		if _, err := c.WriteTo(&sb); err == nil {
			t.Errorf("chart %d should fail validation", i)
		}
	}
}

func TestFromTable(t *testing.T) {
	tbl := tableio.New("t", "Program", "Entries", "4KB", "two")
	tbl.Row("li", "16", "1.641", "0.202")
	tbl.Row("worm", "16", "0.855", "1.062")
	c, err := FromTable(tbl, "chart", []int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Categories) != 2 || c.Categories[0] != "li/16" {
		t.Fatalf("categories: %v", c.Categories)
	}
	if c.Series[0].Label != "4KB" || c.Series[1].Label != "two" {
		t.Fatalf("series: %+v", c.Series)
	}
	if c.Series[1].Values[1] != 1.062 {
		t.Fatalf("value: %v", c.Series[1].Values)
	}
	out := render(t, c)
	if !strings.Contains(out, "worm/16") {
		t.Errorf("rendered chart missing category:\n%s", out)
	}

	// Non-numeric cells become NaN rather than failing.
	tbl2 := tableio.New("t", "P", "v")
	tbl2.Row("a", "not-a-number")
	c2, err := FromTable(tbl2, "", []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(c2.Series[0].Values[0]) {
		t.Fatal("unparsable cell should be NaN")
	}

	// Column range errors.
	if _, err := FromTable(tbl, "", []int{9}, []int{1}); err == nil {
		t.Error("bad category column should fail")
	}
	if _, err := FromTable(tbl, "", []int{0}, []int{9}); err == nil {
		t.Error("bad value column should fail")
	}
	empty := tableio.New("t", "a")
	if _, err := FromTable(empty, "", []int{0}, []int{0}); err == nil {
		t.Error("empty table should fail")
	}
}
