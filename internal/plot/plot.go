// Package plot renders the paper's figures as ASCII charts: grouped
// horizontal bar charts (Figures 5.1 and 5.2 are CPI histograms;
// Figures 4.1 and 4.2 are working-set curves that read fine as grouped
// bars, with an optional logarithmic scale matching the paper's log
// axes).
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"twopage/internal/tableio"
)

// Series is one data series across all categories.
type Series struct {
	// Label names the series, e.g. "4KB" or "4KB/32KB".
	Label string
	// Values holds one value per category; NaN marks a missing value.
	Values []float64
}

// BarChart is a grouped horizontal bar chart.
type BarChart struct {
	Title      string
	Categories []string // e.g. program names
	Series     []Series
	// Width is the maximum bar length in characters (default 44).
	Width int
	// Log selects a logarithmic bar scale (the paper's Figure 4.1 axes).
	Log bool
	// Prec is the number of decimals in the printed value (default 3).
	Prec int
}

// WriteTo renders the chart.
func (c *BarChart) WriteTo(w io.Writer) (int64, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	width := c.Width
	if width <= 0 {
		width = 44
	}
	prec := c.Prec
	if prec <= 0 {
		prec = 3
	}
	lo, hi := c.extent()
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	catW, serW := 0, 0
	for _, cat := range c.Categories {
		if len(cat) > catW {
			catW = len(cat)
		}
	}
	for _, s := range c.Series {
		if len(s.Label) > serW {
			serW = len(s.Label)
		}
	}
	for ci, cat := range c.Categories {
		for si, s := range c.Series {
			label := ""
			if si == 0 {
				label = cat
			}
			v := s.Values[ci]
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%-*s  %-*s |%s\n", catW, label, serW, s.Label, "-")
				continue
			}
			n := c.barLen(v, lo, hi, width)
			fmt.Fprintf(&b, "%-*s  %-*s |%s %.*f\n",
				catW, label, serW, s.Label, strings.Repeat("#", n), prec, v)
		}
		if ci < len(c.Categories)-1 {
			b.WriteString("\n")
		}
	}
	scale := "linear"
	if c.Log {
		scale = "log"
	}
	fmt.Fprintf(&b, "(%s scale, max %.*f)\n", scale, prec, hi)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (c *BarChart) validate() error {
	if len(c.Categories) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("plot: empty chart")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return fmt.Errorf("plot: series %q has %d values for %d categories",
				s.Label, len(s.Values), len(c.Categories))
		}
	}
	return nil
}

// extent finds the positive min and the max across all values.
func (c *BarChart) extent() (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			if v > hi {
				hi = v
			}
			if v > 0 && v < lo {
				lo = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo = 1
	}
	return lo, hi
}

func (c *BarChart) barLen(v, lo, hi float64, width int) int {
	if hi <= 0 || v <= 0 {
		return 0
	}
	var frac float64
	if c.Log {
		if hi/lo < 1.0001 {
			frac = 1
		} else {
			frac = math.Log(v/lo) / math.Log(hi/lo)
		}
		// Keep a minimum visible bar for the smallest positive value.
		if frac < 0.02 {
			frac = 0.02
		}
	} else {
		frac = v / hi
	}
	n := int(math.Round(frac * float64(width)))
	if n < 1 {
		n = 1
	}
	if n > width {
		n = width
	}
	return n
}

// FromTable builds a chart from a rendered experiment table: catCols
// are joined to form the category label, valCols become one series
// each (named by the column header). Cells that do not parse as floats
// become NaN.
func FromTable(tbl *tableio.Table, title string, catCols, valCols []int) (*BarChart, error) {
	if tbl.Rows() == 0 {
		return nil, fmt.Errorf("plot: empty table")
	}
	heads := tbl.Headers()
	c := &BarChart{Title: title}
	for _, vc := range valCols {
		if vc < 0 || vc >= len(heads) {
			return nil, fmt.Errorf("plot: value column %d out of range", vc)
		}
		c.Series = append(c.Series, Series{Label: heads[vc]})
	}
	for r := 0; r < tbl.Rows(); r++ {
		var parts []string
		for _, cc := range catCols {
			if cc < 0 || cc >= len(heads) {
				return nil, fmt.Errorf("plot: category column %d out of range", cc)
			}
			if cell := strings.TrimSpace(tbl.Cell(r, cc)); cell != "" {
				parts = append(parts, cell)
			}
		}
		c.Categories = append(c.Categories, strings.Join(parts, "/"))
		for i, vc := range valCols {
			v, err := strconv.ParseFloat(strings.TrimSpace(tbl.Cell(r, vc)), 64)
			if err != nil {
				v = math.NaN()
			}
			c.Series[i].Values = append(c.Series[i].Values, v)
		}
	}
	return c, nil
}
