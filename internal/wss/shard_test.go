package wss

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

// genVAs produces a deterministic pseudo-random address stream mixing
// dense reuse with scattered pages, the shape that exercises both the
// capped-gap and tail terms of the residency accumulation.
func genVAs(n int, seed uint64) []addr.VA {
	s := seed ^ 0x9E3779B97F4A7C15
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	vas := make([]addr.VA, n)
	for i := range vas {
		switch next() % 4 {
		case 0: // hot dense region
			vas[i] = addr.VA(0x10000 + next()%(1<<14))
		case 1: // medium working set
			vas[i] = addr.VA(0x400000 + next()%(1<<18))
		case 2: // sequential-ish sweep
			vas[i] = addr.VA(0x800000 + uint64(i)*64)
		default: // cold scattered pages
			vas[i] = addr.VA(0x2000_0000 + (next()%(1<<12))<<addr.Shift64K)
		}
	}
	return vas
}

// The tentpole exactness property: merging shard-local static WSS state
// reproduces the serial result bit for bit — AvgBytes compared with ==,
// not a tolerance — for any shard count and any (even maximally uneven)
// split points.
func TestMergeStaticMatchesSerialExactly(t *testing.T) {
	shifts := []uint{addr.Shift4K, addr.Shift8K, addr.Shift16K, addr.Shift32K, addr.Shift64K}
	for _, n := range []int{0, 1, 5_000, 50_000} {
		vas := genVAs(n, uint64(n)+3)
		for _, T := range []uint64{1, 100, 5_000, 1 << 40} {
			serial := NewStatic(T, shifts...)
			for _, va := range vas {
				serial.Step(va)
			}
			want := serial.Finish()

			for _, shards := range []int{1, 2, 3, 8} {
				parts := make([]*StaticShard, shards)
				// Deliberately uneven split: shard i gets a slice that
				// grows quadratically, with the last shard absorbing the
				// remainder (and possibly nothing).
				cuts := make([]int, shards+1)
				for i := 1; i < shards; i++ {
					cuts[i] = n * i * i / (shards * shards)
				}
				cuts[shards] = n
				for i := 0; i < shards; i++ {
					parts[i] = NewStaticShard(T, uint64(cuts[i]), shifts...)
					for _, va := range vas[cuts[i]:cuts[i+1]] {
						parts[i].Step(va)
					}
				}
				got := MergeStatic(parts)
				if len(got) != len(want) {
					t.Fatalf("n=%d T=%d shards=%d: %d results, want %d", n, T, shards, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d T=%d shards=%d shift=%d:\n got %+v\nwant %+v",
							n, T, shards, shifts[i], got[i], want[i])
					}
				}
			}
		}
	}
}

// ObserveWarm must leave the incremental large/small split in exactly
// the state Observe would, while accumulating nothing: a warm-up phase
// followed by measured steps yields the same instantaneous sizes as a
// fully measured run, with only the measured steps in the average.
func TestObserveWarmTracksStateWithoutAccumulating(t *testing.T) {
	vas := genVAs(20_000, 99)
	const warm = 7_000

	run := func(warmRefs int) (*TwoSize, []uint64) {
		pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(2_000))
		calc := NewTwoSize(pol)
		var sizes []uint64
		for i, va := range vas {
			res := pol.Assign(va)
			if i < warmRefs {
				calc.ObserveWarm(res)
			} else {
				calc.Observe(res)
			}
			sizes = append(sizes, calc.Current())
		}
		return calc, sizes
	}
	full, fullSizes := run(0)
	warmed, warmSizes := run(warm)
	for i := range fullSizes {
		if fullSizes[i] != warmSizes[i] {
			t.Fatalf("step %d: instantaneous size %d with warm-up, %d without",
				i, warmSizes[i], fullSizes[i])
		}
	}
	if warmed.Steps() != full.Steps()-warm {
		t.Fatalf("warmed steps = %d, want %d", warmed.Steps(), full.Steps()-warm)
	}
	if full.Steps() != uint64(len(vas)) {
		t.Fatalf("full steps = %d, want %d", full.Steps(), len(vas))
	}
}
