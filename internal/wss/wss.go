// Package wss computes average working-set sizes (Denning, 1968) for
// single page sizes and for the paper's dynamic two-page-size scheme.
//
// The working set W(t, T, ps) is the set of distinct pages referenced in
// the last T references under page-size scheme ps; its size w(t, T, ps)
// is the sum of the sizes of those pages, and the paper's metric is the
// time average s(T, ps) = (1/k) Σ_t w(t, T, ps) (Section 3.2).
//
// For static page sizes, Static uses the residency-accumulation identity
// (after Slutz & Traiger, CACM 1974): a page accessed at times
// u_1 < u_2 < ... < u_m is in the working set for
// Σ_i min(u_{i+1} − u_i, T) + min(k − u_m, T) time steps, so the average
// needs only a last-access timestamp per page — "very few counters"
// exactly as Section 3.3 describes — and computes all requested page
// sizes in a single pass.
//
// For the dynamic 4KB/32KB scheme, page identities change as chunks are
// promoted and demoted, so TwoSize instead observes the policy's own
// sliding window (internal/window) and maintains the instantaneous
// working-set size incrementally:
//
//	w(t) = 32KB × (active large chunks) + 4KB × (active blocks in small chunks)
//
// where a chunk/block is active if referenced in the window and a chunk
// counts as large per the policy's current mapping.
package wss

import (
	"fmt"
	"sort"

	"twopage/internal/addr"
	"twopage/internal/htab"
	"twopage/internal/policy"
)

// Result is the average working-set size for one page-size scheme.
type Result struct {
	Scheme   string  // e.g. "4KB", "32KB", "4KB/32KB"
	AvgBytes float64 // s(T, ps) in bytes
	// Pages counts the distinct pages the scheme touched over the whole
	// stream. Static schemes fill it; the dynamic two-size scheme leaves
	// it zero because page identities change under promotion/demotion.
	Pages uint64
	// Samples counts the references the average was taken over, so
	// shard-local results can be merged with the correct weights.
	Samples uint64
}

// Normalized returns r.AvgBytes / base.AvgBytes, the paper's
// WS_Normalized metric (base is the 4KB result).
func (r Result) Normalized(base Result) float64 {
	if base.AvgBytes == 0 {
		return 0
	}
	return r.AvgBytes / base.AvgBytes
}

// Static computes average working-set sizes for several static page
// sizes in one pass over the reference stream.
type Static struct {
	t      uint64
	shifts []uint
	last   []*htab.U64 // per shift: page -> last access time
	acc    []uint64    // per shift: accumulated residency steps
	steps  uint64
	done   bool
}

// NewStatic returns a calculator for window T (in references) and the
// given page shifts. T must be positive; shifts must be non-empty.
func NewStatic(T uint64, shifts ...uint) *Static {
	if T == 0 {
		panic("wss: T must be positive")
	}
	if len(shifts) == 0 {
		panic("wss: need at least one page shift")
	}
	s := &Static{
		t:      T,
		shifts: append([]uint(nil), shifts...),
		last:   make([]*htab.U64, len(shifts)),
		acc:    make([]uint64, len(shifts)),
	}
	for i := range s.last {
		s.last[i] = htab.NewU64(1 << 10)
	}
	return s
}

// Step observes one reference. Time advances by one per call. This is
// the per-reference hot path: the AllocsPerRun test pins it to zero
// steady-state allocations (table growth aside, which amortizes out).
//
//paperlint:hot
func (s *Static) Step(va addr.VA) {
	if s.done {
		panic("wss: Step after Finish")
	}
	t := s.steps
	s.steps++
	for i, shift := range s.shifts {
		pn := uint64(addr.Page(va, shift))
		if lastT, ok := s.last[i].Get(pn); ok {
			gap := t - lastT
			if gap > s.t {
				gap = s.t
			}
			s.acc[i] += gap
		}
		s.last[i].Put(pn, t)
	}
}

// Finish closes the stream and returns one Result per shift, in the
// order the shifts were given. Further Steps panic.
func (s *Static) Finish() []Result {
	if s.done {
		panic("wss: Finish called twice")
	}
	s.done = true
	out := make([]Result, len(s.shifts))
	for i, shift := range s.shifts {
		acc := s.acc[i]
		// Probe-order iteration is fine here: the uint64 accumulation
		// is order-independent, and htab layout is deterministic for a
		// fixed reference stream anyway.
		s.last[i].Iter(func(_, lastT uint64) {
			gap := s.steps - lastT
			if gap > s.t {
				gap = s.t
			}
			acc += gap
		})
		size := uint64(1) << shift
		var avg float64
		if s.steps > 0 {
			avg = float64(acc) * float64(size) / float64(s.steps)
		}
		out[i] = Result{
			Scheme:   addr.PageSize(size).String(),
			AvgBytes: avg,
			Pages:    uint64(s.last[i].Len()),
			Samples:  s.steps,
		}
	}
	return out
}

// Steps returns how many references have been observed.
func (s *Static) Steps() uint64 { return s.steps }

// TwoSize computes the average working-set size of the dynamic
// 4KB/32KB scheme by observing a policy.TwoSize. Create it with
// NewTwoSize *before* the first Assign on the policy (it registers
// window hooks), then call Observe with each Assign result.
type TwoSize struct {
	pol       *policy.TwoSize
	largeSize uint64 // bytes per large page

	largeActive   int // chunks currently mapped large with >=1 active block
	blocksInLarge int // active blocks belonging to large chunks

	acc   float64
	steps uint64
}

// NewTwoSize attaches a working-set calculator to pol. It must be called
// before pol observes any references; it panics if the window already
// has hooks installed (one calculator per policy).
func NewTwoSize(pol *policy.TwoSize) *TwoSize {
	w := pol.Window()
	if w.OnBlockEnter != nil || w.OnBlockLeave != nil {
		panic("wss: policy window already has hooks")
	}
	ts := &TwoSize{pol: pol, largeSize: uint64(1) << pol.Config().LargeShift}
	w.OnBlockEnter = func(b addr.PN) {
		c := w.ChunkOf(b)
		if pol.IsLarge(c) {
			ts.blocksInLarge++
			if w.ChunkActive(c) == 1 { // this block made the chunk active
				ts.largeActive++
			}
		}
	}
	w.OnBlockLeave = func(b addr.PN) {
		c := w.ChunkOf(b)
		if pol.IsLarge(c) {
			ts.blocksInLarge--
			if w.ChunkActive(c) == 0 {
				ts.largeActive--
			}
		}
	}
	return ts
}

// Observe records the outcome of one policy.Assign call: it applies any
// promotion/demotion to the incremental state and accumulates the
// instantaneous working-set size.
func (ts *TwoSize) Observe(res policy.Result) {
	w := ts.pol.Window()
	switch res.Event {
	case policy.EventPromote:
		// The chunk's active blocks move from the small side to the
		// large side; the chunk is active (the triggering access is in
		// the window).
		n := w.ChunkActive(res.Chunk)
		ts.blocksInLarge += n
		ts.largeActive++
	case policy.EventDemote:
		n := w.ChunkActive(res.Chunk)
		ts.blocksInLarge -= n
		ts.largeActive--
	}
	smallBlocks := w.ActiveBlocks() - ts.blocksInLarge
	ts.acc += float64(uint64(ts.largeActive)*ts.largeSize +
		uint64(smallBlocks)*addr.BlockSize)
	ts.steps++
}

// ObserveWarm records the outcome of one warm-up Assign call: it keeps
// the incremental large/small split consistent with the policy's state
// without accumulating the instantaneous size into the average — the
// warm-up preroll exists to build state, not to be measured. Per-
// reference warm-up hot path; allocation-free like Observe.
//
//paperlint:hot
func (ts *TwoSize) ObserveWarm(res policy.Result) {
	w := ts.pol.Window()
	switch res.Event {
	case policy.EventPromote:
		n := w.ChunkActive(res.Chunk)
		ts.blocksInLarge += n
		ts.largeActive++
	case policy.EventDemote:
		n := w.ChunkActive(res.Chunk)
		ts.blocksInLarge -= n
		ts.largeActive--
	}
}

// Current returns the instantaneous working-set size in bytes.
func (ts *TwoSize) Current() uint64 {
	smallBlocks := ts.pol.Window().ActiveBlocks() - ts.blocksInLarge
	return uint64(ts.largeActive)*ts.largeSize + uint64(smallBlocks)*addr.BlockSize
}

// Result returns the average working-set size so far.
func (ts *TwoSize) Result() Result {
	var avg float64
	if ts.steps > 0 {
		avg = ts.acc / float64(ts.steps)
	}
	return Result{Scheme: ts.pol.Name(), AvgBytes: avg, Samples: ts.steps}
}

// Steps returns how many references have been observed.
func (ts *TwoSize) Steps() uint64 { return ts.steps }

// FormatBytes renders a byte count in the paper's usual "0.82MB" style.
func FormatBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// SortResults orders results by ascending average size, for stable
// report output when schemes are collected from unordered sources.
// Equal averages are real (two schemes can tie exactly on a small
// trace), so the sort is stable with the scheme name as tie-break —
// otherwise the report row order would be nondeterministic precisely
// when it matters for diffing.
func SortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].AvgBytes != rs[j].AvgBytes {
			return rs[i].AvgBytes < rs[j].AvgBytes
		}
		return rs[i].Scheme < rs[j].Scheme
	})
}
