package wss

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/kernelref"
)

var benchShifts = []uint{addr.Shift4K, addr.Shift8K, addr.Shift16K, addr.Shift32K, addr.Shift64K}

// BenchmarkStaticStep measures the htab-based working-set kernel; the
// GoMap variant is the pre-conversion map kernel (kernelref.MapStatic)
// on the same stream. The pair backs the speedup rows in
// BENCH_kernels.json.
func BenchmarkStaticStep(b *testing.B) {
	stream := kernelref.VAStream(1 << 16)
	s := NewStatic(1<<20, benchShifts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(stream[i&(1<<16-1)])
	}
}

func BenchmarkStaticStepGoMap(b *testing.B) {
	stream := kernelref.VAStream(1 << 16)
	s := kernelref.NewMapStatic(1<<20, benchShifts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(stream[i&(1<<16-1)])
	}
}
