package wss

import (
	"twopage/internal/addr"
	"twopage/internal/policy"
)

// DefaultSampleEvery is the sampling period (in references) used by the
// N-size working-set calculator when the caller passes 0.
const DefaultSampleEvery = 256

// Sampled estimates the average working-set size of an N-level ladder
// policy. The two-size calculator maintains w(t) incrementally through
// window hooks, but with N classes a single block entering or leaving
// the window can change the covering page at any level, so instead the
// instantaneous size is recomputed from scratch every `every`
// references:
//
//	w(t) = Σ_regions size(top mapped class covering the region)
//	     + 4KB × (active blocks under no mapping)
//
// walking the window's active chunks in ascending order and counting
// each covering upper-class region once. Sampling every 256 references
// keeps the cost below one table probe per reference amortized while
// the estimate stays within sampling noise of the exact average (the
// window only turns over fully every T references, T >> 256).
type Sampled struct {
	pol   *policy.Ladder
	every uint64

	steps   uint64
	samples uint64
	acc     float64
}

// NewSampled attaches a sampled working-set calculator to pol. every is
// the sampling period in references; 0 means DefaultSampleEvery.
func NewSampled(pol *policy.Ladder, every uint64) *Sampled {
	if every == 0 {
		every = DefaultSampleEvery
	}
	return &Sampled{pol: pol, every: every}
}

// Step advances time by one reference, sampling the instantaneous
// working-set size once per period. Call it after each policy Assign.
//
//paperlint:hot
func (s *Sampled) Step() {
	s.steps++
	if s.steps%s.every == 0 {
		s.acc += float64(s.Current()) //paperlint:ignore hotalloc Current recomputes once per sample period, not per reference; its closures and scratch growth amortize to nothing
		s.samples++
	}
}

// Current recomputes the instantaneous working-set size in bytes.
func (s *Sampled) Current() uint64 {
	classes := s.pol.SizeClasses()
	win := s.pol.Window()
	var bytes uint64
	// ActiveChunks iterates class-1 regions ascending, so each upper
	// region's chunks arrive consecutively: remembering the last-counted
	// region per class is enough to count it exactly once.
	var seen [addr.MaxSizeClasses]addr.PN
	for k := range seen {
		seen[k] = ^addr.PN(0)
	}
	win.ActiveChunks(func(c addr.PN, blocks int) {
		k := s.pol.TopMappedClass(c)
		if k == 0 {
			bytes += uint64(blocks) * addr.BlockSize
			return
		}
		r := classes.Up(c, 1, k)
		if r != seen[k] {
			bytes += uint64(classes.Size(k))
			seen[k] = r
		}
	})
	return bytes
}

// Result returns the sampled average working-set size so far.
func (s *Sampled) Result() Result {
	var avg float64
	if s.samples > 0 {
		avg = s.acc / float64(s.samples)
	}
	return Result{Scheme: s.pol.Name(), AvgBytes: avg}
}

// Steps returns how many references have been observed.
func (s *Sampled) Steps() uint64 { return s.steps }

// Samples returns how many instantaneous sizes were taken.
func (s *Sampled) Samples() uint64 { return s.samples }
