package wss

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/kernelref"
	"twopage/internal/policy"
)

// TestStepAllocs pins the working-set window update at zero
// steady-state allocations. The per-shift maps grow while the
// footprint is first touched; after that warmup every Step must be
// pure map updates.
func TestStepAllocs(t *testing.T) {
	s := NewStatic(1<<16, addr.BlockShift, addr.ChunkShift)
	// Touch the whole address range once so the maps are fully grown.
	for i := 0; i < 1<<14; i++ {
		s.Step(addr.VA(i * 4096))
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		s.Step(addr.VA(uint64(i*4096) % (1 << 26)))
		i++
	})
	if avg != 0 {
		t.Errorf("Static.Step allocates %.2f times per call, want 0", avg)
	}
}

// TestShardStepAllocs pins the shard-local working-set step — the
// per-reference hot loop of a sharded static pass — at zero
// steady-state allocations, like the serial Step above. The extra
// first-access table grows only while the footprint is new.
func TestShardStepAllocs(t *testing.T) {
	s := NewStaticShard(1<<16, 1<<20, addr.BlockShift, addr.ChunkShift)
	for i := 0; i < 1<<14; i++ {
		s.Step(addr.VA(i * 4096))
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		s.Step(addr.VA(uint64(i*4096) % (1 << 26)))
		i++
	})
	if avg != 0 {
		t.Errorf("StaticShard.Step allocates %.2f times per call, want 0", avg)
	}
}

// TestObserveWarmAllocs pins the warm-up observer at zero allocations
// per reference: every sharded run replays up to a full policy window
// through it before measuring, so it is as hot as Observe itself.
func TestObserveWarmAllocs(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(1 << 12))
	ts := NewTwoSize(pol)
	stream := kernelref.VAStream(1 << 15)
	for _, va := range stream {
		ts.ObserveWarm(pol.Assign(va))
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		va := stream[i&(1<<15-1)]
		ts.ObserveWarm(pol.Assign(va))
		i++
	})
	if avg != 0 {
		t.Errorf("Assign+ObserveWarm allocates %.2f times per reference, want 0", avg)
	}
}

// TestObserveAllocs pins the two-size working-set observer — policy
// assign, window hooks, incremental size accumulation — at zero
// steady-state allocations per reference.
func TestObserveAllocs(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(1 << 12))
	ts := NewTwoSize(pol)
	stream := kernelref.VAStream(1 << 15)
	for _, va := range stream {
		ts.Observe(pol.Assign(va))
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		va := stream[i&(1<<15-1)]
		ts.Observe(pol.Assign(va))
		i++
	})
	if avg != 0 {
		t.Errorf("Assign+Observe allocates %.2f times per reference, want 0", avg)
	}
}
